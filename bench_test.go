package fivealarms

// This file is the benchmark harness of the reproduction: one benchmark
// per table and figure of the paper's evaluation (see the experiment
// index in DESIGN.md), plus the ablations DESIGN.md calls out. Each
// benchmark reports domain-specific metrics (counts, accuracies) through
// b.ReportMetric so `go test -bench` regenerates the paper's rows
// alongside timing. Run with:
//
//	go test -bench=. -benchmem
//
// The fixtures are laptop-scale; pass -tags or edit benchStudy for the
// full-scale configuration (PaperScale).

import (
	"testing"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/conus"
	"fivealarms/internal/ecoregion"
	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/raster"
	"fivealarms/internal/rtree"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// benchStudy is shared by all benchmarks (built once).
var benchStudy = NewStudy(Config{Seed: 7, CellSizeM: 20000, Transceivers: 60000, MappedFiresPerSeason: 40})

// BenchmarkTable1 regenerates the historical overlay (Table 1): 19
// simulated seasons joined against the transceiver snapshot.
func BenchmarkTable1(b *testing.B) {
	seasons := benchStudy.History()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Analyzer.HistoricalOverlay(seasons)
		total = 0
		for _, r := range rows {
			total += r.TransceiversIn
		}
	}
	b.ReportMetric(float64(total), "tx-in-perimeters")
}

// BenchmarkTable2 regenerates the provider-risk breakdown (Table 2).
func BenchmarkTable2(b *testing.B) {
	var att int
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Table2()
		att = rows[0].Moderate + rows[0].High + rows[0].VHigh
	}
	b.ReportMetric(float64(att), "att-at-risk")
}

// BenchmarkTable3 regenerates the radio-technology breakdown (Table 3).
func BenchmarkTable3(b *testing.B) {
	var lte int
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Table3()
		for _, r := range rows {
			if r.Radio == cellnet.LTE {
				lte = r.Total
			}
		}
	}
	b.ReportMetric(float64(lte), "lte-at-risk")
}

// BenchmarkFig2Map regenerates the national transceiver-density map
// (Figure 2): binning every transceiver onto the world grid.
func BenchmarkFig2Map(b *testing.B) {
	g := benchStudy.World.Grid
	var occupied int
	for i := 0; i < b.N; i++ {
		density := raster.NewFloatGrid(g)
		for j := range benchStudy.Data.T {
			if cx, cy, ok := g.CellOf(benchStudy.Data.T[j].XY); ok {
				density.Set(cx, cy, density.At(cx, cy)+1)
			}
		}
		occupied = 0
		for _, v := range density.Data {
			if v > 0 {
				occupied++
			}
		}
	}
	b.ReportMetric(float64(occupied), "occupied-cells")
}

// BenchmarkFig3Map regenerates the 2000-2018 perimeter union map
// (Figure 3).
func BenchmarkFig3Map(b *testing.B) {
	seasons := benchStudy.History()
	b.ResetTimer()
	var burned int
	for i := 0; i < b.N; i++ {
		burned = benchStudy.Analyzer.FireUnionMask(seasons).Count()
	}
	b.ReportMetric(float64(burned), "burned-cells")
}

// BenchmarkFig4Overlay regenerates the transceivers-in-perimeters join
// (Figure 4, the >27,000 total).
func BenchmarkFig4Overlay(b *testing.B) {
	seasons := benchStudy.History()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Analyzer.HistoricalOverlay(seasons)
		total = 0
		for _, r := range rows {
			total += r.TransceiversIn
		}
	}
	b.ReportMetric(float64(total), "tx-2000-2018")
}

// BenchmarkFig5CaseStudy regenerates the PSPS outage series (Figure 5).
func BenchmarkFig5CaseStudy(b *testing.B) {
	season := benchStudy.Season2019()
	b.ResetTimer()
	var peak int
	var share float64
	for i := 0; i < b.N; i++ {
		cs := benchStudy.Analyzer.CaseStudyFall2019(season, powergrid.NetConfig{Seed: 7}, 7)
		peak = cs.PeakOut
		share = cs.PeakPowerShare
	}
	b.ReportMetric(float64(peak), "peak-sites-out")
	b.ReportMetric(share*100, "peak-power-share-pct")
}

// BenchmarkFig6WHP regenerates the national WHP raster (Figure 6).
func BenchmarkFig6WHP(b *testing.B) {
	var atRiskCells int
	for i := 0; i < b.N; i++ {
		m := whp.Build(benchStudy.World, benchStudy.World.Grid, whp.Config{})
		atRiskCells = m.AtRiskMask().Count()
	}
	b.ReportMetric(float64(atRiskCells), "at-risk-cells")
}

// BenchmarkFig7Overlay regenerates the per-class totals (Figure 7).
func BenchmarkFig7Overlay(b *testing.B) {
	var m, h, vh int
	for i := 0; i < b.N; i++ {
		res := benchStudy.WHPOverlay()
		m = res.ByClass[whp.Moderate]
		h = res.ByClass[whp.High]
		vh = res.ByClass[whp.VeryHigh]
	}
	b.ReportMetric(float64(m), "moderate")
	b.ReportMetric(float64(h), "high")
	b.ReportMetric(float64(vh), "very-high")
}

// BenchmarkFig8States regenerates the state ranking (Figure 8).
func BenchmarkFig8States(b *testing.B) {
	var caCount int
	for i := 0; i < b.N; i++ {
		top := benchStudy.WHPOverlay().TopStatesAtRisk()
		caCount = top[0].Count
	}
	b.ReportMetric(float64(caCount), "top-state-count")
}

// BenchmarkFig9PerCapita regenerates the per-capita ranking (Figure 9).
func BenchmarkFig9PerCapita(b *testing.B) {
	var lead float64
	for i := 0; i < b.N; i++ {
		pc := benchStudy.WHPOverlay().PerCapita(whp.VeryHigh)
		if len(pc) > 0 {
			lead = pc[0].PerThousand
		}
	}
	b.ReportMetric(lead, "top-per-1000")
}

// BenchmarkFig10Impact regenerates the WHP x density matrix (Figure 10).
func BenchmarkFig10Impact(b *testing.B) {
	var vd int
	for i := 0; i < b.N; i++ {
		vd = benchStudy.Impact().VeryDenseTotal()
	}
	b.ReportMetric(float64(vd), "at-risk-in-popvh")
}

// BenchmarkFig11Maps regenerates the three filtered map panels of
// Figure 11 (counts per filter combination).
func BenchmarkFig11Maps(b *testing.B) {
	var all, vd, vhvd int
	for i := 0; i < b.N; i++ {
		m := benchStudy.Impact()
		all = m.PopulousTotal()
		vd = m.VeryDenseTotal()
		vhvd = m.Counts[2][2]
	}
	b.ReportMetric(float64(all), "panel-left")
	b.ReportMetric(float64(vd), "panel-center")
	b.ReportMetric(float64(vhvd), "panel-right")
}

// BenchmarkFig12Metros regenerates the metro comparison (Figure 12).
func BenchmarkFig12Metros(b *testing.B) {
	var laTotal int
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Metros()
		laTotal = rows[0].Total()
	}
	b.ReportMetric(float64(laTotal), "top-metro-at-risk")
}

// BenchmarkFig13MetroMaps regenerates the three detail windows of
// Figure 13 (SF/Sacramento, LA/SD, Orlando).
func BenchmarkFig13MetroMaps(b *testing.B) {
	windows := []struct {
		name    string
		anchor  geom.Point
		radiusM float64
	}{
		{"sf-sac", geom.Point{X: -121.8, Y: 38.2}, 150000},
		{"la-sd", geom.Point{X: -117.6, Y: 33.5}, 150000},
		{"orlando", geom.Point{X: -81.4, Y: 28.5}, 120000},
	}
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, w := range windows {
			counts := benchStudy.Analyzer.MetroWindowCount(w.anchor, w.radiusM)
			for c, n := range counts {
				if c.AtRisk() {
					total += n
				}
			}
		}
	}
	b.ReportMetric(float64(total), "window-at-risk")
}

// BenchmarkFig14Future regenerates the corridor projection (Figure 14).
func BenchmarkFig14Future(b *testing.B) {
	corridor := ecoregion.BuildCorridor(benchStudy.World)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		res := benchStudy.Analyzer.FutureRisk(corridor)
		n = res.CorridorTransceivers
	}
	b.ReportMetric(float64(n), "corridor-tx")
}

// BenchmarkFig15Corridor regenerates the corridor WHP zonal counts
// (Figure 15).
func BenchmarkFig15Corridor(b *testing.B) {
	corridor := ecoregion.BuildCorridor(benchStudy.World)
	b.ResetTimer()
	var atRisk int
	for i := 0; i < b.N; i++ {
		counts := benchStudy.Analyzer.CorridorWHPCounts(corridor)
		atRisk = counts[whp.Moderate] + counts[whp.High] + counts[whp.VeryHigh]
	}
	b.ReportMetric(float64(atRisk), "corridor-at-risk")
}

// BenchmarkValidation regenerates the §3.4 hold-out validation.
func BenchmarkValidation(b *testing.B) {
	season := benchStudy.Season2019()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = benchStudy.Analyzer.Validate(season).AccuracyPct()
	}
	b.ReportMetric(acc, "accuracy-pct")
}

// BenchmarkExtension regenerates the §3.8 half-mile extension.
func BenchmarkExtension(b *testing.B) {
	season := benchStudy.Season2019()
	dist := 2.5 * benchStudy.World.Grid.CellSize
	b.ResetTimer()
	var before, after float64
	for i := 0; i < b.N; i++ {
		res := benchStudy.Analyzer.ExtendAndValidate(season, dist)
		before = res.Before.AccuracyPct()
		after = res.After.AccuracyPct()
	}
	b.ReportMetric(before, "accuracy-before-pct")
	b.ReportMetric(after, "accuracy-after-pct")
}

// BenchmarkMitigationSweep regenerates the §3.10 backup-power ablation.
func BenchmarkMitigationSweep(b *testing.B) {
	season := benchStudy.Season2019()
	b.ResetTimer()
	var saved int
	for i := 0; i < b.N; i++ {
		pts := benchStudy.Analyzer.MitigationSweep(season, []float64{4, 72}, 7)
		saved = pts[0].PeakPowerOut - pts[1].PeakPowerOut
	}
	b.ReportMetric(float64(saved), "sites-saved-by-72h")
}

// BenchmarkCoverage regenerates the abstract's "population served by
// at-risk transceivers" figure (§3.11 coverage framing).
func BenchmarkCoverage(b *testing.B) {
	var served float64
	for i := 0; i < b.N; i++ {
		served = benchStudy.Coverage(0).AtRiskServedPopulation
	}
	b.ReportMetric(served/1e6, "at-risk-served-Mpop")
}

// BenchmarkWUI regenerates the §3.7 WUI concentration.
func BenchmarkWUI(b *testing.B) {
	var conc float64
	for i := 0; i < b.N; i++ {
		conc = benchStudy.WUI().Concentration()
	}
	b.ReportMetric(conc, "wui-concentration")
}

// BenchmarkEscape regenerates the §3.11 HOT escape probabilities.
func BenchmarkEscape(b *testing.B) {
	var top float64
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Escape(0)
		if len(rows) > 0 {
			top = rows[0].Escape
		}
	}
	b.ReportMetric(top*100, "top-escape-pct")
}

// BenchmarkHarden regenerates the §3.10 hardening priority plan.
func BenchmarkHarden(b *testing.B) {
	var protected float64
	for i := 0; i < b.N; i++ {
		protected = benchStudy.Harden(10).ProtectedPopulation
	}
	b.ReportMetric(protected/1e6, "protected-Mpop")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationRTreeOverlay measures the perimeter join with the
// R-tree path (the production path).
func BenchmarkAblationRTreeOverlay(b *testing.B) {
	season := benchStudy.Sim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 20,
	})
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for fi := range season.Mapped {
			n += len(benchStudy.Analyzer.TransceiversInFire(&season.Mapped[fi]))
		}
	}
	b.ReportMetric(float64(n), "tx-found")
}

// BenchmarkAblationBruteOverlay measures the same join testing every
// transceiver against every perimeter (no index).
func BenchmarkAblationBruteOverlay(b *testing.B) {
	season := benchStudy.Sim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 20,
	})
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for fi := range season.Mapped {
			f := &season.Mapped[fi]
			bb := f.BBox()
			for ti := range benchStudy.Data.T {
				p := benchStudy.Data.T[ti].XY
				if bb.ContainsPoint(p) && f.Perimeter.ContainsPoint(p) {
					n++
				}
			}
		}
	}
	b.ReportMetric(float64(n), "tx-found")
}

// BenchmarkAblationDistanceTransform compares the exact EDT used for the
// §3.8 buffer against iterated morphological dilation.
func BenchmarkAblationDistanceTransform(b *testing.B) {
	vh := benchStudy.WHP.ClassMask(whp.VeryHigh)
	dist := 3 * benchStudy.World.Grid.CellSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = raster.DilateByDistance(vh, dist)
	}
}

// BenchmarkAblationDilate8 is the morphological alternative.
func BenchmarkAblationDilate8(b *testing.B) {
	vh := benchStudy.WHP.ClassMask(whp.VeryHigh)
	for i := 0; i < b.N; i++ {
		_ = raster.Dilate8(vh, 3)
	}
}

// BenchmarkAblationRasterResolution sweeps the WHP raster cell size
// (cost scales quadratically; class shares should stay stable).
func BenchmarkAblationRasterResolution(b *testing.B) {
	for _, cell := range []float64{40000, 20000, 10000} {
		cell := cell
		b.Run(byteSize(cell), func(b *testing.B) {
			w := conus.Build(conus.Config{Seed: 7, CellSizeM: cell})
			b.ResetTimer()
			var atRisk int
			for i := 0; i < b.N; i++ {
				m := whp.Build(w, w.Grid, whp.Config{})
				atRisk = m.AtRiskMask().Count()
			}
			b.ReportMetric(float64(atRisk)*cell*cell/1e6, "at-risk-km2")
		})
	}
}

// BenchmarkAblationHOTAlpha sweeps the fire-size tail exponent: heavier
// tails (smaller alpha) concentrate burned area in fewer, larger fires,
// raising the variance behind Table 1.
func BenchmarkAblationHOTAlpha(b *testing.B) {
	for _, alpha := range []float64{0.9, 1.15, 1.5} {
		alpha := alpha
		b.Run(byteSize(alpha*100), func(b *testing.B) {
			var largestShare float64
			for i := 0; i < b.N; i++ {
				s := benchStudy.Sim.Season(wildfire.SeasonConfig{
					Seed: uint64(i + 1), Year: 2012, TotalFires: 67774,
					TotalAcres: 9.3e6, MappedFires: 30, Alpha: alpha,
				})
				var largest, sum float64
				for fi := range s.Mapped {
					sum += s.Mapped[fi].Acres
					if s.Mapped[fi].Acres > largest {
						largest = s.Mapped[fi].Acres
					}
				}
				if sum > 0 {
					largestShare = largest / sum
				}
			}
			b.ReportMetric(largestShare*100, "largest-fire-share-pct")
		})
	}
}

// BenchmarkAblationGridCellSize sweeps the point-index cell size.
func BenchmarkAblationGridCellSize(b *testing.B) {
	region := benchStudy.Analyzer.CaliforniaRegion()
	for _, factor := range []float64{0.25, 1, 4} {
		factor := factor
		b.Run(byteSize(factor*100), func(b *testing.B) {
			pts := make([]geom.Point, benchStudy.Data.Len())
			for i := range benchStudy.Data.T {
				pts[i] = benchStudy.Data.T[i].XY
			}
			idx := newGridIndex(pts, factor)
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(idx.Query(region, nil))
			}
			b.ReportMetric(float64(n), "hits")
		})
	}
}

// BenchmarkRTreeBulkLoad measures STR packing over a season of fires.
func BenchmarkRTreeBulkLoad(b *testing.B) {
	season := benchStudy.Season2019()
	items := make([]rtree.Item, len(season.Mapped))
	for i := range season.Mapped {
		items[i] = rtree.Item{Box: season.Mapped[i].BBox(), ID: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rtree.New(items)
	}
}

func byteSize(v float64) string {
	return "p" + itoa(int(v))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
