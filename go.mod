module fivealarms

go 1.22
