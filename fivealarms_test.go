package fivealarms

import (
	"testing"

	"fivealarms/internal/whp"
)

// sharedStudy is the package-level fixture: small but large enough for
// every experiment to produce nonzero results.
var sharedStudy = NewStudy(Config{Seed: 7, CellSizeM: 20000, Transceivers: 60000, MappedFiresPerSeason: 12})

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Seed != 1 || cfg.CellSizeM != 10000 || cfg.Transceivers != 150000 {
		t.Errorf("defaults = %+v", cfg)
	}
	ps := PaperScale(3)
	if ps.Transceivers != 5364949 || ps.CellSizeM != 2700 || ps.Seed != 3 {
		t.Errorf("paper scale = %+v", ps)
	}
}

func TestStudyLayersWired(t *testing.T) {
	s := sharedStudy
	if s.World == nil || s.WHP == nil || s.Data == nil || s.Counties == nil ||
		s.Analyzer == nil || s.Sim == nil {
		t.Fatal("study layers missing")
	}
	if s.Data.Len() < 55000 {
		t.Errorf("dataset = %d", s.Data.Len())
	}
}

func TestEndToEndTable1(t *testing.T) {
	rows := sharedStudy.Table1()
	if len(rows) != 19 {
		t.Fatalf("years = %d", len(rows))
	}
	any := 0
	for _, r := range rows {
		any += r.TransceiversIn
	}
	if any == 0 {
		t.Error("no transceivers in any perimeter across 19 seasons")
	}
}

func TestEndToEndOverlayAndTables(t *testing.T) {
	overlay := sharedStudy.WHPOverlay()
	if overlay.AtRisk() == 0 {
		t.Fatal("no at-risk transceivers")
	}
	if got := overlay.TopStatesAtRisk()[0].Abbrev; got != "CA" {
		t.Errorf("top state = %s", got)
	}
	t2 := sharedStudy.Table2()
	if len(t2) != 5 || t2[0].Provider != "AT&T" {
		t.Errorf("table2 = %v", t2)
	}
	t3 := sharedStudy.Table3()
	if len(t3) != 4 {
		t.Errorf("table3 rows = %d", len(t3))
	}
}

func TestEndToEndCaseStudy(t *testing.T) {
	cs := sharedStudy.CaseStudy()
	if cs.PeakOut == 0 {
		t.Fatal("case study produced no outages")
	}
	if cs.PeakPowerShare < 0.5 {
		t.Errorf("power share = %v", cs.PeakPowerShare)
	}
}

func TestEndToEndValidationAndExtension(t *testing.T) {
	v := sharedStudy.Validate()
	if v.InPerimeter == 0 {
		t.Fatal("validation empty")
	}
	ext := sharedStudy.Extend(2.5 * sharedStudy.World.Grid.CellSize)
	if ext.VHAfter <= ext.VHBefore {
		t.Error("extension did not grow")
	}
}

func TestEndToEndImpactAndMetros(t *testing.T) {
	if sharedStudy.Impact().PopulousTotal() == 0 {
		t.Error("impact matrix empty")
	}
	metros := sharedStudy.Metros()
	if len(metros) == 0 {
		t.Fatal("no metros")
	}
	// LA and Miami trade the top spot within test-scale noise; full-scale
	// runs put LA first (see EXPERIMENTS.md).
	if metros[0].Metro != "Los Angeles" && metros[1].Metro != "Los Angeles" {
		t.Errorf("LA not in top two: %v", metros[:2])
	}
}

func TestEndToEndFuture(t *testing.T) {
	f := sharedStudy.Future()
	if f.CorridorTransceivers == 0 {
		t.Error("corridor empty")
	}
	if len(f.Rows) != 13 {
		t.Errorf("ecoregions = %d", len(f.Rows))
	}
}

func TestDeterministicStudies(t *testing.T) {
	a := NewStudy(Config{Seed: 11, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 4})
	b := NewStudy(Config{Seed: 11, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 4})
	if a.Data.Len() != b.Data.Len() {
		t.Fatal("dataset sizes differ")
	}
	ra := a.WHPOverlay()
	rb := b.WHPOverlay()
	for c := whp.Water; c <= whp.VeryHigh; c++ {
		if ra.ByClass[c] != rb.ByClass[c] {
			t.Fatalf("class %v differs: %d vs %d", c, ra.ByClass[c], rb.ByClass[c])
		}
	}
}

func TestEndToEndEscapeAndEmergency(t *testing.T) {
	esc := sharedStudy.Escape(0)
	if len(esc) == 0 {
		t.Fatal("no state escape probabilities")
	}
	for _, se := range esc {
		if se.Escape < 0 || se.Escape > 1 {
			t.Fatalf("state %s escape probability %v outside [0, 1]", se.Abbrev, se.Escape)
		}
	}
	em := sharedStudy.Emergency()
	if em == nil || len(em.DayLabels) == 0 {
		t.Fatal("emergency analysis empty")
	}
}
