package fivealarms

// Cross-module integration tests: invariants that only hold when the
// whole pipeline — world, hazard, dataset, counties, fires, power grid,
// analyses — agrees with itself.

import (
	"math"
	"testing"

	"fivealarms/internal/geodata"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
	"fivealarms/internal/wui"
)

func TestIntegrationClassPartition(t *testing.T) {
	// Every transceiver has exactly one WHP class and the class histogram
	// partitions the fleet.
	overlay := sharedStudy.WHPOverlay()
	var sum int
	for c := whp.Water; c <= whp.VeryHigh; c++ {
		sum += overlay.ByClass[c]
	}
	if sum != sharedStudy.Data.Len() {
		t.Errorf("class histogram sums to %d of %d", sum, sharedStudy.Data.Len())
	}
}

func TestIntegrationStateTotalsMatchDataset(t *testing.T) {
	// The per-state at-risk columns never exceed the state's transceiver
	// count.
	overlay := sharedStudy.WHPOverlay()
	byState := sharedStudy.Data.CountByState()
	for si, row := range overlay.ByState {
		atRisk := row[0] + row[1] + row[2]
		if atRisk > byState[si] {
			t.Errorf("state %s: at-risk %d exceeds total %d",
				geodata.States[si].Abbrev, atRisk, byState[si])
		}
	}
}

func TestIntegrationProviderTableConsistency(t *testing.T) {
	// Table 2's class columns sum to Figure 7's class totals (both views
	// partition the same at-risk set; unknown providers would leak).
	overlay := sharedStudy.WHPOverlay()
	rows := sharedStudy.Table2()
	var m, h, vh int
	for _, r := range rows {
		m += r.Moderate
		h += r.High
		vh += r.VHigh
	}
	if m != overlay.ByClass[whp.Moderate] || h != overlay.ByClass[whp.High] || vh != overlay.ByClass[whp.VeryHigh] {
		t.Errorf("Table 2 sums (%d,%d,%d) != Figure 7 (%d,%d,%d)",
			m, h, vh, overlay.ByClass[whp.Moderate], overlay.ByClass[whp.High], overlay.ByClass[whp.VeryHigh])
	}
}

func TestIntegrationRadioTableConsistency(t *testing.T) {
	overlay := sharedStudy.WHPOverlay()
	var total int
	for _, r := range sharedStudy.Table3() {
		total += r.Total
	}
	if total != overlay.AtRisk() {
		t.Errorf("Table 3 total %d != at-risk %d", total, overlay.AtRisk())
	}
}

func TestIntegrationFireAcresConsistency(t *testing.T) {
	// Each mapped fire's Acres equals its perimeter's polygon area.
	season := sharedStudy.Season2019()
	for i := range season.Mapped {
		f := &season.Mapped[i]
		fromPerimeter := f.Perimeter.Area() / 4046.8564224
		if math.Abs(fromPerimeter-f.Acres)/math.Max(f.Acres, 1) > 0.01 {
			t.Errorf("fire %s: acres %.1f vs perimeter %.1f", f.Name, f.Acres, fromPerimeter)
		}
	}
}

func TestIntegrationValidationSubsetOfOverlay(t *testing.T) {
	// The validation's predicted count can never exceed the national
	// at-risk count.
	v := sharedStudy.Validate()
	overlay := sharedStudy.WHPOverlay()
	if v.Predicted > overlay.AtRisk() {
		t.Errorf("predicted %d exceeds national at-risk %d", v.Predicted, overlay.AtRisk())
	}
}

func TestIntegrationCaseStudySitesBounded(t *testing.T) {
	// The case-study network's transceivers are a subset of the dataset.
	cs := sharedStudy.CaseStudy()
	if cs.Sites > sharedStudy.Data.Sites() {
		t.Errorf("CA sites %d exceed national %d", cs.Sites, sharedStudy.Data.Sites())
	}
	// Outage counts never exceed network size on any day.
	for d := range cs.Series.Damage {
		if cs.Series.Total(d) > cs.Sites {
			t.Errorf("day %d: %d out of %d sites", d, cs.Series.Total(d), cs.Sites)
		}
	}
}

func TestIntegrationCoverageCeilings(t *testing.T) {
	cv := sharedStudy.Coverage(0)
	if cv.AtRiskServedPopulation > cv.ServedPopulation+1 {
		t.Error("at-risk-served exceeds served")
	}
	if cv.ServedPopulation > cv.TotalPopulation*1.001 {
		t.Error("served exceeds total population")
	}
	hp := sharedStudy.Harden(5)
	if hp.ProtectedPopulation > hp.CandidatePopulation+1 {
		t.Error("hardening protected more than the candidate ceiling")
	}
}

func TestIntegrationWUISubset(t *testing.T) {
	res := sharedStudy.WUI()
	if res.AtRiskInWUI > res.AllInWUI {
		t.Error("at-risk WUI transceivers exceed all WUI transceivers")
	}
	_ = wui.NonWUI
}

func TestIntegrationHistoryDeterministic(t *testing.T) {
	// Re-running history on the same study yields identical overlays.
	a := sharedStudy.Table1()
	b := sharedStudy.Table1()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("year %d differs between runs", a[i].Year)
		}
	}
}

func TestIntegrationSeasonPerimetersInsideConus(t *testing.T) {
	// Fires only burn land: every perimeter centroid lies inside CONUS.
	seasons := []*wildfire.Season{sharedStudy.Season2019()}
	for _, s := range seasons {
		for i := range s.Mapped {
			c := s.Mapped[i].Perimeter.Centroid()
			if sharedStudy.World.StateAt(c) < 0 {
				// The centroid of a coastal fire may fall just outside the
				// coarse outline; require the ignition inside instead.
				if sharedStudy.World.StateAt(s.Mapped[i].Ignition) < 0 {
					t.Errorf("fire %s ignited outside CONUS", s.Mapped[i].Name)
				}
			}
		}
	}
}
