# Developer conveniences; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race chaos bench bench-pipeline bench-geom fuzz experiments maps clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the study-pipeline baseline (cold build vs. warm re-query)
# as test2json events, so later PRs can track the trajectory.
bench-pipeline:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyColdWarm|BenchmarkStudyBuild' -benchmem -json . > BENCH_pipeline.json

# Regenerate the prepared-geometry baseline: the naive-vs-prepared
# point-in-polygon microbenchmarks, the overlay join (naive-serial /
# prepared-serial / prepared-parallel) and the end-to-end Table 1 join.
bench-geom:
	$(GO) test -run '^$$' -bench 'BenchmarkPreparedContains|BenchmarkHistoricalOverlay|BenchmarkTable1$$' \
		-benchmem -json . ./internal/geom ./internal/risk > BENCH_geom.json

# Run each fuzz target briefly (10s apiece).
fuzz:
	$(GO) test -fuzz=FuzzParseWKTPoint -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzParseWKTPolygon -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzParseWKTMultiPolygon -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzPreparedRingContains -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzReadArcASCII -fuzztime=10s ./internal/raster
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/cellnet
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/dirs
	$(GO) test -fuzz=FuzzReadGeoJSON -fuzztime=10s ./internal/wildfire

# Run the fault-containment chaos suite under the race detector.
chaos:
	$(GO) test -race -count=2 \
		-run 'Chaos|Cancel|Context|Panic|Poison|Retri|JoinErrors' \
		./internal/pipeline ./internal/faults ./internal/wildfire .

# Regenerate experiments_run.txt at reference scale (minutes).
experiments:
	$(GO) run ./cmd/fivealarms -seed 7 -cell 5000 -transceivers 500000 -fires 150 all | tee experiments_run.txt

# Render the headline map figures as PNGs.
maps:
	$(GO) run ./cmd/whpmap -layer whp -o fig6-whp.png
	$(GO) run ./cmd/whpmap -layer density -o fig2-density.png
	$(GO) run ./cmd/whpmap -layer history -o fig3-perimeters.png
	$(GO) run ./cmd/whpmap -layer metro -lon -118 -lat 34 -km 150 -o fig13-la.png

clean:
	rm -f fig*.png
