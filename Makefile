# Developer conveniences; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint lint-sarif lint-debt apilock race chaos chaos-serve load-smoke diffcheck cover bench bench-pipeline bench-geom bench-raster bench-serve bench-shard shard-smoke serve-smoke fuzz experiments maps clean

all: vet lint test build

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so accidental inter-test state
# dependence surfaces in CI instead of lurking.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Run the fivealarms static-analysis suite (internal/lint): the
# determinism, failure-model, float-equality, context-flow,
# copy-safety, test-only-import, map-order, wire-freeze,
# goroutine-leak, and error-flow contracts. Nonzero exit on any
# unsuppressed finding; see DESIGN.md §6 for the annotation grammar.
lint:
	$(GO) run ./cmd/fivealarmsvet ./...

# Same findings as `make lint`, rendered as a SARIF 2.1.0 document
# (fivealarmsvet.sarif) for GitHub code scanning; the CI Lint job
# uploads it as an artifact.
lint-sarif:
	$(GO) run ./cmd/fivealarmsvet -sarif ./... > fivealarmsvet.sarif || [ $$? -eq 1 ]

# Audit live //fivealarms:allow suppressions: position, rule, age
# (git blame), and the mandatory reason, plus a per-rule tally.
lint-debt:
	$(GO) run ./cmd/fivealarmsvet -debt

# Regenerate the v1 wire-contract lockfile after an additive DTO
# change; the resulting internal/serve/api/api.lock diff is part of
# the change (CI fails on silent drift).
apilock:
	$(GO) run ./cmd/fivealarmsvet -write-apilock

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the study-pipeline baseline (cold build vs. warm re-query)
# as test2json events, so later PRs can track the trajectory.
bench-pipeline:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyColdWarm|BenchmarkStudyBuild' -benchmem -json . > BENCH_pipeline.json

# Regenerate the prepared-geometry baseline: the naive-vs-prepared
# point-in-polygon microbenchmarks, the overlay join (naive-serial /
# prepared-serial / prepared-parallel) and the end-to-end Table 1 join.
bench-geom:
	$(GO) test -run '^$$' -bench 'BenchmarkPreparedContains|BenchmarkHistoricalOverlay|BenchmarkTable1$$' \
		-benchmem -json . ./internal/geom ./internal/risk > BENCH_geom.json

# Regenerate the raster-kernel baseline: the banded fill / distance /
# dilate / contour kernels serial vs parallel at 1/2/4/8 workers, the
# unfused per-fire union, and the fused union+distance ensemble sweep
# (which must report 0 allocs/op warm), at full-scale CONUS dimensions.
bench-raster:
	$(GO) test -run '^$$' -bench 'BenchmarkRasterKernels' \
		-benchmem -json ./internal/raster > BENCH_raster.json

# Regenerate the full-paper-scale sharded baseline: one cold build of
# the 5,364,949-transceiver fleet on the 2.7 km national raster, all 19
# seasons plus the 2019 hold-out, sharded over CONUS row bands. Records
# wall time and the accounted peak per-shard footprint (peak-shard-B)
# in BENCH_shard.json. Expect tens of minutes on one core.
bench-shard:
	FIVEALARMS_BENCH_PAPER=1 $(GO) test -run '^$$' -bench 'BenchmarkShardedStudy' \
		-benchtime=1x -timeout=0 -benchmem -json . > BENCH_shard.json

# Scaled-down CI twin of the full-scale sharded study: 500k transceivers
# over 4 shards with the diffcheck conformance twin on. Gates the
# bit-identity contract at a scale CI can afford.
shard-smoke:
	$(GO) run ./cmd/fivealarms -seed 7 -cell 10000 -transceivers 500000 -fires 40 -shards 4 table1 >/dev/null
	$(GO) test -count=1 . -run 'Sharded'

# End-to-end smoke test of the risk-query server: boot fivealarmsd on
# a random port at test scale, probe healthz and one risk query via
# fivealarmsload -smoke, then require a clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Regenerate the serving baseline: fivealarmsload self-hosts an
# in-process server at bench scale, warms it, measures a steady phase,
# then drives a deliberately constrained server at 4x its admission
# capacity (the overload phase) and records both — sustained qps,
# latency quantiles, shed rate, and p99-under-overload — in
# BENCH_serve.json. The repo's serving budget is p99 < 50 ms warm at
# this scale, and overload must shed (429/503), never time out.
bench-serve:
	$(GO) run ./cmd/fivealarmsload -dur 5s -workers 4 -overload \
		-seed 7 -cell 20000 -transceivers 60000 -fires 12 \
		-out BENCH_serve.json

# Run the differential conformance kernel: refimpl self-tests, the
# seeded diffcheck sweeps and golden fixtures, the per-package
# conformance suites, and the study-layer cross-checks. A failure prints
# "diffcheck/<primitive> (seed N)"; rerun that Check function with the
# seed to reproduce (DESIGN.md §5, "Testing conventions").
diffcheck:
	$(GO) test -count=1 ./internal/refimpl/... \
		-run 'Sweep|Golden|Fixture|EqualUlp|Divergence'
	$(GO) test -count=1 ./internal/geom ./internal/raster ./internal/rtree \
		./internal/grid ./internal/proj -run 'Conformance|Golden'
	$(GO) test -count=1 ./internal/risk -run 'CrossCheck'
	$(GO) test -count=1 . -run 'SeedDeterminism|Metamorphic|ShardedDiffcheck|ShardedMaskMerge'

# Enforce the per-package coverage floors (COVERAGE_FLOOR.txt); pass a
# path to keep the merged profile, e.g. `make cover PROFILE=coverage.out`.
cover:
	./scripts/check_coverage.sh $(PROFILE)

# Run each fuzz target briefly (10s apiece).
fuzz:
	$(GO) test -fuzz=FuzzParseWKTPoint -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzParseWKTPolygon -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzParseWKTMultiPolygon -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzContainmentDiff -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzRasterDiff -fuzztime=10s ./internal/raster
	$(GO) test -fuzz=FuzzRTreeDiff -fuzztime=10s ./internal/rtree
	$(GO) test -fuzz=FuzzGridIndexDiff -fuzztime=10s ./internal/grid
	$(GO) test -fuzz=FuzzAlbersDiff -fuzztime=10s ./internal/proj
	$(GO) test -fuzz=FuzzReadArcASCII -fuzztime=10s ./internal/raster
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/cellnet
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/cellnet
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/dirs
	$(GO) test -fuzz=FuzzReadGeoJSON -fuzztime=10s ./internal/wildfire

# Run the fault-containment chaos suite under the race detector.
chaos:
	$(GO) test -race -count=2 \
		-run 'Chaos|Cancel|Context|Panic|Poison|Retri|JoinErrors' \
		./internal/pipeline ./internal/faults ./internal/wildfire .

# Run the serving-layer chaos suite under the race detector: overload
# shedding, breaker transitions, degraded mode, slowloris reaping,
# limiter/breaker races (DESIGN.md "Overload & degradation policy").
chaos-serve:
	$(GO) test -race -count=1 \
		-run 'Chaos|Breaker|Limiter|Slowloris|Degraded|Cancel|Concurrent' \
		./internal/serve

# Drive a constrained self-hosted server past its admission limit and
# require that excess load is shed (429/503) rather than timed out.
# Tiny study scale: this gates behavior, not throughput.
load-smoke:
	$(GO) run ./cmd/fivealarmsload -dur 2s -overload -expect-shed \
		-cell 40000 -transceivers 5000 -fires 5 -out /dev/null >/dev/null

# Regenerate experiments_run.txt at reference scale (minutes).
experiments:
	$(GO) run ./cmd/fivealarms -seed 7 -cell 5000 -transceivers 500000 -fires 150 all | tee experiments_run.txt

# Render the headline map figures as PNGs.
maps:
	$(GO) run ./cmd/whpmap -layer whp -o fig6-whp.png
	$(GO) run ./cmd/whpmap -layer density -o fig2-density.png
	$(GO) run ./cmd/whpmap -layer history -o fig3-perimeters.png
	$(GO) run ./cmd/whpmap -layer metro -lon -118 -lat 34 -km 150 -o fig13-la.png

clean:
	rm -f fig*.png
