package fivealarms

// Study-level conformance: seed determinism across repeated builds and
// both pipeline schedules, and the metamorphic properties that tie the
// headline analyses back to the refimpl reference twins (see DESIGN.md
// §5, "Testing conventions").

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/refimpl"
)

// TestSeedDeterminismRepeatedBuilds builds the same seed three times
// through NewStudyWithOptions — alternating the parallel pipeline and
// the serial escape hatch — and requires byte-identical rendered report
// output every time. This is the contract every "seed N reproduces the
// run" claim in the repo rests on.
func TestSeedDeterminismRepeatedBuilds(t *testing.T) {
	build := func(serial bool) map[string]string {
		opts := []Option{
			WithConfig(stressCfg),
			WithSeed(stressCfg.Seed),
		}
		if serial {
			opts = append(opts, WithSerialPipeline())
		}
		s, err := NewStudyWithOptions(opts...)
		if err != nil {
			t.Fatalf("build failed: %v", err)
		}
		return analysisFingerprints(s)
	}
	want := build(false)
	for rep := 0; rep < 3; rep++ {
		for _, serial := range []bool{false, true} {
			got := build(serial)
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("rep %d serial=%v: %s drifted:\nfirst build:\n%s\nthis build:\n%s",
						rep, serial, name, w, got[name])
				}
			}
		}
	}
}

// studyForConformance builds one small study shared by the metamorphic
// properties below.
func studyForConformance(t *testing.T) *Study {
	t.Helper()
	s, err := NewStudyWithOptions(WithConfig(stressCfg))
	if err != nil {
		t.Fatalf("build failed: %v", err)
	}
	return s
}

// TestMetamorphicTable1Recount (property 1): every Table 1 row recounted
// with the refimpl full scan — no spatial index, no prepared geometry,
// no visited mask — must match the pipeline's count exactly.
func TestMetamorphicTable1Recount(t *testing.T) {
	s := studyForConformance(t)
	rows := s.Table1()
	history := s.History()
	if len(rows) != len(history) {
		t.Fatalf("Table 1 has %d rows for %d seasons", len(rows), len(history))
	}
	for i, season := range history {
		count := 0
		for ti := 0; ti < s.Data.Len(); ti++ {
			p := s.Data.T[ti].XY
			for fi := range season.Mapped {
				if refimpl.MultiPolygonContains(season.Mapped[fi].Perimeter, p) {
					count++
					break
				}
			}
		}
		if rows[i].TransceiversIn != count {
			t.Errorf("year %d: Table 1 counts %d transceivers, refimpl full scan %d",
				rows[i].Year, rows[i].TransceiversIn, count)
		}
	}
}

// TestMetamorphicUnionMask (property 2): the memoized history union mask
// must equal, cell for cell, the bitwise OR of independent refimpl fills
// of every mapped perimeter — and by inclusion-exclusion its count can
// never exceed the sum of the per-fire counts.
func TestMetamorphicUnionMask(t *testing.T) {
	s := studyForConformance(t)
	union := s.HistoryUnionMask()
	g := s.World.Grid
	ref := raster.NewBitGrid(g)
	perFireSum := 0
	for _, season := range s.History() {
		for fi := range season.Mapped {
			one := refimpl.FillMultiPolygon(g, season.Mapped[fi].Perimeter)
			perFireSum += one.Count()
			for cy := 0; cy < g.NY; cy++ {
				for cx := 0; cx < g.NX; cx++ {
					if one.Get(cx, cy) {
						ref.Set(cx, cy, true)
					}
				}
			}
		}
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if union.Get(cx, cy) != ref.Get(cx, cy) {
				t.Fatalf("cell (%d,%d): union mask %v, OR of refimpl fills %v",
					cx, cy, union.Get(cx, cy), ref.Get(cx, cy))
			}
		}
	}
	if got := union.Count(); got > perFireSum || got == 0 {
		t.Fatalf("union count %d outside (0, per-fire sum %d]", got, perFireSum)
	}
}

// TestMetamorphicProjectionRoundTrip (property 3): every perimeter
// vertex of the 2019 season, pulled back to lon/lat through the study's
// own projection and pushed forward again, must land within a
// millimeter. The refimpl twin must agree with the study projection on
// the pulled-back coordinates to <= 1e-9°.
func TestMetamorphicProjectionRoundTrip(t *testing.T) {
	s := studyForConformance(t)
	ref := refimpl.Albers{Phi1: 29.5, Phi2: 45.5, Phi0: 23, Lon0: -96}
	vertices := 0
	for fi := range s.Season2019().Mapped {
		for _, pg := range s.Season2019().Mapped[fi].Perimeter {
			for _, r := range append([]geom.Ring{pg.Exterior}, pg.Holes...) {
				for _, v := range r {
					ll := s.World.Proj.Inverse(v)
					back := s.World.Proj.Forward(ll)
					if math.Abs(back.X-v.X) > 1e-3 || math.Abs(back.Y-v.Y) > 1e-3 {
						t.Fatalf("vertex %v round-trips to %v (drift %v m)",
							v, back, math.Hypot(back.X-v.X, back.Y-v.Y))
					}
					rll := ref.Inverse(v)
					if math.Abs(rll.X-ll.X) > 1e-9 || math.Abs(rll.Y-ll.Y) > 1e-9 {
						t.Fatalf("vertex %v: study inverse %v, refimpl inverse %v", v, ll, rll)
					}
					vertices++
				}
			}
		}
	}
	if vertices == 0 {
		t.Fatal("2019 season has no perimeter vertices")
	}
}

// TestMetamorphicTranslationInvariance (property 4): containment is
// translation-invariant. Shifting a fire perimeter and the transceiver
// snapshot by the same offset must reproduce the member set of the
// original indexed join, transceiver for transceiver.
func TestMetamorphicTranslationInvariance(t *testing.T) {
	s := studyForConformance(t)
	season := s.Season2019()
	if len(season.Mapped) == 0 {
		t.Fatal("2019 season has no mapped fires")
	}
	const dx, dy = 123456.25, -98765.5
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		want := s.Analyzer.TransceiversInFire(f)
		inWant := make(map[int]bool, len(want))
		for _, ti := range want {
			inWant[ti] = true
		}
		shifted := make(geom.MultiPolygon, len(f.Perimeter))
		for pi, pg := range f.Perimeter {
			shifted[pi] = geom.Polygon{Exterior: translateRing(pg.Exterior, dx, dy)}
			for _, h := range pg.Holes {
				shifted[pi].Holes = append(shifted[pi].Holes, translateRing(h, dx, dy))
			}
		}
		for ti := 0; ti < s.Data.Len(); ti++ {
			p := s.Data.T[ti].XY
			got := refimpl.MultiPolygonContains(shifted, geom.Pt(p.X+dx, p.Y+dy))
			if got != inWant[ti] {
				t.Fatalf("fire %d transceiver %d: translated containment %v, original join %v",
					fi, ti, got, inWant[ti])
			}
		}
	}
}

func translateRing(r geom.Ring, dx, dy float64) geom.Ring {
	out := make(geom.Ring, len(r))
	for i, v := range r {
		out[i] = geom.Pt(v.X+dx, v.Y+dy)
	}
	return out
}
