package ecoregion

import (
	"math"
	"testing"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testCorridor = BuildCorridor(testWorld)
)

func TestBuildCorridor(t *testing.T) {
	if len(testCorridor.Regions) != len(geodata.PaperEcoregions) {
		t.Fatalf("regions = %d, want %d", len(testCorridor.Regions), len(geodata.PaperEcoregions))
	}
	for _, r := range testCorridor.Regions {
		if r.RadiusM <= 0 {
			t.Errorf("region %s has no radius", r.Name)
		}
	}
	// The corridor axis is ~600 km long.
	if d := testCorridor.SLC.DistanceTo(testCorridor.Denver); d < 400000 || d > 800000 {
		t.Errorf("SLC-Denver distance = %v m", d)
	}
}

func TestBoundsCoverAnchors(t *testing.T) {
	b := testCorridor.Bounds()
	if !b.ContainsPoint(testCorridor.SLC) || !b.ContainsPoint(testCorridor.Denver) {
		t.Error("bounds must contain both anchors")
	}
}

func TestRegionAt(t *testing.T) {
	// Every region's own center resolves to a region (itself or an
	// overlapping neighbor that is closer).
	for i, r := range testCorridor.Regions {
		got := testCorridor.RegionAt(r.Center)
		if got < 0 {
			t.Errorf("region %d (%s) center resolves to nothing", i, r.Name)
		}
	}
	// A point far from the corridor resolves to nothing.
	far := testWorld.ToXY(geom.Point{X: -80, Y: 30})
	if got := testCorridor.RegionAt(far); got != -1 {
		t.Errorf("far point resolves to %d", got)
	}
}

func TestFutureScale(t *testing.T) {
	tests := []struct {
		delta float64
		want  float64
	}{
		{240, 3.4},
		{132, 2.32},
		{43, 1.43},
		{0, 1},
		{-119, 0}, // floored
		{-50, 0.5},
	}
	for _, tc := range tests {
		if got := FutureScale(tc.delta); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("FutureScale(%v) = %v, want %v", tc.delta, got, tc.want)
		}
	}
}

func TestFutureHazard(t *testing.T) {
	// A point inside a +240% region scales up and clamps below 1.
	var growth *Ecoregion
	for i := range testCorridor.Regions {
		if testCorridor.Regions[i].DeltaPct == 240 {
			growth = &testCorridor.Regions[i]
			break
		}
	}
	if growth == nil {
		t.Fatal("no +240% region")
	}
	got := testCorridor.FutureHazard(growth.Center, 0.2)
	if math.Abs(got-0.68) > 1e-9 {
		t.Errorf("FutureHazard = %v, want 0.68", got)
	}
	if testCorridor.FutureHazard(growth.Center, 0.5) >= 1 {
		t.Error("future hazard must clamp below 1")
	}
	// Outside every region the hazard passes through.
	far := testWorld.ToXY(geom.Point{X: -80, Y: 30})
	if got := testCorridor.FutureHazard(far, 0.33); got != 0.33 {
		t.Errorf("pass-through = %v", got)
	}
	// A negative-delta region reduces hazard.
	var decline *Ecoregion
	for i := range testCorridor.Regions {
		if testCorridor.Regions[i].DeltaPct < 0 {
			decline = &testCorridor.Regions[i]
			break
		}
	}
	if decline == nil {
		t.Fatal("no declining region")
	}
	if got := testCorridor.FutureHazard(decline.Center, 0.4); got >= 0.4 {
		t.Errorf("declining region should reduce hazard, got %v", got)
	}
}
