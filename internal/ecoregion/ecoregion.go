// Package ecoregion models the §3.9 future-risk layer: the Bailey
// ecoregions of the Salt Lake City - Denver corridor with the Littell et
// al. (2018) projected changes in annual area burned, and the projection
// of those changes onto current hazard and infrastructure.
package ecoregion

import (
	"math"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

// Ecoregion is one corridor ecoregion as a projected zone.
type Ecoregion struct {
	Name     string
	DeltaPct float64    // projected % change in area burned by the 2040s
	Center   geom.Point // projected zone center
	RadiusM  float64    // zone influence radius
}

// Corridor is the SLC-Denver analysis region.
type Corridor struct {
	Regions []Ecoregion
	// SLC and Denver anchor the corridor axis (projected).
	SLC, Denver geom.Point
	world       *conus.World
}

// BuildCorridor places the embedded ecoregion table along the SLC-Denver
// axis in projected coordinates.
func BuildCorridor(w *conus.World) *Corridor {
	slc := w.ToXY(geom.Point{X: -111.8910, Y: 40.7608})
	den := w.ToXY(geom.Point{X: -104.9903, Y: 39.7392})
	axis := den.Sub(slc)
	// Perpendicular unit vector for cross-axis placement variety.
	perp := geom.Point{X: -axis.Y, Y: axis.X}.Scale(1 / axis.Norm())

	c := &Corridor{SLC: slc, Denver: den, world: w}
	for i, e := range geodata.PaperEcoregions {
		center := slc.Add(axis.Scale(e.AxisFrac))
		// Alternate regions slightly off-axis so zones tile the corridor
		// rather than stacking on the line.
		off := float64((i%3)-1) * 0.35 * e.HalfWidthKM * 1000
		center = center.Add(perp.Scale(off))
		c.Regions = append(c.Regions, Ecoregion{
			Name:     e.Name,
			DeltaPct: e.DeltaPct,
			Center:   center,
			RadiusM:  e.HalfWidthKM * 1000,
		})
	}
	return c
}

// Bounds returns the corridor's analysis bounding box (the axis extended
// by the largest zone radius).
func (c *Corridor) Bounds() geom.BBox {
	b := geom.NewBBox(c.SLC, c.Denver)
	var maxR float64
	for _, r := range c.Regions {
		maxR = math.Max(maxR, r.RadiusM)
	}
	return b.Buffer(maxR)
}

// RegionAt returns the index of the ecoregion whose zone contains the
// projected point (nearest center within radius), or -1 when the point is
// outside every zone.
func (c *Corridor) RegionAt(p geom.Point) int {
	best := -1
	bestD := math.Inf(1)
	for i, r := range c.Regions {
		d := p.DistanceTo(r.Center)
		if d <= r.RadiusM && d < bestD {
			best = i
			bestD = d
		}
	}
	return best
}

// FutureScale converts a percent delta into a multiplicative factor on
// area burned: +240% -> 3.4x; -119% is floored at zero activity (the
// paper's phrasing "a 119% decrease" denotes elimination of most burning).
func FutureScale(deltaPct float64) float64 {
	f := 1 + deltaPct/100
	if f < 0 {
		return 0
	}
	return f
}

// FutureHazard scales a current hazard value by the containing
// ecoregion's projected change, compressing back into [0, 1).
func (c *Corridor) FutureHazard(p geom.Point, current float64) float64 {
	ri := c.RegionAt(p)
	if ri < 0 {
		return current
	}
	h := current * FutureScale(c.Regions[ri].DeltaPct)
	if h >= 1 {
		h = 0.999
	}
	return h
}
