package raster

import (
	"fmt"
	"testing"
)

// conusGeometry approximates the paper's full-scale national raster:
// the CONUS window (~4.6M x 2.9M meters) at 2.7 km resolution,
// ~1.83M cells.
func conusGeometry() Geometry {
	return Geometry{MinX: -2.36e6, MinY: -1.5e6, CellSize: 2700, NX: 1704, NY: 1074}
}

var benchWorkers = [...]int{1, 2, 4, 8}

// BenchmarkRasterKernels measures every tiled kernel at full-scale
// CONUS dimensions across worker counts, plus the unfused (per-fire)
// union and the fused union+distance ensemble sweep. The fused case is
// the one the 0-steady-state-allocs criterion applies to: with the
// arena warm, allocs/op must report 0.
func BenchmarkRasterKernels(b *testing.B) {
	g := conusGeometry()
	polys := syntheticPerimeters(g, 120, 13)
	mask := NewBitGrid(g)
	FillPolygonsInto(mask, polys, 0)

	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("fill/w%d", w), func(b *testing.B) {
			out := AcquireBitGrid(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out.Clear()
				FillPolygonsInto(out, polys, w)
			}
			b.StopTimer()
			ReleaseBitGrid(out)
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("union/w%d", w), func(b *testing.B) {
			// The pre-fusion call pattern: one fill pass per fire.
			out := AcquireBitGrid(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out.Clear()
				for pi := range polys {
					FillPolygonsInto(out, polys[pi:pi+1], w)
				}
			}
			b.StopTimer()
			ReleaseBitGrid(out)
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("distance/w%d", w), func(b *testing.B) {
			out := AcquireFloatGrid(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DistanceTransformInto(out, mask, w); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ReleaseFloatGrid(out)
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("dilate/w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				DilateByDistanceWorkers(mask, 5*g.CellSize, w)
			}
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("dilate8/w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Dilate8Workers(mask, 2, w)
			}
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("contour/w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TraceContoursWorkers(mask, w)
			}
		})
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("fused/w%d", w), func(b *testing.B) {
			// The ensemble steady state: mask union + distance transform
			// over a fixed geometry with arena-held grids.
			um := AcquireBitGrid(g)
			dist := AcquireFloatGrid(g)
			// Warm the arena: the first sweep grows the pooled buffers to
			// this geometry's sizes.
			um.Clear()
			FillPolygonsInto(um, polys, w)
			if err := DistanceTransformInto(dist, um, w); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				um.Clear()
				FillPolygonsInto(um, polys, w)
				if err := DistanceTransformInto(dist, um, w); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ReleaseBitGrid(um)
			ReleaseFloatGrid(dist)
		})
	}
}
