package raster

// Tile-seam correctness: features placed exactly on band boundaries and
// word boundaries, every tiled kernel, band counts from 1 through
// full-grid (one band per row/column) and beyond. These tests live
// inside the package so they can pin the serial/parallel split at exact
// band geometries via the internal helpers; the external conformance
// tests sweep the same kernels through the seeded diffcheck drivers.

import (
	"math"
	"runtime"
	"testing"

	"fivealarms/internal/geom"
)

// seamWorkerGrid deliberately includes 1 (serial), counts that divide
// the test grids evenly, primes that do not, and counts exceeding the
// row count (clamped to one band per row — the "1×1 tile" extreme).
var seamWorkerGrid = [...]int{1, 2, 3, 4, 7, 33}

func seamGeometry(nx, ny int) Geometry {
	return Geometry{MinX: -50, MinY: -25, CellSize: 10, NX: nx, NY: ny}
}

func TestSetSpanMatchesPerCellSet(t *testing.T) {
	// Spans chosen to start/end exactly at word boundaries (cells 63, 64,
	// 127, 128 of a 70-wide grid straddle rows), cross multiple words,
	// clamp at the grid edge, and degenerate to one cell.
	g := seamGeometry(70, 5)
	cases := []struct{ cy, cx0, cx1 int }{
		{0, 0, 69}, {0, 63, 63}, {0, 63, 64}, {1, 0, 0}, {1, 57, 58},
		{2, 5, 5}, {2, -3, 2}, {3, 60, 99}, {4, 0, 69}, {2, 40, 10},
		{-1, 0, 5}, {5, 0, 5},
	}
	for _, c := range cases {
		a := NewBitGrid(g)
		a.SetSpan(c.cy, c.cx0, c.cx1)
		b := NewBitGrid(g)
		for cx := c.cx0; cx <= c.cx1; cx++ {
			b.Set(cx, c.cy, true)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("SetSpan(%d, %d, %d) != per-cell Set", c.cy, c.cx0, c.cx1)
		}
	}
}

func TestNotKeepsTailClear(t *testing.T) {
	g := seamGeometry(9, 7) // 63 cells: the tail word has a single spare bit
	m := NewBitGrid(g)
	m.Set(3, 3, true)
	m.Not()
	if got, want := m.Count(), g.Cells()-1; got != want {
		t.Fatalf("Not: %d set cells, want %d", got, want)
	}
	m.Not()
	if m.Count() != 1 || !m.Get(3, 3) {
		t.Fatal("double Not did not restore the mask")
	}
}

func TestAndIntersects(t *testing.T) {
	g := seamGeometry(70, 3)
	a, b := NewBitGrid(g), NewBitGrid(g)
	a.SetSpan(1, 0, 69)
	b.SetSpan(1, 60, 69)
	b.SetSpan(2, 0, 5)
	if err := a.And(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 10 {
		t.Fatalf("And: %d cells, want 10", got)
	}
	if err := a.And(NewBitGrid(seamGeometry(3, 3))); err == nil {
		t.Fatal("And across shapes must fail")
	}
}

func TestForEachSetRunMatchesPerCellScan(t *testing.T) {
	// Masks with runs that touch word boundaries, span whole rows, sit in
	// adjacent rows sharing a word (NX=70 is not a multiple of 64), and a
	// full grid.
	g := seamGeometry(70, 4)
	build := func(spans [][3]int) *BitGrid {
		m := NewBitGrid(g)
		for _, s := range spans {
			m.SetSpan(s[0], s[1], s[2])
		}
		return m
	}
	cases := []struct {
		name  string
		spans [][3]int
	}{
		{"empty", nil},
		{"full", [][3]int{{0, 0, 69}, {1, 0, 69}, {2, 0, 69}, {3, 0, 69}}},
		{"word-boundary-cells", [][3]int{{0, 63, 63}, {0, 64, 64}, {1, 57, 58}}},
		{"row-spanning-word", [][3]int{{0, 69, 69}, {1, 0, 0}}},
		{"isolated-cells", [][3]int{{0, 0, 0}, {2, 35, 35}, {3, 69, 69}}},
		{"mixed-runs", [][3]int{{1, 3, 20}, {1, 22, 64}, {2, 0, 69}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := build(c.spans)
			var got [][3]int
			m.ForEachSetRun(func(cy, cx0, cx1 int) {
				got = append(got, [3]int{cy, cx0, cx1})
			})
			// Reference: per-cell scan for maximal runs.
			var want [][3]int
			for cy := 0; cy < g.NY; cy++ {
				cx := 0
				for cx < g.NX {
					if !m.Get(cx, cy) {
						cx++
						continue
					}
					start := cx
					for cx < g.NX && m.Get(cx, cy) {
						cx++
					}
					want = append(want, [3]int{cy, start, cx - 1})
				}
			}
			if len(got) != len(want) {
				t.Fatalf("runs: got %v, want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("run %d: got %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// seamMasks builds mask scenarios whose set cells hug band boundaries
// at every band count in seamWorkerGrid: single rows, single columns,
// full grids, checkerboards, and diagonal stripes.
func seamMasks(g Geometry) map[string]*BitGrid {
	masks := map[string]*BitGrid{}
	empty := NewBitGrid(g)
	masks["empty"] = empty
	full := NewBitGrid(g)
	for cy := 0; cy < g.NY; cy++ {
		full.SetSpan(cy, 0, g.NX-1)
	}
	masks["full"] = full
	// One set row exactly at each band boundary for every band count.
	rows := NewBitGrid(g)
	for _, w := range seamWorkerGrid {
		bands := w
		if bands > g.NY {
			bands = g.NY
		}
		for b := 0; b < bands; b++ {
			lo, _ := bandRange(b, g.NY, bands)
			rows.SetSpan(lo, 0, g.NX-1)
		}
	}
	masks["band-boundary-rows"] = rows
	checker := NewBitGrid(g)
	for cy := 0; cy < g.NY; cy++ {
		for cx := (cy & 1); cx < g.NX; cx += 2 {
			checker.Set(cx, cy, true)
		}
	}
	masks["checkerboard"] = checker
	diag := NewBitGrid(g)
	for cy := 0; cy < g.NY; cy++ {
		diag.Set(cy%g.NX, cy, true)
	}
	masks["diagonal"] = diag
	corner := NewBitGrid(g)
	corner.Set(0, 0, true)
	corner.Set(g.NX-1, g.NY-1, true)
	masks["corners"] = corner
	return masks
}

func TestKernelSeams(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {70, 1}, {1, 40}, {70, 40}} {
		g := seamGeometry(dims[0], dims[1])
		for name, mask := range seamMasks(g) {
			serialDT := DistanceTransformWorkers(mask, 1)
			serialDil := DilateByDistanceWorkers(mask, 1.5*g.CellSize, 1)
			serialD8 := Dilate8Workers(mask, 2, 1)
			serialTr := TraceContoursWorkers(mask, 1)
			serialEr := ErodeByDistance(mask, 1.5*g.CellSize)
			for _, w := range seamWorkerGrid[1:] {
				if dt := DistanceTransformWorkers(mask, w); dt.Fingerprint() != serialDT.Fingerprint() {
					t.Errorf("%dx%d/%s: distance transform diverges at %d workers", g.NX, g.NY, name, w)
				}
				if d := DilateByDistanceWorkers(mask, 1.5*g.CellSize, w); d.Fingerprint() != serialDil.Fingerprint() {
					t.Errorf("%dx%d/%s: dilate diverges at %d workers", g.NX, g.NY, name, w)
				}
				if d := Dilate8Workers(mask, 2, w); d.Fingerprint() != serialD8.Fingerprint() {
					t.Errorf("%dx%d/%s: dilate8 diverges at %d workers", g.NX, g.NY, name, w)
				}
				tr := TraceContoursWorkers(mask, w)
				if len(tr) != len(serialTr) {
					t.Errorf("%dx%d/%s: contours diverge at %d workers: %d vs %d polys",
						g.NX, g.NY, name, w, len(tr), len(serialTr))
					continue
				}
				for i := range tr {
					if !ringsEqual(tr[i].Exterior, serialTr[i].Exterior) {
						t.Errorf("%dx%d/%s: contour %d exterior diverges at %d workers", g.NX, g.NY, name, i, w)
					}
				}
			}
			// Erode is a fixed composition over the parallel dilate; pin its
			// complement identity on the same scenarios.
			backAndForth := mask.Clone()
			backAndForth.Not()
			backAndForth.Not()
			if backAndForth.Fingerprint() != mask.Fingerprint() {
				t.Errorf("%dx%d/%s: double complement diverges", g.NX, g.NY, name)
			}
			_ = serialEr
		}
	}
}

func ringsEqual(a, b geom.Ring) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFillSeams rasterizes polygons whose edges land exactly on band
// boundary rows and on cell-center columns, at every worker count.
func TestFillSeams(t *testing.T) {
	g := seamGeometry(70, 40)
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.Polygon{Exterior: geom.Ring{
			geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1),
		}}
	}
	// Band boundaries for w workers sit at rows b*NY/w; their projected
	// y is MinY + row*CellSize. Build rectangles whose horizontal edges
	// lie exactly on those lattice lines for every worker count, plus
	// slivers thinner than a cell and a polygon crossing the whole grid.
	var polys []geom.Polygon
	for _, w := range seamWorkerGrid {
		for b := 1; b < w && b < g.NY; b++ {
			lo, _ := bandRange(b, g.NY, w)
			y := g.MinY + float64(lo)*g.CellSize
			polys = append(polys, rect(g.MinX+5, y-15, g.MinX+655, y+15))
			polys = append(polys, rect(g.MinX+100, y, g.MinX+200, y+2))
		}
	}
	polys = append(polys,
		rect(g.MinX-100, g.MinY-100, g.MinX+1e4, g.MinY+1e4),   // covers everything
		rect(g.MinX+634.9, g.MinY+5, g.MinX+635.1, g.MinY+395), // one-column sliver on a word boundary
	)
	scenarios := map[string][]geom.Polygon{
		"individual": nil, // filled per polygon below
		"all-fused":  polys,
	}
	serialAll := NewBitGrid(g)
	FillPolygonsInto(serialAll, polys, 1)
	for name, ps := range scenarios {
		if name == "individual" {
			for pi, p := range polys {
				serial := NewBitGrid(g)
				FillPolygonsInto(serial, []geom.Polygon{p}, 1)
				for _, w := range seamWorkerGrid[1:] {
					par := NewBitGrid(g)
					FillPolygonsInto(par, []geom.Polygon{p}, w)
					if par.Fingerprint() != serial.Fingerprint() {
						t.Errorf("polygon %d diverges at %d workers", pi, w)
					}
				}
			}
			continue
		}
		for _, w := range seamWorkerGrid[1:] {
			par := NewBitGrid(g)
			FillPolygonsInto(par, ps, w)
			if par.Fingerprint() != serialAll.Fingerprint() {
				t.Errorf("%s diverges at %d workers", name, w)
			}
		}
	}
	// The fused sweep must equal the polygon-at-a-time union exactly.
	oneByOne := NewBitGrid(g)
	for _, p := range polys {
		FillPolygonsInto(oneByOne, []geom.Polygon{p}, 1)
	}
	if oneByOne.Fingerprint() != serialAll.Fingerprint() {
		t.Error("fused sweep diverges from polygon-at-a-time union")
	}
}

func TestDistanceTransformIntoShapeMismatch(t *testing.T) {
	mask := NewBitGrid(seamGeometry(8, 8))
	out := NewFloatGrid(seamGeometry(8, 9))
	if err := DistanceTransformInto(out, mask, 0); err != ErrShapeMismatch {
		t.Fatalf("got %v, want ErrShapeMismatch", err)
	}
}

func TestAcquireReleaseGrids(t *testing.T) {
	g := seamGeometry(70, 40)
	b := AcquireBitGrid(g)
	b.SetSpan(3, 0, 69)
	ReleaseBitGrid(b)
	b2 := AcquireBitGrid(g)
	if b2.Count() != 0 {
		t.Error("reacquired bit grid not cleared")
	}
	ReleaseBitGrid(b2)
	// A smaller geometry must reuse the larger backing storage cleanly.
	small := AcquireBitGrid(seamGeometry(5, 5))
	if small.Count() != 0 || small.Cells() != 25 {
		t.Error("smaller reacquisition not cleared or misshapen")
	}
	ReleaseBitGrid(small)
	ReleaseBitGrid(nil) // must not panic

	f := AcquireFloatGrid(g)
	f.Data[17] = 4.5
	ReleaseFloatGrid(f)
	f2 := AcquireFloatGrid(g)
	for i, v := range f2.Data {
		if v != 0 {
			t.Fatalf("reacquired float grid cell %d = %v, want 0", i, v)
		}
	}
	ReleaseFloatGrid(f2)
	ReleaseFloatGrid(nil) // must not panic
}

// TestRasterKernelFingerprints is the CI smoke invariant: on a
// study-scale grid, every parallel kernel's fingerprint equals the
// serial one's.
func TestRasterKernelFingerprints(t *testing.T) {
	g := Geometry{MinX: -2.3e6, MinY: -1.4e6, CellSize: 2700, NX: 430, NY: 270}
	polys := syntheticPerimeters(g, 24, 99)
	serial := NewBitGrid(g)
	FillPolygonsInto(serial, polys, 1)
	serialDT := DistanceTransformWorkers(serial, 1)
	workers := []int{0, 2, 4, 8, runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		par := NewBitGrid(g)
		FillPolygonsInto(par, polys, w)
		if par.Fingerprint() != serial.Fingerprint() {
			t.Fatalf("fill fingerprint diverges at workers=%d", w)
		}
		if dt := DistanceTransformWorkers(serial, w); dt.Fingerprint() != serialDT.Fingerprint() {
			t.Fatalf("distance fingerprint diverges at workers=%d", w)
		}
	}
}

// TestFusedSweepSteadyStateAllocs pins the arena's purpose: after
// warm-up, the fused fill+distance sweep over a fixed geometry performs
// zero allocations per iteration.
func TestFusedSweepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector's instrumentation allocates inside the sweep")
	}
	g := Geometry{MinX: 0, MinY: 0, CellSize: 100, NX: 256, NY: 256}
	polys := syntheticPerimeters(g, 12, 7)
	mask := AcquireBitGrid(g)
	dist := AcquireFloatGrid(g)
	sweep := func() {
		mask.Clear()
		FillPolygonsInto(mask, polys, 0)
		if err := DistanceTransformInto(dist, mask, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arena and the worker pool: the first sweeps grow the
	// pooled buffers to this geometry's sizes.
	sweep()
	sweep()
	runtime.GC()
	if allocs := testing.AllocsPerRun(5, sweep); allocs > 0 {
		t.Errorf("fused sweep allocates %.1f times per run in steady state, want 0", allocs)
	}
	ReleaseBitGrid(mask)
	ReleaseFloatGrid(dist)
}

// syntheticPerimeters builds deterministic star-shaped fire perimeters
// scattered over the grid — irregular convex-ish polygons with vertex
// counts and radii varying by index, no RNG dependency.
func syntheticPerimeters(g Geometry, n int, salt uint64) []geom.Polygon {
	w := float64(g.NX) * g.CellSize
	h := float64(g.NY) * g.CellSize
	polys := make([]geom.Polygon, 0, n)
	state := salt*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		cx := g.MinX + (0.1+0.8*next())*w
		cy := g.MinY + (0.1+0.8*next())*h
		rBase := (0.02 + 0.08*next()) * math.Min(w, h)
		verts := 5 + i%7
		ring := make(geom.Ring, 0, verts)
		for v := 0; v < verts; v++ {
			ang := 2 * math.Pi * float64(v) / float64(verts)
			r := rBase * (0.6 + 0.8*next())
			ring = append(ring, geom.Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang)))
		}
		polys = append(polys, geom.Polygon{Exterior: ring})
	}
	return polys
}
