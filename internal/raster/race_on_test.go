//go:build race

package raster

// raceEnabled reports that this binary was built with -race; the
// detector's instrumentation allocates inside instrumented code, so the
// steady-state-allocation assertions skip themselves.
const raceEnabled = true
