package raster_test

import (
	"fmt"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
)

func ExampleDistanceTransform() {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 100, NX: 5, NY: 1}
	mask := raster.NewBitGrid(g)
	mask.Set(0, 0, true)
	dt := raster.DistanceTransform(mask)
	for cx := 0; cx < 5; cx++ {
		fmt.Printf("%.0f ", dt.At(cx, 0))
	}
	fmt.Println()
	// Output:
	// 0 100 200 300 400
}

func ExampleDilateByDistance() {
	// The §3.8 operation: grow a very-high hazard mask by a buffer.
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 100, NX: 7, NY: 1}
	vh := raster.NewBitGrid(g)
	vh.Set(3, 0, true)
	grown := raster.DilateByDistance(vh, 150)
	fmt.Println(grown.Count())
	// Output:
	// 3
}

func ExampleFillPolygon() {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 1, NX: 10, NY: 10}
	perimeter := geom.NewPolygon(geom.NewRing(
		geom.Pt(2, 2), geom.Pt(8, 2), geom.Pt(8, 8), geom.Pt(2, 8),
	))
	burned := raster.FillPolygon(g, perimeter)
	fmt.Println(burned.Count(), "cells burned")
	// Output:
	// 36 cells burned
}

func ExampleTraceContours() {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 1, NX: 6, NY: 6}
	mask := raster.NewBitGrid(g)
	for cy := 1; cy <= 3; cy++ {
		for cx := 1; cx <= 4; cx++ {
			mask.Set(cx, cy, true)
		}
	}
	perimeter := raster.TraceContours(mask)
	fmt.Printf("%d polygon, area %.0f\n", len(perimeter), perimeter.Area())
	// Output:
	// 1 polygon, area 12
}

func ExampleLabelComponents() {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 1, NX: 6, NY: 1}
	mask := raster.NewBitGrid(g)
	mask.Set(0, 0, true)
	mask.Set(1, 0, true)
	mask.Set(4, 0, true)
	labels := raster.LabelComponents(mask)
	_, largest := labels.Largest()
	fmt.Println(labels.N, "components, largest", largest)
	// Output:
	// 2 components, largest 2
}
