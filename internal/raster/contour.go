package raster

import (
	"sort"

	"fivealarms/internal/geom"
)

// TraceContours extracts the boundary polygons of the set region of a
// binary mask. The result is a MultiPolygon in projected coordinates whose
// exterior rings wind counter-clockwise and whose holes wind clockwise,
// following the cell edges exactly (rectilinear rings). Diagonally touching
// cells are treated as disconnected (4-connectivity), which matches how
// fire perimeters are reported.
//
// This is how the wildfire simulator converts a burned-cell mask into a
// GeoMAC-style perimeter geometry.
func TraceContours(mask *BitGrid) geom.MultiPolygon {
	g := mask.Geometry

	// Collect directed boundary edges with the interior on the left:
	//   bottom edge -> +x, right edge -> +y, top edge -> -x, left edge -> -y.
	// Vertices are grid corners addressed as vy*(NX+1)+vx.
	type edge struct{ to int32 }
	w := int32(g.NX + 1)
	vertexID := func(vx, vy int) int32 { return int32(vy)*w + int32(vx) }

	// out[vertex] holds up to two outgoing edges (checkerboard corners have
	// exactly two).
	out := make(map[int32][2]int32)
	outN := make(map[int32]uint8)
	addEdge := func(from, to int32) {
		e := out[from]
		n := outN[from]
		if n < 2 {
			e[n] = to
			out[from] = e
			outN[from] = n + 1
		}
	}

	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if !mask.Get(cx, cy) {
				continue
			}
			if !mask.Get(cx, cy-1) { // bottom: left-to-right
				addEdge(vertexID(cx, cy), vertexID(cx+1, cy))
			}
			if !mask.Get(cx+1, cy) { // right: bottom-to-top
				addEdge(vertexID(cx+1, cy), vertexID(cx+1, cy+1))
			}
			if !mask.Get(cx, cy+1) { // top: right-to-left
				addEdge(vertexID(cx+1, cy+1), vertexID(cx, cy+1))
			}
			if !mask.Get(cx-1, cy) { // left: top-to-bottom
				addEdge(vertexID(cx, cy+1), vertexID(cx, cy))
			}
		}
	}
	if len(out) == 0 {
		return nil
	}

	vertexPoint := func(v int32) geom.Point {
		vy := int(v / w)
		vx := int(v % w)
		return geom.Point{X: g.MinX + float64(vx)*g.CellSize, Y: g.MinY + float64(vy)*g.CellSize}
	}

	// Deterministic iteration: trace loops starting from the smallest
	// remaining vertex.
	starts := make([]int32, 0, len(out))
	for v := range out {
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	takeEdge := func(from int32, incomingDir int32) (int32, bool) {
		n := outN[from]
		if n == 0 {
			return 0, false
		}
		e := out[from]
		pick := 0
		if n == 2 {
			// Ambiguous (checkerboard) vertex: prefer the left turn relative
			// to the incoming direction so loops never cross themselves.
			// Directions are encoded by the vertex delta: +1 (east), -1
			// (west), +w (north), -w (south). Left of east is north, etc.
			left := map[int32]int32{1: w, w: -1, -1: -w, -w: 1}[incomingDir]
			if e[1]-from == left {
				pick = 1
			}
		}
		to := e[pick]
		// Remove the picked edge.
		if pick == 0 {
			e[0] = e[1]
		}
		outN[from] = n - 1
		out[from] = e
		if n-1 == 0 {
			delete(out, from)
		}
		return to, true
	}

	var outers []geom.Ring
	var holes []geom.Ring
	for _, start := range starts {
		for outN[start] > 0 {
			var ring []geom.Point
			cur := start
			var dir int32
			for {
				next, ok := takeEdge(cur, dir)
				if !ok {
					break
				}
				ring = append(ring, vertexPoint(cur))
				dir = next - cur
				cur = next
				if cur == start {
					break
				}
			}
			if len(ring) < 4 {
				continue
			}
			r := compressCollinear(geom.Ring(ring))
			if !r.Valid() {
				continue
			}
			if r.IsCCW() {
				outers = append(outers, r)
			} else {
				holes = append(holes, r)
			}
		}
	}

	// Assign each hole to the smallest containing outer ring. Probes pay
	// a bbox reject first; large outer rings are prepared lazily on their
	// first surviving probe so the scan is banded, while small rings use
	// the naive walk directly (a linear scan is already optimal there and
	// preparation would only allocate).
	const prepareVertexThreshold = 48
	polys := make(geom.MultiPolygon, len(outers))
	for i, o := range outers {
		polys[i] = geom.Polygon{Exterior: o}
	}
	var prepared []*geom.PreparedRing
	var outerBB []geom.BBox
	if len(holes) > 0 {
		prepared = make([]*geom.PreparedRing, len(outers))
		outerBB = make([]geom.BBox, len(outers))
		for i, o := range outers {
			outerBB[i] = o.BBox()
		}
	}
	for _, h := range holes {
		bestIdx := -1
		bestArea := 0.0
		// Any hole vertex is also on the outer region boundary lattice, so
		// probe containment with the hole's centroid instead.
		probe := h.Centroid()
		for i := range outers {
			if !outerBB[i].ContainsPoint(probe) {
				continue
			}
			in := false
			if len(outers[i]) >= prepareVertexThreshold {
				if prepared[i] == nil {
					prepared[i] = geom.PrepareRing(outers[i])
				}
				in = prepared[i].Contains(probe)
			} else {
				in = outers[i].ContainsPoint(probe)
			}
			if in {
				a := outers[i].Area()
				if bestIdx == -1 || a < bestArea {
					bestIdx = i
					bestArea = a
				}
			}
		}
		if bestIdx >= 0 {
			polys[bestIdx].Holes = append(polys[bestIdx].Holes, h)
		}
	}
	return polys
}

// compressCollinear removes intermediate vertices along straight runs of a
// rectilinear ring.
func compressCollinear(r geom.Ring) geom.Ring {
	n := len(r)
	if n < 3 {
		return r
	}
	out := make(geom.Ring, 0, n)
	for i := 0; i < n; i++ {
		prev := r[(i+n-1)%n]
		cur := r[i]
		next := r[(i+1)%n]
		v1 := cur.Sub(prev)
		v2 := next.Sub(cur)
		if v1.Cross(v2) != 0 { //fivealarms:allow(floateq) exact collinearity test; marching-squares vertices are grid-exact
			out = append(out, cur)
		}
	}
	return out
}

// FillPolygon sets every cell of the returned mask whose center lies inside
// the polygon (even-odd rule over all rings), clipped to the geometry.
func FillPolygon(g Geometry, poly geom.Polygon) *BitGrid {
	mask := NewBitGrid(g)
	rasterizePolygon(mask, poly, true)
	return mask
}

// FillMultiPolygon sets every cell whose center lies inside any member
// polygon.
func FillMultiPolygon(g Geometry, m geom.MultiPolygon) *BitGrid {
	mask := NewBitGrid(g)
	FillMultiPolygonInto(mask, m)
	return mask
}

// FillMultiPolygonInto sets every cell of an existing mask whose center
// lies inside any member polygon, leaving already-set cells set. Union
// rasterization (e.g. all fire perimeters of a study period onto one
// national grid) fills into one shared mask this way instead of
// allocating a full grid per geometry and Or-ing them.
func FillMultiPolygonInto(mask *BitGrid, m geom.MultiPolygon) {
	for _, p := range m {
		rasterizePolygon(mask, p, true)
	}
}

// rasterizePolygon scanline-fills poly into mask.
func rasterizePolygon(mask *BitGrid, poly geom.Polygon, value bool) {
	g := mask.Geometry
	bb := poly.BBox().Intersection(g.Bounds())
	if bb.IsEmpty() {
		return
	}
	cy0 := int((bb.MinY - g.MinY) / g.CellSize)
	cy1 := int((bb.MaxY - g.MinY) / g.CellSize)
	if cy0 < 0 {
		cy0 = 0
	}
	if cy1 >= g.NY {
		cy1 = g.NY - 1
	}
	rings := make([]geom.Ring, 0, 1+len(poly.Holes))
	rings = append(rings, poly.Exterior)
	rings = append(rings, poly.Holes...)

	var xs []float64
	for cy := cy0; cy <= cy1; cy++ {
		y := g.MinY + (float64(cy)+0.5)*g.CellSize
		xs = xs[:0]
		for _, ring := range rings {
			n := len(ring)
			for i := 0; i < n; i++ {
				a := ring[i]
				b := ring[(i+1)%n]
				if (a.Y > y) == (b.Y > y) {
					continue
				}
				x := a.X + (b.X-a.X)*(y-a.Y)/(b.Y-a.Y)
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			continue
		}
		sort.Float64s(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			x0, x1 := xs[i], xs[i+1]
			cx0 := int((x0 - g.MinX) / g.CellSize)
			cx1 := int((x1 - g.MinX) / g.CellSize)
			if cx0 < 0 {
				cx0 = 0
			}
			if cx1 >= g.NX {
				cx1 = g.NX - 1
			}
			for cx := cx0; cx <= cx1; cx++ {
				xc := g.MinX + (float64(cx)+0.5)*g.CellSize
				if xc >= x0 && xc <= x1 {
					mask.Set(cx, cy, value)
				}
			}
		}
	}
}
