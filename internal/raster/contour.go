package raster

import (
	"sort"
	"sync"

	"fivealarms/internal/geom"
)

// contourTask is the parallel half of the contour tracer: bands are row
// ranges, and each band collects the directed boundary edges of its rows
// (via word-level set-run iteration) into a private packed list, in the
// exact order the serial row-major cell scan would visit them. The bands
// are then replayed serially in band order, which reproduces the serial
// tracer's edge-insertion sequence — the seam-stitching step that makes
// the traced rings identical at any worker count.
type contourTask struct {
	wg    sync.WaitGroup
	mask  *BitGrid
	edges []*[]uint64 // per-band edge lists, packed from<<32|to
}

var contourPool = sync.Pool{New: func() any { return new(contourTask) }}

func (t *contourTask) runBand(band, lo, hi int) {
	mask := t.mask
	w := int32(mask.NX + 1)
	buf := (*t.edges[band])[:0]
	// Collect directed boundary edges with the interior on the left:
	//   bottom edge -> +x, right edge -> +y, top edge -> -x, left edge -> -y.
	// Vertices are grid corners addressed as vy*(NX+1)+vx. Within a
	// maximal set run the left/right neighbors are known implicitly, so
	// only the vertical neighbors need bit probes.
	t.mask.forEachSetRunRows(lo, hi, func(cy, cx0, cx1 int) {
		for cx := cx0; cx <= cx1; cx++ {
			v00 := int32(cy)*w + int32(cx) // the cell's SW corner
			if !mask.Get(cx, cy-1) {       // bottom: left-to-right
				buf = append(buf, packEdge(v00, v00+1))
			}
			if cx == cx1 { // right: bottom-to-top
				buf = append(buf, packEdge(v00+1, v00+1+w))
			}
			if !mask.Get(cx, cy+1) { // top: right-to-left
				buf = append(buf, packEdge(v00+1+w, v00+w))
			}
			if cx == cx0 { // left: top-to-bottom
				buf = append(buf, packEdge(v00+w, v00))
			}
		}
	})
	*t.edges[band] = buf
}

func packEdge(from, to int32) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// TraceContours extracts the boundary polygons of the set region of a
// binary mask. The result is a MultiPolygon in projected coordinates whose
// exterior rings wind counter-clockwise and whose holes wind clockwise,
// following the cell edges exactly (rectilinear rings). Diagonally touching
// cells are treated as disconnected (4-connectivity), which matches how
// fire perimeters are reported.
//
// This is how the wildfire simulator converts a burned-cell mask into a
// GeoMAC-style perimeter geometry.
func TraceContours(mask *BitGrid) geom.MultiPolygon {
	return TraceContoursWorkers(mask, 0)
}

// TraceContoursWorkers is TraceContours with an explicit worker bound
// (0 = GOMAXPROCS, 1 = serial). Edge collection is banded; the traced
// rings are identical at any setting.
func TraceContoursWorkers(mask *BitGrid, workers int) geom.MultiPolygon {
	g := mask.Geometry
	w := int32(g.NX + 1)

	// out[vertex] holds up to two outgoing edges (checkerboard corners have
	// exactly two).
	out := make(map[int32][2]int32)
	outN := make(map[int32]uint8)
	addEdge := func(from, to int32) {
		e := out[from]
		n := outN[from]
		if n < 2 {
			e[n] = to
			out[from] = e
			outN[from] = n + 1
		}
	}

	if g.Cells() > 0 {
		bands := kernelBands(workers, g.Cells(), g.NY)
		t := contourPool.Get().(*contourTask)
		t.mask = mask
		t.edges = t.edges[:0]
		for b := 0; b < bands; b++ {
			t.edges = append(t.edges, getWords(0))
		}
		runBands(t, &t.wg, g.NY, bands)
		for _, bp := range t.edges {
			for _, e := range *bp {
				addEdge(int32(e>>32), int32(uint32(e)))
			}
			putWords(bp)
		}
		t.mask, t.edges = nil, t.edges[:0]
		contourPool.Put(t)
	}
	if len(out) == 0 {
		return nil
	}

	vertexPoint := func(v int32) geom.Point {
		vy := int(v / w)
		vx := int(v % w)
		return geom.Point{X: g.MinX + float64(vx)*g.CellSize, Y: g.MinY + float64(vy)*g.CellSize}
	}

	// Deterministic iteration: trace loops starting from the smallest
	// remaining vertex.
	starts := make([]int32, 0, len(out))
	for v := range out {
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	takeEdge := func(from int32, incomingDir int32) (int32, bool) {
		n := outN[from]
		if n == 0 {
			return 0, false
		}
		e := out[from]
		pick := 0
		if n == 2 {
			// Ambiguous (checkerboard) vertex: prefer the left turn relative
			// to the incoming direction so loops never cross themselves.
			// Directions are encoded by the vertex delta: +1 (east), -1
			// (west), +w (north), -w (south). Left of east is north, etc.
			left := map[int32]int32{1: w, w: -1, -1: -w, -w: 1}[incomingDir]
			if e[1]-from == left {
				pick = 1
			}
		}
		to := e[pick]
		// Remove the picked edge.
		if pick == 0 {
			e[0] = e[1]
		}
		outN[from] = n - 1
		out[from] = e
		if n-1 == 0 {
			delete(out, from)
		}
		return to, true
	}

	var outers []geom.Ring
	var holes []geom.Ring
	for _, start := range starts {
		for outN[start] > 0 {
			var ring []geom.Point
			cur := start
			var dir int32
			for {
				next, ok := takeEdge(cur, dir)
				if !ok {
					break
				}
				ring = append(ring, vertexPoint(cur))
				dir = next - cur
				cur = next
				if cur == start {
					break
				}
			}
			if len(ring) < 4 {
				continue
			}
			r := compressCollinear(geom.Ring(ring))
			if !r.Valid() {
				continue
			}
			if r.IsCCW() {
				outers = append(outers, r)
			} else {
				holes = append(holes, r)
			}
		}
	}

	// Assign each hole to the smallest containing outer ring. Probes pay
	// a bbox reject first; large outer rings are prepared lazily on their
	// first surviving probe so the scan is banded, while small rings use
	// the naive walk directly (a linear scan is already optimal there and
	// preparation would only allocate).
	const prepareVertexThreshold = 48
	polys := make(geom.MultiPolygon, len(outers))
	for i, o := range outers {
		polys[i] = geom.Polygon{Exterior: o}
	}
	var prepared []*geom.PreparedRing
	var outerBB []geom.BBox
	if len(holes) > 0 {
		prepared = make([]*geom.PreparedRing, len(outers))
		outerBB = make([]geom.BBox, len(outers))
		for i, o := range outers {
			outerBB[i] = o.BBox()
		}
	}
	for _, h := range holes {
		bestIdx := -1
		bestArea := 0.0
		// Any hole vertex is also on the outer region boundary lattice, so
		// probe containment with the hole's centroid instead.
		probe := h.Centroid()
		for i := range outers {
			if !outerBB[i].ContainsPoint(probe) {
				continue
			}
			in := false
			if len(outers[i]) >= prepareVertexThreshold {
				if prepared[i] == nil {
					prepared[i] = geom.PrepareRing(outers[i])
				}
				in = prepared[i].Contains(probe)
			} else {
				in = outers[i].ContainsPoint(probe)
			}
			if in {
				a := outers[i].Area()
				if bestIdx == -1 || a < bestArea {
					bestIdx = i
					bestArea = a
				}
			}
		}
		if bestIdx >= 0 {
			polys[bestIdx].Holes = append(polys[bestIdx].Holes, h)
		}
	}
	return polys
}

// compressCollinear removes intermediate vertices along straight runs of a
// rectilinear ring.
func compressCollinear(r geom.Ring) geom.Ring {
	n := len(r)
	if n < 3 {
		return r
	}
	out := make(geom.Ring, 0, n)
	for i := 0; i < n; i++ {
		prev := r[(i+n-1)%n]
		cur := r[i]
		next := r[(i+1)%n]
		v1 := cur.Sub(prev)
		v2 := next.Sub(cur)
		if v1.Cross(v2) != 0 { //fivealarms:allow(floateq) exact collinearity test; marching-squares vertices are grid-exact
			out = append(out, cur)
		}
	}
	return out
}
