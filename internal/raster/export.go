package raster

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"strings"
)

// Palette maps class values to colors for PNG export.
type Palette map[uint8]color.RGBA

// WritePNG renders the class grid to w as a PNG using the palette; classes
// without a palette entry render black. Row 0 of the grid (south) is drawn
// at the bottom of the image.
func (c *ClassGrid) WritePNG(w io.Writer, pal Palette) error {
	img := image.NewRGBA(image.Rect(0, 0, c.NX, c.NY))
	for cy := 0; cy < c.NY; cy++ {
		py := c.NY - 1 - cy
		for cx := 0; cx < c.NX; cx++ {
			col, ok := pal[c.Data[cy*c.NX+cx]]
			if !ok {
				col = color.RGBA{A: 255}
			}
			img.SetRGBA(cx, py, col)
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("raster: encoding PNG: %w", err)
	}
	return nil
}

// WritePGM writes the float grid as a binary 8-bit PGM, scaling values
// linearly from [lo, hi] to [0, 255]. Useful for quick visual inspection
// without image viewers that understand PNG palettes.
func (f *FloatGrid) WritePGM(w io.Writer, lo, hi float64) error {
	if hi <= lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", f.NX, f.NY); err != nil {
		return fmt.Errorf("raster: writing PGM header: %w", err)
	}
	row := make([]byte, f.NX)
	for cy := f.NY - 1; cy >= 0; cy-- {
		for cx := 0; cx < f.NX; cx++ {
			v := (f.Data[cy*f.NX+cx] - lo) / (hi - lo)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[cx] = byte(v * 255)
		}
		if _, err := w.Write(row); err != nil {
			return fmt.Errorf("raster: writing PGM row: %w", err)
		}
	}
	return nil
}

// ASCII renders the class grid as text, one rune per cell via the glyphs
// map (missing classes render '.'), north at the top. Intended for quick
// map "figures" in terminals and golden tests; cap columns with maxWidth
// (0 = no cap; the grid is downsampled by striding).
func (c *ClassGrid) ASCII(glyphs map[uint8]rune, maxWidth int) string {
	stride := 1
	if maxWidth > 0 && c.NX > maxWidth {
		stride = (c.NX + maxWidth - 1) / maxWidth
	}
	var b strings.Builder
	for cy := c.NY - 1; cy >= 0; cy -= stride {
		for cx := 0; cx < c.NX; cx += stride {
			g, ok := glyphs[c.Data[cy*c.NX+cx]]
			if !ok {
				g = '.'
			}
			b.WriteRune(g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BitASCII renders a bit grid as text ('#' set, '.' clear), north at top.
func (b *BitGrid) BitASCII(maxWidth int) string {
	stride := 1
	if maxWidth > 0 && b.NX > maxWidth {
		stride = (b.NX + maxWidth - 1) / maxWidth
	}
	var sb strings.Builder
	for cy := b.NY - 1; cy >= 0; cy -= stride {
		for cx := 0; cx < b.NX; cx += stride {
			if b.Get(cx, cy) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
