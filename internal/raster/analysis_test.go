package raster

import (
	"testing"

	"fivealarms/internal/rng"
)

func TestLabelComponentsBasic(t *testing.T) {
	g := testGeom(10, 10, 1)
	mask := NewBitGrid(g)
	// Two blobs and an isolated cell.
	for cx := 1; cx <= 3; cx++ {
		mask.Set(cx, 1, true)
		mask.Set(cx, 2, true)
	}
	mask.Set(7, 7, true)
	mask.Set(7, 8, true)
	mask.Set(5, 5, true)
	l := LabelComponents(mask)
	if l.N != 3 {
		t.Fatalf("components = %d, want 3", l.N)
	}
	id, size := l.Largest()
	if size != 6 {
		t.Errorf("largest = %d cells, want 6", size)
	}
	cm := l.ComponentMask(id)
	if cm.Count() != 6 {
		t.Errorf("component mask = %d", cm.Count())
	}
	total := 0
	for i := 1; i <= l.N; i++ {
		total += l.Sizes[i]
	}
	if total != mask.Count() {
		t.Errorf("sizes sum %d != mask %d", total, mask.Count())
	}
}

func TestLabelComponentsDiagonalSeparate(t *testing.T) {
	g := testGeom(5, 5, 1)
	mask := NewBitGrid(g)
	mask.Set(1, 1, true)
	mask.Set(2, 2, true)
	if l := LabelComponents(mask); l.N != 2 {
		t.Errorf("diagonal cells = %d components, want 2 (4-connectivity)", l.N)
	}
}

func TestLabelComponentsUShape(t *testing.T) {
	// A U shape forces a union between provisional labels.
	g := testGeom(7, 7, 1)
	mask := NewBitGrid(g)
	for cy := 1; cy <= 4; cy++ {
		mask.Set(1, cy, true)
		mask.Set(5, cy, true)
	}
	for cx := 1; cx <= 5; cx++ {
		mask.Set(cx, 5, true)
	}
	if l := LabelComponents(mask); l.N != 1 {
		t.Errorf("U shape = %d components, want 1", l.N)
	}
}

func TestLabelComponentsEmpty(t *testing.T) {
	l := LabelComponents(NewBitGrid(testGeom(4, 4, 1)))
	if l.N != 0 {
		t.Errorf("empty mask = %d components", l.N)
	}
	if id, size := l.Largest(); id != 0 || size != 0 {
		t.Error("Largest of empty should be zero")
	}
}

func TestLabelComponentsRandomAgainstFloodFill(t *testing.T) {
	s := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		g := testGeom(30, 30, 1)
		mask := NewBitGrid(g)
		for i := 0; i < 250; i++ {
			mask.Set(s.Intn(30), s.Intn(30), true)
		}
		got := LabelComponents(mask).N
		want := floodFillCount(mask)
		if got != want {
			t.Fatalf("trial %d: components = %d, flood fill says %d", trial, got, want)
		}
	}
}

func floodFillCount(mask *BitGrid) int {
	g := mask.Geometry
	seen := make([]bool, g.Cells())
	count := 0
	var stack [][2]int
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if !mask.Get(cx, cy) || seen[cy*g.NX+cx] {
				continue
			}
			count++
			stack = stack[:0]
			stack = append(stack, [2]int{cx, cy})
			seen[cy*g.NX+cx] = true
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := c[0]+d[0], c[1]+d[1]
					if nx < 0 || ny < 0 || nx >= g.NX || ny >= g.NY {
						continue
					}
					if mask.Get(nx, ny) && !seen[ny*g.NX+nx] {
						seen[ny*g.NX+nx] = true
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
		}
	}
	return count
}

func TestDownsample(t *testing.T) {
	g := testGeom(8, 8, 1)
	c := NewClassGrid(g)
	// Fill a quadrant with class 2.
	for cy := 0; cy < 4; cy++ {
		for cx := 0; cx < 4; cx++ {
			c.Set(cx, cy, 2)
		}
	}
	d := c.Downsample(4)
	if d.NX != 2 || d.NY != 2 {
		t.Fatalf("downsampled dims %dx%d", d.NX, d.NY)
	}
	if d.CellSize != 4 {
		t.Errorf("cell size = %v", d.CellSize)
	}
	if d.At(0, 0) != 2 {
		t.Errorf("SW coarse cell = %d, want majority 2", d.At(0, 0))
	}
	if d.At(1, 1) != 0 {
		t.Errorf("NE coarse cell = %d, want 0", d.At(1, 1))
	}
	// Tie break favors the higher class.
	tie := NewClassGrid(testGeom(2, 1, 1))
	tie.Set(0, 0, 1)
	tie.Set(1, 0, 3)
	if got := tie.Downsample(2).At(0, 0); got != 3 {
		t.Errorf("tie break = %d, want 3", got)
	}
	same := c.Downsample(1)
	if same.NX != c.NX {
		t.Error("factor 1 should clone")
	}
}

func TestZonalStatistics(t *testing.T) {
	g := testGeom(4, 1, 1)
	zones := NewClassGrid(g)
	field := NewFloatGrid(g)
	zones.Data = []uint8{1, 1, 2, 2}
	field.Data = []float64{1, 3, 10, 20}
	stats, err := ZonalStatistics(zones, field)
	if err != nil {
		t.Fatal(err)
	}
	z1 := stats[1]
	if z1.Count != 2 || z1.Mean != 2 || z1.Min != 1 || z1.Max != 3 {
		t.Errorf("zone 1 = %+v", z1)
	}
	z2 := stats[2]
	if z2.Sum != 30 || z2.Mean != 15 {
		t.Errorf("zone 2 = %+v", z2)
	}
	// Shape mismatch errors.
	if _, err := ZonalStatistics(zones, NewFloatGrid(testGeom(9, 9, 1))); err == nil {
		t.Error("shape mismatch should error")
	}
}

func BenchmarkLabelComponents(b *testing.B) {
	s := rng.New(5)
	g := testGeom(256, 256, 1)
	mask := NewBitGrid(g)
	for i := 0; i < 20000; i++ {
		mask.Set(s.Intn(256), s.Intn(256), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LabelComponents(mask)
	}
}
