package raster

import (
	"runtime"
	"sync"
)

// The tiled execution model: every raster kernel decomposes its grid
// into contiguous bands (row ranges for scanline work, column ranges
// for the distance transform's first pass, word ranges for bit-level
// work) and runs the bands on a bounded pool of persistent worker
// goroutines. Band boundaries are a pure function of (item count, band
// count), each band writes a disjoint region of the output or a private
// tile merged serially in band order, and no band's result depends on
// scheduling — so the parallel kernels are bit-identical to the serial
// path at any worker count, which the diffcheck parallel drivers
// enforce (DESIGN.md, "Raster execution model").
//
// The pool is persistent (started once, sized to GOMAXPROCS at first
// use) so dispatching a kernel performs no allocation: jobs travel by
// value over a channel and completion is signaled through a WaitGroup
// owned by the kernel's pooled task struct.

// A bandTask is one kernel invocation's banded execution: runBand
// processes the half-open range [lo, hi) of band index `band`.
// Implementations must be leaf work — a runBand must never dispatch
// bands of its own (the pool's no-nesting rule, which is what makes the
// bounded pool deadlock-free: every queued job completes without
// waiting on another job).
type bandTask interface {
	runBand(band, lo, hi int)
}

var kernelPool struct {
	once sync.Once
	jobs chan kernelJob
}

type kernelJob struct {
	t      bandTask
	band   int
	lo, hi int
	wg     *sync.WaitGroup
}

func startKernelPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	kernelPool.jobs = make(chan kernelJob, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range kernelPool.jobs {
				j.t.runBand(j.band, j.lo, j.hi)
				j.wg.Done()
			}
		}()
	}
}

// parallelMinCells is the grid size below which the auto worker setting
// stays serial: dispatch plus merge overhead is ~µs, so tiny grids are
// faster single-threaded and the parallel machinery only pays for
// itself on study-scale rasters.
const parallelMinCells = 1 << 14

// maxKernelBands caps the band count: more bands than this only adds
// dispatch and merge overhead with no extra hardware parallelism to
// exploit.
const maxKernelBands = 256

// kernelBands resolves a kernel's exported workers parameter to a band
// count for items work units on a cells-sized grid. 0 selects
// GOMAXPROCS (falling back to serial below parallelMinCells), 1 forces
// the serial path, larger values request that many bands; the result is
// always within [1, items] so every band is non-empty.
func kernelBands(workers, cells, items int) int {
	if workers == 0 {
		if cells < parallelMinCells {
			return 1
		}
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxKernelBands {
		workers = maxKernelBands
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runBands executes t over [0, n) split into bands contiguous ranges:
// band b covers [b*n/bands, (b+1)*n/bands). Band 0 runs inline on the
// calling goroutine; the rest are dispatched to the persistent pool.
// wg must be an idle WaitGroup owned by t (reused across calls); on
// return every band has completed and its writes are visible.
func runBands(t bandTask, wg *sync.WaitGroup, n, bands int) {
	if bands <= 1 || n <= 1 {
		t.runBand(0, 0, n)
		return
	}
	kernelPool.once.Do(startKernelPool)
	wg.Add(bands - 1)
	for b := 1; b < bands; b++ {
		kernelPool.jobs <- kernelJob{t: t, band: b, lo: b * n / bands, hi: (b + 1) * n / bands, wg: wg}
	}
	t.runBand(0, 0, n/bands)
	wg.Wait()
}

// bandRange returns the [lo, hi) range of band b when n items split
// into bands bands — the same arithmetic runBands uses, exposed so
// merge phases can locate each band's tile.
func bandRange(b, n, bands int) (lo, hi int) {
	return b * n / bands, (b + 1) * n / bands
}
