package raster

import (
	"math"
	"sync"
)

// DistanceTransform computes, for every cell, the exact Euclidean distance
// in meters from the cell center to the center of the nearest set cell in
// mask. Cells that are themselves set get distance 0. When the mask is
// empty every cell gets +Inf.
//
// The implementation is the exact two-pass separable squared-EDT of
// Felzenszwalb & Huttenlocher (2012): a column pass computing 1-D squared
// distances followed by a row pass taking the lower envelope of parabolas.
// Complexity is O(NX*NY). Both passes run banded across the kernel worker
// pool (columns sharded by column range, rows by row range; each band
// writes a disjoint region, so the result is bit-identical to the serial
// path at any worker count). Scratch comes from the arena; the only
// allocation is the returned grid.
func DistanceTransform(mask *BitGrid) *FloatGrid {
	return DistanceTransformWorkers(mask, 0)
}

// DistanceTransformWorkers is DistanceTransform with an explicit worker
// bound: 0 selects GOMAXPROCS (serial on small grids), 1 forces the
// serial path. Results are bit-identical at any setting.
func DistanceTransformWorkers(mask *BitGrid, workers int) *FloatGrid {
	out := NewFloatGrid(mask.Geometry)
	// The error is impossible: out was just built on mask's geometry.
	_ = DistanceTransformInto(out, mask, workers) //fivealarms:allow(errflow) out was just built on mask's geometry, the only error the kernel can report
	return out
}

// dtColsTask is the column pass: per column, 1-D squared distance (in
// cell units) to the nearest set cell in that column. Bands are column
// ranges; each band writes a disjoint column stripe of colDist.
type dtColsTask struct {
	wg      sync.WaitGroup
	mask    *BitGrid
	colDist []float64
}

var dtColsPool = sync.Pool{New: func() any { return new(dtColsTask) }}

func (t *dtColsTask) runBand(_, lo, hi int) {
	g := t.mask.Geometry
	colDist := t.colDist
	inf := math.Inf(1)
	for cx := lo; cx < hi; cx++ {
		// Downward sweep.
		d := inf
		for cy := 0; cy < g.NY; cy++ {
			if t.mask.Get(cx, cy) {
				d = 0
			} else if !math.IsInf(d, 1) {
				d++
			}
			colDist[cy*g.NX+cx] = d
		}
		// Upward sweep.
		d = inf
		for cy := g.NY - 1; cy >= 0; cy-- {
			if t.mask.Get(cx, cy) {
				d = 0
			} else if !math.IsInf(d, 1) {
				d++
			}
			i := cy*g.NX + cx
			if d < colDist[i] {
				colDist[i] = d
			}
		}
		// Square.
		for cy := 0; cy < g.NY; cy++ {
			i := cy*g.NX + cx
			if !math.IsInf(colDist[i], 1) {
				colDist[i] *= colDist[i]
			}
		}
	}
}

// dtRowsTask is the row pass: per row, the lower envelope of parabolas
// f(x) = colDist[row][q] + (x-q)^2 over the finite parabolas. Bands are
// row ranges; each band writes a disjoint row stripe of out and carries
// its own envelope scratch (source positions, breakpoints, row copy)
// from the arena.
type dtRowsTask struct {
	wg      sync.WaitGroup
	g       Geometry
	colDist []float64
	out     []float64
}

var dtRowsPool = sync.Pool{New: func() any { return new(dtRowsTask) }}

func (t *dtRowsTask) runBand(_, lo, hi int) {
	g := t.g
	inf := math.Inf(1)
	vP := getInts(g.NX)       // parabola source positions
	zP := getFloats(g.NX + 1) // envelope breakpoints
	fP := getFloats(g.NX)     // row copy of colDist
	v, z, fRow := *vP, *zP, *fP
	for cy := lo; cy < hi; cy++ {
		base := cy * g.NX
		copy(fRow, t.colDist[base:base+g.NX])
		k := -1
		for q := 0; q < g.NX; q++ {
			if math.IsInf(fRow[q], 1) {
				continue
			}
			var s float64
			for k >= 0 {
				p := v[k]
				s = ((fRow[q] + float64(q*q)) - (fRow[p] + float64(p*p))) / float64(2*q-2*p)
				if s > z[k] {
					break
				}
				k--
			}
			if k < 0 {
				k = 0
				v[0] = q
				z[0] = math.Inf(-1)
			} else {
				k++
				v[k] = q
				z[k] = s
			}
			z[k+1] = inf
		}
		if k < 0 {
			// No set cell anywhere reaches this row: all infinite.
			for q := 0; q < g.NX; q++ {
				t.out[base+q] = inf
			}
			continue
		}
		k = 0
		for q := 0; q < g.NX; q++ {
			for z[k+1] < float64(q) {
				k++
			}
			p := v[k]
			dq := float64(q - p)
			t.out[base+q] = math.Sqrt(fRow[p]+dq*dq) * g.CellSize
		}
	}
	putInts(vP)
	putFloats(zP)
	putFloats(fP)
}

// DistanceTransformInto computes the distance transform of mask into an
// existing grid (see DistanceTransform), overwriting every cell. out
// must share mask's geometry or ErrShapeMismatch is returned. All
// intermediate state comes from the scratch arena, so repeated sweeps
// over a fixed geometry allocate nothing.
func DistanceTransformInto(out *FloatGrid, mask *BitGrid, workers int) error {
	if !out.Same(mask.Geometry) {
		return ErrShapeMismatch
	}
	g := mask.Geometry
	if g.Cells() == 0 {
		return nil
	}
	colDistP := getFloats(g.Cells())

	ct := dtColsPool.Get().(*dtColsTask)
	ct.mask, ct.colDist = mask, *colDistP
	runBands(ct, &ct.wg, g.NX, kernelBands(workers, g.Cells(), g.NX))
	ct.mask, ct.colDist = nil, nil
	dtColsPool.Put(ct)

	rt := dtRowsPool.Get().(*dtRowsTask)
	rt.g, rt.colDist, rt.out = g, *colDistP, out.Data
	runBands(rt, &rt.wg, g.NY, kernelBands(workers, g.Cells(), g.NY))
	rt.colDist, rt.out = nil, nil
	dtRowsPool.Put(rt)

	putFloats(colDistP)
	return nil
}

// thresholdTask builds the dilation mask from a distance field: bands
// are word ranges of the output bit slice, so every band writes whole
// words disjointly (no merge needed).
type thresholdTask struct {
	wg    sync.WaitGroup
	dt    []float64
	out   []uint64
	cells int
	dist  float64
}

var thresholdPool = sync.Pool{New: func() any { return new(thresholdTask) }}

func (t *thresholdTask) runBand(_, lo, hi int) {
	for w := lo; w < hi; w++ {
		base := w * 64
		n := t.cells - base
		if n > 64 {
			n = 64
		}
		var word uint64
		for b := 0; b < n; b++ {
			if t.dt[base+b] <= t.dist {
				word |= 1 << uint(b)
			}
		}
		t.out[w] = word
	}
}

// DilateByDistance returns the mask grown outward by dist meters: every
// cell whose center lies within dist of a set cell's center becomes set.
// dist <= 0 returns a clone.
func DilateByDistance(mask *BitGrid, dist float64) *BitGrid {
	return DilateByDistanceWorkers(mask, dist, 0)
}

// DilateByDistanceWorkers is DilateByDistance with an explicit worker
// bound (0 = GOMAXPROCS, 1 = serial; bit-identical at any setting). The
// intermediate distance field lives in the arena, not the heap.
func DilateByDistanceWorkers(mask *BitGrid, dist float64, workers int) *BitGrid {
	if dist <= 0 {
		return mask.Clone()
	}
	g := mask.Geometry
	dt := AcquireFloatGrid(g)
	// The error is impossible: dt was just acquired on mask's geometry.
	_ = DistanceTransformInto(dt, mask, workers) //fivealarms:allow(errflow) dt was just acquired on mask's geometry, the only error the kernel can report
	out := NewBitGrid(g)
	if len(out.bits) > 0 {
		tt := thresholdPool.Get().(*thresholdTask)
		tt.dt, tt.out, tt.cells, tt.dist = dt.Data, out.bits, g.Cells(), dist
		runBands(tt, &tt.wg, len(out.bits), kernelBands(workers, g.Cells(), len(out.bits)))
		tt.dt, tt.out = nil, nil
		thresholdPool.Put(tt)
	}
	ReleaseFloatGrid(dt)
	return out
}

// ErodeByDistance returns the mask shrunk inward by dist meters: a cell
// stays set only when every cell within dist is set (computed as the
// complement's dilation, all word-level).
func ErodeByDistance(mask *BitGrid, dist float64) *BitGrid {
	if dist <= 0 {
		return mask.Clone()
	}
	inv := mask.Clone()
	inv.Not()
	out := DilateByDistanceWorkers(inv, dist, 0)
	out.Not()
	return out
}

// dilate8Task is one ring of 8-neighborhood dilation: bands are row
// ranges reading the previous generation (shared, read-only) and
// accumulating newly set cells into per-band tiles merged serially in
// band order.
type dilate8Task struct {
	wg    sync.WaitGroup
	cur   *BitGrid
	tiles []*[]uint64 // per-band word buffers
	offs  []int       // per-band first word index
}

var dilate8Pool = sync.Pool{New: func() any { return new(dilate8Task) }}

func (t *dilate8Task) runBand(band, lo, hi int) {
	cur := t.cur
	nx := cur.NX
	tile := *t.tiles[band]
	off := t.offs[band] * 64
	for cy := lo; cy < hi; cy++ {
		for cx := 0; cx < nx; cx++ {
			if cur.Get(cx, cy) {
				continue
			}
			if cur.Get(cx-1, cy) || cur.Get(cx+1, cy) || cur.Get(cx, cy-1) || cur.Get(cx, cy+1) ||
				cur.Get(cx-1, cy-1) || cur.Get(cx+1, cy-1) || cur.Get(cx-1, cy+1) || cur.Get(cx+1, cy+1) {
				i := cy*nx + cx - off
				tile[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// Dilate8 returns the mask grown by steps rings of 8-neighborhood
// dilation — the cheap morphological alternative to DilateByDistance used
// by the ablation benchmarks.
func Dilate8(mask *BitGrid, steps int) *BitGrid {
	return Dilate8Workers(mask, steps, 0)
}

// Dilate8Workers is Dilate8 with an explicit worker bound (0 =
// GOMAXPROCS, 1 = serial; bit-identical at any setting). The two
// generations ping-pong between one pair of grids instead of cloning
// per ring.
func Dilate8Workers(mask *BitGrid, steps, workers int) *BitGrid {
	cur := mask.Clone()
	if steps <= 0 || cur.Cells() == 0 {
		return cur
	}
	g := cur.Geometry
	next := NewBitGrid(g)
	bands := kernelBands(workers, g.Cells(), g.NY)
	t := dilate8Pool.Get().(*dilate8Task)
	t.tiles = t.tiles[:0]
	t.offs = t.offs[:0]
	for b := 0; b < bands; b++ {
		lo, hi := bandRange(b, g.NY, bands)
		w0 := (lo * g.NX) >> 6
		w1 := (hi*g.NX + 63) >> 6
		t.tiles = append(t.tiles, getWords(w1-w0))
		t.offs = append(t.offs, w0)
	}
	for s := 0; s < steps; s++ {
		copy(next.bits, cur.bits)
		t.cur = cur
		if s > 0 {
			for b := range t.tiles {
				clear(*t.tiles[b])
			}
		}
		runBands(t, &t.wg, g.NY, bands)
		// Serial merge, band order: OR each band's tile into the next
		// generation. Bands only share their boundary words, and OR is
		// commutative, so the merge is order-independent anyway.
		for b := range t.tiles {
			tile := *t.tiles[b]
			for i, w := range tile {
				if w != 0 {
					next.bits[t.offs[b]+i] |= w
				}
			}
		}
		cur, next = next, cur
	}
	for b := range t.tiles {
		putWords(t.tiles[b])
	}
	t.cur, t.tiles, t.offs = nil, t.tiles[:0], t.offs[:0]
	dilate8Pool.Put(t)
	return cur
}
