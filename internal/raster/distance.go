package raster

import "math"

// DistanceTransform computes, for every cell, the exact Euclidean distance
// in meters from the cell center to the center of the nearest set cell in
// mask. Cells that are themselves set get distance 0. When the mask is
// empty every cell gets +Inf.
//
// The implementation is the exact two-pass separable squared-EDT of
// Felzenszwalb & Huttenlocher (2012): a column pass computing 1-D squared
// distances followed by a row pass taking the lower envelope of parabolas.
// Complexity is O(NX*NY).
func DistanceTransform(mask *BitGrid) *FloatGrid {
	g := mask.Geometry
	out := NewFloatGrid(g)
	inf := math.Inf(1)

	// Pass 1: per column, squared distance (in cell units) to the nearest
	// set cell in that column.
	colDist := make([]float64, g.Cells())
	for cx := 0; cx < g.NX; cx++ {
		// Downward sweep.
		d := inf
		for cy := 0; cy < g.NY; cy++ {
			if mask.Get(cx, cy) {
				d = 0
			} else if !math.IsInf(d, 1) {
				d++
			}
			colDist[cy*g.NX+cx] = d
		}
		// Upward sweep.
		d = inf
		for cy := g.NY - 1; cy >= 0; cy-- {
			if mask.Get(cx, cy) {
				d = 0
			} else if !math.IsInf(d, 1) {
				d++
			}
			i := cy*g.NX + cx
			if d < colDist[i] {
				colDist[i] = d
			}
		}
		// Square.
		for cy := 0; cy < g.NY; cy++ {
			i := cy*g.NX + cx
			if !math.IsInf(colDist[i], 1) {
				colDist[i] *= colDist[i]
			}
		}
	}

	// Pass 2: per row, lower envelope of parabolas
	// f(x) = colDist[row][q] + (x-q)^2, built over the finite parabolas
	// only (columns with no set cell contribute nothing).
	v := make([]int, g.NX)       // parabola source positions
	z := make([]float64, g.NX+1) // envelope breakpoints
	fRow := make([]float64, g.NX)
	for cy := 0; cy < g.NY; cy++ {
		base := cy * g.NX
		copy(fRow, colDist[base:base+g.NX])
		k := -1
		for q := 0; q < g.NX; q++ {
			if math.IsInf(fRow[q], 1) {
				continue
			}
			var s float64
			for k >= 0 {
				p := v[k]
				s = ((fRow[q] + float64(q*q)) - (fRow[p] + float64(p*p))) / float64(2*q-2*p)
				if s > z[k] {
					break
				}
				k--
			}
			if k < 0 {
				k = 0
				v[0] = q
				z[0] = math.Inf(-1)
			} else {
				k++
				v[k] = q
				z[k] = s
			}
			z[k+1] = inf
		}
		if k < 0 {
			// No set cell anywhere reaches this row: all infinite.
			for q := 0; q < g.NX; q++ {
				out.Data[base+q] = inf
			}
			continue
		}
		k = 0
		for q := 0; q < g.NX; q++ {
			for z[k+1] < float64(q) {
				k++
			}
			p := v[k]
			dq := float64(q - p)
			out.Data[base+q] = math.Sqrt(fRow[p]+dq*dq) * g.CellSize
		}
	}
	return out
}

// DilateByDistance returns the mask grown outward by dist meters: every
// cell whose center lies within dist of a set cell's center becomes set.
// dist <= 0 returns a clone.
func DilateByDistance(mask *BitGrid, dist float64) *BitGrid {
	if dist <= 0 {
		return mask.Clone()
	}
	dt := DistanceTransform(mask)
	out := NewBitGrid(mask.Geometry)
	for i, d := range dt.Data {
		if d <= dist {
			out.setIdx(i)
		}
	}
	return out
}

// ErodeByDistance returns the mask shrunk inward by dist meters: a cell
// stays set only when every cell within dist is set (computed as the
// complement's dilation).
func ErodeByDistance(mask *BitGrid, dist float64) *BitGrid {
	if dist <= 0 {
		return mask.Clone()
	}
	inv := NewBitGrid(mask.Geometry)
	for i := 0; i < mask.Cells(); i++ {
		if !mask.getIdx(i) {
			inv.setIdx(i)
		}
	}
	grown := DilateByDistance(inv, dist)
	out := NewBitGrid(mask.Geometry)
	for i := 0; i < mask.Cells(); i++ {
		if !grown.getIdx(i) {
			out.setIdx(i)
		}
	}
	return out
}

// Dilate8 returns the mask grown by steps rings of 8-neighborhood
// dilation — the cheap morphological alternative to DilateByDistance used
// by the ablation benchmarks.
func Dilate8(mask *BitGrid, steps int) *BitGrid {
	cur := mask.Clone()
	for s := 0; s < steps; s++ {
		next := cur.Clone()
		for cy := 0; cy < cur.NY; cy++ {
			for cx := 0; cx < cur.NX; cx++ {
				if cur.Get(cx, cy) {
					continue
				}
				if cur.Get(cx-1, cy) || cur.Get(cx+1, cy) || cur.Get(cx, cy-1) || cur.Get(cx, cy+1) ||
					cur.Get(cx-1, cy-1) || cur.Get(cx+1, cy-1) || cur.Get(cx-1, cy+1) || cur.Get(cx+1, cy+1) {
					next.Set(cx, cy, true)
				}
			}
		}
		cur = next
	}
	return cur
}
