// Package raster implements projected-grid rasters and the raster analyses
// the fivealarms pipeline relies on: class grids (the WHP categories),
// float fields (fuel/hazard surfaces), point sampling, zonal statistics,
// exact Euclidean distance transforms (the §3.8 "extend very-high areas by
// half a mile" operation), binary-mask contour tracing (fire-perimeter
// extraction), and polygon rasterization (perimeter -> burned-cell mask).
//
// Grid convention: cells are squares of CellSize meters in a projected
// plane; cell (cx, cy) covers [MinX+cx*s, MinX+(cx+1)*s) x [MinY+cy*s,
// MinY+(cy+1)*s). Row cy=0 is the southern edge. Values are stored
// row-major, index cy*NX+cx.
package raster

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"fivealarms/internal/geom"
)

// ErrShapeMismatch is returned when an operation combines grids with
// different geometry.
var ErrShapeMismatch = errors.New("raster: grid shapes differ")

// Geometry describes the placement of a raster in projected space.
type Geometry struct {
	MinX, MinY float64 // projected coordinates of the grid's SW corner
	CellSize   float64 // cell edge length in meters
	NX, NY     int     // columns, rows
}

// NewGeometry returns a Geometry covering box with the given cell size,
// expanding the box to a whole number of cells.
func NewGeometry(box geom.BBox, cellSize float64) Geometry {
	if cellSize <= 0 {
		cellSize = 1
	}
	nx := int(box.Width()/cellSize) + 1
	ny := int(box.Height()/cellSize) + 1
	return Geometry{MinX: box.MinX, MinY: box.MinY, CellSize: cellSize, NX: nx, NY: ny}
}

// Cells returns the total number of cells.
func (g Geometry) Cells() int { return g.NX * g.NY }

// Bounds returns the projected bounding box covered by the grid.
func (g Geometry) Bounds() geom.BBox {
	return geom.BBox{
		MinX: g.MinX, MinY: g.MinY,
		MaxX: g.MinX + float64(g.NX)*g.CellSize,
		MaxY: g.MinY + float64(g.NY)*g.CellSize,
	}
}

// CellOf returns the cell containing the projected point and whether it is
// inside the grid.
func (g Geometry) CellOf(p geom.Point) (cx, cy int, ok bool) {
	cx = int((p.X - g.MinX) / g.CellSize)
	cy = int((p.Y - g.MinY) / g.CellSize)
	// The explicit cx/cy bounds also reject NaN and infinite coordinates,
	// whose conversions to int are platform-defined.
	if p.X < g.MinX || p.Y < g.MinY || cx < 0 || cy < 0 || cx >= g.NX || cy >= g.NY {
		return cx, cy, false
	}
	return cx, cy, true
}

// Center returns the projected coordinates of the center of cell (cx, cy).
func (g Geometry) Center(cx, cy int) geom.Point {
	return geom.Point{
		X: g.MinX + (float64(cx)+0.5)*g.CellSize,
		Y: g.MinY + (float64(cy)+0.5)*g.CellSize,
	}
}

// CellArea returns the area of one cell in square meters.
func (g Geometry) CellArea() float64 { return g.CellSize * g.CellSize }

// Same reports whether two geometries are identical.
func (g Geometry) Same(o Geometry) bool { return g == o }

// ClassGrid is a raster of small categorical values (e.g. WHP classes).
type ClassGrid struct {
	Geometry
	Data []uint8
}

// NewClassGrid allocates a zero-filled class grid with the given geometry.
func NewClassGrid(g Geometry) *ClassGrid {
	return &ClassGrid{Geometry: g, Data: make([]uint8, g.Cells())}
}

// At returns the class at cell (cx, cy); out-of-range cells return 0.
func (c *ClassGrid) At(cx, cy int) uint8 {
	if cx < 0 || cy < 0 || cx >= c.NX || cy >= c.NY {
		return 0
	}
	return c.Data[cy*c.NX+cx]
}

// Set stores v at cell (cx, cy); out-of-range cells are ignored.
func (c *ClassGrid) Set(cx, cy int, v uint8) {
	if cx < 0 || cy < 0 || cx >= c.NX || cy >= c.NY {
		return
	}
	c.Data[cy*c.NX+cx] = v
}

// Sample returns the class at the projected point and whether the point is
// on the grid.
func (c *ClassGrid) Sample(p geom.Point) (uint8, bool) {
	cx, cy, ok := c.CellOf(p)
	if !ok {
		return 0, false
	}
	return c.Data[cy*c.NX+cx], true
}

// Histogram returns the number of cells holding each class value.
func (c *ClassGrid) Histogram() [256]int {
	var h [256]int
	for _, v := range c.Data {
		h[v]++
	}
	return h
}

// Mask returns a boolean mask of the cells for which keep returns true.
func (c *ClassGrid) Mask(keep func(uint8) bool) *BitGrid {
	m := NewBitGrid(c.Geometry)
	for i, v := range c.Data {
		if keep(v) {
			m.setIdx(i)
		}
	}
	return m
}

// Clone returns a deep copy.
func (c *ClassGrid) Clone() *ClassGrid {
	out := NewClassGrid(c.Geometry)
	copy(out.Data, c.Data)
	return out
}

// FloatGrid is a raster of float64 values (fuel, hazard, elevation...).
type FloatGrid struct {
	Geometry
	Data []float64
}

// NewFloatGrid allocates a zero-filled float grid.
func NewFloatGrid(g Geometry) *FloatGrid {
	return &FloatGrid{Geometry: g, Data: make([]float64, g.Cells())}
}

// At returns the value at (cx, cy); out-of-range cells return 0.
func (f *FloatGrid) At(cx, cy int) float64 {
	if cx < 0 || cy < 0 || cx >= f.NX || cy >= f.NY {
		return 0
	}
	return f.Data[cy*f.NX+cx]
}

// Set stores v at (cx, cy); out-of-range cells are ignored.
func (f *FloatGrid) Set(cx, cy int, v float64) {
	if cx < 0 || cy < 0 || cx >= f.NX || cy >= f.NY {
		return
	}
	f.Data[cy*f.NX+cx] = v
}

// Sample returns the value at the projected point and whether the point is
// on the grid.
func (f *FloatGrid) Sample(p geom.Point) (float64, bool) {
	cx, cy, ok := f.CellOf(p)
	if !ok {
		return 0, false
	}
	return f.Data[cy*f.NX+cx], true
}

// MinMax returns the extreme values of the grid. An empty grid returns
// (0, 0).
func (f *FloatGrid) MinMax() (lo, hi float64) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Classify maps the grid through thresholds: the result class is the number
// of thresholds strictly below the value (so len(thresholds)+1 classes).
func (f *FloatGrid) Classify(thresholds []float64) *ClassGrid {
	out := NewClassGrid(f.Geometry)
	for i, v := range f.Data {
		var cls uint8
		for _, t := range thresholds {
			if v >= t {
				cls++
			} else {
				break
			}
		}
		out.Data[i] = cls
	}
	return out
}

// BitGrid is a compact boolean raster used for burned-area and buffer
// masks.
type BitGrid struct {
	Geometry
	bits []uint64
}

// NewBitGrid allocates an all-false bit grid.
func NewBitGrid(g Geometry) *BitGrid {
	return &BitGrid{Geometry: g, bits: make([]uint64, (g.Cells()+63)/64)}
}

// Get reports the bit at (cx, cy); out-of-range cells are false.
func (b *BitGrid) Get(cx, cy int) bool {
	if cx < 0 || cy < 0 || cx >= b.NX || cy >= b.NY {
		return false
	}
	i := cy*b.NX + cx
	return b.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets the bit at (cx, cy) to v; out-of-range cells are ignored.
func (b *BitGrid) Set(cx, cy int, v bool) {
	if cx < 0 || cy < 0 || cx >= b.NX || cy >= b.NY {
		return
	}
	i := cy*b.NX + cx
	if v {
		b.bits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (b *BitGrid) setIdx(i int) { b.bits[i>>6] |= 1 << (uint(i) & 63) }

func (b *BitGrid) getIdx(i int) bool { return b.bits[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set cells (hardware popcount per word).
func (b *BitGrid) Count() int {
	n := 0
	for _, w := range b.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear resets every cell to false without reallocating.
func (b *BitGrid) Clear() {
	clear(b.bits)
}

// SetSpan sets cells cx0..cx1 (inclusive) of row cy with word-level
// masks — 64 cells per store instead of one. The span is clamped to the
// grid; an inverted or fully off-grid span is a no-op.
func (b *BitGrid) SetSpan(cy, cx0, cx1 int) {
	if cy < 0 || cy >= b.NY {
		return
	}
	if cx0 < 0 {
		cx0 = 0
	}
	if cx1 >= b.NX {
		cx1 = b.NX - 1
	}
	if cx0 > cx1 {
		return
	}
	i0 := cy*b.NX + cx0
	i1 := cy*b.NX + cx1
	setWordSpan(b.bits, i0, i1)
}

// setWordSpan sets bits i0..i1 (inclusive) of a packed word slice.
func setWordSpan(words []uint64, i0, i1 int) {
	w0, w1 := i0>>6, i1>>6
	lowMask := ^uint64(0) << (uint(i0) & 63)
	highMask := ^uint64(0) >> (63 - (uint(i1) & 63))
	if w0 == w1 {
		words[w0] |= lowMask & highMask
		return
	}
	words[w0] |= lowMask
	for w := w0 + 1; w < w1; w++ {
		words[w] = ^uint64(0)
	}
	words[w1] |= highMask
}

// Not complements every cell in place (tail bits beyond the last cell
// stay zero, preserving the Count/Or/And invariants).
func (b *BitGrid) Not() {
	for i := range b.bits {
		b.bits[i] = ^b.bits[i]
	}
	b.maskTail()
}

// maskTail zeroes the unused bits of the final word.
func (b *BitGrid) maskTail() {
	if n := b.Cells() & 63; n != 0 && len(b.bits) > 0 {
		b.bits[len(b.bits)-1] &= (1 << uint(n)) - 1
	}
}

// ForEachSetRun calls fn once per maximal horizontal run of set cells,
// in row-major order: fn(cy, cx0, cx1) with cx0..cx1 inclusive. Runs
// are discovered word-at-a-time (trailing-zeros scans), so sparse masks
// iterate in time proportional to words plus runs, not cells — the
// bulk replacement for per-cell Get loops over set regions.
func (b *BitGrid) ForEachSetRun(fn func(cy, cx0, cx1 int)) {
	b.forEachSetRunRows(0, b.NY, fn)
}

// forEachSetRunRows is ForEachSetRun restricted to rows [y0, y1).
func (b *BitGrid) forEachSetRunRows(y0, y1 int, fn func(cy, cx0, cx1 int)) {
	for cy := y0; cy < y1; cy++ {
		base := cy * b.NX
		cx := 0
		for cx < b.NX {
			// Find the next set cell at or after cx.
			i := base + cx
			w := b.bits[i>>6] >> (uint(i) & 63)
			if w == 0 {
				cx += 64 - int(uint(i)&63)
				continue
			}
			cx += bits.TrailingZeros64(w)
			if cx >= b.NX {
				break
			}
			start := cx
			// Find the next clear cell after the run. The inversion turns
			// bits shifted in beyond the word end into ones, so only the
			// 64-s bits actually read from this word may terminate the run.
			for cx < b.NX {
				i = base + cx
				s := int(uint(i) & 63)
				w = ^(b.bits[i>>6] >> uint(s))
				tz := bits.TrailingZeros64(w)
				if tz >= 64-s {
					cx += 64 - s
					continue
				}
				cx += tz
				break
			}
			if cx > b.NX {
				cx = b.NX
			}
			fn(cy, start, cx-1)
		}
	}
}

// Or sets b to the union of b and o. Returns ErrShapeMismatch when the
// geometries differ.
func (b *BitGrid) Or(o *BitGrid) error {
	if !b.Same(o.Geometry) {
		return ErrShapeMismatch
	}
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
	return nil
}

// And sets b to the intersection of b and o. Returns ErrShapeMismatch
// when the geometries differ.
func (b *BitGrid) And(o *BitGrid) error {
	if !b.Same(o.Geometry) {
		return ErrShapeMismatch
	}
	for i := range b.bits {
		b.bits[i] &= o.bits[i]
	}
	return nil
}

// AndNot clears in b every cell set in o.
func (b *BitGrid) AndNot(o *BitGrid) error {
	if !b.Same(o.Geometry) {
		return ErrShapeMismatch
	}
	for i := range b.bits {
		b.bits[i] &^= o.bits[i]
	}
	return nil
}

// Clone returns a deep copy.
func (b *BitGrid) Clone() *BitGrid {
	out := NewBitGrid(b.Geometry)
	copy(out.bits, b.bits)
	return out
}

// AreaSquareMeters returns the total area of set cells.
func (b *BitGrid) AreaSquareMeters() float64 {
	return float64(b.Count()) * b.CellArea()
}

// fnv64 constants for the grid fingerprints below.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvWord(h, w uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = (h ^ (w >> s & 0xff)) * fnvPrime
	}
	return h
}

// Fingerprint returns an FNV-1a hash of the grid's geometry and cell
// contents — the compact equality witness the CI smoke step and the
// kernel benchmarks use to assert that the parallel schedules produce
// the exact bits the serial path does.
func (b *BitGrid) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(b.NX))
	h = fnvWord(h, uint64(b.NY))
	for _, w := range b.bits {
		h = fnvWord(h, w)
	}
	return h
}

// Fingerprint returns an FNV-1a hash of the grid's geometry and the
// IEEE-754 bit patterns of every cell (so ±0 and NaN payloads count;
// bit-identity, not numeric equality).
func (f *FloatGrid) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(f.NX))
	h = fnvWord(h, uint64(f.NY))
	for _, v := range f.Data {
		h = fnvWord(h, math.Float64bits(v))
	}
	return h
}

// String summarizes the grid for debugging.
func (g Geometry) String() string {
	return fmt.Sprintf("raster %dx%d @%gm origin (%.0f, %.0f)", g.NX, g.NY, g.CellSize, g.MinX, g.MinY)
}
