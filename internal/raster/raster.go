// Package raster implements projected-grid rasters and the raster analyses
// the fivealarms pipeline relies on: class grids (the WHP categories),
// float fields (fuel/hazard surfaces), point sampling, zonal statistics,
// exact Euclidean distance transforms (the §3.8 "extend very-high areas by
// half a mile" operation), binary-mask contour tracing (fire-perimeter
// extraction), and polygon rasterization (perimeter -> burned-cell mask).
//
// Grid convention: cells are squares of CellSize meters in a projected
// plane; cell (cx, cy) covers [MinX+cx*s, MinX+(cx+1)*s) x [MinY+cy*s,
// MinY+(cy+1)*s). Row cy=0 is the southern edge. Values are stored
// row-major, index cy*NX+cx.
package raster

import (
	"errors"
	"fmt"

	"fivealarms/internal/geom"
)

// ErrShapeMismatch is returned when an operation combines grids with
// different geometry.
var ErrShapeMismatch = errors.New("raster: grid shapes differ")

// Geometry describes the placement of a raster in projected space.
type Geometry struct {
	MinX, MinY float64 // projected coordinates of the grid's SW corner
	CellSize   float64 // cell edge length in meters
	NX, NY     int     // columns, rows
}

// NewGeometry returns a Geometry covering box with the given cell size,
// expanding the box to a whole number of cells.
func NewGeometry(box geom.BBox, cellSize float64) Geometry {
	if cellSize <= 0 {
		cellSize = 1
	}
	nx := int(box.Width()/cellSize) + 1
	ny := int(box.Height()/cellSize) + 1
	return Geometry{MinX: box.MinX, MinY: box.MinY, CellSize: cellSize, NX: nx, NY: ny}
}

// Cells returns the total number of cells.
func (g Geometry) Cells() int { return g.NX * g.NY }

// Bounds returns the projected bounding box covered by the grid.
func (g Geometry) Bounds() geom.BBox {
	return geom.BBox{
		MinX: g.MinX, MinY: g.MinY,
		MaxX: g.MinX + float64(g.NX)*g.CellSize,
		MaxY: g.MinY + float64(g.NY)*g.CellSize,
	}
}

// CellOf returns the cell containing the projected point and whether it is
// inside the grid.
func (g Geometry) CellOf(p geom.Point) (cx, cy int, ok bool) {
	cx = int((p.X - g.MinX) / g.CellSize)
	cy = int((p.Y - g.MinY) / g.CellSize)
	// The explicit cx/cy bounds also reject NaN and infinite coordinates,
	// whose conversions to int are platform-defined.
	if p.X < g.MinX || p.Y < g.MinY || cx < 0 || cy < 0 || cx >= g.NX || cy >= g.NY {
		return cx, cy, false
	}
	return cx, cy, true
}

// Center returns the projected coordinates of the center of cell (cx, cy).
func (g Geometry) Center(cx, cy int) geom.Point {
	return geom.Point{
		X: g.MinX + (float64(cx)+0.5)*g.CellSize,
		Y: g.MinY + (float64(cy)+0.5)*g.CellSize,
	}
}

// CellArea returns the area of one cell in square meters.
func (g Geometry) CellArea() float64 { return g.CellSize * g.CellSize }

// Same reports whether two geometries are identical.
func (g Geometry) Same(o Geometry) bool { return g == o }

// ClassGrid is a raster of small categorical values (e.g. WHP classes).
type ClassGrid struct {
	Geometry
	Data []uint8
}

// NewClassGrid allocates a zero-filled class grid with the given geometry.
func NewClassGrid(g Geometry) *ClassGrid {
	return &ClassGrid{Geometry: g, Data: make([]uint8, g.Cells())}
}

// At returns the class at cell (cx, cy); out-of-range cells return 0.
func (c *ClassGrid) At(cx, cy int) uint8 {
	if cx < 0 || cy < 0 || cx >= c.NX || cy >= c.NY {
		return 0
	}
	return c.Data[cy*c.NX+cx]
}

// Set stores v at cell (cx, cy); out-of-range cells are ignored.
func (c *ClassGrid) Set(cx, cy int, v uint8) {
	if cx < 0 || cy < 0 || cx >= c.NX || cy >= c.NY {
		return
	}
	c.Data[cy*c.NX+cx] = v
}

// Sample returns the class at the projected point and whether the point is
// on the grid.
func (c *ClassGrid) Sample(p geom.Point) (uint8, bool) {
	cx, cy, ok := c.CellOf(p)
	if !ok {
		return 0, false
	}
	return c.Data[cy*c.NX+cx], true
}

// Histogram returns the number of cells holding each class value.
func (c *ClassGrid) Histogram() [256]int {
	var h [256]int
	for _, v := range c.Data {
		h[v]++
	}
	return h
}

// Mask returns a boolean mask of the cells for which keep returns true.
func (c *ClassGrid) Mask(keep func(uint8) bool) *BitGrid {
	m := NewBitGrid(c.Geometry)
	for i, v := range c.Data {
		if keep(v) {
			m.setIdx(i)
		}
	}
	return m
}

// Clone returns a deep copy.
func (c *ClassGrid) Clone() *ClassGrid {
	out := NewClassGrid(c.Geometry)
	copy(out.Data, c.Data)
	return out
}

// FloatGrid is a raster of float64 values (fuel, hazard, elevation...).
type FloatGrid struct {
	Geometry
	Data []float64
}

// NewFloatGrid allocates a zero-filled float grid.
func NewFloatGrid(g Geometry) *FloatGrid {
	return &FloatGrid{Geometry: g, Data: make([]float64, g.Cells())}
}

// At returns the value at (cx, cy); out-of-range cells return 0.
func (f *FloatGrid) At(cx, cy int) float64 {
	if cx < 0 || cy < 0 || cx >= f.NX || cy >= f.NY {
		return 0
	}
	return f.Data[cy*f.NX+cx]
}

// Set stores v at (cx, cy); out-of-range cells are ignored.
func (f *FloatGrid) Set(cx, cy int, v float64) {
	if cx < 0 || cy < 0 || cx >= f.NX || cy >= f.NY {
		return
	}
	f.Data[cy*f.NX+cx] = v
}

// Sample returns the value at the projected point and whether the point is
// on the grid.
func (f *FloatGrid) Sample(p geom.Point) (float64, bool) {
	cx, cy, ok := f.CellOf(p)
	if !ok {
		return 0, false
	}
	return f.Data[cy*f.NX+cx], true
}

// MinMax returns the extreme values of the grid. An empty grid returns
// (0, 0).
func (f *FloatGrid) MinMax() (lo, hi float64) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Classify maps the grid through thresholds: the result class is the number
// of thresholds strictly below the value (so len(thresholds)+1 classes).
func (f *FloatGrid) Classify(thresholds []float64) *ClassGrid {
	out := NewClassGrid(f.Geometry)
	for i, v := range f.Data {
		var cls uint8
		for _, t := range thresholds {
			if v >= t {
				cls++
			} else {
				break
			}
		}
		out.Data[i] = cls
	}
	return out
}

// BitGrid is a compact boolean raster used for burned-area and buffer
// masks.
type BitGrid struct {
	Geometry
	bits []uint64
}

// NewBitGrid allocates an all-false bit grid.
func NewBitGrid(g Geometry) *BitGrid {
	return &BitGrid{Geometry: g, bits: make([]uint64, (g.Cells()+63)/64)}
}

// Get reports the bit at (cx, cy); out-of-range cells are false.
func (b *BitGrid) Get(cx, cy int) bool {
	if cx < 0 || cy < 0 || cx >= b.NX || cy >= b.NY {
		return false
	}
	i := cy*b.NX + cx
	return b.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets the bit at (cx, cy) to v; out-of-range cells are ignored.
func (b *BitGrid) Set(cx, cy int, v bool) {
	if cx < 0 || cy < 0 || cx >= b.NX || cy >= b.NY {
		return
	}
	i := cy*b.NX + cx
	if v {
		b.bits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (b *BitGrid) setIdx(i int) { b.bits[i>>6] |= 1 << (uint(i) & 63) }

func (b *BitGrid) getIdx(i int) bool { return b.bits[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set cells.
func (b *BitGrid) Count() int {
	n := 0
	for _, w := range b.bits {
		n += popcount(w)
	}
	return n
}

// Or sets b to the union of b and o. Returns ErrShapeMismatch when the
// geometries differ.
func (b *BitGrid) Or(o *BitGrid) error {
	if !b.Same(o.Geometry) {
		return ErrShapeMismatch
	}
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
	return nil
}

// AndNot clears in b every cell set in o.
func (b *BitGrid) AndNot(o *BitGrid) error {
	if !b.Same(o.Geometry) {
		return ErrShapeMismatch
	}
	for i := range b.bits {
		b.bits[i] &^= o.bits[i]
	}
	return nil
}

// Clone returns a deep copy.
func (b *BitGrid) Clone() *BitGrid {
	out := NewBitGrid(b.Geometry)
	copy(out.bits, b.bits)
	return out
}

// AreaSquareMeters returns the total area of set cells.
func (b *BitGrid) AreaSquareMeters() float64 {
	return float64(b.Count()) * b.CellArea()
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String summarizes the grid for debugging.
func (g Geometry) String() string {
	return fmt.Sprintf("raster %dx%d @%gm origin (%.0f, %.0f)", g.NX, g.NY, g.CellSize, g.MinX, g.MinY)
}
