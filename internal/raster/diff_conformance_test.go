package raster_test

// External test package: the differential driver imports raster, so the
// conformance tests run from outside to avoid the cycle.

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/refimpl/diffcheck"
)

// TestFillConformance sweeps the scanline rasterizer against the
// per-cell-center refimpl fill over seeded polygon batteries.
func TestFillConformance(t *testing.T) {
	if err := diffcheck.Sweep(150, diffcheck.CheckFill); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceConformance sweeps the two-pass Felzenszwalb-Huttenlocher
// distance transform and the dilation built on it against the
// brute-force twins. These must be bit-identical — both reduce to
// sqrt of the same exact integer times the cell size.
func TestDistanceConformance(t *testing.T) {
	if err := diffcheck.Sweep(150, diffcheck.CheckDistance); err != nil {
		t.Fatal(err)
	}
}

// TestParallelKernelConformance sweeps every tiled kernel at several
// explicit worker counts against its serial one-band result: masks and
// distances bit-identical, contours deeply equal, no carve-out.
func TestParallelKernelConformance(t *testing.T) {
	if err := diffcheck.Sweep(100, diffcheck.CheckParallel); err != nil {
		t.Fatal(err)
	}
}

// TestRasterGoldens rasterizes the hand-authored fixtures and runs the
// fill and distance twins over the result.
func TestRasterGoldens(t *testing.T) {
	for _, name := range diffcheck.FixtureNames() {
		if err := diffcheck.CheckGoldenRaster(name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistanceTransformEdgeRowsAndColumns pins the transform's behavior
// on masks whose set cells hug the grid border — the configuration where
// the column pass has no vertical neighbors on one side and the row pass
// starts from an infinite parabola. Distances are checked by hand, not
// just against the twin.
func TestDistanceTransformEdgeRowsAndColumns(t *testing.T) {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 10, NX: 5, NY: 4}
	cases := []struct {
		name string
		set  func(m *raster.BitGrid)
		at   [][3]float64 // cx, cy, want
	}{
		{
			name: "top-row",
			set: func(m *raster.BitGrid) {
				for cx := 0; cx < g.NX; cx++ {
					m.Set(cx, 0, true)
				}
			},
			at: [][3]float64{{0, 0, 0}, {2, 1, 10}, {4, 3, 30}},
		},
		{
			name: "left-column",
			set: func(m *raster.BitGrid) {
				for cy := 0; cy < g.NY; cy++ {
					m.Set(0, cy, true)
				}
			},
			at: [][3]float64{{0, 3, 0}, {1, 1, 10}, {4, 0, 40}},
		},
		{
			name: "corner-cell",
			set:  func(m *raster.BitGrid) { m.Set(4, 3, true) },
			at:   [][3]float64{{4, 3, 0}, {4, 0, 30}, {0, 3, 40}, {3, 2, math.Sqrt2 * 10}},
		},
		{
			name: "full-border",
			set: func(m *raster.BitGrid) {
				for cx := 0; cx < g.NX; cx++ {
					m.Set(cx, 0, true)
					m.Set(cx, g.NY-1, true)
				}
				for cy := 0; cy < g.NY; cy++ {
					m.Set(0, cy, true)
					m.Set(g.NX-1, cy, true)
				}
			},
			at: [][3]float64{{2, 1, 10}, {2, 2, 10}, {1, 1, 10}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mask := raster.NewBitGrid(g)
			c.set(mask)
			dt := raster.DistanceTransform(mask)
			for _, probe := range c.at {
				cx, cy, want := int(probe[0]), int(probe[1]), probe[2]
				if got := dt.At(cx, cy); got != want {
					t.Errorf("distance at (%d,%d) = %v, want %v", cx, cy, got, want)
				}
			}
			ref := refimpl.DistanceTransform(mask)
			for i := range dt.Data {
				if dt.Data[i] != ref.Data[i] {
					t.Fatalf("cell %d: transform %v, brute force %v", i, dt.Data[i], ref.Data[i])
				}
			}
		})
	}
}

// TestFillHugeCoordinatePolygon guards the span arithmetic at offsets
// far from the origin, where absolute float noise dwarfs the cell size.
func TestFillHugeCoordinatePolygon(t *testing.T) {
	const off = 2.5e6
	m := geom.MultiPolygon{{Exterior: geom.Ring{
		geom.Pt(off, off), geom.Pt(off+1000, off), geom.Pt(off+1000, off+800), geom.Pt(off, off+800),
	}}}
	g := raster.Geometry{MinX: off - 137, MinY: off - 137, CellSize: 100, NX: 14, NY: 12}
	opt := raster.FillMultiPolygon(g, m)
	ref := refimpl.FillMultiPolygon(g, m)
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if opt.Get(cx, cy) != ref.Get(cx, cy) {
				t.Fatalf("cell (%d,%d): scanline %v, per-cell %v", cx, cy, opt.Get(cx, cy), ref.Get(cx, cy))
			}
		}
	}
	if opt.Count() == 0 {
		t.Fatal("huge-coordinate polygon rasterized to nothing")
	}
}

// FuzzRasterDiff drives both raster twins from fuzz-chosen seeds.
func FuzzRasterDiff(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffcheck.CheckFill(seed); err != nil {
			t.Fatal(err)
		}
		if err := diffcheck.CheckDistance(seed); err != nil {
			t.Fatal(err)
		}
		if err := diffcheck.CheckParallel(seed); err != nil {
			t.Fatal(err)
		}
	})
}
