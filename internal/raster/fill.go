package raster

import (
	"slices"
	"sync"

	"fivealarms/internal/geom"
)

// fillTask is the fused scanline rasterizer: bands are row ranges, and
// every polygon whose row span intersects a band is scanline-filled by
// that band's worker — so a multi-fire union touches each row once per
// overlapping polygon in a single sweep instead of once per full-grid
// pass. Serial runs (one band) write the mask directly; parallel bands
// accumulate into private word tiles merged serially in band order,
// which keeps the result bit-identical at any worker count (the mask is
// a union, and OR is commutative).
type fillTask struct {
	wg    sync.WaitGroup
	mask  *BitGrid // direct-write target; used only when tiles is empty
	g     Geometry
	polys []geom.Polygon
	rows  []int // per-polygon inclusive row range: [2i]=lo, [2i+1]=hi; hi<lo means off-grid
	tiles []*[]uint64
	offs  []int // per-band first word index of its tile
}

var fillPool = sync.Pool{New: func() any { return new(fillTask) }}

func (t *fillTask) runBand(band, lo, hi int) {
	g := t.g
	var tile []uint64
	off := 0
	if len(t.tiles) > 0 {
		tile = *t.tiles[band]
		off = t.offs[band] * 64
	}
	xsP := getFloats(0)
	xs := (*xsP)[:0]
	for pi := range t.polys {
		rLo, rHi := t.rows[2*pi], t.rows[2*pi+1]
		if rLo < lo {
			rLo = lo
		}
		if rHi > hi-1 {
			rHi = hi - 1
		}
		if rLo > rHi {
			continue
		}
		p := &t.polys[pi]
		for cy := rLo; cy <= rHi; cy++ {
			y := g.MinY + (float64(cy)+0.5)*g.CellSize
			xs = xs[:0]
			// Even-odd crossings of this polygon's rings with the row's
			// center line: exterior first, then holes (the same ring order
			// the serial rasterizer used).
			for ri := -1; ri < len(p.Holes); ri++ {
				ring := p.Exterior
				if ri >= 0 {
					ring = p.Holes[ri]
				}
				n := len(ring)
				for i := 0; i < n; i++ {
					a := ring[i]
					b := ring[(i+1)%n]
					if (a.Y > y) == (b.Y > y) {
						continue
					}
					xs = append(xs, a.X+(b.X-a.X)*(y-a.Y)/(b.Y-a.Y))
				}
			}
			if len(xs) < 2 {
				continue
			}
			slices.Sort(xs)
			for i := 0; i+1 < len(xs); i += 2 {
				x0, x1 := xs[i], xs[i+1]
				cx0 := int((x0 - g.MinX) / g.CellSize)
				cx1 := int((x1 - g.MinX) / g.CellSize)
				if cx0 < 0 {
					cx0 = 0
				}
				if cx1 >= g.NX {
					cx1 = g.NX - 1
				}
				// Trim each end with the exact center-in-interval tests the
				// per-cell loop applied. Cell centers are monotone in cx, so
				// the passing cells form the contiguous range that survives
				// trimming, and the bulk word store below sets precisely the
				// cells the per-cell path set. The negated comparisons also
				// reproduce its NaN behavior (no cells set).
				for cx0 <= cx1 && !(g.MinX+(float64(cx0)+0.5)*g.CellSize >= x0) {
					cx0++
				}
				for cx1 >= cx0 && !(g.MinX+(float64(cx1)+0.5)*g.CellSize <= x1) {
					cx1--
				}
				if cx0 > cx1 {
					continue
				}
				if tile == nil {
					t.mask.SetSpan(cy, cx0, cx1)
				} else {
					setWordSpan(tile, cy*g.NX+cx0-off, cy*g.NX+cx1-off)
				}
			}
		}
	}
	*xsP = xs
	putFloats(xsP)
}

// FillPolygonsInto sets every cell of mask whose center lies inside any
// of the polygons (even-odd rule per polygon, union across polygons),
// leaving already-set cells set. This is the fused multi-layer sweep:
// one banded pass over the grid rasterizes the whole collection, so a
// season's fire perimeters cost one traversal instead of one per fire.
// workers bounds the parallelism (0 = GOMAXPROCS, 1 = serial); the
// result is bit-identical at any setting. Scratch comes from the arena,
// so repeated sweeps allocate nothing.
func FillPolygonsInto(mask *BitGrid, polys []geom.Polygon, workers int) {
	g := mask.Geometry
	if len(polys) == 0 || g.Cells() == 0 {
		return
	}
	rowsP := getInts(2 * len(polys))
	rows := *rowsP
	for i := range polys {
		rows[2*i], rows[2*i+1] = 1, 0
		bb := polys[i].BBox().Intersection(g.Bounds())
		if bb.IsEmpty() {
			continue
		}
		cy0 := int((bb.MinY - g.MinY) / g.CellSize)
		cy1 := int((bb.MaxY - g.MinY) / g.CellSize)
		if cy0 < 0 {
			cy0 = 0
		}
		if cy1 >= g.NY {
			cy1 = g.NY - 1
		}
		rows[2*i], rows[2*i+1] = cy0, cy1
	}

	bands := kernelBands(workers, g.Cells(), g.NY)
	t := fillPool.Get().(*fillTask)
	t.mask, t.g, t.polys, t.rows = mask, g, polys, rows
	t.tiles, t.offs = t.tiles[:0], t.offs[:0]
	if bands > 1 {
		for b := 0; b < bands; b++ {
			lo, hi := bandRange(b, g.NY, bands)
			w0 := (lo * g.NX) >> 6
			w1 := (hi*g.NX + 63) >> 6
			t.tiles = append(t.tiles, getWords(w1-w0))
			t.offs = append(t.offs, w0)
		}
	}
	runBands(t, &t.wg, g.NY, bands)
	if bands > 1 {
		// Serial merge in band order: adjacent bands share at most their
		// boundary words (rows are bit-packed back to back), and OR is
		// commutative, so the merged mask is schedule-independent.
		for b := range t.tiles {
			tile := *t.tiles[b]
			for i, w := range tile {
				if w != 0 {
					mask.bits[t.offs[b]+i] |= w
				}
			}
			putWords(t.tiles[b])
		}
		t.tiles, t.offs = t.tiles[:0], t.offs[:0]
	}
	t.mask, t.polys, t.rows = nil, nil, nil
	fillPool.Put(t)
	putInts(rowsP)
}

// FillPolygonsRows is FillPolygonsInto restricted to the row window
// [y0, y1): cells on rows outside the window are never written, and
// cells inside it are set exactly as the full fill would set them — the
// scanline rasterizer computes each row's spans from the polygon and
// that row's center line alone, so a row-restricted fill is bit-
// identical per row to the unrestricted one. This is the sharded study
// build's kernel: each shard fills its own band, and the word-level Or
// of the bands reproduces the monolithic mask's fingerprint. The window
// is clamped to the grid; an empty window is a no-op. The fill runs
// serially (a band is one shard's bounded slice of work; cross-shard
// parallelism comes from the pipeline scheduling the shards).
func FillPolygonsRows(mask *BitGrid, polys []geom.Polygon, y0, y1 int) {
	g := mask.Geometry
	if y0 < 0 {
		y0 = 0
	}
	if y1 > g.NY {
		y1 = g.NY
	}
	if len(polys) == 0 || g.Cells() == 0 || y0 >= y1 {
		return
	}
	rowsP := getInts(2 * len(polys))
	rows := *rowsP
	for i := range polys {
		rows[2*i], rows[2*i+1] = 1, 0
		bb := polys[i].BBox().Intersection(g.Bounds())
		if bb.IsEmpty() {
			continue
		}
		cy0 := int((bb.MinY - g.MinY) / g.CellSize)
		cy1 := int((bb.MaxY - g.MinY) / g.CellSize)
		if cy0 < 0 {
			cy0 = 0
		}
		if cy1 >= g.NY {
			cy1 = g.NY - 1
		}
		rows[2*i], rows[2*i+1] = cy0, cy1
	}
	t := fillPool.Get().(*fillTask)
	t.mask, t.g, t.polys, t.rows = mask, g, polys, rows
	t.tiles, t.offs = t.tiles[:0], t.offs[:0]
	t.runBand(0, y0, y1) // direct-write serial band over the window
	t.mask, t.polys, t.rows = nil, nil, nil
	fillPool.Put(t)
	putInts(rowsP)
}

// FillPolygon sets every cell of the returned mask whose center lies inside
// the polygon (even-odd rule over all rings), clipped to the geometry.
func FillPolygon(g Geometry, poly geom.Polygon) *BitGrid {
	mask := NewBitGrid(g)
	FillPolygonsInto(mask, []geom.Polygon{poly}, 0)
	return mask
}

// FillMultiPolygon sets every cell whose center lies inside any member
// polygon.
func FillMultiPolygon(g Geometry, m geom.MultiPolygon) *BitGrid {
	mask := NewBitGrid(g)
	FillMultiPolygonInto(mask, m)
	return mask
}

// FillMultiPolygonInto sets every cell of an existing mask whose center
// lies inside any member polygon, leaving already-set cells set. Union
// rasterization (e.g. all fire perimeters of a study period onto one
// national grid) fills into one shared mask this way instead of
// allocating a full grid per geometry and Or-ing them.
func FillMultiPolygonInto(mask *BitGrid, m geom.MultiPolygon) {
	FillPolygonsInto(mask, m, 0)
}

// FillMultiPolygonIntoWorkers is FillMultiPolygonInto with an explicit
// worker bound (0 = GOMAXPROCS, 1 = serial; bit-identical at any
// setting).
func FillMultiPolygonIntoWorkers(mask *BitGrid, m geom.MultiPolygon, workers int) {
	FillPolygonsInto(mask, m, workers)
}
