package raster

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadArcASCII(f *testing.F) {
	f.Add("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 10\n1 2\n3 4\n")
	f.Add("ncols 1\nnrows 1\nxllcenter 5\nyllcenter 5\ncellsize 10\nNODATA_value -9999\n-9999\n")
	f.Add("garbage")
	f.Add("ncols 1000000000\nnrows 1000000000\nxllcorner 0\nyllcorner 0\ncellsize 1\n")
	f.Fuzz(func(t *testing.T, s string) {
		// Guard the fuzzer against pathological allocations: the parser
		// validates row counts before allocating per-row, but a huge
		// ncols*nrows with matching data rows can't appear in small
		// inputs anyway.
		if len(s) > 1<<16 {
			return
		}
		g, valid, err := ReadArcASCII(strings.NewReader(s))
		if err != nil {
			return
		}
		// Successful parses re-serialize and re-parse to identical data.
		var buf bytes.Buffer
		if err := g.WriteArcASCII(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, _, err := ReadArcASCII(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Geometry != g.Geometry {
			t.Fatal("geometry changed in round trip")
		}
		_ = valid
	})
}
