package raster

import "fmt"

// Labels is the result of connected-component labeling: component IDs
// start at 1 (0 = background), stored per cell.
type Labels struct {
	Geometry
	Data []int32
	// N is the number of components.
	N int
	// Sizes holds the cell count per component, indexed by ID (Sizes[0]
	// is unused).
	Sizes []int
}

// LabelComponents labels the 4-connected components of the set cells of a
// mask with a two-pass union-find algorithm. Fire complexes, contiguous
// hazard patches and coverage islands all reduce to this.
func LabelComponents(mask *BitGrid) *Labels {
	g := mask.Geometry
	out := &Labels{Geometry: g, Data: make([]int32, g.Cells())}

	parent := []int32{0} // union-find; index 0 reserved for background
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		return ra
	}

	// First pass: provisional labels.
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if !mask.Get(cx, cy) {
				continue
			}
			var left, down int32
			if cx > 0 {
				left = out.Data[cy*g.NX+cx-1]
			}
			if cy > 0 {
				down = out.Data[(cy-1)*g.NX+cx]
			}
			switch {
			case left == 0 && down == 0:
				id := int32(len(parent))
				parent = append(parent, id)
				out.Data[cy*g.NX+cx] = id
			case left != 0 && down == 0:
				out.Data[cy*g.NX+cx] = left
			case left == 0 && down != 0:
				out.Data[cy*g.NX+cx] = down
			default:
				out.Data[cy*g.NX+cx] = union(left, down)
			}
		}
	}

	// Second pass: compress to dense sequential IDs.
	remap := make(map[int32]int32)
	for i, v := range out.Data {
		if v == 0 {
			continue
		}
		root := find(v)
		id, ok := remap[root]
		if !ok {
			id = int32(len(remap) + 1)
			remap[root] = id
		}
		out.Data[i] = id
	}
	out.N = len(remap)
	out.Sizes = make([]int, out.N+1)
	for _, v := range out.Data {
		if v > 0 {
			out.Sizes[v]++
		}
	}
	return out
}

// Largest returns the ID and size of the largest component (0, 0 when
// there are none).
func (l *Labels) Largest() (int, int) {
	best, bestN := 0, 0
	for id := 1; id <= l.N; id++ {
		if l.Sizes[id] > bestN {
			best, bestN = id, l.Sizes[id]
		}
	}
	return best, bestN
}

// ComponentMask returns the mask of one component.
func (l *Labels) ComponentMask(id int) *BitGrid {
	m := NewBitGrid(l.Geometry)
	for i, v := range l.Data {
		if int(v) == id {
			m.setIdx(i)
		}
	}
	return m
}

// Downsample returns a class grid at factor-times-coarser resolution,
// assigning each coarse cell the majority class of its fine cells (ties
// break toward the higher class value, biasing conservative for hazard
// classes). factor must be >= 1.
func (c *ClassGrid) Downsample(factor int) *ClassGrid {
	if factor <= 1 {
		return c.Clone()
	}
	g := Geometry{
		MinX: c.MinX, MinY: c.MinY,
		CellSize: c.CellSize * float64(factor),
		NX:       (c.NX + factor - 1) / factor,
		NY:       (c.NY + factor - 1) / factor,
	}
	out := NewClassGrid(g)
	var counts [256]int
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			for i := range counts {
				counts[i] = 0
			}
			for fy := cy * factor; fy < (cy+1)*factor && fy < c.NY; fy++ {
				for fx := cx * factor; fx < (cx+1)*factor && fx < c.NX; fx++ {
					counts[c.Data[fy*c.NX+fx]]++
				}
			}
			best := 0
			for v := 1; v < 256; v++ {
				if counts[v] >= counts[best] {
					best = v
				}
			}
			out.Set(cx, cy, uint8(best))
		}
	}
	return out
}

// ZonalStats summarizes a float field per zone of a class grid.
type ZonalStats struct {
	Count    int
	Sum      float64
	Min, Max float64
	Mean     float64
}

// ZonalStatistics computes per-class statistics of field over zones. The
// grids must share geometry.
func ZonalStatistics(zones *ClassGrid, field *FloatGrid) (map[uint8]ZonalStats, error) {
	if !zones.Same(field.Geometry) {
		return nil, fmt.Errorf("raster: zonal statistics: %w", ErrShapeMismatch)
	}
	out := map[uint8]ZonalStats{}
	for i, z := range zones.Data {
		v := field.Data[i]
		s, ok := out[z]
		if !ok {
			s = ZonalStats{Min: v, Max: v}
		}
		s.Count++
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		out[z] = s
	}
	for z, s := range out {
		if s.Count > 0 {
			s.Mean = s.Sum / float64(s.Count)
		}
		out[z] = s
	}
	return out, nil
}
