package raster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Esri ASCII grid I/O. The original study's workflow lived in ArcGIS;
// this is the simplest interchange format its tooling reads natively, so
// synthetic WHP and hazard rasters can be inspected alongside the real
// products.

// WriteArcASCII serializes the float grid as an Esri ASCII raster
// (NODATA -9999). Rows are written north to south per the format.
func (f *FloatGrid) WriteArcASCII(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		"ncols %d\nnrows %d\nxllcorner %g\nyllcorner %g\ncellsize %g\nNODATA_value -9999\n",
		f.NX, f.NY, f.MinX, f.MinY, f.CellSize); err != nil {
		return fmt.Errorf("raster: writing ArcASCII header: %w", err)
	}
	for cy := f.NY - 1; cy >= 0; cy-- {
		for cx := 0; cx < f.NX; cx++ {
			if cx > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("raster: writing ArcASCII: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(f.Data[cy*f.NX+cx], 'g', -1, 64)); err != nil {
				return fmt.Errorf("raster: writing ArcASCII: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("raster: writing ArcASCII: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("raster: flushing ArcASCII: %w", err)
	}
	return nil
}

// WriteArcASCIIClasses serializes the class grid as an Esri ASCII raster
// of integer class codes.
func (c *ClassGrid) WriteArcASCIIClasses(w io.Writer) error {
	f := NewFloatGrid(c.Geometry)
	for i, v := range c.Data {
		f.Data[i] = float64(v)
	}
	return f.WriteArcASCII(w)
}

// ReadArcASCII parses an Esri ASCII raster into a float grid. Both
// xllcorner/yllcorner and xllcenter/yllcenter header variants are
// accepted; NODATA cells become NaN-free zeros with ok=false in the
// returned mask.
func ReadArcASCII(r io.Reader) (*FloatGrid, *BitGrid, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	hdr := map[string]float64{}
	var rows [][]string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && !isNumeric(fields[0]) {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("raster: ArcASCII header %q: %w", line, err)
			}
			hdr[strings.ToLower(fields[0])] = v
			continue
		}
		rows = append(rows, fields)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("raster: reading ArcASCII: %w", err)
	}

	ncols := int(hdr["ncols"])
	nrows := int(hdr["nrows"])
	cell := hdr["cellsize"]
	if ncols <= 0 || nrows <= 0 || cell <= 0 {
		return nil, nil, fmt.Errorf("raster: ArcASCII header incomplete (ncols=%d nrows=%d cellsize=%g)", ncols, nrows, cell)
	}
	// Refuse absurd headers before allocating: a malicious or corrupt
	// header must not drive a multi-gigabyte grid allocation.
	const maxCells = 1 << 28
	if int64(ncols)*int64(nrows) > maxCells {
		return nil, nil, fmt.Errorf("raster: ArcASCII grid %dx%d exceeds the %d-cell limit", ncols, nrows, maxCells)
	}
	minX, okX := hdr["xllcorner"]
	minY, okY := hdr["yllcorner"]
	if !okX {
		if cx, ok := hdr["xllcenter"]; ok {
			minX = cx - cell/2
			okX = true
		}
	}
	if !okY {
		if cy, ok := hdr["yllcenter"]; ok {
			minY = cy - cell/2
			okY = true
		}
	}
	if !okX || !okY {
		return nil, nil, fmt.Errorf("raster: ArcASCII header missing corner coordinates")
	}
	nodata, hasNodata := hdr["nodata_value"]

	if len(rows) != nrows {
		return nil, nil, fmt.Errorf("raster: ArcASCII has %d data rows, header says %d", len(rows), nrows)
	}
	g := Geometry{MinX: minX, MinY: minY, CellSize: cell, NX: ncols, NY: nrows}
	out := NewFloatGrid(g)
	valid := NewBitGrid(g)
	for ry, fields := range rows {
		if len(fields) != ncols {
			return nil, nil, fmt.Errorf("raster: ArcASCII row %d has %d columns, want %d", ry, len(fields), ncols)
		}
		cy := nrows - 1 - ry // file rows run north to south
		for cx, s := range fields {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("raster: ArcASCII row %d col %d: %w", ry, cx, err)
			}
			if hasNodata && v == nodata { //fivealarms:allow(floateq) NODATA is a sentinel parsed verbatim from the header, never computed
				continue
			}
			out.Set(cx, cy, v)
			valid.Set(cx, cy, true)
		}
	}
	return out, valid, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
