package raster

import (
	"bytes"
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
)

func testGeom(nx, ny int, cell float64) Geometry {
	return Geometry{MinX: 0, MinY: 0, CellSize: cell, NX: nx, NY: ny}
}

func TestGeometryBasics(t *testing.T) {
	g := NewGeometry(geom.NewBBox(geom.Pt(10, 20), geom.Pt(110, 70)), 10)
	if g.NX != 11 || g.NY != 6 {
		t.Errorf("NX,NY = %d,%d", g.NX, g.NY)
	}
	if g.Cells() != 66 {
		t.Errorf("Cells = %d", g.Cells())
	}
	if g.CellArea() != 100 {
		t.Errorf("CellArea = %v", g.CellArea())
	}
	b := g.Bounds()
	if b.MinX != 10 || b.MinY != 20 {
		t.Errorf("Bounds = %v", b)
	}

	cx, cy, ok := g.CellOf(geom.Pt(25, 35))
	if !ok || cx != 1 || cy != 1 {
		t.Errorf("CellOf = %d,%d,%v", cx, cy, ok)
	}
	if _, _, ok := g.CellOf(geom.Pt(5, 35)); ok {
		t.Error("point left of grid should be outside")
	}
	if _, _, ok := g.CellOf(geom.Pt(500, 35)); ok {
		t.Error("point right of grid should be outside")
	}
	c := g.Center(0, 0)
	if c.X != 15 || c.Y != 25 {
		t.Errorf("Center = %v", c)
	}
}

func TestGeometryZeroCellSize(t *testing.T) {
	g := NewGeometry(geom.NewBBox(geom.Pt(0, 0), geom.Pt(5, 5)), 0)
	if g.CellSize <= 0 {
		t.Error("cell size must be coerced positive")
	}
}

func TestClassGrid(t *testing.T) {
	c := NewClassGrid(testGeom(10, 10, 1))
	c.Set(3, 4, 7)
	if c.At(3, 4) != 7 {
		t.Error("Set/At")
	}
	if c.At(-1, 0) != 0 || c.At(0, 100) != 0 {
		t.Error("out-of-range At should be 0")
	}
	c.Set(-5, 2, 9) // must not panic
	v, ok := c.Sample(geom.Pt(3.5, 4.5))
	if !ok || v != 7 {
		t.Errorf("Sample = %v,%v", v, ok)
	}
	if _, ok := c.Sample(geom.Pt(-1, -1)); ok {
		t.Error("sample off-grid should report !ok")
	}
	h := c.Histogram()
	if h[7] != 1 || h[0] != 99 {
		t.Errorf("Histogram: h[7]=%d h[0]=%d", h[7], h[0])
	}
	cl := c.Clone()
	cl.Set(0, 0, 1)
	if c.At(0, 0) != 0 {
		t.Error("Clone must be independent")
	}
}

func TestClassGridMask(t *testing.T) {
	c := NewClassGrid(testGeom(4, 4, 1))
	c.Set(1, 1, 3)
	c.Set(2, 2, 5)
	m := c.Mask(func(v uint8) bool { return v >= 3 })
	if m.Count() != 2 {
		t.Errorf("mask count = %d", m.Count())
	}
	if !m.Get(1, 1) || !m.Get(2, 2) || m.Get(0, 0) {
		t.Error("mask cells wrong")
	}
}

func TestFloatGridClassify(t *testing.T) {
	f := NewFloatGrid(testGeom(3, 1, 1))
	f.Set(0, 0, 0.1)
	f.Set(1, 0, 0.5)
	f.Set(2, 0, 0.9)
	c := f.Classify([]float64{0.3, 0.7})
	if c.At(0, 0) != 0 || c.At(1, 0) != 1 || c.At(2, 0) != 2 {
		t.Errorf("Classify = %d,%d,%d", c.At(0, 0), c.At(1, 0), c.At(2, 0))
	}
	lo, hi := f.MinMax()
	if lo != 0.1 || hi != 0.9 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
}

func TestBitGridOps(t *testing.T) {
	g := testGeom(8, 8, 1)
	a := NewBitGrid(g)
	b := NewBitGrid(g)
	a.Set(1, 1, true)
	b.Set(2, 2, true)
	b.Set(1, 1, true)
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Errorf("Or count = %d", a.Count())
	}
	if err := a.AndNot(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 {
		t.Errorf("AndNot count = %d", a.Count())
	}
	a.Set(3, 3, true)
	a.Set(3, 3, false)
	if a.Get(3, 3) {
		t.Error("Set false failed")
	}
	other := NewBitGrid(testGeom(4, 4, 1))
	if err := a.Or(other); err != ErrShapeMismatch {
		t.Errorf("shape mismatch error = %v", err)
	}
	if a.AreaSquareMeters() != 0 {
		t.Error("area of empty mask")
	}
	a.Set(0, 0, true)
	if a.AreaSquareMeters() != 1 {
		t.Errorf("area = %v", a.AreaSquareMeters())
	}
}

// bruteDistance computes the exact EDT by brute force for the oracle test.
func bruteDistance(mask *BitGrid) *FloatGrid {
	g := mask.Geometry
	out := NewFloatGrid(g)
	var set [][2]int
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if mask.Get(cx, cy) {
				set = append(set, [2]int{cx, cy})
			}
		}
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			best := math.Inf(1)
			for _, s := range set {
				dx := float64(cx - s[0])
				dy := float64(cy - s[1])
				d := math.Sqrt(dx*dx+dy*dy) * g.CellSize
				if d < best {
					best = d
				}
			}
			out.Set(cx, cy, best)
		}
	}
	return out
}

func TestDistanceTransformMatchesBruteForce(t *testing.T) {
	s := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		g := testGeom(20+s.Intn(30), 20+s.Intn(30), 1+s.Float64()*10)
		mask := NewBitGrid(g)
		nSet := s.Intn(30)
		for i := 0; i < nSet; i++ {
			mask.Set(s.Intn(g.NX), s.Intn(g.NY), true)
		}
		got := DistanceTransform(mask)
		want := bruteDistance(mask)
		for i := range got.Data {
			gv, wv := got.Data[i], want.Data[i]
			if math.IsInf(wv, 1) {
				if !math.IsInf(gv, 1) {
					t.Fatalf("trial %d cell %d: got %v, want +Inf", trial, i, gv)
				}
				continue
			}
			if math.Abs(gv-wv) > 1e-9*math.Max(1, wv) {
				t.Fatalf("trial %d cell %d: got %v, want %v", trial, i, gv, wv)
			}
		}
	}
}

func TestDistanceTransformEmptyMask(t *testing.T) {
	mask := NewBitGrid(testGeom(10, 10, 5))
	dt := DistanceTransform(mask)
	for _, v := range dt.Data {
		if !math.IsInf(v, 1) {
			t.Fatal("empty mask should give +Inf everywhere")
		}
	}
}

func TestDistanceTransformSetCellsZero(t *testing.T) {
	mask := NewBitGrid(testGeom(15, 15, 3))
	mask.Set(7, 7, true)
	mask.Set(2, 11, true)
	dt := DistanceTransform(mask)
	if dt.At(7, 7) != 0 || dt.At(2, 11) != 0 {
		t.Error("set cells must have distance 0")
	}
	// Distance grows with cell size.
	if got := dt.At(8, 7); got != 3 {
		t.Errorf("adjacent cell distance = %v, want 3 (cell size)", got)
	}
	if got := dt.At(8, 8); math.Abs(got-3*math.Sqrt2) > 1e-9 {
		t.Errorf("diagonal distance = %v, want 3*sqrt2", got)
	}
}

func TestDilateByDistance(t *testing.T) {
	g := testGeom(21, 21, 1)
	mask := NewBitGrid(g)
	mask.Set(10, 10, true)
	grown := DilateByDistance(mask, 3)
	// Disc of radius 3 in cell units: cells within distance 3 of center.
	want := 0
	for cy := 0; cy < 21; cy++ {
		for cx := 0; cx < 21; cx++ {
			dx, dy := float64(cx-10), float64(cy-10)
			if math.Sqrt(dx*dx+dy*dy) <= 3 {
				want++
			}
		}
	}
	if grown.Count() != want {
		t.Errorf("dilated count = %d, want %d", grown.Count(), want)
	}
	if !grown.Get(10, 10) {
		t.Error("original cell must remain set")
	}
	same := DilateByDistance(mask, 0)
	if same.Count() != 1 {
		t.Error("zero distance should clone")
	}
}

func TestErodeByDistance(t *testing.T) {
	g := testGeom(20, 20, 1)
	mask := NewBitGrid(g)
	for cy := 5; cy <= 15; cy++ {
		for cx := 5; cx <= 15; cx++ {
			mask.Set(cx, cy, true)
		}
	}
	eroded := ErodeByDistance(mask, 2)
	if eroded.Count() >= mask.Count() {
		t.Error("erosion must shrink")
	}
	if !eroded.Get(10, 10) {
		t.Error("deep interior must survive")
	}
	if eroded.Get(5, 5) {
		t.Error("corner must be eroded")
	}
}

func TestDilate8(t *testing.T) {
	g := testGeom(9, 9, 1)
	mask := NewBitGrid(g)
	mask.Set(4, 4, true)
	d1 := Dilate8(mask, 1)
	if d1.Count() != 9 {
		t.Errorf("one step of 8-dilation = %d cells, want 9", d1.Count())
	}
	d2 := Dilate8(mask, 2)
	if d2.Count() != 25 {
		t.Errorf("two steps = %d cells, want 25", d2.Count())
	}
}

func TestFillPolygonSquare(t *testing.T) {
	g := testGeom(20, 20, 1)
	// Square covering cells 5..14 in both axes (centers 5.5..14.5).
	poly := geom.NewPolygon(geom.NewRing(
		geom.Pt(5, 5), geom.Pt(15, 5), geom.Pt(15, 15), geom.Pt(5, 15),
	))
	mask := FillPolygon(g, poly)
	if mask.Count() != 100 {
		t.Errorf("filled cells = %d, want 100", mask.Count())
	}
	if !mask.Get(5, 5) || !mask.Get(14, 14) {
		t.Error("corner cells should be filled")
	}
	if mask.Get(4, 5) || mask.Get(15, 15) {
		t.Error("outside cells should not be filled")
	}
}

func TestFillPolygonWithHole(t *testing.T) {
	g := testGeom(20, 20, 1)
	poly := geom.NewPolygon(
		geom.NewRing(geom.Pt(2, 2), geom.Pt(18, 2), geom.Pt(18, 18), geom.Pt(2, 18)),
		geom.NewRing(geom.Pt(8, 8), geom.Pt(12, 8), geom.Pt(12, 12), geom.Pt(8, 12)),
	)
	mask := FillPolygon(g, poly)
	if mask.Get(10, 10) {
		t.Error("hole center should be unfilled")
	}
	if !mask.Get(5, 5) {
		t.Error("solid part should be filled")
	}
	want := 16*16 - 4*4
	if mask.Count() != want {
		t.Errorf("filled = %d, want %d", mask.Count(), want)
	}
}

func TestFillPolygonOffGrid(t *testing.T) {
	g := testGeom(10, 10, 1)
	poly := geom.NewPolygon(geom.NewRing(
		geom.Pt(100, 100), geom.Pt(110, 100), geom.Pt(110, 110), geom.Pt(100, 110),
	))
	if FillPolygon(g, poly).Count() != 0 {
		t.Error("off-grid polygon should fill nothing")
	}
	// Polygon partially off-grid clips.
	poly2 := geom.NewPolygon(geom.NewRing(
		geom.Pt(-5, -5), geom.Pt(5, -5), geom.Pt(5, 5), geom.Pt(-5, 5),
	))
	m := FillPolygon(g, poly2)
	if m.Count() != 25 {
		t.Errorf("clipped fill = %d, want 25", m.Count())
	}
}

func TestTraceContoursSingleCell(t *testing.T) {
	g := testGeom(5, 5, 2)
	mask := NewBitGrid(g)
	mask.Set(2, 2, true)
	mp := TraceContours(mask)
	if len(mp) != 1 {
		t.Fatalf("polygons = %d, want 1", len(mp))
	}
	p := mp[0]
	if len(p.Holes) != 0 {
		t.Error("single cell should have no holes")
	}
	if p.Area() != 4 {
		t.Errorf("area = %v, want 4", p.Area())
	}
	if !p.Exterior.IsCCW() {
		t.Error("exterior should be CCW")
	}
	if !p.ContainsPoint(g.Center(2, 2)) {
		t.Error("polygon should contain the cell center")
	}
}

func TestTraceContoursRectangle(t *testing.T) {
	g := testGeom(10, 10, 1)
	mask := NewBitGrid(g)
	for cy := 2; cy <= 5; cy++ {
		for cx := 3; cx <= 7; cx++ {
			mask.Set(cx, cy, true)
		}
	}
	mp := TraceContours(mask)
	if len(mp) != 1 {
		t.Fatalf("polygons = %d, want 1", len(mp))
	}
	if got := mp[0].Area(); got != 20 {
		t.Errorf("area = %v, want 20", got)
	}
	// Compressed rectangle should have exactly 4 vertices.
	if got := len(mp[0].Exterior); got != 4 {
		t.Errorf("vertices = %d, want 4", got)
	}
}

func TestTraceContoursWithHole(t *testing.T) {
	g := testGeom(12, 12, 1)
	mask := NewBitGrid(g)
	for cy := 1; cy <= 9; cy++ {
		for cx := 1; cx <= 9; cx++ {
			mask.Set(cx, cy, true)
		}
	}
	// Punch a 3x3 hole.
	for cy := 4; cy <= 6; cy++ {
		for cx := 4; cx <= 6; cx++ {
			mask.Set(cx, cy, false)
		}
	}
	mp := TraceContours(mask)
	if len(mp) != 1 {
		t.Fatalf("polygons = %d, want 1", len(mp))
	}
	if len(mp[0].Holes) != 1 {
		t.Fatalf("holes = %d, want 1", len(mp[0].Holes))
	}
	if got := mp[0].Area(); got != 81-9 {
		t.Errorf("area = %v, want 72", got)
	}
	if mp[0].ContainsPoint(g.Center(5, 5)) {
		t.Error("hole center must be outside the polygon")
	}
	if !mp[0].ContainsPoint(g.Center(2, 2)) {
		t.Error("ring interior must be inside")
	}
}

func TestTraceContoursTwoComponents(t *testing.T) {
	g := testGeom(12, 6, 1)
	mask := NewBitGrid(g)
	mask.Set(1, 1, true)
	mask.Set(1, 2, true)
	mask.Set(9, 3, true)
	mp := TraceContours(mask)
	if len(mp) != 2 {
		t.Fatalf("polygons = %d, want 2", len(mp))
	}
	if got := mp.Area(); got != 3 {
		t.Errorf("total area = %v, want 3", got)
	}
}

func TestTraceContoursDiagonalTouch(t *testing.T) {
	// Two cells touching only at a corner are separate components under
	// 4-connectivity and must trace to two simple polygons.
	g := testGeom(6, 6, 1)
	mask := NewBitGrid(g)
	mask.Set(2, 2, true)
	mask.Set(3, 3, true)
	mp := TraceContours(mask)
	if len(mp) != 2 {
		t.Fatalf("polygons = %d, want 2 (diagonal cells are disjoint)", len(mp))
	}
	for _, p := range mp {
		if p.Area() != 1 {
			t.Errorf("each diagonal cell area = %v, want 1", p.Area())
		}
	}
}

func TestTraceContoursEmpty(t *testing.T) {
	if mp := TraceContours(NewBitGrid(testGeom(5, 5, 1))); mp != nil {
		t.Errorf("empty mask contours = %v", mp)
	}
}

func TestFillTraceRoundTrip(t *testing.T) {
	// Fill a random blobby mask, trace, re-fill from traced polygons: must
	// reproduce the mask exactly (cell centers are strictly inside traced
	// rectilinear boundaries).
	s := rng.New(123)
	g := testGeom(40, 40, 1)
	mask := NewBitGrid(g)
	// A few random rectangles.
	for r := 0; r < 6; r++ {
		x0, y0 := s.Intn(30), s.Intn(30)
		w, h := 2+s.Intn(8), 2+s.Intn(8)
		for cy := y0; cy < y0+h && cy < 40; cy++ {
			for cx := x0; cx < x0+w && cx < 40; cx++ {
				mask.Set(cx, cy, true)
			}
		}
	}
	mp := TraceContours(mask)
	refill := FillMultiPolygon(g, mp)
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if mask.Get(cx, cy) != refill.Get(cx, cy) {
				t.Fatalf("round-trip mismatch at (%d,%d)", cx, cy)
			}
		}
	}
}

func TestWritePNG(t *testing.T) {
	c := NewClassGrid(testGeom(8, 8, 1))
	c.Set(1, 1, 1)
	var buf bytes.Buffer
	pal := Palette{0: {R: 0, G: 0, B: 0, A: 255}, 1: {R: 255, A: 255}}
	if err := c.WritePNG(&buf, pal); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 8 || string(buf.Bytes()[1:4]) != "PNG" {
		t.Error("output is not a PNG")
	}
}

func TestWritePGM(t *testing.T) {
	f := NewFloatGrid(testGeom(4, 4, 1))
	f.Set(2, 2, 10)
	var buf bytes.Buffer
	if err := f.WritePGM(&buf, 0, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n4 4\n255\n")) {
		t.Errorf("PGM header wrong: %q", buf.Bytes()[:12])
	}
	if buf.Len() != 11+16 {
		t.Errorf("PGM size = %d", buf.Len())
	}
	// Degenerate range must not divide by zero.
	if err := f.WritePGM(&bytes.Buffer{}, 5, 5); err != nil {
		t.Fatal(err)
	}
}

func TestASCII(t *testing.T) {
	c := NewClassGrid(testGeom(3, 2, 1))
	c.Set(0, 1, 1) // NW corner
	got := c.ASCII(map[uint8]rune{1: '#'}, 0)
	want := "#..\n...\n"
	if got != want {
		t.Errorf("ASCII = %q, want %q", got, want)
	}
	b := NewBitGrid(testGeom(2, 2, 1))
	b.Set(1, 0, true) // SE corner
	if got := b.BitASCII(0); got != "..\n.#\n" {
		t.Errorf("BitASCII = %q", got)
	}
}

func BenchmarkDistanceTransform256(b *testing.B) {
	g := testGeom(256, 256, 270)
	mask := NewBitGrid(g)
	s := rng.New(9)
	for i := 0; i < 200; i++ {
		mask.Set(s.Intn(256), s.Intn(256), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DistanceTransform(mask)
	}
}

func BenchmarkDilate8x3_256(b *testing.B) {
	g := testGeom(256, 256, 270)
	mask := NewBitGrid(g)
	s := rng.New(9)
	for i := 0; i < 200; i++ {
		mask.Set(s.Intn(256), s.Intn(256), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dilate8(mask, 3)
	}
}

func BenchmarkFillPolygon(b *testing.B) {
	g := testGeom(512, 512, 100)
	poly := geom.NewPolygon(geom.RegularRing(geom.Pt(25600, 25600), 20000, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FillPolygon(g, poly)
	}
}

func BenchmarkTraceContours(b *testing.B) {
	g := testGeom(256, 256, 100)
	poly := geom.NewPolygon(geom.RegularRing(geom.Pt(12800, 12800), 10000, 64))
	mask := FillPolygon(g, poly)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TraceContours(mask)
	}
}
