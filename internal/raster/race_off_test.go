//go:build !race

package raster

// raceEnabled is false in ordinary builds; see race_on_test.go.
const raceEnabled = false
