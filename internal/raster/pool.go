package raster

import "sync"

// The scratch arena: sync.Pool-backed buffers behind every tiled kernel.
// Kernels draw their intermediate state — the distance transform's
// column field, the parabola-envelope buffers, scanline crossing lists,
// per-band tile words — from these pools instead of allocating per call,
// so ensemble loops that sweep many fire sets over one fixed geometry
// run with zero steady-state allocations.
//
// Pools are capacity-classed rather than literally keyed by Geometry: a
// get returns a buffer with at least the requested length, growing the
// pooled allocation the first time a larger geometry appears. Under a
// fixed geometry (the common ensemble case) every get is a hit.
//
// Ownership rule: a buffer obtained from the arena is owned exclusively
// by the goroutine that got it until it is put back, after which it must
// not be touched. Grids handed to callers (every exported kernel's
// return value) are ordinary garbage-collected allocations, never arena
// buffers — only AcquireBitGrid/AcquireFloatGrid expose arena-backed
// grids, and releasing those is the caller's explicit opt-in.
var arena struct {
	floats   sync.Pool // *[]float64
	ints     sync.Pool // *[]int
	words    sync.Pool // *[]uint64
	bitGrids sync.Pool // *BitGrid
	fltGrids sync.Pool // *FloatGrid
}

// getFloats returns a float scratch buffer of length n with unspecified
// contents.
func getFloats(n int) *[]float64 {
	p, _ := arena.floats.Get().(*[]float64)
	if p == nil || cap(*p) < n {
		s := make([]float64, n)
		p = &s
	}
	*p = (*p)[:n]
	return p
}

func putFloats(p *[]float64) { arena.floats.Put(p) }

// getInts returns an int scratch buffer of length n with unspecified
// contents.
func getInts(n int) *[]int {
	p, _ := arena.ints.Get().(*[]int)
	if p == nil || cap(*p) < n {
		s := make([]int, n)
		p = &s
	}
	*p = (*p)[:n]
	return p
}

func putInts(p *[]int) { arena.ints.Put(p) }

// getWords returns a zeroed word scratch buffer of length n — the
// per-band tile masks the fill and dilation kernels accumulate into
// before the serial merge.
func getWords(n int) *[]uint64 {
	p, _ := arena.words.Get().(*[]uint64)
	if p == nil || cap(*p) < n {
		s := make([]uint64, n)
		p = &s
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

func putWords(p *[]uint64) { arena.words.Put(p) }

// AcquireBitGrid returns an all-false bit grid with the given geometry,
// reusing a pooled allocation when one large enough exists. The caller
// owns the grid until ReleaseBitGrid; releasing is optional (an acquired
// grid is an ordinary value and may simply escape to the garbage
// collector), but steady-state-alloc-free loops must release.
func AcquireBitGrid(g Geometry) *BitGrid {
	nw := (g.Cells() + 63) / 64
	b, _ := arena.bitGrids.Get().(*BitGrid)
	if b == nil {
		return NewBitGrid(g)
	}
	if cap(b.bits) < nw {
		b.bits = make([]uint64, nw)
	} else {
		b.bits = b.bits[:nw]
		clear(b.bits)
	}
	b.Geometry = g
	return b
}

// ReleaseBitGrid returns a grid to the arena. The grid must not be used
// afterwards. Releasing nil is a no-op; grids from NewBitGrid may be
// released too (the arena adopts their storage).
func ReleaseBitGrid(b *BitGrid) {
	if b != nil {
		arena.bitGrids.Put(b)
	}
}

// AcquireFloatGrid returns a zero-filled float grid with the given
// geometry from the arena; see AcquireBitGrid for the ownership rules.
func AcquireFloatGrid(g Geometry) *FloatGrid {
	n := g.Cells()
	f, _ := arena.fltGrids.Get().(*FloatGrid)
	if f == nil {
		return NewFloatGrid(g)
	}
	if cap(f.Data) < n {
		f.Data = make([]float64, n)
	} else {
		f.Data = f.Data[:n]
		clear(f.Data)
	}
	f.Geometry = g
	return f
}

// ReleaseFloatGrid returns a grid to the arena. The grid must not be
// used afterwards; releasing nil is a no-op.
func ReleaseFloatGrid(f *FloatGrid) {
	if f != nil {
		arena.fltGrids.Put(f)
	}
}
