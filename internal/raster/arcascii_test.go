package raster

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestArcASCIIRoundTrip(t *testing.T) {
	f := NewFloatGrid(Geometry{MinX: 100, MinY: 200, CellSize: 30, NX: 4, NY: 3})
	for i := range f.Data {
		f.Data[i] = float64(i) * 1.5
	}
	var buf bytes.Buffer
	if err := f.WriteArcASCII(&buf); err != nil {
		t.Fatal(err)
	}
	back, valid, err := ReadArcASCII(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Geometry != f.Geometry {
		t.Fatalf("geometry %v != %v", back.Geometry, f.Geometry)
	}
	for i := range f.Data {
		if back.Data[i] != f.Data[i] {
			t.Fatalf("cell %d: %v != %v", i, back.Data[i], f.Data[i])
		}
	}
	if valid.Count() != f.Cells() {
		t.Errorf("valid cells = %d", valid.Count())
	}
}

func TestArcASCIINodata(t *testing.T) {
	in := `ncols 2
nrows 2
xllcorner 0
yllcorner 0
cellsize 10
NODATA_value -9999
1 -9999
3 4
`
	f, valid, err := ReadArcASCII(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// File rows are north-to-south: first row is cy=1.
	if f.At(0, 1) != 1 || f.At(1, 0) != 4 {
		t.Errorf("values: %v", f.Data)
	}
	if valid.Get(1, 1) {
		t.Error("NODATA cell should be invalid")
	}
	if !valid.Get(0, 1) || !valid.Get(1, 0) {
		t.Error("data cells should be valid")
	}
}

func TestArcASCIICenterVariant(t *testing.T) {
	in := `ncols 2
nrows 1
xllcenter 5
yllcenter 5
cellsize 10
1 2
`
	f, _, err := ReadArcASCII(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.MinX != 0 || f.MinY != 0 {
		t.Errorf("corner from center: (%v,%v)", f.MinX, f.MinY)
	}
}

func TestArcASCIIErrors(t *testing.T) {
	cases := []string{
		"",
		"ncols 2\nnrows 1\ncellsize 10\n1 2\n", // missing corner
		"ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 10\n1 2\n",   // row count
		"ncols 3\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 10\n1 2\n",   // col count
		"ncols 2\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 10\n1 abc\n", // bad value
		"ncols X\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 10\n1 2\n",   // bad header
	}
	for i, c := range cases {
		if _, _, err := ReadArcASCII(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestArcASCIIClassExport(t *testing.T) {
	c := NewClassGrid(Geometry{MinX: 0, MinY: 0, CellSize: 5, NX: 2, NY: 2})
	c.Set(0, 0, 6)
	var buf bytes.Buffer
	if err := c.WriteArcASCIIClasses(&buf); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadArcASCII(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.At(0, 0) != 6 {
		t.Errorf("class round trip = %v", back.At(0, 0))
	}
}

func TestArcASCIILargeValues(t *testing.T) {
	f := NewFloatGrid(Geometry{MinX: -2.4e6, MinY: 3e5, CellSize: 270, NX: 3, NY: 2})
	f.Set(1, 1, math.Pi*1e6)
	var buf bytes.Buffer
	if err := f.WriteArcASCII(&buf); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadArcASCII(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.At(1, 1)-math.Pi*1e6) > 1e-6 {
		t.Errorf("precision lost: %v", back.At(1, 1))
	}
}
