package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueDeterministic(t *testing.T) {
	a := New(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.37
		y := float64(i) * 0.73
		if a.Value(x, y) != b.Value(x, y) {
			t.Fatalf("same seed differs at (%v,%v)", x, y)
		}
	}
}

func TestValueSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	diff := 0
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.61
		if a.Value(x, x) != b.Value(x, x) {
			diff++
		}
	}
	if diff < 95 {
		t.Errorf("different seeds agreed too often: only %d/100 differ", diff)
	}
}

func TestValueRange(t *testing.T) {
	f := New(7)
	check := func(x, y float64) bool {
		v := f.Value(math.Mod(x, 1e6), math.Mod(y, 1e6))
		return v >= 0 && v < 1.0000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValueContinuity(t *testing.T) {
	// Value noise must be continuous: nearby samples differ slightly.
	f := New(5)
	const eps = 1e-4
	for i := 0; i < 200; i++ {
		x := float64(i)*0.173 + 0.01
		y := float64(i)*0.311 + 0.02
		v1 := f.Value(x, y)
		v2 := f.Value(x+eps, y+eps)
		if math.Abs(v1-v2) > 0.01 {
			t.Fatalf("discontinuity at (%v,%v): %v vs %v", x, y, v1, v2)
		}
	}
}

func TestValueLatticeCorners(t *testing.T) {
	// At integer lattice points the value equals the lattice hash, so two
	// adjacent cells must agree on their shared corner.
	f := New(11)
	vFromLeft := f.Value(4.9999999, 3.5)
	vFromRight := f.Value(5.0000001, 3.5)
	if math.Abs(vFromLeft-vFromRight) > 0.001 {
		t.Errorf("cell boundary mismatch: %v vs %v", vFromLeft, vFromRight)
	}
}

func TestFBMRangeAndVariety(t *testing.T) {
	f := New(13)
	var min, max = 1.0, 0.0
	for i := 0; i < 5000; i++ {
		v := f.FBM(float64(i)*0.13, float64(i)*0.07, 5, 0.5)
		if v < 0 || v >= 1.0000001 {
			t.Fatalf("FBM out of range: %v", v)
		}
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max-min < 0.3 {
		t.Errorf("FBM dynamic range too small: [%v, %v]", min, max)
	}
}

func TestFBMOctavesClamp(t *testing.T) {
	f := New(17)
	// octaves < 1 clamps to 1 and must not panic.
	_ = f.FBM(1.5, 2.5, 0, 0.5)
	_ = f.Ridged(1.5, 2.5, -3, 0.5)
}

func TestRidgedRange(t *testing.T) {
	f := New(19)
	for i := 0; i < 5000; i++ {
		v := f.Ridged(float64(i)*0.11, float64(i)*0.19, 4, 0.6)
		if v < 0 || v > 1.0000001 {
			t.Fatalf("Ridged out of range: %v", v)
		}
	}
}

func BenchmarkFBM5(b *testing.B) {
	f := New(1)
	for i := 0; i < b.N; i++ {
		_ = f.FBM(float64(i)*0.01, float64(i)*0.02, 5, 0.5)
	}
}
