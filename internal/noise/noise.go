// Package noise implements seeded 2-D value noise and fractal Brownian
// motion (fBm). The WHP and fuel-model generators use it to synthesize
// spatially coherent hazard surfaces: nearby locations get similar hazard,
// with realistic patchiness at several length scales.
package noise

import "math"

// Field is a deterministic 2-D scalar noise field. Safe for concurrent use.
type Field struct {
	seed uint64
}

// New returns a noise field for the given seed. Distinct seeds produce
// uncorrelated fields.
func New(seed uint64) *Field { return &Field{seed: seed} }

// hash derives a uniform [0,1) value from integer lattice coordinates.
func (f *Field) hash(x, y int64) float64 {
	h := uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ f.seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / (1 << 53)
}

// smooth is the quintic fade curve 6t^5 - 15t^4 + 10t^3.
func smooth(t float64) float64 { return t * t * t * (t*(t*6-15) + 10) }

// Value returns smoothed value noise in [0, 1) at the given coordinates.
// Coordinates are in lattice units: structure size is ~1 unit.
func (f *Field) Value(x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	ix, iy := int64(x0), int64(y0)
	fx := smooth(x - x0)
	fy := smooth(y - y0)

	v00 := f.hash(ix, iy)
	v10 := f.hash(ix+1, iy)
	v01 := f.hash(ix, iy+1)
	v11 := f.hash(ix+1, iy+1)

	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

// FBM returns fractal Brownian motion: octaves layers of Value noise with
// per-octave frequency doubling (lacunarity 2) and amplitude decay gain.
// The result is normalized to [0, 1).
func (f *Field) FBM(x, y float64, octaves int, gain float64) float64 {
	if octaves < 1 {
		octaves = 1
	}
	var sum, norm float64
	amp := 1.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * f.Value(x*freq+float64(o)*17.31, y*freq-float64(o)*11.97)
		norm += amp
		amp *= gain
		freq *= 2
	}
	return sum / norm
}

// Ridged returns ridge noise — 1 - |2v-1| folded fBm — which produces
// connected high-value ridgelines, a good model for mountain-range fuel
// corridors.
func (f *Field) Ridged(x, y float64, octaves int, gain float64) float64 {
	if octaves < 1 {
		octaves = 1
	}
	var sum, norm float64
	amp := 1.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		v := f.Value(x*freq+float64(o)*29.17, y*freq+float64(o)*7.77)
		r := 1 - math.Abs(2*v-1)
		sum += amp * r * r
		norm += amp
		amp *= gain
		freq *= 2
	}
	return sum / norm
}
