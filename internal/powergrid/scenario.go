package powergrid

import "fivealarms/internal/wildfire"

// NewFall2019Scenario builds the PSPS + fire scenario of the paper's §3.2
// case study: the eight DIRS reporting days (25 Oct - 1 Nov 2019), a
// shutoff wave ramping to its maximum on day 3 (28 Oct, the paper's peak
// with 874 sites out, 80% from power loss), a second smaller wave, and
// restoration over the final days. The caller passes the 2019 fires
// already filtered to the region of interest; named anchor fires get
// their historical burn windows.
func NewFall2019Scenario(fires []*wildfire.Fire) Scenario {
	sc := Scenario{
		// Day indexes: 0=Oct 25 ... 7=Nov 1. The shutoff fraction traces
		// the PG&E/SCE event shape: ramp, peak Oct 28, partial
		// restoration, second wave, then wind-down. The fractions are
		// small in absolute terms — the 2019 PSPS de-energized a few
		// percent of California's distribution feeders (874 of the
		// state's ~30k cell sites at the peak), targeted at the
		// highest-hazard terrain.
		Days: []DayPlan{
			{ShutoffFrac: 0.010}, // Oct 25
			{ShutoffFrac: 0.024}, // Oct 26
			{ShutoffFrac: 0.042}, // Oct 27
			{ShutoffFrac: 0.052}, // Oct 28 (peak)
			{ShutoffFrac: 0.032}, // Oct 29
			{ShutoffFrac: 0.022}, // Oct 30 (second wave tail)
			{ShutoffFrac: 0.008}, // Oct 31
			{ShutoffFrac: 0.002}, // Nov 1
		},
	}
	for _, f := range fires {
		first, last := 0, 5
		switch f.Name {
		case "Kincade":
			first, last = 0, 7 // burned through the whole window
		case "Getty":
			first, last = 3, 7
		case "Saddle Ridge", "Tick":
			first, last = 0, 4
		}
		sc.Fires = append(sc.Fires, ActiveFire{Fire: f, FirstDay: first, LastDay: last})
	}
	return sc
}

// Fall2019DayLabels are the calendar labels of the scenario days.
var Fall2019DayLabels = []string{
	"Oct 25", "Oct 26", "Oct 27", "Oct 28", "Oct 29", "Oct 30", "Oct 31", "Nov 1",
}
