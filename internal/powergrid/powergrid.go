// Package powergrid models the electric-distribution dependency of cell
// sites — the mechanism the paper's §3.2 case study identifies as the
// dominant wildfire threat to cellular service. Cell sites draw power from
// their nearest substation; during a public-safety power shutoff (PSPS)
// the utility de-energizes the substations serving the windiest,
// highest-hazard terrain; sites ride through on batteries for a few hours
// and then fall out of service. Fires additionally damage sites inside
// their perimeters and sever backhaul routes crossing them.
//
// The simulation produces per-day, per-site outage causes which package
// dirs aggregates into FCC DIRS-style reports (Figure 5).
package powergrid

import (
	"math"
	"sort"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
	"fivealarms/internal/whp"
)

// Cause is the FCC outage-cause taxonomy (§3.2): damage outranks power
// loss outranks backhaul loss when several apply to one site.
type Cause uint8

// Outage causes.
const (
	None Cause = iota
	Damage
	PowerLoss
	BackhaulLoss
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case None:
		return "none"
	case Damage:
		return "damage"
	case PowerLoss:
		return "power-loss"
	case BackhaulLoss:
		return "backhaul-loss"
	default:
		return "invalid"
	}
}

// Site is a cell site (a tower location hosting one or more transceivers)
// with its power-dependency attributes.
type Site struct {
	ID           int32
	XY           geom.Point
	Transceivers int
	BatteryHours float64
	SubstationID int
	// Backhaul is the projected endpoint of the site's backhaul route
	// (the serving central office).
	Backhaul geom.Point
}

// Network is the power-and-backhaul dependency graph for the sites of a
// region.
type Network struct {
	Sites       []Site
	Substations []geom.Point
	// SubstationHazard ranks each substation's exposure (used to choose
	// PSPS de-energization order).
	SubstationHazard []float64
}

// NetConfig parameterizes network construction.
type NetConfig struct {
	Seed uint64
	// SitesPerSubstation sets substation density. Defaults to 15
	// (a distribution substation feeds on the order of a dozen sites).
	SitesPerSubstation int
	// MeanBatteryHours is the mean site battery endurance. Defaults to 6
	// (most sites keep only a few hours of backup, §3.2).
	MeanBatteryHours float64
}

func (c NetConfig) withDefaults() NetConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SitesPerSubstation <= 0 {
		c.SitesPerSubstation = 15
	}
	if c.MeanBatteryHours <= 0 {
		c.MeanBatteryHours = 6
	}
	return c
}

// BuildNetwork extracts the cell sites of the dataset within region and
// wires them to synthesized substations. The hazard map ranks substation
// exposure. Deterministic in (dataset, region, cfg).
func BuildNetwork(d *cellnet.Dataset, hazard *whp.Map, region geom.BBox, cfg NetConfig) *Network {
	cfg = cfg.withDefaults()
	src := rng.NewStream(cfg.Seed, 0x9012)

	// Collect sites (grouped transceivers) within the region.
	type agg struct {
		sum geom.Point
		n   int
	}
	siteAgg := map[int32]*agg{}
	for i := range d.T {
		t := &d.T[i]
		if !region.ContainsPoint(t.XY) {
			continue
		}
		a := siteAgg[t.SiteID]
		if a == nil {
			a = &agg{}
			siteAgg[t.SiteID] = a
		}
		a.sum = a.sum.Add(t.XY)
		a.n++
	}
	ids := make([]int32, 0, len(siteAgg))
	for id := range siteAgg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	n := &Network{}
	for _, id := range ids {
		a := siteAgg[id]
		pos := a.sum.Scale(1 / float64(a.n))
		bh := src.Normal(cfg.MeanBatteryHours, cfg.MeanBatteryHours/3)
		upper := math.Max(16, cfg.MeanBatteryHours*1.5)
		bh = math.Max(2, math.Min(upper, bh))
		n.Sites = append(n.Sites, Site{
			ID: id, XY: pos, Transceivers: a.n, BatteryHours: bh,
		})
	}

	// Substations: grid-sample the region so density tracks site density.
	nSub := len(n.Sites)/cfg.SitesPerSubstation + 1
	n.Substations = kMeansish(n.Sites, nSub, src)
	n.SubstationHazard = make([]float64, len(n.Substations))
	for i, s := range n.Substations {
		n.SubstationHazard[i] = hazard.HazardAt(s)
	}

	// Wire each site to its nearest substation; backhaul runs to the
	// nearest central office. COs are modeled as the lowest-hazard
	// (most urban) quartile of substation locations, so routes are short
	// and local — only sites whose serving CO path actually crosses a
	// fire are at backhaul risk.
	cos := lowestHazardQuartile(n.Substations, n.SubstationHazard)
	for i := range n.Sites {
		best, bestD := 0, math.Inf(1)
		for j, sub := range n.Substations {
			if dd := n.Sites[i].XY.DistanceTo(sub); dd < bestD {
				best, bestD = j, dd
			}
		}
		n.Sites[i].SubstationID = best
		co, coD := cos[0], math.Inf(1)
		for _, c := range cos {
			if dd := n.Sites[i].XY.DistanceTo(c); dd < coD {
				co, coD = c, dd
			}
		}
		n.Sites[i].Backhaul = co
	}
	return n
}

// lowestHazardQuartile returns the quarter of substation positions with
// the least hazard (at least one).
func lowestHazardQuartile(subs []geom.Point, hazard []float64) []geom.Point {
	if len(subs) == 0 {
		return []geom.Point{{}}
	}
	idx := make([]int, len(subs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return hazard[idx[a]] < hazard[idx[b]] })
	k := len(subs) / 4
	if k < 1 {
		k = 1
	}
	out := make([]geom.Point, 0, k)
	for _, i := range idx[:k] {
		out = append(out, subs[i])
	}
	return out
}

// kMeansish seeds k centers on the sites and runs a few Lloyd iterations —
// enough to spread substations with site density without a dependency on
// convergence.
func kMeansish(sites []Site, k int, src *rng.Source) []geom.Point {
	if k <= 0 {
		k = 1
	}
	if len(sites) == 0 {
		return nil
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = sites[src.Intn(len(sites))].XY
	}
	assign := make([]int, len(sites))
	for iter := 0; iter < 6; iter++ {
		for i := range sites {
			best, bestD := 0, math.Inf(1)
			for j, c := range centers {
				if d := sites[i].XY.DistanceTo(c); d < bestD {
					best, bestD = j, d
				}
			}
			assign[i] = best
		}
		sums := make([]geom.Point, k)
		counts := make([]int, k)
		for i, a := range assign {
			sums[a] = sums[a].Add(sites[i].XY)
			counts[a]++
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j] = sums[j].Scale(1 / float64(counts[j]))
			}
		}
	}
	return centers
}
