package powergrid

import (
	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
	"fivealarms/internal/wildfire"
)

// DayPlan describes one day of a PSPS scenario.
type DayPlan struct {
	// ShutoffFrac is the fraction of substations de-energized that day,
	// highest-hazard first (wind-driven shutoff targeting).
	ShutoffFrac float64
}

// ActiveFire binds a fire perimeter to the scenario days it burns.
type ActiveFire struct {
	Fire     *wildfire.Fire
	FirstDay int // inclusive scenario day index
	LastDay  int // inclusive
}

// Scenario is a multi-day PSPS + fire event.
type Scenario struct {
	Days  []DayPlan
	Fires []ActiveFire
	// DamageProb is the chance a site inside an active perimeter suffers
	// physical damage (per event, not per day). Default 0.25.
	DamageProb float64
	// BackhaulSeverProb is the chance a backhaul route crossing an active
	// perimeter actually loses transport: metro fiber is ring-protected,
	// so most crossings reroute. Default 0.15.
	BackhaulSeverProb float64
	// RepairDays is how long a damaged site stays out after the fire
	// passes. Default 10 (beyond most reporting windows, matching the
	// long tail the paper observes).
	RepairDays int
}

func (s Scenario) withDefaults() Scenario {
	if s.DamageProb == 0 {
		s.DamageProb = 0.25
	}
	if s.BackhaulSeverProb == 0 {
		s.BackhaulSeverProb = 0.15
	}
	if s.RepairDays == 0 {
		s.RepairDays = 10
	}
	return s
}

// Outcome is the simulation result: per-day, per-site causes plus daily
// aggregates.
type Outcome struct {
	// Causes[day][siteIdx] is the outage cause (None = in service).
	Causes [][]Cause
	// OutByCause[day][cause] counts sites out per cause.
	OutByCause []map[Cause]int
}

// SitesOut returns the total sites out of service on a day.
func (o *Outcome) SitesOut(day int) int {
	total := 0
	for c, n := range o.OutByCause[day] {
		if c != None {
			total += n
		}
	}
	return total
}

// PeakDay returns the day index with the most sites out and that count.
func (o *Outcome) PeakDay() (int, int) {
	best, bestN := 0, -1
	for d := range o.OutByCause {
		if n := o.SitesOut(d); n > bestN {
			best, bestN = d, n
		}
	}
	return best, bestN
}

// Simulate runs the scenario over the network. Deterministic in
// (network, scenario, seed).
func (n *Network) Simulate(sc Scenario, seed uint64) *Outcome {
	sc = sc.withDefaults()
	src := rng.NewStream(seed, 0xD185)
	nDays := len(sc.Days)
	out := &Outcome{
		Causes:     make([][]Cause, nDays),
		OutByCause: make([]map[Cause]int, nDays),
	}

	// Rank substations by hazard, highest first: the utility de-energizes
	// the most exposed feeders at a given wind severity.
	order := make([]int, len(n.Substations))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by descending hazard
		for j := i; j > 0 && n.SubstationHazard[order[j]] > n.SubstationHazard[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Damage and backhaul-sever rolls are per (site, fire), decided once.
	damagedUntil := make([]int, len(n.Sites)) // scenario day the site returns; -1 = never damaged
	for i := range damagedUntil {
		damagedUntil[i] = -1
	}
	severed := make([][]bool, len(n.Sites)) // per site, per fire index
	for i := range n.Sites {
		s := &n.Sites[i]
		severed[i] = make([]bool, len(sc.Fires))
		for fi, af := range sc.Fires {
			if af.Fire.PreparedPerimeter().Contains(s.XY) && src.Bool(sc.DamageProb) {
				end := af.LastDay + sc.RepairDays
				if end > damagedUntil[i] {
					damagedUntil[i] = end
				}
			}
			// Backhaul: a crossing only severs transport when the route
			// has no protection path.
			if segmentCrossesPerimeter(s.XY, s.Backhaul, af.Fire) {
				severed[i][fi] = src.Bool(sc.BackhaulSeverProb)
			}
		}
	}

	// Track consecutive shutoff days per substation: batteries carry a
	// site through only the first hours of a shutoff.
	shutoffSince := make([]int, len(n.Substations))
	for i := range shutoffSince {
		shutoffSince[i] = -1
	}

	for day := 0; day < nDays; day++ {
		// De-energize the top ShutoffFrac of substations today.
		k := int(sc.Days[day].ShutoffFrac*float64(len(order)) + 0.5)
		off := make([]bool, len(n.Substations))
		for i := 0; i < k && i < len(order); i++ {
			off[order[i]] = true
		}
		for si := range n.Substations {
			if off[si] {
				if shutoffSince[si] < 0 {
					shutoffSince[si] = day
				}
			} else {
				shutoffSince[si] = -1
			}
		}

		causes := make([]Cause, len(n.Sites))
		agg := map[Cause]int{}
		for i := range n.Sites {
			s := &n.Sites[i]
			c := None
			switch {
			case damagedUntil[i] >= day && siteDamageStarted(sc, s, day):
				c = Damage
			case off[s.SubstationID] && hoursWithoutPower(shutoffSince[s.SubstationID], day) > s.BatteryHours:
				c = PowerLoss
			case backhaulSevered(sc, severed[i], day):
				c = BackhaulLoss
			}
			causes[i] = c
			if c != None {
				agg[c]++
			}
		}
		out.Causes[day] = causes
		out.OutByCause[day] = agg
	}
	return out
}

// siteDamageStarted reports whether any fire enclosing the site has
// started by the given day (damage cannot precede the fire).
func siteDamageStarted(sc Scenario, s *Site, day int) bool {
	for _, af := range sc.Fires {
		if day >= af.FirstDay && af.Fire.PreparedPerimeter().Contains(s.XY) {
			return true
		}
	}
	return false
}

// hoursWithoutPower converts consecutive shutoff days into elapsed hours
// at the day's reporting point (assume reports snapshot 12h into the
// day: day 0 of a shutoff is 12 elapsed hours, day 1 is 36, ...).
func hoursWithoutPower(since, day int) float64 {
	if since < 0 {
		return 0
	}
	return float64(day-since)*24 + 12
}

// backhaulSevered reports whether any fire with a severed route for this
// site is active on the given day.
func backhaulSevered(sc Scenario, severed []bool, day int) bool {
	for fi, af := range sc.Fires {
		if severed[fi] && day >= af.FirstDay && day <= af.LastDay {
			return true
		}
	}
	return false
}

// segmentCrossesPerimeter samples the backhaul segment and tests perimeter
// containment — a cheap stand-in for exact segment/polygon intersection
// that is exact in the limit of the sampling density (200 m).
func segmentCrossesPerimeter(a, b geom.Point, f *wildfire.Fire) bool {
	prep := f.PreparedPerimeter()
	if !prep.BBox().Intersects(geom.NewBBox(a, b)) {
		return false
	}
	d := b.Sub(a)
	steps := int(d.Norm()/200) + 1
	if steps > 4000 {
		steps = 4000
	}
	for i := 0; i <= steps; i++ {
		p := a.Add(d.Scale(float64(i) / float64(steps)))
		if prep.Contains(p) {
			return true
		}
	}
	return false
}
