package powergrid

import (
	"testing"

	"fivealarms/internal/wildfire"
)

// backhaulScenario builds a two-day scenario with the 2019 CA fires and
// the given sever probability, no shutoffs (isolates the backhaul cause).
func backhaulScenario(t *testing.T, prob float64) *Outcome {
	t.Helper()
	season := wildfire.Simulate2019(wildfire.NewSimulator(testWorld, testWHP), 7, 15)
	var fires []ActiveFire
	for i := range season.Mapped {
		if caRegion.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, ActiveFire{Fire: &season.Mapped[i], FirstDay: 0, LastDay: 1})
		}
	}
	if len(fires) == 0 {
		t.Fatal("no CA fires")
	}
	sc := Scenario{
		Days:              []DayPlan{{}, {}},
		Fires:             fires,
		BackhaulSeverProb: prob,
		DamageProb:        1e-12, // isolate backhaul (0 selects the default)
	}
	return testNet.Simulate(sc, 11)
}

func TestBackhaulSeverProbScales(t *testing.T) {
	low := backhaulScenario(t, 0.05)
	high := backhaulScenario(t, 0.95)
	lo := low.OutByCause[0][BackhaulLoss]
	hi := high.OutByCause[0][BackhaulLoss]
	if hi <= lo {
		t.Errorf("backhaul outages should grow with sever probability: %d vs %d", lo, hi)
	}
	if hi == 0 {
		t.Error("near-certain severing produced no outages")
	}
}

func TestBackhaulOnlyWhileFiresActive(t *testing.T) {
	season := wildfire.Simulate2019(wildfire.NewSimulator(testWorld, testWHP), 7, 15)
	var fires []ActiveFire
	for i := range season.Mapped {
		if caRegion.Intersects(season.Mapped[i].BBox()) {
			// Fires active only on day 0.
			fires = append(fires, ActiveFire{Fire: &season.Mapped[i], FirstDay: 0, LastDay: 0})
		}
	}
	sc := Scenario{
		Days:              []DayPlan{{}, {}},
		Fires:             fires,
		BackhaulSeverProb: 0.95,
		DamageProb:        1e-12,
	}
	o := testNet.Simulate(sc, 13)
	if o.OutByCause[1][BackhaulLoss] != 0 {
		t.Errorf("backhaul outages persist after the fires: %d", o.OutByCause[1][BackhaulLoss])
	}
}

func TestBackhaulRoutesAreLocal(t *testing.T) {
	// The nearest-CO wiring keeps routes short: the mean backhaul length
	// must be far below the region diagonal.
	var sum float64
	for i := range testNet.Sites {
		sum += testNet.Sites[i].XY.DistanceTo(testNet.Sites[i].Backhaul)
	}
	mean := sum / float64(len(testNet.Sites))
	if mean > 250000 {
		t.Errorf("mean backhaul route = %.0f m, want local (< 250 km)", mean)
	}
}
