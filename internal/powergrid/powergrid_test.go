package powergrid

import (
	"testing"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

var (
	testWorld = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testWHP   = whp.Build(testWorld, testWorld.Grid, whp.Config{})
	testData  = cellnet.Generate(testWorld, cellnet.GenConfig{Seed: 7, Total: 40000})
	// California window (the case-study region).
	caRegion = func() geom.BBox {
		sw := testWorld.ToXY(geom.Point{X: -124.5, Y: 32.3})
		ne := testWorld.ToXY(geom.Point{X: -114.0, Y: 42.1})
		return geom.NewBBox(sw, ne)
	}()
	testNet = BuildNetwork(testData, testWHP, caRegion, NetConfig{Seed: 7})
)

func TestCauseString(t *testing.T) {
	if None.String() != "none" || Damage.String() != "damage" ||
		PowerLoss.String() != "power-loss" || BackhaulLoss.String() != "backhaul-loss" {
		t.Error("cause strings")
	}
	if Cause(99).String() != "invalid" {
		t.Error("invalid cause")
	}
}

func TestBuildNetworkBasics(t *testing.T) {
	if len(testNet.Sites) < 100 {
		t.Fatalf("CA sites = %d, want hundreds", len(testNet.Sites))
	}
	if len(testNet.Substations) == 0 {
		t.Fatal("no substations")
	}
	ratio := float64(len(testNet.Sites)) / float64(len(testNet.Substations))
	if ratio < 10 || ratio > 80 {
		t.Errorf("sites per substation = %v, want ~40", ratio)
	}
	for i := range testNet.Sites {
		s := &testNet.Sites[i]
		if !caRegion.ContainsPoint(s.XY) {
			t.Fatal("site outside region")
		}
		if s.BatteryHours < 2 || s.BatteryHours > 16 {
			t.Fatalf("battery hours %v out of range", s.BatteryHours)
		}
		if s.SubstationID < 0 || s.SubstationID >= len(testNet.Substations) {
			t.Fatal("bad substation assignment")
		}
		if s.Transceivers <= 0 {
			t.Fatal("site with no transceivers")
		}
	}
}

func TestBuildNetworkDeterministic(t *testing.T) {
	a := BuildNetwork(testData, testWHP, caRegion, NetConfig{Seed: 7})
	if len(a.Sites) != len(testNet.Sites) {
		t.Fatal("site counts differ")
	}
	for i := range a.Sites {
		if a.Sites[i] != testNet.Sites[i] {
			t.Fatal("sites differ between identical builds")
		}
	}
}

func TestNearestSubstationAssignment(t *testing.T) {
	for i := range testNet.Sites {
		s := &testNet.Sites[i]
		d := s.XY.DistanceTo(testNet.Substations[s.SubstationID])
		for j, sub := range testNet.Substations {
			if dd := s.XY.DistanceTo(sub); dd < d-1e-9 {
				t.Fatalf("site %d assigned substation %d but %d is closer", i, s.SubstationID, j)
			}
		}
		break // nearest property verified exhaustively for the first site
	}
	// Spot-check a sample of sites.
	for i := 0; i < len(testNet.Sites); i += 97 {
		s := &testNet.Sites[i]
		d := s.XY.DistanceTo(testNet.Substations[s.SubstationID])
		for _, sub := range testNet.Substations {
			if dd := s.XY.DistanceTo(sub); dd < d-1e-9 {
				t.Fatalf("site %d not assigned to nearest substation", i)
			}
		}
	}
}

func fall2019Outcome(t *testing.T, seed uint64) (*Outcome, Scenario) {
	t.Helper()
	season := wildfire.Simulate2019(wildfire.NewSimulator(testWorld, testWHP), 7, 15)
	var caFires []*wildfire.Fire
	for i := range season.Mapped {
		if caRegion.Intersects(season.Mapped[i].BBox()) {
			caFires = append(caFires, &season.Mapped[i])
		}
	}
	if len(caFires) < 4 {
		t.Fatalf("CA fires = %d, want at least the 4 anchors", len(caFires))
	}
	sc := NewFall2019Scenario(caFires)
	return testNet.Simulate(sc, seed), sc
}

func TestSimulateShape(t *testing.T) {
	o, sc := fall2019Outcome(t, 7)
	if len(o.Causes) != len(sc.Days) {
		t.Fatalf("days = %d", len(o.Causes))
	}
	peakDay, peakN := o.PeakDay()
	// The shutoff schedule peaks on day 3 (Oct 28).
	if peakDay != 3 {
		t.Errorf("peak day = %d (%s), want 3 (Oct 28)", peakDay, Fall2019DayLabels[peakDay])
	}
	if peakN == 0 {
		t.Fatal("no outages at peak")
	}
	// Power loss dominates at the peak (the paper: 702/874 = 80%).
	power := o.OutByCause[peakDay][PowerLoss]
	if frac := float64(power) / float64(peakN); frac < 0.6 {
		t.Errorf("power share at peak = %v, want > 0.6", frac)
	}
	// The event winds down but damage persists: final day has fewer out
	// than peak, and damage is a visible share of the tail.
	finalOut := o.SitesOut(len(sc.Days) - 1)
	if finalOut >= peakN {
		t.Errorf("final-day outages %d should be below peak %d", finalOut, peakN)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := fall2019Outcome(t, 9)
	b, _ := fall2019Outcome(t, 9)
	for d := range a.Causes {
		for i := range a.Causes[d] {
			if a.Causes[d][i] != b.Causes[d][i] {
				t.Fatalf("day %d site %d differs", d, i)
			}
		}
	}
}

func TestDamagePersistsAfterPowerRestored(t *testing.T) {
	o, sc := fall2019Outcome(t, 11)
	last := len(sc.Days) - 1
	if o.OutByCause[last][PowerLoss] > o.OutByCause[3][PowerLoss] {
		t.Error("power outages should decline after restoration")
	}
	// Damaged sites (if any occurred) must still be out on the last day:
	// damage lasts RepairDays past the fire.
	damagedAtPeak := o.OutByCause[3][Damage]
	damagedAtEnd := o.OutByCause[last][Damage]
	if damagedAtPeak > 0 && damagedAtEnd == 0 {
		t.Error("damage should persist through the reporting window")
	}
}

func TestBatteryRideThrough(t *testing.T) {
	// With enormous batteries, a one-day shutoff causes no power outages.
	n2 := BuildNetwork(testData, testWHP, caRegion, NetConfig{Seed: 7, MeanBatteryHours: 1000})
	for i := range n2.Sites {
		n2.Sites[i].BatteryHours = 1000
	}
	sc := Scenario{Days: []DayPlan{{ShutoffFrac: 0.9}}}
	o := n2.Simulate(sc, 1)
	if got := o.OutByCause[0][PowerLoss]; got != 0 {
		t.Errorf("power outages with huge batteries = %d, want 0", got)
	}
}

func TestShutoffFracScalesOutages(t *testing.T) {
	mk := func(frac float64) int {
		sc := Scenario{Days: []DayPlan{{ShutoffFrac: frac}, {ShutoffFrac: frac}}}
		o := testNet.Simulate(sc, 3)
		return o.OutByCause[1][PowerLoss]
	}
	small := mk(0.1)
	large := mk(0.8)
	if large <= small {
		t.Errorf("outages should grow with shutoff fraction: %d vs %d", small, large)
	}
}

func TestHazardOrderedShutoff(t *testing.T) {
	// With a small shutoff fraction, the de-energized substations must be
	// the highest-hazard ones; their sites bear the outages.
	sc := Scenario{Days: []DayPlan{{ShutoffFrac: 0.15}, {ShutoffFrac: 0.15}}}
	o := testNet.Simulate(sc, 5)
	// Collect hazard of substations of powered-out sites vs in-service.
	var outHaz, inHaz float64
	var outN, inN int
	for i, c := range o.Causes[1] {
		h := testNet.SubstationHazard[testNet.Sites[i].SubstationID]
		if c == PowerLoss {
			outHaz += h
			outN++
		} else if c == None {
			inHaz += h
			inN++
		}
	}
	if outN == 0 || inN == 0 {
		t.Skip("degenerate outcome")
	}
	if outHaz/float64(outN) <= inHaz/float64(inN) {
		t.Errorf("mean hazard of shut-off sites (%v) should exceed in-service (%v)",
			outHaz/float64(outN), inHaz/float64(inN))
	}
}

func TestHoursWithoutPower(t *testing.T) {
	if hoursWithoutPower(-1, 5) != 0 {
		t.Error("no shutoff -> 0 hours")
	}
	if hoursWithoutPower(2, 2) != 12 {
		t.Error("first day -> 12 hours")
	}
	if hoursWithoutPower(2, 4) != 60 {
		t.Error("third day -> 60 hours")
	}
}

func BenchmarkSimulateFall2019(b *testing.B) {
	season := wildfire.Simulate2019(wildfire.NewSimulator(testWorld, testWHP), 7, 15)
	var caFires []*wildfire.Fire
	for i := range season.Mapped {
		if caRegion.Intersects(season.Mapped[i].BBox()) {
			caFires = append(caFires, &season.Mapped[i])
		}
	}
	sc := NewFall2019Scenario(caFires)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = testNet.Simulate(sc, uint64(i))
	}
}
