package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseSrc parses one synthetic file and returns its allow index plus
// the malformed-annotation diagnostics.
func parseSrc(t *testing.T, src string) (*allowSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{"floateq": true, "nakedpanic": true}
	set, bad := parseAllows(fset, []*ast.File{f}, known)
	return set, bad
}

// diag fabricates a finding at fixture.go:line for matching tests.
func diag(rule string, line int) Diagnostic {
	return Diagnostic{
		Pos:  token.Position{Filename: "fixture.go", Line: line, Column: 9},
		Rule: rule,
	}
}

func TestAllowOnFlaggedLine(t *testing.T) {
	set, bad := parseSrc(t, `package p

func f(a, b float64) bool {
	return a == b //fivealarms:allow(floateq) sentinel comparison, assigned verbatim
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected suppression diagnostics: %v", bad)
	}
	if !set.covers(diag("floateq", 4)) {
		t.Errorf("trailing annotation must cover its own line")
	}
	if set.covers(diag("nakedpanic", 4)) {
		t.Errorf("annotation must only cover its named rule")
	}
	if set.covers(diag("floateq", 3)) || set.covers(diag("floateq", 5)) {
		t.Errorf("trailing annotation must not leak to neighboring lines")
	}
}

func TestAllowStandaloneGuardsNextCodeLine(t *testing.T) {
	set, bad := parseSrc(t, `package p

func f(a, b float64) bool {
	//fivealarms:allow(floateq) exact-degeneracy test on unmodified inputs
	return a == b
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected suppression diagnostics: %v", bad)
	}
	if !set.covers(diag("floateq", 5)) {
		t.Errorf("standalone annotation must cover the next code line")
	}
	if set.covers(diag("floateq", 3)) {
		t.Errorf("standalone annotation must not cover preceding lines")
	}
}

func TestAllowStackedStandalone(t *testing.T) {
	set, bad := parseSrc(t, `package p

func f(a, b float64) bool {
	//fivealarms:allow(floateq) exact sentinel comparison
	//fivealarms:allow(nakedpanic) degenerate input is a programming error
	return a == b
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected suppression diagnostics: %v", bad)
	}
	if !set.covers(diag("floateq", 6)) || !set.covers(diag("nakedpanic", 6)) {
		t.Errorf("stacked standalone annotations must both slide to the code line")
	}
}

func TestAllowOnEnclosingDeclaration(t *testing.T) {
	set, bad := parseSrc(t, `package p

// f compares raster sentinels.
//
//fivealarms:allow(floateq) every comparison in f is against an assigned sentinel
func f(a, b, c float64) bool {
	if a == b {
		return true
	}
	return b == c
}

func g(a, b float64) bool { return a == b }
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected suppression diagnostics: %v", bad)
	}
	for _, line := range []int{7, 10} {
		if !set.covers(diag("floateq", line)) {
			t.Errorf("doc-comment annotation must cover line %d of the declaration", line)
		}
	}
	if set.covers(diag("floateq", 13)) {
		t.Errorf("doc-comment annotation must not leak past its declaration")
	}
}

func TestAllowUnknownRuleRejected(t *testing.T) {
	_, bad := parseSrc(t, `package p

var x = 1 //fivealarms:allow(notarule) this rule does not exist
`)
	if len(bad) != 1 {
		t.Fatalf("want one suppression diagnostic, got %v", bad)
	}
	if bad[0].Rule != "suppression" || !strings.Contains(bad[0].Message, "notarule") {
		t.Errorf("unknown rule must be named in the finding: %v", bad[0])
	}
}

func TestAllowReasonRequired(t *testing.T) {
	_, bad := parseSrc(t, `package p

var x = 1 //fivealarms:allow(floateq)
`)
	if len(bad) != 1 {
		t.Fatalf("want one suppression diagnostic, got %v", bad)
	}
	if !strings.Contains(bad[0].Message, "reason") {
		t.Errorf("bare suppression must demand a reason: %v", bad[0])
	}
}

func TestAllowMalformedVariants(t *testing.T) {
	for _, src := range []string{
		"package p\n\nvar x = 1 //fivealarms:allow floateq missing parens\n",
		"package p\n\nvar x = 1 //fivealarms:allow(floateq unclosed reason\n",
		"package p\n\nvar x = 1 //fivealarms:deny(floateq) unknown verb\n",
	} {
		set, bad := parseSrc(t, src)
		if len(bad) != 1 {
			t.Errorf("source %q: want one suppression diagnostic, got %v", src, bad)
		}
		if set.covers(diag("floateq", 3)) {
			t.Errorf("source %q: malformed annotation must not suppress anything", src)
		}
	}
}

func TestOrdinaryCommentsIgnored(t *testing.T) {
	set, bad := parseSrc(t, `package p

// fivealarms:allow(floateq) not a directive: leading space disqualifies it
var x = 1 // plain trailing comment
`)
	if len(bad) != 0 {
		t.Fatalf("ordinary comments must not be diagnosed: %v", bad)
	}
	if set.covers(diag("floateq", 4)) {
		t.Errorf("non-directive comments must not suppress")
	}
}

// TestCollectAllowsSkipsMalformed: the debt audit reports only
// well-formed annotations; malformed ones are Check findings, not
// debt entries.
func TestCollectAllowsSkipsMalformed(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func F() int {
	return 1 //fivealarms:allow(seededrand) fixture: a well-formed waiver
}

func G() int {
	return 2 //fivealarms:allow(seededrand)
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A second file with two annotations proves the position sort:
	// a.go orders before p.go, and within a file lines order.
	src2 := `package p

func H() int {
	return 3 //fivealarms:allow(floateq) fixture: second-file waiver
}

func I() int {
	return 4 //fivealarms:allow(nakedpanic) fixture: later-line waiver
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src2), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().Load(dir, "example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	allows := CollectAllows(pkg)
	if len(allows) != 3 {
		t.Fatalf("allows = %v, want the three reasoned annotations", allows)
	}
	order := []string{"floateq", "nakedpanic", "seededrand"}
	for i, want := range order {
		if allows[i].Rule != want {
			t.Fatalf("allow order = %v, want a.go before p.go, lines ascending", allows)
		}
	}
	if allows[2].Pos.Line != 4 || allows[2].Reason != "fixture: a well-formed waiver" {
		t.Errorf("allow = %+v", allows[2])
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Rule:    "errflow",
		Message: "m",
	}
	if got := d.String(); got != "x.go:3:7: [errflow] m" {
		t.Errorf("String() = %q", got)
	}
}

func TestSuppressionFindingsAreNotSuppressible(t *testing.T) {
	// An allow annotation for rule "suppression" is itself an unknown
	// rule (only real rules are registered), so laundering a malformed
	// annotation through another allow cannot work by construction.
	if RuleNames()["suppression"] {
		t.Fatalf("\"suppression\" must not be a registered, allowable rule")
	}
}
