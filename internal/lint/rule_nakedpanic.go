package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func ruleNakedPanic() Rule {
	return Rule{
		Name: "nakedpanic",
		Doc:  "panic in library code only inside functions whose doc comment states the panic contract",
		Run:  runNakedPanic,
	}
}

// runNakedPanic enforces the PR-3 failure model: library code returns
// errors; panicking is reserved for documented programming-error
// contracts (pipeline.Graph.Add on a malformed graph, rng.Intn on
// non-positive n, NewStudy's provably-infallible build). A panic call
// is clean only when the doc comment of the enclosing top-level
// function states the contract (mentions "panic"); everything else
// must return an error or carry an allow annotation. Function
// literals inherit the contract of the declaration they appear in —
// Go has no nested named functions, so the enclosing FuncDecl is the
// documented API boundary.
func runNakedPanic(p *Pass) {
	p.In.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, stack []ast.Node) {
		call := n.(*ast.CallExpr)
		if !isBuiltinPanic(p, call) {
			return
		}
		var fd *ast.FuncDecl
		for _, s := range stack {
			if d, ok := s.(*ast.FuncDecl); ok {
				fd = d
				break
			}
		}
		switch {
		case fd != nil && docMentionsPanic(fd):
		case fd != nil:
			p.Reportf(call.Pos(), "nakedpanic",
				"panic in %s, whose doc comment does not state a panic contract; return an error, or document why the panic is a programming-error report", fd.Name.Name)
		default:
			p.Reportf(call.Pos(), "nakedpanic",
				"panic outside any declared function; return an error instead")
		}
	})
}

// isBuiltinPanic reports whether call invokes the predeclared panic
// builtin (not a shadowing identifier).
func isBuiltinPanic(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// docMentionsPanic reports whether the function's doc comment states a
// panic contract.
func docMentionsPanic(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}
