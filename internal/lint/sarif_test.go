package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// sarifFixtureDiags is a fixed input spanning the cases the renderer
// must handle: a file under the root (relativized to a slash URI) and
// one outside it (kept absolute).
func sarifFixtureDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:     token.Position{Filename: filepath.Join(string(filepath.Separator)+"repo", "internal", "geom", "a.go"), Line: 10, Column: 3},
			Rule:    "floateq",
			Message: "exact float comparison",
		},
		{
			Pos:     token.Position{Filename: filepath.Join(string(filepath.Separator)+"elsewhere", "b.go"), Line: 1, Column: 1},
			Rule:    "errflow",
			Message: "call discards its error result",
		},
	}
}

// TestSARIFGolden pins the document bytes: the SARIF shape is an
// interface other tooling parses, so any drift must be a deliberate
// golden update (UPDATE_GOLDEN=1 go test ./internal/lint -run SARIF).
func TestSARIFGolden(t *testing.T) {
	rules := []Rule{
		{Name: "floateq", Doc: "no exact float equality in the GIS kernel"},
		{Name: "errflow", Doc: "error results must not be discarded"},
	}
	got, err := SARIFReport(sarifFixtureDiags(), rules, string(filepath.Separator)+"repo")
	if err != nil {
		t.Fatalf("SARIFReport: %v", err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(append(got, '\n'), want) {
		t.Errorf("SARIF output drifted from %s:\n%s", golden, got)
	}
}

// TestSARIFShape checks the semantic invariants independent of the
// golden bytes: version, driver name, the virtual suppression rule,
// root-relative URIs, and a non-null results array on a clean run.
func TestSARIFShape(t *testing.T) {
	doc, err := SARIFReport(sarifFixtureDiags(), Rules(), string(filepath.Separator)+"repo")
	if err != nil {
		t.Fatalf("SARIFReport: %v", err)
	}
	var parsed struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if parsed.Version != "2.1.0" || len(parsed.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and one run", parsed.Version, len(parsed.Runs))
	}
	run := parsed.Runs[0]
	if run.Tool.Driver.Name != "fivealarmsvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"seededrand", "maporder", "apilock", "goroleak", "errflow", "suppression"} {
		if !ids[want] {
			t.Errorf("driver rules missing %q", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/geom/a.go" {
		t.Errorf("in-root URI = %q, want internal/geom/a.go", uri)
	}

	empty, err := SARIFReport(nil, Rules(), string(filepath.Separator)+"repo")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(empty, []byte(`"results": null`)) {
		t.Errorf("clean run must emit an empty results array, not null")
	}
}
