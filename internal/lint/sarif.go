package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF rendering for GitHub code scanning. The emitted document is
// the minimal static-analysis interchange shape (SARIF 2.1.0): one
// run, the full rule inventory under tool.driver, one result per
// diagnostic with a physical location. Output is byte-deterministic:
// structs marshal in declaration order and the caller hands in
// diagnostics already normalized by SortDiagnostics.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIFReport renders diags as an indented SARIF 2.1.0 document.
// File names are made root-relative with forward slashes (the URI
// convention code-scanning expects); diagnostics outside root keep
// their absolute path. The rule inventory always includes the virtual
// "suppression" rule, since malformed annotations report under it.
func SARIFReport(diags []Diagnostic, rules []Rule, root string) ([]byte, error) {
	driver := sarifDriver{Name: "fivealarmsvet"}
	for _, r := range rules {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "suppression",
		ShortDescription: sarifMessage{Text: "malformed or unjustified fivealarms:allow annotation"},
	})

	results := []sarifResult{} // non-nil: an empty run still carries "results": []
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
