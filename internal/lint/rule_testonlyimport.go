package lint

import (
	"strconv"
)

// testOnlyPkgs are the packages that exist to check the production
// code, not to run inside it: the deliberately naive reference twins,
// the diffcheck drivers, and the chaos injector. A production import
// would ship the slow refimpl paths (or worse, the fault injector)
// into study builds; they are reachable only from _test.go files,
// which the loader never scans, and from each other.
var testOnlyPkgs = []string{
	"fivealarms/internal/refimpl",
	"fivealarms/internal/faults",
}

func ruleTestOnlyImport() Rule {
	return Rule{
		Name: "testonlyimport",
		Doc:  "production packages must not import internal/refimpl, internal/refimpl/diffcheck, or internal/faults",
		Run:  runTestOnlyImport,
	}
}

func runTestOnlyImport(p *Pass) {
	for _, banned := range testOnlyPkgs {
		if pathIsUnder(p.Path, banned) {
			return // the test-only family may import itself
		}
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, banned := range testOnlyPkgs {
				if pathIsUnder(path, banned) {
					p.Reportf(imp.Pos(), "testonlyimport",
						"%s is test-only (reference twins / fault injection); import it from _test.go files or a documented injection seam, not production code", path)
				}
			}
		}
	}
}
