package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func ruleErrFlow() Rule {
	return Rule{
		Name: "errflow",
		Doc:  "error results must not be discarded (`_ =` or a bare call) outside the documented infallible-writer set",
		Run:  runErrFlow,
	}
}

// runErrFlow enforces the failure model's other half: library code
// returns errors, so callers must look at them. Two discard shapes are
// flagged: a call used as a bare expression statement whose type
// includes an error, and an assignment that lands an error result in
// the blank identifier. Deferred calls are exempt — deferred cleanup
// is best-effort by convention here, and write paths that must observe
// Close errors call Close explicitly (snapshot.go is the template).
// Also exempt is the documented infallible-writer set: fmt printing to
// os.Stdout/os.Stderr (best-effort terminal diagnostics) and writes to
// strings.Builder, bytes.Buffer, or a hash.Hash, whose Write methods
// are documented never to return a non-nil error.
func runErrFlow(p *Pass) {
	p.In.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		call, ok := n.(*ast.ExprStmt).X.(*ast.CallExpr)
		if !ok || errFlowExempt(p, call) {
			return
		}
		if pos := errResultIndex(p, call); pos >= 0 {
			p.Reportf(call.Pos(), "errflow",
				"call discards its error result; handle it, or annotate why ignoring it is sound")
		}
	})
	p.In.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errFlowExempt(p, call) {
			return
		}
		idx := errResultIndex(p, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return
		}
		if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(as.Pos(), "errflow",
				"error result assigned to _; handle it, or annotate why ignoring it is sound")
		}
	})
}

// errResultIndex returns the position of the first error-typed result
// of call, or -1. A single-result call returns 0 when that result is
// an error.
func errResultIndex(p *Pass, call *ast.CallExpr) int {
	t := p.Info.TypeOf(call)
	if t == nil {
		return -1
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errFlowExempt reports whether call is in the built-in infallible or
// best-effort set the rule's doc lists.
func errFlowExempt(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if isBuilderWrite(fn) {
		return true
	}
	// Methods on a hash value (h.Write, h.Sum...): hash.Hash documents
	// Write as never returning an error. The method object itself lives
	// in io (hash.Hash embeds io.Writer), so classify by the receiver
	// expression's static type.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isHashType(p.Info.TypeOf(sel.X)) {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch {
	case pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print"):
		return true // stdout diagnostics
	case pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"),
		pkg.Path() == "io" && fn.Name() == "WriteString":
		return len(call.Args) > 0 && infallibleWriterArg(p, call.Args[0])
	}
	return false
}

// isHashType reports whether t (or its pointee) is a type declared in
// hash or a hash/* package, e.g. the hash.Hash64 an fnv value is held
// as.
func isHashType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "hash" || strings.HasPrefix(path, "hash/")
}

// infallibleWriterArg reports whether the writer expression is
// os.Stdout/os.Stderr (best-effort terminal output), a hash, or a
// strings.Builder/bytes.Buffer (documented never to fail).
func infallibleWriterArg(p *Pass, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if isHashType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
