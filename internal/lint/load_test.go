package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindModuleRootAndDiscover(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	modPath, pkgs, err := DiscoverModule(root)
	if err != nil {
		t.Fatalf("DiscoverModule: %v", err)
	}
	if modPath != "fivealarms" {
		t.Errorf("module path = %q, want fivealarms", modPath)
	}
	paths := map[string]string{}
	for _, p := range pkgs {
		paths[p[1]] = p[0]
		if strings.Contains(p[0], "testdata") {
			t.Errorf("discovery must skip testdata trees, found %q", p[0])
		}
	}
	for _, want := range []string{"fivealarms", "fivealarms/internal/lint", "fivealarms/cmd/fivealarmsvet"} {
		if paths[want] == "" {
			t.Errorf("discovery missed package %q", want)
		}
	}
}

func TestDiscoverModuleRequiresGoMod(t *testing.T) {
	if _, _, err := DiscoverModule(t.TempDir()); err == nil {
		t.Fatalf("DiscoverModule outside a module must fail")
	}
}

func TestFindModuleRootFailsOutsideModules(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Skip("a go.mod above the temp dir shadows this case")
	}
}

func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("// a comment\nmodule  example.com/mod \n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := modulePath(gomod)
	if err != nil {
		t.Fatalf("modulePath: %v", err)
	}
	if got != "example.com/mod" {
		t.Errorf("modulePath = %q, want example.com/mod", got)
	}
	if err := os.WriteFile(gomod, []byte("go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := modulePath(gomod); err == nil {
		t.Errorf("modulePath must reject a go.mod without a module directive")
	}
}

func TestLoadRejectsEmptyAndBrokenDirs(t *testing.T) {
	loader := NewLoader()
	if _, err := loader.Load(t.TempDir(), "example.com/empty"); err == nil {
		t.Errorf("loading a directory without Go files must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package broken\nfunc ("), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(dir, "example.com/broken"); err == nil {
		t.Errorf("loading an unparsable package must fail")
	}
}

// TestLoaderEdgeCases builds a synthetic module exercising every
// exclusion the loader promises: test-only packages, build-tag-excluded
// files, vendored trees, hidden/underscore files, and the root package
// straddling its subdirectories in walk order.
func TestLoaderEdgeCases(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.22\n")
	// Root files named to straddle the subdirectory in WalkDir's
	// lexical order (a.go < mid < z.go): the discovery regression this
	// pins is the root package being recorded once per straddle.
	write("a.go", "package m\n\nfunc A() int { return 1 }\n")
	write("z.go", "package m\n\nfunc Z() int { return 2 }\n")
	// Build-tag-excluded variant declares a conflicting A: loading
	// succeeds only if the constraint actually excludes the file.
	write("excluded.go", "//go:build neverbuilt\n\npackage m\n\nfunc A() string { return \"conflict\" }\n")
	write("_skipped.go", "package wrong\n")
	write(".hidden.go", "package wrong\n")
	// Test-only package: no non-test sources, so not a lintable package.
	write("mid/only_test.go", "package mid\n")
	// Vendored dependencies are never analyzed.
	write("vendor/dep/dep.go", "package dep\n")

	_, pkgs, err := DiscoverModule(root)
	if err != nil {
		t.Fatalf("DiscoverModule: %v", err)
	}
	var got []string
	seen := map[string]int{}
	for _, p := range pkgs {
		got = append(got, p[1])
		seen[p[0]]++
		if seen[p[0]] > 1 {
			t.Errorf("directory %s discovered %d times", p[0], seen[p[0]])
		}
	}
	if len(got) != 1 || got[0] != "example.com/m" {
		t.Fatalf("discovered %v, want only the root package", got)
	}

	loader := NewLoader()
	pkg, err := loader.Load(root, "example.com/m")
	if err != nil {
		t.Fatalf("loading the root package: %v", err)
	}
	if n := len(pkg.Files); n != 2 {
		t.Errorf("loaded %d files, want a.go and z.go only", n)
	}
	if _, err := loader.Load(filepath.Join(root, "mid"), "example.com/m/mid"); err == nil {
		t.Errorf("a test-only package must fail to load as a lint target")
	}
}

// TestRepositoryIsLintClean runs the entire rule suite over the whole
// module — the same check `make lint` and the CI Lint job gate on.
// Every finding in the tree must be fixed or carry an annotated allow,
// so a green run here is the acceptance criterion that the tree
// honors its own contracts.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	_, pkgs, err := DiscoverModule(root)
	if err != nil {
		t.Fatalf("DiscoverModule: %v", err)
	}
	loader := NewLoader()
	rules := Rules()
	for _, p := range pkgs {
		pkg, err := loader.Load(p[0], p[1])
		if err != nil {
			t.Errorf("loading %s: %v", p[1], err)
			continue
		}
		for _, d := range Check(pkg, rules) {
			t.Errorf("%v", d)
		}
	}
}
