package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// seededRandExempt lists the only packages allowed to touch unseeded
// randomness or the wall clock: the deterministic PRNG itself and the
// diffcheck generators (whose math/rand use is a pure function of an
// explicit seed). Everything else must draw randomness through
// internal/rng so a study's numbers are a function of its seed — the
// determinism contract CI's diffcheck job gates on.
var seededRandExempt = map[string]bool{
	"fivealarms/internal/rng":               true,
	"fivealarms/internal/refimpl/diffcheck": true,
}

func ruleSeededRand() Rule {
	return Rule{
		Name: "seededrand",
		Doc:  "math/rand imports and time.Now calls only inside internal/rng and internal/refimpl/diffcheck",
		Run:  runSeededRand,
	}
}

func runSeededRand(p *Pass) {
	if seededRandExempt[p.Path] {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "seededrand",
					"import of %s outside internal/rng breaks the seed-determinism contract; draw randomness through internal/rng", path)
			}
		}
	}
	p.In.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if fn := calleeFunc(p, call); fn != nil &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			p.Reportf(call.Pos(), "seededrand",
				"time.Now makes results depend on the wall clock; thread an explicit timestamp or seed instead")
		}
	})
}

// calleeFunc resolves the called function object, following selector
// and plain identifier callees.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// pathIsUnder reports whether path equals prefix or is a subpackage of
// it.
func pathIsUnder(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
