package lint

import (
	"go/ast"
	"go/types"
)

func ruleGoroLeak() Rule {
	return Rule{
		Name: "goroleak",
		Doc:  "go statements must tie the goroutine's lifetime to a context.Context, a sync.WaitGroup, or a WaitGroup-carrying worker-pool job",
		Run:  runGoroLeak,
	}
}

// runGoroLeak enforces the PR-3/PR-7 no-leak contract statically: a
// spawned goroutine must have a visible owner that bounds its
// lifetime. The recognized owners are the ones every audited spawn
// site in the tree uses — a context.Context the body watches, or a
// sync.WaitGroup it signals (directly, or through a worker-pool job
// struct carrying a *WaitGroup, which is how internal/raster's
// persistent kernel pool is tied down). A `go` statement none of whose
// referenced values is context- or WaitGroup-typed has no such owner:
// nothing can wait for it or stop it, and the chaos suite's
// goroutine-leak assertions can only catch the schedules a test
// happens to run.
func runGoroLeak(p *Pass) {
	p.In.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		if tiedGoroutine(p, gs.Call) {
			return
		}
		p.Reportf(gs.Pos(), "goroleak",
			"goroutine is not tied to a context.Context or sync.WaitGroup; nothing bounds its lifetime — thread an owner, or annotate why it provably terminates")
	})
}

// tiedGoroutine reports whether any expression in the spawned call —
// the callee, its arguments, or a function literal's body — has a
// lifetime-owner type: context.Context, or sync.WaitGroup (by value,
// pointer, or as a struct field selected from a pool job).
func tiedGoroutine(p *Pass, call *ast.CallExpr) bool {
	tied := false
	ast.Inspect(call, func(n ast.Node) bool {
		if tied {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := p.Info.TypeOf(e); t != nil && isLifetimeOwner(t) {
			tied = true
			return false
		}
		return true
	})
	return tied
}

// isLifetimeOwner reports whether t is context.Context or
// (*)sync.WaitGroup.
func isLifetimeOwner(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "context.Context", "sync.WaitGroup":
		return true
	}
	return false
}
