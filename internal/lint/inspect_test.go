package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const inspectSrc = `package p

func a() {
	b(1)
	func() {
		b(2)
	}()
}

func b(n int) int { return n }
`

func parseInspector(t *testing.T) (*token.FileSet, *Inspector) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", inspectSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, newInspector([]*ast.File{f})
}

func TestInspectorPreorderFiltersInSourceOrder(t *testing.T) {
	fset, in := parseInspector(t)
	var lines []int
	in.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		lines = append(lines, fset.Position(n.Pos()).Line)
	})
	// b(1), the immediately-invoked literal (starting at its func
	// keyword), and b(2) — depth-first source order.
	want := []int{4, 5, 6}
	if len(lines) != len(want) {
		t.Fatalf("call lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("call lines = %v, want %v", lines, want)
		}
	}
}

func TestInspectorPreorderEmptyFilterVisitsEverything(t *testing.T) {
	_, in := parseInspector(t)
	total := 0
	in.Preorder(nil, func(ast.Node) { total++ })
	funcs := 0
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(ast.Node) { funcs++ })
	if funcs != 2 {
		t.Errorf("FuncDecl count = %d, want 2", funcs)
	}
	if total <= funcs {
		t.Errorf("unfiltered walk saw %d nodes; must dominate the %d filtered ones", total, funcs)
	}
}

func TestInspectorWithStackRootsAtFile(t *testing.T) {
	fset, in := parseInspector(t)
	checked := 0
	in.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, stack []ast.Node) {
		if _, ok := stack[0].(*ast.File); !ok {
			t.Errorf("stack[0] = %T, want *ast.File", stack[0])
		}
		if stack[len(stack)-1] != n {
			t.Errorf("stack tail is not the matched node")
		}
		// The inner call b(2) must see the enclosing FuncLit on its
		// stack; the outer b(1) must not.
		inLit := false
		for _, s := range stack {
			if _, ok := s.(*ast.FuncLit); ok {
				inLit = true
			}
		}
		line := fset.Position(n.Pos()).Line
		if line == 6 && !inLit {
			t.Errorf("call on line 6 is missing its enclosing FuncLit")
		}
		if line == 4 && inLit {
			t.Errorf("call on line 4 wrongly reports an enclosing FuncLit")
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("WithStack matched nothing")
	}
}

func TestSortDiagnosticsOrdersAndDedupes(t *testing.T) {
	mk := func(file string, line, col int, rule string) Diagnostic {
		return Diagnostic{
			Pos:     token.Position{Filename: file, Line: line, Column: col},
			Rule:    rule,
			Message: "m",
		}
	}
	in := []Diagnostic{
		mk("b.go", 2, 1, "floateq"),
		mk("a.go", 9, 3, "errflow"),
		mk("b.go", 2, 1, "floateq"), // exact duplicate — dropped
		mk("a.go", 9, 3, "ctxflow"), // same position, earlier rule name
		mk("a.go", 1, 1, "errflow"),
	}
	got := SortDiagnostics(in)
	want := []string{
		"a.go:1:1 errflow",
		"a.go:9:3 ctxflow",
		"a.go:9:3 errflow",
		"b.go:2:1 floateq",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
	for i, d := range got {
		key := fmt.Sprintf("%s:%d:%d %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule)
		if key != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, key, want[i])
		}
	}
}
