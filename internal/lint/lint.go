// Package lint is a from-scratch, stdlib-only static-analysis framework
// enforcing the contracts the reproduction's headline numbers rest on:
// seeded determinism (all randomness through internal/rng), the PR-3
// failure model (library code returns errors; panics only where
// documented provably-infallible), diffcheck's float-comparison
// discipline, prepared-geometry copy safety, and the test-only status
// of the reference twins and the fault injector.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// discovered by walking the module tree, parsed with go/parser, and
// type-checked with go/types using the stdlib "source" importer
// (importer.ForCompiler), so `go.mod` stays dependency-free. Rules run
// over typed ASTs and report Diagnostics; findings are suppressed only
// by an explicit annotation
//
//	//fivealarms:allow(<rule>) <one-line reason>
//
// on the flagged line, alone on the line above it, or in the doc
// comment of the enclosing top-level declaration. The reason is
// mandatory; unknown rule names and bare suppressions are themselves
// findings. See DESIGN.md §6 "Static-analysis conventions".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. The CLI renders it as
// "file:line:col: [rule] message".
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Rule is one registered invariant check. Run inspects a single
// type-checked package through the Pass and reports findings with
// Pass.Reportf.
type Rule struct {
	Name string // lowercase identifier, used in allow annotations
	Doc  string // one-line summary for -rules output
	Run  func(*Pass)
}

// Pass hands a rule one type-checked package. Files holds only
// non-test sources (the loader skips _test.go; test files are exempt
// from every rule by construction). In carries the package's shared
// preorder inspector: rules filter its single walk instead of
// re-traversing the AST independently.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path the package was loaded as
	Dir   string // package directory (for sibling artifacts like api.lock)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	In    *Inspector

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Rules returns the full registered suite in reporting order.
func Rules() []Rule {
	return []Rule{
		ruleSeededRand(),
		ruleFloatEq(),
		ruleNakedPanic(),
		ruleCtxFlow(),
		ruleNoCopyLock(),
		ruleTestOnlyImport(),
		ruleMapOrder(),
		ruleAPILock(),
		ruleGoroLeak(),
		ruleErrFlow(),
	}
}

// RuleNames returns the set of valid rule names, used by the
// suppression parser to reject unknown annotations.
func RuleNames() map[string]bool {
	names := make(map[string]bool)
	for _, r := range Rules() {
		names[r.Name] = true
	}
	return names
}

// Check runs the given rules over one loaded package and returns the
// surviving diagnostics: findings without a matching allow annotation,
// plus any malformed-suppression findings (rule "suppression", never
// suppressible). Results are sorted by (file, line, col, rule) and
// deduplicated, so overlapping rules reporting the same fact at the
// same position surface it once and the order is byte-deterministic.
func Check(pkg *Package, rules []Rule) []Diagnostic {
	pass := &Pass{
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Dir:   pkg.Dir,
		Files: pkg.Files,
		Pkg:   pkg.Pkg,
		Info:  pkg.Info,
		In:    newInspector(pkg.Files),
	}
	for _, r := range rules {
		r.Run(pass)
	}
	allows, bad := parseAllows(pkg.Fset, pkg.Files, RuleNames())
	var out []Diagnostic
	for _, d := range pass.diags {
		if !allows.covers(d) {
			out = append(out, d)
		}
	}
	out = append(out, bad...)
	return SortDiagnostics(out)
}

// SortDiagnostics orders diagnostics by (file, line, col, rule,
// message) and drops exact duplicates, in place. Both the per-package
// results of Check and the cross-package aggregate the CLI prints go
// through it, so `-json` (and SARIF) output is byte-deterministic
// regardless of load order or rule overlap.
func SortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
