package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

func ruleNoCopyLock() Rule {
	return Rule{
		Name: "nocopylock",
		Doc:  "no value copies (assignment, range, call-by-value, channel send) of types containing sync.Mutex/Once and friends",
		Run:  runNoCopyLock,
	}
}

// runNoCopyLock generalizes the copy-safety audit PR 2 did by hand for
// the Fire prep cache: any type whose type graph reaches a
// sync.Mutex, RWMutex, Once, WaitGroup, Cond, Map or Pool by value
// must never be copied — a copied sync.Once re-arms, a copied Mutex
// forks its lock state. The Fire type itself stays freely copyable
// because its prep cache lives behind a pointer; this rule is what
// keeps the pointed-to firePrep (which embeds the Once) from being
// dereferenced into a copy.
func runNoCopyLock(p *Pass) {
	c := &lockChecker{p: p, memo: map[types.Type]string{}}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					break // multi-value call/comma-ok: RHS values are fresh
				}
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarded, no second copy comes alive
					}
					c.checkCopy(rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkCopy(v, "variable initialization copies")
				}
			case *ast.SendStmt:
				// A worker-pool dispatch that sends a task struct with an
				// embedded WaitGroup forks the group: Done on the received
				// copy never releases the sender's Wait.
				c.checkCopy(n.Value, "channel send copies")
			case *ast.RangeStmt:
				if n.Value != nil {
					if path := c.lockPath(p.Info.TypeOf(n.Value)); path != "" {
						p.Reportf(n.Value.Pos(), "nocopylock",
							"range value copies %s per iteration; range over indices or pointers instead", path)
					}
				}
			case *ast.FuncDecl:
				if n.Recv != nil {
					c.checkFieldList(n.Recv, "receiver")
				}
				c.checkFieldList(n.Type.Params, "parameter")
			case *ast.FuncLit:
				c.checkFieldList(n.Type.Params, "parameter")
			case *ast.CallExpr:
				verb := "call passes"
				if p.Info.Types[n.Fun].IsType() {
					verb = "conversion copies" // T(x) has call-copy semantics
				}
				for _, arg := range n.Args {
					c.checkCopy(arg, verb)
				}
			}
			return true
		})
	}
}

type lockChecker struct {
	p    *Pass
	memo map[types.Type]string
}

// checkCopy reports when expr reads an existing lock-containing value
// by value. Fresh values — composite literals, function-call results —
// are moves, not copies, and stay legal (matching go vet's copylocks
// judgment).
func (c *lockChecker) checkCopy(expr ast.Expr, verb string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.TypeAssertExpr:
	default:
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if _, isVar := c.p.Info.Uses[id].(*types.Var); !isVar {
			return
		}
	}
	if path := c.lockPath(c.p.Info.TypeOf(e)); path != "" {
		c.p.Reportf(expr.Pos(), "nocopylock", "%s %s by value", verb, path)
	}
}

// checkFieldList flags by-value lock-containing receivers/parameters.
func (c *lockChecker) checkFieldList(fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		if path := c.lockPath(c.p.Info.TypeOf(field.Type)); path != "" {
			c.p.Reportf(field.Pos(), "nocopylock",
				"%s receives %s by value; use a pointer", what, path)
		}
	}
}

// lockPath returns a human-readable containment chain ("firePrep
// contains sync.Once") when t's type graph holds a lock by value, or
// "" when t copies safely. Pointers, slices, maps, channels, funcs and
// interfaces break the chain: copying them shares, not forks, the
// pointed-to state.
func (c *lockChecker) lockPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if path, done := c.memo[t]; done {
		return path
	}
	c.memo[t] = "" // in-progress marker; also the final answer for cycles
	path := c.lockPathUncached(t)
	c.memo[t] = path
	return path
}

func (c *lockChecker) lockPathUncached(t types.Type) string {
	switch t := t.(type) {
	case *types.Alias:
		return c.lockPath(types.Unalias(t))
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
		if inner := c.lockPath(t.Underlying()); inner != "" {
			return fmt.Sprintf("%s (contains %s)", t.Obj().Name(), inner)
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if inner := c.lockPath(t.Field(i).Type()); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return c.lockPath(t.Elem())
	}
	return ""
}
