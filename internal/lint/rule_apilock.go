package lint

import (
	"os"
	"path/filepath"
)

// apiLockScope is the wire-contract package whose DTO shape is frozen
// by a committed api.lock (DESIGN.md §7: fields are additive-only
// within v1, breaking changes go to /v2).
const apiLockScope = "fivealarms/internal/serve/api"

func ruleAPILock() Rule {
	return Rule{
		Name: "apilock",
		Doc:  "the serve/api DTO shape must match the committed api.lock: removals/renames/retypes are breaking, additions require fivealarmsvet -write-apilock",
		Run:  runAPILock,
	}
}

// runAPILock makes the "frozen, additive-only" wire policy machine
// checked. It extracts the JSON shape of every exported DTO struct via
// go/types and diffs it against the committed lockfile: a breaking
// drift (removed/renamed/retyped field, removed type) is a contract
// violation that only a new /v2 contract may make, while an additive
// drift means the lockfile is stale and must be regenerated with
// `fivealarmsvet -write-apilock` — a deliberate, reviewable act that
// shows up as a lockfile diff.
func runAPILock(p *Pass) {
	if p.Path != apiLockScope {
		return
	}
	locked, err := os.ReadFile(filepath.Join(p.Dir, APILockFile))
	if err != nil {
		p.Reportf(firstFilePos(p.Files), "apilock",
			"wire-contract package has no readable %s; generate it with `fivealarmsvet -write-apilock` and commit it", APILockFile)
		return
	}
	for _, d := range CompareAPILock(string(locked), &Package{
		Path: p.Path, Dir: p.Dir, Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
	}) {
		pos := d.Pos
		if !pos.IsValid() {
			pos = firstFilePos(p.Files)
		}
		if d.Breaking {
			p.Reportf(pos, "apilock",
				"breaking wire-contract change: %s — v1 fields are frozen (DESIGN.md §7); restore the field or introduce /v2", d.Detail)
		} else {
			p.Reportf(pos, "apilock",
				"additive wire-contract change: %s — regenerate the lockfile with `fivealarmsvet -write-apilock` and commit it", d.Detail)
		}
	}
}
