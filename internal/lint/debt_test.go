package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCollectAllowsFindsFixtureAnnotations(t *testing.T) {
	pkg, err := NewLoader().Load(filepath.Join("testdata", "src", "errflow"), "fivealarms/lintfixture/errflow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	allows := CollectAllows(pkg)
	if len(allows) != 1 {
		t.Fatalf("allows = %v, want exactly the suppressed.go annotation", allows)
	}
	a := allows[0]
	if a.Rule != "errflow" {
		t.Errorf("rule = %q, want errflow", a.Rule)
	}
	if filepath.Base(a.Pos.Filename) != "suppressed.go" || a.Pos.Line != 9 {
		t.Errorf("pos = %s:%d, want suppressed.go:9", a.Pos.Filename, a.Pos.Line)
	}
	if !strings.Contains(a.Reason, "best-effort") {
		t.Errorf("reason not captured: %q", a.Reason)
	}
}

func TestDebtReportFormatting(t *testing.T) {
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	entries := []DebtEntry{
		{
			Allow:     Allow{Pos: token.Position{Filename: "a.go", Line: 4}, Rule: "errflow", Reason: "best-effort"},
			Committed: time.Date(2026, 2, 19, 0, 0, 0, 0, time.UTC),
		},
		{
			Allow: Allow{Pos: token.Position{Filename: "b.go", Line: 9}, Rule: "errflow", Reason: "unreachable"},
		},
		{
			// Committed "after" now (clock skew between machines):
			// the age clamps to zero instead of going negative.
			Allow:     Allow{Pos: token.Position{Filename: "c.go", Line: 2}, Rule: "goroleak", Reason: "bounded"},
			Committed: time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC),
		},
	}
	got := DebtReport(entries, now)
	want := "a.go:4: [errflow] 10d (2026-02-19) — best-effort\n" +
		"b.go:9: [errflow] age unknown — unreachable\n" +
		"c.go:2: [goroleak] 0d (2026-03-02) — bounded\n" +
		"\n3 live suppressions: errflow=2 goroleak=1\n"
	if got != want {
		t.Errorf("DebtReport:\ngot  %q\nwant %q", got, want)
	}
}

func TestDebtReportEmpty(t *testing.T) {
	if got := DebtReport(nil, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); got != "no live suppressions\n" {
		t.Errorf("empty report = %q", got)
	}
}

// TestAllowAge exercises both sides of the graceful-degradation
// contract: a committed line in this repository resolves to a real
// commit time, and a path outside any git history reports unknown
// without erroring.
func TestAllowAge(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	a := Allow{Pos: token.Position{Filename: filepath.Join(root, "go.mod"), Line: 1}}
	if committed, ok := AllowAge(root, a); ok {
		if committed.IsZero() || committed.After(time.Now()) {
			t.Errorf("AllowAge returned an implausible commit time %v", committed)
		}
	} // !ok is legal: git may be absent or the checkout shallow

	tmp := t.TempDir()
	bad := Allow{Pos: token.Position{Filename: filepath.Join(tmp, "x.go"), Line: 1}}
	if _, ok := AllowAge(tmp, bad); ok {
		t.Errorf("AllowAge outside git must report unknown")
	}

	// A file outside the blame root falls back to its absolute path —
	// and still degrades to unknown rather than erroring.
	outside := Allow{Pos: token.Position{Filename: filepath.Join(tmp, "elsewhere.go"), Line: 1}}
	if _, ok := AllowAge(root, outside); ok {
		t.Errorf("AllowAge on a file outside the repository must report unknown")
	}
}
