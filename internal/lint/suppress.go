package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the annotation namespace. The full grammar is
//
//	//fivealarms:allow(<rule>) <one-line reason>
//
// A well-formed annotation suppresses findings of <rule> on the line
// it trails, on the next code line when it stands alone, or anywhere
// inside the enclosing top-level declaration when it appears in that
// declaration's doc comment. The reason is mandatory and unknown rule
// names are rejected — both violations surface as rule "suppression"
// findings, which are never themselves suppressible.
const allowPrefix = "//fivealarms:"

// allowSet indexes parsed annotations for one package.
type allowSet struct {
	// line maps filename → line → rules allowed on that line.
	line map[string]map[int]map[string]bool
	// span holds declaration-scoped allows as [start, end] line ranges.
	span map[string][]allowSpan
}

type allowSpan struct {
	startLine, endLine int
	rule               string
}

// covers reports whether d is suppressed by an annotation.
func (s *allowSet) covers(d Diagnostic) bool {
	if s.line[d.Pos.Filename][d.Pos.Line][d.Rule] {
		return true
	}
	for _, sp := range s.span[d.Pos.Filename] {
		if sp.rule == d.Rule && d.Pos.Line >= sp.startLine && d.Pos.Line <= sp.endLine {
			return true
		}
	}
	return false
}

func (s *allowSet) add(file string, line int, rule string) {
	if s.line[file] == nil {
		s.line[file] = map[int]map[string]bool{}
	}
	if s.line[file][line] == nil {
		s.line[file][line] = map[string]bool{}
	}
	s.line[file][line][rule] = true
}

// parseAllows scans every comment in the package for fivealarms:
// annotations, returning the index of well-formed allows plus a
// diagnostic for each malformed one.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (*allowSet, []Diagnostic) {
	set := &allowSet{
		line: map[string]map[int]map[string]bool{},
		span: map[string][]allowSpan{},
	}
	var bad []Diagnostic
	for _, f := range files {
		code := codeLines(fset, f)
		docSpans := declDocSpans(fset, f)

		// Collect the file's annotations first so standalone ones can
		// slide past each other onto the next code line.
		type ann struct {
			line int
			rule string
			doc  *[2]int // non-nil when part of a declaration doc comment
		}
		var anns []ann
		annLines := map[int]bool{}
		for _, cg := range f.Comments {
			declRange, isDoc := docSpans[cg]
			for _, c := range cg.List {
				rule, diag := parseAllowComment(fset, c, known)
				if diag != nil {
					bad = append(bad, *diag)
					continue
				}
				if rule == "" {
					continue // not a fivealarms: annotation
				}
				line := fset.Position(c.Pos()).Line
				a := ann{line: line, rule: rule}
				if isDoc {
					r := declRange
					a.doc = &r
				} else if !code[line] {
					annLines[line] = true
				}
				anns = append(anns, a)
			}
		}
		sort.Slice(anns, func(i, j int) bool { return anns[i].line < anns[j].line })
		fname := fset.Position(f.Package).Filename
		for _, a := range anns {
			switch {
			case a.doc != nil:
				set.span[fname] = append(set.span[fname], allowSpan{a.doc[0], a.doc[1], a.rule})
			case code[a.line]:
				// Trailing annotation: guards its own line.
				set.add(fname, a.line, a.rule)
			default:
				// Standalone annotation: guards the next code line,
				// sliding past any stacked annotations in between.
				target := a.line + 1
				for annLines[target] {
					target++
				}
				set.add(fname, target, a.rule)
			}
		}
	}
	return set, bad
}

// parseAllowComment returns the allowed rule name for a well-formed
// annotation, "" for comments outside the fivealarms: namespace, or a
// diagnostic for malformed annotations.
func parseAllowComment(fset *token.FileSet, c *ast.Comment, known map[string]bool) (string, *Diagnostic) {
	if !strings.HasPrefix(c.Text, allowPrefix) {
		return "", nil
	}
	fail := func(msg string) (string, *Diagnostic) {
		return "", &Diagnostic{Pos: fset.Position(c.Pos()), Rule: "suppression", Message: msg}
	}
	rest := strings.TrimPrefix(c.Text, allowPrefix)
	if !strings.HasPrefix(rest, "allow(") {
		return fail("malformed fivealarms: annotation; want //fivealarms:allow(<rule>) <reason>")
	}
	rest = strings.TrimPrefix(rest, "allow(")
	end := strings.IndexByte(rest, ')')
	if end < 0 {
		return fail("unclosed rule name in fivealarms:allow annotation")
	}
	rule := strings.TrimSpace(rest[:end])
	if !known[rule] {
		return fail("fivealarms:allow names unknown rule \"" + rule + "\"")
	}
	if reason := strings.TrimSpace(rest[end+1:]); reason == "" {
		return fail("fivealarms:allow(" + rule + ") needs a one-line reason; bare suppressions are forbidden")
	}
	return rule, nil
}

// Allow is one live, well-formed suppression annotation — the unit of
// suppression debt the -debt report audits.
type Allow struct {
	Pos    token.Position `json:"pos"`
	Rule   string         `json:"rule"`
	Reason string         `json:"reason"`
}

// CollectAllows returns every well-formed allow annotation in the
// package in position order. Malformed annotations are omitted; Check
// already reports those as findings.
func CollectAllows(pkg *Package) []Allow {
	known := RuleNames()
	var out []Allow
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, diag := parseAllowComment(pkg.Fset, c, known)
				if diag != nil || rule == "" {
					continue
				}
				rest := strings.TrimPrefix(strings.TrimPrefix(c.Text, allowPrefix), "allow(")
				_, reason, _ := strings.Cut(rest, ")")
				out = append(out, Allow{
					Pos:    pkg.Fset.Position(c.Pos()),
					Rule:   rule,
					Reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// codeLines returns the set of lines in f that contain code: the start
// or end line of any non-comment AST node. Interior lines of spanning
// constructs are claimed by their own child nodes, so a comment alone
// on a line is never marked.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return n != nil
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// declDocSpans maps each top-level declaration's doc comment group to
// the [start, end] line range the declaration covers.
func declDocSpans(fset *token.FileSet, f *ast.File) map[*ast.CommentGroup][2]int {
	spans := map[*ast.CommentGroup][2]int{}
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc != nil {
			spans[doc] = [2]int{
				fset.Position(decl.Pos()).Line,
				fset.Position(decl.End()).Line,
			}
		}
	}
	return spans
}
