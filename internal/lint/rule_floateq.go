package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqScope lists the GIS-kernel packages bound by diffcheck's
// ≤1-ulp equivalence contract. Inside them an ad-hoc `==`/`!=` on
// floats is a latent divergence between the optimized and reference
// code paths, so every such comparison must carry an allow annotation
// stating why exact equality is the intended semantics (sentinel
// values, degeneracy tests on exact arithmetic, bit-identical cache
// keys, ...).
var floatEqScope = []string{
	"fivealarms/internal/geom",
	"fivealarms/internal/raster",
	"fivealarms/internal/proj",
	"fivealarms/internal/grid",
	"fivealarms/internal/rtree",
}

func ruleFloatEq() Rule {
	return Rule{
		Name: "floateq",
		Doc:  "==/!= on float operands in the GIS kernel packages requires an allow annotation",
		Run:  runFloatEq,
	}
}

func runFloatEq(p *Pass) {
	inScope := false
	for _, prefix := range floatEqScope {
		if pathIsUnder(p.Path, prefix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	p.In.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if isFloat(p, be.X) || isFloat(p, be.Y) {
			p.Reportf(be.OpPos, "floateq",
				"%s on float operands; exact float equality diverges from diffcheck's ulp contract — use an epsilon, restructure, or annotate why exactness is intended", be.Op)
		}
	})
}

// isFloat reports whether the expression's type is (an alias of) a
// floating-point basic type. Struct comparisons are out of scope even
// when the struct holds floats: they compare identity of whole values,
// which is exactly what the prepared-geometry caches rely on.
func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
