package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (module-relative for repo packages)
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with the stdlib source
// importer. One Loader shares a FileSet and an importer across loads,
// so dependencies are type-checked once and positions stay coherent.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a Loader backed by importer.ForCompiler's "source"
// mode — the only stdlib importer that works without compiled export
// data, keeping the tool zero-dependency. It panics if the source
// importer ever stops implementing types.ImporterFrom; that is a
// stdlib regression, i.e. a programming-error report per the failure
// model, not a runtime condition callers could handle.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	imp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		// The source importer has implemented ImporterFrom since it
		// shipped; this is unreachable short of a stdlib regression.
		panic("lint: source importer does not implement types.ImporterFrom")
	}
	return &Loader{fset: fset, imp: imp}
}

// Load parses every non-test .go file in dir and type-checks the
// result as a package imported as path. Test files are skipped: every
// rule's contract exempts _test.go sources, and external test packages
// (package foo_test) cannot share a type-checker universe with their
// subject anyway.
func (l *Loader) Load(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !includeFile(dir, e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: l.imp}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// DiscoverModule walks the module rooted at root (the directory
// holding go.mod) and returns its module path plus every directory
// containing non-test Go sources, as (dir, importPath) pairs in
// deterministic order. testdata, vendor, and hidden directories are
// skipped — the same pruning `go list ./...` applies.
func DiscoverModule(root string) (modPath string, pkgs [][2]string, err error) {
	modPath, err = modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", nil, err
	}
	// seen keys on the directory, not the walk's last entry: WalkDir
	// interleaves a directory's files with its subdirectories in
	// lexical order, so the module root's own files straddle every
	// subtree detour and a last-entry check would record the root once
	// per straddle — loading it repeatedly and duplicating its findings.
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		dir := filepath.Dir(p)
		if seen[dir] || !includeFile(dir, d.Name()) {
			return nil
		}
		seen[dir] = true
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, [2]string{dir, ip})
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i][1] < pkgs[j][1] })
	return modPath, pkgs, nil
}

// includeFile reports whether dir/name belongs to the analyzed build:
// a non-test, non-hidden .go file whose build constraints
// (//go:build lines, GOOS/GOARCH suffixes) match the default context.
// A constraint-excluded file cannot be type-checked into the package
// (its declarations may conflict with the included variant), which is
// exactly why `go build` excludes it too.
func includeFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	match, err := build.Default.MatchFile(dir, name)
	return err == nil && match
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
