package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapOrderScope lists the packages whose outputs feed the paper's
// deterministic artifacts — Table 1-3 rows, union masks, rendered
// reports, the frozen v1 wire bodies, shard merges, and the columnar
// snapshot — where Go's randomized map iteration order must never
// reach an ordered sink. Reading a map in any order is fine (sums,
// lookups); appending, writing, hashing, or sending while ranging is
// not, unless a sort step in the same function restores a total order.
var mapOrderScope = map[string]bool{
	"fivealarms/internal/risk":      true,
	"fivealarms/internal/raster":    true,
	"fivealarms/internal/report":    true,
	"fivealarms/internal/serve/api": true,
	"fivealarms/internal/shard":     true,
	"fivealarms/internal/cellnet":   true,
}

func ruleMapOrder() Rule {
	return Rule{
		Name: "maporder",
		Doc:  "range over a map feeding an ordered sink (append, writer, hash, channel) in the deterministic packages needs a sort step in the same function",
		Run:  runMapOrder,
	}
}

func runMapOrder(p *Pass) {
	if !mapOrderScope[p.Path] {
		return
	}
	p.In.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, stack []ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		sink := orderSink(p, rs.Body)
		if sink == "" {
			return
		}
		// A recognized sort call anywhere in the same enclosing function
		// is taken as the ordering step (keys collected and sorted, or
		// the sink sorted after the loop). The lexically innermost
		// function wins: a sort in an unrelated sibling closure does not
		// launder a different loop.
		for i := len(stack) - 1; i >= 0; i-- {
			var body *ast.BlockStmt
			switch fn := stack[i].(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				continue
			}
			if hasSortCall(p, body) {
				return
			}
			break
		}
		p.Reportf(rs.Pos(), "maporder",
			"map iteration order reaches an ordered sink (%s) with no sort step in the enclosing function; collect keys, sort, then emit — or annotate why the order provably cannot leak", sink)
	})
}

// orderSink scans a range body for a statement whose output depends on
// iteration order, returning a short description of the first one (in
// source order) or "".
func orderSink(p *Pass, body *ast.BlockStmt) string {
	sink := ""
	found := func(s string) { sink = s }
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found("channel send")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found("append to a slice")
					return false
				}
			}
			// Write methods reached through the hash.Hash interface
			// carry io's package on the method object (hash.Hash embeds
			// io.Writer), so classify by the receiver's static type.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "Write") && isHashType(p.Info.TypeOf(sel.X)) {
				found("hash write")
				return false
			}
			if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil {
				path := fn.Pkg().Path()
				switch {
				case isBuilderWrite(fn):
					found("string-builder/buffer write")
				case path == "hash" || strings.HasPrefix(path, "hash/") ||
					strings.HasPrefix(path, "crypto/"):
					found("hash write")
				case path == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
					found("writer output via fmt." + fn.Name())
				case path == "io" && fn.Name() == "WriteString":
					found("writer output via io.WriteString")
				}
			}
		}
		return sink == ""
	})
	return sink
}

// isBuilderWrite reports whether fn is a method of strings.Builder or
// bytes.Buffer — the accumulating sinks the report renderers use.
func isBuilderWrite(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// hasSortCall reports whether body contains a call into sort or slices
// whose name starts with Sort (sort.Strings, sort.Slice, slices.Sort,
// slices.SortFunc, ...), or sort.Sort itself.
func hasSortCall(p *Pass, body *ast.BlockStmt) bool {
	foundSort := false
	ast.Inspect(body, func(n ast.Node) bool {
		if foundSort {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				foundSort = true
			case "slices":
				if strings.HasPrefix(fn.Name(), "Sort") {
					foundSort = true
				}
			}
		}
		return !foundSort
	})
	return foundSort
}
