package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DebtEntry is one Allow annotated with its age: when the annotation's
// line was last committed, per `git blame`. Zero Committed means the
// age is unknown (no git, shallow history, or an uncommitted line).
type DebtEntry struct {
	Allow
	Committed time.Time
}

// AllowAge resolves the commit time of the annotation's line via
// `git blame`. It degrades gracefully: any failure (git missing, file
// untracked, line uncommitted) returns the zero time and false rather
// than an error — debt ages are advisory, never load-bearing.
func AllowAge(root string, a Allow) (time.Time, bool) {
	rel, err := filepath.Rel(root, a.Pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = a.Pos.Filename
	}
	lineRange := fmt.Sprintf("%d,%d", a.Pos.Line, a.Pos.Line)
	out, err := exec.Command("git", "-C", root, "blame", "--porcelain",
		"-L", lineRange, "--", rel).Output()
	if err != nil {
		return time.Time{}, false
	}
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "committer-time "); ok {
			sec, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return time.Time{}, false
			}
			t := time.Unix(sec, 0).UTC()
			if t.IsZero() || sec == 0 {
				return time.Time{}, false
			}
			return t, true
		}
	}
	return time.Time{}, false
}

// DebtReport renders the suppression-debt audit: one line per live
// allow (position, rule, age, reason) followed by a per-rule tally.
// now supplies the reference time for ages so the report itself stays
// a pure function of its inputs.
func DebtReport(entries []DebtEntry, now time.Time) string {
	var b strings.Builder
	perRule := map[string]int{}
	for _, e := range entries {
		age := "age unknown"
		if !e.Committed.IsZero() {
			days := int(now.Sub(e.Committed).Hours() / 24)
			if days < 0 {
				days = 0
			}
			age = fmt.Sprintf("%dd (%s)", days, e.Committed.Format("2006-01-02"))
		}
		fmt.Fprintf(&b, "%s:%d: [%s] %s — %s\n", e.Pos.Filename, e.Pos.Line, e.Rule, age, e.Reason)
		perRule[e.Rule]++
	}
	if len(entries) == 0 {
		return "no live suppressions\n"
	}
	rules := make([]string, 0, len(perRule))
	for r := range perRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	fmt.Fprintf(&b, "\n%d live suppressions:", len(entries))
	for _, r := range rules {
		fmt.Fprintf(&b, " %s=%d", r, perRule[r])
	}
	b.WriteString("\n")
	return b.String()
}
