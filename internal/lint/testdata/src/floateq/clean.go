package fixture

// Pt is comparable as a whole value; struct identity comparison is out
// of the rule's scope even though the fields are floats.
type Pt struct{ X, Y float64 }

// SameCell compares ints and whole structs — no float operands.
func SameCell(a, b Pt, ia, ib int) bool {
	return ia == ib && a == b
}

// Near is the blessed alternative: epsilon comparison.
func Near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
