package fixture

// Collinear compares cross products exactly — the kind of ad-hoc float
// equality the rule exists to catch.
func Collinear(ax, ay, bx, by float64) bool {
	if ax*by == ay*bx {
		return true
	}
	return ax != bx
}
