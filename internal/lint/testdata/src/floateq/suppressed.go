package fixture

// IsSentinel checks a sentinel that is assigned, never computed, so
// exact equality is the intended semantics.
func IsSentinel(v, nodata float64) bool {
	return v == nodata //fivealarms:allow(floateq) fixture: sentinel is assigned verbatim, never computed
}

// DegenerateSpan shows a standalone annotation guarding the next line.
func DegenerateSpan(lo, hi float64) bool {
	//fivealarms:allow(floateq) fixture: exact-degeneracy test on unmodified inputs
	return lo == hi
}
