package api

// Meta is a wire DTO in a package that never committed its lockfile.
type Meta struct {
	Version int `json:"version"`
}
