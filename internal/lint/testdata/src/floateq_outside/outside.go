package fixture

// Equal may compare floats exactly: this fixture is loaded under a
// package path outside the GIS-kernel scope.
func Equal(a, b float64) bool {
	return a == b
}
