package fixture

import (
	"context"
	"net/http"
)

// Handle receives the request — whose Context carries the client's
// cancellation — but commissions the build from a fresh root, so the
// study keeps computing for clients that already hung up.
func Handle(w http.ResponseWriter, r *http.Request) {
	buildStudy(context.Background())
}

// register nests the violation in a handler literal: the *http.Request
// parameter puts the literal in ctx scope.
func register(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		buildStudy(context.TODO())
	})
}

func buildStudy(ctx context.Context) { _ = ctx }
