package fixture

import (
	"context"
	"net/http"
)

// HandleDetached deliberately detaches the build from the request: the
// study must finish for the next caller even if this client leaves.
func HandleDetached(w http.ResponseWriter, r *http.Request) {
	go buildStudy(context.Background()) //fivealarms:allow(ctxflow) fixture: shared build outlives the requesting client
}
