package fixture

import (
	"context"
	"net/http"
)

// HandleThreaded hands the request's own context to the builder — the
// cancel chain stays intact.
func HandleThreaded(w http.ResponseWriter, r *http.Request) {
	buildStudy(r.Context())
}

// Warm has neither a ctx nor a request parameter; a fresh root is the
// only context it could use.
func Warm() {
	buildStudy(context.Background())
}
