package fixture

import "math/rand"

// Shuffle may use math/rand freely: this fixture is loaded under the
// blessed internal/rng import path.
func Shuffle(n int) []int {
	return rand.Perm(n)
}
