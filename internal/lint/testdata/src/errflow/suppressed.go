package fixture

import "errors"

func poke() error { return errors.New("x") }

// Poke fires a best-effort warmup.
func Poke() {
	_ = poke() //fivealarms:allow(errflow) fixture: warmup is best-effort, a failure just means a cold start
}
