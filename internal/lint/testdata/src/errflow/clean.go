package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func may() error { return errors.New("x") }

// Handle checks the error, logs best-effort to stderr, and builds
// through the documented infallible writers.
func Handle() string {
	if err := may(); err != nil {
		fmt.Fprintln(os.Stderr, "may:", err)
	}
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(&b, " %d", 1)
	return b.String()
}
