package fixture

import "errors"

func fail() error { return errors.New("boom") }

func both() (int, error) { return 0, errors.New("boom") }

// Drop discards errors every way the rule flags.
func Drop() int {
	fail()
	_ = fail()
	v, _ := both()
	return v
}
