package fixture

func fire() {}

// Flare is a one-shot spawn that provably terminates.
func Flare() {
	go fire() //fivealarms:allow(goroleak) fixture: fire returns immediately and owns no resources
}
