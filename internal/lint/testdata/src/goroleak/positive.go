package fixture

func work() {}

// Detach spawns goroutines no owner can wait for or stop.
func Detach() {
	go work()
	go func() {
		work()
	}()
}
