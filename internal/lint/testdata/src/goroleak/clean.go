package fixture

import (
	"context"
	"sync"
)

func step(ctx context.Context) { <-ctx.Done() }

// Fan ties each worker to the WaitGroup the caller drains.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Watch ties the goroutine's lifetime to the context it hands over.
func Watch(ctx context.Context) {
	go step(ctx)
}
