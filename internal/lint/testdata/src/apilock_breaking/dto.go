package api

// Meta shrank and retyped relative to its lockfile: Legacy was
// removed and Version changed int -> string, both breaking.
type Meta struct {
	Version string `json:"version"`
}
