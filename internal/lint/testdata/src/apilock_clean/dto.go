package api

// Meta is the frozen response envelope.
type Meta struct {
	Version int    `json:"version"`
	Units   string `json:"units,omitempty"`
	hidden  int
}

// CellRisk is one row of the frozen v1 body. Note stays server-side
// (json:"-") and the flattened Meta is locked under its own block.
type CellRisk struct {
	Meta
	ID    string  `json:"id"`
	Score float64 `json:"score"`
	Note  string  `json:"-"`
}
