package fixture

// Keys feeds a dedup set whose consumer sorts downstream.
func Keys(cells map[string]int) []string {
	var out []string
	for k := range cells { //fivealarms:allow(maporder) fixture: the caller sorts before any artifact is rendered
		out = append(out, k)
	}
	return out
}
