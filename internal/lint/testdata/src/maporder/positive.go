package fixture

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

// Render emits one line per cell in map order — the order reaches the
// output slice directly, so two runs render two different artifacts.
func Render(cells map[string]int) []string {
	var out []string
	for name, n := range cells {
		out = append(out, name, string(rune(n)))
	}
	return out
}

// Stream sends map entries down a channel in iteration order.
func Stream(cells map[string]int, ch chan<- string) {
	for name := range cells {
		ch <- name
	}
}

// Digest folds map entries into a hash in iteration order, so the
// fingerprint differs run to run.
func Digest(cells map[string]int) uint64 {
	h := fnv.New64a()
	for name := range cells {
		h.Write([]byte(name))
	}
	return h.Sum64()
}

// Print renders map entries straight into a builder in iteration order.
func Print(b *strings.Builder, cells map[string]int) {
	for name, n := range cells {
		fmt.Fprintf(b, "%s=%d\n", name, n)
	}
}

// Echo writes raw strings to a buffer in iteration order.
func Echo(buf *bytes.Buffer, cells map[string]int) {
	for name := range cells {
		io.WriteString(buf, name)
	}
}
