package fixture

import (
	"slices"
	"sort"
	"strings"
)

// Total folds the map in any order — a sum is order-free and the loop
// body has no ordered sink.
func Total(cells map[string]int) int {
	n := 0
	for _, v := range cells {
		n += v
	}
	return n
}

// Sorted collects keys then sorts before emitting: the canonical
// pattern the rule recognizes via the sort step in the same function.
func Sorted(cells map[string]int) []string {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Joined accumulates into a builder but sorts via slices.Sort in the
// same function — the other recognized ordering step.
func Joined(cells map[string]int) string {
	keys := make([]string, 0, len(cells))
	var b strings.Builder
	for k := range cells {
		b.WriteString(k)
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return strings.Join(keys, ",")
}
