package fixture

// Render would be a maporder finding inside the deterministic
// packages; outside their scope map-order is a local concern.
func Render(cells map[string]int) []string {
	var out []string
	for name := range cells {
		out = append(out, name)
	}
	return out
}
