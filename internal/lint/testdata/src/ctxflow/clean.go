package fixture

import "context"

// RunThreaded threads the caller's ctx all the way down.
func RunThreaded(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}

// Root has no ctx parameter; the non-ctx convenience wrapper is the
// one place a fresh Background root is legitimate.
func Root(f func(context.Context) error) error {
	return f(context.Background())
}

// helper is unexported, so parameter order is style, not contract.
func helper(name string, ctx context.Context) error {
	return ctx.Err()
}
