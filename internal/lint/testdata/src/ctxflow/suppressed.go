package fixture

import "context"

// Detach starts deliberately unscoped background work.
func Detach(ctx context.Context, f func(context.Context)) {
	_ = ctx
	go f(context.Background()) //fivealarms:allow(ctxflow) fixture: detached job must outlive the request ctx
}
