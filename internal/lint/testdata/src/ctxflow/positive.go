package fixture

import "context"

// Run receives a ctx but mints a fresh root for its callee, severing
// the caller's cancel chain.
func Run(ctx context.Context, f func(context.Context) error) error {
	_ = ctx
	return f(context.Background())
}

// Drain nests the violation inside a function literal: the literal has
// no ctx parameter of its own, but one is lexically in scope.
func Drain(ctx context.Context, work []func(context.Context)) {
	for _, w := range work {
		func() {
			w(context.TODO())
		}()
	}
	_ = ctx
}

// RunNamed is an exported entry point of a cancellable package, so its
// context must come first.
func RunNamed(name string, ctx context.Context) error {
	return ctx.Err()
}
