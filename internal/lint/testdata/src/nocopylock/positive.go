package fixture

import "sync"

// Cache embeds its guard by value, so Cache values must never be
// copied.
type Cache struct {
	mu   sync.Mutex
	hits int
}

// prep mirrors the wildfire firePrep shape: a Once guarding a build.
type prep struct {
	once sync.Once
	v    int
}

// Snapshot copies the cache four ways: assignment, dereference,
// call-by-value parameter, and range.
func Snapshot(c *Cache, all []Cache, use func(Cache) int) int {
	dup := *c
	n := use(dup)
	for _, e := range all {
		n += e.hits
	}
	return n
}

// rearm copies a prep, silently re-arming its Once.
func rearm(p *prep) prep {
	q := *p
	return q
}

// job mirrors the raster kernel-pool dispatch shape: a band task with
// its completion WaitGroup embedded by value.
type job struct {
	wg   sync.WaitGroup
	band int
}

// dispatch sends a job by value into the pool's channel, forking its
// WaitGroup: Done on the worker's copy never releases this Wait.
func dispatch(ch chan job, j *job) {
	ch <- *j
	j.wg.Wait()
}
