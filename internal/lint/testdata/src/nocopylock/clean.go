package fixture

// Fire mirrors the wildfire.Fire shape: the lock-bearing cache lives
// behind a pointer, so Fire values copy freely.
type Fire struct {
	ID int
	pp *prep
}

// Spread copies Fire values — legal, the prep pointer is shared — and
// touches caches only through pointers.
func Spread(fires []Fire, c *Cache) []Fire {
	out := make([]Fire, 0, len(fires))
	for _, f := range fires {
		out = append(out, f)
	}
	fresh := Cache{} // composite literal: a fresh value, not a copy
	_ = fresh
	_ = c
	return out
}

// enqueue shares the job through a pointer: the WaitGroup is not
// forked, matching the raster kernel pool's by-reference dispatch.
func enqueue(ch chan *job, j *job) {
	ch <- j
}
