package fixture

// Clone copies a quiescent cache during single-threaded setup.
func Clone(c *Cache) Cache {
	dup := *c //fivealarms:allow(nocopylock) fixture: setup-time copy before any goroutine can hold the lock
	return dup
}
