package fixture

import "time"

// Elapsed threads an explicit timestamp instead of reading the clock,
// and time.Since-free arithmetic keeps results a function of inputs.
func Elapsed(start, now time.Time) time.Duration {
	return now.Sub(start)
}
