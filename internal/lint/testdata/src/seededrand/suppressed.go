package fixture

import "time"

// Stamp is a log decoration, not an analysis input.
func Stamp() time.Time {
	return time.Now() //fivealarms:allow(seededrand) fixture: log decoration only, never feeds results
}
