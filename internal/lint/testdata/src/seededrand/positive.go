package fixture

import (
	"math/rand"
	"time"
)

// Roll draws unseeded randomness and reads the wall clock — both
// violations of the determinism contract outside internal/rng.
func Roll() (int, time.Time) {
	return rand.Int(), time.Now()
}
