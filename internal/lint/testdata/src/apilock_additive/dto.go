package api

// Meta gained a field the lockfile has not recorded yet — legal
// within v1, but the lockfile must be regenerated to record it.
type Meta struct {
	Version int    `json:"version"`
	Units   string `json:"units,omitempty"`
}
