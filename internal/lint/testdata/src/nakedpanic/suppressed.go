package fixture

// rethrow re-raises a contained failure value.
func rethrow(v any) {
	if v != nil {
		panic(v) //fivealarms:allow(nakedpanic) fixture: re-raising a contained panic, not originating one
	}
}
