package fixture

import "errors"

// MustDecode is Decode for static inputs. It panics when the header is
// short — a programming error in the caller's literal, per the failure
// model.
func MustDecode(b []byte) int {
	if len(b) < 4 {
		panic("short header")
	}
	return int(b[0])
}

// DecodeErr reports failure the right way for runtime inputs.
func DecodeErr(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, errors.New("short header")
	}
	return int(b[0]), nil
}
