package fixture

import "fmt"

// Decode parses a header but aborts instead of returning an error,
// with no contract stated in this comment.
func Decode(b []byte) int {
	if len(b) < 4 {
		panic("short header")
	}
	return int(b[0])
}

var hook = func() {
	panic(fmt.Errorf("hooks have no documented contract"))
}
