package api

// Meta carries one unrecorded field under an explicit waiver while a
// cross-repo lockfile regeneration lands.
type Meta struct {
	Version int    `json:"version"`
	Units   string `json:"units,omitempty"` //fivealarms:allow(apilock) fixture: lockfile regeneration lands in the same change series
}
