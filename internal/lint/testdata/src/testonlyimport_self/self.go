package fixture

// The test-only family may import itself: this fixture is loaded under
// the diffcheck import path.
import _ "fivealarms/internal/refimpl"
