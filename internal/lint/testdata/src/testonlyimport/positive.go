package fixture

// The fault injector must never link into production binaries.
import _ "fivealarms/internal/faults"
