package fixture

// A documented injection seam may link the injector behind a build-
// time switch.
import _ "fivealarms/internal/refimpl" //fivealarms:allow(testonlyimport) fixture: documented injection seam, wired only by chaos tests
