package fixture

import "fivealarms/internal/rng"

// Draw uses the deterministic PRNG — the production-legal randomness
// source.
func Draw(seed uint64) float64 {
	return rng.New(seed).Float64()
}
