package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// fixtureTests drives every rule over its golden fixture package under
// testdata/src/<dir>/ and asserts the exact diagnostic positions.
// Each rule ships at least one true positive, one clean case, and one
// suppressed case; the want lists are exhaustive, so a rule that goes
// quiet (or noisy) fails here. Fixtures are loaded under an assumed
// import path because several rules scope by package path.
var fixtureTests = []struct {
	rule string
	dir  string
	path string   // import path the fixture pretends to be
	want []string // "file:line:col rule", sorted by position
}{
	{
		rule: "seededrand",
		dir:  "seededrand",
		path: "fivealarms/lintfixture/seededrand",
		want: []string{
			"positive.go:4:2 seededrand",
			"positive.go:11:21 seededrand",
		},
	},
	{
		rule: "seededrand",
		dir:  "seededrand_blessed",
		path: "fivealarms/internal/rng",
		want: nil, // math/rand is legal inside the blessed package
	},
	{
		rule: "floateq",
		dir:  "floateq",
		path: "fivealarms/internal/geom",
		want: []string{
			"positive.go:6:11 floateq",
			"positive.go:9:12 floateq",
		},
	},
	{
		rule: "floateq",
		dir:  "floateq_outside",
		path: "fivealarms/internal/whp",
		want: nil, // exact float equality is only gated in the GIS kernel
	},
	{
		rule: "nakedpanic",
		dir:  "nakedpanic",
		path: "fivealarms/lintfixture/nakedpanic",
		want: []string{
			"positive.go:9:3 nakedpanic",
			"positive.go:15:2 nakedpanic",
		},
	},
	{
		rule: "ctxflow",
		dir:  "ctxflow",
		path: "fivealarms/internal/pipeline",
		want: []string{
			"positive.go:9:11 ctxflow",
			"positive.go:17:6 ctxflow",
			"positive.go:25:28 ctxflow",
		},
	},
	{
		rule: "ctxflow",
		dir:  "ctxflow_http",
		path: "fivealarms/lintfixture/ctxflowhttp",
		want: []string{
			"positive.go:12:13 ctxflow",
			"positive.go:19:14 ctxflow",
		},
	},
	{
		rule: "nocopylock",
		dir:  "nocopylock",
		path: "fivealarms/lintfixture/nocopylock",
		want: []string{
			"positive.go:21:9 nocopylock",
			"positive.go:22:11 nocopylock",
			"positive.go:23:9 nocopylock",
			"positive.go:31:7 nocopylock",
			"positive.go:45:8 nocopylock",
		},
	},
	{
		rule: "testonlyimport",
		dir:  "testonlyimport",
		path: "fivealarms/lintfixture/prod",
		want: []string{
			"positive.go:4:8 testonlyimport",
		},
	},
	{
		rule: "testonlyimport",
		dir:  "testonlyimport_self",
		path: "fivealarms/internal/refimpl/diffcheck",
		want: nil, // the test-only family may import itself
	},
	{
		rule: "maporder",
		dir:  "maporder",
		path: "fivealarms/internal/report",
		want: []string{
			"positive.go:15:2 maporder",
			"positive.go:23:2 maporder",
			"positive.go:32:2 maporder",
			"positive.go:40:2 maporder",
			"positive.go:47:2 maporder",
		},
	},
	{
		rule: "maporder",
		dir:  "maporder_outside",
		path: "fivealarms/lintfixture/maporder",
		want: nil, // map-order only gates the deterministic packages
	},
	{
		rule: "goroleak",
		dir:  "goroleak",
		path: "fivealarms/lintfixture/goroleak",
		want: []string{
			"positive.go:7:2 goroleak",
			"positive.go:8:2 goroleak",
		},
	},
	{
		rule: "errflow",
		dir:  "errflow",
		path: "fivealarms/lintfixture/errflow",
		want: []string{
			"positive.go:11:2 errflow",
			"positive.go:12:2 errflow",
			"positive.go:13:2 errflow",
		},
	},
	{
		rule: "apilock",
		dir:  "apilock_clean",
		path: "fivealarms/internal/serve/api",
		want: nil, // shape matches the committed lockfile exactly
	},
	{
		rule: "apilock",
		dir:  "apilock_breaking",
		path: "fivealarms/internal/serve/api",
		want: []string{
			"dto.go:5:6 apilock", // removed field anchors at the type
			"dto.go:6:2 apilock", // retyped field anchors at the field
		},
	},
	{
		rule: "apilock",
		dir:  "apilock_additive",
		path: "fivealarms/internal/serve/api",
		want: []string{
			"dto.go:7:2 apilock",
		},
	},
	{
		rule: "apilock",
		dir:  "apilock_suppressed",
		path: "fivealarms/internal/serve/api",
		want: nil, // additive drift under an annotated waiver
	},
	{
		rule: "apilock",
		dir:  "apilock_missing",
		path: "fivealarms/internal/serve/api",
		want: []string{
			"dto.go:1:1 apilock",
		},
	},
}

// ruleByName fails the test when the registry loses a rule — the
// fixture suite is the existence proof for each rule.
func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("rule %q is not registered", name)
	return Rule{}
}

func TestRuleFixtures(t *testing.T) {
	loader := NewLoader()
	for _, tt := range fixtureTests {
		t.Run(tt.dir, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", "src", tt.dir), tt.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Check(pkg, []Rule{ruleByName(t, tt.rule)})
			var got []string
			for _, d := range diags {
				got = append(got, fmt.Sprintf("%s:%d:%d %s",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule))
			}
			if len(got) != len(tt.want) {
				t.Fatalf("diagnostics:\ngot  %q\nwant %q", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("diagnostic %d:\ngot  %q\nwant %q", i, got[i], tt.want[i])
				}
			}
		})
	}
}

// TestFixturesRunFullSuite re-checks every fixture with the entire rule
// suite enabled, proving rules stay quiet outside their scope: the only
// extra finding the full suite may add to a fixture is none at all.
func TestFixturesRunFullSuite(t *testing.T) {
	loader := NewLoader()
	for _, tt := range fixtureTests {
		t.Run(tt.dir, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", "src", tt.dir), tt.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Check(pkg, Rules())
			for _, d := range diags {
				if d.Rule != tt.rule {
					t.Errorf("foreign rule fired on fixture %s: %v", tt.dir, d)
				}
			}
		})
	}
}

func TestRuleNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if r.Name == "" || r.Doc == "" || r.Run == nil {
			t.Errorf("rule %+v is missing a name, doc, or runner", r.Name)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if !seen["seededrand"] || !seen["floateq"] || !seen["nakedpanic"] ||
		!seen["ctxflow"] || !seen["nocopylock"] || !seen["testonlyimport"] ||
		!seen["maporder"] || !seen["apilock"] || !seen["goroleak"] || !seen["errflow"] {
		t.Errorf("registry lost a contract rule: %v", seen)
	}
}
