package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// checkSrc type-checks one synthetic file as importPath and runs the
// named rule over it, returning "line:col" keys of the findings.
func checkSrc(t *testing.T, importPath, src string, rule string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().Load(dir, importPath)
	if err != nil {
		t.Fatalf("loading synthetic package: %v", err)
	}
	var got []string
	for _, d := range Check(pkg, []Rule{ruleByName(t, rule)}) {
		got = append(got, d.Pos.String()[len(d.Pos.Filename)+1:])
	}
	return got
}

// TestNoCopyLockByValueFields pins the receiver/parameter half of the
// rule: a lock-bearing value in a field list is a copy at every call.
func TestNoCopyLockByValueFields(t *testing.T) {
	src := `package p

import "sync"

type Guarded struct{ mu sync.Mutex }

func ByValueParam(g Guarded) {}

func (g Guarded) ByValueRecv() {}
`
	got := checkSrc(t, "example.com/p", src, "nocopylock")
	want := []string{"7:19", "9:7"}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestErrFlowSingleResultAndStdout covers the non-tuple error shape
// (a bare errors.New) and the os.Stdout best-effort exemption.
func TestErrFlowSingleResultAndStdout(t *testing.T) {
	src := `package p

import (
	"errors"
	"fmt"
	"os"
)

func F() {
	errors.New("constructed and dropped")
	fmt.Fprintln(os.Stdout, "best-effort terminal output")
}
`
	got := checkSrc(t, "example.com/p", src, "errflow")
	if len(got) != 1 || got[0] != "10:2" {
		t.Fatalf("findings = %v, want exactly the dropped errors.New at 10:2", got)
	}
}
