package lint

import (
	"go/ast"
	"go/types"
)

// ctxThreadScope lists the packages whose exported blocking entry
// points must thread a caller context: the pipeline executor and the
// fire-history simulator, the two subsystems PR 3 made cancellable.
// In them, an exported function that accepts a context.Context must
// take it as the first parameter, so call sites read ctx-first and
// the cancel path stays obvious.
var ctxThreadScope = map[string]bool{
	"fivealarms/internal/pipeline": true,
	"fivealarms/internal/wildfire": true,
}

func ruleCtxFlow() Rule {
	return Rule{
		Name: "ctxflow",
		Doc:  "functions receiving a ctx (or an *http.Request, whose Context is the cancel chain) must not mint context.Background/TODO; pipeline/wildfire entry points take ctx first",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Pass) {
	p.In.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		checkExportedCtxFirst(p, n.(*ast.FuncDecl))
	})
	// A context.Background/TODO call is a finding when any enclosing
	// function in the lexical chain — declaration or closure — already
	// receives a context.Context: minting a fresh root there severs the
	// cancel chain the caller paid to thread. HTTP handlers count as
	// ctx receivers: an *http.Request parameter carries the client's
	// cancellation as r.Context(), and a handler that builds from a
	// fresh root keeps computing for clients that hung up.
	p.In.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, stack []ast.Node) {
		call := n.(*ast.CallExpr)
		if !isCtxMint(p, call) {
			return
		}
		for _, s := range stack {
			var ft *ast.FuncType
			switch fn := s.(type) {
			case *ast.FuncDecl:
				ft = fn.Type
			case *ast.FuncLit:
				ft = fn.Type
			default:
				continue
			}
			if hasCtxParam(p, ft) {
				p.Reportf(call.Pos(), "ctxflow",
					"context.%s inside a function that already receives a ctx severs the caller's cancel chain; thread the parameter instead",
					calleeFunc(p, call).Name())
				return
			}
		}
	})
}

// checkExportedCtxFirst flags exported entry points in the cancellable
// packages whose context parameter is not first.
func checkExportedCtxFirst(p *Pass, fd *ast.FuncDecl) {
	if !ctxThreadScope[p.Path] || !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if isCtxType(p, field.Type) && idx != 0 {
			p.Reportf(field.Pos(), "ctxflow",
				"%s is an exported entry point of a cancellable package; its context.Context must be the first parameter", fd.Name.Name)
			return
		}
		idx += n
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter, or an *net/http.Request one — a request
// parameter is a context parameter in disguise (r.Context()).
func hasCtxParam(p *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(p, field.Type) || isHTTPRequestPtr(p, field.Type) {
			return true
		}
	}
	return false
}

// isHTTPRequestPtr reports whether the expression denotes
// *net/http.Request.
func isHTTPRequestPtr(p *Pass, e ast.Expr) bool {
	ptr, ok := p.Info.TypeOf(e).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// isCtxType reports whether the expression denotes context.Context.
func isCtxType(p *Pass, e ast.Expr) bool {
	named, ok := p.Info.TypeOf(e).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCtxMint reports whether call is context.Background() or
// context.TODO().
func isCtxMint(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}
