package lint

import (
	"go/ast"
	"reflect"
)

// Inspector is the shared type-indexed AST walk for one package. Check
// builds it once per package and every rule filters the same preorder
// event list, so adding a rule no longer adds a full AST traversal —
// the engine walks each file exactly once regardless of how many rules
// are registered.
//
// The design mirrors golang.org/x/tools/go/ast/inspector without the
// dependency: a flat preorder slice with parent links, filtered by
// concrete node type. Parent links make enclosing-declaration lookups
// (nakedpanic's doc contracts, ctxflow's closure scopes, maporder's
// same-function sort search) O(depth) per match instead of a fresh
// recursive walk per rule.
type Inspector struct {
	events []inspectEvent
}

type inspectEvent struct {
	node   ast.Node
	parent int // index of the parent event; -1 for roots
}

// newInspector walks every file once, recording each node in preorder
// with a link to its parent.
func newInspector(files []*ast.File) *Inspector {
	in := &Inspector{}
	for _, f := range files {
		in.push(f, -1)
	}
	return in
}

func (in *Inspector) push(n ast.Node, parent int) {
	idx := len(in.events)
	in.events = append(in.events, inspectEvent{node: n, parent: parent})
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return true
		}
		in.push(c, idx)
		return false // push recurses; Inspect only hands us direct children
	})
}

// typeFilter matches nodes against the example-node filter convention
// used by x/tools: Preorder([]ast.Node{(*ast.CallExpr)(nil)}, fn).
type typeFilter map[reflect.Type]bool

func newTypeFilter(examples []ast.Node) typeFilter {
	if len(examples) == 0 {
		return nil // nil filter matches every node
	}
	f := make(typeFilter, len(examples))
	for _, ex := range examples {
		f[reflect.TypeOf(ex)] = true
	}
	return f
}

func (f typeFilter) matches(n ast.Node) bool {
	return f == nil || f[reflect.TypeOf(n)]
}

// Preorder calls fn for every node whose concrete type matches one of
// the example nodes (all nodes when types is empty), in depth-first
// source order.
func (in *Inspector) Preorder(types []ast.Node, fn func(ast.Node)) {
	f := newTypeFilter(types)
	for _, ev := range in.events {
		if f.matches(ev.node) {
			fn(ev.node)
		}
	}
}

// WithStack is Preorder plus the enclosing-node chain: stack[0] is the
// *ast.File and stack[len(stack)-1] is the matched node itself.
// The stack slice is reused across calls; callers must not retain it.
func (in *Inspector) WithStack(types []ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	f := newTypeFilter(types)
	var stack []ast.Node
	for i, ev := range in.events {
		if !f.matches(ev.node) {
			continue
		}
		stack = stack[:0]
		for j := i; j >= 0; j = in.events[j].parent {
			stack = append(stack, in.events[j].node)
		}
		for l, r := 0, len(stack)-1; l < r; l, r = l+1, r-1 {
			stack[l], stack[r] = stack[r], stack[l]
		}
		fn(ev.node, stack)
	}
}
