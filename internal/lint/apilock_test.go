package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadServeAPI type-checks the real wire-contract package.
func loadServeAPI(t *testing.T) *Package {
	t.Helper()
	pkg, err := NewLoader().Load(filepath.Join("..", "serve", "api"), apiLockScope)
	if err != nil {
		t.Fatalf("loading serve/api: %v", err)
	}
	return pkg
}

// TestAPILockAcceptance is the wire-freeze acceptance criterion: the
// committed lockfile matches the live DTO shape byte for byte, a
// simulated breaking change (a locked field the code no longer has,
// or a retype) fails the check, and a simulated additive change (a
// field the lockfile predates) is flagged until — and only until —
// the lockfile is regenerated.
func TestAPILockAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking serve/api is slow; run without -short")
	}
	pkg := loadServeAPI(t)
	locked, err := os.ReadFile(filepath.Join(pkg.Dir, APILockFile))
	if err != nil {
		t.Fatalf("the wire-contract lockfile must be committed: %v", err)
	}

	// Committed lockfile is current, and regeneration is byte-stable.
	if drifts := CompareAPILock(string(locked), pkg); len(drifts) != 0 {
		t.Fatalf("committed api.lock drifted from the package: %v", drifts)
	}
	if shape := APIShape(pkg); shape != string(locked) {
		t.Fatalf("APIShape does not reproduce the committed lockfile byte for byte:\n%s", shape)
	}

	// Breaking: the lockfile records a field the package lacks — the
	// shape a removed or renamed DTO field produces.
	broken := string(locked) + "  field Phantom json=phantom type=string\n"
	drifts := CompareAPILock(broken, pkg)
	if len(drifts) != 1 || !drifts[0].Breaking {
		t.Fatalf("removed locked field: drifts = %v, want one breaking drift", drifts)
	}
	if !strings.Contains(drifts[0].Detail, "Phantom") {
		t.Errorf("breaking drift should name the lost field: %s", drifts[0].Detail)
	}

	// Breaking: a retype — same field key, different canonical line.
	var fieldLine string
	for _, line := range strings.Split(string(locked), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "field ") {
			fieldLine = line
			break
		}
	}
	if fieldLine == "" {
		t.Fatal("committed lockfile has no field lines")
	}
	retyped := strings.Replace(string(locked), fieldLine,
		strings.Split(fieldLine, " json=")[0]+" json=zz type=zz", 1)
	drifts = CompareAPILock(retyped, pkg)
	if len(drifts) != 1 || !drifts[0].Breaking {
		t.Fatalf("retyped locked field: drifts = %v, want one breaking drift", drifts)
	}

	// Additive: drop one field line from the lockfile — the shape a
	// newly added DTO field produces against a stale lock.
	stale := strings.Replace(string(locked), fieldLine+"\n", "", 1)
	drifts = CompareAPILock(stale, pkg)
	if len(drifts) != 1 || drifts[0].Breaking {
		t.Fatalf("stale lockfile: drifts = %v, want one additive drift", drifts)
	}

	// Regeneration — the -write-apilock act — clears the additive
	// drift: the fresh shape compares clean against the package.
	if drifts := CompareAPILock(APIShape(pkg), pkg); len(drifts) != 0 {
		t.Fatalf("regenerated lockfile still drifts: %v", drifts)
	}
}

// TestWriteAPILock proves the writer emits exactly the canonical shape
// into the package directory.
func TestWriteAPILock(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking serve/api is slow; run without -short")
	}
	pkg := loadServeAPI(t)
	tmp := *pkg
	tmp.Dir = t.TempDir()
	if err := WriteAPILock(&tmp); err != nil {
		t.Fatalf("WriteAPILock: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(tmp.Dir, APILockFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != APIShape(pkg) {
		t.Errorf("written lockfile differs from APIShape")
	}
}

// TestWriteAPILockReportsWriteFailure: a vanished target directory
// surfaces as an error, not a silent no-op.
func TestWriteAPILockReportsWriteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking serve/api is slow; run without -short")
	}
	tmp := *loadServeAPI(t)
	tmp.Dir = filepath.Join(t.TempDir(), "no", "such", "dir")
	if err := WriteAPILock(&tmp); err == nil {
		t.Errorf("WriteAPILock into a missing directory must fail")
	}
}

func TestFirstFilePosEmpty(t *testing.T) {
	if pos := firstFilePos(nil); pos.IsValid() {
		t.Errorf("firstFilePos(nil) = %v, want NoPos", pos)
	}
}

// TestParseShapeToleratesNoise: hand-mangled lockfiles must not panic
// the checker — unknown lines are ignored, and field lines before any
// type block are dropped.
func TestParseShapeToleratesNoise(t *testing.T) {
	s := parseShape("# comment\nfield Orphan json=o type=int\n\ntype T\n  field A json=a type=int\n  garbage line\n")
	if len(s.types) != 1 || len(s.types["T"]) != 1 {
		t.Fatalf("parseShape = %+v, want exactly T.A", s.types)
	}
	if s.types["T"]["field A"].Line != "field A json=a type=int" {
		t.Errorf("field line = %q", s.types["T"]["field A"].Line)
	}
}
