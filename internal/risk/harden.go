package risk

import (
	"sort"

	"fivealarms/internal/coverage"
	"fivealarms/internal/geom"
)

// HardenedSite is one site chosen by the hardening plan.
type HardenedSite struct {
	SiteID int32
	XY     geom.Point
	// Gain is the marginal population protected when this site was
	// chosen.
	Gain float64
	// Transceivers co-located at the site.
	Transceivers int
}

// HardeningResult is a §3.10 mitigation-prioritization plan: which at-risk
// sites to harden first (backup power, defensible space, fire-resistant
// construction) to protect the most people.
type HardeningResult struct {
	// Sites lists the chosen sites in selection order (highest marginal
	// gain first).
	Sites []HardenedSite
	// ProtectedPopulation is the population within serving radius of at
	// least one hardened site.
	ProtectedPopulation float64
	// CandidatePopulation is the population within serving radius of any
	// at-risk site — the ceiling of what hardening can protect.
	CandidatePopulation float64
	// CandidateSites is the number of at-risk sites considered.
	CandidateSites int
}

// HardeningPlan greedily selects budget at-risk sites to harden so the
// population kept in service is maximized (the classic max-coverage
// greedy, within 1-1/e of optimal). radiusM 0 selects the default serving
// radius.
func (a *Analyzer) HardeningPlan(budget int, radiusM float64) *HardeningResult {
	model := coverage.Build(a.World, a.Counties, radiusM)
	g := a.World.Grid

	// Group at-risk transceivers into sites.
	type siteAgg struct {
		sum geom.Point
		n   int
	}
	aggs := map[int32]*siteAgg{}
	for i := range a.Data.T {
		if !a.classOf[i].AtRisk() {
			continue
		}
		id := a.Data.T[i].SiteID
		sa := aggs[id]
		if sa == nil {
			sa = &siteAgg{}
			aggs[id] = sa
		}
		sa.sum = sa.sum.Add(a.Data.T[i].XY)
		sa.n++
	}
	ids := make([]int32, 0, len(aggs))
	for id := range aggs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Per-site covered cells (cell index -> population).
	r := model.RadiusM
	rCells := int(r/g.CellSize) + 1
	type site struct {
		id    int32
		pos   geom.Point
		n     int
		cells []int32
	}
	sites := make([]site, 0, len(ids))
	for _, id := range ids {
		sa := aggs[id]
		pos := sa.sum.Scale(1 / float64(sa.n))
		cx0, cy0, ok := g.CellOf(pos)
		if !ok {
			continue
		}
		s := site{id: id, pos: pos, n: sa.n}
		r2 := r * r
		for dy := -rCells; dy <= rCells; dy++ {
			for dx := -rCells; dx <= rCells; dx++ {
				cx, cy := cx0+dx, cy0+dy
				if cx < 0 || cy < 0 || cx >= g.NX || cy >= g.NY {
					continue
				}
				d := g.Center(cx, cy).Sub(pos)
				if d.Dot(d) <= r2 {
					s.cells = append(s.cells, int32(cy*g.NX+cx))
				}
			}
		}
		sites = append(sites, s)
	}

	res := &HardeningResult{CandidateSites: len(sites)}

	// Candidate ceiling: union of all candidate cells.
	inUnion := map[int32]bool{}
	for _, s := range sites {
		for _, c := range s.cells {
			if !inUnion[c] {
				inUnion[c] = true
				res.CandidatePopulation += model.Pop.Data[c]
			}
		}
	}

	if budget <= 0 {
		return res
	}
	covered := map[int32]bool{}
	chosen := make([]bool, len(sites))
	for round := 0; round < budget && round < len(sites); round++ {
		bestIdx := -1
		bestGain := 0.0
		for si := range sites {
			if chosen[si] {
				continue
			}
			var gain float64
			for _, c := range sites[si].cells {
				if !covered[c] {
					gain += model.Pop.Data[c]
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = si
			}
		}
		if bestIdx < 0 {
			break // nothing left adds population
		}
		chosen[bestIdx] = true
		for _, c := range sites[bestIdx].cells {
			covered[c] = true
		}
		res.ProtectedPopulation += bestGain
		res.Sites = append(res.Sites, HardenedSite{
			SiteID:       sites[bestIdx].id,
			XY:           sites[bestIdx].pos,
			Gain:         bestGain,
			Transceivers: sites[bestIdx].n,
		})
	}
	return res
}
