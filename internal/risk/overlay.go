package risk

import (
	"sort"

	"fivealarms/internal/geodata"
	"fivealarms/internal/whp"
)

// WHPResult is the §3.3 overlay: transceivers per WHP class, per state,
// and per capita (Figures 7, 8 and 9).
type WHPResult struct {
	// ByClass counts transceivers per WHP class.
	ByClass map[whp.Class]int
	// ByState[stateIdx] counts [moderate, high, very-high].
	ByState [][3]int
	// Total is the dataset size.
	Total int
}

// AtRisk returns the moderate+high+very-high total (the paper's 430,844
// analog).
func (r *WHPResult) AtRisk() int {
	return r.ByClass[whp.Moderate] + r.ByClass[whp.High] + r.ByClass[whp.VeryHigh]
}

// WHPOverlay computes the class histogram and per-state breakdown.
func (a *Analyzer) WHPOverlay() *WHPResult {
	return a.WHPOverlayFor(a.classOf)
}

// WHPOverlayFor computes the overlay against an explicit per-transceiver
// class slice (e.g. one produced by ClassesAgainst) instead of the cached
// classification. Read-only: safe under concurrent analyses.
func (a *Analyzer) WHPOverlayFor(classOf []whp.Class) *WHPResult {
	res := &WHPResult{
		ByClass: map[whp.Class]int{},
		ByState: make([][3]int, len(geodata.States)),
		Total:   a.Data.Len(),
	}
	for i := range a.Data.T {
		c := classOf[i]
		res.ByClass[c]++
		si := int(a.Data.T[i].StateIdx)
		if si < 0 || si >= len(res.ByState) {
			continue
		}
		switch c {
		case whp.Moderate:
			res.ByState[si][0]++
		case whp.High:
			res.ByState[si][1]++
		case whp.VeryHigh:
			res.ByState[si][2]++
		}
	}
	return res
}

// classColumn maps a WHP class to the ByState column, -1 for classes
// outside the at-risk bands.
func classColumn(c whp.Class) int {
	switch c {
	case whp.Moderate:
		return 0
	case whp.High:
		return 1
	case whp.VeryHigh:
		return 2
	}
	return -1
}

// TopStates ranks states by transceivers in the given class (Figure 8),
// descending, including only states with a positive count.
func (r *WHPResult) TopStates(c whp.Class) []StateCount {
	col := classColumn(c)
	if col < 0 {
		return nil
	}
	var out []StateCount
	for si, row := range r.ByState {
		if row[col] > 0 {
			out = append(out, StateCount{Abbrev: stateName(si), Count: row[col]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Abbrev < out[j].Abbrev
	})
	return out
}

// TopStatesAtRisk ranks states by total moderate+high+very-high count.
func (r *WHPResult) TopStatesAtRisk() []StateCount {
	var out []StateCount
	for si, row := range r.ByState {
		total := row[0] + row[1] + row[2]
		if total > 0 {
			out = append(out, StateCount{Abbrev: stateName(si), Count: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Abbrev < out[j].Abbrev
	})
	return out
}

// PerCapita ranks states by class-c transceivers per thousand residents
// (Figure 9), descending.
func (r *WHPResult) PerCapita(c whp.Class) []StateCount {
	col := classColumn(c)
	if col < 0 {
		return nil
	}
	var out []StateCount
	for si, row := range r.ByState {
		if row[col] == 0 {
			continue
		}
		pop := geodata.States[si].Pop
		if pop == 0 {
			continue
		}
		out = append(out, StateCount{
			Abbrev:      stateName(si),
			Count:       row[col],
			PerThousand: float64(row[col]) / (float64(pop) / 1000),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PerThousand != out[j].PerThousand {
			return out[i].PerThousand > out[j].PerThousand
		}
		return out[i].Abbrev < out[j].Abbrev
	})
	return out
}
