package risk

import (
	"sort"

	"fivealarms/internal/census"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/whp"
)

// ImpactMatrix is the Figure 10 joint classification: at-risk transceivers
// by WHP class (rows: moderate, high, very-high) and county density class
// (columns: moderately-dense, dense, very-dense).
type ImpactMatrix struct {
	// Counts[whpRow][popCol].
	Counts [3][3]int
	// Rural counts at-risk transceivers in counties below 200k people.
	Rural [3]int
}

// popColumn maps a density class to the matrix column, -1 for rural.
func popColumn(d census.DensityClass) int {
	switch d {
	case census.PopModerate:
		return 0
	case census.PopDense:
		return 1
	case census.PopVeryDense:
		return 2
	}
	return -1
}

// PopulationImpact computes the Figure 10 matrix.
func (a *Analyzer) PopulationImpact() *ImpactMatrix {
	m := &ImpactMatrix{}
	for i := range a.Data.T {
		row := classColumn(a.classOf[i])
		if row < 0 {
			continue
		}
		ci := int(a.countyOf[i])
		if ci < 0 {
			continue
		}
		col := popColumn(a.Counties.All[ci].Density())
		if col < 0 {
			m.Rural[row]++
			continue
		}
		m.Counts[row][col]++
	}
	return m
}

// VeryDenseTotal returns the at-risk transceivers in counties above 1.5M
// people (the paper's 57,504 analog).
func (m *ImpactMatrix) VeryDenseTotal() int {
	return m.Counts[0][2] + m.Counts[1][2] + m.Counts[2][2]
}

// PopulousTotal returns the at-risk transceivers in all counties above
// 200k people (the paper's ~250,000 analog, Figure 11 left panel).
func (m *ImpactMatrix) PopulousTotal() int {
	t := 0
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			t += m.Counts[r][c]
		}
	}
	return t
}

// MetroRow is one Figure 12 bar group: a metro's at-risk transceivers per
// WHP class within its analysis window.
type MetroRow struct {
	Metro                 string
	Moderate, High, VHigh int
	// VHVeryDense counts very-high transceivers in very-dense counties
	// within the window (the Figure 11 right panel / §3.6 city list).
	VHVeryDense int
}

// Total returns the metro's combined at-risk count.
func (r MetroRow) Total() int { return r.Moderate + r.High + r.VHigh }

// MetroImpact computes the Figure 12 comparison over the paper's metro
// windows, sorted by total at-risk count descending.
func (a *Analyzer) MetroImpact() []MetroRow {
	return a.MetroImpactWindows(geodata.PaperMetros)
}

// MetroImpactWindows computes the metro comparison for caller-supplied
// windows.
func (a *Analyzer) MetroImpactWindows(windows []geodata.MetroWindow) []MetroRow {
	rows := make([]MetroRow, 0, len(windows))
	var buf []int
	for _, mw := range windows {
		center := a.World.ToXY(geom.Point{X: mw.AnchorLon, Y: mw.AnchorLat})
		r := mw.RadiusKM * 1000
		buf = a.Data.Index.QueryRadius(center, r, buf[:0])
		row := MetroRow{Metro: mw.Name}
		for _, ti := range buf {
			switch a.classOf[ti] {
			case whp.Moderate:
				row.Moderate++
			case whp.High:
				row.High++
			case whp.VeryHigh:
				row.VHigh++
			default:
				continue
			}
			if a.classOf[ti] == whp.VeryHigh {
				if ci := int(a.countyOf[ti]); ci >= 0 &&
					a.Counties.All[ci].Density() == census.PopVeryDense {
					row.VHVeryDense++
				}
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total() != rows[j].Total() {
			return rows[i].Total() > rows[j].Total()
		}
		return rows[i].Metro < rows[j].Metro
	})
	return rows
}

// MetroWindowCount returns the transceivers of each class inside a
// geographic window (the Figure 13 detail maps' data), keyed by class.
func (a *Analyzer) MetroWindowCount(anchor geom.Point, radiusM float64) map[whp.Class]int {
	center := a.World.ToXY(anchor)
	out := map[whp.Class]int{}
	for _, ti := range a.Data.Index.QueryRadius(center, radiusM, nil) {
		out[a.classOf[ti]]++
	}
	return out
}
