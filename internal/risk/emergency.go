package risk

import (
	"fivealarms/internal/coverage"
	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/wildfire"
)

// EmergencyImpact quantifies the §3.10 motivation — 80 % of California's
// 911 calls are wireless — by crossing the PSPS outage simulation with
// the coverage model: how many people had no in-service cell site in
// reach, day by day.
type EmergencyImpact struct {
	// DayLabels and StrandedByDay align with the scenario days.
	DayLabels     []string
	StrandedByDay []float64
	// PeakStranded is the worst day's stranded population.
	PeakStranded float64
	// PersonDays integrates stranded population over the event.
	PersonDays float64
	// WirelessOnlyShare is the assumed fraction of the population whose
	// only 911 path is cellular (the paper cites 80 % of CA 911 calls).
	WirelessOnlyShare float64
	// At911Risk is PersonDays scaled by WirelessOnlyShare: person-days
	// with no cellular 911 path.
	At911Risk float64
}

// EmergencyAnalysis runs the fall-2019 case study and evaluates the
// population left without any in-service site each day.
// wirelessShare 0 selects the paper's 0.80.
func (a *Analyzer) EmergencyAnalysis(season *wildfire.Season, netCfg powergrid.NetConfig,
	seed uint64, wirelessShare float64) *EmergencyImpact {
	if wirelessShare <= 0 || wirelessShare > 1 {
		wirelessShare = 0.80
	}
	region := a.CaliforniaRegion()
	net := powergrid.BuildNetwork(a.Data, a.WHP, region, netCfg)

	var fires []*wildfire.Fire
	for i := range season.Mapped {
		if region.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, &season.Mapped[i])
		}
	}
	sc := powergrid.NewFall2019Scenario(fires)
	outcome := net.Simulate(sc, seed)

	model := coverage.Build(a.World, a.Counties, 0)
	res := &EmergencyImpact{WirelessOnlyShare: wirelessShare}
	for d := range outcome.Causes {
		var up, down []geom.Point
		for i := range net.Sites {
			if outcome.Causes[d][i] == powergrid.None {
				up = append(up, net.Sites[i].XY)
			} else {
				down = append(down, net.Sites[i].XY)
			}
		}
		imp := model.Evaluate(up, down)
		res.DayLabels = append(res.DayLabels, powergrid.Fall2019DayLabels[d%len(powergrid.Fall2019DayLabels)])
		res.StrandedByDay = append(res.StrandedByDay, imp.StrandedPopulation)
		res.PersonDays += imp.StrandedPopulation
		if imp.StrandedPopulation > res.PeakStranded {
			res.PeakStranded = imp.StrandedPopulation
		}
	}
	res.At911Risk = res.PersonDays * wirelessShare
	return res
}
