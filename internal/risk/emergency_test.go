package risk

import (
	"testing"

	"fivealarms/internal/powergrid"
	"fivealarms/internal/wildfire"
)

func TestEmergencyAnalysis(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 15)
	res := testAnalyzer.EmergencyAnalysis(season, powergrid.NetConfig{Seed: 7}, 7, 0)
	if res.WirelessOnlyShare != 0.80 {
		t.Errorf("default wireless share = %v", res.WirelessOnlyShare)
	}
	if len(res.StrandedByDay) != 8 {
		t.Fatalf("days = %d", len(res.StrandedByDay))
	}
	var sum float64
	peakSeen := 0.0
	for d, v := range res.StrandedByDay {
		if v < 0 {
			t.Fatalf("day %d negative stranded", d)
		}
		sum += v
		if v > peakSeen {
			peakSeen = v
		}
	}
	if res.PersonDays != sum {
		t.Errorf("person-days %v != sum %v", res.PersonDays, sum)
	}
	if res.PeakStranded != peakSeen {
		t.Errorf("peak %v != observed %v", res.PeakStranded, peakSeen)
	}
	if res.At911Risk != res.PersonDays*0.80 {
		t.Error("911 scaling wrong")
	}
	// The stranded population tracks the outage curve: the peak day must
	// strand more than the final day.
	if len(res.StrandedByDay) >= 8 && res.StrandedByDay[3] < res.StrandedByDay[7] {
		t.Errorf("peak day strands %v, final day %v", res.StrandedByDay[3], res.StrandedByDay[7])
	}
}

func TestEmergencyAnalysisShareOverride(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 15)
	res := testAnalyzer.EmergencyAnalysis(season, powergrid.NetConfig{Seed: 7}, 7, 0.5)
	if res.WirelessOnlyShare != 0.5 || res.At911Risk != res.PersonDays*0.5 {
		t.Error("share override ignored")
	}
}
