package risk

// Study-layer conformance: the Table 1 join and the Figure 3 union mask
// are recomputed from first principles with the refimpl twins — no grid
// index, no prepared geometry, no shared mask — and must agree exactly.

import (
	"testing"

	"fivealarms/internal/raster"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/wildfire"
)

// table1Reference recomputes one season's transceiver count the slow
// way: every transceiver against every perimeter with the naive
// even-odd test, deduplicated per season exactly like overlaySeason.
func table1Reference(a *Analyzer, s *wildfire.Season) int {
	count := 0
	for ti := 0; ti < a.Data.Len(); ti++ {
		p := a.Data.T[ti].XY
		for fi := range s.Mapped {
			if refimpl.MultiPolygonContains(s.Mapped[fi].Perimeter, p) {
				count++
				break
			}
		}
	}
	return count
}

// TestTable1CrossCheck recomputes every Table 1 row with the refimpl
// full scan. The optimized path composes three accelerated primitives
// (grid index candidate query, prepared containment, visited-mask
// dedup); the reference composes none of them.
func TestTable1CrossCheck(t *testing.T) {
	// A slice of the history keeps the full scan (seasons × transceivers
	// × fires) affordable; the sweep-level drivers cover breadth.
	seasons := wildfire.SimulateHistory(testSim, 11, 6)[:5]
	rows := testAnalyzer.HistoricalOverlay(seasons)
	for i, s := range seasons {
		want := table1Reference(testAnalyzer, s)
		if rows[i].TransceiversIn != want {
			t.Errorf("season %d: overlay counted %d transceivers, full scan %d",
				s.Year, rows[i].TransceiversIn, want)
		}
	}
	// The parallel schedule must reproduce the serial rows exactly.
	serial := testAnalyzer.HistoricalOverlayWorkers(seasons, 1)
	parallel := testAnalyzer.HistoricalOverlayWorkers(seasons, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestTransceiversInFireCrossCheck checks the per-fire membership list
// (not just its length) against the full scan.
func TestTransceiversInFireCrossCheck(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 11, 6)
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		got := testAnalyzer.TransceiversInFire(f)
		inGot := make(map[int]bool, len(got))
		for _, ti := range got {
			inGot[ti] = true
		}
		n := 0
		for ti := 0; ti < testData.Len(); ti++ {
			if refimpl.MultiPolygonContains(f.Perimeter, testData.T[ti].XY) {
				n++
				if !inGot[ti] {
					t.Fatalf("fire %d: transceiver %d inside perimeter but missing from indexed join", fi, ti)
				}
			}
		}
		if n != len(got) {
			t.Fatalf("fire %d: indexed join returned %d members, full scan %d", fi, len(got), n)
		}
	}
}

// TestFireUnionMaskCrossCheck rebuilds the Figure 3 union mask from
// per-fire refimpl fills. Metamorphic inclusion-exclusion: the shared
// mask must equal the bitwise OR of the independent fills cell for
// cell, and its count can never exceed the sum of per-fire counts.
func TestFireUnionMaskCrossCheck(t *testing.T) {
	seasons := wildfire.SimulateHistory(testSim, 11, 4)[:6]
	union := testAnalyzer.FireUnionMask(seasons)
	g := testAnalyzer.World.Grid
	ref := raster.NewBitGrid(g)
	perFireSum := 0
	for _, s := range seasons {
		for fi := range s.Mapped {
			one := refimpl.FillMultiPolygon(g, s.Mapped[fi].Perimeter)
			perFireSum += one.Count()
			for cy := 0; cy < g.NY; cy++ {
				for cx := 0; cx < g.NX; cx++ {
					if one.Get(cx, cy) {
						ref.Set(cx, cy, true)
					}
				}
			}
		}
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if union.Get(cx, cy) != ref.Get(cx, cy) {
				t.Fatalf("cell (%d,%d): shared-mask fill %v, OR of refimpl fills %v",
					cx, cy, union.Get(cx, cy), ref.Get(cx, cy))
			}
		}
	}
	if union.Count() > perFireSum {
		t.Fatalf("union count %d exceeds per-fire sum %d", union.Count(), perFireSum)
	}
	if union.Count() == 0 {
		t.Fatal("union mask is empty; fixture seasons burned nothing")
	}
}
