package risk

import (
	"testing"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// Shared test fixtures: one world, one dataset, one analyzer. Scale keeps
// the full suite under a few seconds.
var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testWHP      = whp.Build(testWorld, testWorld.Grid, whp.Config{})
	testData     = cellnet.Generate(testWorld, cellnet.GenConfig{Seed: 7, Total: 60000})
	testCounties = census.Synthesize(testWorld, 7)
	testAnalyzer = New(testWorld, testWHP, testData, testCounties)
	testSim      = wildfire.NewSimulator(testWorld, testWHP)
)

func TestClassCacheMatchesDirectSampling(t *testing.T) {
	for i := 0; i < testData.Len(); i += 997 {
		want := testWHP.ClassAt(testData.T[i].XY)
		if got := testAnalyzer.Class(i); got != want {
			t.Fatalf("transceiver %d: cached class %v != %v", i, got, want)
		}
	}
}

func TestWHPOverlayNesting(t *testing.T) {
	res := testAnalyzer.WHPOverlay()
	m := res.ByClass[whp.Moderate]
	h := res.ByClass[whp.High]
	vh := res.ByClass[whp.VeryHigh]
	// The paper's structural finding (Figure 7): 261k > 142k > 26k.
	if !(m > h && h > vh && vh > 0) {
		t.Errorf("class nesting violated: M=%d H=%d VH=%d", m, h, vh)
	}
	if res.AtRisk() != m+h+vh {
		t.Error("AtRisk sum wrong")
	}
	// Paper scale: 430,844 / 5,364,949 = 8.0% of the fleet at risk. The
	// synthetic world should land in the same regime (3-20%).
	frac := float64(res.AtRisk()) / float64(res.Total)
	if frac < 0.03 || frac > 0.25 {
		t.Errorf("at-risk fraction = %.3f, want 0.03..0.25", frac)
	}
	if got := testAnalyzer.AtRiskCount(); got != res.AtRisk() {
		t.Errorf("AtRiskCount %d != overlay %d", got, res.AtRisk())
	}
}

func TestCaliforniaTopsStateRanking(t *testing.T) {
	res := testAnalyzer.WHPOverlay()
	top := res.TopStatesAtRisk()
	if len(top) < 10 {
		t.Fatalf("only %d states have at-risk transceivers", len(top))
	}
	if top[0].Abbrev != "CA" {
		t.Errorf("top at-risk state = %s, want CA (paper Figure 8)", top[0].Abbrev)
	}
	// FL and TX must rank in the top handful (paper: CA, FL, TX lead).
	rank := map[string]int{}
	for i, sc := range top {
		rank[sc.Abbrev] = i
	}
	if rank["FL"] > 6 {
		t.Errorf("FL rank = %d, want top 7", rank["FL"])
	}
	if rank["TX"] > 8 {
		t.Errorf("TX rank = %d, want top 9", rank["TX"])
	}
}

func TestTopStatesByClassSorted(t *testing.T) {
	res := testAnalyzer.WHPOverlay()
	for _, c := range []whp.Class{whp.Moderate, whp.High, whp.VeryHigh} {
		rows := res.TopStates(c)
		for i := 1; i < len(rows); i++ {
			if rows[i].Count > rows[i-1].Count {
				t.Fatalf("class %v ranking not sorted", c)
			}
		}
	}
	if res.TopStates(whp.Low) != nil {
		t.Error("non-risk class should return nil")
	}
}

func TestPerCapitaElevatesSmallWesternStates(t *testing.T) {
	res := testAnalyzer.WHPOverlay()
	// Very-high is sparse (paper: 0.49% of the fleet), so the per-capita
	// reordering effect of Figure 9 is tested on the denser moderate
	// class: small western states must climb the ranking relative to
	// their absolute counts.
	pc := res.PerCapita(whp.Moderate)
	if len(pc) < 10 {
		t.Fatalf("per-capita rows = %d", len(pc))
	}
	// Figure 9's structural claim: normalizing by population promotes the
	// small western states relative to the absolute ranking (the paper:
	// "New Mexico replaces Texas"). Check the rank improvement for every
	// small western state present in both lists.
	abs := res.TopStates(whp.Moderate)
	absRank := map[string]int{}
	for i, sc := range abs {
		absRank[sc.Abbrev] = i
	}
	small := map[string]bool{
		"UT": true, "NV": true, "NM": true, "MT": true,
		"ID": true, "WY": true, "OR": true,
	}
	improved, present := 0, 0
	for i, sc := range pc {
		if !small[sc.Abbrev] {
			continue
		}
		if ar, ok := absRank[sc.Abbrev]; ok {
			present++
			if i < ar {
				improved++
			}
		}
	}
	if present == 0 {
		t.Fatal("no small western states have moderate-class transceivers")
	}
	if improved*2 < present {
		t.Errorf("per-capita ranking promoted only %d/%d small western states", improved, present)
	}
	// The very-high per-capita list exists and is sorted.
	vhpc := res.PerCapita(whp.VeryHigh)
	for i := 1; i < len(vhpc); i++ {
		if vhpc[i].PerThousand > vhpc[i-1].PerThousand {
			t.Fatal("very-high per-capita not sorted")
		}
	}
}

func TestProviderRiskShape(t *testing.T) {
	rows := testAnalyzer.ProviderRisk()
	if len(rows) != 5 {
		t.Fatalf("provider rows = %d, want 5", len(rows))
	}
	byName := map[string]ProviderRow{}
	for _, r := range rows {
		byName[r.Provider] = r
		if r.Fleet == 0 {
			t.Errorf("provider %s has no fleet", r.Provider)
		}
		if r.Moderate < r.High || r.High < r.VHigh {
			t.Errorf("%s: class nesting violated (M=%d H=%d VH=%d)", r.Provider, r.Moderate, r.High, r.VHigh)
		}
		if r.PctM < r.PctH || r.PctH < r.PctVH {
			t.Errorf("%s: percentage nesting violated", r.Provider)
		}
	}
	att := byName[geodata.ProviderATT]
	sprint := byName[geodata.ProviderSprint]
	// Paper Table 2: AT&T carries the most at-risk infrastructure.
	for _, r := range rows {
		if r.Provider == geodata.ProviderATT {
			continue
		}
		if r.Moderate+r.High+r.VHigh > att.Moderate+att.High+att.VHigh {
			t.Errorf("%s exceeds AT&T in at-risk infrastructure", r.Provider)
		}
	}
	// Sprint's urban-heavy fleet has the lowest at-risk share among the
	// big four (3.90% vs 5.44% in Table 2).
	if sprint.PctM >= att.PctM {
		t.Errorf("Sprint PctM %.2f should be below AT&T %.2f", sprint.PctM, att.PctM)
	}
}

func TestRegionalProvidersAtRisk(t *testing.T) {
	regional := testAnalyzer.RegionalProvidersAtRisk()
	// Paper footnote: 46 smaller providers operate at-risk infrastructure.
	if len(regional) < 25 {
		t.Errorf("regional providers at risk = %d, want tens", len(regional))
	}
	for _, p := range regional {
		if geodata.IsMajorProvider(p) {
			t.Errorf("major provider %s in regional list", p)
		}
	}
}

func TestRadioTypeRisk(t *testing.T) {
	rows := testAnalyzer.RadioTypeRisk()
	if len(rows) != 4 {
		t.Fatalf("radio rows = %d", len(rows))
	}
	byRadio := map[cellnet.Radio]RadioRow{}
	for _, r := range rows {
		byRadio[r.Radio] = r
		if r.Total != r.VHigh+r.High+r.Moderate {
			t.Errorf("%v: total mismatch", r.Radio)
		}
	}
	// Paper Table 3: LTE leads every class; UMTS second overall.
	if byRadio[cellnet.LTE].Total <= byRadio[cellnet.UMTS].Total {
		t.Error("LTE should lead UMTS in at-risk transceivers")
	}
	if byRadio[cellnet.UMTS].Total <= byRadio[cellnet.GSM].Total {
		t.Error("UMTS should lead GSM")
	}
	if byRadio[cellnet.LTE].Moderate <= byRadio[cellnet.CDMA].Moderate {
		t.Error("LTE should lead CDMA in moderate")
	}
}

func TestHistoricalOverlayTable1(t *testing.T) {
	seasons := wildfire.SimulateHistory(testSim, 7, 10)
	rows := testAnalyzer.HistoricalOverlay(seasons)
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	nonzero := 0
	for _, r := range rows {
		if r.Fires <= 0 || r.AcresBurned <= 0 {
			t.Errorf("%d: missing marginals", r.Year)
		}
		if r.TransceiversIn > 0 {
			nonzero++
			if r.PerMillionAcres <= 0 {
				t.Errorf("%d: rate not computed", r.Year)
			}
		}
	}
	// Paper: every year has at least 180; at small scale most years must
	// still catch some infrastructure.
	if nonzero < 12 {
		t.Errorf("only %d/19 years caught transceivers", nonzero)
	}
	// Paper: wide variability with no simple acreage relationship. Check
	// that the per-million-acre rate varies by at least 3x across years
	// with nonzero counts.
	var lo, hi float64
	for _, r := range rows {
		if r.TransceiversIn == 0 {
			continue
		}
		if lo == 0 || r.PerMillionAcres < lo {
			lo = r.PerMillionAcres
		}
		if r.PerMillionAcres > hi {
			hi = r.PerMillionAcres
		}
	}
	if hi < 3*lo {
		t.Errorf("per-acre rate range [%.1f, %.1f] too narrow: no Table 1 variability", lo, hi)
	}
	if TotalInPerimeters(rows) == 0 {
		t.Error("no transceivers in perimeters across 19 years")
	}
}

func TestTransceiversInFire(t *testing.T) {
	season := testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 30,
	})
	total := 0
	for i := range season.Mapped {
		ids := testAnalyzer.TransceiversInFire(&season.Mapped[i])
		total += len(ids)
		for _, ti := range ids {
			if !season.Mapped[i].Perimeter.ContainsPoint(testData.T[ti].XY) {
				t.Fatal("returned transceiver outside perimeter")
			}
		}
	}
	if total == 0 {
		t.Error("no transceivers in any fire; overlay join broken")
	}
}

func TestFireUnionMask(t *testing.T) {
	seasons := []*wildfire.Season{testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 10,
	})}
	mask := testAnalyzer.FireUnionMask(seasons)
	if mask.Count() == 0 {
		t.Error("union mask empty")
	}
}

func TestValidation2019(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 40)
	v := testAnalyzer.Validate(season)
	if v.InPerimeter == 0 {
		t.Fatal("validation season caught no transceivers")
	}
	acc := v.AccuracyPct()
	// Paper: 46%. Structurally the WHP must predict some but not all
	// (roads/urban edges are nonburnable).
	if acc <= 5 || acc >= 98 {
		t.Errorf("validation accuracy = %.1f%%, want an intermediate value", acc)
	}
	if v.Predicted > v.InPerimeter {
		t.Error("predicted exceeds in-perimeter")
	}
	if v.MissesInRoadFires > v.InPerimeter-v.Predicted {
		t.Error("road misses exceed total misses")
	}
	if v.AccuracyExclRoadPct() < acc {
		t.Error("excluding road-fire misses cannot reduce accuracy")
	}
}

func TestExtendAndValidate(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 40)
	// Buffer by 2.5 cells so the coarse test raster can actually grow.
	dist := 2.5 * testWorld.Grid.CellSize
	res := testAnalyzer.ExtendAndValidate(season, dist)
	if res.VHAfter <= res.VHBefore {
		t.Errorf("extension did not grow very-high: %d -> %d", res.VHBefore, res.VHAfter)
	}
	if res.TotalAfter < res.TotalBefore {
		t.Errorf("extension shrank the at-risk total: %d -> %d", res.TotalBefore, res.TotalAfter)
	}
	if res.After.AccuracyPct() < res.Before.AccuracyPct() {
		t.Errorf("extension reduced accuracy: %.1f%% -> %.1f%% (paper: 46%% -> 62%%)",
			res.Before.AccuracyPct(), res.After.AccuracyPct())
	}
	// The analyzer must be restored.
	again := testAnalyzer.WHPOverlay()
	if again.ByClass[whp.VeryHigh] != res.VHBefore {
		t.Error("analyzer classes not restored after extension experiment")
	}
}

func TestPopulationImpact(t *testing.T) {
	m := testAnalyzer.PopulationImpact()
	var total int
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			total += m.Counts[r][c]
		}
	}
	if total == 0 {
		t.Fatal("impact matrix empty")
	}
	if m.VeryDenseTotal() == 0 {
		t.Error("no at-risk transceivers in very-dense counties (paper: 57,504)")
	}
	if m.PopulousTotal() < m.VeryDenseTotal() {
		t.Error("populous total must include very-dense")
	}
	// Consistency with the overlay: matrix + rural == all at-risk.
	res := testAnalyzer.WHPOverlay()
	withRural := m.PopulousTotal() + m.Rural[0] + m.Rural[1] + m.Rural[2]
	// Off-CONUS at-risk transceivers (none expected) would break equality;
	// allow tiny slack for county-resolution failures.
	if diff := res.AtRisk() - withRural; diff < 0 || diff > res.AtRisk()/50 {
		t.Errorf("matrix total %d vs overlay at-risk %d", withRural, res.AtRisk())
	}
}

func TestMetroImpact(t *testing.T) {
	rows := testAnalyzer.MetroImpact()
	if len(rows) != len(geodata.PaperMetros) {
		t.Fatalf("metro rows = %d", len(rows))
	}
	byName := map[string]MetroRow{}
	for i := 1; i < len(rows); i++ {
		if rows[i].Total() > rows[i-1].Total() {
			t.Fatal("metros not sorted by total")
		}
	}
	for _, r := range rows {
		byName[r.Metro] = r
	}
	// Paper §3.6/§3.7: LA leads; the LA/SD/SF/Miami cluster dominates.
	// At the 60k test scale LA and Miami run within sampling noise of
	// each other (full-scale runs put LA clearly first), so require LA
	// in the top two and leading the very-high column outright.
	if rows[0].Metro != "Los Angeles" && rows[1].Metro != "Los Angeles" {
		t.Errorf("LA not in top two: %s, %s", rows[0].Metro, rows[1].Metro)
	}
	// The Southern California metros dominate very-high exposure.
	socal := byName["Los Angeles"].VHigh + byName["San Diego"].VHigh
	for _, r := range rows {
		if r.Metro != "Los Angeles" && r.Metro != "San Diego" && r.VHigh > socal {
			t.Errorf("%s exceeds the SoCal metros in very-high exposure", r.Metro)
		}
	}
	if byName["Los Angeles"].VHVeryDense == 0 {
		t.Error("LA should have very-high transceivers in very-dense counties (paper: 3,547)")
	}
	// LA outranks New York in very-high exposure (3,547 vs 81).
	if byName["Los Angeles"].VHigh <= byName["New York"].VHigh {
		t.Errorf("LA VH (%d) should far exceed NYC VH (%d)",
			byName["Los Angeles"].VHigh, byName["New York"].VHigh)
	}
}

func TestMetroWindowCount(t *testing.T) {
	counts := testAnalyzer.MetroWindowCount(geom.Point{X: -118.0, Y: 34.0}, 110000)
	var total int
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		t.Fatal("LA window sees no transceivers")
	}
	if counts[whp.NonBurnable] == 0 {
		t.Error("urban LA should have nonburnable-classified transceivers")
	}
}

func TestFutureRiskCorridor(t *testing.T) {
	c := corridorFixture()
	res := testAnalyzer.FutureRisk(c)
	if res.CorridorTransceivers == 0 {
		t.Fatal("corridor sees no transceivers")
	}
	meanGrew := false
	for _, r := range res.Rows {
		if r.Transceivers == 0 {
			continue
		}
		// Monotonicity: positive deltas cannot reduce exposure, negative
		// deltas cannot increase it (per-point scaling guarantees this).
		if r.DeltaPct > 0 && r.AtRiskFuture < r.AtRiskNow {
			t.Errorf("%s: positive delta shrank at-risk count", r.Ecoregion)
		}
		if r.DeltaPct < 0 && r.AtRiskFuture > r.AtRiskNow {
			t.Errorf("%s: negative delta grew at-risk count", r.Ecoregion)
		}
		if r.DeltaPct > 0 && r.MeanHazardFuture > r.MeanHazardNow {
			meanGrew = true
		}
		if r.DeltaPct > 0 && r.MeanHazardFuture < r.MeanHazardNow {
			t.Errorf("%s: mean hazard fell under a positive delta", r.Ecoregion)
		}
	}
	if !meanGrew {
		t.Error("no positive-delta ecoregion raised its mean hazard")
	}
	counts := testAnalyzer.CorridorWHPCounts(c)
	if len(counts) == 0 {
		t.Error("corridor WHP counts empty")
	}
}

func TestCaseStudyFall2019(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 15)
	res := testAnalyzer.CaseStudyFall2019(season, powergrid.NetConfig{Seed: 7}, 7)
	if res.Sites == 0 || res.Substations == 0 {
		t.Fatal("case-study network empty")
	}
	if res.PeakDay != 3 {
		t.Errorf("peak day = %d (%s), want Oct 28", res.PeakDay, res.Series.Labels[res.PeakDay])
	}
	if res.PeakOut == 0 {
		t.Fatal("no outages at peak")
	}
	// Paper: 80% of peak outages from power loss.
	if res.PeakPowerShare < 0.6 {
		t.Errorf("peak power share = %.2f, want > 0.6", res.PeakPowerShare)
	}
	if res.FinalOut >= res.PeakOut {
		t.Error("outages should decline from the peak by Nov 1")
	}
	if res.Counties < 10 {
		t.Errorf("counties reporting = %d", res.Counties)
	}
}

func TestMitigationSweep(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 15)
	pts := testAnalyzer.MitigationSweep(season, []float64{4, 24, 72}, 7)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// More battery -> fewer peak power outages (the §3.10 lever).
	if pts[2].PeakPowerOut > pts[0].PeakPowerOut {
		t.Errorf("72h batteries (%d power outages) should beat 4h (%d)",
			pts[2].PeakPowerOut, pts[0].PeakPowerOut)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkWHPOverlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = testAnalyzer.WHPOverlay()
	}
}

func BenchmarkHistoricalOverlaySeason(b *testing.B) {
	seasons := []*wildfire.Season{testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 20,
	})}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = testAnalyzer.HistoricalOverlay(seasons)
	}
}

func BenchmarkAnalyzerNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(testWorld, testWHP, testData, testCounties)
	}
}
