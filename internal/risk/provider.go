package risk

import (
	"sort"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/geodata"
	"fivealarms/internal/whp"
)

// ProviderRow is one Table 2 row: a provider group's transceivers in each
// at-risk class, absolutely and as a share of its own fleet.
type ProviderRow struct {
	Provider              string
	Fleet                 int
	Moderate, High, VHigh int
	PctM, PctH, PctVH     float64
}

// ProviderRisk reproduces Table 2: the provider-group breakdown of
// at-risk infrastructure, resolved through MCC/MNC (§3.5). Rows are
// ordered as the paper lists them (the four national carriers, then
// Others).
func (a *Analyzer) ProviderRisk() []ProviderRow {
	order := append(append([]string{}, geodata.MajorProviders...), geodata.ProviderOthersAg)
	idx := map[string]int{}
	rows := make([]ProviderRow, len(order))
	for i, p := range order {
		rows[i].Provider = p
		idx[p] = i
	}
	for i := range a.Data.T {
		g := a.Resolver.ProviderGroup(&a.Data.T[i])
		ri, ok := idx[g]
		if !ok {
			continue
		}
		rows[ri].Fleet++
		switch a.classOf[i] {
		case whp.Moderate:
			rows[ri].Moderate++
		case whp.High:
			rows[ri].High++
		case whp.VeryHigh:
			rows[ri].VHigh++
		}
	}
	for i := range rows {
		if rows[i].Fleet == 0 {
			continue
		}
		f := float64(rows[i].Fleet)
		rows[i].PctM = 100 * float64(rows[i].Moderate) / f
		rows[i].PctH = 100 * float64(rows[i].High) / f
		rows[i].PctVH = 100 * float64(rows[i].VHigh) / f
	}
	return rows
}

// RegionalProvidersAtRisk counts the distinct non-national providers with
// at least one transceiver in an at-risk class (the paper's footnote: 46
// smaller providers).
func (a *Analyzer) RegionalProvidersAtRisk() []string {
	seen := map[string]bool{}
	for i := range a.Data.T {
		if !a.classOf[i].AtRisk() {
			continue
		}
		p := a.Resolver.Provider(&a.Data.T[i])
		if geodata.IsMajorProvider(p) || p == geodata.ProviderUnknown {
			continue
		}
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// RadioRow is one Table 3 row: a technology's at-risk transceivers.
type RadioRow struct {
	Radio                 cellnet.Radio
	VHigh, High, Moderate int
	Total                 int
}

// RadioTypeRisk reproduces Table 3 (cell transceiver types at risk),
// ordered CDMA, GSM, LTE, UMTS as the paper prints it.
func (a *Analyzer) RadioTypeRisk() []RadioRow {
	byRadio := map[cellnet.Radio]*RadioRow{}
	for _, r := range cellnet.Radios() {
		byRadio[r] = &RadioRow{Radio: r}
	}
	for i := range a.Data.T {
		row := byRadio[a.Data.T[i].Radio]
		if row == nil {
			continue
		}
		switch a.classOf[i] {
		case whp.Moderate:
			row.Moderate++
		case whp.High:
			row.High++
		case whp.VeryHigh:
			row.VHigh++
		}
	}
	order := []cellnet.Radio{cellnet.CDMA, cellnet.GSM, cellnet.LTE, cellnet.UMTS}
	out := make([]RadioRow, 0, len(order))
	for _, r := range order {
		row := byRadio[r]
		row.Total = row.VHigh + row.High + row.Moderate
		out = append(out, *row)
	}
	return out
}
