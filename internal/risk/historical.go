package risk

import (
	"fivealarms/internal/raster"
	"fivealarms/internal/wildfire"
)

// YearOverlay is one row of the Table 1 reproduction: the transceivers
// whose locations fall inside that season's mapped fire perimeters.
type YearOverlay struct {
	Year            int
	Fires           int
	AcresBurned     float64
	TransceiversIn  int
	PerMillionAcres float64
}

// HistoricalOverlay joins the transceiver set against each season's
// perimeters (Table 1, Figure 4). A transceiver inside several perimeters
// of one season counts once for that year, matching the paper's "within
// wildfire perimeters" semantics.
func (a *Analyzer) HistoricalOverlay(seasons []*wildfire.Season) []YearOverlay {
	out := make([]YearOverlay, 0, len(seasons))
	visited := make([]bool, a.Data.Len())
	var touched []int
	var buf []int
	for _, s := range seasons {
		count := 0
		touched = touched[:0]
		for fi := range s.Mapped {
			f := &s.Mapped[fi]
			buf = a.Data.Index.Query(f.BBox(), buf[:0])
			for _, ti := range buf {
				if visited[ti] {
					continue
				}
				if f.Perimeter.ContainsPoint(a.Data.T[ti].XY) {
					visited[ti] = true
					touched = append(touched, ti)
					count++
				}
			}
		}
		perM := 0.0
		if s.TotalAcres > 0 {
			perM = float64(count) / (s.TotalAcres / 1e6)
		}
		out = append(out, YearOverlay{
			Year:            s.Year,
			Fires:           s.TotalFires,
			AcresBurned:     s.TotalAcres,
			TransceiversIn:  count,
			PerMillionAcres: perM,
		})
		for _, ti := range touched {
			visited[ti] = false
		}
	}
	return out
}

// TotalInPerimeters sums the per-year counts (the paper's ">27,000
// transceivers 2000-2018", Figure 4).
func TotalInPerimeters(rows []YearOverlay) int {
	t := 0
	for _, r := range rows {
		t += r.TransceiversIn
	}
	return t
}

// TransceiversInFire returns the indices of transceivers inside one
// fire's perimeter.
func (a *Analyzer) TransceiversInFire(f *wildfire.Fire) []int {
	var out []int
	cand := a.Data.Index.Query(f.BBox(), nil)
	for _, ti := range cand {
		if f.Perimeter.ContainsPoint(a.Data.T[ti].XY) {
			out = append(out, ti)
		}
	}
	return out
}

// FireUnionMask rasterizes the union of all seasons' perimeters onto the
// world grid — the data behind Figure 3's perimeter map.
func (a *Analyzer) FireUnionMask(seasons []*wildfire.Season) *raster.BitGrid {
	union := raster.NewBitGrid(a.World.Grid)
	for _, s := range seasons {
		for fi := range s.Mapped {
			m := raster.FillMultiPolygon(a.World.Grid, s.Mapped[fi].Perimeter)
			// Same geometry by construction; Or cannot fail.
			_ = union.Or(m)
		}
	}
	return union
}
