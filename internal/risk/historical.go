package risk

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/wildfire"
)

// YearOverlay is one row of the Table 1 reproduction: the transceivers
// whose locations fall inside that season's mapped fire perimeters.
type YearOverlay struct {
	Year            int
	Fires           int
	AcresBurned     float64
	TransceiversIn  int
	PerMillionAcres float64
}

// overlayScratch is the per-worker reusable state of the seasonal join:
// the visited mask (reset sparsely through touched after every season)
// and the candidate buffer the grid index fills.
type overlayScratch struct {
	visited []bool
	touched []int
	buf     []int
}

func newOverlayScratch(n int) *overlayScratch {
	return &overlayScratch{visited: make([]bool, n)}
}

// overlaySeason joins one season's perimeters against the transceiver
// set. A transceiver inside several perimeters of the season counts
// once, matching the paper's "within wildfire perimeters" semantics.
func (a *Analyzer) overlaySeason(s *wildfire.Season, sc *overlayScratch) YearOverlay {
	count := 0
	sc.touched = sc.touched[:0]
	for fi := range s.Mapped {
		f := &s.Mapped[fi]
		prep := f.PreparedPerimeter()
		sc.buf = a.Data.Index.Query(prep.BBox(), sc.buf[:0])
		for _, ti := range sc.buf {
			if sc.visited[ti] {
				continue
			}
			if prep.Contains(a.Data.T[ti].XY) {
				sc.visited[ti] = true
				sc.touched = append(sc.touched, ti)
				count++
			}
		}
	}
	for _, ti := range sc.touched {
		sc.visited[ti] = false
	}
	perM := 0.0
	if s.TotalAcres > 0 {
		perM = float64(count) / (s.TotalAcres / 1e6)
	}
	return YearOverlay{
		Year:            s.Year,
		Fires:           s.TotalFires,
		AcresBurned:     s.TotalAcres,
		TransceiversIn:  count,
		PerMillionAcres: perM,
	}
}

// HistoricalOverlay joins the transceiver set against each season's
// perimeters (Table 1, Figure 4) across bounded workers. Seasons are
// independent joins over read-only layers, so the parallel schedule is
// bit-identical to the serial one; see HistoricalOverlayWorkers.
func (a *Analyzer) HistoricalOverlay(seasons []*wildfire.Season) []YearOverlay {
	return a.HistoricalOverlayWorkers(seasons, 0)
}

// HistoricalOverlayWorkers runs the historical overlay with an explicit
// worker bound (0 selects GOMAXPROCS, 1 forces the serial schedule —
// the debugging escape hatch). Each worker joins whole seasons with its
// own visited/candidate scratch, the same pattern
// wildfire.SimulateHistoryParallel uses for the season simulations.
func (a *Analyzer) HistoricalOverlayWorkers(seasons []*wildfire.Season, workers int) []YearOverlay {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seasons) {
		workers = len(seasons)
	}
	out := make([]YearOverlay, len(seasons))
	if workers <= 1 {
		sc := newOverlayScratch(a.Data.Len())
		for i, s := range seasons {
			out[i] = a.overlaySeason(s, sc)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newOverlayScratch(a.Data.Len())
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seasons) {
					return
				}
				out[i] = a.overlaySeason(seasons[i], sc)
			}
		}()
	}
	wg.Wait()
	return out
}

// TotalInPerimeters sums the per-year counts (the paper's ">27,000
// transceivers 2000-2018", Figure 4).
func TotalInPerimeters(rows []YearOverlay) int {
	t := 0
	for _, r := range rows {
		t += r.TransceiversIn
	}
	return t
}

// TransceiversInFire returns the indices of transceivers inside one
// fire's perimeter.
func (a *Analyzer) TransceiversInFire(f *wildfire.Fire) []int {
	var out []int
	prep := f.PreparedPerimeter()
	cand := a.Data.Index.Query(prep.BBox(), nil)
	for _, ti := range cand {
		if prep.Contains(a.Data.T[ti].XY) {
			out = append(out, ti)
		}
	}
	return out
}

// SeasonPerimeters flattens every mapped fire's perimeter polygons
// across the seasons into one slice, so the whole study period
// rasterizes as a single fused sweep (and the sharded build fills its
// row bands from one polygon list).
func SeasonPerimeters(seasons []*wildfire.Season) []geom.Polygon {
	n := 0
	for _, s := range seasons {
		for fi := range s.Mapped {
			n += len(s.Mapped[fi].Perimeter)
		}
	}
	polys := make([]geom.Polygon, 0, n)
	for _, s := range seasons {
		for fi := range s.Mapped {
			polys = append(polys, s.Mapped[fi].Perimeter...)
		}
	}
	return polys
}

// FireUnionMask rasterizes the union of all seasons' perimeters onto the
// world grid — the data behind Figure 3's perimeter map. All perimeters
// fill into one shared mask in a single fused sweep; no per-fire grids
// are allocated.
func (a *Analyzer) FireUnionMask(seasons []*wildfire.Season) *raster.BitGrid {
	return a.FireUnionMaskWorkers(seasons, 0)
}

// FireUnionMaskWorkers is FireUnionMask with an explicit raster worker
// bound (0 = GOMAXPROCS, 1 = serial; the mask is bit-identical at any
// setting).
func (a *Analyzer) FireUnionMaskWorkers(seasons []*wildfire.Season, workers int) *raster.BitGrid {
	union := raster.NewBitGrid(a.World.Grid)
	raster.FillPolygonsInto(union, SeasonPerimeters(seasons), workers)
	return union
}

// FireDistance computes, for every grid cell, the distance in meters to
// the nearest cell burned by any of the seasons' fires — the field
// behind the risk server's fire-distance queries. The perimeter union
// and its distance transform run as one fused sweep: the intermediate
// burn mask lives in the raster scratch arena and is released before
// returning, so only the distance grid is allocated.
func (a *Analyzer) FireDistance(seasons []*wildfire.Season, workers int) *raster.FloatGrid {
	mask := raster.AcquireBitGrid(a.World.Grid)
	raster.FillPolygonsInto(mask, SeasonPerimeters(seasons), workers)
	dist := raster.NewFloatGrid(a.World.Grid)
	// The error is impossible: dist was just built on the mask's geometry.
	_ = raster.DistanceTransformInto(dist, mask, workers) //fivealarms:allow(errflow) dist was just built on the mask's geometry, the only error the kernel can report
	raster.ReleaseBitGrid(mask)
	return dist
}
