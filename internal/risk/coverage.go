package risk

import (
	"fivealarms/internal/coverage"
	"fivealarms/internal/geom"
	"fivealarms/internal/whp"
)

// CoverageResult is the service-coverage impact of wildfire-exposed
// infrastructure (§3.11's alternate framing; the abstract's "over 85
// million" people served by at-risk transceivers).
type CoverageResult struct {
	// TotalPopulation is the synthetic population surface total.
	TotalPopulation float64
	// ServedPopulation is the population within serving radius of any
	// transceiver site.
	ServedPopulation float64
	// AtRiskServedPopulation is the population within serving radius of
	// at least one at-risk (moderate+) transceiver — the paper's 85M
	// analog.
	AtRiskServedPopulation float64
	// StrandedPopulation is the population that would lose all coverage
	// if every at-risk transceiver failed simultaneously (the worst-case
	// fire season).
	StrandedPopulation float64
	// RadiusM is the serving radius used.
	RadiusM float64
}

// Coverage computes the population-coverage exposure of the at-risk
// transceiver set with the given serving radius (0 selects the default).
func (a *Analyzer) Coverage(radiusM float64) *CoverageResult {
	model := coverage.Build(a.World, a.Counties, radiusM)

	var atRisk, safe []geom.Point
	for i := range a.Data.T {
		if a.classOf[i].AtRisk() {
			atRisk = append(atRisk, a.Data.T[i].XY)
		} else {
			safe = append(safe, a.Data.T[i].XY)
		}
	}
	imp := model.Evaluate(safe, atRisk)
	return &CoverageResult{
		TotalPopulation:        model.TotalPopulation(),
		ServedPopulation:       imp.ServedPopulation,
		AtRiskServedPopulation: imp.ExposedPopulation,
		StrandedPopulation:     imp.StrandedPopulation,
		RadiusM:                model.RadiusM,
	}
}

// CoverageByClass computes, per at-risk WHP class, the population within
// serving radius of that class's transceivers.
func (a *Analyzer) CoverageByClass(radiusM float64) map[whp.Class]float64 {
	model := coverage.Build(a.World, a.Counties, radiusM)
	out := map[whp.Class]float64{}
	for _, c := range []whp.Class{whp.Moderate, whp.High, whp.VeryHigh} {
		var pts []geom.Point
		for i := range a.Data.T {
			if a.classOf[i] == c {
				pts = append(pts, a.Data.T[i].XY)
			}
		}
		out[c] = model.Population(model.ServedMask(pts))
	}
	return out
}
