package risk

import (
	"testing"

	"fivealarms/internal/wildfire"
)

func TestSeasonExposure(t *testing.T) {
	season := testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 25,
	})
	series := testAnalyzer.SeasonExposure(season)
	if len(series) == 0 {
		t.Fatal("empty exposure series")
	}
	for i, d := range series {
		if d.ActiveFires <= 0 {
			t.Fatalf("day %d listed with no active fires", d.DayOfYear)
		}
		if d.Transceivers < 0 {
			t.Fatal("negative exposure")
		}
		if i > 0 && d.DayOfYear <= series[i-1].DayOfYear {
			t.Fatal("series not strictly increasing in day")
		}
	}
	// The daily maximum cannot exceed the season's total join.
	rows := testAnalyzer.HistoricalOverlay([]*wildfire.Season{season})
	peak := PeakExposure(series)
	if peak.Transceivers > rows[0].TransceiversIn {
		t.Errorf("peak daily exposure %d exceeds season total %d",
			peak.Transceivers, rows[0].TransceiversIn)
	}
	// The peak day must be a day of the series.
	if peak.DayOfYear == 0 && peak.Transceivers == 0 {
		// Legitimate only if no fire contains any transceiver.
		if rows[0].TransceiversIn != 0 {
			t.Error("peak missing despite season exposure")
		}
	}
}

func TestSeasonExposureEmpty(t *testing.T) {
	empty := &wildfire.Season{Year: 2001}
	if got := testAnalyzer.SeasonExposure(empty); got != nil {
		t.Errorf("empty season series = %v", got)
	}
	if p := PeakExposure(nil); p.Transceivers != 0 {
		t.Error("peak of nil should be zero")
	}
}
