package risk

import (
	"fmt"

	"fivealarms/internal/wildfire"
)

// Sharded execution support: the transceiver-axis analyses (Tables 1-3
// and the hold-out validation) are sums of independent per-transceiver
// contributions, so a disjoint, exhaustive partition of the fleet can
// compute them shard by shard and merge by integer addition. The
// derived ratios (Table 1's per-million-acres density, Table 2's fleet
// percentages) are NOT summed: each merge recomputes them from the
// merged integer counts with exactly the expression the monolithic
// path uses — one float division on the same operands — which is what
// makes the sharded results bit-identical, not merely close.

// ShardOverlay is one shard's partial transceiver-axis products: raw
// counts over the shard's slice of the fleet, ready for merging.
type ShardOverlay struct {
	// Rows is the shard's transceiver count.
	Rows int
	// Table1 holds per-season partial counts; the ratio fields are
	// garbage until merged (they reflect only this shard's count).
	Table1 []YearOverlay
	// Provider holds Table 2 partial counts; percentage fields likewise
	// defer to the merge.
	Provider []ProviderRow
	// Radio holds Table 3 partial counts.
	Radio []RadioRow
	// Validation holds the shard's §3.4 validation counters.
	Validation ValidationResult
}

// ShardOverlay computes one shard's partial products: the analyzer must
// be built over that shard's transceivers only (the partition owns
// disjointness; this method just counts what it was given). workers
// bounds the per-season join parallelism as in HistoricalOverlayWorkers.
func (a *Analyzer) ShardOverlay(history []*wildfire.Season, season2019 *wildfire.Season, workers int) *ShardOverlay {
	return &ShardOverlay{
		Rows:       a.Data.Len(),
		Table1:     a.HistoricalOverlayWorkers(history, workers),
		Provider:   a.ProviderRisk(),
		Radio:      a.RadioTypeRisk(),
		Validation: *a.ValidateFor(season2019, a.classOf),
	}
}

// MergeYearOverlays merges per-shard Table 1 rows in shard order: the
// per-season transceiver counts add, the season facts (year, fires,
// acres) must agree, and the per-million-acres density is recomputed
// from the merged count — the same single division overlaySeason
// performs, so the merged rows are bit-identical to the monolithic
// join. Errors on shape or season-fact mismatches (a merge across
// different histories is always a bug).
func MergeYearOverlays(parts [][]YearOverlay) ([]YearOverlay, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("risk: merging zero Table 1 shards")
	}
	out := append([]YearOverlay(nil), parts[0]...)
	for pi, p := range parts[1:] {
		if len(p) != len(out) {
			return nil, fmt.Errorf("risk: Table 1 shard %d has %d seasons, want %d", pi+1, len(p), len(out))
		}
		for i := range p {
			if p[i].Year != out[i].Year || p[i].Fires != out[i].Fires || p[i].AcresBurned != out[i].AcresBurned {
				return nil, fmt.Errorf("risk: Table 1 shard %d season %d disagrees on season facts", pi+1, i)
			}
			out[i].TransceiversIn += p[i].TransceiversIn
		}
	}
	for i := range out {
		out[i].PerMillionAcres = 0
		if out[i].AcresBurned > 0 {
			out[i].PerMillionAcres = float64(out[i].TransceiversIn) / (out[i].AcresBurned / 1e6)
		}
	}
	return out, nil
}

// MergeProviderRows merges per-shard Table 2 rows: fleet and class
// counts add per provider group, and the fleet-share percentages are
// recomputed from the merged counts with ProviderRisk's expressions.
func MergeProviderRows(parts [][]ProviderRow) ([]ProviderRow, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("risk: merging zero Table 2 shards")
	}
	out := append([]ProviderRow(nil), parts[0]...)
	for pi, p := range parts[1:] {
		if len(p) != len(out) {
			return nil, fmt.Errorf("risk: Table 2 shard %d has %d rows, want %d", pi+1, len(p), len(out))
		}
		for i := range p {
			if p[i].Provider != out[i].Provider {
				return nil, fmt.Errorf("risk: Table 2 shard %d row %d is %q, want %q", pi+1, i, p[i].Provider, out[i].Provider)
			}
			out[i].Fleet += p[i].Fleet
			out[i].Moderate += p[i].Moderate
			out[i].High += p[i].High
			out[i].VHigh += p[i].VHigh
		}
	}
	for i := range out {
		out[i].PctM, out[i].PctH, out[i].PctVH = 0, 0, 0
		if out[i].Fleet == 0 {
			continue
		}
		f := float64(out[i].Fleet)
		out[i].PctM = 100 * float64(out[i].Moderate) / f
		out[i].PctH = 100 * float64(out[i].High) / f
		out[i].PctVH = 100 * float64(out[i].VHigh) / f
	}
	return out, nil
}

// MergeRadioRows merges per-shard Table 3 rows: class counts add per
// technology and the totals are recomputed from the merged counts.
func MergeRadioRows(parts [][]RadioRow) ([]RadioRow, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("risk: merging zero Table 3 shards")
	}
	out := append([]RadioRow(nil), parts[0]...)
	for pi, p := range parts[1:] {
		if len(p) != len(out) {
			return nil, fmt.Errorf("risk: Table 3 shard %d has %d rows, want %d", pi+1, len(p), len(out))
		}
		for i := range p {
			if p[i].Radio != out[i].Radio {
				return nil, fmt.Errorf("risk: Table 3 shard %d row %d is %v, want %v", pi+1, i, p[i].Radio, out[i].Radio)
			}
			out[i].VHigh += p[i].VHigh
			out[i].High += p[i].High
			out[i].Moderate += p[i].Moderate
		}
	}
	for i := range out {
		out[i].Total = out[i].VHigh + out[i].High + out[i].Moderate
	}
	return out, nil
}

// MergeValidations sums per-shard validation counters. All four fields
// are independent per-transceiver counts, so addition over a disjoint,
// exhaustive partition reproduces the monolithic result exactly.
func MergeValidations(parts []ValidationResult) (*ValidationResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("risk: merging zero validation shards")
	}
	out := &ValidationResult{}
	for _, p := range parts {
		out.InPerimeter += p.InPerimeter
		out.Predicted += p.Predicted
		out.MissesInRoadFires += p.MissesInRoadFires
		out.RoadFireTotal += p.RoadFireTotal
	}
	return out, nil
}

// MergeShardOverlays merges a band-ordered slice of per-shard partial
// products into the monolithic-equivalent Table 1/2/3 rows and
// validation result. Shards must all cover the same seasons and row
// orders (they do, by construction: every shard analyzer derives them
// from the same inputs).
func MergeShardOverlays(parts []*ShardOverlay) (t1 []YearOverlay, t2 []ProviderRow, t3 []RadioRow, v *ValidationResult, err error) {
	if len(parts) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("risk: merging zero shard overlays")
	}
	table1 := make([][]YearOverlay, len(parts))
	table2 := make([][]ProviderRow, len(parts))
	table3 := make([][]RadioRow, len(parts))
	vals := make([]ValidationResult, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, nil, nil, nil, fmt.Errorf("risk: shard overlay %d missing", i)
		}
		table1[i], table2[i], table3[i], vals[i] = p.Table1, p.Provider, p.Radio, p.Validation
	}
	if t1, err = MergeYearOverlays(table1); err != nil {
		return nil, nil, nil, nil, err
	}
	if t2, err = MergeProviderRows(table2); err != nil {
		return nil, nil, nil, nil, err
	}
	if t3, err = MergeRadioRows(table3); err != nil {
		return nil, nil, nil, nil, err
	}
	if v, err = MergeValidations(vals); err != nil {
		return nil, nil, nil, nil, err
	}
	return t1, t2, t3, v, nil
}
