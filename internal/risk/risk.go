// Package risk is the paper's primary contribution: the geospatial
// overlay engine that joins the cellular infrastructure layer against
// wildfire perimeters, the Wildfire Hazard Potential, county populations
// and future-climate projections, producing every table and figure of the
// evaluation (see DESIGN.md for the experiment index).
package risk

import (
	"runtime"
	"sync"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/raster"
	"fivealarms/internal/whp"
)

// Analyzer bundles the data layers and caches the per-transceiver WHP
// class, which every analysis reuses.
type Analyzer struct {
	World    *conus.World
	WHP      *whp.Map
	Data     *cellnet.Dataset
	Counties *census.Counties
	Resolver *cellnet.Resolver

	// classOf caches the WHP class at each transceiver.
	classOf []whp.Class
	// countyOf caches the county index of each transceiver (-1 off-CONUS).
	countyOf []int32
}

// New builds an analyzer over the given layers and precomputes the
// per-transceiver class and county assignments (in parallel; both are
// pure lookups).
func New(w *conus.World, m *whp.Map, d *cellnet.Dataset, c *census.Counties) *Analyzer {
	a := &Analyzer{
		World:    w,
		WHP:      m,
		Data:     d,
		Counties: c,
		Resolver: cellnet.NewResolver(),
		classOf:  make([]whp.Class, d.Len()),
		countyOf: make([]int32, d.Len()),
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > d.Len() {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < len(d.T); i += workers {
				a.classOf[i] = m.ClassAt(d.T[i].XY)
				a.countyOf[i] = int32(c.CountyAt(d.T[i].XY))
			}
		}(wk)
	}
	wg.Wait()
	return a
}

// Class returns the cached WHP class of transceiver i.
func (a *Analyzer) Class(i int) whp.Class { return a.classOf[i] }

// CountyOf returns the cached county index of transceiver i (-1 when
// off-CONUS).
func (a *Analyzer) CountyOf(i int) int { return int(a.countyOf[i]) }

// AtRiskCount returns the number of transceivers in the moderate, high or
// very-high classes — the paper's headline "430,844 transceivers at risk"
// metric (scaled to the synthetic snapshot size).
func (a *Analyzer) AtRiskCount() int {
	n := 0
	for _, c := range a.classOf {
		if c.AtRisk() {
			n++
		}
	}
	return n
}

// ClassesAgainst samples a replacement class raster at every transceiver
// location and returns the resulting class slice without touching the
// analyzer's cache (used by the §3.8 extension analysis). Off-raster
// transceivers classify as Water.
func (a *Analyzer) ClassesAgainst(classes *raster.ClassGrid) []whp.Class {
	next := make([]whp.Class, a.Data.Len())
	for i := range a.Data.T {
		v, ok := classes.Sample(a.Data.T[i].XY)
		if !ok {
			next[i] = whp.Water
			continue
		}
		next[i] = whp.Class(v)
	}
	return next
}

// StateCount pairs a state with a count for ranking outputs.
type StateCount struct {
	Abbrev string
	Count  int
	// PerThousand is the count per 1000 residents (per-capita ranking).
	PerThousand float64
}

// stateName returns the abbreviation for a state index, "??" when out of
// range.
func stateName(idx int) string {
	if idx < 0 || idx >= len(geodata.States) {
		return "??"
	}
	return geodata.States[idx].Abbrev
}
