package risk

import (
	"fivealarms/internal/ecoregion"
	"fivealarms/internal/whp"
)

// FutureRow is one ecoregion of the §3.9 corridor analysis (Figures 14
// and 15).
type FutureRow struct {
	Ecoregion    string
	DeltaPct     float64
	Transceivers int
	// AtRiskNow counts corridor transceivers whose current hazard clears
	// the moderate threshold; AtRiskFuture applies the ecoregion scaling
	// first.
	AtRiskNow    int
	AtRiskFuture int
	// MeanHazardNow/Future are the zone averages over its transceivers.
	MeanHazardNow    float64
	MeanHazardFuture float64
}

// FutureResult is the corridor projection.
type FutureResult struct {
	Rows []FutureRow
	// CorridorTransceivers is the total inside the corridor bounds.
	CorridorTransceivers int
	// OutsideZones counts corridor transceivers not covered by any
	// ecoregion zone.
	OutsideZones int
}

// FutureRisk projects the SLC-Denver corridor's infrastructure exposure
// through the Littell ecoregion deltas. The moderate threshold of the
// analyzer's WHP configuration defines "at risk".
func (a *Analyzer) FutureRisk(c *ecoregion.Corridor) *FutureResult {
	res := &FutureResult{}
	rows := make([]FutureRow, len(c.Regions))
	for i, r := range c.Regions {
		rows[i] = FutureRow{Ecoregion: r.Name, DeltaPct: r.DeltaPct}
	}
	modThresh := a.WHP.Cfg.Thresholds[1] // Low|Moderate cut

	var buf []int
	buf = a.Data.Index.Query(c.Bounds(), buf[:0])
	for _, ti := range buf {
		p := a.Data.T[ti].XY
		res.CorridorTransceivers++
		ri := c.RegionAt(p)
		if ri < 0 {
			res.OutsideZones++
			continue
		}
		row := &rows[ri]
		row.Transceivers++
		now := a.WHP.HazardAt(p)
		future := c.FutureHazard(p, now)
		row.MeanHazardNow += now
		row.MeanHazardFuture += future
		if now >= modThresh {
			row.AtRiskNow++
		}
		if future >= modThresh {
			row.AtRiskFuture++
		}
	}
	for i := range rows {
		if rows[i].Transceivers > 0 {
			rows[i].MeanHazardNow /= float64(rows[i].Transceivers)
			rows[i].MeanHazardFuture /= float64(rows[i].Transceivers)
		}
	}
	res.Rows = rows
	return res
}

// CorridorWHPCounts returns the corridor's transceivers per current WHP
// class (the Figure 15 overlay of present hazard on the corridor).
func (a *Analyzer) CorridorWHPCounts(c *ecoregion.Corridor) map[whp.Class]int {
	out := map[whp.Class]int{}
	for _, ti := range a.Data.Index.Query(c.Bounds(), nil) {
		out[a.classOf[ti]]++
	}
	return out
}
