package risk

// Merge-function tests: the shard merges must reproduce monolithic
// rows exactly on real (small) data, and must refuse shape or
// season-fact mismatches instead of merging garbage.

import (
	"reflect"
	"strings"
	"testing"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// shardMergeFixture builds a small monolithic analyzer plus per-shard
// analyzers over a contiguous split of the same fleet.
type shardMergeFixture struct {
	mono    *Analyzer
	shards  []*Analyzer
	history []*wildfire.Season
	s2019   *wildfire.Season
}

func newShardMergeFixture(t *testing.T, cuts []int) *shardMergeFixture {
	t.Helper()
	w := conus.Build(conus.Config{Seed: 5, CellSizeM: 40000})
	m := whp.Build(w, w.Grid, whp.Config{})
	d := cellnet.Generate(w, cellnet.GenConfig{Seed: 5, Total: 4000})
	c := census.Synthesize(w, 5)
	sim := wildfire.NewSimulator(w, m)
	f := &shardMergeFixture{
		mono:    New(w, m, d, c),
		history: wildfire.SimulateHistory(sim, 5, 3),
		s2019:   wildfire.Simulate2019(sim, 5, 3),
	}
	lo := 0
	for _, hi := range append(cuts, d.Len()) {
		part := cellnet.NewDataset(w, append([]cellnet.Transceiver(nil), d.T[lo:hi]...))
		f.shards = append(f.shards, New(w, m, part, c))
		lo = hi
	}
	return f
}

// TestMergeShardOverlaysMatchesMonolithic: partial products from a
// contiguous fleet split — including one empty shard — merge to exactly
// the monolithic analyzer's rows, floats included.
func TestMergeShardOverlaysMatchesMonolithic(t *testing.T) {
	f := newShardMergeFixture(t, []int{0, 900, 2201}) // first shard empty
	parts := make([]*ShardOverlay, len(f.shards))
	for i, a := range f.shards {
		parts[i] = a.ShardOverlay(f.history, f.s2019, 1)
	}
	t1, t2, t3, v, err := MergeShardOverlays(parts)
	if err != nil {
		t.Fatalf("MergeShardOverlays: %v", err)
	}
	if want := f.mono.HistoricalOverlayWorkers(f.history, 1); !reflect.DeepEqual(t1, want) {
		t.Errorf("merged Table 1 differs from monolithic:\n got %+v\nwant %+v", t1, want)
	}
	if want := f.mono.ProviderRisk(); !reflect.DeepEqual(t2, want) {
		t.Errorf("merged Table 2 differs from monolithic:\n got %+v\nwant %+v", t2, want)
	}
	if want := f.mono.RadioTypeRisk(); !reflect.DeepEqual(t3, want) {
		t.Errorf("merged Table 3 differs from monolithic:\n got %+v\nwant %+v", t3, want)
	}
	if want := f.mono.Validate(f.s2019); !reflect.DeepEqual(v, want) {
		t.Errorf("merged validation differs from monolithic:\n got %+v\nwant %+v", v, want)
	}
	rows := 0
	for _, p := range parts {
		rows += p.Rows
	}
	if rows != f.mono.Data.Len() {
		t.Errorf("shard rows sum to %d, fleet is %d", rows, f.mono.Data.Len())
	}
}

// TestMergeSingleShardIsIdentity: a one-shard merge returns the shard's
// own rows with ratios recomputed — identical to monolithic when the
// shard is the whole fleet.
func TestMergeSingleShardIsIdentity(t *testing.T) {
	f := newShardMergeFixture(t, nil)
	p := f.shards[0].ShardOverlay(f.history, f.s2019, 1)
	t1, t2, t3, v, err := MergeShardOverlays([]*ShardOverlay{p})
	if err != nil {
		t.Fatalf("MergeShardOverlays: %v", err)
	}
	if want := f.mono.HistoricalOverlayWorkers(f.history, 1); !reflect.DeepEqual(t1, want) {
		t.Errorf("single-shard Table 1 differs from monolithic")
	}
	if !reflect.DeepEqual(t2, f.mono.ProviderRisk()) || !reflect.DeepEqual(t3, f.mono.RadioTypeRisk()) {
		t.Errorf("single-shard Table 2/3 differ from monolithic")
	}
	if !reflect.DeepEqual(v, f.mono.Validate(f.s2019)) {
		t.Errorf("single-shard validation differs from monolithic")
	}
}

// TestMergeErrorPaths: empty inputs, nil parts, shape mismatches and
// season-fact disagreements are all rejected with descriptive errors.
func TestMergeErrorPaths(t *testing.T) {
	if _, _, _, _, err := MergeShardOverlays(nil); err == nil {
		t.Error("zero-shard merge succeeded")
	}
	if _, _, _, _, err := MergeShardOverlays([]*ShardOverlay{nil}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("nil shard overlay: err = %v", err)
	}
	if _, err := MergeYearOverlays(nil); err == nil {
		t.Error("zero-shard Table 1 merge succeeded")
	}
	if _, err := MergeProviderRows(nil); err == nil {
		t.Error("zero-shard Table 2 merge succeeded")
	}
	if _, err := MergeRadioRows(nil); err == nil {
		t.Error("zero-shard Table 3 merge succeeded")
	}
	if _, err := MergeValidations(nil); err == nil {
		t.Error("zero-shard validation merge succeeded")
	}

	a := []YearOverlay{{Year: 2000, Fires: 3, AcresBurned: 10, TransceiversIn: 1}}
	if _, err := MergeYearOverlays([][]YearOverlay{a, {}}); err == nil {
		t.Error("season-count mismatch merged")
	}
	b := []YearOverlay{{Year: 2001, Fires: 3, AcresBurned: 10}}
	if _, err := MergeYearOverlays([][]YearOverlay{a, b}); err == nil || !strings.Contains(err.Error(), "season facts") {
		t.Errorf("year mismatch: err = %v", err)
	}
	c := []YearOverlay{{Year: 2000, Fires: 3, AcresBurned: 11}}
	if _, err := MergeYearOverlays([][]YearOverlay{a, c}); err == nil {
		t.Error("acres mismatch merged")
	}

	p := []ProviderRow{{Provider: "AT&T"}}
	q := []ProviderRow{{Provider: "Verizon"}}
	if _, err := MergeProviderRows([][]ProviderRow{p, q}); err == nil {
		t.Error("provider-order mismatch merged")
	}
	if _, err := MergeProviderRows([][]ProviderRow{p, {}}); err == nil {
		t.Error("provider-shape mismatch merged")
	}

	r := []RadioRow{{Radio: cellnet.LTE}}
	s := []RadioRow{{Radio: cellnet.GSM}}
	if _, err := MergeRadioRows([][]RadioRow{r, s}); err == nil {
		t.Error("radio-order mismatch merged")
	}
	if _, err := MergeRadioRows([][]RadioRow{r, {}}); err == nil {
		t.Error("radio-shape mismatch merged")
	}
}

// TestMergeRecomputesRatios: merged ratio fields come from the merged
// counts, not from summing or averaging the shard-local ratio garbage.
func TestMergeRecomputesRatios(t *testing.T) {
	a := []YearOverlay{{Year: 2000, Fires: 1, AcresBurned: 2e6, TransceiversIn: 3, PerMillionAcres: 999}}
	b := []YearOverlay{{Year: 2000, Fires: 1, AcresBurned: 2e6, TransceiversIn: 5, PerMillionAcres: -999}}
	got, err := MergeYearOverlays([][]YearOverlay{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].TransceiversIn != 8 || got[0].PerMillionAcres != 4 {
		t.Errorf("merged row = %+v, want 8 transceivers at 4 per million acres", got[0])
	}

	p := [][]ProviderRow{
		{{Provider: "X", Fleet: 10, Moderate: 1, High: 2, VHigh: 3, PctM: 77}},
		{{Provider: "X", Fleet: 30, Moderate: 3, High: 2, VHigh: 1, PctM: -77}},
	}
	pr, err := MergeProviderRows(p)
	if err != nil {
		t.Fatal(err)
	}
	if pr[0].Fleet != 40 || pr[0].PctM != 10 || pr[0].PctH != 10 || pr[0].PctVH != 10 {
		t.Errorf("merged provider row = %+v", pr[0])
	}
	// An all-empty provider group divides by nothing.
	zero, err := MergeProviderRows([][]ProviderRow{{{Provider: "Y"}}, {{Provider: "Y"}}})
	if err != nil || zero[0].PctM != 0 {
		t.Errorf("empty-fleet merge = %+v, err %v", zero, err)
	}

	rr, err := MergeRadioRows([][]RadioRow{
		{{Radio: cellnet.LTE, VHigh: 1, High: 2, Moderate: 3, Total: 999}},
		{{Radio: cellnet.LTE, VHigh: 4, High: 5, Moderate: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr[0].Total != 21 {
		t.Errorf("merged radio total = %d, want 21", rr[0].Total)
	}
}
