package risk

import "fivealarms/internal/ecoregion"

// corridorFixture builds the SLC-Denver corridor lazily (it is cheap but
// keeps the var block above focused on the heavyweight fixtures).
func corridorFixture() *ecoregion.Corridor {
	return ecoregion.BuildCorridor(testWorld)
}
