package risk

import (
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/wui"
)

// WUIResult quantifies §3.7's key finding: at-risk cell infrastructure
// concentrates in the Wildland-Urban Interface along city edges.
type WUIResult struct {
	// AtRiskInWUI / AtRiskTotal give the WUI share of at-risk
	// transceivers.
	AtRiskInWUI int
	AtRiskTotal int
	// AllInWUI / AllTotal give the WUI share of the whole fleet, the
	// baseline the concentration is measured against.
	AllInWUI int
	AllTotal int
	// WUIPopulation is the population living in WUI cells (Radeloff et
	// al. report roughly one in three US homes in the WUI).
	WUIPopulation float64
	// MetroWUI counts at-risk transceivers in WUI cells per paper metro.
	MetroWUI map[string]int
}

// AtRiskWUIShare returns the fraction of at-risk transceivers in the WUI.
func (r *WUIResult) AtRiskWUIShare() float64 {
	if r.AtRiskTotal == 0 {
		return 0
	}
	return float64(r.AtRiskInWUI) / float64(r.AtRiskTotal)
}

// BaselineWUIShare returns the fraction of all transceivers in the WUI.
func (r *WUIResult) BaselineWUIShare() float64 {
	if r.AllTotal == 0 {
		return 0
	}
	return float64(r.AllInWUI) / float64(r.AllTotal)
}

// Concentration returns how over-represented the WUI is among at-risk
// transceivers relative to the fleet baseline (> 1 = concentrated).
func (r *WUIResult) Concentration() float64 {
	b := r.BaselineWUIShare()
	if b == 0 {
		return 0
	}
	return r.AtRiskWUIShare() / b
}

// WUIAnalysis builds the WUI layer and measures the concentration of
// at-risk infrastructure inside it.
func (a *Analyzer) WUIAnalysis(cfg wui.Config) *WUIResult {
	m := wui.Build(a.World, a.Counties, a.WHP, cfg)
	res := &WUIResult{
		AllTotal:      a.Data.Len(),
		WUIPopulation: m.Population(),
		MetroWUI:      map[string]int{},
	}
	inWUI := make([]bool, a.Data.Len())
	for i := range a.Data.T {
		if m.ClassAt(a.Data.T[i].XY).IsWUI() {
			inWUI[i] = true
			res.AllInWUI++
		}
		if a.classOf[i].AtRisk() {
			res.AtRiskTotal++
			if inWUI[i] {
				res.AtRiskInWUI++
			}
		}
	}
	var buf []int
	for _, mw := range geodata.PaperMetros {
		center := a.World.ToXY(geom.Point{X: mw.AnchorLon, Y: mw.AnchorLat})
		buf = a.Data.Index.QueryRadius(center, mw.RadiusKM*1000, buf[:0])
		n := 0
		for _, ti := range buf {
			if inWUI[ti] && a.classOf[ti].AtRisk() {
				n++
			}
		}
		res.MetroWUI[mw.Name] = n
	}
	return res
}
