package risk

import (
	"sort"

	"math"

	"fivealarms/internal/geodata"
	"fivealarms/internal/hot"
)

// StateEscape is one row of the regionalized escape-probability analysis
// (the §3.11 extension: HOT-based per-region escape probabilities).
type StateEscape struct {
	Abbrev string
	// Escape is the probability that an ignition in the state exceeds
	// the containment threshold.
	Escape float64
	// ExpectedLossAcres is the expected burned area per ignition under
	// the optimal suppression allocation.
	ExpectedLossAcres float64
	// AtRiskTransceivers is the state's moderate+ transceiver count, for
	// joining escape risk against infrastructure exposure.
	AtRiskTransceivers int
}

// EscapeProbabilities fits a HOT suppression-allocation model per state
// (ignition weights from the hazard raster, a resource budget
// proportional to the state's cell count) and returns each state's
// probability that an ignition escapes initial attack beyond
// thresholdAcres, sorted descending. States whose zones carry no hazard
// are omitted.
func (a *Analyzer) EscapeProbabilities(thresholdAcres float64) []StateEscape {
	if thresholdAcres <= 0 {
		thresholdAcres = 300 // GeoMAC-style mapping threshold
	}
	g := a.WHP.Hazard.Geometry
	// Collect hazard weights per state.
	weights := make([][]float64, len(geodata.States))
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			v := a.World.StateZone.At(cx, cy)
			if v == 0 {
				continue
			}
			h := a.WHP.Hazard.At(cx, cy)
			if h <= 0 {
				continue
			}
			si := int(v) - 1
			// Ignition likelihood rises superlinearly with hazard, as in
			// the fire simulator.
			weights[si] = append(weights[si], math.Exp(10*h))
		}
	}
	overlay := a.WHPOverlay()

	var out []StateEscape
	for si, w := range weights {
		if len(w) == 0 {
			continue
		}
		// Budget: one resource unit per cell — uniform suppression
		// capacity density nationwide, so differences come from the
		// hazard structure alone. The area scale (60 acres at unit
		// resource) keeps the typical ignition contained, so escape
		// probability measures the hazard tail.
		m, err := hot.Fit(w, float64(len(w)), 1, 250)
		if err != nil {
			continue
		}
		row := overlay.ByState[si]
		out = append(out, StateEscape{
			Abbrev:             geodata.States[si].Abbrev,
			Escape:             m.EscapeProbability(thresholdAcres),
			ExpectedLossAcres:  m.ExpectedLoss(),
			AtRiskTransceivers: row[0] + row[1] + row[2],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Escape != out[j].Escape {
			return out[i].Escape > out[j].Escape
		}
		return out[i].Abbrev < out[j].Abbrev
	})
	return out
}
