package risk

import (
	"testing"

	"fivealarms/internal/whp"
)

func TestCoverage(t *testing.T) {
	res := testAnalyzer.Coverage(0)
	if res.TotalPopulation < 2.9e8 || res.TotalPopulation > 3.5e8 {
		t.Fatalf("total population = %.3g", res.TotalPopulation)
	}
	if res.ServedPopulation <= 0 || res.ServedPopulation > res.TotalPopulation*1.001 {
		t.Errorf("served = %.3g", res.ServedPopulation)
	}
	if res.AtRiskServedPopulation <= 0 {
		t.Fatal("no population served by at-risk transceivers")
	}
	if res.AtRiskServedPopulation > res.ServedPopulation {
		t.Error("at-risk-served cannot exceed served")
	}
	if res.StrandedPopulation > res.AtRiskServedPopulation {
		t.Error("stranded cannot exceed at-risk-served")
	}
	// The paper: 85M of ~327M (26%) live in areas served by at-risk
	// transceivers. The synthetic analog should be a sizeable minority.
	frac := res.AtRiskServedPopulation / res.TotalPopulation
	if frac < 0.02 || frac > 0.7 {
		t.Errorf("at-risk-served share = %.3f, want an intermediate share", frac)
	}
	// Redundancy needs a radius coarser than the test grid's 20 km cells
	// to be visible: with a 30 km serving radius most exposed population
	// has a surviving site in reach, so stranded < exposed.
	wide := testAnalyzer.Coverage(30000)
	if wide.StrandedPopulation >= wide.AtRiskServedPopulation {
		t.Errorf("redundancy should leave stranded (%.0f) below exposed (%.0f)",
			wide.StrandedPopulation, wide.AtRiskServedPopulation)
	}
}

func TestCoverageByClass(t *testing.T) {
	byClass := testAnalyzer.CoverageByClass(0)
	m, h, vh := byClass[whp.Moderate], byClass[whp.High], byClass[whp.VeryHigh]
	if m <= 0 || h <= 0 || vh <= 0 {
		t.Fatalf("per-class coverage missing: M=%.0f H=%.0f VH=%.0f", m, h, vh)
	}
	// More transceivers -> at least comparable served population.
	if m < vh {
		t.Errorf("moderate-served %.0f below very-high-served %.0f", m, vh)
	}
}
