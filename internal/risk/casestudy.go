package risk

import (
	"fivealarms/internal/dirs"
	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/wildfire"
)

// CaseStudyResult reproduces §3.2 / Figure 5: the fall-2019 California
// PSPS event's daily cell-site outages by cause.
type CaseStudyResult struct {
	Series  *dirs.Series
	Reports []dirs.Report
	// Network/site context.
	Sites       int
	Substations int
	// Headline numbers.
	PeakDay        int
	PeakOut        int
	PeakPowerShare float64
	FinalOut       int
	FinalDamaged   int
	Counties       int
}

// CaliforniaRegion returns the projected bounding box of the case-study
// region.
func (a *Analyzer) CaliforniaRegion() geom.BBox {
	sw := a.World.ToXY(geom.Point{X: -124.5, Y: 32.3})
	ne := a.World.ToXY(geom.Point{X: -114.0, Y: 42.1})
	return geom.NewBBox(sw, ne)
}

// CaseStudyFall2019 builds the California power network from the dataset,
// attaches the 2019 season's fires, simulates the PSPS event and
// aggregates DIRS reports.
func (a *Analyzer) CaseStudyFall2019(season *wildfire.Season, netCfg powergrid.NetConfig, seed uint64) *CaseStudyResult {
	region := a.CaliforniaRegion()
	net := powergrid.BuildNetwork(a.Data, a.WHP, region, netCfg)

	var fires []*wildfire.Fire
	for i := range season.Mapped {
		if region.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, &season.Mapped[i])
		}
	}
	sc := powergrid.NewFall2019Scenario(fires)
	outcome := net.Simulate(sc, seed)
	reports := dirs.BuildReports(net, outcome, a.Counties, powergrid.Fall2019DayLabels)
	series := dirs.Aggregate(reports, len(sc.Days), powergrid.Fall2019DayLabels)

	peakDay, peakOut := series.Peak()
	last := len(sc.Days) - 1
	return &CaseStudyResult{
		Series:         series,
		Reports:        reports,
		Sites:          len(net.Sites),
		Substations:    len(net.Substations),
		PeakDay:        peakDay,
		PeakOut:        peakOut,
		PeakPowerShare: series.PowerShare(peakDay),
		FinalOut:       series.Total(last),
		FinalDamaged:   series.Damage[last],
		Counties:       dirs.CountiesReporting(reports),
	}
}

// MitigationPoint is one step of the backup-power ablation (§3.10): peak
// outages as a function of site battery endurance.
type MitigationPoint struct {
	MeanBatteryHours float64
	PeakOut          int
	PeakPowerOut     int
}

// MitigationSweep re-runs the case study across battery-endurance
// settings, quantifying the paper's first mitigation lever (multi-day
// backup power).
func (a *Analyzer) MitigationSweep(season *wildfire.Season, hours []float64, seed uint64) []MitigationPoint {
	region := a.CaliforniaRegion()
	var fires []*wildfire.Fire
	for i := range season.Mapped {
		if region.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, &season.Mapped[i])
		}
	}
	sc := powergrid.NewFall2019Scenario(fires)

	out := make([]MitigationPoint, 0, len(hours))
	for _, h := range hours {
		net := powergrid.BuildNetwork(a.Data, a.WHP, region, powergrid.NetConfig{
			Seed: seed, MeanBatteryHours: h,
		})
		o := net.Simulate(sc, seed)
		day, peak := o.PeakDay()
		out = append(out, MitigationPoint{
			MeanBatteryHours: h,
			PeakOut:          peak,
			PeakPowerOut:     o.OutByCause[day][powergrid.PowerLoss],
		})
	}
	return out
}
