package risk

import (
	"testing"

	"fivealarms/internal/wildfire"
)

func TestExtendAndValidateFine(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 40)
	// Test scale: 4 km window cells, 5 km buffer (one-plus cells).
	res := testAnalyzer.ExtendAndValidateFine(season, 4000, 5000)
	if res.WindowTransceivers == 0 {
		t.Fatal("empty window")
	}
	if res.InPerimeter == 0 {
		t.Fatal("no in-perimeter transceivers in the CA window")
	}
	if res.PredictedAfter < res.PredictedBefore {
		t.Errorf("extension reduced predictions: %d -> %d",
			res.PredictedBefore, res.PredictedAfter)
	}
	if res.VHAfter <= res.VHBefore {
		t.Errorf("extension did not grow very-high membership: %d -> %d",
			res.VHBefore, res.VHAfter)
	}
	if res.AccuracyAfterPct() < res.AccuracyBeforePct() {
		t.Errorf("accuracy fell: %.1f%% -> %.1f%%",
			res.AccuracyBeforePct(), res.AccuracyAfterPct())
	}
	if res.AccuracyBeforePct() < 0 || res.AccuracyAfterPct() > 100 {
		t.Error("accuracy out of range")
	}
}

func TestExtendAndValidateFineDefaults(t *testing.T) {
	res := &FineExtension{}
	if res.AccuracyBeforePct() != 0 || res.AccuracyAfterPct() != 0 {
		t.Error("empty result accuracies should be 0")
	}
}
