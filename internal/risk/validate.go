package risk

import (
	"fivealarms/internal/raster"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// ValidationResult reproduces §3.4: how well the WHP identifies the
// transceivers that ended up inside a held-out season's fire perimeters.
type ValidationResult struct {
	// InPerimeter is the number of transceivers inside any perimeter of
	// the validation season (the paper's 656).
	InPerimeter int
	// Predicted is how many of those the WHP placed in moderate or higher
	// (the paper's 302, 46%).
	Predicted int
	// MissesInRoadFires counts unpredicted transceivers that sat inside
	// road-corridor fires (the Saddle Ridge/Tick analog: 288).
	MissesInRoadFires int
	// RoadFireTotal counts all in-perimeter transceivers inside
	// road-corridor fires (predicted or not).
	RoadFireTotal int
}

// AccuracyPct is Predicted/InPerimeter as a percentage.
func (v *ValidationResult) AccuracyPct() float64 {
	if v.InPerimeter == 0 {
		return 0
	}
	return 100 * float64(v.Predicted) / float64(v.InPerimeter)
}

// AccuracyExclRoadPct recomputes accuracy after discarding the
// road-corridor misses, the paper's 84% figure.
func (v *ValidationResult) AccuracyExclRoadPct() float64 {
	denom := v.InPerimeter - v.MissesInRoadFires
	if denom <= 0 {
		return 0
	}
	return 100 * float64(v.Predicted) / float64(denom)
}

// Validate joins the validation season's perimeters against the cached
// WHP classes.
func (a *Analyzer) Validate(season *wildfire.Season) *ValidationResult {
	return a.ValidateFor(season, a.classOf)
}

// ValidateFor runs the validation join against an explicit class slice
// (e.g. one produced by ClassesAgainst). Read-only: safe under
// concurrent analyses.
func (a *Analyzer) ValidateFor(season *wildfire.Season, classOf []whp.Class) *ValidationResult {
	res := &ValidationResult{}
	seen := make(map[int]bool)
	// inRoad tracks whether the transceiver is inside at least one
	// road-corridor fire.
	inRoad := make(map[int]bool)
	var buf []int
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		prep := f.PreparedPerimeter()
		buf = a.Data.Index.Query(prep.BBox(), buf[:0])
		for _, ti := range buf {
			if !prep.Contains(a.Data.T[ti].XY) {
				continue
			}
			seen[ti] = true
			if f.RoadCorridor {
				inRoad[ti] = true
			}
		}
	}
	for ti := range seen {
		res.InPerimeter++
		predicted := classOf[ti].AtRisk()
		if predicted {
			res.Predicted++
		}
		if inRoad[ti] {
			res.RoadFireTotal++
			if !predicted {
				res.MissesInRoadFires++
			}
		}
	}
	return res
}

// ExtensionResult reproduces §3.8: buffering the very-high class by half
// a mile and its effect on class totals and validation accuracy.
type ExtensionResult struct {
	DistM             float64
	VHBefore, VHAfter int
	TotalBefore       int // M+H+VH before
	TotalAfter        int // M+H+VH(extended) after
	Before, After     *ValidationResult
}

// ExtendAndValidate runs the §3.8 experiment: extend very-high by dist
// meters, recount the classes against the extended raster, and re-run
// the validation. The extended classification lives in a local slice, so
// the analyzer's shared cache is never touched and concurrent analyses
// are unaffected. The class raster's resolution bounds the effective
// buffer: at cells coarser than dist the dilation cannot grow
// (documented in EXPERIMENTS.md; full-scale runs use a fine raster).
func (a *Analyzer) ExtendAndValidate(season *wildfire.Season, dist float64) *ExtensionResult {
	res := &ExtensionResult{DistM: dist}

	before := a.WHPOverlay()
	res.VHBefore = before.ByClass[whp.VeryHigh]
	res.TotalBefore = before.AtRisk()
	res.Before = a.Validate(season)

	extended := a.ClassesAgainst(a.WHP.ExtendVeryHigh(dist))
	after := a.WHPOverlayFor(extended)
	res.VHAfter = after.ByClass[whp.VeryHigh]
	res.TotalAfter = after.AtRisk()
	res.After = a.ValidateFor(season, extended)
	return res
}

// ExtendedClasses exposes the extended class raster for rendering.
func (a *Analyzer) ExtendedClasses(dist float64) *raster.ClassGrid {
	return a.WHP.ExtendVeryHigh(dist)
}
