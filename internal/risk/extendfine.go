package risk

import (
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// FineExtension is the §3.8 experiment at sub-kilometer resolution: a
// fine WHP window over the validation region, the true half-mile buffer,
// and the before/after accuracy the paper reports (46% -> 62%). The
// national raster cannot express an 800 m buffer; this window can.
type FineExtension struct {
	// CellSize and DistM describe the window raster and buffer.
	CellSize, DistM float64
	// WindowTransceivers is the fleet inside the window.
	WindowTransceivers int
	// InPerimeter counts window transceivers inside the season's
	// window-intersecting fire perimeters.
	InPerimeter int
	// PredictedBefore/After count those in moderate+ classes before and
	// after the very-high extension.
	PredictedBefore, PredictedAfter int
	// VHBefore/After count window transceivers classified very-high.
	VHBefore, VHAfter int
}

// AccuracyBeforePct returns the pre-extension hit rate.
func (f *FineExtension) AccuracyBeforePct() float64 {
	if f.InPerimeter == 0 {
		return 0
	}
	return 100 * float64(f.PredictedBefore) / float64(f.InPerimeter)
}

// AccuracyAfterPct returns the post-extension hit rate.
func (f *FineExtension) AccuracyAfterPct() float64 {
	if f.InPerimeter == 0 {
		return 0
	}
	return 100 * float64(f.PredictedAfter) / float64(f.InPerimeter)
}

// ExtendAndValidateFine runs the fine-resolution §3.8 experiment over the
// California case-study region: rebuild the WHP at cellSize meters inside
// the window, classify the window's transceivers against it, join them
// against the season's perimeters, then dilate the very-high class by
// distM (the paper: 804.67 m) and re-classify. cellSize 0 selects 800 m;
// distM 0 selects the half mile.
//
// Cost scales with the window cell count (the CA window at 800 m is ~2M
// cells); the national analyses stay on the coarse shared raster.
func (a *Analyzer) ExtendAndValidateFine(season *wildfire.Season, cellSize, distM float64) *FineExtension {
	if cellSize <= 0 {
		cellSize = 800
	}
	if distM <= 0 {
		distM = 0.5 * geom.MetersPerMile
	}
	region := a.CaliforniaRegion().Intersection(a.World.Grid.Bounds())
	g := raster.NewGeometry(region, cellSize)
	fine := whp.Build(a.World, g, whp.Config{
		// Inherit the analyzer's calibration, but give the nonburnable
		// transportation corridor its physical half-width (~400 m of
		// roadway, shoulders and managed verge) rather than the raster-
		// coupled default — this is what the half-mile buffer reaches
		// across, exactly the §3.8 mechanism.
		UrbanCoreThreshold: a.WHP.Cfg.UrbanCoreThreshold,
		WUIDamping:         a.WHP.Cfg.WUIDamping,
		Thresholds:         a.WHP.Cfg.Thresholds,
		NoiseScaleM:        a.WHP.Cfg.NoiseScaleM,
		RoadBufferM:        400,
	})

	res := &FineExtension{CellSize: cellSize, DistM: distM}

	// Window transceivers and their fine classes.
	ids := a.Data.Index.Query(region, nil)
	res.WindowTransceivers = len(ids)
	classBefore := make(map[int]whp.Class, len(ids))
	for _, ti := range ids {
		classBefore[ti] = fine.ClassAt(a.Data.T[ti].XY)
	}
	for _, c := range classBefore {
		if c == whp.VeryHigh {
			res.VHBefore++
		}
	}

	// Extended classes.
	ext := fine.ExtendVeryHigh(distM)
	classAfter := make(map[int]whp.Class, len(ids))
	for _, ti := range ids {
		v, ok := ext.Sample(a.Data.T[ti].XY)
		if !ok {
			classAfter[ti] = whp.Water
			continue
		}
		classAfter[ti] = whp.Class(v)
		if whp.Class(v) == whp.VeryHigh {
			res.VHAfter++
		}
	}

	// Join against the window's fires.
	inPerimeter := map[int]bool{}
	var buf []int
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		prep := f.PreparedPerimeter()
		if !prep.BBox().Intersects(region) {
			continue
		}
		buf = a.Data.Index.Query(prep.BBox(), buf[:0])
		for _, ti := range buf {
			if !region.ContainsPoint(a.Data.T[ti].XY) {
				continue
			}
			if prep.Contains(a.Data.T[ti].XY) {
				inPerimeter[ti] = true
			}
		}
	}
	res.InPerimeter = len(inPerimeter)
	for ti := range inPerimeter {
		if classBefore[ti].AtRisk() {
			res.PredictedBefore++
		}
		if classAfter[ti].AtRisk() {
			res.PredictedAfter++
		}
	}
	return res
}
