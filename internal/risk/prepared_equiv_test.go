package risk

import (
	"reflect"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

// naiveOverlay is the pre-prepared-geometry overlay join, kept as the
// reference implementation: raw Ring ray-casts through
// MultiPolygon.ContainsPoint, map-free visited dedup, serial over
// seasons. The engine's results must stay byte-identical to it.
func naiveOverlay(a *Analyzer, seasons []*wildfire.Season) []YearOverlay {
	out := make([]YearOverlay, len(seasons))
	visited := make([]bool, a.Data.Len())
	var buf, touched []int
	for si, s := range seasons {
		count := 0
		touched = touched[:0]
		for fi := range s.Mapped {
			f := &s.Mapped[fi]
			buf = a.Data.Index.Query(f.Perimeter.BBox(), buf[:0])
			for _, ti := range buf {
				if visited[ti] {
					continue
				}
				if f.Perimeter.ContainsPoint(a.Data.T[ti].XY) {
					visited[ti] = true
					touched = append(touched, ti)
					count++
				}
			}
		}
		for _, ti := range touched {
			visited[ti] = false
		}
		perM := 0.0
		if s.TotalAcres > 0 {
			perM = float64(count) / (s.TotalAcres / 1e6)
		}
		out[si] = YearOverlay{
			Year:            s.Year,
			Fires:           s.TotalFires,
			AcresBurned:     s.TotalAcres,
			TransceiversIn:  count,
			PerMillionAcres: perM,
		}
	}
	return out
}

// naiveValidate mirrors ValidateFor with raw ray-casts.
func naiveValidate(a *Analyzer, season *wildfire.Season, classOf []whp.Class) *ValidationResult {
	res := &ValidationResult{}
	seen := make(map[int]bool)
	inRoad := make(map[int]bool)
	var buf []int
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		buf = a.Data.Index.Query(f.Perimeter.BBox(), buf[:0])
		for _, ti := range buf {
			if !f.Perimeter.ContainsPoint(a.Data.T[ti].XY) {
				continue
			}
			seen[ti] = true
			if f.RoadCorridor {
				inRoad[ti] = true
			}
		}
	}
	for ti := range seen {
		res.InPerimeter++
		predicted := classOf[ti].AtRisk()
		if predicted {
			res.Predicted++
		}
		if inRoad[ti] {
			res.RoadFireTotal++
			if !predicted {
				res.MissesInRoadFires++
			}
		}
	}
	return res
}

// TestPreparedJoinPointwiseIdentical is the foundation of the PR's
// bit-identity claim: on real simulated perimeters (rectilinear contour
// traces) the prepared predicate agrees with the naive ray-cast at every
// index candidate of every fire — and the prepared bbox is the exact
// MultiPolygon bbox, so the candidate sets are identical too.
func TestPreparedJoinPointwiseIdentical(t *testing.T) {
	season := testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 30,
	})
	var buf []int
	checked := 0
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		prep := f.PreparedPerimeter()
		if prep.BBox() != f.Perimeter.BBox() {
			t.Fatalf("fire %d: prepared bbox %v != perimeter bbox %v", fi, prep.BBox(), f.Perimeter.BBox())
		}
		buf = testAnalyzer.Data.Index.Query(prep.BBox(), buf[:0])
		for _, ti := range buf {
			xy := testData.T[ti].XY
			if got, want := prep.Contains(xy), f.Perimeter.ContainsPoint(xy); got != want {
				t.Fatalf("fire %d transceiver %d at %v: prepared %v, naive %v", fi, ti, xy, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no candidates checked; fixture degenerate")
	}
}

// TestHistoricalOverlayMatchesNaive asserts the full Table 1 pipeline —
// serial-prepared and parallel-prepared — reproduces the naive reference
// exactly (not approximately: identical structs, floats included).
func TestHistoricalOverlayMatchesNaive(t *testing.T) {
	seasons := wildfire.SimulateHistory(testSim, 7, 10)
	want := naiveOverlay(testAnalyzer, seasons)

	serial := testAnalyzer.HistoricalOverlayWorkers(seasons, 1)
	if !reflect.DeepEqual(serial, want) {
		t.Fatalf("serial prepared overlay diverges from naive:\n got %+v\nwant %+v", serial, want)
	}
	parallel := testAnalyzer.HistoricalOverlay(seasons)
	if !reflect.DeepEqual(parallel, want) {
		t.Fatalf("parallel prepared overlay diverges from naive:\n got %+v\nwant %+v", parallel, want)
	}
	again := testAnalyzer.HistoricalOverlayWorkers(seasons, 3)
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("3-worker overlay diverges from naive")
	}
}

// TestValidateMatchesNaive pins the validation join to the reference.
func TestValidateMatchesNaive(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 40)
	want := naiveValidate(testAnalyzer, season, testAnalyzer.classOf)
	got := testAnalyzer.Validate(season)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Validate diverges from naive: got %+v, want %+v", got, want)
	}
}

// TestTransceiversInFireMatchesNaive pins the single-fire join.
func TestTransceiversInFireMatchesNaive(t *testing.T) {
	season := testSim.Season(wildfire.SeasonConfig{
		Seed: 9, Year: 2017, TotalFires: 66131, TotalAcres: 9.8e6, MappedFires: 12,
	})
	for fi := range season.Mapped {
		f := &season.Mapped[fi]
		got := testAnalyzer.TransceiversInFire(f)
		var want []int
		for _, ti := range testAnalyzer.Data.Index.Query(f.Perimeter.BBox(), nil) {
			if f.Perimeter.ContainsPoint(testData.T[ti].XY) {
				want = append(want, ti)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fire %d: prepared join %v != naive %v", fi, got, want)
		}
	}
}

// TestCaseStudyJoinPointwiseIdentical proves the PSPS case study is
// byte-identical to the naive path. The outage simulation consumes its
// rng stream conditioned on per-(site, fire) containment and on
// backhaul-segment sample probes; the old code evaluated
// BBox().ContainsPoint && Perimeter.ContainsPoint at exactly these
// points. If the prepared predicate agrees at every one of them, the
// rng draws, damage rolls, and therefore the full Outcome and
// CaseStudyResult are unchanged (the serial-vs-parallel half is covered
// by the pipeline fingerprint tests).
func TestCaseStudyJoinPointwiseIdentical(t *testing.T) {
	season := wildfire.Simulate2019(testSim, 7, 15)
	region := testAnalyzer.CaliforniaRegion()
	net := powergrid.BuildNetwork(testAnalyzer.Data, testAnalyzer.WHP, region, powergrid.NetConfig{Seed: 7})
	var fires []*wildfire.Fire
	for i := range season.Mapped {
		if region.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, &season.Mapped[i])
		}
	}
	if len(fires) == 0 || len(net.Sites) == 0 {
		t.Fatal("case-study fixture degenerate")
	}
	naive := func(f *wildfire.Fire, p geom.Point) bool {
		return f.BBox().ContainsPoint(p) && f.Perimeter.ContainsPoint(p)
	}
	checked := 0
	for _, f := range fires {
		prep := f.PreparedPerimeter()
		for si := range net.Sites {
			s := &net.Sites[si]
			if got, want := prep.Contains(s.XY), naive(f, s.XY); got != want {
				t.Fatalf("site %d vs fire %q: prepared %v, naive %v", si, f.Name, got, want)
			}
			// The same sample lattice segmentCrossesPerimeter probes.
			// Strided: the naive reference walk dominates the test's cost,
			// and universal ring-level equivalence is already covered by
			// the geom property tests.
			if si%13 != 0 {
				continue
			}
			d := s.Backhaul.Sub(s.XY)
			steps := int(d.Norm()/200) + 1
			if steps > 4000 {
				steps = 4000
			}
			for k := 0; k <= steps; k++ {
				p := s.XY.Add(d.Scale(float64(k) / float64(steps)))
				if got, want := prep.Contains(p), naive(f, p); got != want {
					t.Fatalf("segment sample %v vs fire %q: prepared %v, naive %v", p, f.Name, got, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no probe points checked")
	}
}

// BenchmarkHistoricalOverlay compares the naive serial join against the
// prepared serial and prepared parallel engines over a 19-season history
// (the Table 1 workload). `make bench-geom` records this in
// BENCH_geom.json.
func BenchmarkHistoricalOverlay(b *testing.B) {
	seasons := wildfire.SimulateHistory(testSim, 7, 20)
	b.Run("naive-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = naiveOverlay(testAnalyzer, seasons)
		}
	})
	b.Run("prepared-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = testAnalyzer.HistoricalOverlayWorkers(seasons, 1)
		}
	})
	b.Run("prepared-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = testAnalyzer.HistoricalOverlay(seasons)
		}
	})
}
