package risk

import (
	"testing"

	"fivealarms/internal/hot"
	"fivealarms/internal/wildfire"
)

func TestEscapeProbabilities(t *testing.T) {
	rows := testAnalyzer.EscapeProbabilities(0)
	if len(rows) < 40 {
		t.Fatalf("states with escape estimates = %d", len(rows))
	}
	byState := map[string]StateEscape{}
	for i, r := range rows {
		byState[r.Abbrev] = r
		if r.Escape < 0 || r.Escape > 1 {
			t.Fatalf("escape out of range: %+v", r)
		}
		if i > 0 && rows[i].Escape > rows[i-1].Escape {
			t.Fatal("not sorted descending")
		}
	}
	// Heterogeneous hazard fields (the west) escape more than the flat
	// farm belt.
	if byState["CA"].Escape <= byState["IL"].Escape {
		t.Errorf("CA escape %.3f should exceed IL %.3f",
			byState["CA"].Escape, byState["IL"].Escape)
	}
	if byState["CA"].AtRiskTransceivers == 0 {
		t.Error("CA at-risk join missing")
	}
}

func TestEscapeThresholdMonotone(t *testing.T) {
	low := testAnalyzer.EscapeProbabilities(100)
	high := testAnalyzer.EscapeProbabilities(100000)
	lm := map[string]float64{}
	for _, r := range low {
		lm[r.Abbrev] = r.Escape
	}
	for _, r := range high {
		if r.Escape > lm[r.Abbrev]+1e-12 {
			t.Fatalf("%s: escape grew with threshold", r.Abbrev)
		}
	}
}

func TestHOTSizeSamplerIntegration(t *testing.T) {
	// Plug a HOT model into the season simulator in place of the
	// truncated Pareto: the season must still calibrate to its acre
	// target and produce mapped perimeters.
	g := testWHP.Hazard.Geometry
	var w []float64
	for cy := 0; cy < g.NY; cy += 2 {
		for cx := 0; cx < g.NX; cx += 2 {
			if h := testWHP.Hazard.At(cx, cy); h > 0 {
				w = append(w, h*h)
			}
		}
	}
	m, err := hot.Fit(w, float64(len(w)), 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	s := testSim.Season(wildfire.SeasonConfig{
		Seed: 5, Year: 2013, TotalFires: 47579, TotalAcres: 4.3e6,
		MappedFires: 20, SizeSampler: m,
	})
	if len(s.Mapped) < 15 {
		t.Fatalf("mapped fires = %d", len(s.Mapped))
	}
	ratio := s.MappedAcres() / (4.3e6 * 0.85)
	if ratio < 0.4 || ratio > 1.8 {
		t.Errorf("HOT-sized season calibration off: ratio %v", ratio)
	}
}
