package risk

import "fivealarms/internal/wildfire"

// DailyExposure is one day of the within-season exposure series: how many
// transceivers sit inside perimeters of fires actively burning that day —
// a finer-grained view of Figure 4 that the GeoMAC date fields enable.
type DailyExposure struct {
	DayOfYear    int
	ActiveFires  int
	Transceivers int
}

// SeasonExposure computes the daily series over a season's mapped fires
// (days with no active fires are omitted). A transceiver inside two
// simultaneously-active perimeters counts once.
func (a *Analyzer) SeasonExposure(season *wildfire.Season) []DailyExposure {
	if len(season.Mapped) == 0 {
		return nil
	}
	first, last := 367, 0
	for i := range season.Mapped {
		f := &season.Mapped[i]
		if f.StartDay < first {
			first = f.StartDay
		}
		if f.EndDay > last {
			last = f.EndDay
		}
	}
	// Precompute each fire's contained transceivers once.
	contained := make([][]int, len(season.Mapped))
	for i := range season.Mapped {
		contained[i] = a.TransceiversInFire(&season.Mapped[i])
	}

	var out []DailyExposure
	seen := map[int]bool{}
	for day := first; day <= last; day++ {
		active := 0
		for k := range seen {
			delete(seen, k)
		}
		for i := range season.Mapped {
			f := &season.Mapped[i]
			if day < f.StartDay || day > f.EndDay {
				continue
			}
			active++
			for _, ti := range contained[i] {
				seen[ti] = true
			}
		}
		if active == 0 {
			continue
		}
		out = append(out, DailyExposure{
			DayOfYear:    day,
			ActiveFires:  active,
			Transceivers: len(seen),
		})
	}
	return out
}

// PeakExposure returns the day with the most transceivers inside active
// perimeters (zero value when the season is empty).
func PeakExposure(series []DailyExposure) DailyExposure {
	var best DailyExposure
	for _, d := range series {
		if d.Transceivers > best.Transceivers {
			best = d
		}
	}
	return best
}
