package risk

import (
	"testing"

	"fivealarms/internal/wui"
)

func TestWUIAnalysis(t *testing.T) {
	res := testAnalyzer.WUIAnalysis(wui.Config{})
	if res.AtRiskTotal == 0 || res.AllTotal == 0 {
		t.Fatal("empty analysis")
	}
	if res.AtRiskInWUI == 0 {
		t.Fatal("no at-risk transceivers in the WUI")
	}
	if res.AtRiskInWUI > res.AtRiskTotal || res.AllInWUI > res.AllTotal {
		t.Fatal("counts inconsistent")
	}
	// §3.7's key finding: at-risk infrastructure is over-represented in
	// the WUI relative to the fleet at large.
	if c := res.Concentration(); c <= 1 {
		t.Errorf("WUI concentration = %.2f, want > 1", c)
	}
	if res.WUIPopulation <= 0 {
		t.Error("WUI population missing")
	}
	// The LA metro should carry WUI-exposed at-risk transceivers.
	if res.MetroWUI["Los Angeles"] == 0 {
		t.Error("no WUI at-risk transceivers in the LA window")
	}
}

func TestWUISharesOrdering(t *testing.T) {
	res := testAnalyzer.WUIAnalysis(wui.Config{})
	if res.AtRiskWUIShare() < 0 || res.AtRiskWUIShare() > 1 {
		t.Error("share out of range")
	}
	if res.BaselineWUIShare() < 0 || res.BaselineWUIShare() > 1 {
		t.Error("baseline out of range")
	}
}

func BenchmarkWUIAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = testAnalyzer.WUIAnalysis(wui.Config{})
	}
}
