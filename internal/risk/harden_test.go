package risk

import "testing"

func TestHardeningPlanBasics(t *testing.T) {
	res := testAnalyzer.HardeningPlan(10, 30000)
	if res.CandidateSites == 0 {
		t.Fatal("no candidate sites")
	}
	if len(res.Sites) == 0 || len(res.Sites) > 10 {
		t.Fatalf("chosen sites = %d", len(res.Sites))
	}
	if res.ProtectedPopulation <= 0 {
		t.Fatal("no population protected")
	}
	if res.ProtectedPopulation > res.CandidatePopulation+1 {
		t.Error("protected exceeds the candidate ceiling")
	}
	// Greedy marginal gains are non-increasing.
	for i := 1; i < len(res.Sites); i++ {
		if res.Sites[i].Gain > res.Sites[i-1].Gain+1e-9 {
			t.Errorf("gain %d (%.0f) exceeds gain %d (%.0f)",
				i, res.Sites[i].Gain, i-1, res.Sites[i-1].Gain)
		}
	}
	for _, s := range res.Sites {
		if s.Transceivers <= 0 {
			t.Error("site without transceivers chosen")
		}
	}
}

func TestHardeningPlanMonotoneInBudget(t *testing.T) {
	small := testAnalyzer.HardeningPlan(3, 30000)
	large := testAnalyzer.HardeningPlan(12, 30000)
	if large.ProtectedPopulation < small.ProtectedPopulation {
		t.Errorf("larger budget protected less: %.0f < %.0f",
			large.ProtectedPopulation, small.ProtectedPopulation)
	}
	// The first selections agree (greedy determinism).
	for i := range small.Sites {
		if small.Sites[i].SiteID != large.Sites[i].SiteID {
			t.Errorf("selection order differs at %d", i)
		}
	}
}

func TestHardeningPlanZeroBudget(t *testing.T) {
	res := testAnalyzer.HardeningPlan(0, 30000)
	if len(res.Sites) != 0 || res.ProtectedPopulation != 0 {
		t.Error("zero budget should protect nothing")
	}
	if res.CandidatePopulation <= 0 {
		t.Error("candidate ceiling should still be computed")
	}
}

func TestHardeningPlanDiminishingReturns(t *testing.T) {
	res := testAnalyzer.HardeningPlan(15, 30000)
	if len(res.Sites) < 4 {
		t.Skip("too few sites for the check")
	}
	first := res.Sites[0].Gain
	last := res.Sites[len(res.Sites)-1].Gain
	if last >= first {
		t.Errorf("no diminishing returns: first %.0f, last %.0f", first, last)
	}
}

func BenchmarkHardeningPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = testAnalyzer.HardeningPlan(10, 30000)
	}
}
