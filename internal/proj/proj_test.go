package proj

import (
	"math"
	"testing"
	"testing/quick"

	"fivealarms/internal/geom"
)

// conusPoints are well-known locations inside the Albers CONUS domain.
var conusPoints = []geom.Point{
	{X: -122.4194, Y: 37.7749}, // San Francisco
	{X: -118.2437, Y: 34.0522}, // Los Angeles
	{X: -74.0060, Y: 40.7128},  // New York
	{X: -80.1918, Y: 25.7617},  // Miami
	{X: -104.9903, Y: 39.7392}, // Denver
	{X: -96.0, Y: 23.0},        // projection origin
	{X: -67.0, Y: 47.0},        // northern Maine
	{X: -124.5, Y: 48.3},       // NW Washington
}

func TestAlbersRoundTrip(t *testing.T) {
	a := ConusAlbers()
	for _, p := range conusPoints {
		xy := a.Forward(p)
		back := a.Inverse(xy)
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", p, xy, back)
		}
	}
}

func TestAlbersRoundTripProperty(t *testing.T) {
	a := ConusAlbers()
	f := func(lonRaw, latRaw float64) bool {
		lon := -125 + math.Mod(math.Abs(lonRaw), 58) // [-125, -67]
		lat := 24 + math.Mod(math.Abs(latRaw), 25)   // [24, 49]
		p := geom.Point{X: lon, Y: lat}
		back := a.Inverse(a.Forward(p))
		return math.Abs(back.X-lon) < 1e-8 && math.Abs(back.Y-lat) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlbersOriginMapsNearZero(t *testing.T) {
	a := ConusAlbers()
	xy := a.Forward(geom.Point{X: -96, Y: 23})
	if math.Abs(xy.X) > 1e-6 || math.Abs(xy.Y) > 1e-6 {
		t.Errorf("origin maps to %v, want (0,0)", xy)
	}
}

func TestAlbersEqualArea(t *testing.T) {
	// The defining property: equal geographic areas map to equal planar
	// areas regardless of latitude. Compare a 1x1 degree cell at 30N with
	// one at 45N: planar areas must match their spherical areas closely.
	a := ConusAlbers()
	cell := func(lon, lat float64) geom.Ring {
		return geom.NewRing(
			geom.Point{X: lon, Y: lat}, geom.Point{X: lon + 1, Y: lat},
			geom.Point{X: lon + 1, Y: lat + 1}, geom.Point{X: lon, Y: lat + 1},
		)
	}
	for _, tc := range []struct{ lon, lat float64 }{
		{-120, 30}, {-100, 38}, {-80, 45},
	} {
		r := cell(tc.lon, tc.lat)
		spherical := geom.GeographicRingArea(r)
		// Densify edges before projecting to capture curvature.
		dense := geom.Ring{}
		n := len(r)
		for i := 0; i < n; i++ {
			p1, p2 := r[i], r[(i+1)%n]
			for k := 0; k < 20; k++ {
				f := float64(k) / 20
				dense = append(dense, geom.Point{X: p1.X + (p2.X-p1.X)*f, Y: p1.Y + (p2.Y-p1.Y)*f})
			}
		}
		planar := ForwardRing(a, dense).Area()
		if rel := math.Abs(planar-spherical) / spherical; rel > 0.005 {
			t.Errorf("cell at (%v,%v): planar %.4g vs spherical %.4g (rel err %.4f)",
				tc.lon, tc.lat, planar, spherical, rel)
		}
	}
}

func TestAlbersDistancesReasonable(t *testing.T) {
	// Albers is not conformal but distance distortion in-domain is small:
	// LA->SF planar distance should be within 1% of great circle.
	a := ConusAlbers()
	la := geom.Point{X: -118.2437, Y: 34.0522}
	sf := geom.Point{X: -122.4194, Y: 37.7749}
	planar := a.Forward(la).DistanceTo(a.Forward(sf))
	gc := geom.Haversine(la, sf)
	if rel := math.Abs(planar-gc) / gc; rel > 0.01 {
		t.Errorf("planar %v vs great-circle %v (rel %v)", planar, gc, rel)
	}
}

func TestWebMercatorRoundTrip(t *testing.T) {
	m := WebMercator{}
	for _, p := range conusPoints {
		back := m.Inverse(m.Forward(p))
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestWebMercatorClampsLatitude(t *testing.T) {
	m := WebMercator{}
	hi := m.Forward(geom.Point{X: 0, Y: 89.9})
	cap := m.Forward(geom.Point{X: 0, Y: MercatorMaxLat})
	if hi.Y != cap.Y {
		t.Errorf("latitude beyond cutoff should clamp: %v vs %v", hi.Y, cap.Y)
	}
}

func TestWebMercatorEquatorScale(t *testing.T) {
	m := WebMercator{}
	// One degree of longitude at the equator spans R * pi/180 meters.
	p := m.Forward(geom.Point{X: 1, Y: 0})
	want := geom.EarthRadiusMeters * math.Pi / 180
	if math.Abs(p.X-want) > 1 {
		t.Errorf("x = %v, want %v", p.X, want)
	}
	if math.Abs(p.Y) > 1e-6 {
		t.Errorf("equator should map to y=0, got %v", p.Y)
	}
}

func TestEquirectangularRoundTrip(t *testing.T) {
	e := NewEquirectangular(38)
	for _, p := range conusPoints {
		back := e.Inverse(e.Forward(p))
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestProjectionNames(t *testing.T) {
	if ConusAlbers().Name() != "albers" {
		t.Error("albers name")
	}
	if (WebMercator{}).Name() != "webmercator" {
		t.Error("webmercator name")
	}
	if NewEquirectangular(0).Name() != "equirectangular" {
		t.Error("equirectangular name")
	}
}

func TestForwardRingPolygonHelpers(t *testing.T) {
	a := ConusAlbers()
	r := geom.NewRing(
		geom.Point{X: -120, Y: 35}, geom.Point{X: -119, Y: 35},
		geom.Point{X: -119, Y: 36}, geom.Point{X: -120, Y: 36},
	)
	pr := ForwardRing(a, r)
	if len(pr) != len(r) {
		t.Fatal("ring length changed")
	}
	back := InverseRing(a, pr)
	for i := range r {
		if math.Abs(back[i].X-r[i].X) > 1e-9 {
			t.Fatalf("vertex %d round trip failed", i)
		}
	}

	poly := geom.NewPolygon(r, geom.NewRing(
		geom.Point{X: -119.7, Y: 35.3}, geom.Point{X: -119.3, Y: 35.3},
		geom.Point{X: -119.3, Y: 35.7}, geom.Point{X: -119.7, Y: 35.7},
	))
	pp := ForwardPolygon(a, poly)
	if len(pp.Holes) != 1 {
		t.Fatal("hole lost in projection")
	}
	if pp.Area() >= pp.Exterior.Area() {
		t.Error("hole should reduce area")
	}

	mp := ForwardMultiPolygon(a, geom.MultiPolygon{poly, poly})
	if len(mp) != 2 {
		t.Error("multipolygon length")
	}
}

func TestForwardBBox(t *testing.T) {
	a := ConusAlbers()
	b := geom.NewBBox(geom.Point{X: -120, Y: 35}, geom.Point{X: -110, Y: 45})
	pb := ForwardBBox(a, b)
	if pb.IsEmpty() {
		t.Fatal("projected bbox empty")
	}
	// Every projected grid point of the original box must be inside
	// (allowing tiny tolerance for edge bowing).
	for lon := -120.0; lon <= -110; lon += 2.5 {
		for lat := 35.0; lat <= 45; lat += 2.5 {
			xy := a.Forward(geom.Point{X: lon, Y: lat})
			if !pb.Buffer(5000).ContainsPoint(xy) {
				t.Errorf("projected point %v outside projected bbox", xy)
			}
		}
	}
}
