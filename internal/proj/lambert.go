package proj

import (
	"math"

	"fivealarms/internal/geom"
)

// Lambert is a spherical Lambert Conformal Conic projection — the
// projection most US state-plane zones and weather products use.
// Conformal (angle-preserving), so it complements the equal-area Albers:
// Albers for zonal statistics, Lambert for shape-faithful regional maps.
type Lambert struct {
	n      float64
	f      float64
	rho0   float64
	lon0   float64
	radius float64
}

// NewLambert constructs the projection with standard parallels phi1 and
// phi2, origin latitude phi0 and central meridian lon0 (degrees).
func NewLambert(phi1, phi2, phi0, lon0 float64) *Lambert {
	r1 := geom.Deg2Rad(phi1)
	r2 := geom.Deg2Rad(phi2)
	r0 := geom.Deg2Rad(phi0)
	var n float64
	if math.Abs(r1-r2) < 1e-12 {
		n = math.Sin(r1)
	} else {
		n = math.Log(math.Cos(r1)/math.Cos(r2)) /
			math.Log(math.Tan(math.Pi/4+r2/2)/math.Tan(math.Pi/4+r1/2))
	}
	l := &Lambert{
		n:      n,
		lon0:   geom.Deg2Rad(lon0),
		radius: geom.EarthRadiusMeters,
	}
	l.f = math.Cos(r1) * math.Pow(math.Tan(math.Pi/4+r1/2), n) / n
	l.rho0 = l.rho(r0)
	return l
}

// ConusLambert returns the Lambert projection conventionally used for
// CONUS weather products (standard parallels 33 and 45, origin 39N 96W).
func ConusLambert() *Lambert { return NewLambert(33, 45, 39, -96) }

func (l *Lambert) rho(phi float64) float64 {
	return l.radius * l.f / math.Pow(math.Tan(math.Pi/4+phi/2), l.n)
}

// Name implements Projection.
func (l *Lambert) Name() string { return "lambert" }

// Forward implements Projection.
func (l *Lambert) Forward(ll geom.Point) geom.Point {
	phi := geom.Deg2Rad(ll.Y)
	lam := geom.Deg2Rad(ll.X)
	rho := l.rho(phi)
	theta := l.n * (lam - l.lon0)
	return geom.Point{
		X: rho * math.Sin(theta),
		Y: l.rho0 - rho*math.Cos(theta),
	}
}

// Inverse implements Projection.
func (l *Lambert) Inverse(xy geom.Point) geom.Point {
	dy := l.rho0 - xy.Y
	rho := math.Hypot(xy.X, dy)
	if l.n < 0 {
		rho = -rho
	}
	theta := math.Atan2(xy.X, dy)
	phi := 2*math.Atan(math.Pow(l.radius*l.f/rho, 1/l.n)) - math.Pi/2
	lam := l.lon0 + theta/l.n
	return geom.Point{X: geom.Rad2Deg(lam), Y: geom.Rad2Deg(phi)}
}
