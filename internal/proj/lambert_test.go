package proj

import (
	"math"
	"testing"
	"testing/quick"

	"fivealarms/internal/geom"
)

func TestLambertRoundTrip(t *testing.T) {
	l := ConusLambert()
	for _, p := range conusPoints {
		back := l.Inverse(l.Forward(p))
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestLambertRoundTripProperty(t *testing.T) {
	l := ConusLambert()
	f := func(lonRaw, latRaw float64) bool {
		lon := -125 + math.Mod(math.Abs(lonRaw), 58)
		lat := 24 + math.Mod(math.Abs(latRaw), 25)
		p := geom.Point{X: lon, Y: lat}
		back := l.Inverse(l.Forward(p))
		return math.Abs(back.X-lon) < 1e-8 && math.Abs(back.Y-lat) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLambertConformality(t *testing.T) {
	// Conformal projections preserve local angles: a small right angle at
	// any in-domain point stays (approximately) right.
	l := ConusLambert()
	for _, p := range conusPoints {
		const d = 0.01
		o := l.Forward(p)
		east := l.Forward(geom.Point{X: p.X + d, Y: p.Y}).Sub(o)
		north := l.Forward(geom.Point{X: p.X, Y: p.Y + d}).Sub(o)
		cosAngle := east.Dot(north) / (east.Norm() * north.Norm())
		if math.Abs(cosAngle) > 0.002 {
			t.Errorf("at %v: angle deviates from 90 deg (cos = %v)", p, cosAngle)
		}
	}
}

func TestLambertSingleParallel(t *testing.T) {
	// Degenerate construction with phi1 == phi2 must still round trip.
	l := NewLambert(40, 40, 40, -100)
	p := geom.Point{X: -100, Y: 40}
	back := l.Inverse(l.Forward(p))
	if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
		t.Errorf("round trip = %v", back)
	}
}

func TestLambertName(t *testing.T) {
	if ConusLambert().Name() != "lambert" {
		t.Error("name")
	}
}

func TestLambertVsAlbersAgreeRoughly(t *testing.T) {
	// Both CONUS projections should place LA southwest of Denver.
	l := ConusLambert()
	a := ConusAlbers()
	la := geom.Point{X: -118.2437, Y: 34.0522}
	den := geom.Point{X: -104.9903, Y: 39.7392}
	for _, pr := range []Projection{l, a} {
		dla := pr.Forward(la)
		dden := pr.Forward(den)
		if dla.X >= dden.X || dla.Y >= dden.Y {
			t.Errorf("%s: LA not southwest of Denver", pr.Name())
		}
	}
}
