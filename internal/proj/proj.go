// Package proj implements the map projections used by the fivealarms GIS
// kernel. The overlay analyses operate on equal-area projected grids (the
// USFS Wildfire Hazard Potential raster is distributed in an Albers
// Equal-Area Conic projection), so the package provides a spherical Albers
// implementation with the CONUS standard parallels, plus Web Mercator and
// equirectangular projections for map rendering.
//
// All projections are spherical (radius geom.EarthRadiusMeters). Forward
// maps geographic (lon, lat) degrees to projected (x, y) meters; Inverse is
// the exact inverse. Round-trip error is bounded by floating-point noise
// (see the property tests).
package proj

import (
	"errors"
	"math"

	"fivealarms/internal/geom"
)

// ErrOutOfDomain is returned by projections when the input is outside the
// projection's valid domain (e.g. latitude beyond the Mercator cutoff).
var ErrOutOfDomain = errors.New("proj: coordinate outside projection domain")

// Projection converts between geographic coordinates (lon/lat degrees) and
// planar projected coordinates (meters).
type Projection interface {
	// Forward projects a geographic point to planar coordinates.
	Forward(ll geom.Point) geom.Point
	// Inverse unprojects planar coordinates back to geographic.
	Inverse(xy geom.Point) geom.Point
	// Name returns a short identifier for the projection.
	Name() string
}

// Albers is a spherical Albers Equal-Area Conic projection. Its defining
// property — preserved areas — is what makes it the right grid for zonal
// statistics like "transceivers per WHP class".
type Albers struct {
	name string
	// Projection constants (Snyder 1987, eq. 14-3 .. 14-11, spherical form).
	n      float64
	c      float64
	rho0   float64
	lon0   float64 // radians
	radius float64
}

// NewAlbers constructs an Albers projection with the given standard
// parallels (phi1, phi2), latitude of origin phi0 and central meridian
// lon0, all in degrees.
func NewAlbers(phi1, phi2, phi0, lon0 float64) *Albers {
	r1 := geom.Deg2Rad(phi1)
	r2 := geom.Deg2Rad(phi2)
	r0 := geom.Deg2Rad(phi0)
	n := (math.Sin(r1) + math.Sin(r2)) / 2
	c := math.Cos(r1)*math.Cos(r1) + 2*n*math.Sin(r1)
	a := &Albers{
		name:   "albers",
		n:      n,
		c:      c,
		lon0:   geom.Deg2Rad(lon0),
		radius: geom.EarthRadiusMeters,
	}
	a.rho0 = a.rho(r0)
	return a
}

// ConusAlbers returns the Albers projection conventionally used for the
// conterminous United States (standard parallels 29.5 and 45.5, origin
// 23N 96W) — the projection family of the USFS WHP raster.
func ConusAlbers() *Albers { return NewAlbers(29.5, 45.5, 23.0, -96.0) }

func (a *Albers) rho(phi float64) float64 {
	return a.radius * math.Sqrt(a.c-2*a.n*math.Sin(phi)) / a.n
}

// Name implements Projection.
func (a *Albers) Name() string { return a.name }

// Forward implements Projection.
func (a *Albers) Forward(ll geom.Point) geom.Point {
	phi := geom.Deg2Rad(ll.Y)
	lam := geom.Deg2Rad(ll.X)
	theta := a.n * (lam - a.lon0)
	rho := a.rho(phi)
	return geom.Point{
		X: rho * math.Sin(theta),
		Y: a.rho0 - rho*math.Cos(theta),
	}
}

// Inverse implements Projection.
func (a *Albers) Inverse(xy geom.Point) geom.Point {
	dy := a.rho0 - xy.Y
	rho := math.Hypot(xy.X, dy)
	theta := math.Atan2(xy.X, dy)
	if a.n < 0 {
		rho = -rho
		theta = math.Atan2(-xy.X, -dy)
	}
	sinPhi := (a.c - (rho*a.n/a.radius)*(rho*a.n/a.radius)) / (2 * a.n)
	if sinPhi > 1 {
		sinPhi = 1
	} else if sinPhi < -1 {
		sinPhi = -1
	}
	phi := math.Asin(sinPhi)
	lam := a.lon0 + theta/a.n
	return geom.Point{X: geom.Rad2Deg(lam), Y: geom.Rad2Deg(phi)}
}

// WebMercator is the spherical Mercator projection used by slippy-map
// renderers. Latitude is clamped to ±85.05113 degrees.
type WebMercator struct{}

// MercatorMaxLat is the latitude cutoff of the Web Mercator projection.
const MercatorMaxLat = 85.05112877980659

// Name implements Projection.
func (WebMercator) Name() string { return "webmercator" }

// Forward implements Projection.
func (WebMercator) Forward(ll geom.Point) geom.Point {
	lat := math.Max(-MercatorMaxLat, math.Min(MercatorMaxLat, ll.Y))
	x := geom.EarthRadiusMeters * geom.Deg2Rad(ll.X)
	y := geom.EarthRadiusMeters * math.Log(math.Tan(math.Pi/4+geom.Deg2Rad(lat)/2))
	return geom.Point{X: x, Y: y}
}

// Inverse implements Projection.
func (WebMercator) Inverse(xy geom.Point) geom.Point {
	lon := geom.Rad2Deg(xy.X / geom.EarthRadiusMeters)
	lat := geom.Rad2Deg(2*math.Atan(math.Exp(xy.Y/geom.EarthRadiusMeters)) - math.Pi/2)
	return geom.Point{X: lon, Y: lat}
}

// Equirectangular is the plate carrée projection with a configurable
// standard parallel; cheap and adequate for quick-look map rendering.
type Equirectangular struct {
	// CosPhi1 caches cos(standard parallel).
	cosPhi1 float64
}

// NewEquirectangular returns an equirectangular projection true at latitude
// phi1 degrees.
func NewEquirectangular(phi1 float64) *Equirectangular {
	return &Equirectangular{cosPhi1: math.Cos(geom.Deg2Rad(phi1))}
}

// Name implements Projection.
func (*Equirectangular) Name() string { return "equirectangular" }

// Forward implements Projection.
func (e *Equirectangular) Forward(ll geom.Point) geom.Point {
	return geom.Point{
		X: geom.EarthRadiusMeters * geom.Deg2Rad(ll.X) * e.cosPhi1,
		Y: geom.EarthRadiusMeters * geom.Deg2Rad(ll.Y),
	}
}

// Inverse implements Projection.
func (e *Equirectangular) Inverse(xy geom.Point) geom.Point {
	return geom.Point{
		X: geom.Rad2Deg(xy.X / (geom.EarthRadiusMeters * e.cosPhi1)),
		Y: geom.Rad2Deg(xy.Y / geom.EarthRadiusMeters),
	}
}

// ForwardRing projects every vertex of a geographic ring.
func ForwardRing(p Projection, r geom.Ring) geom.Ring {
	out := make(geom.Ring, len(r))
	for i, pt := range r {
		out[i] = p.Forward(pt)
	}
	return out
}

// InverseRing unprojects every vertex of a planar ring.
func InverseRing(p Projection, r geom.Ring) geom.Ring {
	out := make(geom.Ring, len(r))
	for i, pt := range r {
		out[i] = p.Inverse(pt)
	}
	return out
}

// ForwardPolygon projects a geographic polygon.
func ForwardPolygon(p Projection, poly geom.Polygon) geom.Polygon {
	out := geom.Polygon{Exterior: ForwardRing(p, poly.Exterior)}
	if len(poly.Holes) > 0 {
		out.Holes = make([]geom.Ring, len(poly.Holes))
		for i, h := range poly.Holes {
			out.Holes[i] = ForwardRing(p, h)
		}
	}
	return out
}

// ForwardMultiPolygon projects a geographic multipolygon.
func ForwardMultiPolygon(p Projection, m geom.MultiPolygon) geom.MultiPolygon {
	out := make(geom.MultiPolygon, len(m))
	for i, poly := range m {
		out[i] = ForwardPolygon(p, poly)
	}
	return out
}

// ForwardBBox projects the four corners of a geographic bbox and returns
// their bounding box. This is conservative for projections that bow edges
// slightly but adequate for pre-filters.
func ForwardBBox(p Projection, b geom.BBox) geom.BBox {
	out := geom.EmptyBBox()
	for _, pt := range []geom.Point{
		{X: b.MinX, Y: b.MinY}, {X: b.MaxX, Y: b.MinY},
		{X: b.MaxX, Y: b.MaxY}, {X: b.MinX, Y: b.MaxY},
		{X: (b.MinX + b.MaxX) / 2, Y: b.MinY}, {X: (b.MinX + b.MaxX) / 2, Y: b.MaxY},
	} {
		out = out.ExtendPoint(p.Forward(pt))
	}
	return out
}
