package proj_test

// External test package: the differential driver imports proj, so the
// conformance tests run from outside to avoid the cycle.

import (
	"testing"

	"fivealarms/internal/refimpl/diffcheck"
)

// TestAlbersConformance sweeps the cached Albers implementation against
// the cache-free Snyder transcription in refimpl: forward and inverse
// to <= 1 ulp per coordinate, plus round trips inside the cone's
// unambiguous longitude range. Seeds alternate the paper's CONUS
// parameters with random parallels, and probes include
// antimeridian-adjacent longitudes and near-pole latitudes.
func TestAlbersConformance(t *testing.T) {
	if err := diffcheck.Sweep(300, diffcheck.CheckAlbers); err != nil {
		t.Fatal(err)
	}
}

// TestAlbersGoldens replays the fixture vertex sets — most importantly
// the antimeridian fixture, whose Aleutian-style slivers sit at the edge
// of the projection's valid domain.
func TestAlbersGoldens(t *testing.T) {
	for _, name := range diffcheck.FixtureNames() {
		if err := diffcheck.CheckGoldenAlbers(name); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzAlbersDiff drives the projection twins from fuzz-chosen seeds.
func FuzzAlbersDiff(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffcheck.CheckAlbers(seed); err != nil {
			t.Fatal(err)
		}
	})
}
