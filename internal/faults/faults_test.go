package faults

import (
	"errors"
	"testing"
	"time"
)

func TestTargetedRules(t *testing.T) {
	in := New(1)
	custom := errors.New("disk on fire")
	in.ErrorOn("a", custom)
	in.ErrorOn("b", nil)
	in.DelayOn("c", time.Millisecond)

	hook := in.Hook()
	if err := hook("a"); !errors.Is(err, custom) || !errors.Is(err, ErrInjected) {
		t.Fatalf("a: %v", err)
	}
	if err := hook("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("b: %v", err)
	}
	start := time.Now()
	if err := hook("c"); err != nil {
		t.Fatalf("c: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("delay rule did not sleep")
	}
	if err := hook("untouched"); err != nil {
		t.Fatalf("untouched: %v", err)
	}
	want := []Event{{"a", KindError}, {"b", KindError}, {"c", KindDelay}}
	got := in.Events()
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1)
	in.PanicOn("x", "ouch")
	defer func() {
		if r := recover(); r != "ouch" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = in.Hook()("x")
	t.Fatal("no panic")
}

func TestRatesAreSeedKeyedAndScheduleFree(t *testing.T) {
	tasks := []string{"alpha", "beta", "gamma", "delta", "epsilon",
		"zeta", "eta", "theta", "iota", "kappa"}
	decide := func(seed uint64) []bool {
		in := New(seed)
		in.ErrorRate(0.5)
		hook := in.Hook()
		out := make([]bool, len(tasks))
		for i, task := range tasks {
			out[i] = hook(task) != nil
		}
		return out
	}
	a, b := decide(3), decide(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 3 decisions differ at %s", tasks[i])
		}
	}
	// Repeated fires on the same task are stable too.
	in := New(3)
	in.ErrorRate(0.5)
	hook := in.Hook()
	first := hook("alpha") != nil
	for i := 0; i < 5; i++ {
		if (hook("alpha") != nil) != first {
			t.Fatal("same task flipped between fires")
		}
	}
	// Different seeds disagree somewhere across ten tasks (overwhelmingly
	// likely; deterministic given the fixed seeds).
	c := decide(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 3 and 4 made identical decisions on all ten tasks")
	}
}

func TestRateBoundaries(t *testing.T) {
	in := New(9)
	in.ErrorRate(1.0)
	hook := in.Hook()
	if err := hook("anything"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rate 1.0 did not inject: %v", err)
	}
	in.Reset()
	if err := in.Hook()("anything"); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
	if len(in.Events()) != 0 {
		t.Error("Reset kept events")
	}
}

func TestKindString(t *testing.T) {
	if KindError.String() != "error" || KindPanic.String() != "panic" || KindDelay.String() != "delay" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown Kind string wrong")
	}
}
