// Package faults is a deterministic chaos-injection harness for the
// pipeline executor. An Injector produces a hook (installed via
// pipeline.Graph.SetInjectionHook) that fires errors, panics, or delays
// immediately before named tasks run.
//
// Every decision is a pure function of (seed, task name): rate-based
// rules hash the task name against the seed, so the same seed injects
// the same faults into the same tasks no matter how the scheduler
// interleaves workers — a failing chaos run reproduces from its seed
// alone. Explicit per-task rules (ErrorOn, PanicOn, DelayOn) fire
// unconditionally.
//
// The package is test-only by convention: production code never
// installs an injection hook, and with no hook installed the executor's
// fast path is untouched.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests
// can errors.Is a pipeline failure back to the harness.
var ErrInjected = errors.New("faults: injected failure")

// Kind classifies what an injection did.
type Kind int

const (
	// KindError made the task return an error.
	KindError Kind = iota + 1
	// KindPanic panicked in the task's goroutine.
	KindPanic
	// KindDelay slept before the task body ran.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event records one injection that actually fired.
type Event struct {
	Task string
	Kind Kind
}

// rule is an unconditional per-task injection.
type rule struct {
	kind  Kind
	err   error
	val   any
	delay time.Duration
}

// Injector holds the fault plan. Configure it (ErrorOn/PanicOn/DelayOn
// for targeted rules, ErrorRate/PanicRate/MaxDelay for seed-keyed
// random coverage), then install Hook() on a Graph. Safe for use from
// concurrent task goroutines.
type Injector struct {
	seed uint64

	mu     sync.Mutex
	rules  map[string]rule
	events []Event

	errRate   float64
	panicRate float64
	maxDelay  time.Duration
}

// New returns an empty injector whose rate-based decisions are keyed by
// seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rules: map[string]rule{}}
}

// ErrorOn makes every run of task fail with err (nil selects a default
// error naming the task). The error wraps ErrInjected.
func (in *Injector) ErrorOn(task string, err error) {
	if err == nil {
		err = fmt.Errorf("task %q", task)
	}
	in.mu.Lock()
	in.rules[task] = rule{kind: KindError, err: fmt.Errorf("%w: %w", ErrInjected, err)}
	in.mu.Unlock()
}

// PanicOn makes every run of task panic with value (nil selects a
// descriptive string).
func (in *Injector) PanicOn(task string, value any) {
	if value == nil {
		value = fmt.Sprintf("faults: injected panic in task %q", task)
	}
	in.mu.Lock()
	in.rules[task] = rule{kind: KindPanic, val: value}
	in.mu.Unlock()
}

// DelayOn makes every run of task sleep for d before its body runs.
func (in *Injector) DelayOn(task string, d time.Duration) {
	in.mu.Lock()
	in.rules[task] = rule{kind: KindDelay, delay: d}
	in.mu.Unlock()
}

// ErrorRate injects an error into the fraction p of task names (chosen
// by hashing each name against the seed, not by coin flips at run
// time — the selection is stable across runs and schedules).
func (in *Injector) ErrorRate(p float64) {
	in.mu.Lock()
	in.errRate = p
	in.mu.Unlock()
}

// PanicRate injects a panic into the fraction p of task names,
// seed-keyed like ErrorRate. Panic selection is checked before error
// selection when both rates are set.
func (in *Injector) PanicRate(p float64) {
	in.mu.Lock()
	in.panicRate = p
	in.mu.Unlock()
}

// MaxDelay sleeps every task for a seed-keyed duration in [0, d). Use
// small values: delays serialize chaos runs.
func (in *Injector) MaxDelay(d time.Duration) {
	in.mu.Lock()
	in.maxDelay = d
	in.mu.Unlock()
}

// Events returns a copy of the injections that fired, in firing order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Reset clears fired events and every rule and rate, keeping the seed.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.events = nil
	in.rules = map[string]rule{}
	in.errRate, in.panicRate, in.maxDelay = 0, 0, 0
}

// Hook returns the function to install with Graph.SetInjectionHook.
func (in *Injector) Hook() func(task string) error {
	return in.fire
}

// Salt constants decorrelate the per-decision hash streams so e.g. the
// 10% of tasks chosen for panics is independent of the 10% chosen for
// errors.
const (
	saltDelay = 0x9e3779b97f4a7c15
	saltPanic = 0xbf58476d1ce4e5b9
	saltError = 0x94d049bb133111eb
)

// fire applies the plan to one task run: targeted rule first, then
// seed-keyed delay, panic, and error in that order.
func (in *Injector) fire(task string) error {
	in.mu.Lock()
	r, targeted := in.rules[task]
	errRate, panicRate, maxDelay := in.errRate, in.panicRate, in.maxDelay
	in.mu.Unlock()

	if targeted {
		in.record(task, r.kind)
		switch r.kind {
		case KindDelay:
			time.Sleep(r.delay)
			return nil
		case KindPanic:
			panic(r.val)
		default:
			return r.err
		}
	}
	if maxDelay > 0 {
		if d := time.Duration(in.roll(task, saltDelay) * float64(maxDelay)); d > 0 {
			in.record(task, KindDelay)
			time.Sleep(d)
		}
	}
	if panicRate > 0 && in.roll(task, saltPanic) < panicRate {
		in.record(task, KindPanic)
		panic(fmt.Sprintf("faults: injected panic in task %q (seed %d)", task, in.seed))
	}
	if errRate > 0 && in.roll(task, saltError) < errRate {
		in.record(task, KindError)
		return fmt.Errorf("%w: task %q (seed %d)", ErrInjected, task, in.seed)
	}
	return nil
}

func (in *Injector) record(task string, k Kind) {
	in.mu.Lock()
	in.events = append(in.events, Event{Task: task, Kind: k})
	in.mu.Unlock()
}

// roll maps (seed, task, salt) to a uniform float64 in [0, 1) with an
// FNV-1a fold of the name followed by a splitmix64 finalizer. Pure and
// schedule-independent by construction.
func (in *Injector) roll(task string, salt uint64) float64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(task); i++ {
		h ^= uint64(task[i])
		h *= 1099511628211
	}
	z := h ^ in.seed ^ salt
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
