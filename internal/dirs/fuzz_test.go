package dirs

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	f.Add("day,day_label,county,sites_served,out_damage,out_power,out_backhaul\n0,Oct 25,3,100,1,2,3\n")
	f.Add("day,day_label,county,sites_served,out_damage,out_power,out_backhaul\n")
	f.Add("not,a,dirs,file\n")
	f.Add("day,day_label,county,sites_served,out_damage,out_power,out_backhaul\nX,Oct 25,3,100,1,2,3\n")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return
		}
		reports, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		// Successful parses re-serialize and re-parse identically.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, reports); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back) != len(reports) {
			t.Fatalf("round trip %d != %d", len(back), len(reports))
		}
		for i := range reports {
			if reports[i] != back[i] {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}
