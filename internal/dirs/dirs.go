// Package dirs models the FCC Disaster Information Reporting System: the
// voluntary per-day, per-county status reports cellular providers file
// during activations (§3.2). It converts a powergrid simulation outcome
// into DIRS-style report rows, aggregates them into the daily series of
// the paper's Figure 5, and round-trips the reports through CSV.
package dirs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fivealarms/internal/census"
	"fivealarms/internal/powergrid"
)

// Report is one provider-day-county DIRS filing (collapsed to one
// synthetic reporting provider: the paper aggregates across providers).
type Report struct {
	Day         int    // scenario day index
	DayLabel    string // calendar label
	CountyIdx   int    // index into the census county layer, -1 unknown
	SitesServed int
	OutDamage   int
	OutPower    int
	OutBackhaul int
}

// Out returns the total sites out in this report.
func (r Report) Out() int { return r.OutDamage + r.OutPower + r.OutBackhaul }

// Series is the Figure 5 data product: per-day totals by cause.
type Series struct {
	Labels   []string
	Damage   []int
	Power    []int
	Backhaul []int
}

// Total returns the sites out on day d.
func (s *Series) Total(d int) int { return s.Damage[d] + s.Power[d] + s.Backhaul[d] }

// Peak returns the day index and value of the maximum total outage.
func (s *Series) Peak() (int, int) {
	best, bestN := 0, -1
	for d := range s.Damage {
		if t := s.Total(d); t > bestN {
			best, bestN = d, t
		}
	}
	return best, bestN
}

// PowerShare returns the fraction of day-d outages caused by power loss.
func (s *Series) PowerShare(d int) float64 {
	t := s.Total(d)
	if t == 0 {
		return 0
	}
	return float64(s.Power[d]) / float64(t)
}

// BuildReports converts a simulation outcome into per-county daily
// reports. Counties resolve through the census layer; labels come from
// labels (reused cyclically if shorter than the day count).
func BuildReports(n *powergrid.Network, o *powergrid.Outcome, counties *census.Counties, labels []string) []Report {
	nDays := len(o.Causes)
	// site -> county resolved once.
	countyOf := make([]int, len(n.Sites))
	for i := range n.Sites {
		countyOf[i] = counties.CountyAt(n.Sites[i].XY)
	}
	var out []Report
	for d := 0; d < nDays; d++ {
		byCounty := map[int]*Report{}
		for i := range n.Sites {
			ci := countyOf[i]
			r := byCounty[ci]
			if r == nil {
				r = &Report{Day: d, DayLabel: label(labels, d), CountyIdx: ci}
				byCounty[ci] = r
			}
			r.SitesServed++
			switch o.Causes[d][i] {
			case powergrid.Damage:
				r.OutDamage++
			case powergrid.PowerLoss:
				r.OutPower++
			case powergrid.BackhaulLoss:
				r.OutBackhaul++
			}
		}
		// Deterministic order: ascending county index.
		keys := make([]int, 0, len(byCounty))
		for k := range byCounty {
			keys = append(keys, k)
		}
		sortInts(keys)
		for _, k := range keys {
			out = append(out, *byCounty[k])
		}
	}
	return out
}

// Aggregate collapses reports into the Figure 5 daily series.
func Aggregate(reports []Report, nDays int, labels []string) *Series {
	s := &Series{
		Labels:   make([]string, nDays),
		Damage:   make([]int, nDays),
		Power:    make([]int, nDays),
		Backhaul: make([]int, nDays),
	}
	for d := 0; d < nDays; d++ {
		s.Labels[d] = label(labels, d)
	}
	for _, r := range reports {
		if r.Day < 0 || r.Day >= nDays {
			continue
		}
		s.Damage[r.Day] += r.OutDamage
		s.Power[r.Day] += r.OutPower
		s.Backhaul[r.Day] += r.OutBackhaul
	}
	return s
}

// CountiesReporting returns the number of distinct counties present in
// the reports (the paper's activation covered 37 CA counties).
func CountiesReporting(reports []Report) int {
	seen := map[int]bool{}
	for _, r := range reports {
		seen[r.CountyIdx] = true
	}
	return len(seen)
}

var csvHeader = []string{"day", "day_label", "county", "sites_served", "out_damage", "out_power", "out_backhaul"}

// WriteCSV serializes reports.
func WriteCSV(w io.Writer, reports []Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dirs: writing header: %w", err)
	}
	for i, r := range reports {
		rec := []string{
			strconv.Itoa(r.Day), r.DayLabel, strconv.Itoa(r.CountyIdx),
			strconv.Itoa(r.SitesServed), strconv.Itoa(r.OutDamage),
			strconv.Itoa(r.OutPower), strconv.Itoa(r.OutBackhaul),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dirs: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dirs: flushing: %w", err)
	}
	return nil
}

// ReadCSV parses reports written by WriteCSV.
func ReadCSV(r io.Reader) ([]Report, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	if _, err := cr.Read(); err != nil {
		return nil, fmt.Errorf("dirs: reading header: %w", err)
	}
	var out []Report
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dirs: line %d: %w", line, err)
		}
		var rep Report
		fields := []*int{&rep.Day, nil, &rep.CountyIdx, &rep.SitesServed, &rep.OutDamage, &rep.OutPower, &rep.OutBackhaul}
		for i, dst := range fields {
			if dst == nil {
				continue
			}
			v, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("dirs: line %d field %s: %w", line, csvHeader[i], err)
			}
			*dst = v
		}
		rep.DayLabel = rec[1]
		out = append(out, rep)
	}
	return out, nil
}

func label(labels []string, d int) string {
	if len(labels) == 0 {
		return fmt.Sprintf("day-%d", d)
	}
	return labels[d%len(labels)]
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
