package dirs

import (
	"bytes"
	"testing"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
)

var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testWHP      = whp.Build(testWorld, testWorld.Grid, whp.Config{})
	testData     = cellnet.Generate(testWorld, cellnet.GenConfig{Seed: 7, Total: 40000})
	testCounties = census.Synthesize(testWorld, 7)
)

func buildCase(t testing.TB) (*powergrid.Network, *powergrid.Outcome, int) {
	sw := testWorld.ToXY(geom.Point{X: -124.5, Y: 32.3})
	ne := testWorld.ToXY(geom.Point{X: -114.0, Y: 42.1})
	region := geom.NewBBox(sw, ne)
	net := powergrid.BuildNetwork(testData, testWHP, region, powergrid.NetConfig{Seed: 7})
	season := wildfire.Simulate2019(wildfire.NewSimulator(testWorld, testWHP), 7, 15)
	var fires []*wildfire.Fire
	for i := range season.Mapped {
		if region.Intersects(season.Mapped[i].BBox()) {
			fires = append(fires, &season.Mapped[i])
		}
	}
	sc := powergrid.NewFall2019Scenario(fires)
	return net, net.Simulate(sc, 7), len(sc.Days)
}

func TestBuildReportsAndAggregate(t *testing.T) {
	net, outcome, nDays := buildCase(t)
	reports := BuildReports(net, outcome, testCounties, powergrid.Fall2019DayLabels)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	series := Aggregate(reports, nDays, powergrid.Fall2019DayLabels)

	// Aggregated series must equal the outcome's daily cause totals.
	for d := 0; d < nDays; d++ {
		if series.Power[d] != outcome.OutByCause[d][powergrid.PowerLoss] {
			t.Errorf("day %d power %d != outcome %d", d, series.Power[d],
				outcome.OutByCause[d][powergrid.PowerLoss])
		}
		if series.Damage[d] != outcome.OutByCause[d][powergrid.Damage] {
			t.Errorf("day %d damage mismatch", d)
		}
		if series.Backhaul[d] != outcome.OutByCause[d][powergrid.BackhaulLoss] {
			t.Errorf("day %d backhaul mismatch", d)
		}
	}
	if series.Labels[3] != "Oct 28" {
		t.Errorf("label[3] = %q", series.Labels[3])
	}

	peakDay, peakN := series.Peak()
	if peakDay != 3 || peakN == 0 {
		t.Errorf("peak = day %d (%d sites)", peakDay, peakN)
	}
	if share := series.PowerShare(peakDay); share < 0.6 {
		t.Errorf("power share at peak = %v", share)
	}
}

func TestSitesServedConstant(t *testing.T) {
	net, outcome, _ := buildCase(t)
	reports := BuildReports(net, outcome, testCounties, powergrid.Fall2019DayLabels)
	// Summing sites served across counties on any day gives the network
	// size.
	byDay := map[int]int{}
	for _, r := range reports {
		byDay[r.Day] += r.SitesServed
	}
	for d, n := range byDay {
		if n != len(net.Sites) {
			t.Errorf("day %d sites served %d != %d", d, n, len(net.Sites))
		}
	}
}

func TestCountiesReporting(t *testing.T) {
	net, outcome, _ := buildCase(t)
	reports := BuildReports(net, outcome, testCounties, powergrid.Fall2019DayLabels)
	n := CountiesReporting(reports)
	// The paper's activation covered 37 counties; the synthetic CA window
	// should span tens of counties.
	if n < 10 {
		t.Errorf("counties reporting = %d, want tens", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	net, outcome, _ := buildCase(t)
	reports := BuildReports(net, outcome, testCounties, powergrid.Fall2019DayLabels)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reports); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reports) {
		t.Fatalf("round trip %d != %d", len(back), len(reports))
	}
	for i := range reports {
		if reports[i] != back[i] {
			t.Fatalf("report %d mismatch: %+v vs %+v", i, reports[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	bad := "day,day_label,county,sites_served,out_damage,out_power,out_backhaul\nX,Oct 25,1,2,3,4,5\n"
	if _, err := ReadCSV(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("non-numeric day should error")
	}
}

func TestReportOut(t *testing.T) {
	r := Report{OutDamage: 1, OutPower: 2, OutBackhaul: 3}
	if r.Out() != 6 {
		t.Errorf("Out = %d", r.Out())
	}
}

func TestSeriesEmptyDay(t *testing.T) {
	s := Aggregate(nil, 3, nil)
	if s.Total(0) != 0 || s.PowerShare(0) != 0 {
		t.Error("empty series should be zero")
	}
	if s.Labels[1] != "day-1" {
		t.Errorf("fallback label = %q", s.Labels[1])
	}
}
