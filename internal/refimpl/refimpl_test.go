package refimpl

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/rtree"
)

// The reference implementations are the ground truth of the differential
// suite, so they get their own hand-computed sanity tests: if a twin
// drifted, every diff test downstream would chase a phantom.

func unitSquare() geom.Ring {
	return geom.Ring{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
}

func TestRingContainsHandCases(t *testing.T) {
	sq := unitSquare()
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Pt(2, 2), true},
		{geom.Pt(-1, 2), false},
		{geom.Pt(5, 2), false},
		{geom.Pt(2, -1), false},
		{geom.Pt(2, 5), false},
		{geom.Pt(0.001, 0.001), true},
		{geom.Pt(3.999, 3.999), true},
	}
	for _, c := range cases {
		if got := RingContains(sq, c.p); got != c.want {
			t.Errorf("RingContains(square, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if RingContains(geom.Ring{geom.Pt(0, 0), geom.Pt(1, 1)}, geom.Pt(0.5, 0.5)) {
		t.Error("two-vertex ring must contain nothing")
	}
	if RingContains(nil, geom.Pt(0, 0)) {
		t.Error("nil ring must contain nothing")
	}
}

func TestPolygonContainsRespectsHoles(t *testing.T) {
	pg := geom.Polygon{
		Exterior: unitSquare(),
		Holes:    []geom.Ring{{geom.Pt(1, 1), geom.Pt(3, 1), geom.Pt(3, 3), geom.Pt(1, 3)}},
	}
	if !PolygonContains(pg, geom.Pt(0.5, 0.5)) {
		t.Error("point between exterior and hole must be inside")
	}
	if PolygonContains(pg, geom.Pt(2, 2)) {
		t.Error("point inside hole must be outside")
	}
	m := geom.MultiPolygon{pg, {Exterior: geom.Ring{geom.Pt(10, 10), geom.Pt(12, 10), geom.Pt(12, 12), geom.Pt(10, 12)}}}
	if !MultiPolygonContains(m, geom.Pt(11, 11)) {
		t.Error("point in second member must be inside")
	}
	if MultiPolygonContains(m, geom.Pt(7, 7)) {
		t.Error("point between members must be outside")
	}
}

func TestSearchAndNearestBoxes(t *testing.T) {
	items := []rtree.Item{
		{Box: geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, ID: 0},
		{Box: geom.BBox{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, ID: 1},
		{Box: geom.BBox{MinX: 0.5, MinY: 0.5, MaxX: 2.5, MaxY: 2.5}, ID: 2},
	}
	got := SearchBoxes(items, geom.BBox{MinX: 0.6, MinY: 0.6, MaxX: 0.9, MaxY: 0.9})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("SearchBoxes = %v, want [0 2]", got)
	}
	if got := SearchBoxes(items, geom.EmptyBBox()); got != nil {
		t.Errorf("empty query must match nothing, got %v", got)
	}
	id, d := NearestBox(items, geom.Pt(5, 3))
	if id != 1 || d != 2 {
		t.Errorf("NearestBox = (%d, %g), want (1, 2)", id, d)
	}
	if id, d := NearestBox(nil, geom.Pt(0, 0)); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("NearestBox(empty) = (%d, %g), want (-1, +Inf)", id, d)
	}
	if d := BoxPointDistance(geom.EmptyBBox(), geom.Pt(0, 0)); !math.IsInf(d, 1) {
		t.Errorf("distance to empty box = %g, want +Inf", d)
	}
	if got := SearchPointBoxes(items, geom.Pt(0.75, 0.75)); len(got) != 2 {
		t.Errorf("SearchPointBoxes = %v, want two hits", got)
	}
}

func TestFillMultiPolygonHandCase(t *testing.T) {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 1, NX: 4, NY: 4}
	// Square covering cell centers (0.5..2.5)² → the 3x3 lower-left block.
	m := geom.MultiPolygon{{Exterior: geom.Ring{geom.Pt(0, 0), geom.Pt(2.9, 0), geom.Pt(2.9, 2.9), geom.Pt(0, 2.9)}}}
	mask := FillMultiPolygon(g, m)
	if got := mask.Count(); got != 9 {
		t.Fatalf("filled %d cells, want 9", got)
	}
	if mask.Get(3, 0) || mask.Get(0, 3) {
		t.Error("cells beyond the square must stay clear")
	}
	// Union semantics: filling again into the same mask changes nothing.
	FillMultiPolygonInto(mask, m)
	if got := mask.Count(); got != 9 {
		t.Errorf("refill changed count to %d", got)
	}
}

func TestDistanceTransformHandCase(t *testing.T) {
	g := raster.Geometry{MinX: 0, MinY: 0, CellSize: 10, NX: 3, NY: 3}
	mask := raster.NewBitGrid(g)
	mask.Set(0, 0, true)
	dt := DistanceTransform(mask)
	if dt.At(0, 0) != 0 {
		t.Errorf("set cell distance = %g, want 0", dt.At(0, 0))
	}
	if dt.At(2, 0) != 20 {
		t.Errorf("(2,0) distance = %g, want 20", dt.At(2, 0))
	}
	if want := math.Sqrt(8) * 10; dt.At(2, 2) != want {
		t.Errorf("(2,2) distance = %g, want %g", dt.At(2, 2), want)
	}
	empty := DistanceTransform(raster.NewBitGrid(g))
	if !math.IsInf(empty.At(1, 1), 1) {
		t.Error("empty mask must transform to +Inf")
	}
	grown := DilateByDistance(mask, 10)
	if grown.Count() != 3 { // (0,0), (1,0), (0,1); diagonal is sqrt(2)*10 > 10
		t.Errorf("dilate by one cell = %d cells, want 3", grown.Count())
	}
	if clone := DilateByDistance(mask, 0); clone.Count() != 1 {
		t.Error("dist<=0 must clone")
	}
}

func TestPointQueries(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 5, Y: 5}, {X: 1, Y: 0}}
	got := RangeQuery(pts, geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if len(got) != 4 {
		t.Errorf("RangeQuery = %v, want the four unit-box points (duplicates included)", got)
	}
	if got := RadiusQuery(pts, geom.Pt(0, 0), 1); len(got) != 4 {
		t.Errorf("RadiusQuery r=1 = %v, want 4 hits (boundary inclusive, duplicates included)", got)
	}
	if got := RadiusQuery(pts, geom.Pt(0, 0), -1); got != nil {
		t.Errorf("negative radius must match nothing, got %v", got)
	}
}

func TestAlbersSelfConsistency(t *testing.T) {
	a := Albers{Phi1: 29.5, Phi2: 45.5, Phi0: 23, Lon0: -96}
	// The origin maps to (0, 0) by construction.
	at := a.Forward(geom.Pt(-96, 23))
	if math.Abs(at.X) > 1e-6 || math.Abs(at.Y) > 1e-6 {
		t.Errorf("origin maps to %v, want (0,0)", at)
	}
	for _, ll := range []geom.Point{{X: -120, Y: 39}, {X: -75, Y: 41}, {X: -96, Y: 23}, {X: -179.9, Y: 30}} {
		rt := a.Inverse(a.Forward(ll))
		if math.Abs(rt.X-ll.X) > 1e-9 || math.Abs(rt.Y-ll.Y) > 1e-9 {
			t.Errorf("round trip of %v = %v", ll, rt)
		}
	}
}
