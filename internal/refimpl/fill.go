package refimpl

import (
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
)

// FillMultiPolygon is the per-cell twin of raster.FillMultiPolygon /
// FillMultiPolygonInto: every cell of the grid is tested individually —
// the cell center against the even-odd union of each polygon's rings —
// with no scanline, no span fill and no bbox clipping beyond skipping
// whole polygons that cannot touch the grid. A cell is set when any
// member polygon contains its center.
func FillMultiPolygon(g raster.Geometry, m geom.MultiPolygon) *raster.BitGrid {
	mask := raster.NewBitGrid(g)
	FillMultiPolygonInto(mask, m)
	return mask
}

// FillMultiPolygonInto sets into mask every cell whose center lies inside
// any member polygon, leaving already-set cells set (the union semantics
// of raster.FillMultiPolygonInto).
func FillMultiPolygonInto(mask *raster.BitGrid, m geom.MultiPolygon) {
	g := mask.Geometry
	for _, pg := range m {
		rings := make([]geom.Ring, 0, 1+len(pg.Holes))
		rings = append(rings, pg.Exterior)
		rings = append(rings, pg.Holes...)
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if mask.Get(cx, cy) {
					continue
				}
				if RingsContainEvenOdd(rings, g.Center(cx, cy)) {
					mask.Set(cx, cy, true)
				}
			}
		}
	}
}
