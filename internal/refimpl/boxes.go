package refimpl

import (
	"math"

	"fivealarms/internal/geom"
	"fivealarms/internal/rtree"
)

// SearchBoxes is the brute-force twin of rtree.Tree.Search: the IDs of
// every item whose box intersects query, in input order. An empty query
// matches nothing, mirroring the tree's early return.
func SearchBoxes(items []rtree.Item, query geom.BBox) []int {
	var out []int
	if query.IsEmpty() {
		return out
	}
	for _, it := range items {
		if it.Box.Intersects(query) {
			out = append(out, it.ID)
		}
	}
	return out
}

// SearchPointBoxes is the brute-force twin of rtree.Tree.SearchPoint.
func SearchPointBoxes(items []rtree.Item, p geom.Point) []int {
	return SearchBoxes(items, geom.BBox{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// NearestBox is the brute-force twin of rtree.Tree.Nearest: the ID of the
// item whose box is nearest to p and that distance, (-1, +Inf) when items
// is empty. Ties keep the earliest item, but callers comparing against
// the tree should compare distances, not IDs — the tree's traversal order
// legitimately breaks ties differently.
func NearestBox(items []rtree.Item, p geom.Point) (int, float64) {
	bestID := -1
	bestD := math.Inf(1)
	for _, it := range items {
		if d := BoxPointDistance(it.Box, p); d < bestD {
			bestD = d
			bestID = it.ID
		}
	}
	return bestID, bestD
}

// BoxPointDistance is the planar distance from p to the box (0 inside),
// +Inf for an empty box.
func BoxPointDistance(b geom.BBox, p geom.Point) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	dx := 0.0
	if p.X < b.MinX {
		dx = b.MinX - p.X
	} else if p.X > b.MaxX {
		dx = p.X - b.MaxX
	}
	dy := 0.0
	if p.Y < b.MinY {
		dy = b.MinY - p.Y
	} else if p.Y > b.MaxY {
		dy = p.Y - b.MaxY
	}
	return math.Hypot(dx, dy)
}
