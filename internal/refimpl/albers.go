package refimpl

import (
	"math"

	"fivealarms/internal/geom"
)

// Albers is the reference spherical Albers Equal-Area Conic projection,
// transcribed directly from Snyder (1987), "Map Projections — A Working
// Manual", equations 14-1 through 14-11 (spherical form). Unlike
// proj.Albers it caches nothing: every call recomputes the projection
// constants n, C and rho0 from the defining parallels, so a bug in the
// optimized constructor's caching cannot hide in the twin.
type Albers struct {
	// Phi1, Phi2 are the standard parallels, Phi0 the latitude of origin
	// and Lon0 the central meridian, all in degrees.
	Phi1, Phi2, Phi0, Lon0 float64
}

// constants returns n, C and rho0 per Snyder eq. 14-3, 14-5 and 14-6.
func (a Albers) constants() (n, c, rho0 float64) {
	r1 := geom.Deg2Rad(a.Phi1)
	r2 := geom.Deg2Rad(a.Phi2)
	n = (math.Sin(r1) + math.Sin(r2)) / 2
	c = math.Cos(r1)*math.Cos(r1) + 2*n*math.Sin(r1)
	rho0 = geom.EarthRadiusMeters * math.Sqrt(c-2*n*math.Sin(geom.Deg2Rad(a.Phi0))) / n
	return n, c, rho0
}

// Forward projects geographic (lon, lat) degrees to planar meters
// (Snyder eq. 14-1, 14-2, 14-4).
func (a Albers) Forward(ll geom.Point) geom.Point {
	n, c, rho0 := a.constants()
	phi := geom.Deg2Rad(ll.Y)
	lam := geom.Deg2Rad(ll.X)
	rho := geom.EarthRadiusMeters * math.Sqrt(c-2*n*math.Sin(phi)) / n
	theta := n * (lam - geom.Deg2Rad(a.Lon0))
	return geom.Point{
		X: rho * math.Sin(theta),
		Y: rho0 - rho*math.Cos(theta),
	}
}

// Inverse unprojects planar meters back to geographic degrees (Snyder
// eq. 14-8 through 14-11), clamping the asin argument against rounding
// exactly as the optimized implementation documents.
func (a Albers) Inverse(xy geom.Point) geom.Point {
	n, c, rho0 := a.constants()
	dy := rho0 - xy.Y
	rho := math.Hypot(xy.X, dy)
	theta := math.Atan2(xy.X, dy)
	if n < 0 {
		rho = -rho
		theta = math.Atan2(-xy.X, -dy)
	}
	sinPhi := (c - (rho*n/geom.EarthRadiusMeters)*(rho*n/geom.EarthRadiusMeters)) / (2 * n)
	if sinPhi > 1 {
		sinPhi = 1
	} else if sinPhi < -1 {
		sinPhi = -1
	}
	return geom.Point{
		X: geom.Rad2Deg(geom.Deg2Rad(a.Lon0) + theta/n),
		Y: geom.Rad2Deg(math.Asin(sinPhi)),
	}
}
