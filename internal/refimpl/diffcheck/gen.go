package diffcheck

import (
	"math"
	"math/rand"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/rtree"
)

// Generators: every adversarial input family the differential drivers
// sweep. All of them are pure functions of the seed (math/rand with an
// explicit source — never the global generator), so a divergence
// reproduces from the seed alone.

// ContainmentCase is one generated point-in-polygon scenario.
type ContainmentCase struct {
	Desc   string
	Ring   geom.Ring
	Probes []geom.Point
}

// Rectilinear reports whether every edge of r (including the closing
// edge) is axis-aligned. On rectilinear rings both ray-cast forms are
// exact, so even on-boundary probes must agree bit for bit; on anything
// else the boundary carve-out applies.
func Rectilinear(r geom.Ring) bool {
	n := len(r)
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if a.X != b.X && a.Y != b.Y {
			return false
		}
	}
	return true
}

// starRing builds a simple star-shaped ring of n vertices around c with
// random radii (angles strictly increase, so it never self-intersects).
func starRing(rng *rand.Rand, c geom.Point, n int, scale float64) geom.Ring {
	r := make(geom.Ring, 0, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		rad := (1 + 9*rng.Float64()) * scale
		r = append(r, geom.Point{X: c.X + rad*math.Cos(a), Y: c.Y + rad*math.Sin(a)})
	}
	return r
}

// histogramRing builds a rectilinear simple polygon on the integer
// lattice: k unit-width columns of random positive integer height,
// traced counter-clockwise. Adjacent equal heights yield collinear
// vertices; height-1 columns yield the staircase degeneracies the
// scanline index has to survive.
func histogramRing(rng *rand.Rand, k int, offset geom.Point) geom.Ring {
	heights := make([]int, k)
	for i := range heights {
		heights[i] = 1 + rng.Intn(6)
	}
	r := geom.Ring{geom.Point{X: offset.X, Y: offset.Y}, geom.Point{X: offset.X + float64(k), Y: offset.Y}}
	for i := k - 1; i >= 0; i-- {
		top := offset.Y + float64(heights[i])
		r = append(r, geom.Point{X: offset.X + float64(i+1), Y: top})
		r = append(r, geom.Point{X: offset.X + float64(i), Y: top})
	}
	return r
}

// degenerateRing picks one of the shapes the naive predicate rejects or
// barely tolerates: empty, single vertex, two vertices, all-collinear,
// duplicated vertices, and a zero-area spike.
func degenerateRing(rng *rand.Rand) (geom.Ring, string) {
	switch rng.Intn(6) {
	case 0:
		return nil, "nil ring"
	case 1:
		return geom.Ring{geom.Pt(3, 4)}, "single vertex"
	case 2:
		return geom.Ring{geom.Pt(0, 0), geom.Pt(5, 5)}, "two vertices"
	case 3:
		return geom.Ring{geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(4, 4), geom.Pt(6, 6)}, "collinear"
	case 4:
		return geom.Ring{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4), geom.Pt(0, 4)}, "duplicate vertices"
	default:
		return geom.Ring{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(8, 0), geom.Pt(4, 0), geom.Pt(2, 3)}, "zero-area spike"
	}
}

// sharedVertexRing pinches a hexagon so one vertex appears twice — the
// shared-vertex topology GeoJSON perimeters produce when two lobes of a
// burn meet at a point.
func sharedVertexRing(c geom.Point, scale float64) geom.Ring {
	p := func(x, y float64) geom.Point { return geom.Point{X: c.X + x*scale, Y: c.Y + y*scale} }
	return geom.Ring{p(0, 0), p(2, 1), p(4, 0), p(4, 3), p(2, 1), p(0, 3)}
}

// containmentProbes builds the probe battery for a ring: uniform points
// in the buffered bbox, every vertex, every edge midpoint, near-vertex
// jitters and far-outside points.
func containmentProbes(rng *rand.Rand, r geom.Ring, n int) []geom.Point {
	bb := r.BBox()
	if bb.IsEmpty() {
		bb = geom.BBox{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	}
	bb = bb.Buffer(1 + bb.Width()*0.2)
	probes := make([]geom.Point, 0, n+3*len(r)+2)
	for i := 0; i < n; i++ {
		probes = append(probes, geom.Point{
			X: bb.MinX + rng.Float64()*bb.Width(),
			Y: bb.MinY + rng.Float64()*bb.Height(),
		})
	}
	scale := 1 + math.Max(math.Abs(bb.MaxX), math.Abs(bb.MaxY))
	for i, v := range r {
		probes = append(probes, v) // exactly on a vertex
		next := r[(i+1)%len(r)]
		probes = append(probes, geom.Point{X: (v.X + next.X) / 2, Y: (v.Y + next.Y) / 2}) // on an edge
		probes = append(probes, geom.Point{X: v.X + 1e-9*scale, Y: v.Y - 1e-9*scale})     // jittered
	}
	probes = append(probes,
		geom.Point{X: bb.MaxX + 1000*scale, Y: bb.MaxY + 1000*scale},
		geom.Point{X: bb.MinX - 1000*scale, Y: bb.MinY - 1000*scale})
	return probes
}

// GenContainmentCase derives one containment scenario from the seed,
// cycling through the ring families: smooth stars, rectilinear
// histograms, degenerate shapes, shared-vertex pinches, huge-coordinate
// and sub-epsilon rings.
func GenContainmentCase(seed int64) ContainmentCase {
	rng := rand.New(rand.NewSource(seed))
	var (
		ring geom.Ring
		desc string
	)
	switch seed % 6 {
	case 0:
		ring = starRing(rng, geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, 3+rng.Intn(50), 1)
		desc = "star"
	case 1:
		ring = histogramRing(rng, 2+rng.Intn(12), geom.Point{X: float64(rng.Intn(20)), Y: float64(rng.Intn(20))})
		desc = "rectilinear histogram"
	case 2:
		ring, desc = degenerateRing(rng)
	case 3:
		ring = sharedVertexRing(geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}, 1+rng.Float64()*4)
		desc = "shared vertex"
	case 4:
		ring = starRing(rng, geom.Point{X: 1e7 + rng.Float64()*1e6, Y: -2e7 + rng.Float64()*1e6}, 3+rng.Intn(30), 1e5)
		desc = "huge coordinates"
	default:
		ring = starRing(rng, geom.Point{X: rng.Float64(), Y: rng.Float64()}, 3+rng.Intn(20), 1e-9)
		desc = "sub-epsilon ring"
	}
	return ContainmentCase{
		Desc:   desc,
		Ring:   ring,
		Probes: containmentProbes(rng, ring, 150),
	}
}

// GenMultiPolygon derives a multipolygon from the seed: one to four
// members (smooth or rectilinear, optionally holed, possibly
// overlapping), with dedicated seeds for the empty multipolygon and a
// single huge member that swallows everything else.
func GenMultiPolygon(seed int64) (geom.MultiPolygon, string) {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	switch seed % 8 {
	case 6:
		return nil, "empty multipolygon"
	case 7:
		return geom.MultiPolygon{{Exterior: starRing(rng, geom.Point{X: 0, Y: 0}, 24, 1e6)}}, "huge polygon"
	}
	n := 1 + rng.Intn(4)
	m := make(geom.MultiPolygon, 0, n)
	for i := 0; i < n; i++ {
		c := geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		var pg geom.Polygon
		if rng.Intn(2) == 0 {
			pg.Exterior = starRing(rng, c, 6+rng.Intn(20), 1+rng.Float64()*2)
		} else {
			pg.Exterior = histogramRing(rng, 2+rng.Intn(8), geom.Point{X: math.Floor(c.X), Y: math.Floor(c.Y)})
		}
		if rng.Intn(3) == 0 {
			// A hole strictly inside: shrink toward the centroid.
			cen := pg.Exterior.Centroid()
			hole := make(geom.Ring, len(pg.Exterior))
			for j, v := range pg.Exterior {
				hole[j] = geom.Point{X: cen.X + (v.X-cen.X)*0.4, Y: cen.Y + (v.Y-cen.Y)*0.4}
			}
			pg.Holes = []geom.Ring{hole}
		}
		m = append(m, pg)
	}
	return m, "mixed members"
}

// FillCase is one rasterization scenario: a small grid whose origin is
// offset so no cell center can land exactly on a lattice-aligned edge,
// plus a generated multipolygon scaled into the grid.
type FillCase struct {
	Desc string
	Geom raster.Geometry
	M    geom.MultiPolygon
}

// GenFillCase derives one rasterization scenario from the seed.
func GenFillCase(seed int64) FillCase {
	rng := rand.New(rand.NewSource(seed ^ 0x0f111ca5e))
	m, desc := GenMultiPolygon(seed)
	bb := m.BBox()
	if bb.IsEmpty() {
		bb = geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	}
	nx := 4 + rng.Intn(40)
	ny := 4 + rng.Intn(40)
	cell := bb.Width() / float64(nx)
	if cell <= 0 || math.IsNaN(cell) {
		cell = 1
	}
	// The 0.137 fractional offset keeps cell centers off the integer
	// lattice that rectilinear generators draw their edges on.
	g := raster.Geometry{
		MinX:     bb.MinX - cell*0.137,
		MinY:     bb.MinY - cell*0.137,
		CellSize: cell,
		NX:       nx,
		NY:       ny,
	}
	return FillCase{Desc: desc, Geom: g, M: m}
}

// GenMaskCase derives one distance-transform mask from the seed: random
// densities plus the structured worst cases — empty, full, single cell,
// and set cells confined to edge rows/columns (the off-by-one territory
// of the two-pass transform).
func GenMaskCase(seed int64) (*raster.BitGrid, string) {
	rng := rand.New(rand.NewSource(seed ^ 0x0d157a9ce))
	g := raster.Geometry{
		MinX:     rng.Float64() * 100,
		MinY:     rng.Float64() * 100,
		CellSize: []float64{1, 30, 270}[rng.Intn(3)],
		NX:       1 + rng.Intn(24),
		NY:       1 + rng.Intn(24),
	}
	mask := raster.NewBitGrid(g)
	switch seed % 6 {
	case 0:
		return mask, "empty mask"
	case 1:
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				mask.Set(cx, cy, true)
			}
		}
		return mask, "full mask"
	case 2:
		mask.Set(rng.Intn(g.NX), rng.Intn(g.NY), true)
		return mask, "single cell"
	case 3:
		// Edge rows and columns only.
		for cx := 0; cx < g.NX; cx++ {
			if rng.Intn(2) == 0 {
				mask.Set(cx, 0, true)
			}
			if rng.Intn(2) == 0 {
				mask.Set(cx, g.NY-1, true)
			}
		}
		for cy := 0; cy < g.NY; cy++ {
			if rng.Intn(2) == 0 {
				mask.Set(0, cy, true)
			}
			if rng.Intn(2) == 0 {
				mask.Set(g.NX-1, cy, true)
			}
		}
		return mask, "edge rows/cols"
	default:
		density := rng.Float64() * 0.5
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if rng.Float64() < density {
					mask.Set(cx, cy, true)
				}
			}
		}
		return mask, "random density"
	}
}

// BoxesCase is one R-tree scenario: an item set (with the bulk-load
// degeneracies: duplicates, colinear centers, zero-area boxes, nesting),
// a fanout, and query boxes plus probe points.
type BoxesCase struct {
	Desc    string
	Items   []rtree.Item
	Fanout  int
	Queries []geom.BBox
	Probes  []geom.Point
}

// GenBoxesCase derives one R-tree scenario from the seed.
func GenBoxesCase(seed int64) BoxesCase {
	rng := rand.New(rand.NewSource(seed ^ 0x0b0c5ca5e))
	var items []rtree.Item
	var desc string
	n := rng.Intn(200)
	mk := func(i int, b geom.BBox) rtree.Item { return rtree.Item{Box: b, ID: i} }
	switch seed % 5 {
	case 0:
		desc = "random boxes"
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			items = append(items, mk(i, geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*50, MaxY: y + rng.Float64()*50}))
		}
	case 1:
		desc = "all duplicates"
		b := geom.BBox{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}
		for i := 0; i < 1+n; i++ {
			items = append(items, mk(i, b))
		}
	case 2:
		desc = "colinear centers"
		for i := 0; i < 1+n; i++ {
			x := float64(i) * 3
			items = append(items, mk(i, geom.BBox{MinX: x, MinY: 50, MaxX: x + 2, MaxY: 52}))
		}
	case 3:
		desc = "zero-area boxes"
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			items = append(items, mk(i, geom.BBox{MinX: x, MinY: y, MaxX: x, MaxY: y}))
		}
	default:
		desc = "nested boxes"
		for i := 0; i < 1+n%40; i++ {
			d := float64(i)
			items = append(items, mk(i, geom.BBox{MinX: d, MinY: d, MaxX: 100 - d, MaxY: 100 - d}))
		}
	}
	c := BoxesCase{Desc: desc, Items: items, Fanout: 2 + rng.Intn(16)}
	for q := 0; q < 12; q++ {
		x, y := rng.Float64()*1000-100, rng.Float64()*1000-100
		c.Queries = append(c.Queries, geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*200, MaxY: y + rng.Float64()*200})
		c.Probes = append(c.Probes, geom.Point{X: x, Y: y})
	}
	c.Queries = append(c.Queries, geom.EmptyBBox())
	if len(items) > 0 {
		// Exact-boundary queries: an item's own box and its corner point.
		b := items[rng.Intn(len(items))].Box
		c.Queries = append(c.Queries, b)
		c.Probes = append(c.Probes, geom.Point{X: b.MinX, Y: b.MinY}, geom.Point{X: b.MaxX, Y: b.MaxY})
	}
	return c
}

// PointsCase is one point-index scenario: a point set (duplicates,
// collinear runs, identical points) plus window and radius queries,
// including radii that land exactly on a point distance.
type PointsCase struct {
	Desc     string
	Pts      []geom.Point
	CellSize float64
	Windows  []geom.BBox
	Centers  []geom.Point
	Radii    []float64
}

// GenPointsCase derives one point-index scenario from the seed.
func GenPointsCase(seed int64) PointsCase {
	rng := rand.New(rand.NewSource(seed ^ 0x9017175ca5e))
	var pts []geom.Point
	var desc string
	n := rng.Intn(400)
	switch seed % 5 {
	case 0:
		desc = "uniform points"
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		}
	case 1:
		desc = "duplicates"
		p := geom.Point{X: 5, Y: 5}
		for i := 0; i < 1+n; i++ {
			pts = append(pts, p)
		}
	case 2:
		desc = "collinear"
		for i := 0; i < 1+n; i++ {
			pts = append(pts, geom.Point{X: float64(i), Y: 7})
		}
	case 3:
		desc = "two clusters far apart"
		for i := 0; i < 1+n; i++ {
			c := geom.Point{X: 0, Y: 0}
			if i%2 == 0 {
				c = geom.Point{X: 1e6, Y: 1e6}
			}
			pts = append(pts, geom.Point{X: c.X + rng.Float64(), Y: c.Y + rng.Float64()})
		}
	default:
		desc = "single point"
		pts = append(pts, geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	c := PointsCase{Desc: desc, Pts: pts, CellSize: []float64{0, 0.5, 10, 1e5}[rng.Intn(4)]}
	for q := 0; q < 10; q++ {
		x, y := rng.Float64()*1100-50, rng.Float64()*1100-50
		c.Windows = append(c.Windows, geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*300, MaxY: y + rng.Float64()*300})
		c.Centers = append(c.Centers, geom.Point{X: x, Y: y})
		c.Radii = append(c.Radii, rng.Float64()*300)
	}
	if len(pts) > 1 {
		// A window whose edges pass exactly through a point, and a radius
		// exactly equal to a point distance (boundary inclusivity).
		p := pts[rng.Intn(len(pts))]
		c.Windows = append(c.Windows, geom.BBox{MinX: p.X, MinY: p.Y, MaxX: p.X + 10, MaxY: p.Y + 10})
		q := pts[rng.Intn(len(pts))]
		c.Centers = append(c.Centers, q)
		c.Radii = append(c.Radii, p.DistanceTo(q))
	}
	c.Centers = append(c.Centers, geom.Point{X: -1e9, Y: -1e9})
	c.Radii = append(c.Radii, -1)
	return c
}

// AlbersCase is one projection scenario: the projection parameters plus
// geographic probe points, including antimeridian-adjacent longitudes
// and near-polar latitudes.
type AlbersCase struct {
	Desc                   string
	Phi1, Phi2, Phi0, Lon0 float64
	LL                     []geom.Point
}

// GenAlbersCase derives one projection scenario from the seed. The
// standard parallels are kept at least five degrees apart and on the
// same side of the equator often enough that the cone constant n stays
// away from zero, where the Albers formulas are singular by definition.
func GenAlbersCase(seed int64) AlbersCase {
	rng := rand.New(rand.NewSource(seed ^ 0xa1be125))
	c := AlbersCase{Desc: "conus", Phi1: 29.5, Phi2: 45.5, Phi0: 23, Lon0: -96}
	if seed%3 != 0 {
		c.Desc = "random parallels"
		c.Phi1 = -55 + rng.Float64()*110
		c.Phi2 = c.Phi1 + 5 + rng.Float64()*20
		c.Phi0 = c.Phi1 - 10 + rng.Float64()*20
		c.Lon0 = -180 + rng.Float64()*360
	}
	for i := 0; i < 60; i++ {
		c.LL = append(c.LL, geom.Point{X: -180 + rng.Float64()*360, Y: -85 + rng.Float64()*170})
	}
	// Antimeridian-adjacent and extreme probes.
	c.LL = append(c.LL,
		geom.Point{X: 179.999999, Y: 30}, geom.Point{X: -179.999999, Y: 30},
		geom.Point{X: 180, Y: -45}, geom.Point{X: -180, Y: 45},
		geom.Point{X: c.Lon0, Y: c.Phi0},
		geom.Point{X: c.Lon0 + 179, Y: 89}, geom.Point{X: c.Lon0 - 179, Y: -89})
	return c
}
