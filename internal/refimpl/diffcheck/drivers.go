package diffcheck

import (
	"math"

	"fivealarms/internal/geom"
	"fivealarms/internal/grid"
	"fivealarms/internal/proj"
	"fivealarms/internal/raster"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/rtree"
)

// boundaryTol is the relative tolerance of the boundary carve-out: a
// probe within tol*(1+scale) of an edge of a non-rectilinear ring is
// exempt from bit-identity (both implementations document boundary
// behavior as unspecified there).
const boundaryTol = 1e-9

// nearAnyEdge reports whether p lies within the carve-out distance of
// any edge of any ring.
func nearAnyEdge(rings []geom.Ring, p geom.Point, scale float64) bool {
	tol := boundaryTol * (1 + scale)
	for _, r := range rings {
		n := len(r)
		for i := 0; i < n; i++ {
			if geom.DistancePointSegment(p, r[i], r[(i+1)%n]) <= tol {
				return true
			}
		}
	}
	return false
}

func coordScale(rings []geom.Ring, p geom.Point) float64 {
	s := math.Max(math.Abs(p.X), math.Abs(p.Y))
	for _, r := range rings {
		for _, v := range r {
			s = math.Max(s, math.Max(math.Abs(v.X), math.Abs(v.Y)))
		}
	}
	return s
}

func allRectilinear(rings []geom.Ring) bool {
	for _, r := range rings {
		if !Rectilinear(r) {
			return false
		}
	}
	return true
}

// CheckContainment runs one seeded containment scenario: the prepared
// ring against both the naive geom predicate and the refimpl twin, then
// a generated multipolygon against its prepared and refimpl forms.
// Verdicts must be bit-identical; on non-rectilinear rings, probes
// within floating-point noise of the boundary are exempt.
func CheckContainment(seed int64) error {
	c := GenContainmentCase(seed)
	prep := geom.PrepareRing(c.Ring)
	rect := Rectilinear(c.Ring)
	rings := []geom.Ring{c.Ring}
	for _, p := range c.Probes {
		opt := prep.Contains(p)
		naive := c.Ring.ContainsPoint(p)
		ref := refimpl.RingContains(c.Ring, p)
		if opt == naive && naive == ref {
			continue
		}
		if !rect && nearAnyEdge(rings, p, coordScale(rings, p)) {
			continue
		}
		return divergef("ring-contains", seed, "%s: probe %v: prepared=%v naive=%v refimpl=%v (ring %v)",
			c.Desc, p, opt, naive, ref, c.Ring)
	}
	// Batch form must equal the scalar form exactly.
	batch := prep.ContainsPoints(c.Probes, nil)
	for i, p := range c.Probes {
		if batch[i] != prep.Contains(p) {
			return divergef("ring-contains-batch", seed, "%s: probe %v: batch=%v scalar=%v", c.Desc, p, batch[i], prep.Contains(p))
		}
	}
	return checkMultiPolygonContainment(seed)
}

func checkMultiPolygonContainment(seed int64) error {
	m, desc := GenMultiPolygon(seed)
	prep := geom.PrepareMultiPolygon(m)
	var rings []geom.Ring
	for _, pg := range m {
		rings = append(rings, pg.Exterior)
		rings = append(rings, pg.Holes...)
	}
	rect := allRectilinear(rings)
	rng := GenContainmentCase(seed) // reuse its probe battery shape
	probes := rng.Probes
	for _, r := range rings {
		for i, v := range r {
			probes = append(probes, v, geom.Point{
				X: (v.X + r[(i+1)%len(r)].X) / 2,
				Y: (v.Y + r[(i+1)%len(r)].Y) / 2,
			})
		}
	}
	bb := m.BBox()
	if !bb.IsEmpty() {
		probes = append(probes, bb.Center(), geom.Point{X: bb.MaxX + 1, Y: bb.MaxY + 1})
	}
	for _, p := range probes {
		opt := prep.Contains(p)
		ref := refimpl.MultiPolygonContains(m, p)
		naive := m.ContainsPoint(p)
		if opt == ref && ref == naive {
			continue
		}
		if !rect && nearAnyEdge(rings, p, coordScale(rings, p)) {
			continue
		}
		return divergef("multipolygon-contains", seed, "%s: probe %v: prepared=%v naive=%v refimpl=%v",
			desc, p, opt, naive, ref)
	}
	// Per-member prepared polygons must agree with the refimpl polygon
	// predicate too (holes included).
	for pi := range m {
		pp := geom.PreparePolygon(m[pi])
		memberRings := append([]geom.Ring{m[pi].Exterior}, m[pi].Holes...)
		memberRect := allRectilinear(memberRings)
		for _, p := range probes[:min(len(probes), 120)] {
			opt := pp.Contains(p)
			ref := refimpl.PolygonContains(m[pi], p)
			if opt == ref {
				continue
			}
			if !memberRect && nearAnyEdge(memberRings, p, coordScale(memberRings, p)) {
				continue
			}
			return divergef("polygon-contains", seed, "%s: member %d probe %v: prepared=%v refimpl=%v",
				desc, pi, p, opt, ref)
		}
	}
	return nil
}

// CheckFill runs one seeded rasterization scenario: the scanline fill
// against the per-cell refimpl fill. Cell verdicts must be bit-identical
// except for centers within floating-point noise of a ring edge.
func CheckFill(seed int64) error {
	c := GenFillCase(seed)
	opt := raster.FillMultiPolygon(c.Geom, c.M)
	ref := refimpl.FillMultiPolygon(c.Geom, c.M)
	return compareMasks("fill", seed, c.Desc, c.Geom, opt, ref, c.M)
}

func compareMasks(primitive string, seed int64, desc string, g raster.Geometry, opt, ref *raster.BitGrid, m geom.MultiPolygon) error {
	var rings []geom.Ring
	for _, pg := range m {
		rings = append(rings, pg.Exterior)
		rings = append(rings, pg.Holes...)
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			a, b := opt.Get(cx, cy), ref.Get(cx, cy)
			if a == b {
				continue
			}
			center := g.Center(cx, cy)
			if rings != nil && nearAnyEdge(rings, center, coordScale(rings, center)) {
				continue
			}
			return divergef(primitive, seed, "%s: cell (%d,%d) center %v: optimized=%v refimpl=%v on %v",
				desc, cx, cy, center, a, b, g)
		}
	}
	return nil
}

// CheckDistance runs one seeded distance-transform scenario: the
// two-pass Felzenszwalb-Huttenlocher transform against the brute-force
// twin (bit-identical floats — both reduce to sqrt of the same exact
// integer), then the derived dilation at several radii including exact
// cell-multiple boundaries.
func CheckDistance(seed int64) error {
	mask, desc := GenMaskCase(seed)
	opt := raster.DistanceTransform(mask)
	ref := refimpl.DistanceTransform(mask)
	g := mask.Geometry
	for i := range opt.Data {
		if opt.Data[i] == ref.Data[i] {
			continue
		}
		if math.IsInf(opt.Data[i], 1) && math.IsInf(ref.Data[i], 1) {
			continue
		}
		return divergef("distance-transform", seed, "%s: cell %d: optimized=%v refimpl=%v on %v",
			desc, i, opt.Data[i], ref.Data[i], g)
	}
	for _, dist := range []float64{0, g.CellSize * 0.5, g.CellSize, g.CellSize * 1.5, math.Sqrt2 * g.CellSize, g.CellSize * 3} {
		od := raster.DilateByDistance(mask, dist)
		rd := refimpl.DilateByDistance(mask, dist)
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if od.Get(cx, cy) != rd.Get(cx, cy) {
					return divergef("dilate", seed, "%s: dist %v cell (%d,%d): optimized=%v refimpl=%v",
						desc, dist, cx, cy, od.Get(cx, cy), rd.Get(cx, cy))
				}
			}
		}
	}
	return nil
}

// CheckBoxes runs one seeded R-tree scenario: bulk load at a generated
// fanout, then range, point and nearest queries against the brute-force
// twins. Result sets must hold the same members; nearest distances must
// be equal exactly (both sides evaluate the identical clamp-then-hypot).
func CheckBoxes(seed int64) error {
	c := GenBoxesCase(seed)
	tree := rtree.NewWithFanout(c.Items, c.Fanout)
	if tree.Len() != len(c.Items) {
		return divergef("rtree-len", seed, "%s: Len=%d want %d", c.Desc, tree.Len(), len(c.Items))
	}
	wantBounds := geom.EmptyBBox()
	for _, it := range c.Items {
		wantBounds = wantBounds.ExtendBBox(it.Box)
	}
	if got := tree.Bounds(); got != wantBounds && !(got.IsEmpty() && wantBounds.IsEmpty()) {
		return divergef("rtree-bounds", seed, "%s: Bounds=%v want %v", c.Desc, got, wantBounds)
	}
	for _, q := range c.Queries {
		got := tree.Search(q, nil)
		want := refimpl.SearchBoxes(c.Items, q)
		if !sortedEqual(got, want) {
			return divergef("rtree-search", seed, "%s: fanout %d query %v: tree=%v brute=%v",
				c.Desc, c.Fanout, q, got, want)
		}
		visited := 0
		tree.Visit(q, func(rtree.Item) bool { visited++; return true })
		if visited != len(want) {
			return divergef("rtree-visit", seed, "%s: query %v: Visit saw %d, brute %d", c.Desc, q, visited, len(want))
		}
	}
	for _, p := range c.Probes {
		got := tree.SearchPoint(p, nil)
		want := refimpl.SearchPointBoxes(c.Items, p)
		if !sortedEqual(got, want) {
			return divergef("rtree-searchpoint", seed, "%s: probe %v: tree=%v brute=%v", c.Desc, p, got, want)
		}
		gotID, gotD := tree.Nearest(p)
		refID, refD := refimpl.NearestBox(c.Items, p)
		if gotD != refD && !(math.IsInf(gotD, 1) && math.IsInf(refD, 1)) {
			return divergef("rtree-nearest", seed, "%s: probe %v: tree dist %v (id %d), brute dist %v (id %d)",
				c.Desc, p, gotD, gotID, refD, refID)
		}
		if gotID >= 0 {
			// Ties may resolve to different items, but the winner must
			// actually sit at the winning distance.
			if d := refimpl.BoxPointDistance(c.Items[gotID].Box, p); d != gotD {
				return divergef("rtree-nearest-id", seed, "%s: probe %v: id %d is at %v, reported %v",
					c.Desc, p, gotID, d, gotD)
			}
		}
	}
	return nil
}

// CheckPointIndex runs one seeded uniform-grid scenario: window, radius
// and count queries against exhaustive scans. Membership must be
// identical including points exactly on window edges and radius rims.
func CheckPointIndex(seed int64) error {
	c := GenPointsCase(seed)
	idx := grid.New(c.Pts, c.CellSize)
	if idx.Len() != len(c.Pts) {
		return divergef("grid-len", seed, "%s: Len=%d want %d", c.Desc, idx.Len(), len(c.Pts))
	}
	for _, w := range c.Windows {
		got := idx.Query(w, nil)
		want := refimpl.RangeQuery(c.Pts, w)
		if !sortedEqual(got, want) {
			return divergef("grid-query", seed, "%s: cell %v window %v: index=%v brute=%v",
				c.Desc, c.CellSize, w, got, want)
		}
	}
	for i := range c.Centers {
		center, r := c.Centers[i], c.Radii[i]
		got := idx.QueryRadius(center, r, nil)
		want := refimpl.RadiusQuery(c.Pts, center, r)
		if !sortedEqual(got, want) {
			return divergef("grid-radius", seed, "%s: center %v r %v: index=%v brute=%v",
				c.Desc, center, r, got, want)
		}
		if n := idx.CountRadius(center, r); n != len(want) {
			return divergef("grid-count", seed, "%s: center %v r %v: CountRadius=%d brute=%d",
				c.Desc, center, r, n, len(want))
		}
	}
	return nil
}

// CheckAlbers runs one seeded projection scenario: the cached proj.Albers
// against the cache-free Snyder transcription, forward and inverse, to
// <= 1 ulp per coordinate, plus the round-trip metamorphic property
// within the projection's valid domain.
func CheckAlbers(seed int64) error {
	c := GenAlbersCase(seed)
	opt := proj.NewAlbers(c.Phi1, c.Phi2, c.Phi0, c.Lon0)
	ref := refimpl.Albers{Phi1: c.Phi1, Phi2: c.Phi2, Phi0: c.Phi0, Lon0: c.Lon0}
	// Cone constant, for the round-trip domain guard below.
	n := (math.Sin(geom.Deg2Rad(c.Phi1)) + math.Sin(geom.Deg2Rad(c.Phi2))) / 2
	for _, ll := range c.LL {
		of := opt.Forward(ll)
		rf := ref.Forward(ll)
		if !EqualUlp(of.X, rf.X, 1) || !EqualUlp(of.Y, rf.Y, 1) {
			return divergef("albers-forward", seed, "%s: ll %v: optimized %v refimpl %v", c.Desc, ll, of, rf)
		}
		oi := opt.Inverse(of)
		ri := ref.Inverse(rf)
		if !EqualUlp(oi.X, ri.X, 1) || !EqualUlp(oi.Y, ri.Y, 1) {
			return divergef("albers-inverse", seed, "%s: xy %v: optimized %v refimpl %v", c.Desc, of, oi, ri)
		}
		// Round trip, inside the cone's unambiguous longitude range and
		// away from the parallels where the radical goes negative.
		theta := n * geom.Deg2Rad(ll.X-c.Lon0)
		if math.Abs(theta) >= math.Pi-1e-6 || !isFinitePt(of) {
			continue
		}
		if math.Abs(oi.X-ll.X) > 1e-6 || math.Abs(oi.Y-ll.Y) > 1e-6 {
			return divergef("albers-roundtrip", seed, "%s: ll %v round-trips to %v", c.Desc, ll, oi)
		}
	}
	return nil
}

func isFinitePt(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// parallelWorkerGrid is the set of explicit worker counts CheckParallel
// sweeps: prime and composite band counts around and beyond the grid
// sizes the generators produce, so bands of every shape (empty tails,
// single-row, whole-grid) get exercised.
var parallelWorkerGrid = [...]int{2, 3, 5, 16}

// CheckParallel runs one seeded parallel-schedule scenario: every tiled
// raster kernel at several worker counts against its serial one-band
// result. Masks and distances must be bit-identical and traced contours
// deeply equal — the banded kernels recompute the exact serial
// arithmetic per cell, so no boundary carve-out applies here.
func CheckParallel(seed int64) error {
	fc := GenFillCase(seed)
	fillSerial := raster.NewBitGrid(fc.Geom)
	raster.FillPolygonsInto(fillSerial, fc.M, 1)
	for _, w := range parallelWorkerGrid {
		par := raster.NewBitGrid(fc.Geom)
		raster.FillPolygonsInto(par, fc.M, w)
		if cx, cy, ok := firstMaskDiff(fillSerial, par); !ok {
			return divergef("parallel-fill", seed, "%s: workers=%d cell (%d,%d): serial=%v parallel=%v on %v",
				fc.Desc, w, cx, cy, fillSerial.Get(cx, cy), par.Get(cx, cy), fc.Geom)
		}
	}

	mask, desc := GenMaskCase(seed)
	g := mask.Geometry
	distSerial := raster.DistanceTransformWorkers(mask, 1)
	contourSerial := raster.TraceContoursWorkers(mask, 1)
	dilateDists := []float64{g.CellSize, math.Sqrt2 * g.CellSize, g.CellSize * 2.5}
	for _, w := range parallelWorkerGrid {
		par := raster.DistanceTransformWorkers(mask, w)
		for i := range par.Data {
			if par.Data[i] != distSerial.Data[i] {
				return divergef("parallel-distance", seed, "%s: workers=%d cell %d: serial=%v parallel=%v on %v",
					desc, w, i, distSerial.Data[i], par.Data[i], g)
			}
		}
		for _, dist := range dilateDists {
			ds := raster.DilateByDistanceWorkers(mask, dist, 1)
			dp := raster.DilateByDistanceWorkers(mask, dist, w)
			if cx, cy, ok := firstMaskDiff(ds, dp); !ok {
				return divergef("parallel-dilate", seed, "%s: workers=%d dist %v cell (%d,%d): serial=%v parallel=%v",
					desc, w, dist, cx, cy, ds.Get(cx, cy), dp.Get(cx, cy))
			}
		}
		for _, steps := range []int{1, 3} {
			ds := raster.Dilate8Workers(mask, steps, 1)
			dp := raster.Dilate8Workers(mask, steps, w)
			if cx, cy, ok := firstMaskDiff(ds, dp); !ok {
				return divergef("parallel-dilate8", seed, "%s: workers=%d steps %d cell (%d,%d): serial=%v parallel=%v",
					desc, w, steps, cx, cy, ds.Get(cx, cy), dp.Get(cx, cy))
			}
		}
		cp := raster.TraceContoursWorkers(mask, w)
		if !multiPolygonEqual(contourSerial, cp) {
			return divergef("parallel-contour", seed, "%s: workers=%d: serial traced %d polys, parallel %d (rings differ) on %v",
				desc, w, len(contourSerial), len(cp), g)
		}
	}
	return nil
}

// firstMaskDiff returns the first differing cell of two same-shape
// masks in row-major order; ok is true when the masks are identical.
func firstMaskDiff(a, b *raster.BitGrid) (cx, cy int, ok bool) {
	for y := 0; y < a.NY; y++ {
		for x := 0; x < a.NX; x++ {
			if a.Get(x, y) != b.Get(x, y) {
				return x, y, false
			}
		}
	}
	return 0, 0, true
}

func ringEqual(a, b geom.Ring) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func multiPolygonEqual(a, b geom.MultiPolygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ringEqual(a[i].Exterior, b[i].Exterior) || len(a[i].Holes) != len(b[i].Holes) {
			return false
		}
		for j := range a[i].Holes {
			if !ringEqual(a[i].Holes[j], b[i].Holes[j]) {
				return false
			}
		}
	}
	return true
}

// CheckAll runs every driver on one seed — the hook the rewired fuzz
// targets and the study-level conformance test call.
func CheckAll(seed int64) error {
	for _, check := range []func(int64) error{
		CheckContainment, CheckFill, CheckDistance, CheckBoxes, CheckPointIndex, CheckAlbers, CheckParallel,
	} {
		if err := check(seed); err != nil {
			return err
		}
	}
	return nil
}
