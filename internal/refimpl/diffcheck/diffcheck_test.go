package diffcheck

import (
	"math"
	"testing"
)

// The package's own tests run broad seed sweeps of every driver; the
// per-package conformance tests (geom, raster, rtree, grid, proj) rerun
// focused slices of the same drivers next to the code they guard.

func TestSweepContainment(t *testing.T) {
	if err := Sweep(300, CheckContainment); err != nil {
		t.Fatal(err)
	}
}

func TestSweepFill(t *testing.T) {
	if err := Sweep(200, CheckFill); err != nil {
		t.Fatal(err)
	}
}

func TestSweepDistance(t *testing.T) {
	if err := Sweep(200, CheckDistance); err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelKernels(t *testing.T) {
	if err := Sweep(150, CheckParallel); err != nil {
		t.Fatal(err)
	}
}

func TestSweepBoxes(t *testing.T) {
	if err := Sweep(200, CheckBoxes); err != nil {
		t.Fatal(err)
	}
}

func TestSweepPointIndex(t *testing.T) {
	if err := Sweep(200, CheckPointIndex); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAlbers(t *testing.T) {
	if err := Sweep(300, CheckAlbers); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenFixtures(t *testing.T) {
	names := FixtureNames()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 embedded fixtures, found %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := CheckGolden(name); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFixtureParsing(t *testing.T) {
	features, err := Fixture("rectilinear_perimeter.geojson")
	if err != nil {
		t.Fatal(err)
	}
	if len(features) != 3 {
		t.Fatalf("rectilinear_perimeter has %d features, want 3", len(features))
	}
	if len(features[0]) != 2 {
		t.Errorf("feature 0 has %d members, want 2", len(features[0]))
	}
	if len(features[0][0].Holes) != 1 {
		t.Errorf("feature 0 member 0 has %d holes, want 1", len(features[0][0].Holes))
	}
	// GeoJSON's explicit closing vertex must be stripped.
	ext := features[0][0].Exterior
	if ext[0] == ext[len(ext)-1] {
		t.Error("closing vertex not stripped")
	}
	if _, err := Fixture("no_such.geojson"); err == nil {
		t.Error("missing fixture must error")
	}
}

func TestEqualUlp(t *testing.T) {
	cases := []struct {
		a, b   float64
		maxUlp uint64
		want   bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, math.Nextafter(1, 2), 1, true},
		{1.0, math.Nextafter(math.Nextafter(1, 2), 2), 1, false},
		{0.0, math.Copysign(0, -1), 0, true},
		{math.NaN(), math.NaN(), 0, true},
		{math.NaN(), 1.0, 64, false},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.MaxFloat64, 64, false},
		{1e-300, -1e-300, 1 << 40, false},
	}
	for _, c := range cases {
		if got := EqualUlp(c.a, c.b, c.maxUlp); got != c.want {
			t.Errorf("EqualUlp(%g, %g, %d) = %v, want %v", c.a, c.b, c.maxUlp, got, c.want)
		}
	}
}

func TestDivergenceMessageShape(t *testing.T) {
	err := divergef("ring-contains", 42, "detail %d", 7)
	const want = "diffcheck/ring-contains (seed 42): detail 7"
	if err.Error() != want {
		t.Errorf("divergef = %q, want %q", err.Error(), want)
	}
}
