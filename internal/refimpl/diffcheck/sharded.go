package diffcheck

import (
	"math/rand"
	"reflect"

	"fivealarms"
	"fivealarms/internal/raster"
	"fivealarms/internal/shard"
)

// Sharded study conformance: the sharded execution path promises
// bit-identical results to the monolithic build at any shard count and
// under either pipeline schedule. These drivers enforce that promise
// end to end — whole twin studies compared product by product — and at
// the mask-merge kernel level with adversarial band-straddling
// perimeters.

// shardCountGrid deliberately includes 1 (sharding machinery with no
// partition effect), counts that leave empty coastal bands at tiny
// transceiver fleets, and 7 (bands that never divide the grid evenly).
var shardCountGrid = [...]int{1, 2, 4, 7}

// genShardConfig derives one small study configuration from the seed.
// Scales stay tiny — the value of the sweep is in shard-count and
// schedule coverage, not fleet size.
func genShardConfig(seed int64) fivealarms.Config {
	rng := rand.New(rand.NewSource(seed ^ 0x5a4ded))
	return fivealarms.Config{
		Seed:                 uint64(seed*2 + 7),
		CellSizeM:            []float64{40000, 60000, 90000}[rng.Intn(3)],
		Transceivers:         2500 + rng.Intn(3)*1250,
		MappedFiresPerSeason: 3 + rng.Intn(3),
	}
}

// CheckSharded builds one monolithic study from the seeded
// configuration, then a sharded twin per (shard count, schedule) pair,
// and demands byte-identical transceiver-axis products: Tables 1-3
// (including every recomputed ratio field, via reflect.DeepEqual — no
// ulp allowance), the §3.4 validation, and both perimeter union masks
// by fingerprint.
func CheckSharded(seed int64) error {
	cfg := genShardConfig(seed)
	mono, err := fivealarms.NewStudyWithOptions(fivealarms.WithConfig(cfg))
	if err != nil {
		return divergef("sharded-study", seed, "monolithic build: %v", err)
	}
	monoHist := mono.HistoryUnionMask().Fingerprint()
	mono2019 := mono.Season2019UnionMask().Fingerprint()

	for _, n := range shardCountGrid {
		for _, serial := range []bool{false, true} {
			opts := []fivealarms.Option{fivealarms.WithConfig(cfg), fivealarms.WithShards(n)}
			if serial {
				opts = append(opts, fivealarms.WithSerialPipeline())
			}
			sh, err := fivealarms.NewStudyWithOptions(opts...)
			if err != nil {
				return divergef("sharded-study", seed, "shards=%d serial=%t build: %v", n, serial, err)
			}
			if !reflect.DeepEqual(mono.Table1(), sh.Table1()) {
				return divergef("sharded-table1", seed, "shards=%d serial=%t: merged overlay differs from monolithic", n, serial)
			}
			if !reflect.DeepEqual(mono.Table2(), sh.Table2()) {
				return divergef("sharded-table2", seed, "shards=%d serial=%t: merged provider rows differ from monolithic", n, serial)
			}
			if !reflect.DeepEqual(mono.Table3(), sh.Table3()) {
				return divergef("sharded-table3", seed, "shards=%d serial=%t: merged radio rows differ from monolithic", n, serial)
			}
			if !reflect.DeepEqual(mono.Validate(), sh.Validate()) {
				return divergef("sharded-validate", seed, "shards=%d serial=%t: merged validation differs from monolithic", n, serial)
			}
			if got := sh.HistoryUnionMask().Fingerprint(); got != monoHist {
				return divergef("sharded-hist-mask", seed, "shards=%d serial=%t: union fingerprint %#x != monolithic %#x", n, serial, got, monoHist)
			}
			if got := sh.Season2019UnionMask().Fingerprint(); got != mono2019 {
				return divergef("sharded-2019-mask", seed, "shards=%d serial=%t: union fingerprint %#x != monolithic %#x", n, serial, got, mono2019)
			}
			rows, peak := sh.ShardStats()
			if len(rows) != n {
				return divergef("sharded-stats", seed, "shards=%d serial=%t: ShardStats reported %d shards", n, serial, len(rows))
			}
			total := 0
			for _, r := range rows {
				total += r
			}
			if total != len(mono.Data.T) {
				return divergef("sharded-stats", seed, "shards=%d serial=%t: shard rows sum to %d, fleet is %d", n, serial, total, len(mono.Data.T))
			}
			if peak <= 0 {
				return divergef("sharded-stats", seed, "shards=%d serial=%t: non-positive peak footprint %d", n, serial, peak)
			}
		}
	}
	return nil
}

// CheckShardMaskMerge attacks the mask-merge kernel alone: seeded
// multipolygons rasterized band by band with FillPolygonsRows and
// Or-merged in band order must reproduce the monolithic fill bit for
// bit. The generated fill cases place perimeters across the whole grid,
// so at every shard count some polygon straddles a band boundary — the
// adversarial case the row-window restriction must get exactly right.
func CheckShardMaskMerge(seed int64) error {
	fc := GenFillCase(seed)
	mono := raster.NewBitGrid(fc.Geom)
	raster.FillPolygonsInto(mono, fc.M, 1)
	want := mono.Fingerprint()

	polys := fc.M
	for _, n := range []int{1, 2, 3, 5, 8, fc.Geom.NY} {
		p := shard.MakePlan(fc.Geom.NY, n)
		merged := raster.NewBitGrid(fc.Geom)
		for i := 0; i < p.Shards(); i++ {
			y0, y1 := p.Band(i)
			band := raster.NewBitGrid(fc.Geom)
			raster.FillPolygonsRows(band, polys, y0, y1)
			if err := merged.Or(band); err != nil {
				return divergef("shard-mask-merge", seed, "%s: shards=%d Or: %v", fc.Desc, n, err)
			}
		}
		if got := merged.Fingerprint(); got != want {
			if cx, cy, ok := firstMaskDiff(mono, merged); !ok {
				return divergef("shard-mask-merge", seed, "%s: shards=%d cell (%d,%d): monolithic=%v merged=%v on %v",
					fc.Desc, n, cx, cy, mono.Get(cx, cy), merged.Get(cx, cy), fc.Geom)
			}
			return divergef("shard-mask-merge", seed, "%s: shards=%d fingerprint %#x != monolithic %#x", fc.Desc, n, got, want)
		}
	}
	return nil
}
