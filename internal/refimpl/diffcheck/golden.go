package diffcheck

import (
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"fivealarms/internal/geom"
	"fivealarms/internal/grid"
	"fivealarms/internal/proj"
	"fivealarms/internal/raster"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/rtree"
)

// Golden fixtures are hand-authored GeoJSON worst cases embedded in the
// package, so every consumer test sees the same bytes regardless of its
// working directory. Each fixture is a FeatureCollection of Polygon /
// MultiPolygon features; CheckGolden runs the full differential battery
// over it. Failures name the fixture instead of a seed:
// "diffcheck/golden/<primitive> (<fixture>): ...".

//go:embed testdata/*.geojson
var fixtureFS embed.FS

func goldenf(primitive, fixture, format string, args ...any) error {
	return fmt.Errorf("diffcheck/golden/%s (%s): %s", primitive, fixture, fmt.Sprintf(format, args...))
}

// FixtureNames lists the embedded golden fixtures, sorted.
func FixtureNames() []string {
	entries, err := fixtureFS.ReadDir("testdata")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// geojson subset: just enough structure to carry polygon fixtures.
type gjFeatureCollection struct {
	Type     string      `json:"type"`
	Features []gjFeature `json:"features"`
}

type gjFeature struct {
	Type     string     `json:"type"`
	Geometry gjGeometry `json:"geometry"`
}

type gjGeometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

// Fixture parses an embedded golden fixture into one MultiPolygon per
// feature. Polygon features become single-member MultiPolygons; other
// geometry types are an error — goldens are polygon worst cases only.
func Fixture(name string) ([]geom.MultiPolygon, error) {
	raw, err := fixtureFS.ReadFile("testdata/" + name)
	if err != nil {
		return nil, err
	}
	var fc gjFeatureCollection
	if err := json.Unmarshal(raw, &fc); err != nil {
		return nil, fmt.Errorf("fixture %s: %w", name, err)
	}
	var out []geom.MultiPolygon
	for fi, f := range fc.Features {
		switch f.Geometry.Type {
		case "Polygon":
			var coords [][][]float64
			if err := json.Unmarshal(f.Geometry.Coordinates, &coords); err != nil {
				return nil, fmt.Errorf("fixture %s feature %d: %w", name, fi, err)
			}
			out = append(out, geom.MultiPolygon{polygonFromCoords(coords)})
		case "MultiPolygon":
			var coords [][][][]float64
			if err := json.Unmarshal(f.Geometry.Coordinates, &coords); err != nil {
				return nil, fmt.Errorf("fixture %s feature %d: %w", name, fi, err)
			}
			var m geom.MultiPolygon
			for _, pg := range coords {
				m = append(m, polygonFromCoords(pg))
			}
			out = append(out, m)
		default:
			return nil, fmt.Errorf("fixture %s feature %d: unsupported geometry %q", name, fi, f.Geometry.Type)
		}
	}
	return out, nil
}

func polygonFromCoords(coords [][][]float64) geom.Polygon {
	var pg geom.Polygon
	for ri, ringCoords := range coords {
		r := make(geom.Ring, 0, len(ringCoords))
		for _, c := range ringCoords {
			r = append(r, geom.Pt(c[0], c[1]))
		}
		// GeoJSON closes rings explicitly; our rings are implicitly closed.
		if len(r) > 1 && r[0] == r[len(r)-1] {
			r = r[:len(r)-1]
		}
		if ri == 0 {
			pg.Exterior = r
		} else {
			pg.Holes = append(pg.Holes, r)
		}
	}
	return pg
}

// FixtureProbes builds the deterministic probe battery for a fixture
// geometry: a lattice over the buffered bounding box, every vertex,
// every edge midpoint, and slightly-off-vertex jitters.
func FixtureProbes(m geom.MultiPolygon) []geom.Point {
	bb := m.BBox()
	var probes []geom.Point
	if bb.IsEmpty() {
		return []geom.Point{geom.Pt(0, 0)}
	}
	w := math.Max(bb.MaxX-bb.MinX, 1e-12)
	h := math.Max(bb.MaxY-bb.MinY, 1e-12)
	const lattice = 17
	for iy := 0; iy <= lattice; iy++ {
		for ix := 0; ix <= lattice; ix++ {
			probes = append(probes, geom.Pt(
				bb.MinX-0.1*w+1.2*w*float64(ix)/lattice,
				bb.MinY-0.1*h+1.2*h*float64(iy)/lattice,
			))
		}
	}
	jit := 1e-9 * (1 + math.Max(math.Abs(bb.MaxX), math.Abs(bb.MaxY)))
	for _, pg := range m {
		for _, r := range append([]geom.Ring{pg.Exterior}, pg.Holes...) {
			n := len(r)
			for i, v := range r {
				next := r[(i+1)%n]
				probes = append(probes, v,
					geom.Pt((v.X+next.X)/2, (v.Y+next.Y)/2),
					geom.Pt(v.X+jit, v.Y+jit),
					geom.Pt(v.X-jit, v.Y-jit))
			}
		}
	}
	return probes
}

// CheckGolden runs the full differential battery over one embedded
// fixture: containment, rasterization, the distance transform of the
// rasterized mask, R-tree loads over the fixture's boxes, point-index
// queries over its vertices, and (when the coordinates are plausible
// lon/lat) the CONUS Albers twins.
func CheckGolden(name string) error {
	for _, check := range []func(string) error{
		CheckGoldenContainment, CheckGoldenRaster, CheckGoldenAlbers, CheckGoldenBoxes, CheckGoldenPoints,
	} {
		if err := check(name); err != nil {
			return err
		}
	}
	return nil
}

// CheckGoldenContainment runs the containment twins over one fixture.
func CheckGoldenContainment(name string) error {
	features, err := Fixture(name)
	if err != nil {
		return err
	}
	for fi, m := range features {
		if err := goldenContainment(fmt.Sprintf("%s#%d", name, fi), m); err != nil {
			return err
		}
	}
	return nil
}

// CheckGoldenRaster runs the fill and distance-transform twins over one
// fixture's rasterization.
func CheckGoldenRaster(name string) error {
	features, err := Fixture(name)
	if err != nil {
		return err
	}
	for fi, m := range features {
		if err := goldenFillAndDistance(fmt.Sprintf("%s#%d", name, fi), m); err != nil {
			return err
		}
	}
	return nil
}

// CheckGoldenAlbers runs the projection twins over one fixture's
// lon/lat-plausible vertices.
func CheckGoldenAlbers(name string) error {
	features, err := Fixture(name)
	if err != nil {
		return err
	}
	for fi, m := range features {
		if err := goldenAlbers(fmt.Sprintf("%s#%d", name, fi), m); err != nil {
			return err
		}
	}
	return nil
}

// CheckGoldenBoxes runs the R-tree twins over one fixture's ring boxes.
func CheckGoldenBoxes(name string) error {
	features, err := Fixture(name)
	if err != nil {
		return err
	}
	return goldenBoxes(name, features)
}

// CheckGoldenPoints runs the point-index twins over one fixture's
// vertices.
func CheckGoldenPoints(name string) error {
	features, err := Fixture(name)
	if err != nil {
		return err
	}
	return goldenPoints(name, features)
}

func goldenContainment(tag string, m geom.MultiPolygon) error {
	prep := geom.PrepareMultiPolygon(m)
	var rings []geom.Ring
	for _, pg := range m {
		rings = append(rings, pg.Exterior)
		rings = append(rings, pg.Holes...)
	}
	rect := allRectilinear(rings)
	for _, p := range FixtureProbes(m) {
		opt := prep.Contains(p)
		ref := refimpl.MultiPolygonContains(m, p)
		naive := m.ContainsPoint(p)
		if opt == ref && ref == naive {
			continue
		}
		if !rect && nearAnyEdge(rings, p, coordScale(rings, p)) {
			continue
		}
		return goldenf("multipolygon-contains", tag, "probe %v: prepared=%v naive=%v refimpl=%v", p, opt, naive, ref)
	}
	for _, r := range rings {
		if len(r) < 3 {
			continue
		}
		pr := geom.PrepareRing(r)
		rrect := Rectilinear(r)
		for _, p := range FixtureProbes(geom.MultiPolygon{{Exterior: r}}) {
			opt := pr.Contains(p)
			ref := refimpl.RingContains(r, p)
			naive := r.ContainsPoint(p)
			if opt == ref && ref == naive {
				continue
			}
			if !rrect && nearAnyEdge([]geom.Ring{r}, p, coordScale([]geom.Ring{r}, p)) {
				continue
			}
			return goldenf("ring-contains", tag, "probe %v: prepared=%v naive=%v refimpl=%v", p, opt, naive, ref)
		}
	}
	return nil
}

func goldenFillAndDistance(tag string, m geom.MultiPolygon) error {
	bb := m.BBox()
	if bb.IsEmpty() {
		return nil
	}
	w := math.Max(bb.MaxX-bb.MinX, 1e-9)
	h := math.Max(bb.MaxY-bb.MinY, 1e-9)
	cell := math.Max(w, h) / 31
	g := raster.Geometry{
		MinX: bb.MinX - cell*1.137, MinY: bb.MinY - cell*1.137,
		CellSize: cell,
		NX:       int(w/cell) + 4, NY: int(h/cell) + 4,
	}
	opt := raster.FillMultiPolygon(g, m)
	ref := refimpl.FillMultiPolygon(g, m)
	if err := compareMasksGolden("fill", tag, g, opt, ref, m); err != nil {
		return err
	}
	// The fixture's own rasterization seeds the distance-transform golden.
	dt := raster.DistanceTransform(opt)
	rdt := refimpl.DistanceTransform(opt)
	for i := range dt.Data {
		if dt.Data[i] != rdt.Data[i] && !(math.IsInf(dt.Data[i], 1) && math.IsInf(rdt.Data[i], 1)) {
			return goldenf("distance-transform", tag, "cell %d: optimized=%v refimpl=%v", i, dt.Data[i], rdt.Data[i])
		}
	}
	for _, dist := range []float64{cell, 2.5 * cell} {
		od := raster.DilateByDistance(opt, dist)
		rd := refimpl.DilateByDistance(opt, dist)
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if od.Get(cx, cy) != rd.Get(cx, cy) {
					return goldenf("dilate", tag, "dist %v cell (%d,%d): optimized=%v refimpl=%v",
						dist, cx, cy, od.Get(cx, cy), rd.Get(cx, cy))
				}
			}
		}
	}
	return nil
}

func compareMasksGolden(primitive, tag string, g raster.Geometry, opt, ref *raster.BitGrid, m geom.MultiPolygon) error {
	var rings []geom.Ring
	for _, pg := range m {
		rings = append(rings, pg.Exterior)
		rings = append(rings, pg.Holes...)
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			a, b := opt.Get(cx, cy), ref.Get(cx, cy)
			if a == b {
				continue
			}
			center := g.Center(cx, cy)
			if nearAnyEdge(rings, center, coordScale(rings, center)) {
				continue
			}
			return goldenf(primitive, tag, "cell (%d,%d) center %v: optimized=%v refimpl=%v", cx, cy, center, a, b)
		}
	}
	return nil
}

func goldenAlbers(tag string, m geom.MultiPolygon) error {
	opt := proj.ConusAlbers()
	ref := refimpl.Albers{Phi1: 29.5, Phi2: 45.5, Phi0: 23, Lon0: -96}
	n := (math.Sin(geom.Deg2Rad(29.5)) + math.Sin(geom.Deg2Rad(45.5))) / 2
	for _, pg := range m {
		for _, r := range append([]geom.Ring{pg.Exterior}, pg.Holes...) {
			for _, v := range r {
				if math.Abs(v.X) > 180 || math.Abs(v.Y) > 89 {
					continue // not a plausible lon/lat; skip, don't fail
				}
				of := opt.Forward(v)
				rf := ref.Forward(v)
				if !EqualUlp(of.X, rf.X, 1) || !EqualUlp(of.Y, rf.Y, 1) {
					return goldenf("albers-forward", tag, "ll %v: optimized %v refimpl %v", v, of, rf)
				}
				oi := opt.Inverse(of)
				ri := ref.Inverse(rf)
				if !EqualUlp(oi.X, ri.X, 1) || !EqualUlp(oi.Y, ri.Y, 1) {
					return goldenf("albers-inverse", tag, "xy %v: optimized %v refimpl %v", of, oi, ri)
				}
				theta := n * geom.Deg2Rad(v.X-(-96))
				if math.Abs(theta) >= math.Pi-1e-6 || !isFinitePt(of) {
					continue
				}
				if math.Abs(oi.X-v.X) > 1e-6 || math.Abs(oi.Y-v.Y) > 1e-6 {
					return goldenf("albers-roundtrip", tag, "ll %v round-trips to %v", v, oi)
				}
			}
		}
	}
	return nil
}

func goldenBoxes(name string, features []geom.MultiPolygon) error {
	var items []rtree.Item
	for _, m := range features {
		for _, pg := range m {
			for _, r := range append([]geom.Ring{pg.Exterior}, pg.Holes...) {
				items = append(items, rtree.Item{Box: r.BBox(), ID: len(items)})
			}
		}
	}
	for _, fanout := range []int{2, 4, 16} {
		tree := rtree.NewWithFanout(items, fanout)
		queries := []geom.BBox{geom.EmptyBBox(), tree.Bounds()}
		for _, it := range items {
			queries = append(queries, it.Box)
		}
		for _, q := range queries {
			got := tree.Search(q, nil)
			want := refimpl.SearchBoxes(items, q)
			if !sortedEqual(got, want) {
				return goldenf("rtree-search", name, "fanout %d query %v: tree=%v brute=%v", fanout, q, got, want)
			}
		}
		for _, it := range items {
			p := it.Box.Center()
			gotID, gotD := tree.Nearest(p)
			_, refD := refimpl.NearestBox(items, p)
			if gotD != refD {
				return goldenf("rtree-nearest", name, "fanout %d probe %v: tree dist %v brute dist %v", fanout, p, gotD, refD)
			}
			if gotID >= 0 && refimpl.BoxPointDistance(items[gotID].Box, p) != gotD {
				return goldenf("rtree-nearest-id", name, "probe %v: id %d not at reported distance", p, gotID)
			}
		}
	}
	return nil
}

func goldenPoints(name string, features []geom.MultiPolygon) error {
	var pts []geom.Point
	var windows []geom.BBox
	for _, m := range features {
		for _, pg := range m {
			for _, r := range append([]geom.Ring{pg.Exterior}, pg.Holes...) {
				pts = append(pts, r...)
				windows = append(windows, r.BBox())
			}
		}
	}
	if len(pts) == 0 {
		return nil
	}
	bb := geom.PointsBBox(pts)
	extent := math.Max(bb.MaxX-bb.MinX, 1e-9)
	// The third cell size is deliberately tiny relative to the extent: on
	// the sparse_clusters fixture it regression-tests grid.New's bucket
	// clamp (cell count bounded by point count, not coordinate span).
	for _, cell := range []float64{0, extent / 8, extent / 2048} {
		idx := grid.New(pts, cell)
		for _, w := range append(windows, bb, geom.EmptyBBox()) {
			got := idx.Query(w, nil)
			want := refimpl.RangeQuery(pts, w)
			if !sortedEqual(got, want) {
				return goldenf("grid-query", name, "cell %v window %v: index=%v brute=%v", cell, w, got, want)
			}
		}
		center := bb.Center()
		for _, p := range pts[:min(len(pts), 24)] {
			// Radius exactly the distance to a real point: rim inclusion
			// must match bit-for-bit.
			r := math.Hypot(p.X-center.X, p.Y-center.Y)
			got := idx.QueryRadius(center, r, nil)
			want := refimpl.RadiusQuery(pts, center, r)
			if !sortedEqual(got, want) {
				return goldenf("grid-radius", name, "cell %v r %v: index=%v brute=%v", cell, r, got, want)
			}
			if n := idx.CountRadius(center, r); n != len(want) {
				return goldenf("grid-count", name, "cell %v r %v: CountRadius=%d brute=%d", cell, r, n, len(want))
			}
		}
	}
	return nil
}
