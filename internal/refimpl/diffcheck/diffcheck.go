// Package diffcheck is the differential driver of the conformance suite:
// it generates adversarial inputs from a seed, runs each optimized GIS
// primitive next to its refimpl twin, and reports the first divergence
// as an error that embeds the seed. Every failure message starts with
// "diffcheck/<primitive> (seed N)" — rerunning the named Check function
// with that seed reproduces the exact inputs, deterministically, with no
// corpus file needed (see DESIGN.md §5, "Testing conventions").
//
// The drivers enforce the equivalence contract of package refimpl:
// bit-identical booleans (with the repo-wide carve-out for probes within
// floating-point noise of a non-axis-aligned boundary) and <= 1 ulp on
// floats. Golden GeoJSON fixtures embedded under testdata/ complement
// the generators with hand-authored worst cases: rectilinear perimeters
// with holes and shared vertices, degenerate rings, and
// antimeridian-adjacent geographies.
package diffcheck

import (
	"fmt"
	"math"
	"sort"
)

// divergef builds the canonical divergence error: primitive name, seed,
// then the free-form detail. Keep the prefix stable — DESIGN.md tells
// readers to grep for it and replay the seed.
func divergef(primitive string, seed int64, format string, args ...any) error {
	return fmt.Errorf("diffcheck/%s (seed %d): %s", primitive, seed, fmt.Sprintf(format, args...))
}

// EqualUlp reports whether a and b are the same float to within maxUlp
// units in the last place. NaNs are equal to each other (both sides
// failed the same way); +0 and -0 are equal; numbers of opposite sign
// are never equal otherwise.
func EqualUlp(a, b float64, maxUlp uint64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if a == b {
		return true // covers ±0 and exact equality, including infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	if math.Signbit(a) != math.Signbit(b) {
		return false
	}
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba > bb {
		ba, bb = bb, ba
	}
	return bb-ba <= maxUlp
}

// Sweep runs check for seeds 0..n-1 and returns the first divergence.
func Sweep(n int, check func(seed int64) error) error {
	for seed := int64(0); seed < int64(n); seed++ {
		if err := check(seed); err != nil {
			return err
		}
	}
	return nil
}

// sortedEqual reports whether two index sets hold the same members,
// destroying neither input. Result order is allowed to differ between an
// index and its brute-force twin; membership is not.
func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]int(nil), a...)
	cb := append([]int(nil), b...)
	sort.Ints(ca)
	sort.Ints(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
