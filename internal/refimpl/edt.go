package refimpl

import (
	"math"

	"fivealarms/internal/raster"
)

// DistanceTransform is the brute-force twin of raster.DistanceTransform:
// for every cell, scan every set cell and keep the smallest center-to-
// center Euclidean distance in meters; set cells get 0, an empty mask
// gets +Inf everywhere. O(cells * set-cells) — test grids only.
//
// The squared offsets are exact small integers in float64 and the final
// sqrt-and-scale is the same expression the optimized two-pass transform
// evaluates, so the two are bit-identical, not merely close.
func DistanceTransform(mask *raster.BitGrid) *raster.FloatGrid {
	g := mask.Geometry
	out := raster.NewFloatGrid(g)
	var set [][2]int
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if mask.Get(cx, cy) {
				set = append(set, [2]int{cx, cy})
			}
		}
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			best := math.Inf(1)
			for _, s := range set {
				dx := cx - s[0]
				dy := cy - s[1]
				if d2 := float64(dx*dx + dy*dy); d2 < best {
					best = d2
				}
			}
			if !math.IsInf(best, 1) {
				best = math.Sqrt(best) * g.CellSize
			}
			out.Set(cx, cy, best)
		}
	}
	return out
}

// DilateByDistance is the brute-force twin of raster.DilateByDistance
// (the buffering path behind the §3.8 half-mile extension): a cell is set
// when its center lies within dist meters of some set cell's center.
// dist <= 0 returns a clone, matching the optimized fast path.
func DilateByDistance(mask *raster.BitGrid, dist float64) *raster.BitGrid {
	if dist <= 0 {
		return mask.Clone()
	}
	dt := DistanceTransform(mask)
	out := raster.NewBitGrid(mask.Geometry)
	for cy := 0; cy < mask.NY; cy++ {
		for cx := 0; cx < mask.NX; cx++ {
			if dt.At(cx, cy) <= dist {
				out.Set(cx, cy, true)
			}
		}
	}
	return out
}
