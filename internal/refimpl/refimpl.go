// Package refimpl holds deliberately naive reference implementations of
// every load-bearing GIS primitive in the fivealarms kernel: even-odd
// ray-casting containment (the twin of geom.PreparedRing /
// PreparedPolygon / PreparedMultiPolygon), brute-force box range and
// nearest queries (the twin of rtree.Tree), per-cell polygon
// rasterization (the twin of raster.FillMultiPolygonInto), a direct
// Snyder-formula Albers projection (the twin of proj.Albers), brute-force
// Euclidean distance transforms and buffers (the twin of
// raster.DistanceTransform / DilateByDistance), and exhaustive point
// range/radius scans (the twin of grid.Index).
//
// Nothing here is fast and nothing here is clever — that is the point.
// Each function is written to be obviously correct from its definition,
// with no index, no scratch reuse, no algebraic rewrites, so the
// optimized kernel can be differentially tested against it forever (see
// the sibling package refimpl/diffcheck and DESIGN.md §5, "Testing
// conventions": no optimized primitive ships without a refimpl twin).
//
// Equivalence contract. Boolean answers (containment, mask bits, query
// membership) must be bit-identical to the optimized kernel except for
// probe points within floating-point noise of a non-axis-aligned
// boundary edge, where the repo-wide boundary carve-out applies (both
// implementations document boundary behavior as unspecified there; on
// the rectilinear perimeters the fire tracer emits, all edges are
// axis-aligned and the exemption never triggers). Float answers
// (distances, projected coordinates) must agree to <= 1 ulp.
package refimpl

import "fivealarms/internal/geom"

// RingContains is the textbook even-odd ray cast: count the crossings of
// the horizontal ray from p to +inf against every non-horizontal edge,
// odd means inside. The crossing abscissa is anchored at the edge's
// first vertex — deliberately the opposite anchoring from
// geom.Ring.ContainsPoint, so the two divisions are independent
// derivations that can only agree because the math agrees.
// Rings with fewer than three vertices contain nothing.
func RingContains(r geom.Ring, p geom.Point) bool {
	if len(r) < 3 {
		return false
	}
	inside := false
	n := len(r)
	for i := 0; i < n; i++ {
		a := r[i]
		b := r[(i+1)%n]
		if (a.Y > p.Y) == (b.Y > p.Y) {
			continue // edge entirely above or below the scanline (or horizontal)
		}
		xCross := a.X + (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y)
		if p.X < xCross {
			inside = !inside
		}
	}
	return inside
}

// PolygonContains reports containment in the exterior ring and in none of
// the hole rings — the semantics of geom.Polygon.ContainsPoint and
// geom.PreparedPolygon.Contains.
func PolygonContains(pg geom.Polygon, p geom.Point) bool {
	if !RingContains(pg.Exterior, p) {
		return false
	}
	for _, h := range pg.Holes {
		if RingContains(h, p) {
			return false
		}
	}
	return true
}

// MultiPolygonContains reports containment in any member polygon — the
// semantics of geom.MultiPolygon.ContainsPoint and
// geom.PreparedMultiPolygon.Contains.
func MultiPolygonContains(m geom.MultiPolygon, p geom.Point) bool {
	for _, pg := range m {
		if PolygonContains(pg, p) {
			return true
		}
	}
	return false
}

// RingsContainEvenOdd applies the even-odd rule over the union of all
// rings at once (exterior and holes contribute crossings alike). This is
// the semantics of the scanline rasterizer (raster.FillPolygon documents
// "even-odd rule over all rings"), which coincides with PolygonContains
// on well-formed polygons but not on pathological ones, so the fill twin
// must use this form.
func RingsContainEvenOdd(rings []geom.Ring, p geom.Point) bool {
	inside := false
	for _, r := range rings {
		n := len(r)
		for i := 0; i < n; i++ {
			a := r[i]
			b := r[(i+1)%n]
			if (a.Y > p.Y) == (b.Y > p.Y) {
				continue
			}
			xCross := a.X + (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}
