package refimpl

import "fivealarms/internal/geom"

// RangeQuery is the brute-force twin of grid.Index.Query: the indices of
// every point inside box (inclusive boundaries), in input order.
func RangeQuery(pts []geom.Point, box geom.BBox) []int {
	var out []int
	for i, p := range pts {
		if box.ContainsPoint(p) {
			out = append(out, i)
		}
	}
	return out
}

// RadiusQuery is the brute-force twin of grid.Index.QueryRadius: the
// indices of every point within planar distance r of center, using the
// same squared comparison (d·d <= r²) so the inclusion boundary is
// bit-identical. A negative radius matches nothing.
func RadiusQuery(pts []geom.Point, center geom.Point, r float64) []int {
	var out []int
	if r < 0 {
		return out
	}
	r2 := r * r
	for i, p := range pts {
		dx := p.X - center.X
		dy := p.Y - center.Y
		if dx*dx+dy*dy <= r2 {
			out = append(out, i)
		}
	}
	return out
}
