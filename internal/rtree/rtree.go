// Package rtree provides a static, bulk-loaded R-tree over bounding boxes.
// The overlay engine uses it to index wildfire perimeters and county zones
// so that the point-in-polygon joins run against a handful of candidate
// geometries instead of the whole catalog.
//
// The tree is built once with the Sort-Tile-Recursive (STR) packing
// algorithm (Leutenegger et al. 1997), which yields near-optimal space
// utilization for static data sets — exactly the shape of this workload,
// where a year's fire catalog is generated and then queried millions of
// times.
package rtree

import (
	"math"
	"sort"

	"fivealarms/internal/geom"
)

// Item is an entry stored in the tree: a bounding box plus an opaque
// caller-assigned identifier (typically an index into a parallel slice).
type Item struct {
	Box geom.BBox
	ID  int
}

// Tree is an immutable STR-packed R-tree. The zero value is an empty tree.
// Safe for concurrent readers.
type Tree struct {
	nodes  []node
	leaves []Item
	root   int
	height int
}

type node struct {
	box      geom.BBox
	first    int // index of first child (node index, or leaf item index at height 1)
	count    int
	isParent bool // children are nodes rather than leaf items
}

// DefaultFanout is the number of children per node used by New.
const DefaultFanout = 16

// New bulk-loads a tree from items with the default fanout. The input slice
// is not retained; it may be reused by the caller.
func New(items []Item) *Tree { return NewWithFanout(items, DefaultFanout) }

// NewWithFanout bulk-loads a tree with the given maximum node fanout
// (minimum 2).
func NewWithFanout(items []Item, fanout int) *Tree {
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{}
	if len(items) == 0 {
		t.root = -1
		return t
	}
	t.leaves = make([]Item, len(items))
	copy(t.leaves, items)

	// STR: sort by center X, slice into vertical runs, sort each run by
	// center Y, then pack consecutive groups of `fanout` into leaf nodes.
	n := len(t.leaves)
	nLeafNodes := (n + fanout - 1) / fanout
	nSlices := intSqrtCeil(nLeafNodes)
	runLen := nSlices * fanout

	sort.Slice(t.leaves, func(i, j int) bool {
		return t.leaves[i].Box.Center().X < t.leaves[j].Box.Center().X
	})
	for start := 0; start < n; start += runLen {
		end := min(start+runLen, n)
		run := t.leaves[start:end]
		sort.Slice(run, func(i, j int) bool {
			return run[i].Box.Center().Y < run[j].Box.Center().Y
		})
	}

	// Level 1: leaf nodes referencing item ranges.
	level := make([]int, 0, nLeafNodes)
	for start := 0; start < n; start += fanout {
		end := min(start+fanout, n)
		box := geom.EmptyBBox()
		for _, it := range t.leaves[start:end] {
			box = box.ExtendBBox(it.Box)
		}
		t.nodes = append(t.nodes, node{box: box, first: start, count: end - start})
		level = append(level, len(t.nodes)-1)
	}
	t.height = 1

	// Upper levels: pack nodes of the previous level.
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+fanout-1)/fanout)
		for start := 0; start < len(level); start += fanout {
			end := min(start+fanout, len(level))
			box := geom.EmptyBBox()
			for _, ni := range level[start:end] {
				box = box.ExtendBBox(t.nodes[ni].box)
			}
			// Children of packed nodes are contiguous in t.nodes because
			// each level is appended in order.
			t.nodes = append(t.nodes, node{
				box: box, first: level[start], count: end - start, isParent: true,
			})
			next = append(next, len(t.nodes)-1)
		}
		level = next
		t.height++
	}
	t.root = level[0]
	return t
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return len(t.leaves) }

// Bounds returns the bounding box of all items, empty for an empty tree.
func (t *Tree) Bounds() geom.BBox {
	if t.root < 0 || len(t.nodes) == 0 {
		return geom.EmptyBBox()
	}
	return t.nodes[t.root].box
}

// Search appends to dst the IDs of all items whose boxes intersect query
// and returns the extended slice. Pass nil to allocate.
func (t *Tree) Search(query geom.BBox, dst []int) []int {
	if t.root < 0 || query.IsEmpty() {
		return dst
	}
	return t.search(t.root, query, dst)
}

func (t *Tree) search(ni int, query geom.BBox, dst []int) []int {
	nd := &t.nodes[ni]
	if !nd.box.Intersects(query) {
		return dst
	}
	if !nd.isParent {
		for _, it := range t.leaves[nd.first : nd.first+nd.count] {
			if it.Box.Intersects(query) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		dst = t.search(c, query, dst)
	}
	return dst
}

// SearchPoint appends the IDs of all items whose boxes contain p.
func (t *Tree) SearchPoint(p geom.Point, dst []int) []int {
	return t.Search(geom.BBox{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, dst)
}

// Visit calls fn for every item whose box intersects query; returning false
// stops the traversal early.
func (t *Tree) Visit(query geom.BBox, fn func(it Item) bool) {
	if t.root < 0 || query.IsEmpty() {
		return
	}
	t.visit(t.root, query, fn)
}

func (t *Tree) visit(ni int, query geom.BBox, fn func(Item) bool) bool {
	nd := &t.nodes[ni]
	if !nd.box.Intersects(query) {
		return true
	}
	if !nd.isParent {
		for _, it := range t.leaves[nd.first : nd.first+nd.count] {
			if it.Box.Intersects(query) && !fn(it) {
				return false
			}
		}
		return true
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		if !t.visit(c, query, fn) {
			return false
		}
	}
	return true
}

// Nearest returns the ID of the item whose box is nearest to p (distance 0
// when p is inside a box) and the distance, or (-1, +inf) for an empty tree.
func (t *Tree) Nearest(p geom.Point) (int, float64) {
	if t.root < 0 {
		return -1, inf()
	}
	bestID := -1
	bestD := inf()
	t.nearest(t.root, p, &bestID, &bestD)
	return bestID, bestD
}

func (t *Tree) nearest(ni int, p geom.Point, bestID *int, bestD *float64) {
	nd := &t.nodes[ni]
	if boxDist(nd.box, p) >= *bestD {
		return
	}
	if !nd.isParent {
		for _, it := range t.leaves[nd.first : nd.first+nd.count] {
			if d := boxDist(it.Box, p); d < *bestD {
				*bestD = d
				*bestID = it.ID
			}
		}
		return
	}
	// Visit children closest-first for better pruning. Fall back to plain
	// order for unusually wide nodes rather than truncating the scan.
	if nd.count > 64 {
		for c := nd.first; c < nd.first+nd.count; c++ {
			t.nearest(c, p, bestID, bestD)
		}
		return
	}
	type cd struct {
		idx int
		d   float64
	}
	var order [64]cd
	cnt := 0
	for c := nd.first; c < nd.first+nd.count; c++ {
		order[cnt] = cd{c, boxDist(t.nodes[c].box, p)}
		cnt++
	}
	children := order[:cnt]
	sort.Slice(children, func(i, j int) bool { return children[i].d < children[j].d })
	for _, c := range children {
		t.nearest(c.idx, p, bestID, bestD)
	}
}

func boxDist(b geom.BBox, p geom.Point) float64 {
	if b.IsEmpty() {
		return inf()
	}
	dx := 0.0
	if p.X < b.MinX {
		dx = b.MinX - p.X
	} else if p.X > b.MaxX {
		dx = p.X - b.MaxX
	}
	dy := 0.0
	if p.Y < b.MinY {
		dy = b.MinY - p.Y
	} else if p.Y > b.MaxY {
		dy = p.Y - b.MaxY
	}
	if dx == 0 && dy == 0 { //fivealarms:allow(floateq) inside-box fast path; dx/dy are exactly zero by construction above
		return 0
	}
	return geom.Point{X: dx, Y: dy}.Norm()
}

func inf() float64 { return math.Inf(1) }

func intSqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
