package rtree_test

// External test package: the differential driver imports rtree, so the
// conformance tests run from outside to avoid the cycle.

import (
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/refimpl/diffcheck"
	"fivealarms/internal/rtree"
)

// TestRTreeConformance sweeps STR bulk loads at generated fanouts
// against the brute-force twins: range, point and nearest queries over
// duplicate, colinear, zero-area and nested box batteries.
func TestRTreeConformance(t *testing.T) {
	if err := diffcheck.Sweep(200, diffcheck.CheckBoxes); err != nil {
		t.Fatal(err)
	}
}

// TestRTreeGoldens loads the ring boxes of every fixture at several
// fanouts and replays the query battery.
func TestRTreeGoldens(t *testing.T) {
	for _, name := range diffcheck.FixtureNames() {
		if err := diffcheck.CheckGoldenBoxes(name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBulkLoadDuplicateBoxes pins STR packing when every input box is
// identical — the degenerate sort order where tile boundaries carry no
// information. All duplicates must remain individually reachable.
func TestBulkLoadDuplicateBoxes(t *testing.T) {
	box := geom.BBox{MinX: 3, MinY: 3, MaxX: 5, MaxY: 5}
	for _, n := range []int{1, 2, 17, 100} {
		items := make([]rtree.Item, n)
		for i := range items {
			items[i] = rtree.Item{Box: box, ID: i}
		}
		for _, fanout := range []int{2, 3, 16} {
			tree := rtree.NewWithFanout(items, fanout)
			if tree.Len() != n {
				t.Fatalf("n=%d fanout=%d: Len=%d", n, fanout, tree.Len())
			}
			got := tree.Search(box, nil)
			if len(got) != n {
				t.Fatalf("n=%d fanout=%d: query over duplicates returned %d of %d", n, fanout, len(got), n)
			}
			if hits := tree.SearchPoint(geom.Pt(4, 4), nil); len(hits) != n {
				t.Fatalf("n=%d fanout=%d: point query returned %d of %d", n, fanout, len(hits), n)
			}
			id, d := tree.Nearest(geom.Pt(10, 4))
			if id < 0 || id >= n || d != 5 {
				t.Fatalf("n=%d fanout=%d: Nearest = (%d, %v), want any id at distance 5", n, fanout, id, d)
			}
		}
	}
}

// TestBulkLoadColinearBoxes pins STR packing when all boxes line up on
// one axis, so the vertical slicing does all the work and horizontal
// tiles are trivial (and vice versa after transposing).
func TestBulkLoadColinearBoxes(t *testing.T) {
	for _, transpose := range []bool{false, true} {
		items := make([]rtree.Item, 60)
		for i := range items {
			x := float64(i * 2)
			b := geom.BBox{MinX: x, MinY: 0, MaxX: x + 1, MaxY: 1}
			if transpose {
				b = geom.BBox{MinX: 0, MinY: x, MaxX: 1, MaxY: x + 1}
			}
			items[i] = rtree.Item{Box: b, ID: i}
		}
		tree := rtree.NewWithFanout(items, 4)
		for i := range items {
			got := tree.Search(items[i].Box, nil)
			want := refimpl.SearchBoxes(items, items[i].Box)
			if len(got) != len(want) {
				t.Fatalf("transpose=%v item %d: %d hits, brute force %d", transpose, i, len(got), len(want))
			}
		}
		// A probe far off-axis still finds the true nearest strip.
		probe := geom.Pt(59, 500)
		if transpose {
			probe = geom.Pt(500, 59)
		}
		_, d := tree.Nearest(probe)
		_, want := refimpl.NearestBox(items, probe)
		if d != want {
			t.Fatalf("transpose=%v: nearest distance %v, brute force %v", transpose, d, want)
		}
	}
}

// TestNearestTieReporting pins the tie contract: when several boxes sit
// at the same distance the reported id may be any of them, but the
// reported distance must be exact and the id must actually sit there.
func TestNearestTieReporting(t *testing.T) {
	items := []rtree.Item{
		{Box: geom.BBox{MinX: -3, MinY: -1, MaxX: -2, MaxY: 1}, ID: 0},
		{Box: geom.BBox{MinX: 2, MinY: -1, MaxX: 3, MaxY: 1}, ID: 1},
	}
	tree := rtree.New(items)
	id, d := tree.Nearest(geom.Pt(0, 0))
	if d != 2 {
		t.Fatalf("tie distance = %v, want 2", d)
	}
	if got := refimpl.BoxPointDistance(items[id].Box, geom.Pt(0, 0)); got != d {
		t.Fatalf("winner %d is at %v, reported %v", id, got, d)
	}
	if id, d := tree.Nearest(geom.Pt(2.5, 0)); id != 1 || d != 0 {
		t.Fatalf("interior probe = (%d, %v), want (1, 0)", id, d)
	}
}

// FuzzRTreeDiff drives the R-tree twins from fuzz-chosen seeds.
func FuzzRTreeDiff(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffcheck.CheckBoxes(seed); err != nil {
			t.Fatal(err)
		}
	})
}
