package rtree

import (
	"sort"
	"testing"
	"testing/quick"

	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
)

func randomItems(seed uint64, n int) []Item {
	s := rng.New(seed)
	items := make([]Item, n)
	for i := range items {
		x := s.Range(0, 1000)
		y := s.Range(0, 1000)
		w := s.Range(0.1, 20)
		h := s.Range(0.1, 20)
		items[i] = Item{Box: geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+h)), ID: i}
	}
	return items
}

// bruteSearch is the oracle for Search.
func bruteSearch(items []Item, q geom.BBox) []int {
	var out []int
	for _, it := range items {
		if it.Box.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Error("Len should be 0")
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("Bounds should be empty")
	}
	if got := tr.Search(geom.NewBBox(geom.Pt(0, 0), geom.Pt(1, 1)), nil); len(got) != 0 {
		t.Error("Search on empty tree should return nothing")
	}
	if id, _ := tr.Nearest(geom.Pt(0, 0)); id != -1 {
		t.Error("Nearest on empty tree should return -1")
	}
}

func TestSingleItem(t *testing.T) {
	items := []Item{{Box: geom.NewBBox(geom.Pt(5, 5), geom.Pt(10, 10)), ID: 42}}
	tr := New(items)
	if got := tr.Search(geom.NewBBox(geom.Pt(0, 0), geom.Pt(6, 6)), nil); len(got) != 1 || got[0] != 42 {
		t.Errorf("Search = %v", got)
	}
	if got := tr.Search(geom.NewBBox(geom.Pt(20, 20), geom.Pt(30, 30)), nil); len(got) != 0 {
		t.Errorf("miss Search = %v", got)
	}
	id, d := tr.Nearest(geom.Pt(7, 7))
	if id != 42 || d != 0 {
		t.Errorf("Nearest inside box = (%d, %v)", id, d)
	}
	id, d = tr.Nearest(geom.Pt(13, 10))
	if id != 42 || d != 3 {
		t.Errorf("Nearest outside = (%d, %v), want (42, 3)", id, d)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(1, 2000)
	tr := New(items)
	s := rng.New(2)
	for q := 0; q < 200; q++ {
		x := s.Range(0, 1000)
		y := s.Range(0, 1000)
		w := s.Range(1, 120)
		query := geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+w))
		got := tr.Search(query, nil)
		want := bruteSearch(items, query)
		if !sortedEqual(got, want) {
			t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
		}
	}
}

func TestSearchPoint(t *testing.T) {
	items := randomItems(3, 500)
	tr := New(items)
	s := rng.New(4)
	for q := 0; q < 200; q++ {
		p := geom.Pt(s.Range(0, 1000), s.Range(0, 1000))
		got := tr.SearchPoint(p, nil)
		var want []int
		for _, it := range items {
			if it.Box.ContainsPoint(p) {
				want = append(want, it.ID)
			}
		}
		if !sortedEqual(got, want) {
			t.Fatalf("point %v: got %v want %v", p, got, want)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	items := randomItems(5, 1000)
	tr := New(items)
	s := rng.New(6)
	for q := 0; q < 300; q++ {
		p := geom.Pt(s.Range(-100, 1100), s.Range(-100, 1100))
		_, gotD := tr.Nearest(p)
		bestD := 1e300
		for _, it := range items {
			if d := boxDist(it.Box, p); d < bestD {
				bestD = d
			}
		}
		if gotD != bestD {
			t.Fatalf("point %v: nearest dist %v, want %v", p, gotD, bestD)
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	items := randomItems(7, 500)
	tr := New(items)
	count := 0
	tr.Visit(tr.Bounds(), func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("Visit visited %d, want early stop at 10", count)
	}
}

func TestVisitAll(t *testing.T) {
	items := randomItems(8, 300)
	tr := New(items)
	seen := map[int]bool{}
	tr.Visit(tr.Bounds(), func(it Item) bool {
		seen[it.ID] = true
		return true
	})
	if len(seen) != 300 {
		t.Errorf("Visit over bounds saw %d items, want 300", len(seen))
	}
}

func TestBounds(t *testing.T) {
	items := []Item{
		{Box: geom.NewBBox(geom.Pt(0, 0), geom.Pt(1, 1)), ID: 0},
		{Box: geom.NewBBox(geom.Pt(50, -10), geom.Pt(60, 5)), ID: 1},
	}
	b := New(items).Bounds()
	if b.MinX != 0 || b.MinY != -10 || b.MaxX != 60 || b.MaxY != 5 {
		t.Errorf("Bounds = %v", b)
	}
}

func TestFanoutVariants(t *testing.T) {
	items := randomItems(9, 777)
	query := geom.NewBBox(geom.Pt(100, 100), geom.Pt(400, 400))
	want := bruteSearch(items, query)
	for _, fanout := range []int{1, 2, 3, 8, 64, 1000} {
		tr := NewWithFanout(items, fanout)
		got := tr.Search(query, nil)
		if !sortedEqual(got, append([]int(nil), want...)) {
			t.Errorf("fanout %d: got %d results, want %d", fanout, len(got), len(want))
		}
		if tr.Len() != 777 {
			t.Errorf("fanout %d: Len = %d", fanout, tr.Len())
		}
	}
}

func TestSearchProperty(t *testing.T) {
	items := randomItems(10, 400)
	tr := New(items)
	f := func(x, y, w, h uint16) bool {
		fx, fy := float64(x%1000), float64(y%1000)
		q := geom.NewBBox(
			geom.Pt(fx, fy),
			geom.Pt(fx+float64(w%200), fy+float64(h%200)),
		)
		return sortedEqual(tr.Search(q, nil), bruteSearch(items, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDstReuse(t *testing.T) {
	items := randomItems(11, 100)
	tr := New(items)
	buf := make([]int, 0, 128)
	a := tr.Search(tr.Bounds(), buf)
	if len(a) != 100 {
		t.Errorf("full search = %d items", len(a))
	}
}

func BenchmarkBuild10k(b *testing.B) {
	items := randomItems(12, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(items)
	}
}

func BenchmarkSearch10k(b *testing.B) {
	items := randomItems(13, 10000)
	tr := New(items)
	q := geom.NewBBox(geom.Pt(400, 400), geom.Pt(450, 450))
	buf := make([]int, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Search(q, buf[:0])
	}
}

func BenchmarkBruteForce10k(b *testing.B) {
	items := randomItems(13, 10000)
	q := geom.NewBBox(geom.Pt(400, 400), geom.Pt(450, 450))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		for _, it := range items {
			if it.Box.Intersects(q) {
				cnt++
			}
		}
		_ = cnt
	}
}
