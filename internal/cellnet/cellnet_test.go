package cellnet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

var (
	testWorld = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testData  = Generate(testWorld, GenConfig{Seed: 7, Total: 40000})
)

func TestRadioStrings(t *testing.T) {
	for _, r := range Radios() {
		parsed, err := ParseRadio(r.String())
		if err != nil || parsed != r {
			t.Errorf("round trip for %v failed: %v %v", r, parsed, err)
		}
	}
	if _, err := ParseRadio("5G"); err == nil {
		t.Error("5G should not parse (none in the study snapshot)")
	}
	if Radio(99).String() != "UNKNOWN" {
		t.Error("invalid radio string")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testWorld, GenConfig{Seed: 9, Total: 5000})
	b := Generate(testWorld, GenConfig{Seed: 9, Total: 5000})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.T {
		if a.T[i] != b.T[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := Generate(testWorld, GenConfig{Seed: 10, Total: 5000})
	same := 0
	for i := 0; i < min(a.Len(), c.Len()); i++ {
		if a.T[i].XY == c.T[i].XY {
			same++
		}
	}
	if same > a.Len()/100 {
		t.Errorf("different seeds produced %d identical positions", same)
	}
}

func TestGenerateTotalApprox(t *testing.T) {
	// Per-state rounding loses at most one state's worth each.
	if testData.Len() < 39000 || testData.Len() > 40000 {
		t.Errorf("generated %d, want ~40000", testData.Len())
	}
}

func TestStateAllocationFollowsPopulation(t *testing.T) {
	counts := testData.CountByState()
	ca := counts[geodata.StateIndex("CA")]
	wy := counts[geodata.StateIndex("WY")]
	tx := counts[geodata.StateIndex("TX")]
	if ca <= tx {
		t.Errorf("CA (%d) should exceed TX (%d)", ca, tx)
	}
	if wy >= ca/20 {
		t.Errorf("WY (%d) should be far below CA (%d)", wy, ca)
	}
	// CA share should be near its population share (~12%).
	frac := float64(ca) / float64(testData.Len())
	if frac < 0.09 || frac > 0.16 {
		t.Errorf("CA share = %v, want ~0.12", frac)
	}
}

func TestPositionsInsideConus(t *testing.T) {
	outside := 0
	for i := range testData.T {
		if testData.T[i].StateIdx < 0 {
			outside++
		}
	}
	// Crowdsourced jitter may push a handful of points across the coarse
	// outline; the bulk must be inside.
	if frac := float64(outside) / float64(testData.Len()); frac > 0.02 {
		t.Errorf("outside fraction = %v", frac)
	}
}

func TestRadioMixMatchesTable3Shape(t *testing.T) {
	byRadio := testData.CountByRadio()
	lte, umts, cdma, gsm := byRadio[LTE], byRadio[UMTS], byRadio[CDMA], byRadio[GSM]
	if !(lte > umts && umts > cdma && cdma > gsm) {
		t.Errorf("radio ordering violated: LTE=%d UMTS=%d CDMA=%d GSM=%d", lte, umts, cdma, gsm)
	}
	lteFrac := float64(lte) / float64(testData.Len())
	if lteFrac < 0.45 || lteFrac < 0.3 {
		if lteFrac < 0.45 {
			t.Errorf("LTE share = %v, want > 0.45", lteFrac)
		}
	}
}

func TestProviderSharesMatchTable2Scale(t *testing.T) {
	r := NewResolver()
	byGroup := testData.CountByProviderGroup(r)
	att := float64(byGroup[geodata.ProviderATT]) / float64(testData.Len())
	if math.Abs(att-0.349) > 0.03 {
		t.Errorf("AT&T share = %v, want ~0.349", att)
	}
	if byGroup[geodata.ProviderATT] <= byGroup[geodata.ProviderVerizon] {
		t.Error("AT&T fleet should exceed Verizon in the OpenCelliD snapshot")
	}
	if byGroup[geodata.ProviderOthersAg] == 0 {
		t.Error("regional providers missing")
	}
	if unknown := byGroup[geodata.ProviderUnknown]; unknown != 0 {
		t.Errorf("%d transceivers resolve to unknown provider", unknown)
	}
}

func TestManyDistinctRegionalProviders(t *testing.T) {
	r := NewResolver()
	providers := testData.DistinctProviders(r)
	regional := 0
	for _, p := range providers {
		if !geodata.IsMajorProvider(p) {
			regional++
		}
	}
	// The paper footnotes 46 smaller providers with at-risk infrastructure.
	if regional < 30 {
		t.Errorf("distinct regional providers = %d, want >= 30", regional)
	}
}

func TestSitesGrouping(t *testing.T) {
	sites := testData.Sites()
	if sites == 0 {
		t.Fatal("no sites")
	}
	mean := float64(testData.Len()) / float64(sites)
	if mean < 2 || mean > 8 {
		t.Errorf("mean transceivers per site = %v, want ~4", mean)
	}
}

func TestUrbanClustering(t *testing.T) {
	// Density within 40 km of LA must far exceed density in rural Nevada.
	la := testWorld.ToXY(geom.Point{X: -118.2437, Y: 34.0522})
	rural := testWorld.ToXY(geom.Point{X: -117.0, Y: 41.0})
	nearLA := testData.Index.CountRadius(la, 40000)
	nearRural := testData.Index.CountRadius(rural, 40000)
	if nearLA < 20*nearRural+20 {
		t.Errorf("LA 40km count %d vs rural %d: urban clustering too weak", nearLA, nearRural)
	}
}

func TestCreatedUpdatedYears(t *testing.T) {
	for i := range testData.T {
		tr := &testData.T[i]
		if tr.Created < 2005 || tr.Created > 2019 {
			t.Fatalf("created year %d out of range", tr.Created)
		}
		if tr.Updated < tr.Created || tr.Updated > 2019 {
			t.Fatalf("updated %d before created %d", tr.Updated, tr.Created)
		}
	}
}

func TestResolver(t *testing.T) {
	r := NewResolver()
	tr := Transceiver{MCC: 310, MNC: 410}
	if got := r.Provider(&tr); got != geodata.ProviderATT {
		t.Errorf("provider = %q", got)
	}
	if got := r.ProviderGroup(&tr); got != geodata.ProviderATT {
		t.Errorf("group = %q", got)
	}
	reg := Transceiver{MCC: 311, MNC: 580}
	if got := r.ProviderGroup(&reg); got != geodata.ProviderOthersAg {
		t.Errorf("regional group = %q", got)
	}
	bad := Transceiver{MCC: 1, MNC: 1}
	if got := r.Provider(&bad); got != geodata.ProviderUnknown {
		t.Errorf("unknown = %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	small := Generate(testWorld, GenConfig{Seed: 3, Total: 500})
	var buf bytes.Buffer
	if err := small.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), testWorld)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != small.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), small.Len())
	}
	for i := range small.T {
		a, b := small.T[i], back.T[i]
		if a.Radio != b.Radio || a.MCC != b.MCC || a.MNC != b.MNC || a.Cell != b.Cell {
			t.Fatalf("record %d identity mismatch", i)
		}
		if math.Abs(a.Lon-b.Lon) > 1e-5 || math.Abs(a.Lat-b.Lat) > 1e-5 {
			t.Fatalf("record %d position mismatch", i)
		}
		if a.Created != b.Created || a.Updated != b.Updated {
			t.Fatalf("record %d years mismatch: %d/%d vs %d/%d", i, a.Created, a.Updated, b.Created, b.Updated)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,header\n"), testWorld); err == nil {
		t.Error("bad header should error")
	}
	good := strings.Join(csvHeader, ",") + "\n"
	bad := good + "LTE,310,410,1,1,0,NOTANUMBER,34.0,1000,5,1,1262304000,1262304000,0\n"
	if _, err := ReadCSV(strings.NewReader(bad), testWorld); err == nil {
		t.Error("bad lon should error")
	}
	badRadio := good + "6G,310,410,1,1,0,-118.0,34.0,1000,5,1,1262304000,1262304000,0\n"
	if _, err := ReadCSV(strings.NewReader(badRadio), testWorld); err == nil {
		t.Error("bad radio should error")
	}
}

func TestYearUnixRoundTrip(t *testing.T) {
	for y := uint16(1970); y < 2100; y++ {
		if got := unixToYear(yearToUnix(y)); got != y {
			t.Fatalf("year %d round trips to %d", y, got)
		}
	}
}

func BenchmarkGenerate40k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(testWorld, GenConfig{Seed: 1, Total: 40000})
	}
}

func BenchmarkResolver(b *testing.B) {
	r := NewResolver()
	tr := Transceiver{MCC: 310, MNC: 410}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.ProviderGroup(&tr)
	}
}
