package cellnet

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"sync"
	"testing"

	"fivealarms/internal/conus"
)

// fuzzWorld builds the shared decode world once per process: the fuzz
// loop must not pay a world build per input.
var fuzzWorld = sync.OnceValue(func() *conus.World {
	return conus.Build(conus.Config{Seed: 1, CellSizeM: 40000})
})

// FuzzSnapshotDecode hammers the columnar snapshot decoder with
// arbitrary bytes: it must never panic, must reject malformed input
// with an error (no partial store escaping), and on accepted input the
// decoded store must re-encode and re-decode to the same rows.
func FuzzSnapshotDecode(f *testing.F) {
	w := fuzzWorld()
	d := Generate(w, GenConfig{Seed: 11, Total: 400})
	var buf bytes.Buffer
	if err := StoreOf(d.T).WriteSnapshot(&buf); err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:snapshotHeader])
	f.Add(valid[:len(valid)-1])
	trunc := append([]byte(nil), valid...)
	trunc[5] = 0xFF // absurd version
	f.Add(trunc)
	huge := append([]byte(nil), valid[:snapshotHeader]...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<40) // oversized header count
	f.Add(huge)
	flip := append([]byte(nil), valid...)
	flip[snapshotHeader+9] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap input size: a forged header can at most claim
		// snapshotMaxRows, and the reader bails before allocating for
		// payloads it cannot have; the cap keeps the fuzz loop fast.
		if len(data) > 1<<20 {
			return
		}
		st, err := ReadSnapshotStore(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatalf("error %v returned a non-nil store", err)
			}
			return
		}
		// Accepted input: the decode must be self-consistent under a
		// re-encode/decode round trip.
		var out bytes.Buffer
		if err := st.WriteSnapshot(&out); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		again, err := ReadSnapshotStore(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted input: %v", err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("round trip of accepted input not stable")
		}
		// The range reader must agree with the strict reader row by row.
		snap, err := OpenSnapshot(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("OpenSnapshot rejected input ReadSnapshotStore accepted: %v", err)
		}
		if snap.Len() != st.Len() {
			t.Fatalf("range reader rows = %d, strict reader = %d", snap.Len(), st.Len())
		}
		if st.Len() > 0 {
			lo, hi := st.Len()/3, st.Len()/3+(st.Len()+2)/3
			part, err := snap.ReadRange(lo, hi)
			if err != nil {
				t.Fatalf("ReadRange(%d, %d): %v", lo, hi, err)
			}
			for i := 0; i < part.Len(); i++ {
				if part.Row(i) != st.Row(i+lo) {
					t.Fatalf("range row %d disagrees with strict row %d", i, i+lo)
				}
			}
		}
	})
}
