// Package cellnet models the cellular infrastructure layer: an
// OpenCelliD-style database of cell transceivers (the unit of analysis the
// paper settles on, §2.2.3), grouped into sites, attributed to providers
// through MCC/MNC resolution, and positioned by a generative model
// calibrated to real city locations and 2019-era provider/technology
// shares.
package cellnet

import (
	"fmt"
	"sort"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/grid"
)

// Radio is the access technology of a transceiver.
type Radio uint8

// Radio technologies present in the study-period snapshot (no 5G yet,
// as the paper notes).
const (
	GSM Radio = iota
	CDMA
	UMTS
	LTE
	numRadios
)

// String implements fmt.Stringer using OpenCelliD's spelling.
func (r Radio) String() string {
	switch r {
	case GSM:
		return "GSM"
	case CDMA:
		return "CDMA"
	case UMTS:
		return "UMTS"
	case LTE:
		return "LTE"
	default:
		return "UNKNOWN"
	}
}

// ParseRadio converts an OpenCelliD radio string; unknown values report an
// error.
func ParseRadio(s string) (Radio, error) {
	switch s {
	case "GSM":
		return GSM, nil
	case "CDMA":
		return CDMA, nil
	case "UMTS":
		return UMTS, nil
	case "LTE":
		return LTE, nil
	}
	return 0, fmt.Errorf("cellnet: unknown radio %q", s)
}

// Radios lists all radio technologies in declaration order.
func Radios() []Radio { return []Radio{GSM, CDMA, UMTS, LTE} }

// Transceiver is a single cell radio, the study's unit of analysis.
type Transceiver struct {
	XY       geom.Point // projected (CONUS Albers) position
	Lon, Lat float64    // geographic position
	MCC, MNC uint16     // provider identity (resolved via geodata)
	Area     uint16     // LAC/TAC
	Cell     uint32     // cell ID
	SiteID   int32      // grouping: transceivers sharing a site/tower
	StateIdx int16      // index into geodata.States, -1 off-CONUS
	Radio    Radio
	Created  uint16 // record-creation year
	Updated  uint16 // last-update year
	Samples  uint16 // crowdsourced observation count
}

// Dataset is an immutable transceiver database plus its spatial index.
type Dataset struct {
	T     []Transceiver
	Index *grid.Index // over projected positions
	World *conus.World
}

// NewDataset wraps transceivers with a spatial index. The slice is
// retained.
func NewDataset(w *conus.World, ts []Transceiver) *Dataset {
	pts := make([]geom.Point, len(ts))
	for i := range ts {
		pts[i] = ts[i].XY
	}
	return &Dataset{T: ts, Index: grid.New(pts, 0), World: w}
}

// Len returns the number of transceivers.
func (d *Dataset) Len() int { return len(d.T) }

// Sites returns the number of distinct sites.
func (d *Dataset) Sites() int {
	seen := map[int32]bool{}
	for i := range d.T {
		seen[d.T[i].SiteID] = true
	}
	return len(seen)
}

// CountByState returns per-state transceiver counts indexed like
// geodata.States.
func (d *Dataset) CountByState() []int {
	out := make([]int, len(geodata.States))
	for i := range d.T {
		if si := d.T[i].StateIdx; si >= 0 && int(si) < len(out) {
			out[si]++
		}
	}
	return out
}

// CountByRadio returns per-technology counts.
func (d *Dataset) CountByRadio() map[Radio]int {
	out := map[Radio]int{}
	for i := range d.T {
		out[d.T[i].Radio]++
	}
	return out
}

// Resolver maps MCC/MNC pairs to provider names in O(1), replacing the
// linear table scan for the hot overlay loops.
type Resolver struct {
	m map[uint32]string
}

// NewResolver builds a resolver from the embedded geodata table.
func NewResolver() *Resolver {
	r := &Resolver{m: make(map[uint32]string, len(geodata.MCCMNCTable))}
	for _, e := range geodata.MCCMNCTable {
		r.m[uint32(e.MCC)<<16|uint32(e.MNC)] = e.Provider
	}
	return r
}

// Provider resolves a transceiver's provider name, geodata.ProviderUnknown
// when the code pair is unallocated.
func (r *Resolver) Provider(t *Transceiver) string {
	if p, ok := r.m[uint32(t.MCC)<<16|uint32(t.MNC)]; ok {
		return p
	}
	return geodata.ProviderUnknown
}

// ProviderGroup resolves to the Table 2 grouping: one of the four national
// carriers, or "Others" for everything else.
func (r *Resolver) ProviderGroup(t *Transceiver) string {
	p := r.Provider(t)
	if geodata.IsMajorProvider(p) {
		return p
	}
	return geodata.ProviderOthersAg
}

// CountByProviderGroup returns transceiver counts per Table 2 provider
// group.
func (d *Dataset) CountByProviderGroup(r *Resolver) map[string]int {
	out := map[string]int{}
	for i := range d.T {
		out[r.ProviderGroup(&d.T[i])]++
	}
	return out
}

// DistinctProviders returns the sorted distinct resolved provider names.
func (d *Dataset) DistinctProviders(r *Resolver) []string {
	seen := map[string]bool{}
	for i := range d.T {
		seen[r.Provider(&d.T[i])] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
