package cellnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
)

// Binary dataset format: a compact fixed-width record stream for fast
// save/load of large snapshots (the full-scale 5.36M-row dataset parses
// ~20x faster than CSV). Layout (little-endian):
//
//	magic   [4]byte  "FA5A"
//	version uint16   (1)
//	count   uint64
//	records count x {
//	  lon, lat float64
//	  mcc, mnc, area uint16
//	  cell uint32
//	  siteID int32
//	  radio, created-2000, updated-2000 uint8
//	  samples uint16
//	}
//
// Projected positions and state assignments are recomputed on load from
// the world, so the file stays world-independent.

var binaryMagic = [4]byte{'F', 'A', '5', 'A'}

const binaryVersion = 1

// ErrBadFormat is wrapped by binary-codec errors.
var ErrBadFormat = errors.New("cellnet: bad binary format")

const recordSize = 8 + 8 + 2 + 2 + 2 + 4 + 4 + 1 + 1 + 1 + 2 // 35 bytes

// WriteBinary streams the dataset in the compact binary format.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("cellnet: writing magic: %w", err)
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(len(d.T)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("cellnet: writing header: %w", err)
	}
	var rec [recordSize]byte
	for i := range d.T {
		t := &d.T[i]
		binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(t.Lon))
		binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(t.Lat))
		binary.LittleEndian.PutUint16(rec[16:18], t.MCC)
		binary.LittleEndian.PutUint16(rec[18:20], t.MNC)
		binary.LittleEndian.PutUint16(rec[20:22], t.Area)
		binary.LittleEndian.PutUint32(rec[22:26], t.Cell)
		binary.LittleEndian.PutUint32(rec[26:30], uint32(t.SiteID))
		rec[30] = uint8(t.Radio)
		rec[31] = clampYear(t.Created)
		rec[32] = clampYear(t.Updated)
		binary.LittleEndian.PutUint16(rec[33:35], t.Samples)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("cellnet: writing record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cellnet: flushing: %w", err)
	}
	return nil
}

func clampYear(y uint16) uint8 {
	if y < 2000 {
		return 0
	}
	if y > 2255 {
		return 255
	}
	return uint8(y - 2000)
}

// ReadBinary parses the compact format, recomputing projections and state
// assignments against the world.
func ReadBinary(r io.Reader, w *conus.World) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != binaryVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(hdr[2:10])
	const maxRecords = 1 << 26 // 67M: generous for any realistic snapshot
	if count > maxRecords {
		return nil, fmt.Errorf("%w: %d records exceeds limit", ErrBadFormat, count)
	}
	ts := make([]Transceiver, 0, count)
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		var t Transceiver
		t.Lon = math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8]))
		t.Lat = math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		t.MCC = binary.LittleEndian.Uint16(rec[16:18])
		t.MNC = binary.LittleEndian.Uint16(rec[18:20])
		t.Area = binary.LittleEndian.Uint16(rec[20:22])
		t.Cell = binary.LittleEndian.Uint32(rec[22:26])
		t.SiteID = int32(binary.LittleEndian.Uint32(rec[26:30]))
		t.Radio = Radio(rec[30])
		t.Created = 2000 + uint16(rec[31])
		t.Updated = 2000 + uint16(rec[32])
		t.Samples = binary.LittleEndian.Uint16(rec[33:35])
		if t.Radio >= numRadios {
			return nil, fmt.Errorf("%w: record %d: radio %d", ErrBadFormat, i, t.Radio)
		}
		if math.IsNaN(t.Lon) || math.IsNaN(t.Lat) ||
			t.Lon < -180 || t.Lon > 180 || t.Lat < -90 || t.Lat > 90 {
			return nil, fmt.Errorf("%w: record %d: position (%v, %v)", ErrBadFormat, i, t.Lon, t.Lat)
		}
		t.XY = w.ToXY(pointLL(t.Lon, t.Lat))
		t.StateIdx = int16(w.StateAt(t.XY))
		ts = append(ts, t)
	}
	// Trailing bytes indicate corruption.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after %d records", ErrBadFormat, count)
	}
	return NewDataset(w, ts), nil
}

// pointLL builds a geographic point from lon/lat.
func pointLL(lon, lat float64) geom.Point { return geom.Point{X: lon, Y: lat} }
