package cellnet

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"fivealarms/internal/conus"
)

func snapTestWorld(t testing.TB) *conus.World {
	t.Helper()
	return conus.Build(conus.Config{Seed: 1, CellSizeM: 40000})
}

func snapTestDataset(t testing.TB, w *conus.World, n int) *Dataset {
	t.Helper()
	d := Generate(w, GenConfig{Seed: 11, Total: n})
	if d.Len() < 8 {
		t.Fatalf("generator produced %d rows for Total=%d; tests need at least 8", d.Len(), n)
	}
	return d
}

// encodeSnapshot is the test helper: dataset -> snapshot bytes.
func encodeSnapshot(t testing.TB, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := StoreOf(d.T).WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 2000)
	raw := encodeSnapshot(t, d)
	if want := snapshotSize(d.Len()); int64(len(raw)) != want {
		t.Fatalf("snapshot size = %d, want %d", len(raw), want)
	}
	got, err := ReadSnapshot(bytes.NewReader(raw), w)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round-trip length = %d, want %d", got.Len(), d.Len())
	}
	// Bit-identical round trip, including the projected position: the
	// snapshot serializes x/y rather than reprojecting on load.
	if !reflect.DeepEqual(got.T, d.T) {
		for i := range d.T {
			if got.T[i] != d.T[i] {
				t.Fatalf("row %d differs:\n got %+v\nwant %+v", i, got.T[i], d.T[i])
			}
		}
		t.Fatalf("datasets differ")
	}
}

func TestSnapshotStoreRoundTrip(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 500)
	st := StoreOf(d.T)
	raw := encodeSnapshot(t, d)
	got, err := ReadSnapshotStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadSnapshotStore: %v", err)
	}
	// State is unassigned until AssignStates.
	for i, s := range got.State {
		if s != 0 {
			t.Fatalf("row %d state pre-assignment = %d, want 0", i, s)
		}
	}
	got.AssignStates(w)
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("store round trip differs")
	}
	if got.Bytes() != st.Bytes() || got.Bytes() <= 0 {
		t.Fatalf("bytes accounting: got %d want %d", got.Bytes(), st.Bytes())
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 64)
	raw := encodeSnapshot(t, d)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"nonzero flags", func(b []byte) []byte { b[6] = 1; return b }},
		{"oversized count", func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}},
		{"declared count beyond payload", func(b []byte) []byte { b[8]++; return b }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated columns", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-3] }},
		{"flipped column bit", func(b []byte) []byte { b[snapshotHeader+17] ^= 0x10; return b }},
		{"flipped checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), raw...))
			if _, err := ReadSnapshot(bytes.NewReader(mut), w); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("ReadSnapshot(%s) err = %v, want ErrBadFormat", tc.name, err)
			}
		})
	}
}

func TestSnapshotRejectsBadRows(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 400)
	// Corrupt semantic fields pre-encode so header and checksum stay
	// valid: decode must still reject the rows.
	for name, mut := range map[string]func(*Store){
		"bad radio":     func(s *Store) { s.Radio[3] = 200 },
		"nan lon":       func(s *Store) { s.Lon[1] = math.NaN() },
		"lat range":     func(s *Store) { s.Lat[2] = 91 },
		"inf projected": func(s *Store) { s.X[4] = math.Inf(1) },
	} {
		t.Run(name, func(t *testing.T) {
			st := StoreOf(d.T)
			mut(st)
			var buf bytes.Buffer
			if err := st.WriteSnapshot(&buf); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			if _, err := ReadSnapshotStore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, want ErrBadFormat", err)
			}
		})
	}
}

func TestOpenSnapshotRangeReads(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 999)
	raw := encodeSnapshot(t, d)
	snap, err := OpenSnapshot(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	n := d.Len()
	if snap.Len() != n {
		t.Fatalf("Len = %d, want %d", snap.Len(), n)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	full := StoreOf(d.T)
	for _, r := range [][2]int{{0, n}, {0, 0}, {n, n}, {0, 1}, {n - 1, n}, {n / 7, n / 2}} {
		st, err := snap.ReadRange(r[0], r[1])
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", r[0], r[1], err)
		}
		if st.Len() != r[1]-r[0] {
			t.Fatalf("ReadRange(%d, %d) rows = %d", r[0], r[1], st.Len())
		}
		st.AssignStates(w)
		for i := 0; i < st.Len(); i++ {
			if got, want := st.Row(i), full.Row(r[0]+i); got != want {
				t.Fatalf("range [%d,%d) row %d differs:\n got %+v\nwant %+v", r[0], r[1], i, got, want)
			}
		}
	}
	for _, r := range [][2]int{{-1, 5}, {5, 4}, {0, n + 1}} {
		if _, err := snap.ReadRange(r[0], r[1]); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("ReadRange(%d, %d) err = %v, want ErrBadFormat", r[0], r[1], err)
		}
	}
}

func TestOpenSnapshotRejectsSizeMismatch(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 32)
	raw := encodeSnapshot(t, d)
	if _, err := OpenSnapshot(bytes.NewReader(raw), int64(len(raw))-1); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short size err = %v, want ErrBadFormat", err)
	}
	if _, err := OpenSnapshot(bytes.NewReader(raw), int64(len(raw))+8); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("padded size err = %v, want ErrBadFormat", err)
	}
	if _, err := OpenSnapshot(bytes.NewReader(raw[:4]), 4); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("tiny file err = %v, want ErrBadFormat", err)
	}
}

func TestStoreSelectAndRows(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 100)
	st := StoreOf(d.T)
	if st.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", st.Len(), d.Len())
	}
	all := st.Transceivers()
	if !reflect.DeepEqual(all, d.T) {
		t.Fatalf("Transceivers() differs from source")
	}
	idx := []int{st.Len() - 1, 0, st.Len() / 2, st.Len() / 2}
	rows := st.AppendRows(nil, idx)
	if len(rows) != len(idx) {
		t.Fatalf("AppendRows len = %d", len(rows))
	}
	for i, want := range idx {
		if rows[i] != d.T[want] {
			t.Fatalf("AppendRows[%d] = %+v, want row %d", i, rows[i], want)
		}
	}
}

// TestSnapshotReadFailurePropagates covers the ReaderAt error path.
func TestSnapshotReadFailurePropagates(t *testing.T) {
	w := snapTestWorld(t)
	d := snapTestDataset(t, w, 200)
	raw := encodeSnapshot(t, d)
	snap, err := OpenSnapshot(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	// Swap in a reader that fails beyond the header.
	snap.ra = io.NewSectionReader(bytes.NewReader(raw), 0, snapshotHeader)
	if _, err := snap.ReadRange(0, d.Len()); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}
