package cellnet

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	small := Generate(testWorld, GenConfig{Seed: 3, Total: 2000})
	var buf bytes.Buffer
	if err := small.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	wantSize := 14 + small.Len()*recordSize
	if buf.Len() != wantSize {
		t.Errorf("binary size = %d, want %d", buf.Len(), wantSize)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()), testWorld)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != small.Len() {
		t.Fatalf("round trip %d != %d", back.Len(), small.Len())
	}
	for i := range small.T {
		a, b := small.T[i], back.T[i]
		if a.Radio != b.Radio || a.MCC != b.MCC || a.MNC != b.MNC ||
			a.Area != b.Area || a.Cell != b.Cell || a.SiteID != b.SiteID ||
			a.Created != b.Created || a.Updated != b.Updated || a.Samples != b.Samples {
			t.Fatalf("record %d fields mismatch", i)
		}
		if a.Lon != b.Lon || a.Lat != b.Lat {
			t.Fatalf("record %d position mismatch", i)
		}
		// Recomputed projection must match exactly (same world, full
		// float64 lon/lat preserved).
		if math.Abs(a.XY.X-b.XY.X) > 1e-6 || math.Abs(a.XY.Y-b.XY.Y) > 1e-6 {
			t.Fatalf("record %d projected mismatch", i)
		}
		if a.StateIdx != b.StateIdx {
			t.Fatalf("record %d state mismatch", i)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	small := Generate(testWorld, GenConfig{Seed: 3, Total: 100})
	var buf bytes.Buffer
	if err := small.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-5],
		"trailing":  append(append([]byte{}, good...), 0xFF),
		"bad radio": corrupt(good, 14+30, 99),
		"bad count": corruptCount(good, 1<<30),
		"nan lon":   corruptNaN(good),
	}
	for name, data := range cases {
		_, err := ReadBinary(bytes.NewReader(data), testWorld)
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: error not wrapped: %v", name, err)
		}
	}
}

func corrupt(b []byte, off int, v byte) []byte {
	out := append([]byte{}, b...)
	out[off] = v
	return out
}

func corruptCount(b []byte, n uint64) []byte {
	out := append([]byte{}, b...)
	for i := 0; i < 8; i++ {
		out[6+i] = byte(n >> (8 * i))
	}
	return out
}

func corruptNaN(b []byte) []byte {
	out := append([]byte{}, b...)
	// Overwrite the first record's lon with NaN bits.
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		out[14+i] = byte(nan >> (8 * i))
	}
	return out
}

func BenchmarkBinaryRead(b *testing.B) {
	small := Generate(testWorld, GenConfig{Seed: 3, Total: 5000})
	var buf bytes.Buffer
	if err := small.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data), testWorld); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRead(b *testing.B) {
	small := Generate(testWorld, GenConfig{Seed: 3, Total: 5000})
	var buf bytes.Buffer
	if err := small.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data), testWorld); err != nil {
			b.Fatal(err)
		}
	}
}
