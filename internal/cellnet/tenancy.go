package cellnet

import "sort"

// SiteInfo summarizes one cell site (§2.2.3's site/tower/transceiver
// distinction): its transceiver count and provider mix.
type SiteInfo struct {
	SiteID       int32
	Transceivers int
	Providers    int // distinct provider groups at the site
}

// TenancySummary describes the site-level structure of the dataset.
type TenancySummary struct {
	Sites            int
	MeanTransceivers float64
	MaxTransceivers  int
	// Histogram[k] counts sites hosting exactly k transceivers
	// (k capped at len(Histogram)-1).
	Histogram []int
}

// Tenancy computes the per-site transceiver distribution — the structure
// the paper's Figure 1 describes and the reason its analysis settles on
// transceivers rather than towers (tower identity is uncertain in
// OpenCelliD; co-location must be inferred).
func (d *Dataset) Tenancy(r *Resolver) ([]SiteInfo, TenancySummary) {
	type agg struct {
		n         int
		providers map[string]bool
	}
	byID := map[int32]*agg{}
	for i := range d.T {
		t := &d.T[i]
		a := byID[t.SiteID]
		if a == nil {
			a = &agg{providers: map[string]bool{}}
			byID[t.SiteID] = a
		}
		a.n++
		a.providers[r.ProviderGroup(t)] = true
	}
	infos := make([]SiteInfo, 0, len(byID))
	for id, a := range byID {
		infos = append(infos, SiteInfo{SiteID: id, Transceivers: a.n, Providers: len(a.providers)})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].SiteID < infos[j].SiteID })

	sum := TenancySummary{Sites: len(infos), Histogram: make([]int, 17)}
	for _, s := range infos {
		sum.MeanTransceivers += float64(s.Transceivers)
		if s.Transceivers > sum.MaxTransceivers {
			sum.MaxTransceivers = s.Transceivers
		}
		k := s.Transceivers
		if k >= len(sum.Histogram) {
			k = len(sum.Histogram) - 1
		}
		sum.Histogram[k]++
	}
	if sum.Sites > 0 {
		sum.MeanTransceivers /= float64(sum.Sites)
	}
	return infos, sum
}
