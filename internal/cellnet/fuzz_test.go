package cellnet

import (
	"strings"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	header := strings.Join(csvHeader, ",") + "\n"
	f.Add(header)
	f.Add(header + "LTE,310,410,12,99,0,-118.200000,34.100000,1000,5,1,1262304000,1262304000,0\n")
	f.Add(header + "GSM,310,260,1,2,0,-80.1,25.7,1000,1,1,1104537600,1420070400,0\n")
	f.Add(header + "LTE,310,410,12\n")                                // short record
	f.Add("radio,mcc\nLTE,310\n")                                     // wrong header
	f.Add(header + "5G,310,410,12,99,0,-118.2,34.1,1000,5,1,0,0,0\n") // bad radio
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return
		}
		d, err := ReadCSV(strings.NewReader(s), testWorld)
		if err != nil {
			return
		}
		// Successful parses produce internally consistent datasets.
		if d.Len() != len(d.T) {
			t.Fatal("length mismatch")
		}
		for i := range d.T {
			if d.T[i].Updated < d.T[i].Created {
				// The generator enforces this; arbitrary CSVs may not —
				// the reader must still not corrupt other fields, so just
				// check the index agrees with the record count.
				break
			}
		}
		if d.Index.Len() != d.Len() {
			t.Fatal("index length mismatch")
		}
	})
}
