package cellnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"fivealarms/internal/conus"
)

// Columnar snapshot format: the full-paper-scale on-disk layout of a
// transceiver store. Where the v1 record stream (binary.go) interleaves
// fields per row, the snapshot lays each column out contiguously, so an
// out-of-core reader can fetch any row range of any column with one
// ReadAt per column — the access pattern of the sharded study build.
// Layout (little-endian):
//
//	magic    [4]byte "FA5C"
//	version  uint16  (1)
//	flags    uint16  (0; readers reject nonzero)
//	count    uint64
//	columns, each count long, in this order:
//	  x, y      float64   projected CONUS Albers position
//	  lon, lat  float64   geographic position
//	  mcc, mnc  uint16
//	  area      uint16
//	  cell      uint32
//	  site      uint32    (SiteID two's-complement)
//	  radio     uint8
//	  created   uint8     (year-2000, clamped like the record codec)
//	  updated   uint8
//	  samples   uint16
//	checksum uint64  FNV-1a over every preceding byte
//
// Unlike the record codec, the snapshot serializes the projected x/y
// columns: the Albers projection is a program constant, and storing the
// projected bits makes a warm-loaded study bit-identical to a cold
// build (ToXY(ToLonLat(p)) does not round-trip to the last ulp). State
// assignment is still recomputed on load, keeping files world-raster
// independent.

var snapshotMagic = [4]byte{'F', 'A', '5', 'C'}

const (
	snapshotVersion = 1
	// snapshotHeader is magic+version+flags+count.
	snapshotHeader = 4 + 2 + 2 + 8
	// snapshotRowBytes is the per-row payload across all columns.
	snapshotRowBytes = 8 + 8 + 8 + 8 + 2 + 2 + 2 + 4 + 4 + 1 + 1 + 1 + 2 // 51
	// snapshotMaxRows mirrors the record codec's 67M cap: generous for
	// any realistic snapshot, small enough to refuse absurd headers
	// before allocating.
	snapshotMaxRows = 1 << 26
)

// snapshotColWidths lists the column element widths in wire order.
var snapshotColWidths = [...]int{8, 8, 8, 8, 2, 2, 2, 4, 4, 1, 1, 1, 2}

// snapshotColOffset returns the file offset of column col's first byte
// for an n-row snapshot.
func snapshotColOffset(col, n int) int64 {
	off := int64(snapshotHeader)
	for c := 0; c < col; c++ {
		off += int64(snapshotColWidths[c]) * int64(n)
	}
	return off
}

// WriteSnapshot streams the store in the columnar snapshot format.
func (s *Store) WriteSnapshot(w io.Writer) error {
	h := fnv.New64a()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	var hdr [snapshotHeader]byte
	copy(hdr[0:4], snapshotMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], snapshotVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(s.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("cellnet: writing snapshot header: %w", err)
	}
	cols := []func(i int, b []byte) int{
		func(i int, b []byte) int { binary.LittleEndian.PutUint64(b, math.Float64bits(s.X[i])); return 8 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint64(b, math.Float64bits(s.Y[i])); return 8 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint64(b, math.Float64bits(s.Lon[i])); return 8 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint64(b, math.Float64bits(s.Lat[i])); return 8 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint16(b, s.MCC[i]); return 2 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint16(b, s.MNC[i]); return 2 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint16(b, s.Area[i]); return 2 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint32(b, s.Cell[i]); return 4 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint32(b, uint32(s.Site[i])); return 4 },
		func(i int, b []byte) int { b[0] = s.Radio[i]; return 1 },
		func(i int, b []byte) int { b[0] = clampYear(s.Created[i]); return 1 },
		func(i int, b []byte) int { b[0] = clampYear(s.Updated[i]); return 1 },
		func(i int, b []byte) int { binary.LittleEndian.PutUint16(b, s.Samples[i]); return 2 },
	}
	var buf [8]byte
	for ci, put := range cols {
		for i := 0; i < s.Len(); i++ {
			n := put(i, buf[:])
			if _, err := bw.Write(buf[:n]); err != nil {
				return fmt.Errorf("cellnet: writing snapshot column %d: %w", ci, err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cellnet: flushing snapshot: %w", err)
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("cellnet: writing snapshot checksum: %w", err)
	}
	return nil
}

// parseSnapshotHeader validates the fixed header and returns the row
// count. Errors wrap ErrBadFormat.
func parseSnapshotHeader(hdr []byte) (int, error) {
	var magic [4]byte
	copy(magic[:], hdr[0:4])
	if magic != snapshotMagic {
		return 0, fmt.Errorf("%w: snapshot magic %q", ErrBadFormat, magic[:])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != snapshotVersion {
		return 0, fmt.Errorf("%w: snapshot version %d", ErrBadFormat, v)
	}
	if f := binary.LittleEndian.Uint16(hdr[6:8]); f != 0 {
		return 0, fmt.Errorf("%w: snapshot flags %#x", ErrBadFormat, f)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > snapshotMaxRows {
		return 0, fmt.Errorf("%w: snapshot declares %d rows, limit %d", ErrBadFormat, count, snapshotMaxRows)
	}
	return int(count), nil
}

// snapshotSize returns the exact file size of an n-row snapshot.
func snapshotSize(n int) int64 {
	return int64(snapshotHeader) + int64(n)*snapshotRowBytes + 8
}

// validateSnapshotRow applies the per-row invariants shared by every
// decode path: a known radio technology, geographic coordinates in
// range, and finite projected coordinates.
func validateSnapshotRow(s *Store, i int) error {
	if Radio(s.Radio[i]) >= numRadios {
		return fmt.Errorf("%w: snapshot row %d: radio %d", ErrBadFormat, i, s.Radio[i])
	}
	if math.IsNaN(s.Lon[i]) || math.IsNaN(s.Lat[i]) ||
		s.Lon[i] < -180 || s.Lon[i] > 180 || s.Lat[i] < -90 || s.Lat[i] > 90 {
		return fmt.Errorf("%w: snapshot row %d: position (%v, %v)", ErrBadFormat, i, s.Lon[i], s.Lat[i])
	}
	if math.IsNaN(s.X[i]) || math.IsInf(s.X[i], 0) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
		return fmt.Errorf("%w: snapshot row %d: projected (%v, %v)", ErrBadFormat, i, s.X[i], s.Y[i])
	}
	return nil
}

// decodeSnapshotColumns parses the column payload of an n-row snapshot
// from raw (which must hold exactly the column bytes) into a Store with
// the State column zeroed.
func decodeSnapshotColumns(raw []byte, n int) *Store {
	s := NewStore(n)
	off := 0
	f64 := func(dst []float64) {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			off += 8
		}
	}
	u16 := func(dst []uint16) {
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint16(raw[off:])
			off += 2
		}
	}
	f64(s.X)
	f64(s.Y)
	f64(s.Lon)
	f64(s.Lat)
	u16(s.MCC)
	u16(s.MNC)
	u16(s.Area)
	for i := range s.Cell {
		s.Cell[i] = binary.LittleEndian.Uint32(raw[off:])
		off += 4
	}
	for i := range s.Site {
		s.Site[i] = int32(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
	}
	copy(s.Radio, raw[off:off+n])
	off += n
	for i := range s.Created {
		s.Created[i] = 2000 + uint16(raw[off+i])
	}
	off += n
	for i := range s.Updated {
		s.Updated[i] = 2000 + uint16(raw[off+i])
	}
	off += n
	u16(s.Samples)
	return s
}

// ReadSnapshotStore parses a whole columnar snapshot strictly: header,
// checksum, per-row validation and trailing-byte detection. The State
// column of the returned store is unassigned (all zero) — callers
// resolve it against a world with AssignStates, or use ReadSnapshot.
// No partially decoded store ever escapes: any error returns nil.
func ReadSnapshotStore(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [snapshotHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading snapshot header: %v", ErrBadFormat, err)
	}
	n, err := parseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	raw := make([]byte, int64(n)*snapshotRowBytes)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("%w: reading snapshot columns: %v", ErrBadFormat, err)
	}
	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: reading snapshot checksum: %v", ErrBadFormat, err)
	}
	h := fnv.New64a()
	h.Write(hdr[:])
	h.Write(raw)
	if got := binary.LittleEndian.Uint64(sum[:]); got != h.Sum64() {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrBadFormat)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after %d snapshot rows", ErrBadFormat, n)
	}
	s := decodeSnapshotColumns(raw, n)
	for i := 0; i < n; i++ {
		if err := validateSnapshotRow(s, i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReadSnapshot parses a whole columnar snapshot and resolves it into a
// Dataset over the world (state assignment recomputed, spatial index
// rebuilt). Projected positions come from the file bit-for-bit, so a
// dataset written by the same program version round-trips exactly.
func ReadSnapshot(r io.Reader, w *conus.World) (*Dataset, error) {
	s, err := ReadSnapshotStore(r)
	if err != nil {
		return nil, err
	}
	s.AssignStates(w)
	return NewDataset(w, s.Transceivers()), nil
}

// Snapshot is an open columnar snapshot positioned for out-of-core
// range reads: the header has been validated against the file size, and
// ReadRange fetches any row window with one ReadAt per column. The
// trailer checksum is NOT verified by OpenSnapshot (that would read the
// whole file, defeating the point) — run Verify for an end-to-end
// integrity pass, or use ReadSnapshot for strict whole-file loads.
type Snapshot struct {
	ra io.ReaderAt
	n  int
}

// OpenSnapshot validates the header of a columnar snapshot backed by an
// io.ReaderAt of the given total size and returns a range reader. The
// size must match the row count exactly; a truncated or padded file is
// rejected here, before any column read.
func OpenSnapshot(ra io.ReaderAt, size int64) (*Snapshot, error) {
	var hdr [snapshotHeader]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: reading snapshot header: %v", ErrBadFormat, err)
	}
	n, err := parseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if want := snapshotSize(n); size != want {
		return nil, fmt.Errorf("%w: snapshot size %d, want %d for %d rows", ErrBadFormat, size, want, n)
	}
	return &Snapshot{ra: ra, n: n}, nil
}

// Len returns the snapshot's row count.
func (s *Snapshot) Len() int { return s.n }

// ReadRange decodes rows [lo, hi) into a Store (State unassigned),
// reading only those rows' bytes of each column. Rows are validated;
// no partially decoded store escapes.
func (s *Snapshot) ReadRange(lo, hi int) (*Store, error) {
	if lo < 0 || hi < lo || hi > s.n {
		return nil, fmt.Errorf("%w: snapshot range [%d, %d) outside %d rows", ErrBadFormat, lo, hi, s.n)
	}
	n := hi - lo
	raw := make([]byte, int64(n)*snapshotRowBytes)
	off := 0
	for col, width := range snapshotColWidths {
		span := n * width
		at := snapshotColOffset(col, s.n) + int64(lo)*int64(width)
		if _, err := s.ra.ReadAt(raw[off:off+span], at); err != nil {
			return nil, fmt.Errorf("%w: reading snapshot column %d rows [%d, %d): %v", ErrBadFormat, col, lo, hi, err)
		}
		off += span
	}
	st := decodeSnapshotColumns(raw, n)
	for i := 0; i < n; i++ {
		if err := validateSnapshotRow(st, i); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Verify re-reads the whole snapshot sequentially and checks the
// trailer checksum, returning nil on an intact file.
func (s *Snapshot) Verify() error {
	_, err := ReadSnapshotStore(io.NewSectionReader(s.ra, 0, snapshotSize(s.n)))
	return err
}
