package cellnet

import "testing"

func TestTenancy(t *testing.T) {
	r := NewResolver()
	infos, sum := testData.Tenancy(r)
	if sum.Sites != testData.Sites() {
		t.Errorf("sites %d != %d", sum.Sites, testData.Sites())
	}
	if len(infos) != sum.Sites {
		t.Errorf("infos = %d", len(infos))
	}
	var total int
	for _, s := range infos {
		if s.Transceivers <= 0 || s.Providers <= 0 {
			t.Fatalf("bad site info %+v", s)
		}
		total += s.Transceivers
	}
	if total != testData.Len() {
		t.Errorf("tenancy sums to %d of %d", total, testData.Len())
	}
	if sum.MeanTransceivers < 2 || sum.MeanTransceivers > 8 {
		t.Errorf("mean tenancy = %v", sum.MeanTransceivers)
	}
	if sum.MaxTransceivers < int(sum.MeanTransceivers) {
		t.Error("max below mean")
	}
	// Histogram covers all sites.
	var hSum int
	for _, n := range sum.Histogram {
		hSum += n
	}
	if hSum != sum.Sites {
		t.Errorf("histogram sums to %d of %d", hSum, sum.Sites)
	}
	// Sites host a single tenant in this generator (co-located sites
	// model multi-tenancy), so the provider count per site is 1.
	limit := 100
	if len(infos) < limit {
		limit = len(infos)
	}
	for _, s := range infos[:limit] {
		if s.Providers != 1 {
			t.Fatalf("site %d has %d provider groups", s.SiteID, s.Providers)
		}
	}
}
