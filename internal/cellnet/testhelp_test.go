package cellnet

import "fivealarms/internal/geom"

// geomBBox builds a bbox from raw coordinates, shortening filter tests.
func geomBBox(x0, y0, x1, y1 float64) geom.BBox {
	return geom.NewBBox(geom.Pt(x0, y0), geom.Pt(x1, y1))
}
