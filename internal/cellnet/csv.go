package cellnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
)

// csvHeader is the OpenCelliD export column layout.
var csvHeader = []string{
	"radio", "mcc", "net", "area", "cell", "unit",
	"lon", "lat", "range", "samples", "changeable",
	"created", "updated", "averageSignal",
}

// WriteCSV streams the dataset in OpenCelliD CSV format. Years are encoded
// as Unix timestamps at year boundaries, matching the upstream export's
// integer-seconds columns.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("cellnet: writing CSV header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for i := range d.T {
		t := &d.T[i]
		rec[0] = t.Radio.String()
		rec[1] = strconv.Itoa(int(t.MCC))
		rec[2] = strconv.Itoa(int(t.MNC))
		rec[3] = strconv.Itoa(int(t.Area))
		rec[4] = strconv.Itoa(int(t.Cell))
		rec[5] = "0"
		rec[6] = strconv.FormatFloat(t.Lon, 'f', 6, 64)
		rec[7] = strconv.FormatFloat(t.Lat, 'f', 6, 64)
		rec[8] = "1000"
		rec[9] = strconv.Itoa(int(t.Samples))
		rec[10] = "1"
		rec[11] = strconv.FormatInt(yearToUnix(t.Created), 10)
		rec[12] = strconv.FormatInt(yearToUnix(t.Updated), 10)
		rec[13] = "0"
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("cellnet: writing CSV record %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("cellnet: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV parses an OpenCelliD-format CSV into a Dataset, projecting
// positions with the world's projection and attributing states through
// the world's zone raster. Unknown radio values and malformed rows
// produce errors identifying the offending line.
func ReadCSV(r io.Reader, w *conus.World) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("cellnet: reading CSV header: %w", err)
	}
	if header[0] != "radio" || header[6] != "lon" {
		return nil, fmt.Errorf("cellnet: unexpected CSV header %v", header)
	}
	var ts []Transceiver
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("cellnet: reading CSV line %d: %w", line, err)
		}
		t, err := parseRecord(rec, w)
		if err != nil {
			return nil, fmt.Errorf("cellnet: line %d: %w", line, err)
		}
		ts = append(ts, t)
	}
	return NewDataset(w, ts), nil
}

func parseRecord(rec []string, w *conus.World) (Transceiver, error) {
	var t Transceiver
	radio, err := ParseRadio(rec[0])
	if err != nil {
		return t, err
	}
	mcc, err := strconv.Atoi(rec[1])
	if err != nil {
		return t, fmt.Errorf("bad mcc %q: %w", rec[1], err)
	}
	mnc, err := strconv.Atoi(rec[2])
	if err != nil {
		return t, fmt.Errorf("bad net %q: %w", rec[2], err)
	}
	area, err := strconv.Atoi(rec[3])
	if err != nil {
		return t, fmt.Errorf("bad area %q: %w", rec[3], err)
	}
	cell, err := strconv.ParseUint(rec[4], 10, 32)
	if err != nil {
		return t, fmt.Errorf("bad cell %q: %w", rec[4], err)
	}
	lon, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return t, fmt.Errorf("bad lon %q: %w", rec[6], err)
	}
	lat, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return t, fmt.Errorf("bad lat %q: %w", rec[7], err)
	}
	samples, err := strconv.Atoi(rec[9])
	if err != nil {
		return t, fmt.Errorf("bad samples %q: %w", rec[9], err)
	}
	created, err := strconv.ParseInt(rec[11], 10, 64)
	if err != nil {
		return t, fmt.Errorf("bad created %q: %w", rec[11], err)
	}
	updated, err := strconv.ParseInt(rec[12], 10, 64)
	if err != nil {
		return t, fmt.Errorf("bad updated %q: %w", rec[12], err)
	}

	t.Radio = radio
	t.MCC = uint16(mcc)
	t.MNC = uint16(mnc)
	t.Area = uint16(area)
	t.Cell = uint32(cell)
	t.Lon = lon
	t.Lat = lat
	t.Samples = uint16(min(samples, 65535))
	t.Created = unixToYear(created)
	t.Updated = unixToYear(updated)
	t.XY = w.ToXY(geom.Point{X: lon, Y: lat})
	t.StateIdx = int16(w.StateAt(t.XY))
	return t, nil
}

// yearToUnix converts a calendar year to the Unix timestamp of its Jan 1
// (UTC), without the time package so the codec stays allocation-free.
func yearToUnix(year uint16) int64 {
	days := int64(0)
	for y := 1970; y < int(year); y++ {
		days += 365
		if isLeap(y) {
			days++
		}
	}
	return days * 86400
}

func unixToYear(ts int64) uint16 {
	days := ts / 86400
	y := 1970
	for {
		l := int64(365)
		if isLeap(y) {
			l++
		}
		if days < l {
			return uint16(y)
		}
		days -= l
		y++
	}
}

func isLeap(y int) bool {
	return (y%4 == 0 && y%100 != 0) || y%400 == 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
