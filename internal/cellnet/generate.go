package cellnet

import (
	"math"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
)

// GenConfig parameterizes the synthetic OpenCelliD snapshot.
type GenConfig struct {
	// Seed drives all random choices. Defaults to 1.
	Seed uint64
	// Total is the national transceiver count. Defaults to 250_000; the
	// full-scale reproduction uses geodata.PaperTransceivers (5.36M).
	Total int
	// SiteMeanTransceivers is the mean number of co-located transceivers
	// per cell site. Defaults to 4.
	SiteMeanTransceivers float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Total <= 0 {
		c.Total = 250000
	}
	if c.SiteMeanTransceivers <= 0 {
		c.SiteMeanTransceivers = 4
	}
	return c
}

// placementProfile is the per-provider-group mix of site locations. The
// differences reproduce the real fleets' footprints: Sprint concentrated
// in metros, the national carriers with substantial highway and rural
// coverage, the regional carriers predominantly rural — the mechanism
// behind the per-provider at-risk percentages of Table 2.
type placementProfile struct {
	urban, road, rural float64
	// radio mix per technology, calibrated so the national marginals
	// approximate Table 3 (LTE > UMTS > CDMA > GSM).
	radio [numRadios]float64 // indexed by Radio
}

var profiles = map[string]placementProfile{
	geodata.ProviderATT: {
		urban: 0.56, road: 0.32, rural: 0.12,
		radio: [numRadios]float64{GSM: 0.07, CDMA: 0, UMTS: 0.40, LTE: 0.53},
	},
	geodata.ProviderTMobile: {
		urban: 0.62, road: 0.28, rural: 0.10,
		radio: [numRadios]float64{GSM: 0.10, CDMA: 0, UMTS: 0.40, LTE: 0.50},
	},
	geodata.ProviderSprint: {
		urban: 0.74, road: 0.20, rural: 0.06,
		radio: [numRadios]float64{GSM: 0, CDMA: 0.35, UMTS: 0, LTE: 0.65},
	},
	geodata.ProviderVerizon: {
		urban: 0.56, road: 0.32, rural: 0.12,
		radio: [numRadios]float64{GSM: 0, CDMA: 0.33, UMTS: 0, LTE: 0.67},
	},
	geodata.ProviderOthersAg: {
		// Regional licensees serve towns and highway corridors rather
		// than deep wildland.
		urban: 0.42, road: 0.42, rural: 0.16,
		radio: [numRadios]float64{GSM: 0.15, CDMA: 0.15, UMTS: 0.25, LTE: 0.45},
	},
}

// Generate builds the synthetic snapshot over the world. Deterministic in
// (world configuration, cfg).
func Generate(w *conus.World, cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults()
	src := rng.NewStream(cfg.Seed, 0xCE11)

	// Pre-bucket world cells by state for road and rural placement.
	nStates := len(geodata.States)
	zoneCells := make([][]geom.Point, nStates)
	roadCells := make([][]geom.Point, nStates)
	g := w.Grid
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			v := w.StateZone.At(cx, cy)
			if v == 0 {
				continue
			}
			p := g.Center(cx, cy)
			zoneCells[v-1] = append(zoneCells[v-1], p)
			if w.Roads.Get(cx, cy) {
				roadCells[v-1] = append(roadCells[v-1], p)
			}
		}
	}

	// Provider-group share weights and code tables.
	groups := []string{
		geodata.ProviderATT, geodata.ProviderTMobile,
		geodata.ProviderSprint, geodata.ProviderVerizon, geodata.ProviderOthersAg,
	}
	groupW := make([]float64, len(groups))
	for i, p := range groups {
		groupW[i] = geodata.NationalShare[p]
	}
	majorCodes := map[string][]geodata.MCCMNC{}
	for _, p := range geodata.MajorProviders {
		majorCodes[p] = geodata.CodesForProvider(p)
	}
	regionals := geodata.RegionalProviders()
	regionalCodes := make([][]geodata.MCCMNC, len(regionals))
	for i, p := range regionals {
		regionalCodes[i] = geodata.CodesForProvider(p)
	}

	totalPop := geodata.TotalPopulation()
	ts := make([]Transceiver, 0, cfg.Total)
	var siteID int32
	var cellID uint32

	for si, st := range geodata.States {
		n := int(float64(cfg.Total) * float64(st.Pop) / float64(totalPop))
		if n == 0 {
			continue
		}
		// Regional carriers concentrate in the low-hazard plains and
		// midwest (rural RSA licensees), not in the high-hazard west —
		// the reason Table 2 shows "Others" with the lowest at-risk
		// share. Scale their selection weight by the state's hazard.
		stateGroupW := make([]float64, len(groupW))
		copy(stateGroupW, groupW)
		m := 1.05 - st.Hazard
		stateGroupW[len(stateGroupW)-1] *= 2.5 * m * math.Sqrt(m)
		cities := w.CitiesOfState(si)
		placed := 0
		for placed < n {
			// One site with Poisson-distributed tenancy.
			k := src.Poisson(cfg.SiteMeanTransceivers-1) + 1
			if placed+k > n {
				k = n - placed
			}
			gi := src.Categorical(stateGroupW)
			group := groups[gi]
			prof := profiles[group]
			pos, ok := placeSite(w, src, prof, si, cities, roadCells[si], zoneCells[si])
			if !ok {
				continue
			}
			siteID++
			area := uint16(src.Intn(65000) + 1)
			for t := 0; t < k; t++ {
				// Each co-located transceiver gets its own code pair: the
				// site hosts one tenant in this model, with per-radio
				// cells. (Multi-tenant sites appear as co-located sites.)
				var code geodata.MCCMNC
				if group == geodata.ProviderOthersAg {
					rp := src.Intn(len(regionals))
					codes := regionalCodes[rp]
					code = codes[src.Intn(len(codes))]
				} else {
					codes := majorCodes[group]
					code = codes[src.Intn(len(codes))]
				}
				radio := Radio(src.Categorical(prof.radio[:]))
				cellID++
				created := uint16(2005 + src.Intn(15)) // 2005..2019 per §3.11
				updated := created + uint16(src.Intn(int(2020-created)))
				// Crowdsourced positions scatter around the true site
				// location (OpenCelliD triangulation error, §2.2.3).
				jitter := src.Normal(0, 120)
				ang := src.Range(0, 2*math.Pi)
				txy := geom.Point{
					X: pos.X + jitter*math.Cos(ang),
					Y: pos.Y + jitter*math.Sin(ang),
				}
				tll := w.ToLonLat(txy)
				// State attribution is positional (the zone the record
				// actually falls in), so codecs that recompute it from
				// coordinates agree; border jitter can land a site in the
				// neighboring state.
				ts = append(ts, Transceiver{
					XY: txy, Lon: tll.X, Lat: tll.Y,
					MCC: uint16(code.MCC), MNC: uint16(code.MNC),
					Area: area, Cell: cellID, SiteID: siteID,
					StateIdx: int16(w.StateAt(txy)), Radio: radio,
					Created: created, Updated: updated,
					Samples: uint16(1 + src.Intn(200)),
				})
			}
			placed += k
		}
	}
	return NewDataset(w, ts)
}

// placeSite samples one site position for the given profile within the
// state. Returns ok=false when a valid position could not be found (the
// caller retries).
func placeSite(w *conus.World, src *rng.Source, prof placementProfile, si int,
	cities []int, roads, zone []geom.Point) (geom.Point, bool) {

	mode := src.Categorical([]float64{prof.urban, prof.road, prof.rural})
	cell := w.Grid.CellSize
	switch mode {
	case 0: // urban cluster
		if len(cities) == 0 {
			break // fall through to rural placement
		}
		// Weight cities by metro population.
		weights := make([]float64, len(cities))
		for i, ci := range cities {
			weights[i] = float64(w.Cities[ci].MetroPop)
		}
		c := w.Cities[cities[src.Categorical(weights)]]
		// Radial mix: dense core, suburb, exurb/WUI fringe.
		sigma := c.SigmaM
		switch src.Categorical([]float64{0.55, 0.30, 0.15}) {
		case 0:
			sigma *= 0.5
		case 1:
			sigma *= 1.0
		case 2:
			sigma *= 1.9
		}
		for try := 0; try < 8; try++ {
			p := geom.Point{
				X: c.XY.X + src.Normal(0, sigma),
				Y: c.XY.Y + src.Normal(0, sigma),
			}
			if w.Contains(p) {
				return p, true
			}
		}
		return c.XY, w.Contains(c.XY)
	case 1: // highway corridor
		if len(roads) == 0 {
			break // fall through to rural placement
		}
		p := roads[src.Intn(len(roads))]
		jittered := geom.Point{
			X: p.X + src.Range(-cell/2, cell/2),
			Y: p.Y + src.Range(-cell/2, cell/2),
		}
		// Road sites sit on the roadway verge, not scattered across the
		// corridor cell: snap to the centerline with a tower-setback
		// offset of a few hundred meters.
		if rp, ok := w.NearestRoadPoint(jittered); ok {
			return geom.Point{
				X: rp.X + src.Normal(0, 180),
				Y: rp.Y + src.Normal(0, 180),
			}, true
		}
		return jittered, true
	}
	// rural sprinkle
	if len(zone) == 0 {
		return geom.Point{}, false
	}
	p := zone[src.Intn(len(zone))]
	return geom.Point{
		X: p.X + src.Range(-cell/2, cell/2),
		Y: p.Y + src.Range(-cell/2, cell/2),
	}, true
}
