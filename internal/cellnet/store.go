package cellnet

import (
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
)

// Store is the compact columnar (SoA) transceiver layout: one slice per
// field, all of equal length. It exists for the full-paper-scale paths —
// the snapshot codec streams it column by column, and the spatial
// sharder partitions it into per-shard row sets without touching the
// wide AoS Transceiver struct. A Store is plain data: copy-free views
// into its columns are allowed as long as the columns are treated as
// read-only.
type Store struct {
	X, Y     []float64 // projected (CONUS Albers) position
	Lon, Lat []float64 // geographic position
	MCC, MNC []uint16
	Area     []uint16
	Cell     []uint32
	Site     []int32
	State    []int16 // index into geodata.States, -1 off-CONUS
	Radio    []uint8
	Created  []uint16 // record-creation year
	Updated  []uint16 // last-update year
	Samples  []uint16
}

// NewStore returns a Store with every column allocated at length n.
func NewStore(n int) *Store {
	return &Store{
		X: make([]float64, n), Y: make([]float64, n),
		Lon: make([]float64, n), Lat: make([]float64, n),
		MCC: make([]uint16, n), MNC: make([]uint16, n),
		Area: make([]uint16, n), Cell: make([]uint32, n),
		Site: make([]int32, n), State: make([]int16, n),
		Radio: make([]uint8, n), Created: make([]uint16, n),
		Updated: make([]uint16, n), Samples: make([]uint16, n),
	}
}

// StoreOf transposes an AoS transceiver slice into the columnar layout.
func StoreOf(ts []Transceiver) *Store {
	s := NewStore(len(ts))
	for i := range ts {
		s.SetRow(i, &ts[i])
	}
	return s
}

// Len returns the number of rows.
func (s *Store) Len() int { return len(s.X) }

// SetRow writes one transceiver into row i. i must be in range (slice
// indexing reports the violation).
func (s *Store) SetRow(i int, t *Transceiver) {
	s.X[i], s.Y[i] = t.XY.X, t.XY.Y
	s.Lon[i], s.Lat[i] = t.Lon, t.Lat
	s.MCC[i], s.MNC[i] = t.MCC, t.MNC
	s.Area[i], s.Cell[i] = t.Area, t.Cell
	s.Site[i], s.State[i] = t.SiteID, t.StateIdx
	s.Radio[i] = uint8(t.Radio)
	s.Created[i], s.Updated[i] = t.Created, t.Updated
	s.Samples[i] = t.Samples
}

// Row reassembles row i as an AoS Transceiver.
func (s *Store) Row(i int) Transceiver {
	return Transceiver{
		XY:       geom.Point{X: s.X[i], Y: s.Y[i]},
		Lon:      s.Lon[i],
		Lat:      s.Lat[i],
		MCC:      s.MCC[i],
		MNC:      s.MNC[i],
		Area:     s.Area[i],
		Cell:     s.Cell[i],
		SiteID:   s.Site[i],
		StateIdx: s.State[i],
		Radio:    Radio(s.Radio[i]),
		Created:  s.Created[i],
		Updated:  s.Updated[i],
		Samples:  s.Samples[i],
	}
}

// Transceivers materializes the whole store as an AoS slice.
func (s *Store) Transceivers() []Transceiver {
	return s.AppendRows(make([]Transceiver, 0, s.Len()), nil)
}

// AppendRows appends the selected rows (all rows when idx is nil) to
// dst in index order and returns the extended slice. This is the shard
// materialization primitive: a shard's index set becomes the AoS rows
// its analyzer joins over, while the wide columns stay shared.
func (s *Store) AppendRows(dst []Transceiver, idx []int) []Transceiver {
	if idx == nil {
		for i := 0; i < s.Len(); i++ {
			dst = append(dst, s.Row(i))
		}
		return dst
	}
	for _, i := range idx {
		dst = append(dst, s.Row(i))
	}
	return dst
}

// AssignStates recomputes the State column from the world's state
// raster (the same recompute-on-load rule the record codec uses, so
// snapshot files stay world-independent).
func (s *Store) AssignStates(w *conus.World) {
	for i := range s.State {
		s.State[i] = int16(w.StateAt(geom.Point{X: s.X[i], Y: s.Y[i]}))
	}
}

// Bytes returns the column payload size in bytes — the store's memory
// accounting unit, used by the sharded build to report bounded
// per-shard footprints.
func (s *Store) Bytes() int64 {
	n := int64(s.Len())
	const perRow = 8 + 8 + 8 + 8 + 2 + 2 + 2 + 4 + 4 + 2 + 1 + 2 + 2 + 2
	return n * perRow
}
