package cellnet

import (
	"testing"

	"fivealarms/internal/geodata"
)

func TestFilterByRadio(t *testing.T) {
	lte := testData.ByRadio(LTE)
	if lte.Len() == 0 {
		t.Fatal("no LTE transceivers")
	}
	for i := range lte.T {
		if lte.T[i].Radio != LTE {
			t.Fatal("non-LTE record in subset")
		}
	}
	byRadio := testData.CountByRadio()
	if lte.Len() != byRadio[LTE] {
		t.Errorf("subset %d != count %d", lte.Len(), byRadio[LTE])
	}
}

func TestFilterByState(t *testing.T) {
	ca := testData.ByState("CA")
	if ca.Len() == 0 {
		t.Fatal("no CA transceivers")
	}
	idx := geodata.StateIndex("CA")
	for i := range ca.T {
		if int(ca.T[i].StateIdx) != idx {
			t.Fatal("non-CA record")
		}
	}
	if testData.ByState("ZZ").Len() != 0 {
		t.Error("unknown state should be empty")
	}
}

func TestFilterByProviderGroup(t *testing.T) {
	r := NewResolver()
	att := testData.ByProviderGroup(r, geodata.ProviderATT)
	others := testData.ByProviderGroup(r, geodata.ProviderOthersAg)
	if att.Len() == 0 || others.Len() == 0 {
		t.Fatal("provider subsets empty")
	}
	for i := range att.T {
		if r.ProviderGroup(&att.T[i]) != geodata.ProviderATT {
			t.Fatal("wrong provider in subset")
		}
	}
	// Subsets partition the fleet.
	total := 0
	for _, g := range append(append([]string{}, geodata.MajorProviders...), geodata.ProviderOthersAg) {
		total += testData.ByProviderGroup(r, g).Len()
	}
	if total != testData.Len() {
		t.Errorf("provider subsets sum to %d of %d", total, testData.Len())
	}
}

func TestFilterInBox(t *testing.T) {
	b := testData.Index.Bounds()
	mid := b.Center()
	quadrant := testData.InBox(
		// SW quadrant of the extent.
		geomBBox(b.MinX, b.MinY, mid.X, mid.Y),
	)
	if quadrant.Len() == 0 || quadrant.Len() >= testData.Len() {
		t.Errorf("quadrant = %d of %d", quadrant.Len(), testData.Len())
	}
	// The subset's index covers only the box.
	if !geomBBox(b.MinX, b.MinY, mid.X, mid.Y).ContainsBBox(quadrant.Index.Bounds()) {
		t.Error("subset index exceeds the filter box")
	}
}

func TestFilterCreatedBefore(t *testing.T) {
	early := testData.CreatedBefore(2010)
	if early.Len() == 0 || early.Len() >= testData.Len() {
		t.Fatalf("created-before subset = %d of %d", early.Len(), testData.Len())
	}
	for i := range early.T {
		if early.T[i].Created > 2010 {
			t.Fatal("late record in subset")
		}
	}
	// Monotone in the cutoff.
	if testData.CreatedBefore(2007).Len() > early.Len() {
		t.Error("earlier cutoff should be smaller")
	}
}
