package cellnet

import (
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

// Filter returns a new dataset containing the transceivers for which keep
// returns true. The spatial index is rebuilt over the subset.
func (d *Dataset) Filter(keep func(t *Transceiver) bool) *Dataset {
	var out []Transceiver
	for i := range d.T {
		if keep(&d.T[i]) {
			out = append(out, d.T[i])
		}
	}
	return NewDataset(d.World, out)
}

// ByRadio returns the subset using the given technology.
func (d *Dataset) ByRadio(r Radio) *Dataset {
	return d.Filter(func(t *Transceiver) bool { return t.Radio == r })
}

// ByState returns the subset located in the state with the given postal
// abbreviation; an unknown abbreviation yields an empty dataset.
func (d *Dataset) ByState(ab string) *Dataset {
	idx := geodata.StateIndex(ab)
	return d.Filter(func(t *Transceiver) bool { return int(t.StateIdx) == idx && idx >= 0 })
}

// ByProviderGroup returns the subset operated by the given Table 2
// provider group (one of the four national carriers or "Others").
func (d *Dataset) ByProviderGroup(r *Resolver, group string) *Dataset {
	return d.Filter(func(t *Transceiver) bool { return r.ProviderGroup(t) == group })
}

// InBox returns the subset whose projected positions fall inside box.
func (d *Dataset) InBox(box geom.BBox) *Dataset {
	return d.Filter(func(t *Transceiver) bool { return box.ContainsPoint(t.XY) })
}

// CreatedBefore returns the subset of records created in or before year —
// a coarse answer to the §3.11 limitation that OpenCelliD accumulates
// records from 2005 on without temporal snapshots.
func (d *Dataset) CreatedBefore(year uint16) *Dataset {
	return d.Filter(func(t *Transceiver) bool { return t.Created <= year })
}
