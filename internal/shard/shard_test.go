package shard

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/rng"
)

// TestBandsTileRowsExactly: the bands of any plan are contiguous,
// ordered, and cover [0, ny) with no gap or overlap — including
// degenerate plans (more shards than rows, one row, zero rows).
func TestBandsTileRowsExactly(t *testing.T) {
	for _, ny := range []int{0, 1, 2, 3, 7, 64, 1074, 2901} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 16, 63, 100} {
			p := MakePlan(ny, n)
			if p.Shards() != n || p.Rows() != ny {
				t.Fatalf("MakePlan(%d, %d) = %d shards over %d rows", ny, n, p.Shards(), p.Rows())
			}
			prev := 0
			for i := 0; i < n; i++ {
				y0, y1 := p.Band(i)
				if y0 != prev {
					t.Fatalf("ny=%d n=%d: band %d starts at %d, want %d (gap or overlap)", ny, n, i, y0, prev)
				}
				if y1 < y0 {
					t.Fatalf("ny=%d n=%d: band %d inverted [%d, %d)", ny, n, i, y0, y1)
				}
				prev = y1
			}
			if prev != ny {
				t.Fatalf("ny=%d n=%d: bands end at %d, want %d", ny, n, prev, ny)
			}
		}
	}
}

// TestShardOfRowInvertsBand: every row belongs to exactly the band
// whose window contains it, and out-of-range rows clamp to the edge
// bands.
func TestShardOfRowInvertsBand(t *testing.T) {
	for _, ny := range []int{1, 2, 5, 17, 256, 1074} {
		for _, n := range []int{1, 2, 3, 4, 7, 19, 300} {
			p := MakePlan(ny, n)
			for cy := 0; cy < ny; cy++ {
				s := p.ShardOfRow(cy)
				y0, y1 := p.Band(s)
				if cy < y0 || cy >= y1 {
					t.Fatalf("ny=%d n=%d: row %d mapped to band %d [%d, %d)", ny, n, cy, s, y0, y1)
				}
			}
			if got := p.ShardOfRow(-5); got != p.ShardOfRow(0) {
				t.Fatalf("ny=%d n=%d: negative row clamps to %d, want %d", ny, n, got, p.ShardOfRow(0))
			}
			if got := p.ShardOfRow(ny + 9); got != p.ShardOfRow(ny-1) {
				t.Fatalf("ny=%d n=%d: overflow row clamps to %d, want %d", ny, n, got, p.ShardOfRow(ny-1))
			}
		}
	}
}

// TestMakePlanClamps: invalid shapes are clamped, not propagated.
func TestMakePlanClamps(t *testing.T) {
	p := MakePlan(-3, 0)
	if p.Shards() != 1 || p.Rows() != 0 {
		t.Fatalf("MakePlan(-3, 0) = %d shards over %d rows, want 1 over 0", p.Shards(), p.Rows())
	}
	if s := p.ShardOfRow(4); s != 0 {
		t.Fatalf("empty plan ShardOfRow = %d, want 0", s)
	}
	y0, y1 := p.Band(-1)
	if y0 != 0 || y1 != 0 {
		t.Fatalf("out-of-range Band = [%d, %d), want empty", y0, y1)
	}
}

func testGeometry(cell float64, nx, ny int) raster.Geometry {
	box := geom.NewBBox(geom.Pt(0, 0), geom.Pt(cell*float64(nx), cell*float64(ny)))
	return raster.NewGeometry(box, cell)
}

// TestPartitionExactlyOnce: every input index appears in exactly one
// shard, in input order, including coordinates far outside the grid.
func TestPartitionExactlyOnce(t *testing.T) {
	g := testGeometry(100, 40, 57)
	r := rng.NewStream(3, 0xA11)
	for _, n := range []int{1, 2, 4, 7, 60} {
		p := MakePlan(g.NY, n)
		ys := make([]float64, 5000)
		for i := range ys {
			// Mostly in-grid, with a tail of off-grid strays.
			ys[i] = r.Float64()*8000 - 1000
		}
		parts, err := Partition(p, g, ys)
		if err != nil {
			t.Fatalf("Partition: %v", err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: %d parts", n, len(parts))
		}
		seen := make([]int, len(ys))
		for s, part := range parts {
			prev := -1
			for _, i := range part {
				if i <= prev {
					t.Fatalf("n=%d shard %d: indices out of input order", n, s)
				}
				prev = i
				seen[i]++
				// Spatial coherence: in-grid points live in their band.
				cy := RowOf(g, ys[i])
				if y0, y1 := p.Band(s); cy < y0 || cy >= y1 {
					t.Fatalf("n=%d: index %d (row %d) landed in band %d [%d, %d)", n, i, cy, s, y0, y1)
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d assigned %d times", n, i, c)
			}
		}
	}
}

// TestPartitionRejectsMismatchedGrid: a plan built for another grid
// must refuse to partition rather than tear the assignment.
func TestPartitionRejectsMismatchedGrid(t *testing.T) {
	g := testGeometry(100, 10, 20)
	p := MakePlan(g.NY+1, 4)
	if _, err := Partition(p, g, []float64{1, 2, 3}); err == nil {
		t.Fatalf("mismatched partition succeeded")
	}
}

// randomPolys builds perimeter-like polygons, biased so that many
// straddle band boundaries of common shard counts.
func randomPolys(r *rng.Source, g raster.Geometry, count int) []geom.Polygon {
	polys := make([]geom.Polygon, 0, count)
	w := g.Bounds()
	for len(polys) < count {
		cx := w.MinX + r.Float64()*(w.MaxX-w.MinX)
		cy := w.MinY + r.Float64()*(w.MaxY-w.MinY)
		rad := (0.02 + 0.2*r.Float64()) * (w.MaxY - w.MinY)
		ring := make(geom.Ring, 0, 9)
		for k := 0; k < 8; k++ {
			ang := float64(k) / 8 * 2 * math.Pi
			rr := rad * (0.5 + r.Float64())
			ring = append(ring, geom.Pt(cx+rr*math.Cos(ang), cy+rr*math.Sin(ang)))
		}
		polys = append(polys, geom.Polygon{Exterior: ring})
	}
	return polys
}

// TestBandFillsMergeToMonolithicFingerprint: filling each band with
// FillPolygonsRows and merging — both by word-level Or and by
// ForEachSetRun span replay — reproduces the monolithic fill's
// fingerprint exactly, for perimeters that straddle band boundaries.
func TestBandFillsMergeToMonolithicFingerprint(t *testing.T) {
	g := testGeometry(50, 96, 131)
	r := rng.NewStream(9, 0xF111)
	polys := randomPolys(r, g, 40)

	mono := raster.NewBitGrid(g)
	raster.FillPolygonsInto(mono, polys, 0)
	want := mono.Fingerprint()
	if mono.Count() == 0 {
		t.Fatalf("monolithic fill set no cells; test polygons degenerate")
	}

	for _, n := range []int{1, 2, 4, 7, 131, 200} {
		p := MakePlan(g.NY, n)
		orMerged := raster.NewBitGrid(g)
		runMerged := raster.NewBitGrid(g)
		covered := 0
		for i := 0; i < n; i++ {
			y0, y1 := p.Band(i)
			covered += y1 - y0
			band := raster.NewBitGrid(g)
			raster.FillPolygonsRows(band, polys, y0, y1)
			if err := orMerged.Or(band); err != nil {
				t.Fatalf("n=%d: Or: %v", n, err)
			}
			band.ForEachSetRun(func(cy, cx0, cx1 int) {
				runMerged.SetSpan(cy, cx0, cx1)
			})
		}
		if covered != g.NY {
			t.Fatalf("n=%d: bands covered %d of %d rows", n, covered, g.NY)
		}
		if got := orMerged.Fingerprint(); got != want {
			t.Fatalf("n=%d: Or-merged fingerprint %#x != monolithic %#x", n, got, want)
		}
		if got := runMerged.Fingerprint(); got != want {
			t.Fatalf("n=%d: run-merged fingerprint %#x != monolithic %#x", n, got, want)
		}
	}
}

// TestFillPolygonsRowsWindowIsExact: rows outside the window stay
// untouched and rows inside match the monolithic fill bit for bit.
func TestFillPolygonsRowsWindowIsExact(t *testing.T) {
	g := testGeometry(75, 50, 61)
	r := rng.NewStream(21, 0x3140)
	polys := randomPolys(r, g, 12)
	mono := raster.NewBitGrid(g)
	raster.FillPolygonsInto(mono, polys, 0)

	y0, y1 := 13, 44
	win := raster.NewBitGrid(g)
	raster.FillPolygonsRows(win, polys, y0, y1)
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			got := win.Get(cx, cy)
			switch {
			case cy < y0 || cy >= y1:
				if got {
					t.Fatalf("cell (%d, %d) outside window was written", cx, cy)
				}
			default:
				if got != mono.Get(cx, cy) {
					t.Fatalf("cell (%d, %d) inside window differs from monolithic fill", cx, cy)
				}
			}
		}
	}
	// Degenerate windows are no-ops.
	before := win.Fingerprint()
	raster.FillPolygonsRows(win, polys, 44, 13)
	raster.FillPolygonsRows(win, nil, 0, g.NY)
	raster.FillPolygonsRows(win, polys, -10, 0)
	if win.Fingerprint() != before {
		t.Fatalf("degenerate windows mutated the mask")
	}
}
