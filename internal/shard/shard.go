// Package shard partitions the CONUS grid into contiguous row bands —
// the tile scheme of the full-paper-scale sharded study build. A Plan
// divides the world raster's NY rows into N bands whose union tiles the
// grid exactly (no gap, no overlap); transceivers are assigned to the
// band holding their cell row, with off-grid positions clamped to the
// nearest band. The partition is a pure function of (NY, N), so every
// schedule — serial, parallel, resumed — shards identically, and the
// merge order of per-shard products is simply band order.
//
// Correctness of the sharded study only requires the assignment to be
// disjoint and exhaustive (every row index lands in exactly one shard);
// the spatial coherence of row bands is a locality optimization — a
// shard's fills and joins touch one horizontal slab of the country.
package shard

import (
	"fmt"

	"fivealarms/internal/raster"
)

// Plan is a row-band partition of a grid with ny rows into n shards.
// The zero value is unusable; build one with MakePlan.
type Plan struct {
	ny, n int
}

// MakePlan partitions ny grid rows into n bands. n is clamped to at
// least 1; ny must be >= 0. Bands may be empty when n exceeds ny —
// an empty band is a valid shard that owns no rows and no work.
func MakePlan(ny, n int) Plan {
	if n < 1 {
		n = 1
	}
	if ny < 0 {
		ny = 0
	}
	return Plan{ny: ny, n: n}
}

// Shards returns the number of bands.
func (p Plan) Shards() int { return p.n }

// Rows returns the partitioned grid's row count.
func (p Plan) Rows() int { return p.ny }

// Band returns shard i's half-open row window [y0, y1). Bands are
// contiguous and ordered: Band(0) starts at row 0, Band(n-1) ends at
// row ny, and Band(i+1) starts where Band(i) ends. i must be in
// [0, Shards()); slice-style bounds math reports violations by
// returning an empty window.
func (p Plan) Band(i int) (y0, y1 int) {
	if i < 0 || i >= p.n {
		return 0, 0
	}
	return i * p.ny / p.n, (i + 1) * p.ny / p.n
}

// ShardOfRow returns the index of the band owning grid row cy. Rows
// outside [0, Rows()) clamp to the first or last band, so every input
// maps to exactly one shard.
func (p Plan) ShardOfRow(cy int) int {
	if p.ny == 0 {
		return 0
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= p.ny {
		cy = p.ny - 1
	}
	// Integer-division bands are within one of the proportional guess;
	// walk to the exact owner (loops run at most once for any n <= ny,
	// and stay bounded by n otherwise).
	s := cy * p.n / p.ny
	if s > p.n-1 {
		s = p.n - 1
	}
	for s+1 < p.n {
		if lo, _ := p.Band(s + 1); lo <= cy {
			s++
			continue
		}
		break
	}
	for s > 0 {
		if lo, _ := p.Band(s); lo > cy {
			s--
			continue
		}
		break
	}
	return s
}

// RowOf maps a projected y coordinate to its grid row, clamped into
// [0, NY-1] so off-grid positions still resolve to a row (and hence to
// exactly one shard). Mirrors Geometry.CellOf's row arithmetic.
func RowOf(g raster.Geometry, y float64) int {
	if g.NY <= 0 {
		return 0
	}
	cy := int((y - g.MinY) / g.CellSize)
	if cy < 0 {
		cy = 0
	}
	if cy >= g.NY {
		cy = g.NY - 1
	}
	return cy
}

// Partition assigns every coordinate in ys to its shard and returns the
// per-shard index lists, in input order within each shard. The lists
// are disjoint and their union is exactly [0, len(ys)): each index
// appears in precisely one shard. g must describe the grid the plan
// was made for; a row-count mismatch is a programming error reported as
// an error (never a torn partition).
func Partition(p Plan, g raster.Geometry, ys []float64) ([][]int, error) {
	if g.NY != p.ny {
		return nil, fmt.Errorf("shard: plan over %d rows cannot partition a %d-row grid", p.ny, g.NY)
	}
	counts := make([]int, p.n)
	owner := make([]int32, len(ys))
	for i, y := range ys {
		s := p.ShardOfRow(RowOf(g, y))
		owner[i] = int32(s)
		counts[s]++
	}
	parts := make([][]int, p.n)
	for s := range parts {
		parts[s] = make([]int, 0, counts[s])
	}
	for i := range ys {
		s := owner[i]
		parts[s] = append(parts[s], i)
	}
	return parts, nil
}
