package whp

import (
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
)

// windowAround returns a raster geometry of the given cell size covering a
// square window of halfWidth meters around a projected center point,
// clipped to the world's grid bounds.
func windowAround(w *conus.World, center geom.Point, halfWidth, cellSize float64) raster.Geometry {
	box := geom.BBox{
		MinX: center.X - halfWidth, MinY: center.Y - halfWidth,
		MaxX: center.X + halfWidth, MaxY: center.Y + halfWidth,
	}.Intersection(w.Grid.Bounds())
	return raster.NewGeometry(box, cellSize)
}

// WindowAround returns a raster geometry of the given cell size covering a
// square window of halfWidth meters around a geographic (lon/lat) anchor,
// clipped to the world grid. Use it to build fine-resolution WHP windows
// for the §3.8 extension experiment and the Figure 13 metro maps.
func WindowAround(w *conus.World, anchor geom.Point, halfWidth, cellSize float64) raster.Geometry {
	return windowAround(w, w.ToXY(anchor), halfWidth, cellSize)
}
