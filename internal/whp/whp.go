// Package whp implements the synthetic Wildfire Hazard Potential model —
// the fivealarms stand-in for the USFS WHP raster (Dillon et al. 2014).
//
// The real WHP integrates historical fire occurrence, vegetation and Fsim
// large-fire simulations into a 270 m raster with seven classes. The
// synthetic model reproduces the properties the paper's analyses depend
// on:
//
//   - regional structure: hazard concentrates in the west and southeast
//     (driven by per-state calibration weights in geodata.States);
//   - multi-scale patchiness: very-high areas are small islands inside
//     high areas inside moderate areas (multi-octave value noise);
//   - the wildland-urban gradient: hazard falls toward city cores;
//   - nonburnable urban cores and transportation corridors — the exact
//     property behind the §3.4 validation shortfall and the §3.8
//     half-mile extension.
//
// A Map can be built on any raster geometry (the shared world grid for
// national overlays, or a fine window for the buffer-extension
// experiment).
package whp

import (
	"image/color"
	"math"
	"runtime"
	"sync"

	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
)

// Class is a WHP category. The ordering matches the USFS product: higher
// is more hazardous; NonBurnable and Water carry no wildfire hazard.
type Class uint8

// WHP classes.
const (
	Water Class = iota
	NonBurnable
	VeryLow
	Low
	Moderate
	High
	VeryHigh
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Water:
		return "water"
	case NonBurnable:
		return "non-burnable"
	case VeryLow:
		return "very-low"
	case Low:
		return "low"
	case Moderate:
		return "moderate"
	case High:
		return "high"
	case VeryHigh:
		return "very-high"
	default:
		return "invalid"
	}
}

// AtRisk reports whether the class is in the paper's top-three risk bands
// (moderate, high or very high).
func (c Class) AtRisk() bool { return c >= Moderate }

// Config tunes the hazard model. The zero value selects calibrated
// defaults.
type Config struct {
	// UrbanCoreThreshold is the urban intensity above which a cell is
	// classified NonBurnable (built-up core). Default 0.45.
	UrbanCoreThreshold float64
	// RoadBufferM is the half-width of the nonburnable transportation
	// corridor in meters. Default 1.25 cells of the target geometry.
	RoadBufferM float64
	// WUIDamping scales how strongly urban intensity suppresses hazard in
	// the wildland-urban interface. Default 0.55.
	WUIDamping float64
	// Thresholds are the hazard-value cut points for VeryLow|Low,
	// Low|Moderate, Moderate|High, High|VeryHigh. Defaults are calibrated
	// so the class histogram over placed transceivers reproduces the
	// paper's M > H > VH nesting.
	Thresholds [4]float64
	// NoiseScaleM is the wavelength in meters of the dominant hazard
	// patchiness. Default 220 km.
	NoiseScaleM float64
}

func (c Config) withDefaults(cell float64) Config {
	if c.UrbanCoreThreshold == 0 {
		c.UrbanCoreThreshold = 0.45
	}
	if c.RoadBufferM == 0 {
		c.RoadBufferM = 1.25 * cell
	}
	if c.WUIDamping == 0 {
		c.WUIDamping = 0.20
	}
	if c.Thresholds == [4]float64{} {
		c.Thresholds = [4]float64{0.12, 0.26, 0.42, 0.60}
	}
	if c.NoiseScaleM == 0 {
		c.NoiseScaleM = 220000
	}
	return c
}

// Map is a realized WHP raster plus the continuous hazard field it was
// classified from (kept for the fire simulator's fuel model).
type Map struct {
	Cfg     Config
	Classes *raster.ClassGrid
	Hazard  *raster.FloatGrid
	world   *conus.World
}

// Build computes the WHP over the given geometry (often w.Grid). Rows are
// evaluated in parallel; the result is deterministic because every cell
// is a pure function of the world fields.
func Build(w *conus.World, g raster.Geometry, cfg Config) *Map {
	cfg = cfg.withDefaults(g.CellSize)
	m := &Map{
		Cfg:     cfg,
		Classes: raster.NewClassGrid(g),
		Hazard:  raster.NewFloatGrid(g),
		world:   w,
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > g.NY {
		workers = g.NY
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for cy := start; cy < g.NY; cy += workers {
				for cx := 0; cx < g.NX; cx++ {
					p := g.Center(cx, cy)
					h, cls := m.evaluate(p)
					m.Hazard.Set(cx, cy, h)
					m.Classes.Set(cx, cy, uint8(cls))
				}
			}
		}(wk)
	}
	wg.Wait()
	return m
}

// evaluate computes the continuous hazard and class at a projected point
// directly from the world fields (resolution-independent).
func (m *Map) evaluate(p geom.Point) (float64, Class) {
	w := m.world
	si := w.StateAt(p)
	if si < 0 {
		return 0, Water
	}
	urban := w.UrbanAt(p)
	if urban >= m.Cfg.UrbanCoreThreshold {
		return 0, NonBurnable
	}
	if w.RoadDistAt(p) <= m.Cfg.RoadBufferM {
		return 0, NonBurnable
	}
	h := m.HazardValue(p, si, urban)
	return h, classify(h, m.Cfg.Thresholds)
}

// HazardValue returns the continuous hazard in [0,1) at a projected point
// given its state index and urban intensity. Exposed for the fire
// simulator's fuel model.
func (m *Map) HazardValue(p geom.Point, stateIdx int, urban float64) float64 {
	w := m.world
	base := stateHazard(stateIdx)
	n := w.Noise().FBM(p.X/m.Cfg.NoiseScaleM, p.Y/m.Cfg.NoiseScaleM, 5, 0.55)
	// Mix: the state weight sets the regional level, noise modulates it.
	h := base * (0.15 + 0.85*n)
	// The wildland-urban interface: hazard decays toward the urban core.
	damp := 1 - m.Cfg.WUIDamping*math.Min(urban/math.Max(m.Cfg.UrbanCoreThreshold, 1e-9), 1)
	h *= damp
	if h < 0 {
		h = 0
	}
	if h >= 1 {
		h = 0.999
	}
	return h
}

func classify(h float64, th [4]float64) Class {
	switch {
	case h < th[0]:
		return VeryLow
	case h < th[1]:
		return Low
	case h < th[2]:
		return Moderate
	case h < th[3]:
		return High
	default:
		return VeryHigh
	}
}

// FuelAt returns the continuous fuel loading at a projected point for the
// fire-spread simulator: 0 outside the CONUS (fires cannot burn into the
// ocean), a small permeability for nonburnable urban cores and road
// corridors (wind-driven spotting lets real fires cross them — the Saddle
// Ridge/Tick mechanism of §3.4), and the hazard value elsewhere with a
// floor so even very-low-hazard wildland carries some fuel. The function
// is resolution-independent: it derives from the world fields, not from
// the class raster.
func (m *Map) FuelAt(p geom.Point) float64 {
	w := m.world
	si := w.StateAt(p)
	if si < 0 {
		return 0
	}
	urban := w.UrbanAt(p)
	if urban >= m.Cfg.UrbanCoreThreshold || w.RoadDistAt(p) <= m.Cfg.RoadBufferM {
		return 0.03
	}
	h := m.HazardValue(p, si, urban)
	if h < 0.05 {
		return 0.05
	}
	return h
}

// ClassAt samples the class raster at a projected point; points off the
// raster return Water.
func (m *Map) ClassAt(p geom.Point) Class {
	v, ok := m.Classes.Sample(p)
	if !ok {
		return Water
	}
	return Class(v)
}

// HazardAt samples the continuous hazard at a projected point (0 off the
// raster).
func (m *Map) HazardAt(p geom.Point) float64 {
	v, _ := m.Hazard.Sample(p)
	return v
}

// ClassMask returns the mask of cells holding exactly class c.
func (m *Map) ClassMask(c Class) *raster.BitGrid {
	return m.Classes.Mask(func(v uint8) bool { return Class(v) == c })
}

// AtRiskMask returns the mask of cells in the moderate..very-high classes.
func (m *Map) AtRiskMask() *raster.BitGrid {
	return m.Classes.Mask(func(v uint8) bool { return Class(v).AtRisk() })
}

// ExtendVeryHigh returns a copy of the class raster where every cell
// within dist meters of a very-high cell — and not already moderate, high
// or very high — is promoted to VeryHigh. This is the §3.8 operation: it
// captures road corridors and urban fringes adjacent to the most hazardous
// wildland, where power- and backhaul-mediated outages concentrate.
func (m *Map) ExtendVeryHigh(dist float64) *raster.ClassGrid {
	vh := m.ClassMask(VeryHigh)
	grown := raster.DilateByDistance(vh, dist)
	out := m.Classes.Clone()
	grown.ForEachSetRun(func(cy, cx0, cx1 int) {
		for cx := cx0; cx <= cx1; cx++ {
			if c := Class(out.At(cx, cy)); !c.AtRisk() {
				out.Set(cx, cy, uint8(VeryHigh))
			}
		}
	})
	return out
}

// ClassCounts returns the cell count per class.
func (m *Map) ClassCounts() map[Class]int {
	h := m.Classes.Histogram()
	out := make(map[Class]int, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		if h[c] > 0 {
			out[c] = h[c]
		}
	}
	return out
}

// Palette renders the WHP in the color scheme of the paper's Figure 6:
// reds/yellows for the hazardous classes, greens/black for the rest.
func Palette() raster.Palette {
	return raster.Palette{
		uint8(Water):       color.RGBA{R: 10, G: 10, B: 40, A: 255},
		uint8(NonBurnable): color.RGBA{R: 40, G: 40, B: 40, A: 255},
		uint8(VeryLow):     color.RGBA{R: 10, G: 60, B: 10, A: 255},
		uint8(Low):         color.RGBA{R: 40, G: 110, B: 40, A: 255},
		uint8(Moderate):    color.RGBA{R: 250, G: 230, B: 80, A: 255},
		uint8(High):        color.RGBA{R: 250, G: 150, B: 40, A: 255},
		uint8(VeryHigh):    color.RGBA{R: 220, G: 30, B: 30, A: 255},
	}
}

// stateHazard returns the calibration weight for a state index, 0 for
// invalid indexes.
func stateHazard(idx int) float64 {
	if idx < 0 {
		return 0
	}
	return stateHazards[idx]
}
