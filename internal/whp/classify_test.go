package whp

import (
	"math"
	"testing"
)

// Class-boundary reclassification: the cut points use strict h < th[i],
// so a hazard exactly at a threshold lands in the class ABOVE it. These
// tests pin that contract — a reimplementation that flips to <= would
// silently move every boundary cell down one class and shift the Table
// 4 histograms.

func TestClassifyExactThresholds(t *testing.T) {
	th := [4]float64{0.12, 0.26, 0.42, 0.60}
	cases := []struct {
		h    float64
		want Class
	}{
		{0, VeryLow},
		{math.Nextafter(0.12, 0), VeryLow}, // one ulp below the cut
		{0.12, Low},                        // exactly at the cut: upper class
		{math.Nextafter(0.12, 1), Low},
		{math.Nextafter(0.26, 0), Low},
		{0.26, Moderate},
		{math.Nextafter(0.42, 0), Moderate},
		{0.42, High},
		{math.Nextafter(0.60, 0), High},
		{0.60, VeryHigh},
		{0.999, VeryHigh},
	}
	for _, c := range cases {
		if got := classify(c.h, th); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.h, got, c.want)
		}
	}
}

// TestClassifyDegenerateThresholds pins behavior when neighboring cut
// points coincide: the squeezed class becomes unreachable rather than
// swallowing its neighbor.
func TestClassifyDegenerateThresholds(t *testing.T) {
	th := [4]float64{0.2, 0.2, 0.5, 0.5}
	if got := classify(0.19, th); got != VeryLow {
		t.Errorf("below both low cuts: %v, want very-low", got)
	}
	if got := classify(0.2, th); got != Moderate {
		t.Errorf("at the coincident low cuts: %v, want moderate (Low squeezed out)", got)
	}
	if got := classify(0.5, th); got != VeryHigh {
		t.Errorf("at the coincident high cuts: %v, want very-high (High squeezed out)", got)
	}
}

// TestClassifyMonotone sweeps a fine hazard ladder and asserts the class
// never decreases as hazard increases — the property every downstream
// ordering test (nesting, at-risk fractions) quietly depends on.
func TestClassifyMonotone(t *testing.T) {
	th := [4]float64{0.12, 0.26, 0.42, 0.60}
	prev := VeryLow
	for i := 0; i <= 10000; i++ {
		h := float64(i) / 10000
		c := classify(h, th)
		if c < prev {
			t.Fatalf("classify(%v) = %v dropped below %v", h, c, prev)
		}
		prev = c
	}
	if prev != VeryHigh {
		t.Fatalf("ladder topped out at %v, want very-high", prev)
	}
}
