package whp

import (
	"testing"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

var (
	testWorld = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testMap   = Build(testWorld, testWorld.Grid, Config{})
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{Water, "water"}, {NonBurnable, "non-burnable"}, {VeryLow, "very-low"},
		{Low, "low"}, {Moderate, "moderate"}, {High, "high"}, {VeryHigh, "very-high"},
		{Class(99), "invalid"},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Class(%d).String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestAtRisk(t *testing.T) {
	for c := Water; c < Moderate; c++ {
		if c.AtRisk() {
			t.Errorf("%v should not be at risk", c)
		}
	}
	for _, c := range []Class{Moderate, High, VeryHigh} {
		if !c.AtRisk() {
			t.Errorf("%v should be at risk", c)
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(5000)
	if cfg.UrbanCoreThreshold <= 0 || cfg.RoadBufferM <= 0 || cfg.WUIDamping <= 0 {
		t.Errorf("defaults missing: %+v", cfg)
	}
	for i := 0; i < 3; i++ {
		if cfg.Thresholds[i] >= cfg.Thresholds[i+1] {
			t.Errorf("thresholds not increasing: %v", cfg.Thresholds)
		}
	}
}

func TestOceanIsWater(t *testing.T) {
	p := testWorld.ToXY(geom.Point{X: -130, Y: 40})
	if c := testMap.ClassAt(p); c != Water {
		t.Errorf("Pacific class = %v, want water", c)
	}
}

func TestUrbanCoresNonBurnable(t *testing.T) {
	// Downtown LA and Manhattan must classify NonBurnable.
	for _, city := range []geom.Point{
		{X: -118.2437, Y: 34.0522},
		{X: -74.0060, Y: 40.7128},
		{X: -87.6298, Y: 41.8781},
	} {
		p := testWorld.ToXY(city)
		if c := testMap.ClassAt(p); c != NonBurnable {
			t.Errorf("urban core %v class = %v, want non-burnable", city, c)
		}
	}
}

func TestClassNesting(t *testing.T) {
	// Structural property from the paper: moderate areas outnumber high
	// areas outnumber very-high areas.
	counts := testMap.ClassCounts()
	m, h, vh := counts[Moderate], counts[High], counts[VeryHigh]
	if !(m > h && h > vh) {
		t.Errorf("class nesting violated: M=%d H=%d VH=%d", m, h, vh)
	}
	if vh == 0 {
		t.Error("very-high class is empty; hazard model too weak")
	}
}

func TestWestHazardExceedsMidwest(t *testing.T) {
	// Average hazard over rural sample points: Sierra foothills vs Iowa.
	west := testWorld.ToXY(geom.Point{X: -120.8, Y: 39.5})
	midwest := testWorld.ToXY(geom.Point{X: -93.6, Y: 42.2})
	wh := testMap.HazardAt(west)
	mh := testMap.HazardAt(midwest)
	if wh <= mh {
		t.Errorf("Sierra hazard %v should exceed Iowa hazard %v", wh, mh)
	}
}

func TestStateHazardRanking(t *testing.T) {
	// Mean hazard per state zone must follow the calibration weights at
	// least for the extreme pairs.
	meanHazard := func(ab string) float64 {
		idx := geodata.StateIndex(ab)
		var sum float64
		var n int
		g := testMap.Hazard.Geometry
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if int(testMap.world.StateAt(g.Center(cx, cy))) == idx {
					sum += testMap.Hazard.At(cx, cy)
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	ca := meanHazard("CA")
	il := meanHazard("IL")
	if ca <= il*1.5 {
		t.Errorf("CA mean hazard %v should far exceed IL %v", ca, il)
	}
}

func TestHazardValueRange(t *testing.T) {
	g := testMap.Hazard.Geometry
	for cy := 0; cy < g.NY; cy += 7 {
		for cx := 0; cx < g.NX; cx += 7 {
			v := testMap.Hazard.At(cx, cy)
			if v < 0 || v >= 1 {
				t.Fatalf("hazard out of range at (%d,%d): %v", cx, cy, v)
			}
		}
	}
}

func TestWUIGradient(t *testing.T) {
	// Hazard should rise moving outward from a city core into wildland.
	// March east from Sacramento into the Sierra.
	start := geom.Point{X: -121.4944, Y: 38.5816}
	core := testMap.HazardAt(testWorld.ToXY(start))
	rim := testMap.HazardAt(testWorld.ToXY(geom.Point{X: -120.6, Y: 38.75}))
	if rim <= core {
		t.Errorf("hazard at Sierra rim (%v) should exceed Sacramento core (%v)", rim, core)
	}
}

func TestExtendVeryHigh(t *testing.T) {
	ext := testMap.ExtendVeryHigh(2.5 * testMap.Classes.CellSize)
	var before, after int
	for i, v := range testMap.Classes.Data {
		if Class(v) == VeryHigh {
			before++
		}
		if Class(ext.Data[i]) == VeryHigh {
			after++
		}
	}
	if after <= before {
		t.Errorf("extension did not grow very-high: %d -> %d", before, after)
	}
	// Moderate and high cells must not be demoted or promoted.
	for i, v := range testMap.Classes.Data {
		c := Class(v)
		if c == Moderate || c == High {
			if Class(ext.Data[i]) != c {
				t.Fatalf("cell %d: class %v changed to %v", i, c, Class(ext.Data[i]))
			}
		}
	}
	// All original VH cells stay VH.
	for i, v := range testMap.Classes.Data {
		if Class(v) == VeryHigh && Class(ext.Data[i]) != VeryHigh {
			t.Fatal("original very-high cell demoted")
		}
	}
}

func TestExtendCapturesNonburnableNeighbors(t *testing.T) {
	ext := testMap.ExtendVeryHigh(2.5 * testMap.Classes.CellSize)
	promoted := 0
	for i, v := range testMap.Classes.Data {
		if Class(v) == NonBurnable && Class(ext.Data[i]) == VeryHigh {
			promoted++
		}
	}
	// The mechanism of §3.8: nonburnable corridor cells adjacent to VH get
	// captured. At least some should be promoted on a national map.
	if promoted == 0 {
		t.Error("no nonburnable cells captured by the extension")
	}
}

func TestVeryHighReachesMetroFringes(t *testing.T) {
	// §3.7/Figure 13: very-high hazard appears near the California metro
	// edges (the Sierra/San Gabriel fronts), not only in deep wilderness.
	// The super-gaussian urban kernel and light WUI damping make this
	// possible; a long-tailed urban field would suppress it for 100+ km.
	for _, city := range []geom.Point{
		{X: -118.2437, Y: 34.0522}, // Los Angeles
		{X: -121.4944, Y: 38.5816}, // Sacramento
	} {
		center := testWorld.ToXY(city)
		found := false
		g := testMap.Classes.Geometry
		for cy := 0; cy < g.NY && !found; cy++ {
			for cx := 0; cx < g.NX && !found; cx++ {
				if Class(testMap.Classes.At(cx, cy)) != VeryHigh {
					continue
				}
				if g.Center(cx, cy).DistanceTo(center) < 120000 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no very-high cell within 120 km of %v", city)
		}
	}
}

func TestPalette(t *testing.T) {
	p := Palette()
	if len(p) != 7 {
		t.Errorf("palette entries = %d, want 7", len(p))
	}
	if _, ok := p[uint8(VeryHigh)]; !ok {
		t.Error("palette missing very-high")
	}
}

func TestResolutionIndependence(t *testing.T) {
	// Building at two resolutions must agree on the class at identical
	// sample points away from class boundaries: the hazard field is
	// continuous in space, so compare the underlying hazard values.
	fine := Build(testWorld,
		// Small window around Denver at half the cell size.
		WindowAround(testWorld, geom.Point{X: -105.0, Y: 39.7}, 200000, 10000), Config{})
	p := testWorld.ToXY(geom.Point{X: -105.2, Y: 39.9})
	hCoarse := testMap.HazardValue(p, testWorld.StateAt(p), testWorld.UrbanAt(p))
	hFine := fine.HazardValue(p, testWorld.StateAt(p), testWorld.UrbanAt(p))
	if hCoarse != hFine {
		t.Errorf("hazard value depends on raster resolution: %v vs %v", hCoarse, hFine)
	}
}

func BenchmarkBuildNational20km(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Build(testWorld, testWorld.Grid, Config{})
	}
}

func BenchmarkClassAt(b *testing.B) {
	p := testWorld.ToXY(geom.Point{X: -120, Y: 38})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = testMap.ClassAt(p)
	}
}
