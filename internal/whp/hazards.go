package whp

import "fivealarms/internal/geodata"

// stateHazards caches the per-state hazard weights indexed like
// geodata.States.
var stateHazards = func() []float64 {
	out := make([]float64, len(geodata.States))
	for i, s := range geodata.States {
		out[i] = s.Hazard
	}
	return out
}()
