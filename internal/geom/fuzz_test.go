package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// expanded with `go test -fuzz=FuzzParseWKT ./internal/geom`.

// distToSegment returns the distance from p to segment ab.
func distToSegment(p, a, b Point) float64 {
	d := b.Sub(a)
	l2 := d.X*d.X + d.Y*d.Y
	if l2 == 0 {
		return p.Sub(a).Norm()
	}
	t := (p.Sub(a).X*d.X + p.Sub(a).Y*d.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Sub(a.Add(d.Scale(t))).Norm()
}

// FuzzPreparedRingContains asserts PreparedRing.Contains agrees with
// Ring.ContainsPoint on fuzz-chosen rings and probe points. Points within
// a small tolerance of the boundary are skipped: ContainsPoint documents
// boundary behavior as unspecified, and the prepared multiply-form
// crossing test may legitimately differ there by ulps on diagonal edges.
func FuzzPreparedRingContains(f *testing.F) {
	f.Add(int64(1), 3.0, 3.0, false)
	f.Add(int64(2), 50.5, 49.5, true)
	f.Add(int64(3), -10.0, 0.0, false)
	f.Add(int64(99), 0.0, 0.0, true)
	f.Fuzz(func(t *testing.T, seed int64, px, py float64, quantize bool) {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsInf(px, 0) || math.IsInf(py, 0) {
			t.Skip("non-finite probe")
		}
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		c := Point{rng.Float64() * 100, rng.Float64() * 100}
		ring := randomRing(rng, c, n, quantize)
		// Map the probe into the ring's neighborhood so fuzzing explores
		// interesting cases instead of the bbox fast-reject.
		bb := ring.BBox().Buffer(2)
		p := Point{
			bb.MinX + math.Mod(math.Abs(px), bb.Width()+1e-9),
			bb.MinY + math.Mod(math.Abs(py), bb.Height()+1e-9),
		}
		const tol = 1e-9
		for i := 0; i < len(ring); i++ {
			if distToSegment(p, ring[i], ring[(i+1)%len(ring)]) < tol*(1+p.Norm()) {
				t.Skip("boundary-near probe")
			}
		}
		prep := PrepareRing(ring)
		if got, want := prep.Contains(p), ring.ContainsPoint(p); got != want {
			t.Fatalf("seed %d n %d quantize %v: prepared.Contains(%v) = %v, naive = %v",
				seed, n, quantize, p, got, want)
		}
	})
}

func FuzzParseWKTPoint(f *testing.F) {
	f.Add("POINT (1 2)")
	f.Add("POINT (-118.2437 34.0522)")
	f.Add("point(0 0)")
	f.Add("POINT ()")
	f.Add("POINT (1 2 3)")
	f.Add("POLYGON ((0 0, 1 0, 1 1))")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseWKTPoint(s)
		if err == nil {
			// Successful parses must round-trip to an equal point.
			back, err2 := ParseWKTPoint(WKTPoint(p))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
			if back != p && !(p.X != p.X || p.Y != p.Y) { // NaN compares false
				t.Fatalf("round trip of %q changed point: %v -> %v", s, p, back)
			}
		}
	})
}

func FuzzParseWKTPolygon(f *testing.F) {
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	f.Add("POLYGON ((0 0, 4 0, 4 4), (1 1, 2 1, 2 2))")
	f.Add("POLYGON (())")
	f.Add("POLYGON")
	f.Add("MULTIPOLYGON (((0 0, 1 0, 1 1)))")
	f.Fuzz(func(t *testing.T, s string) {
		poly, err := ParseWKTPolygon(s)
		if err == nil && poly.Valid() {
			back, err2 := ParseWKTPolygon(WKTPolygon(poly))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
			if len(back.Holes) != len(poly.Holes) {
				t.Fatalf("round trip of %q changed hole count", s)
			}
		}
	})
}

func FuzzParseWKTMultiPolygon(f *testing.F) {
	f.Add("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))")
	f.Add("MULTIPOLYGON EMPTY")
	f.Add("MULTIPOLYGON ((()))")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseWKTMultiPolygon(s)
		if err == nil {
			_, err2 := ParseWKTMultiPolygon(WKTMultiPolygon(m))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
		}
	})
}
