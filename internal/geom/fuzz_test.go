package geom

import (
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// expanded with `go test -fuzz=FuzzParseWKT ./internal/geom`.
//
// The old white-box FuzzPreparedRingContains lives on, rewired, as
// FuzzContainmentDiff in diff_conformance_test.go: it now drives the
// differential suite (prepared vs naive vs refimpl twin) instead of a
// single hand-rolled ring family. Only the WKT parser fuzzers remain
// in-package, since they exercise unexported parser state.

func FuzzParseWKTPoint(f *testing.F) {
	f.Add("POINT (1 2)")
	f.Add("POINT (-118.2437 34.0522)")
	f.Add("point(0 0)")
	f.Add("POINT ()")
	f.Add("POINT (1 2 3)")
	f.Add("POLYGON ((0 0, 1 0, 1 1))")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseWKTPoint(s)
		if err == nil {
			// Successful parses must round-trip to an equal point.
			back, err2 := ParseWKTPoint(WKTPoint(p))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
			if back != p && !(p.X != p.X || p.Y != p.Y) { // NaN compares false
				t.Fatalf("round trip of %q changed point: %v -> %v", s, p, back)
			}
		}
	})
}

func FuzzParseWKTPolygon(f *testing.F) {
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	f.Add("POLYGON ((0 0, 4 0, 4 4), (1 1, 2 1, 2 2))")
	f.Add("POLYGON (())")
	f.Add("POLYGON")
	f.Add("MULTIPOLYGON (((0 0, 1 0, 1 1)))")
	f.Fuzz(func(t *testing.T, s string) {
		poly, err := ParseWKTPolygon(s)
		if err == nil && poly.Valid() {
			back, err2 := ParseWKTPolygon(WKTPolygon(poly))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
			if len(back.Holes) != len(poly.Holes) {
				t.Fatalf("round trip of %q changed hole count", s)
			}
		}
	})
}

func FuzzParseWKTMultiPolygon(f *testing.F) {
	f.Add("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))")
	f.Add("MULTIPOLYGON EMPTY")
	f.Add("MULTIPOLYGON ((()))")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseWKTMultiPolygon(s)
		if err == nil {
			_, err2 := ParseWKTMultiPolygon(WKTMultiPolygon(m))
			if err2 != nil {
				t.Fatalf("round trip of %q failed: %v", s, err2)
			}
		}
	})
}
