package geom

// Polyline is an open sequence of vertices — road segments, backhaul
// routes, corridor axes.
type Polyline []Point

// Length returns the total planar length.
func (l Polyline) Length() float64 {
	var s float64
	for i := 1; i < len(l); i++ {
		s += l[i-1].DistanceTo(l[i])
	}
	return s
}

// BBox returns the bounding box of the vertices.
func (l Polyline) BBox() BBox { return PointsBBox(l) }

// PointAt returns the point at arc-length distance d from the start,
// clamped to the endpoints. An empty polyline returns the zero point.
func (l Polyline) PointAt(d float64) Point {
	if len(l) == 0 {
		return Point{}
	}
	if d <= 0 {
		return l[0]
	}
	for i := 1; i < len(l); i++ {
		seg := l[i-1].DistanceTo(l[i])
		if d <= seg {
			if seg == 0 { //fivealarms:allow(floateq) zero-length-segment guard before dividing by seg
				return l[i]
			}
			return l[i-1].Add(l[i].Sub(l[i-1]).Scale(d / seg))
		}
		d -= seg
	}
	return l[len(l)-1]
}

// Resample returns n points spaced evenly along the polyline (n >= 2
// includes both endpoints).
func (l Polyline) Resample(n int) []Point {
	if n < 2 || len(l) == 0 {
		if len(l) > 0 {
			return []Point{l[0]}
		}
		return nil
	}
	total := l.Length()
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = l.PointAt(total * float64(i) / float64(n-1))
	}
	return out
}

// DistanceTo returns the minimum planar distance from p to the polyline.
func (l Polyline) DistanceTo(p Point) float64 {
	if len(l) == 0 {
		return 0
	}
	if len(l) == 1 {
		return p.DistanceTo(l[0])
	}
	best := p.DistanceTo(l[0])
	for i := 1; i < len(l); i++ {
		if d := DistancePointSegment(p, l[i-1], l[i]); d < best {
			best = d
		}
	}
	return best
}

// SimplifyLine applies Douglas-Peucker to an open polyline at the given
// tolerance, always retaining the endpoints.
func SimplifyLine(l Polyline, tol float64) Polyline {
	if len(l) <= 2 || tol <= 0 {
		out := make(Polyline, len(l))
		copy(out, l)
		return out
	}
	keep := make([]bool, len(l))
	keep[0], keep[len(l)-1] = true, true
	douglasPeucker(l, 0, len(l)-1, tol, keep)
	out := make(Polyline, 0, len(l))
	for i, p := range l {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}

// CrossesRing reports whether any polyline segment intersects the ring
// boundary or the polyline starts inside the ring — the test used for
// "does this route touch the fire".
func (l Polyline) CrossesRing(r Ring) bool {
	if len(l) == 0 || !r.Valid() {
		return false
	}
	if r.ContainsPoint(l[0]) {
		return true
	}
	n := len(r)
	for i := 1; i < len(l); i++ {
		for j := 0; j < n; j++ {
			if SegmentsIntersect(l[i-1], l[i], r[j], r[(j+1)%n]) {
				return true
			}
		}
	}
	return false
}
