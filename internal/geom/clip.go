package geom

// ClipRingToBBox clips a ring against an axis-aligned box with the
// Sutherland-Hodgman algorithm. The result may be empty (ring entirely
// outside) and, for concave rings spanning a corner, can include edges
// running along the box boundary — standard Sutherland-Hodgman
// semantics, adequate for windowed map rendering and zonal analysis.
func ClipRingToBBox(r Ring, b BBox) Ring {
	if !r.Valid() || b.IsEmpty() {
		return nil
	}
	// Clip against the four half-planes in turn.
	cur := []Point(r)
	for side := 0; side < 4; side++ {
		if len(cur) == 0 {
			return nil
		}
		var next []Point
		n := len(cur)
		for i := 0; i < n; i++ {
			a := cur[i]
			c := cur[(i+1)%n]
			aIn := insideSide(a, b, side)
			cIn := insideSide(c, b, side)
			switch {
			case aIn && cIn:
				next = append(next, c)
			case aIn && !cIn:
				next = append(next, intersectSide(a, c, b, side))
			case !aIn && cIn:
				next = append(next, intersectSide(a, c, b, side), c)
			}
		}
		cur = next
	}
	out := NewRing(cur...)
	if !out.Valid() || out.Area() == 0 { //fivealarms:allow(floateq) exact-zero area marks a fully clipped-away ring, a discrete outcome
		return nil
	}
	return out
}

// ClipPolygonToBBox clips a polygon (exterior and holes) to a box. Holes
// that vanish are dropped; a vanished exterior drops the polygon.
func ClipPolygonToBBox(p Polygon, b BBox) (Polygon, bool) {
	ext := ClipRingToBBox(p.Exterior, b)
	if ext == nil {
		return Polygon{}, false
	}
	out := Polygon{Exterior: ext}
	for _, h := range p.Holes {
		if ch := ClipRingToBBox(h, b); ch != nil {
			out.Holes = append(out.Holes, ch)
		}
	}
	return out, true
}

// ClipMultiPolygonToBBox clips each member polygon, dropping vanished
// members.
func ClipMultiPolygonToBBox(m MultiPolygon, b BBox) MultiPolygon {
	var out MultiPolygon
	for _, p := range m {
		if cp, ok := ClipPolygonToBBox(p, b); ok {
			out = append(out, cp)
		}
	}
	return out
}

// insideSide reports whether p satisfies the side'th half-plane of b
// (0=left, 1=right, 2=bottom, 3=top).
func insideSide(p Point, b BBox, side int) bool {
	switch side {
	case 0:
		return p.X >= b.MinX
	case 1:
		return p.X <= b.MaxX
	case 2:
		return p.Y >= b.MinY
	default:
		return p.Y <= b.MaxY
	}
}

// intersectSide returns the intersection of segment ac with the side'th
// boundary line of b.
func intersectSide(a, c Point, b BBox, side int) Point {
	switch side {
	case 0:
		return intersectVertical(a, c, b.MinX)
	case 1:
		return intersectVertical(a, c, b.MaxX)
	case 2:
		return intersectHorizontal(a, c, b.MinY)
	default:
		return intersectHorizontal(a, c, b.MaxY)
	}
}

func intersectVertical(a, c Point, x float64) Point {
	t := (x - a.X) / (c.X - a.X)
	return Point{X: x, Y: a.Y + t*(c.Y-a.Y)}
}

func intersectHorizontal(a, c Point, y float64) Point {
	t := (y - a.Y) / (c.Y - a.Y)
	return Point{X: a.X + t*(c.X-a.X), Y: y}
}
