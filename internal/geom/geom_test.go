package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBBoxBasics(t *testing.T) {
	b := NewBBox(Pt(2, 5), Pt(-1, 1))
	if b.MinX != -1 || b.MinY != 1 || b.MaxX != 2 || b.MaxY != 5 {
		t.Fatalf("NewBBox normalized wrong: %v", b)
	}
	if got := b.Width(); got != 3 {
		t.Errorf("Width = %v, want 3", got)
	}
	if got := b.Height(); got != 4 {
		t.Errorf("Height = %v, want 4", got)
	}
	if got := b.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if c := b.Center(); c != Pt(0.5, 3) {
		t.Errorf("Center = %v, want (0.5,3)", c)
	}
}

func TestBBoxEmpty(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty box should have zero measures")
	}
	if e.Intersects(NewBBox(Pt(0, 0), Pt(1, 1))) {
		t.Error("empty box should intersect nothing")
	}
	got := e.ExtendPoint(Pt(3, 4))
	if got.IsEmpty() || got.MinX != 3 || got.MaxY != 4 {
		t.Errorf("ExtendPoint on empty = %v", got)
	}
}

func TestBBoxContainsIntersects(t *testing.T) {
	b := NewBBox(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"inside", Pt(5, 5), true},
		{"corner", Pt(0, 0), true},
		{"edge", Pt(10, 3), true},
		{"outside right", Pt(10.01, 3), false},
		{"outside below", Pt(5, -0.01), false},
	}
	for _, tc := range tests {
		if got := b.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("%s: ContainsPoint(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}

	boxTests := []struct {
		name      string
		o         BBox
		intersect bool
		contained bool
	}{
		{"disjoint", NewBBox(Pt(20, 20), Pt(30, 30)), false, false},
		{"touching edge", NewBBox(Pt(10, 0), Pt(20, 10)), true, false},
		{"overlap", NewBBox(Pt(5, 5), Pt(15, 15)), true, false},
		{"inside", NewBBox(Pt(2, 2), Pt(8, 8)), true, true},
		{"equal", b, true, true},
	}
	for _, tc := range boxTests {
		if got := b.Intersects(tc.o); got != tc.intersect {
			t.Errorf("%s: Intersects = %v, want %v", tc.name, got, tc.intersect)
		}
		if got := b.ContainsBBox(tc.o); got != tc.contained {
			t.Errorf("%s: ContainsBBox = %v, want %v", tc.name, got, tc.contained)
		}
	}
}

func TestBBoxIntersection(t *testing.T) {
	a := NewBBox(Pt(0, 0), Pt(10, 10))
	b := NewBBox(Pt(5, 5), Pt(15, 15))
	got := a.Intersection(b)
	want := NewBBox(Pt(5, 5), Pt(10, 10))
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	if !a.Intersection(NewBBox(Pt(20, 20), Pt(30, 30))).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestBBoxBuffer(t *testing.T) {
	b := NewBBox(Pt(0, 0), Pt(2, 2)).Buffer(1)
	if b.MinX != -1 || b.MaxY != 3 {
		t.Errorf("Buffer = %v", b)
	}
	if !NewBBox(Pt(0, 0), Pt(1, 1)).Buffer(-2).IsEmpty() {
		t.Error("over-shrunk box should be empty")
	}
}

func TestRingAreaOrientation(t *testing.T) {
	sq := NewRing(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4))
	if got := sq.SignedArea(); got != 16 {
		t.Errorf("CCW square SignedArea = %v, want 16", got)
	}
	if !sq.IsCCW() {
		t.Error("square should be CCW")
	}
	rev := sq.Reverse()
	if got := rev.SignedArea(); got != -16 {
		t.Errorf("reversed square SignedArea = %v, want -16", got)
	}
	if got := rev.Area(); got != 16 {
		t.Errorf("Area should be unsigned: %v", got)
	}
}

func TestNewRingStripsClosingVertex(t *testing.T) {
	r := NewRing(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 0))
	if len(r) != 3 {
		t.Fatalf("closing vertex not stripped: len=%d", len(r))
	}
}

func TestRingCentroid(t *testing.T) {
	sq := NewRing(Pt(1, 1), Pt(5, 1), Pt(5, 5), Pt(1, 5))
	c := sq.Centroid()
	if !almostEqual(c.X, 3, 1e-12) || !almostEqual(c.Y, 3, 1e-12) {
		t.Errorf("Centroid = %v, want (3,3)", c)
	}
	// Degenerate: all points collinear -> vertex mean.
	line := Ring{Pt(0, 0), Pt(2, 0), Pt(4, 0)}
	c = line.Centroid()
	if !almostEqual(c.X, 2, 1e-12) || !almostEqual(c.Y, 0, 1e-12) {
		t.Errorf("degenerate Centroid = %v, want (2,0)", c)
	}
}

func TestRingPerimeter(t *testing.T) {
	sq := NewRing(Pt(0, 0), Pt(3, 0), Pt(3, 4), Pt(0, 4))
	if got := sq.Perimeter(); got != 14 {
		t.Errorf("Perimeter = %v, want 14", got)
	}
}

func TestRingContainsPoint(t *testing.T) {
	// Concave "L" shape.
	l := NewRing(Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4))
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"inside lower arm", Pt(3, 1), true},
		{"inside upper arm", Pt(1, 3), true},
		{"inside corner", Pt(1, 1), true},
		{"in notch", Pt(3, 3), false},
		{"outside", Pt(5, 5), false},
		{"far left", Pt(-1, 2), false},
	}
	for _, tc := range tests {
		if got := l.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("%s: ContainsPoint(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestRingContainsPointInvalid(t *testing.T) {
	if (Ring{Pt(0, 0), Pt(1, 1)}).ContainsPoint(Pt(0.5, 0.5)) {
		t.Error("invalid ring should contain nothing")
	}
}

func TestRingOnBoundary(t *testing.T) {
	sq := NewRing(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4))
	if !sq.OnBoundary(Pt(2, 0), 1e-9) {
		t.Error("edge midpoint should be on boundary")
	}
	if !sq.OnBoundary(Pt(2, 0.05), 0.1) {
		t.Error("near-edge point within tol should be on boundary")
	}
	if sq.OnBoundary(Pt(2, 2), 0.1) {
		t.Error("center should not be on boundary")
	}
}

func TestPolygonWithHole(t *testing.T) {
	outer := NewRing(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10))
	hole := NewRing(Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6))
	p := NewPolygon(outer, hole)
	if got := p.Area(); got != 96 {
		t.Errorf("Area = %v, want 96", got)
	}
	if p.ContainsPoint(Pt(5, 5)) {
		t.Error("point in hole should be outside")
	}
	if !p.ContainsPoint(Pt(2, 2)) {
		t.Error("point in solid part should be inside")
	}
	if p.ContainsPoint(Pt(11, 5)) {
		t.Error("point outside exterior should be outside")
	}
}

func TestPolygonCentroidWithHole(t *testing.T) {
	// A square with an off-center hole shifts the centroid away from the hole.
	outer := NewRing(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10))
	hole := NewRing(Pt(6, 4), Pt(9, 4), Pt(9, 7), Pt(6, 7))
	p := NewPolygon(outer, hole)
	c := p.Centroid()
	if c.X >= 5 {
		t.Errorf("centroid should shift left of 5, got %v", c)
	}
}

func TestMultiPolygon(t *testing.T) {
	m := MultiPolygon{
		NewPolygon(NewRing(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))),
		NewPolygon(NewRing(Pt(10, 10), Pt(14, 10), Pt(14, 14), Pt(10, 14))),
	}
	if got := m.Area(); got != 20 {
		t.Errorf("Area = %v, want 20", got)
	}
	if !m.ContainsPoint(Pt(1, 1)) || !m.ContainsPoint(Pt(12, 12)) {
		t.Error("points in members should be contained")
	}
	if m.ContainsPoint(Pt(5, 5)) {
		t.Error("gap point should not be contained")
	}
	bb := m.BBox()
	if bb.MinX != 0 || bb.MaxX != 14 {
		t.Errorf("BBox = %v", bb)
	}
	c := m.Centroid()
	// Weighted: (1,1)*4 + (12,12)*16 over 20 => (9.8, 9.8).
	if !almostEqual(c.X, 9.8, 1e-9) || !almostEqual(c.Y, 9.8, 1e-9) {
		t.Errorf("Centroid = %v, want (9.8, 9.8)", c)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Point
		wantKM float64
		tolKM  float64
	}{
		{"LA to SF", Pt(-118.2437, 34.0522), Pt(-122.4194, 37.7749), 559, 10},
		{"NYC to LA", Pt(-74.0060, 40.7128), Pt(-118.2437, 34.0522), 3936, 40},
		{"same point", Pt(-100, 40), Pt(-100, 40), 0, 1e-9},
		{"one degree lat at equator", Pt(0, 0), Pt(0, 1), 111.195, 0.2},
	}
	for _, tc := range tests {
		got := Haversine(tc.a, tc.b) / 1000
		if !almostEqual(got, tc.wantKM, tc.tolKM) {
			t.Errorf("%s: Haversine = %.1f km, want %.1f±%.1f", tc.name, got, tc.wantKM, tc.tolKM)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(ax, 180), math.Mod(ay, 85)}
		b := Point{math.Mod(bx, 180), math.Mod(by, 85)}
		d1 := Haversine(a, b)
		d2 := Haversine(b, a)
		return almostEqual(d1, d2, 1e-6) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	start := Pt(-105.0, 39.7) // Denver
	for _, brg := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{1000, 50000, 500000} {
			end := Destination(start, brg, dist)
			got := Haversine(start, end)
			if !almostEqual(got, dist, dist*1e-6+0.01) {
				t.Errorf("bearing %v dist %v: round-trip distance %v", brg, dist, got)
			}
		}
	}
}

func TestDestinationBearing(t *testing.T) {
	start := Pt(-100, 40)
	north := Destination(start, 0, 100000)
	if north.Y <= start.Y {
		t.Error("bearing 0 should move north")
	}
	east := Destination(start, 90, 100000)
	if east.X <= start.X {
		t.Error("bearing 90 should move east")
	}
	if !almostEqual(east.Y, start.Y, 0.2) {
		t.Errorf("bearing 90 should roughly preserve latitude, got %v", east.Y)
	}
}

func TestInitialBearing(t *testing.T) {
	if b := InitialBearing(Pt(0, 0), Pt(0, 10)); !almostEqual(b, 0, 1e-9) {
		t.Errorf("due north bearing = %v", b)
	}
	if b := InitialBearing(Pt(0, 0), Pt(10, 0)); !almostEqual(b, 90, 1e-9) {
		t.Errorf("due east bearing = %v", b)
	}
	if b := InitialBearing(Pt(0, 0), Pt(0, -10)); !almostEqual(b, 180, 1e-9) {
		t.Errorf("due south bearing = %v", b)
	}
}

func TestGeographicRingArea(t *testing.T) {
	// 1x1 degree cell near the equator: ~111.195^2 km^2 = 1.2364e10 m^2.
	r := NewRing(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	got := GeographicRingArea(r)
	want := 1.2364e10
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("equator cell area = %.4g, want ~%.4g", got, want)
	}
	// The same cell at 60N should be about half the area (cos 60 = 0.5).
	r60 := NewRing(Pt(0, 60), Pt(1, 60), Pt(1, 61), Pt(0, 61))
	got60 := GeographicRingArea(r60)
	ratio := got60 / got
	if ratio < 0.42 || ratio > 0.55 {
		t.Errorf("60N/equator area ratio = %v, want ~0.48", ratio)
	}
}

func TestAcres(t *testing.T) {
	if got := Acres(SquareMetersPerAcre * 100); !almostEqual(got, 100, 1e-9) {
		t.Errorf("Acres = %v, want 100", got)
	}
}

func TestMetersPerDegree(t *testing.T) {
	if got := MetersPerDegreeLat(); !almostEqual(got, 111195, 10) {
		t.Errorf("MetersPerDegreeLat = %v", got)
	}
	if got := MetersPerDegreeLon(0); !almostEqual(got, 111195, 10) {
		t.Errorf("MetersPerDegreeLon(0) = %v", got)
	}
	if got := MetersPerDegreeLon(60); !almostEqual(got, 111195.0/2, 30) {
		t.Errorf("MetersPerDegreeLon(60) = %v", got)
	}
}

func TestGeographicBufferBBox(t *testing.T) {
	b := NewBBox(Pt(-120, 35), Pt(-119, 36))
	buf := GeographicBufferBBox(b, 10000)
	if !buf.ContainsBBox(b) {
		t.Error("buffered box must contain original")
	}
	// Latitude padding should be ~0.09 degrees.
	if pad := b.MinY - buf.MinY; !almostEqual(pad, 0.0899, 0.001) {
		t.Errorf("lat pad = %v", pad)
	}
	// Longitude padding should exceed latitude padding at this latitude.
	if lonPad := b.MinX - buf.MinX; lonPad <= b.MinY-buf.MinY {
		t.Errorf("lon pad %v should exceed lat pad at 36N", lonPad)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"crossing X", Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), true},
		{"parallel", Pt(0, 0), Pt(2, 0), Pt(0, 1), Pt(2, 1), false},
		{"touching endpoint", Pt(0, 0), Pt(2, 2), Pt(2, 2), Pt(4, 0), true},
		{"collinear overlap", Pt(0, 0), Pt(4, 0), Pt(2, 0), Pt(6, 0), true},
		{"collinear disjoint", Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0), false},
		{"T junction", Pt(0, 0), Pt(4, 0), Pt(2, -2), Pt(2, 0), true},
		{"near miss", Pt(0, 0), Pt(4, 0), Pt(2, 0.001), Pt(2, 5), false},
	}
	for _, tc := range tests {
		if got := SegmentsIntersect(tc.a, tc.b, tc.c, tc.d); got != tc.want {
			t.Errorf("%s: = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRingsIntersect(t *testing.T) {
	sq := func(x, y, s float64) Ring {
		return NewRing(Pt(x, y), Pt(x+s, y), Pt(x+s, y+s), Pt(x, y+s))
	}
	tests := []struct {
		name   string
		r1, r2 Ring
		want   bool
	}{
		{"overlapping", sq(0, 0, 4), sq(2, 2, 4), true},
		{"disjoint", sq(0, 0, 2), sq(5, 5, 2), false},
		{"nested", sq(0, 0, 10), sq(3, 3, 2), true},
		{"nested reversed args", sq(3, 3, 2), sq(0, 0, 10), true},
		{"edge touching", sq(0, 0, 2), sq(2, 0, 2), true},
	}
	for _, tc := range tests {
		if got := RingsIntersect(tc.r1, tc.r2); got != tc.want {
			t.Errorf("%s: = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{
		{0, 0}, {4, 0}, {4, 4}, {0, 4}, // corners
		{2, 2}, {1, 3}, {3, 1}, // interior
		{2, 0}, // edge point
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (got %v)", len(hull), hull)
	}
	if !hull.IsCCW() {
		t.Error("hull should be CCW")
	}
	if !almostEqual(hull.Area(), 16, 1e-9) {
		t.Errorf("hull area = %v, want 16", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); got != nil {
		t.Errorf("hull of empty = %v", got)
	}
	one := ConvexHull([]Point{{1, 1}, {1, 1}})
	if len(one) != 1 {
		t.Errorf("hull of duplicated point = %v", one)
	}
	two := ConvexHull([]Point{{0, 0}, {1, 1}})
	if len(two) != 2 {
		t.Errorf("hull of two points = %v", two)
	}
}

func TestConvexHullProperty(t *testing.T) {
	f := func(raw [16]struct{ X, Y int8 }) bool {
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Pt(float64(r.X), float64(r.Y))
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true // collinear input
		}
		// Every input point must be inside or on the hull.
		for _, p := range pts {
			if !hull.ContainsPoint(p) && !hull.OnBoundary(p, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimplify(t *testing.T) {
	// A square densified with redundant midpoints simplifies back to 4 corners.
	dense := Ring{}
	corners := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	for i, c := range corners {
		next := corners[(i+1)%4]
		for k := 0; k < 10; k++ {
			f := float64(k) / 10
			dense = append(dense, Point{c.X + (next.X-c.X)*f, c.Y + (next.Y-c.Y)*f})
		}
	}
	simp := Simplify(dense, 0.01)
	if len(simp) > 5 {
		t.Errorf("simplified ring has %d vertices, want <=5", len(simp))
	}
	if !almostEqual(simp.Area(), 100, 1) {
		t.Errorf("simplified area = %v, want ~100", simp.Area())
	}
}

func TestSimplifyPreservesSmallRings(t *testing.T) {
	tri := NewRing(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	got := Simplify(tri, 10)
	if len(got) != 3 {
		t.Errorf("triangle should be preserved, got %d vertices", len(got))
	}
}

func TestDistancePointSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    float64
	}{
		{"perpendicular", Pt(2, 3), Pt(0, 0), Pt(4, 0), 3},
		{"beyond a", Pt(-3, 4), Pt(0, 0), Pt(4, 0), 5},
		{"beyond b", Pt(7, 4), Pt(0, 0), Pt(4, 0), 5},
		{"degenerate segment", Pt(3, 4), Pt(0, 0), Pt(0, 0), 5},
		{"on segment", Pt(2, 0), Pt(0, 0), Pt(4, 0), 0},
	}
	for _, tc := range tests {
		if got := DistancePointSegment(tc.p, tc.a, tc.b); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRegularRing(t *testing.T) {
	c := Pt(5, 5)
	r := RegularRing(c, 2, 64)
	if len(r) != 64 {
		t.Fatalf("len = %d", len(r))
	}
	// Area approaches pi*r^2 = 12.566.
	if !almostEqual(r.Area(), math.Pi*4, 0.05) {
		t.Errorf("area = %v, want ~%v", r.Area(), math.Pi*4)
	}
	if !r.ContainsPoint(c) {
		t.Error("center should be inside")
	}
	got := RegularRing(c, 1, 2)
	if len(got) != 3 {
		t.Errorf("n<3 should clamp to 3, got %d", len(got))
	}
}

func TestBufferConvex(t *testing.T) {
	sq := NewRing(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4))
	buf := BufferConvex(sq, 1, 16)
	// Buffered area ~ original + perimeter*d + pi*d^2 = 16 + 16 + pi.
	want := 16 + 16 + math.Pi
	if math.Abs(buf.Area()-want) > 0.5 {
		t.Errorf("buffered area = %v, want ~%v", buf.Area(), want)
	}
	for _, p := range sq {
		if !buf.ContainsPoint(p) {
			t.Errorf("buffer must contain original vertex %v", p)
		}
	}
	same := BufferConvex(sq, 0, 8)
	if len(same) != len(sq) {
		t.Error("zero buffer should return clone")
	}
}

func TestPointVectorOps(t *testing.T) {
	a, b := Pt(3, 4), Pt(1, 2)
	if a.Add(b) != Pt(4, 6) {
		t.Error("Add")
	}
	if a.Sub(b) != Pt(2, 2) {
		t.Error("Sub")
	}
	if a.Scale(2) != Pt(6, 8) {
		t.Error("Scale")
	}
	if a.Dot(b) != 11 {
		t.Error("Dot")
	}
	if a.Cross(b) != 2 {
		t.Error("Cross")
	}
	if a.Norm() != 5 {
		t.Error("Norm")
	}
	if a.DistanceTo(Pt(0, 0)) != 5 {
		t.Error("DistanceTo")
	}
}

func TestRingContainsPointProperty(t *testing.T) {
	// For a convex ring, ContainsPoint must agree with the half-plane test.
	hexagon := RegularRing(Pt(0, 0), 10, 6)
	f := func(x, y float64) bool {
		p := Point{math.Mod(x, 20), math.Mod(y, 20)}
		got := hexagon.ContainsPoint(p)
		want := true
		n := len(hexagon)
		for i := 0; i < n; i++ {
			if orient(hexagon[i], hexagon[(i+1)%n], p) < 0 {
				want = false
				break
			}
		}
		// Skip points within epsilon of the boundary where the two tests
		// may legitimately disagree.
		if hexagon.OnBoundary(p, 1e-9) {
			return true
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPointsBBox(t *testing.T) {
	b := PointsBBox([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if b.MinX != -2 || b.MinY != -1 || b.MaxX != 4 || b.MaxY != 5 {
		t.Errorf("PointsBBox = %v", b)
	}
	if !PointsBBox(nil).IsEmpty() {
		t.Error("empty input should give empty box")
	}
}
