// Package geom provides the planar and geodetic geometry kernel used by the
// fivealarms risk analyses: points, bounding boxes, rings, polygons and
// multipolygons, together with the predicates (containment, intersection)
// and measures (area, length, centroid, distance) that the overlay engine
// is built on.
//
// # Coordinate conventions
//
// Geographic coordinates are stored as (X, Y) = (longitude, latitude) in
// decimal degrees on the WGS84 sphere. Projected coordinates (see package
// proj) use meters. All geometry algorithms in this package are planar; the
// geodesy helpers (Haversine, Destination, ...) operate on geographic
// coordinates explicitly.
package geom

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius (IUGG R1) used by all geodesic
// computations in this module.
const EarthRadiusMeters = 6371008.8

// MetersPerMile converts statute miles to meters. The paper's §3.8 extension
// buffers very-high WHP areas by half a mile.
const MetersPerMile = 1609.344

// SquareMetersPerAcre converts acres (the unit GeoMAC and the paper report
// burned area in) to square meters.
const SquareMetersPerAcre = 4046.8564224

// Point is a 2-D coordinate. For geographic data X is longitude and Y is
// latitude, both in decimal degrees.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q treated as
// vectors. Positive when q is counter-clockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// DistanceTo returns the planar Euclidean distance from p to q.
func (p Point) DistanceTo(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }

// BBox is an axis-aligned bounding box. A BBox is valid when MinX <= MaxX and
// MinY <= MaxY; the zero BBox is treated as empty.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns a box that contains nothing and extends correctly under
// ExtendPoint/ExtendBBox.
func EmptyBBox() BBox {
	inf := math.Inf(1)
	return BBox{MinX: inf, MinY: inf, MaxX: -inf, MaxY: -inf}
}

// NewBBox returns the bounding box of the two corner points given in any
// order.
func NewBBox(a, b Point) BBox {
	return BBox{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the x-extent of the box, or 0 when empty.
func (b BBox) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the y-extent of the box, or 0 when empty.
func (b BBox) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of the box, or 0 when empty.
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Center returns the center of the box. Center of an empty box is undefined.
func (b BBox) Center() Point { return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2} }

// ContainsPoint reports whether p lies inside or on the boundary of b.
func (b BBox) ContainsPoint(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Intersects reports whether b and o share at least one point (boundaries
// touching counts as intersecting).
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// ContainsBBox reports whether o lies entirely inside b.
func (b BBox) ContainsBBox(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX && o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// ExtendPoint returns the smallest box containing both b and p.
func (b BBox) ExtendPoint(p Point) BBox {
	return BBox{
		MinX: math.Min(b.MinX, p.X), MinY: math.Min(b.MinY, p.Y),
		MaxX: math.Max(b.MaxX, p.X), MaxY: math.Max(b.MaxY, p.Y),
	}
}

// ExtendBBox returns the smallest box containing both b and o.
func (b BBox) ExtendBBox(o BBox) BBox {
	if o.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return o
	}
	return BBox{
		MinX: math.Min(b.MinX, o.MinX), MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX), MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// Buffer returns b expanded by d on every side. Negative d shrinks the box
// and may produce an empty box.
func (b BBox) Buffer(d float64) BBox {
	if b.IsEmpty() {
		return b
	}
	return BBox{MinX: b.MinX - d, MinY: b.MinY - d, MaxX: b.MaxX + d, MaxY: b.MaxY + d}
}

// Intersection returns the overlap of b and o; the result is empty when they
// do not intersect.
func (b BBox) Intersection(o BBox) BBox {
	r := BBox{
		MinX: math.Max(b.MinX, o.MinX), MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX), MaxY: math.Min(b.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyBBox()
	}
	return r
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%.6f,%.6f %.6f,%.6f]", b.MinX, b.MinY, b.MaxX, b.MaxY)
}
