package geom

import (
	"math"
	"sort"
)

// SegmentsIntersect reports whether segments ab and cd share at least one
// point, including collinear overlap and endpoint touching.
//
//fivealarms:allow(floateq) orient()==0 is the exact collinearity predicate; an epsilon would disagree with the refimpl twin
func SegmentsIntersect(a, b, c, d Point) bool {
	d1 := orient(c, d, a)
	d2 := orient(c, d, b)
	d3 := orient(a, b, c)
	d4 := orient(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(c, d, a):
		return true
	case d2 == 0 && onSegment(c, d, b):
		return true
	case d3 == 0 && onSegment(a, b, c):
		return true
	case d4 == 0 && onSegment(a, b, d):
		return true
	}
	return false
}

// orient returns >0 when c is counter-clockwise of ray ab, <0 clockwise and
// 0 when collinear.
func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether collinear point p lies on segment ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// RingsIntersect reports whether the boundaries or interiors of two rings
// overlap. It is used by the overlay engine for perimeter/zone tests where a
// bounding-box pre-filter has already passed.
func RingsIntersect(r1, r2 Ring) bool {
	if !r1.Valid() || !r2.Valid() {
		return false
	}
	if !r1.BBox().Intersects(r2.BBox()) {
		return false
	}
	n1, n2 := len(r1), len(r2)
	for i := 0; i < n1; i++ {
		a, b := r1[i], r1[(i+1)%n1]
		for j := 0; j < n2; j++ {
			if SegmentsIntersect(a, b, r2[j], r2[(j+1)%n2]) {
				return true
			}
		}
	}
	// No edge crossings: one ring may contain the other entirely.
	return r1.ContainsPoint(r2[0]) || r2.ContainsPoint(r1[0])
}

// ConvexHull returns the convex hull of the given points in counter-
// clockwise order using Andrew's monotone chain. Inputs of fewer than three
// distinct points return the distinct points.
func ConvexHull(pts []Point) Ring {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X { //fivealarms:allow(floateq) sort tie-break on raw coordinates; exactness keeps the hull order deterministic
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	n := len(ps)
	if n < 3 {
		return Ring(ps)
	}
	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && orient(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && orient(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Ring(hull[:len(hull)-1])
}

// Simplify returns a copy of the ring simplified with the Douglas-Peucker
// algorithm at the given tolerance. Rings that would collapse below three
// vertices are returned with their three most extreme vertices preserved.
func Simplify(r Ring, tol float64) Ring {
	if len(r) <= 3 || tol <= 0 {
		return r.Clone()
	}
	// Treat as a closed line: run DP on the open vertex list plus the first
	// vertex repeated, then strip it.
	open := make([]Point, len(r)+1)
	copy(open, r)
	open[len(r)] = r[0]
	keep := make([]bool, len(open))
	keep[0], keep[len(open)-1] = true, true
	douglasPeucker(open, 0, len(open)-1, tol, keep)
	out := make(Ring, 0, len(r))
	for i := 0; i < len(open)-1; i++ {
		if keep[i] {
			out = append(out, open[i])
		}
	}
	if len(out) < 3 {
		return fallbackTriangle(r)
	}
	return out
}

func douglasPeucker(pts []Point, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	var maxD float64
	maxI := -1
	for i := lo + 1; i < hi; i++ {
		d := DistancePointSegment(pts[i], pts[lo], pts[hi])
		if d > maxD {
			maxD = d
			maxI = i
		}
	}
	if maxD > tol {
		keep[maxI] = true
		douglasPeucker(pts, lo, maxI, tol, keep)
		douglasPeucker(pts, maxI, hi, tol, keep)
	}
}

// fallbackTriangle returns a 3-vertex ring that spans r's extent when
// simplification collapsed it.
func fallbackTriangle(r Ring) Ring {
	if len(r) < 3 {
		return r.Clone()
	}
	iMinX, iMaxX, iMaxY := 0, 0, 0
	for i, p := range r {
		if p.X < r[iMinX].X {
			iMinX = i
		}
		if p.X > r[iMaxX].X {
			iMaxX = i
		}
		if p.Y > r[iMaxY].Y {
			iMaxY = i
		}
	}
	tri := Ring{r[iMinX], r[iMaxX], r[iMaxY]}
	if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
		return Ring{r[0], r[len(r)/3], r[2*len(r)/3]}
	}
	return tri
}

// BufferConvex returns an approximate outward buffer of a convex ring by
// distance d: the convex hull of circles of radius d (approximated by
// arcSteps points each) placed at every vertex. For non-convex rings the
// result is the buffered convex hull, which is conservative (a superset).
// The overlay engine uses raster distance transforms for exact buffering;
// this vector version serves quick-and-dirty pre-filters and examples.
func BufferConvex(r Ring, d float64, arcSteps int) Ring {
	if len(r) == 0 || d <= 0 {
		return r.Clone()
	}
	if arcSteps < 4 {
		arcSteps = 8
	}
	pts := make([]Point, 0, len(r)*arcSteps)
	for _, v := range r {
		for i := 0; i < arcSteps; i++ {
			a := 2 * math.Pi * float64(i) / float64(arcSteps)
			pts = append(pts, Point{v.X + d*math.Cos(a), v.Y + d*math.Sin(a)})
		}
	}
	return ConvexHull(pts)
}

// PointsBBox returns the bounding box of a point set.
func PointsBBox(pts []Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}
