package geom_test

// The containment conformance tests live outside package geom because the
// differential driver imports geom; an external test package breaks the
// cycle while still running next to the code it guards.

import (
	"testing"

	"fivealarms/internal/refimpl/diffcheck"
)

// TestContainmentConformance sweeps the prepared-geometry containment
// stack (PreparedRing, PreparedPolygon, PreparedMultiPolygon, plus the
// batch API) against both the naive geom predicates and the refimpl
// twins over seeded adversarial rings: stars, rectilinear histograms,
// degenerate and pinched rings, huge and sub-epsilon coordinates.
func TestContainmentConformance(t *testing.T) {
	if err := diffcheck.Sweep(250, diffcheck.CheckContainment); err != nil {
		t.Fatal(err)
	}
}

// TestContainmentGoldens replays the hand-authored GeoJSON worst cases.
// The rectilinear fixture is the strict one: with every edge
// axis-aligned both ray-cast forms are exact, so even probes exactly on
// edges and vertices must agree bit-for-bit with no carve-out.
func TestContainmentGoldens(t *testing.T) {
	for _, name := range diffcheck.FixtureNames() {
		if err := diffcheck.CheckGoldenContainment(name); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzContainmentDiff is the rewired form of the old white-box
// FuzzPreparedRingContains: the fuzzer explores seeds and every seed
// runs the full differential containment battery, so coverage grows
// with the generator instead of a single hand-rolled ring family.
func FuzzContainmentDiff(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffcheck.CheckContainment(seed); err != nil {
			t.Fatal(err)
		}
	})
}
