package geom

import "math"

// Ring is a closed sequence of vertices describing a simple polygon boundary.
// The closing edge from the last vertex back to the first is implicit: rings
// should NOT repeat the first vertex at the end (NewRing strips a repeated
// closing vertex). Orientation is not required; signed quantities expose it.
type Ring []Point

// NewRing builds a Ring from pts, dropping a duplicated closing vertex if the
// caller supplied one (common in GeoJSON-style inputs).
func NewRing(pts ...Point) Ring {
	if n := len(pts); n > 1 && pts[0] == pts[n-1] {
		pts = pts[:n-1]
	}
	r := make(Ring, len(pts))
	copy(r, pts)
	return r
}

// Valid reports whether the ring has at least three vertices and hence
// encloses area.
func (r Ring) Valid() bool { return len(r) >= 3 }

// BBox returns the bounding box of the ring.
func (r Ring) BBox() BBox {
	b := EmptyBBox()
	for _, p := range r {
		b = b.ExtendPoint(p)
	}
	return b
}

// SignedArea returns the signed planar area by the shoelace formula:
// positive for counter-clockwise rings, negative for clockwise.
func (r Ring) SignedArea() float64 {
	if !r.Valid() {
		return 0
	}
	var s float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return s / 2
}

// Area returns the absolute planar area of the ring.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether the ring winds counter-clockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reverse returns a copy of the ring with opposite orientation.
func (r Ring) Reverse() Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

// Centroid returns the area centroid of the ring. For degenerate rings the
// vertex mean is returned.
func (r Ring) Centroid() Point {
	a := r.SignedArea()
	if a == 0 { //fivealarms:allow(floateq) degenerate-ring guard before dividing by the area
		var c Point
		if len(r) == 0 {
			return c
		}
		for _, p := range r {
			c.X += p.X
			c.Y += p.Y
		}
		return c.Scale(1 / float64(len(r)))
	}
	var cx, cy float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := r[i].X*r[j].Y - r[j].X*r[i].Y
		cx += (r[i].X + r[j].X) * f
		cy += (r[i].Y + r[j].Y) * f
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// Perimeter returns the total planar length of the ring boundary including
// the implicit closing edge.
func (r Ring) Perimeter() float64 {
	if len(r) < 2 {
		return 0
	}
	var s float64
	n := len(r)
	for i := 0; i < n; i++ {
		s += r[i].DistanceTo(r[(i+1)%n])
	}
	return s
}

// ContainsPoint reports whether p lies strictly inside the ring, using the
// even-odd ray casting rule. Points exactly on the boundary may be reported
// either way; callers needing boundary semantics should test OnBoundary
// first.
func (r Ring) ContainsPoint(p Point) bool {
	if !r.Valid() {
		return false
	}
	inside := false
	n := len(r)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := r[i], r[j]
		// Does the horizontal ray from p to +inf cross edge (pj, pi)?
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether p lies on the ring boundary within tolerance
// tol (perpendicular distance to some edge).
func (r Ring) OnBoundary(p Point, tol float64) bool {
	n := len(r)
	if n < 2 {
		return false
	}
	for i := 0; i < n; i++ {
		if DistancePointSegment(p, r[i], r[(i+1)%n]) <= tol {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	out := make(Ring, len(r))
	copy(out, r)
	return out
}

// DistancePointSegment returns the planar distance from p to the segment ab.
func DistancePointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 { //fivealarms:allow(floateq) coincident-endpoints guard before dividing by l2
		return p.DistanceTo(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	switch {
	case t <= 0:
		return p.DistanceTo(a)
	case t >= 1:
		return p.DistanceTo(b)
	}
	proj := a.Add(ab.Scale(t))
	return p.DistanceTo(proj)
}

// RegularRing returns an n-gon of the given radius centered at c, wound
// counter-clockwise. It is a convenience used to approximate circular
// buffers and by the synthetic generators. n must be >= 3.
func RegularRing(c Point, radius float64, n int) Ring {
	if n < 3 {
		n = 3
	}
	r := make(Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		r[i] = Point{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)}
	}
	return r
}
