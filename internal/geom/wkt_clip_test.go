package geom

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWKTPointRoundTrip(t *testing.T) {
	p := Pt(-118.2437, 34.0522)
	s := WKTPoint(p)
	if !strings.HasPrefix(s, "POINT (") {
		t.Fatalf("WKT = %q", s)
	}
	back, err := ParseWKTPoint(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip = %v", back)
	}
}

func TestWKTPolygonRoundTrip(t *testing.T) {
	poly := NewPolygon(
		NewRing(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)),
		NewRing(Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6)),
	)
	s := WKTPolygon(poly)
	back, err := ParseWKTPolygon(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Holes) != 1 {
		t.Fatalf("holes = %d", len(back.Holes))
	}
	if back.Area() != poly.Area() {
		t.Errorf("area %v != %v", back.Area(), poly.Area())
	}
	if len(back.Exterior) != len(poly.Exterior) {
		t.Errorf("closing vertex not stripped: %d vertices", len(back.Exterior))
	}
}

func TestWKTMultiPolygonRoundTrip(t *testing.T) {
	m := MultiPolygon{
		NewPolygon(NewRing(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))),
		NewPolygon(NewRing(Pt(5, 5), Pt(8, 5), Pt(8, 8), Pt(5, 8)),
			NewRing(Pt(6, 6), Pt(7, 6), Pt(7, 7), Pt(6, 7))),
	}
	back, err := ParseWKTMultiPolygon(WKTMultiPolygon(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("members = %d", len(back))
	}
	if math.Abs(back.Area()-m.Area()) > 1e-12 {
		t.Errorf("area %v != %v", back.Area(), m.Area())
	}
	// Empty round trip.
	if got := WKTMultiPolygon(nil); got != "MULTIPOLYGON EMPTY" {
		t.Errorf("empty = %q", got)
	}
	if back, err := ParseWKTMultiPolygon("MULTIPOLYGON EMPTY"); err != nil || back != nil {
		t.Errorf("parse empty = %v, %v", back, err)
	}
}

func TestWKTCaseInsensitive(t *testing.T) {
	if _, err := ParseWKTPoint("point (1 2)"); err != nil {
		t.Errorf("lowercase tag rejected: %v", err)
	}
}

func TestWKTErrors(t *testing.T) {
	cases := []string{
		"", "POINT", "POINT (1)", "POINT (a b)", "LINESTRING (0 0, 1 1)",
		"POLYGON (0 0, 1 1)", "POLYGON ((0 0, 1 1)", "POLYGON ()",
		"MULTIPOLYGON (0 0)",
	}
	for _, c := range cases {
		_, e1 := ParseWKTPoint(c)
		_, e2 := ParseWKTPolygon(c)
		_, e3 := ParseWKTMultiPolygon(c)
		if e1 == nil && e2 == nil && e3 == nil {
			t.Errorf("input %q parsed as something", c)
		}
	}
}

func TestClipRingFullyInside(t *testing.T) {
	r := NewRing(Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4))
	got := ClipRingToBBox(r, NewBBox(Pt(0, 0), Pt(10, 10)))
	if got.Area() != r.Area() {
		t.Errorf("inside ring should be unchanged: %v", got)
	}
}

func TestClipRingFullyOutside(t *testing.T) {
	r := NewRing(Pt(20, 20), Pt(24, 20), Pt(24, 24), Pt(20, 24))
	if got := ClipRingToBBox(r, NewBBox(Pt(0, 0), Pt(10, 10))); got != nil {
		t.Errorf("outside ring should clip to nil, got %v", got)
	}
}

func TestClipRingPartial(t *testing.T) {
	// Square straddling the right edge: half survives.
	r := NewRing(Pt(8, 2), Pt(12, 2), Pt(12, 6), Pt(8, 6))
	got := ClipRingToBBox(r, NewBBox(Pt(0, 0), Pt(10, 10)))
	if got == nil {
		t.Fatal("partial ring vanished")
	}
	if math.Abs(got.Area()-8) > 1e-9 {
		t.Errorf("clipped area = %v, want 8", got.Area())
	}
	bb := got.BBox()
	if bb.MaxX > 10+1e-12 {
		t.Errorf("clip leaked past boundary: %v", bb)
	}
}

func TestClipRingCorner(t *testing.T) {
	// Triangle overlapping the box corner.
	r := NewRing(Pt(8, 8), Pt(14, 8), Pt(8, 14))
	got := ClipRingToBBox(r, NewBBox(Pt(0, 0), Pt(10, 10)))
	if got == nil {
		t.Fatal("corner ring vanished")
	}
	for _, p := range got {
		if p.X > 10+1e-9 || p.Y > 10+1e-9 {
			t.Fatalf("vertex %v outside box", p)
		}
	}
}

func TestClipPolygonWithHole(t *testing.T) {
	poly := NewPolygon(
		NewRing(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)),
		NewRing(Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6)),
	)
	// Window covering the left half including half the hole.
	got, ok := ClipPolygonToBBox(poly, NewBBox(Pt(0, 0), Pt(5, 10)))
	if !ok {
		t.Fatal("clip dropped polygon")
	}
	want := 50.0 - 2.0 // half outer minus half hole
	if math.Abs(got.Area()-want) > 1e-9 {
		t.Errorf("clipped area = %v, want %v", got.Area(), want)
	}
	// Window missing the hole entirely.
	got, ok = ClipPolygonToBBox(poly, NewBBox(Pt(0, 0), Pt(3, 3)))
	if !ok || len(got.Holes) != 0 {
		t.Errorf("hole should vanish: %+v ok=%v", got, ok)
	}
}

func TestClipMultiPolygon(t *testing.T) {
	m := MultiPolygon{
		NewPolygon(NewRing(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))),
		NewPolygon(NewRing(Pt(50, 50), Pt(52, 50), Pt(52, 52), Pt(50, 52))),
	}
	got := ClipMultiPolygonToBBox(m, NewBBox(Pt(-1, -1), Pt(10, 10)))
	if len(got) != 1 {
		t.Fatalf("members = %d, want 1", len(got))
	}
}

func TestClipAreaNeverGrows(t *testing.T) {
	box := NewBBox(Pt(-5, -5), Pt(5, 5))
	f := func(seed uint8) bool {
		// Random convex-ish ring from a regular polygon, shifted.
		c := Pt(float64(seed%20)-10, float64(seed%13)-6)
		r := RegularRing(c, 1+float64(seed%7), 12)
		clipped := ClipRingToBBox(r, box)
		if clipped == nil {
			return true
		}
		return clipped.Area() <= r.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
