package geom

import "math"

// Prepared geometries: containment-optimized forms of Ring, Polygon and
// MultiPolygon that are built once and then answer point-in-polygon
// queries in roughly O(edges whose y-span crosses the query point)
// instead of O(all edges). Every overlay analysis in the study — the
// Table 1 historical join, the §3.4 validation, the §3.8 fine extension
// and the PSPS outage simulation — reduces to millions of containment
// tests against a few hundred fire perimeters, so the one-time
// preparation cost (linear in the edge count) is repaid after a handful
// of queries per geometry.
//
// A prepared geometry answers exactly like its naive counterpart: the
// crossing test uses the multiply form of the same even-odd ray cast,
// which is algebraically identical to Ring.ContainsPoint's division form
// and bit-identical on the rectilinear perimeters the fire tracer emits
// (axis-aligned edges make both forms exact). Points within a few ulps
// of a boundary edge may differ on arbitrary diagonal edges, the same
// regime where ContainsPoint itself documents boundary behavior as
// unspecified.
//
// Preparation is a pure read of the source geometry; the prepared forms
// are immutable afterwards and safe for concurrent use by any number of
// goroutines.

// prepEdge is one non-horizontal boundary edge. Endpoints are stored
// verbatim (not as deltas) so the crossing test reproduces the naive
// arithmetic exactly on axis-aligned edges.
type prepEdge struct {
	ax, ay float64
	bx, by float64
}

// crosses applies the even-odd crossing test for the horizontal ray from
// (x, y) to +inf against the edge, using the multiply form: p.X < xCross
// with xCross = (bx-ax)*(y-ay)/(by-ay) + ax, cross-multiplied by (by-ay)
// so no division is performed.
func (e *prepEdge) crosses(x, y float64) bool {
	if (e.ay > y) == (e.by > y) {
		return false
	}
	lhs := (x - e.ax) * (e.by - e.ay)
	rhs := (e.bx - e.ax) * (y - e.ay)
	if e.by > e.ay {
		return lhs < rhs
	}
	return lhs > rhs
}

// maxBands bounds the scanline index size; beyond ~one band per two
// edges the extra bands only duplicate tall edges without shrinking the
// per-query candidate set.
const maxBands = 512

// smallRingEdges is the banding threshold: at or below this edge count a
// linear scan is as fast as a banded lookup, so the index (and its two
// allocations) is skipped. Fire perimeters fragment into many small
// rings, making this the hot preparation path.
const smallRingEdges = 24

// PreparedRing is a Ring preprocessed for fast containment: bounding-box
// fast-reject, an interior-box fast-accept, and edges bucketed into
// y-interval bands so a query touches only the edges whose y-span can
// cross its scanline.
type PreparedRing struct {
	bbox     BBox
	interior BBox // fully inside the ring; empty when none was found
	edges    []prepEdge
	// CSR layout: bandIdx[bandOff[b]:bandOff[b+1]] lists the edges whose
	// y-span intersects band b.
	bandOff  []int32
	bandIdx  []int32
	invBandH float64
	nBands   int
}

// PrepareRing builds the prepared form of r. An invalid ring (fewer than
// three vertices) prepares to a form that contains nothing, matching
// Ring.ContainsPoint.
func PrepareRing(r Ring) *PreparedRing {
	p := &PreparedRing{}
	prepareRingInto(p, r, nil)
	return p
}

// countEdges returns the number of non-horizontal edges of r.
func countEdges(r Ring) int {
	if !r.Valid() {
		return 0
	}
	n, c := len(r), 0
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		if r[j].Y != r[i].Y { //fivealarms:allow(floateq) exact horizontal-edge test, the same predicate the crossing rule uses
			c++
		}
	}
	return c
}

// prepareRingInto fills p in place, appending its edges to pool and
// returning the extended pool. Aggregate geometries pre-size one pool
// for all their rings (see PrepareMultiPolygon), so preparation costs
// one edge allocation per geometry instead of one per ring; a nil pool
// allocates per ring. Shared pools must have capacity for every edge up
// front — p.edges is a capacity-clamped sub-slice, which later appends
// must not displace.
func prepareRingInto(p *PreparedRing, r Ring, pool []prepEdge) []prepEdge {
	p.bbox = EmptyBBox()
	p.interior = EmptyBBox()
	if !r.Valid() {
		return pool
	}
	p.bbox = r.BBox()

	// Horizontal edges can never satisfy the crossing condition
	// (ay > y) != (by > y); drop them at build time.
	n := len(r)
	if pool == nil {
		pool = make([]prepEdge, 0, n)
	}
	start := len(pool)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := r[j], r[i]
		if a.Y == b.Y { //fivealarms:allow(floateq) exact horizontal-edge drop; (ay > y) != (by > y) can never hold for these
			continue
		}
		pool = append(pool, prepEdge{ax: a.X, ay: a.Y, bx: b.X, by: b.Y})
	}
	p.edges = pool[start:len(pool):len(pool)]

	if len(p.edges) > smallRingEdges {
		p.buildBands()
	}
	p.interior = interiorBox(r, p.bbox)
	return pool
}

// edgeSpan returns the band range covered by edge i.
func (p *PreparedRing) edgeSpan(i int) (int32, int32) {
	e := &p.edges[i]
	lo, hi := e.ay, e.by
	if lo > hi {
		lo, hi = hi, lo
	}
	return p.bandOf(lo), p.bandOf(hi)
}

// buildBands buckets the edges into y bands (two-pass counting sort into
// a CSR layout, no per-band slice headers). The fill pass advances
// bandOff in place and restores it by a shift afterwards, so the only
// allocations are the two CSR arrays themselves.
func (p *PreparedRing) buildBands() {
	height := p.bbox.MaxY - p.bbox.MinY
	p.nBands = len(p.edges) / 2
	if p.nBands < 1 {
		p.nBands = 1
	}
	if p.nBands > maxBands {
		p.nBands = maxBands
	}
	if !(height > 0) {
		p.nBands = 1
	}
	if p.nBands > 1 {
		p.invBandH = float64(p.nBands) / height
		if !(p.invBandH > 0) || math.IsInf(p.invBandH, 1) {
			// Degenerate height: band arithmetic would overflow.
			p.nBands = 1
			p.invBandH = 0
		}
	}

	p.bandOff = make([]int32, p.nBands+1)
	for i := range p.edges {
		b0, b1 := p.edgeSpan(i)
		for b := b0; b <= b1; b++ {
			p.bandOff[b+1]++
		}
	}
	for b := 0; b < p.nBands; b++ {
		p.bandOff[b+1] += p.bandOff[b]
	}
	p.bandIdx = make([]int32, p.bandOff[p.nBands])
	for i := range p.edges {
		b0, b1 := p.edgeSpan(i)
		for b := b0; b <= b1; b++ {
			p.bandIdx[p.bandOff[b]] = int32(i)
			p.bandOff[b]++
		}
	}
	// Undo the cursor advance: bandOff[b] now holds the old bandOff[b+1].
	for b := p.nBands; b > 0; b-- {
		p.bandOff[b] = p.bandOff[b-1]
	}
	p.bandOff[0] = 0
}

// bandOf maps a y coordinate inside the bbox to its band index. The
// mapping is weakly monotone in y, so an edge assigned to bands
// [bandOf(yMin), bandOf(yMax)] is guaranteed to appear in the band of
// every query scanline its span can cross.
func (p *PreparedRing) bandOf(y float64) int32 {
	if p.nBands == 1 {
		return 0
	}
	b := int32((y - p.bbox.MinY) * p.invBandH)
	if b < 0 {
		return 0
	}
	if b >= int32(p.nBands) {
		return int32(p.nBands) - 1
	}
	return b
}

// BBox returns the ring's bounding box.
func (p *PreparedRing) BBox() BBox { return p.bbox }

// NumEdges returns the number of indexed (non-horizontal) edges.
func (p *PreparedRing) NumEdges() int { return len(p.edges) }

// Contains reports whether pt lies strictly inside the ring, with the
// same even-odd semantics as Ring.ContainsPoint.
func (p *PreparedRing) Contains(pt Point) bool {
	if pt.X < p.bbox.MinX || pt.X > p.bbox.MaxX || pt.Y < p.bbox.MinY || pt.Y > p.bbox.MaxY {
		return false
	}
	if pt.X > p.interior.MinX && pt.X < p.interior.MaxX && pt.Y > p.interior.MinY && pt.Y < p.interior.MaxY {
		return true
	}
	inside := false
	if p.bandIdx == nil {
		// Small ring: no index, scan every edge.
		for i := range p.edges {
			if p.edges[i].crosses(pt.X, pt.Y) {
				inside = !inside
			}
		}
		return inside
	}
	b := p.bandOf(pt.Y)
	for _, ei := range p.bandIdx[p.bandOff[b]:p.bandOff[b+1]] {
		if p.edges[ei].crosses(pt.X, pt.Y) {
			inside = !inside
		}
	}
	return inside
}

// ContainsPoints answers containment for every point in pts, writing
// into out (reused when its capacity suffices, so steady-state batch
// queries allocate nothing) and returning it.
func (p *PreparedRing) ContainsPoints(pts []Point, out []bool) []bool {
	out = boolScratch(out, len(pts))
	for i, pt := range pts {
		out[i] = p.Contains(pt)
	}
	return out
}

// boolScratch returns a length-n bool slice, reusing buf's backing array
// when possible.
func boolScratch(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]bool, n)
}

// interiorBox searches for an axis-aligned box that lies entirely inside
// the ring: its center is contained and no boundary edge intersects it.
// Points inside the box are then accepted without any edge tests. The
// search tries a few shrinking candidates around the centroid and bbox
// center; failure returns an empty box (fast-accept disabled), never an
// unsound one.
func interiorBox(r Ring, bbox BBox) BBox {
	if bbox.IsEmpty() {
		return EmptyBBox()
	}
	centers := [2]Point{r.Centroid(), bbox.Center()}
	for _, scale := range [...]float64{0.35, 0.2, 0.1, 0.05} {
		hw := bbox.Width() * scale
		hh := bbox.Height() * scale
		if hw <= 0 || hh <= 0 {
			break
		}
		for _, c := range centers {
			box := BBox{MinX: c.X - hw, MinY: c.Y - hh, MaxX: c.X + hw, MaxY: c.Y + hh}
			if !r.ContainsPoint(c) {
				continue
			}
			clear := true
			n := len(r)
			for i, j := 0, n-1; i < n; j, i = i, i+1 {
				if segmentIntersectsBBox(r[j], r[i], box) {
					clear = false
					break
				}
			}
			if clear {
				return box
			}
		}
	}
	return EmptyBBox()
}

// segmentIntersectsBBox reports whether segment ab intersects box
// (Liang-Barsky parametric clipping).
func segmentIntersectsBBox(a, b Point, box BBox) bool {
	if box.ContainsPoint(a) || box.ContainsPoint(b) {
		return true
	}
	dx := b.X - a.X
	dy := b.Y - a.Y
	t0, t1 := 0.0, 1.0
	// clip narrows [t0, t1] to the feasible range of p*t <= q.
	clip := func(p, q float64) bool {
		if p == 0 { //fivealarms:allow(floateq) Liang-Barsky axis-parallel case; guards the division by p
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if clip(-dx, a.X-box.MinX) && clip(dx, box.MaxX-a.X) &&
		clip(-dy, a.Y-box.MinY) && clip(dy, box.MaxY-a.Y) {
		return t0 <= t1
	}
	return false
}

// PreparedPolygon is a Polygon preprocessed for fast containment: a
// prepared exterior, prepared holes, and an interior box known to avoid
// every hole. Rings are embedded by value, so preparing a polygon costs
// one allocation per ring (its edge array) plus at most a holes slice.
type PreparedPolygon struct {
	exterior PreparedRing
	holes    []PreparedRing
	// interior fast-accepts points without consulting the holes; it is
	// the exterior's interior box when no hole's bbox touches it, empty
	// otherwise.
	interior BBox
}

// PreparePolygon builds the prepared form of pg.
func PreparePolygon(pg Polygon) *PreparedPolygon {
	p := &PreparedPolygon{}
	preparePolygonInto(p, pg, nil)
	return p
}

// preparePolygonInto fills p in place (see prepareRingInto).
func preparePolygonInto(p *PreparedPolygon, pg Polygon, pool []prepEdge) []prepEdge {
	pool = prepareRingInto(&p.exterior, pg.Exterior, pool)
	p.interior = p.exterior.interior
	if len(pg.Holes) > 0 {
		p.holes = make([]PreparedRing, len(pg.Holes))
		for i, h := range pg.Holes {
			pool = prepareRingInto(&p.holes[i], h, pool)
			if !p.interior.IsEmpty() && p.interior.Intersects(p.holes[i].bbox) {
				p.interior = EmptyBBox()
			}
		}
	}
	return pool
}

// BBox returns the exterior bounding box.
func (p *PreparedPolygon) BBox() BBox { return p.exterior.bbox }

// Contains reports whether pt lies inside the polygon (inside the
// exterior, outside every hole), matching Polygon.ContainsPoint.
func (p *PreparedPolygon) Contains(pt Point) bool {
	if pt.X > p.interior.MinX && pt.X < p.interior.MaxX && pt.Y > p.interior.MinY && pt.Y < p.interior.MaxY {
		return true
	}
	if !p.exterior.Contains(pt) {
		return false
	}
	for i := range p.holes {
		if p.holes[i].Contains(pt) {
			return false
		}
	}
	return true
}

// ContainsPoints is the batch form of Contains; out is reused when its
// capacity suffices.
func (p *PreparedPolygon) ContainsPoints(pts []Point, out []bool) []bool {
	out = boolScratch(out, len(pts))
	for i, pt := range pts {
		out[i] = p.Contains(pt)
	}
	return out
}

// PreparedMultiPolygon is a MultiPolygon preprocessed for fast
// containment, the form wildfire perimeters are queried in. Members are
// embedded by value: a perimeter of k single-ring polygons prepares with
// k+2 allocations total.
type PreparedMultiPolygon struct {
	bbox  BBox
	polys []PreparedPolygon
}

// PrepareMultiPolygon builds the prepared form of m.
func PrepareMultiPolygon(m MultiPolygon) *PreparedMultiPolygon {
	p := &PreparedMultiPolygon{bbox: m.BBox(), polys: make([]PreparedPolygon, len(m))}
	total := 0
	for i := range m {
		total += countEdges(m[i].Exterior)
		for _, h := range m[i].Holes {
			total += countEdges(h)
		}
	}
	pool := make([]prepEdge, 0, total)
	for i := range m {
		pool = preparePolygonInto(&p.polys[i], m[i], pool)
	}
	return p
}

// BBox returns the bounding box of all member polygons (identical to
// MultiPolygon.BBox of the source geometry).
func (p *PreparedMultiPolygon) BBox() BBox { return p.bbox }

// Contains reports whether pt lies inside any member polygon, matching
// MultiPolygon.ContainsPoint.
func (p *PreparedMultiPolygon) Contains(pt Point) bool {
	if p.bbox.IsEmpty() || pt.X < p.bbox.MinX || pt.X > p.bbox.MaxX || pt.Y < p.bbox.MinY || pt.Y > p.bbox.MaxY {
		return false
	}
	for i := range p.polys {
		if p.polys[i].Contains(pt) {
			return true
		}
	}
	return false
}

// ContainsPoints is the batch form of Contains; out is reused when its
// capacity suffices, so steady-state batch queries allocate nothing.
func (p *PreparedMultiPolygon) ContainsPoints(pts []Point, out []bool) []bool {
	out = boolScratch(out, len(pts))
	for i, pt := range pts {
		out[i] = p.Contains(pt)
	}
	return out
}
