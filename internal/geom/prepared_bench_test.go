package geom

import (
	"math/rand"
	"testing"
)

// BenchmarkPreparedContains compares the naive ray-cast against the
// prepared (banded) point-in-polygon on a 200-vertex ring, scalar and
// batch. The committed BENCH_geom.json baseline is produced by
// `make bench-geom`.
func BenchmarkPreparedContains(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	ring := randomRing(rng, Pt(0, 0), 200, false)
	prep := PrepareRing(ring)
	pts := make([]Point, 1024)
	bb := ring.BBox().Buffer(1)
	for i := range pts {
		pts[i] = Point{bb.MinX + rng.Float64()*bb.Width(), bb.MinY + rng.Float64()*bb.Height()}
	}

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if ring.ContainsPoint(pts[i&1023]) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if prep.Contains(pts[i&1023]) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []bool
		for i := 0; i < b.N; i++ {
			scratch = prep.ContainsPoints(pts, scratch)
		}
		_ = scratch
	})
	b.Run("prepare-cost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = PrepareRing(ring)
		}
	})
}
