package geom

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrWKT is wrapped by all WKT parse errors.
var ErrWKT = errors.New("geom: invalid WKT")

// WKT serializes geometries in Well-Known Text, the interchange format
// GIS databases and the original study's ArcGIS tooling speak.

// WKTPoint formats a point.
func WKTPoint(p Point) string {
	return fmt.Sprintf("POINT (%s %s)", fnum(p.X), fnum(p.Y))
}

// WKTPolygon formats a polygon (exterior ring first, then holes). Rings
// repeat their first vertex per the WKT convention.
func WKTPolygon(p Polygon) string {
	var b strings.Builder
	b.WriteString("POLYGON ")
	writePolygonBody(&b, p)
	return b.String()
}

// WKTMultiPolygon formats a multipolygon.
func WKTMultiPolygon(m MultiPolygon) string {
	if len(m) == 0 {
		return "MULTIPOLYGON EMPTY"
	}
	var b strings.Builder
	b.WriteString("MULTIPOLYGON (")
	for i, p := range m {
		if i > 0 {
			b.WriteString(", ")
		}
		writePolygonBody(&b, p)
	}
	b.WriteString(")")
	return b.String()
}

func writePolygonBody(b *strings.Builder, p Polygon) {
	b.WriteString("(")
	writeRing(b, p.Exterior)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeRing(b, h)
	}
	b.WriteString(")")
}

func writeRing(b *strings.Builder, r Ring) {
	b.WriteString("(")
	for i, pt := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(fnum(pt.X))
		b.WriteString(" ")
		b.WriteString(fnum(pt.Y))
	}
	if len(r) > 0 {
		b.WriteString(", ")
		b.WriteString(fnum(r[0].X))
		b.WriteString(" ")
		b.WriteString(fnum(r[0].Y))
	}
	b.WriteString(")")
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseWKTPoint parses "POINT (x y)".
func ParseWKTPoint(s string) (Point, error) {
	body, err := wktBody(s, "POINT")
	if err != nil {
		return Point{}, err
	}
	fields := strings.Fields(body)
	if len(fields) != 2 {
		return Point{}, fmt.Errorf("%w: POINT needs two coordinates, got %q", ErrWKT, body)
	}
	x, err1 := strconv.ParseFloat(fields[0], 64)
	y, err2 := strconv.ParseFloat(fields[1], 64)
	if err1 != nil || err2 != nil {
		return Point{}, fmt.Errorf("%w: bad POINT coordinates %q", ErrWKT, body)
	}
	return Point{X: x, Y: y}, nil
}

// ParseWKTPolygon parses "POLYGON ((...), (...))".
func ParseWKTPolygon(s string) (Polygon, error) {
	body, err := wktBody(s, "POLYGON")
	if err != nil {
		return Polygon{}, err
	}
	return parsePolygonBody(body)
}

// ParseWKTMultiPolygon parses "MULTIPOLYGON (((...)), ((...)))" and
// "MULTIPOLYGON EMPTY".
func ParseWKTMultiPolygon(s string) (MultiPolygon, error) {
	trimmed := strings.TrimSpace(s)
	upper := strings.ToUpper(trimmed)
	if upper == "MULTIPOLYGON EMPTY" {
		return nil, nil
	}
	body, err := wktBody(s, "MULTIPOLYGON")
	if err != nil {
		return nil, err
	}
	parts, err := splitTopLevel(body)
	if err != nil {
		return nil, err
	}
	out := make(MultiPolygon, 0, len(parts))
	for _, part := range parts {
		inner := strings.TrimSpace(part)
		if !strings.HasPrefix(inner, "(") || !strings.HasSuffix(inner, ")") {
			return nil, fmt.Errorf("%w: polygon body %q", ErrWKT, part)
		}
		poly, err := parsePolygonBody(inner[1 : len(inner)-1])
		if err != nil {
			return nil, err
		}
		out = append(out, poly)
	}
	return out, nil
}

// wktBody strips "TAG ( ... )" returning the inner text.
func wktBody(s, tag string) (string, error) {
	t := strings.TrimSpace(s)
	upper := strings.ToUpper(t)
	if !strings.HasPrefix(upper, tag) {
		return "", fmt.Errorf("%w: expected %s, got %q", ErrWKT, tag, truncate(s))
	}
	rest := strings.TrimSpace(t[len(tag):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("%w: %s body not parenthesized in %q", ErrWKT, tag, truncate(s))
	}
	return rest[1 : len(rest)-1], nil
}

// parsePolygonBody parses "(ring), (ring)...".
func parsePolygonBody(body string) (Polygon, error) {
	parts, err := splitTopLevel(body)
	if err != nil {
		return Polygon{}, err
	}
	if len(parts) == 0 {
		return Polygon{}, fmt.Errorf("%w: polygon with no rings", ErrWKT)
	}
	rings := make([]Ring, 0, len(parts))
	for _, part := range parts {
		inner := strings.TrimSpace(part)
		if !strings.HasPrefix(inner, "(") || !strings.HasSuffix(inner, ")") {
			return Polygon{}, fmt.Errorf("%w: ring %q", ErrWKT, truncate(part))
		}
		r, err := parseRing(inner[1 : len(inner)-1])
		if err != nil {
			return Polygon{}, err
		}
		rings = append(rings, r)
	}
	return Polygon{Exterior: rings[0], Holes: rings[1:]}, nil
}

func parseRing(body string) (Ring, error) {
	coords := strings.Split(body, ",")
	pts := make([]Point, 0, len(coords))
	for _, c := range coords {
		fields := strings.Fields(strings.TrimSpace(c))
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: coordinate %q", ErrWKT, truncate(c))
		}
		x, err1 := strconv.ParseFloat(fields[0], 64)
		y, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: coordinate %q", ErrWKT, truncate(c))
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return NewRing(pts...), nil
}

// splitTopLevel splits on commas at parenthesis depth zero.
func splitTopLevel(s string) ([]string, error) {
	var parts []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("%w: unbalanced parentheses", ErrWKT)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("%w: unbalanced parentheses", ErrWKT)
	}
	if strings.TrimSpace(s[start:]) != "" {
		parts = append(parts, s[start:])
	}
	return parts, nil
}

func truncate(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
