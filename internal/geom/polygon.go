package geom

// Polygon is a planar polygon with one exterior ring and zero or more
// interior rings (holes). Hole rings must lie inside the exterior ring; the
// package does not verify this invariant, matching the permissiveness of
// typical GIS formats.
type Polygon struct {
	Exterior Ring
	Holes    []Ring
}

// NewPolygon builds a polygon from an exterior ring and optional holes.
func NewPolygon(exterior Ring, holes ...Ring) Polygon {
	return Polygon{Exterior: exterior, Holes: holes}
}

// Valid reports whether the polygon has a usable exterior ring.
func (p Polygon) Valid() bool { return p.Exterior.Valid() }

// BBox returns the bounding box of the exterior ring.
func (p Polygon) BBox() BBox { return p.Exterior.BBox() }

// Area returns the planar area of the polygon: exterior area minus the area
// of all holes.
func (p Polygon) Area() float64 {
	a := p.Exterior.Area()
	for _, h := range p.Holes {
		a -= h.Area()
	}
	return a
}

// Centroid returns the area-weighted centroid accounting for holes.
func (p Polygon) Centroid() Point {
	aExt := p.Exterior.Area()
	if aExt == 0 { //fivealarms:allow(floateq) degenerate-polygon guard before dividing by the area
		return p.Exterior.Centroid()
	}
	c := p.Exterior.Centroid().Scale(aExt)
	total := aExt
	for _, h := range p.Holes {
		ha := h.Area()
		c = c.Sub(h.Centroid().Scale(ha))
		total -= ha
	}
	if total == 0 { //fivealarms:allow(floateq) degenerate-polygon guard before dividing by the area
		return p.Exterior.Centroid()
	}
	return c.Scale(1 / total)
}

// ContainsPoint reports whether pt lies inside the polygon (inside the
// exterior and outside every hole).
func (p Polygon) ContainsPoint(pt Point) bool {
	if !p.Exterior.ContainsPoint(pt) {
		return false
	}
	for _, h := range p.Holes {
		if h.ContainsPoint(pt) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the polygon.
func (p Polygon) Clone() Polygon {
	out := Polygon{Exterior: p.Exterior.Clone()}
	if len(p.Holes) > 0 {
		out.Holes = make([]Ring, len(p.Holes))
		for i, h := range p.Holes {
			out.Holes[i] = h.Clone()
		}
	}
	return out
}

// MultiPolygon is a collection of polygons treated as one geometry, the
// shape wildfire perimeters commonly take (a fire can burn in several
// disjoint patches).
type MultiPolygon []Polygon

// BBox returns the bounding box of all member polygons.
func (m MultiPolygon) BBox() BBox {
	b := EmptyBBox()
	for _, p := range m {
		b = b.ExtendBBox(p.BBox())
	}
	return b
}

// Area returns the summed area of all member polygons.
func (m MultiPolygon) Area() float64 {
	var a float64
	for _, p := range m {
		a += p.Area()
	}
	return a
}

// ContainsPoint reports whether pt lies inside any member polygon.
func (m MultiPolygon) ContainsPoint(pt Point) bool {
	for _, p := range m {
		if p.ContainsPoint(pt) {
			return true
		}
	}
	return false
}

// Centroid returns the area-weighted centroid of the collection.
func (m MultiPolygon) Centroid() Point {
	var c Point
	var total float64
	for _, p := range m {
		a := p.Area()
		c = c.Add(p.Centroid().Scale(a))
		total += a
	}
	if total == 0 { //fivealarms:allow(floateq) degenerate-multipolygon guard before dividing by the area
		if len(m) > 0 {
			return m[0].Centroid()
		}
		return Point{}
	}
	return c.Scale(1 / total)
}

// Clone returns a deep copy of the multipolygon.
func (m MultiPolygon) Clone() MultiPolygon {
	out := make(MultiPolygon, len(m))
	for i, p := range m {
		out[i] = p.Clone()
	}
	return out
}
