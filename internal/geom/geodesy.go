package geom

import "math"

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// Haversine returns the great-circle distance in meters between two
// geographic points (lon/lat degrees) on the WGS84 mean sphere.
func Haversine(a, b Point) float64 {
	lat1 := Deg2Rad(a.Y)
	lat2 := Deg2Rad(b.Y)
	dLat := lat2 - lat1
	dLon := Deg2Rad(b.X - a.X)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Destination returns the geographic point reached by travelling dist meters
// from start on the initial bearing (degrees clockwise from north).
func Destination(start Point, bearingDeg, dist float64) Point {
	lat1 := Deg2Rad(start.Y)
	lon1 := Deg2Rad(start.X)
	brg := Deg2Rad(bearingDeg)
	dr := dist / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(dr) + math.Cos(lat1)*math.Sin(dr)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(dr)*math.Cos(lat1),
		math.Cos(dr)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180).
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{X: Rad2Deg(lon2), Y: Rad2Deg(lat2)}
}

// InitialBearing returns the initial great-circle bearing in degrees
// (clockwise from north, in [0, 360)) to travel from a to b.
func InitialBearing(a, b Point) float64 {
	lat1 := Deg2Rad(a.Y)
	lat2 := Deg2Rad(b.Y)
	dLon := Deg2Rad(b.X - a.X)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brg := Rad2Deg(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// MetersPerDegreeLat is the approximate meridional meter length of one
// degree of latitude on the mean sphere.
func MetersPerDegreeLat() float64 { return EarthRadiusMeters * math.Pi / 180 }

// MetersPerDegreeLon returns the meter length of one degree of longitude at
// the given latitude (degrees).
func MetersPerDegreeLon(latDeg float64) float64 {
	return EarthRadiusMeters * math.Pi / 180 * math.Cos(Deg2Rad(latDeg))
}

// GeographicBufferBBox expands a geographic bounding box by dist meters,
// accounting for longitude convergence at the box's extreme latitude. It is
// a cheap conservative pre-filter for radius queries on geographic data.
func GeographicBufferBBox(b BBox, dist float64) BBox {
	if b.IsEmpty() {
		return b
	}
	dLat := dist / MetersPerDegreeLat()
	extremeLat := math.Max(math.Abs(b.MinY), math.Abs(b.MaxY))
	mLon := MetersPerDegreeLon(extremeLat)
	dLon := dist / math.Max(mLon, 1) // guard poles
	return BBox{MinX: b.MinX - dLon, MinY: b.MinY - dLat, MaxX: b.MaxX + dLon, MaxY: b.MaxY + dLat}
}

// GeographicRingArea returns the spherical area in square meters of a ring
// whose vertices are geographic (lon/lat degree) coordinates, using the
// spherical excess formula (L'Huilier via the signed spherical polygon area).
// The result is unsigned.
func GeographicRingArea(r Ring) float64 {
	n := len(r)
	if n < 3 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		p1 := r[i]
		p2 := r[(i+1)%n]
		lon1 := Deg2Rad(p1.X)
		lon2 := Deg2Rad(p2.X)
		lat1 := Deg2Rad(p1.Y)
		lat2 := Deg2Rad(p2.Y)
		total += (lon2 - lon1) * (2 + math.Sin(lat1) + math.Sin(lat2))
	}
	area := math.Abs(total) * EarthRadiusMeters * EarthRadiusMeters / 2
	return area
}

// GeographicPolygonArea returns the spherical area in square meters of a
// polygon with geographic coordinates, subtracting hole areas.
func GeographicPolygonArea(p Polygon) float64 {
	a := GeographicRingArea(p.Exterior)
	for _, h := range p.Holes {
		a -= GeographicRingArea(h)
	}
	if a < 0 {
		return 0
	}
	return a
}

// GeographicMultiPolygonArea returns the summed spherical area in square
// meters of all member polygons.
func GeographicMultiPolygonArea(m MultiPolygon) float64 {
	var a float64
	for _, p := range m {
		a += GeographicPolygonArea(p)
	}
	return a
}

// Acres converts an area in square meters to acres.
func Acres(squareMeters float64) float64 { return squareMeters / SquareMetersPerAcre }
