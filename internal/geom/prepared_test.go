package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomRing builds a star-shaped simple ring of n vertices around c:
// vertices at increasing angles with random radii never self-intersect.
// quantize snaps Y coordinates to a coarse lattice, forcing horizontal
// (and coincident-vertex-adjacent) edges, the degenerate shapes the
// scanline index must handle.
func randomRing(rng *rand.Rand, c Point, n int, quantize bool) Ring {
	r := make(Ring, 0, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		rad := 1 + 9*rng.Float64()
		p := Point{c.X + rad*math.Cos(a), c.Y + rad*math.Sin(a)}
		if quantize {
			p.Y = math.Round(p.Y)
		}
		r = append(r, p)
	}
	return r
}

// TestPreparedRingMatchesNaive is the property test of the PR: prepared
// containment must agree with Ring.ContainsPoint on random rings —
// smooth and quantized (horizontal-edge) alike — for points sampled
// inside, around and far outside the bbox.
func TestPreparedRingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(60)
		ring := randomRing(rng, Point{rng.Float64() * 100, rng.Float64() * 100}, n, trial%2 == 0)
		prep := PrepareRing(ring)
		bb := ring.BBox().Buffer(2)
		for q := 0; q < 200; q++ {
			p := Point{
				bb.MinX + rng.Float64()*bb.Width(),
				bb.MinY + rng.Float64()*bb.Height(),
			}
			if got, want := prep.Contains(p), ring.ContainsPoint(p); got != want {
				t.Fatalf("trial %d: prepared.Contains(%v) = %v, naive = %v (ring %v)", trial, p, got, want, ring)
			}
		}
		// Far-outside points exercise the bbox reject.
		if prep.Contains(Point{bb.MaxX + 1000, bb.MaxY + 1000}) {
			t.Fatalf("trial %d: contains far-outside point", trial)
		}
	}
}

// TestPreparedRingDegenerate covers rings the naive predicate rejects.
func TestPreparedRingDegenerate(t *testing.T) {
	cases := []Ring{
		nil,
		{},
		{Pt(0, 0)},
		{Pt(0, 0), Pt(1, 1)},
		{Pt(0, 0), Pt(1, 0), Pt(2, 0)}, // flat: zero height
		{Pt(0, 0), Pt(0, 1), Pt(0, 2)}, // flat: zero width
		{Pt(1, 1), Pt(1, 1), Pt(1, 1)}, // all coincident
		{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)},
	}
	probes := []Point{{0.5, 0.5}, {2, 2}, {1, 0}, {0, 0}, {5, 5}, {-1, 2}}
	for i, r := range cases {
		prep := PrepareRing(r)
		for _, p := range probes {
			if got, want := prep.Contains(p), r.ContainsPoint(p); got != want {
				t.Errorf("case %d: Contains(%v) = %v, naive = %v", i, p, got, want)
			}
		}
	}
}

// TestPreparedPolygonHoles asserts hole semantics match
// Polygon.ContainsPoint, including a hole large enough to swallow the
// exterior's interior fast-accept box.
func TestPreparedPolygonHoles(t *testing.T) {
	outer := NewRing(Pt(0, 0), Pt(20, 0), Pt(20, 20), Pt(0, 20))
	hole := NewRing(Pt(6, 6), Pt(14, 6), Pt(14, 14), Pt(6, 14))
	pg := NewPolygon(outer, hole)
	prep := PreparePolygon(pg)
	for x := -1.0; x <= 21; x += 0.5 {
		for y := -1.0; y <= 21; y += 0.5 {
			p := Pt(x+0.25, y+0.25) // off-lattice: avoid boundary ambiguity
			if got, want := prep.Contains(p), pg.ContainsPoint(p); got != want {
				t.Fatalf("Contains(%v) = %v, naive = %v", p, got, want)
			}
		}
	}
}

// TestPreparedMultiPolygonMatchesNaive covers disjoint members and the
// collection-level bbox reject.
func TestPreparedMultiPolygonMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mp := MultiPolygon{
		NewPolygon(randomRing(rng, Pt(0, 0), 24, false)),
		NewPolygon(randomRing(rng, Pt(50, 10), 17, true)),
		NewPolygon(
			NewRing(Pt(100, 100), Pt(130, 100), Pt(130, 130), Pt(100, 130)),
			NewRing(Pt(110, 110), Pt(120, 110), Pt(120, 120), Pt(110, 120)),
		),
	}
	prep := PrepareMultiPolygon(mp)
	if got, want := prep.BBox(), mp.BBox(); got != want {
		t.Fatalf("BBox = %v, want %v", got, want)
	}
	bb := mp.BBox().Buffer(3)
	for q := 0; q < 3000; q++ {
		p := Point{bb.MinX + rng.Float64()*bb.Width(), bb.MinY + rng.Float64()*bb.Height()}
		if got, want := prep.Contains(p), mp.ContainsPoint(p); got != want {
			t.Fatalf("Contains(%v) = %v, naive = %v", p, got, want)
		}
	}
	if PrepareMultiPolygon(nil).Contains(Pt(0, 0)) {
		t.Error("empty multipolygon contains a point")
	}
}

// TestContainsPointsBatch asserts the batch API matches the scalar one
// and reuses the caller's scratch without reallocating.
func TestContainsPointsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ring := randomRing(rng, Pt(5, 5), 30, false)
	prep := PrepareRing(ring)
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 20, rng.Float64() * 20}
	}
	scratch := make([]bool, 0, len(pts))
	out := prep.ContainsPoints(pts, scratch)
	if len(out) != len(pts) {
		t.Fatalf("batch length %d, want %d", len(out), len(pts))
	}
	if &out[0] != &scratch[:1][0] {
		t.Error("batch did not reuse the caller's scratch")
	}
	for i, p := range pts {
		if out[i] != ring.ContainsPoint(p) {
			t.Fatalf("batch[%d] = %v disagrees with naive at %v", i, out[i], p)
		}
	}
	// MultiPolygon batch over the same contract.
	mprep := PrepareMultiPolygon(MultiPolygon{NewPolygon(ring)})
	mout := mprep.ContainsPoints(pts, out)
	for i := range pts {
		if mout[i] != out[i] {
			t.Fatalf("multipolygon batch diverges at %d", i)
		}
	}
}

// TestPreparedRectilinearExact pins the bit-identical guarantee the
// overlay engine relies on: on rectilinear (fire-tracer style) rings the
// multiply-form crossing test is exact, so prepared and naive agree even
// for points sharing coordinates with the edge lattice.
func TestPreparedRectilinearExact(t *testing.T) {
	// A staircase ring on a 0.5-lattice.
	ring := NewRing(
		Pt(0, 0), Pt(3, 0), Pt(3, 1.5), Pt(4.5, 1.5), Pt(4.5, 4),
		Pt(1.5, 4), Pt(1.5, 2.5), Pt(0, 2.5),
	)
	prep := PrepareRing(ring)
	for x := -0.5; x <= 5.0; x += 0.25 {
		for y := -0.5; y <= 4.5; y += 0.25 {
			p := Pt(x, y)
			if got, want := prep.Contains(p), ring.ContainsPoint(p); got != want {
				t.Fatalf("lattice point %v: prepared %v, naive %v", p, got, want)
			}
		}
	}
}
