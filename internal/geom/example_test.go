package geom_test

import (
	"fmt"

	"fivealarms/internal/geom"
)

func ExampleRing_ContainsPoint() {
	perimeter := geom.NewRing(
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
	)
	fmt.Println(perimeter.ContainsPoint(geom.Pt(5, 5)))
	fmt.Println(perimeter.ContainsPoint(geom.Pt(15, 5)))
	// Output:
	// true
	// false
}

func ExampleHaversine() {
	la := geom.Pt(-118.2437, 34.0522)
	sf := geom.Pt(-122.4194, 37.7749)
	fmt.Printf("%.0f km\n", geom.Haversine(la, sf)/1000)
	// Output:
	// 559 km
}

func ExampleWKTPolygon() {
	poly := geom.NewPolygon(geom.NewRing(
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4),
	))
	fmt.Println(geom.WKTPolygon(poly))
	// Output:
	// POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))
}

func ExampleClipRingToBBox() {
	// A square straddling the window's right edge: half survives.
	ring := geom.NewRing(geom.Pt(8, 2), geom.Pt(12, 2), geom.Pt(12, 6), geom.Pt(8, 6))
	window := geom.NewBBox(geom.Pt(0, 0), geom.Pt(10, 10))
	clipped := geom.ClipRingToBBox(ring, window)
	fmt.Printf("area %.0f of %.0f\n", clipped.Area(), ring.Area())
	// Output:
	// area 8 of 16
}

func ExamplePolyline_PointAt() {
	route := geom.Polyline{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4)}
	mid := route.PointAt(route.Length() / 2)
	fmt.Println(mid)
	// Output:
	// (4.000000, 0.000000)
}
