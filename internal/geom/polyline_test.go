package geom

import (
	"math"
	"testing"
)

func TestPolylineLength(t *testing.T) {
	l := Polyline{{0, 0}, {3, 0}, {3, 4}}
	if l.Length() != 7 {
		t.Errorf("Length = %v", l.Length())
	}
	if (Polyline{}).Length() != 0 || (Polyline{{1, 1}}).Length() != 0 {
		t.Error("degenerate lengths")
	}
}

func TestPolylinePointAt(t *testing.T) {
	l := Polyline{{0, 0}, {4, 0}, {4, 4}}
	tests := []struct {
		d    float64
		want Point
	}{
		{-1, Pt(0, 0)},
		{0, Pt(0, 0)},
		{2, Pt(2, 0)},
		{4, Pt(4, 0)},
		{6, Pt(4, 2)},
		{8, Pt(4, 4)},
		{100, Pt(4, 4)},
	}
	for _, tc := range tests {
		if got := l.PointAt(tc.d); got.DistanceTo(tc.want) > 1e-12 {
			t.Errorf("PointAt(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
	if got := (Polyline{}).PointAt(5); got != (Point{}) {
		t.Error("empty polyline PointAt")
	}
}

func TestPolylineResample(t *testing.T) {
	l := Polyline{{0, 0}, {10, 0}}
	pts := l.Resample(5)
	if len(pts) != 5 {
		t.Fatalf("resampled = %d", len(pts))
	}
	if pts[0] != l[0] || pts[4] != l[1] {
		t.Error("endpoints not retained")
	}
	if math.Abs(pts[2].X-5) > 1e-12 {
		t.Errorf("midpoint = %v", pts[2])
	}
	if got := l.Resample(1); len(got) != 1 {
		t.Error("n<2 returns start")
	}
	if (Polyline{}).Resample(3) != nil {
		t.Error("empty resample")
	}
}

func TestPolylineDistanceTo(t *testing.T) {
	l := Polyline{{0, 0}, {10, 0}}
	if d := l.DistanceTo(Pt(5, 3)); d != 3 {
		t.Errorf("DistanceTo = %v", d)
	}
	if d := l.DistanceTo(Pt(-3, 4)); d != 5 {
		t.Errorf("beyond endpoint = %v", d)
	}
	single := Polyline{{1, 1}}
	if d := single.DistanceTo(Pt(4, 5)); d != 5 {
		t.Errorf("single point = %v", d)
	}
}

func TestSimplifyLine(t *testing.T) {
	// Dense straight line simplifies to its endpoints.
	var l Polyline
	for i := 0; i <= 100; i++ {
		l = append(l, Pt(float64(i), 0.001*float64(i%2)))
	}
	s := SimplifyLine(l, 0.01)
	if len(s) > 3 {
		t.Errorf("simplified to %d points", len(s))
	}
	if s[0] != l[0] || s[len(s)-1] != l[len(l)-1] {
		t.Error("endpoints lost")
	}
	// A corner survives.
	corner := Polyline{{0, 0}, {5, 0}, {5, 5}}
	if got := SimplifyLine(corner, 0.1); len(got) != 3 {
		t.Errorf("corner simplified away: %v", got)
	}
}

func TestCrossesRing(t *testing.T) {
	sq := NewRing(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10))
	tests := []struct {
		name string
		l    Polyline
		want bool
	}{
		{"crossing through", Polyline{{-5, 5}, {15, 5}}, true},
		{"starting inside", Polyline{{5, 5}, {20, 20}}, true},
		{"entirely outside", Polyline{{-5, -5}, {-5, 20}}, false},
		{"touching corner", Polyline{{-5, -5}, {0, 0}}, true},
		{"empty", Polyline{}, false},
	}
	for _, tc := range tests {
		if got := tc.l.CrossesRing(sq); got != tc.want {
			t.Errorf("%s: CrossesRing = %v, want %v", tc.name, got, tc.want)
		}
	}
}
