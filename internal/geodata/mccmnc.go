package geodata

// MCCMNC maps a (Mobile Country Code, Mobile Network Code) pair to the
// operating provider. US networks use MCC 310-316; the large national
// carriers hold many MNCs accumulated through mergers and spectrum deals —
// exactly the resolution problem §3.5 of the paper describes. The table
// below covers the prominent 2019-era allocations plus the long tail of
// regional carriers.
type MCCMNC struct {
	MCC      int
	MNC      int
	Provider string
}

// Provider display names for the national carriers.
const (
	ProviderATT      = "AT&T"
	ProviderTMobile  = "T-Mobile"
	ProviderSprint   = "Sprint"
	ProviderVerizon  = "Verizon"
	ProviderUnknown  = "Unknown"
	ProviderOthersAg = "Others" // aggregate label used in Table 2
)

// MCCMNCTable is the embedded identifier-to-provider mapping.
var MCCMNCTable = []MCCMNC{
	// AT&T Mobility and acquisitions.
	{310, 30, ProviderATT}, {310, 70, ProviderATT}, {310, 150, ProviderATT},
	{310, 170, ProviderATT}, {310, 280, ProviderATT}, {310, 380, ProviderATT},
	{310, 410, ProviderATT}, {310, 560, ProviderATT}, {310, 680, ProviderATT},
	{310, 980, ProviderATT}, {311, 70, ProviderATT}, {311, 90, ProviderATT},
	{311, 180, ProviderATT}, {311, 190, ProviderATT}, {313, 100, ProviderATT},
	// T-Mobile USA and acquisitions (MetroPCS, SunCom...).
	{310, 160, ProviderTMobile}, {310, 200, ProviderTMobile}, {310, 210, ProviderTMobile},
	{310, 220, ProviderTMobile}, {310, 230, ProviderTMobile}, {310, 240, ProviderTMobile},
	{310, 250, ProviderTMobile}, {310, 260, ProviderTMobile}, {310, 270, ProviderTMobile},
	{310, 310, ProviderTMobile}, {310, 490, ProviderTMobile}, {310, 660, ProviderTMobile},
	{310, 800, ProviderTMobile}, {311, 660, ProviderTMobile},
	// Sprint (Nextel, Clearwire...).
	{310, 120, ProviderSprint}, {311, 490, ProviderSprint}, {311, 870, ProviderSprint},
	{311, 880, ProviderSprint}, {311, 882, ProviderSprint}, {312, 190, ProviderSprint},
	{312, 530, ProviderSprint},
	// Verizon Wireless (Alltel, many LTE-in-rural-America partners).
	{310, 4, ProviderVerizon}, {310, 10, ProviderVerizon}, {310, 12, ProviderVerizon},
	{310, 13, ProviderVerizon}, {310, 590, ProviderVerizon}, {310, 890, ProviderVerizon},
	{310, 910, ProviderVerizon}, {311, 110, ProviderVerizon}, {311, 270, ProviderVerizon},
	{311, 280, ProviderVerizon}, {311, 390, ProviderVerizon}, {311, 480, ProviderVerizon},
	// Regional and rural carriers — the "46 smaller cellular service
	// providers" the paper footnotes.
	{311, 580, "U.S. Cellular"},
	{311, 230, "C Spire"},
	{310, 100, "Plateau Wireless"},
	{310, 110, "PTI Pacifica"},
	{310, 320, "Cellular One of East Texas"},
	{310, 330, "Wireless Partners"},
	{310, 350, "Carolina West Wireless"},
	{310, 390, "Cellular One of East CV"},
	{310, 400, "iConnect"},
	{310, 430, "GCI Wireless"},
	{310, 450, "Viaero Wireless"},
	{310, 460, "NewCore Wireless"},
	{310, 540, "Oklahoma Western Telephone"},
	{310, 570, "Broadpoint"},
	{310, 600, "NewCell Cellcom"},
	{310, 620, "Nsighttel Wireless"},
	{310, 630, "Choice Wireless"},
	{310, 650, "Jasper Technologies"},
	{310, 690, "Limitless Mobile"},
	{310, 710, "Arctic Slope Telephone"},
	{310, 740, "Tracy Corporation"},
	{310, 760, "Lynch 3G Communications"},
	{310, 770, "Iowa Wireless"},
	{310, 790, "PinPoint Communications"},
	{310, 840, "Telecom North America"},
	{310, 850, "Aeris Communications"},
	{310, 860, "Five Star Wireless"},
	{310, 880, "Advantage Cellular"},
	{310, 900, "Mid-Rivers Communications"},
	{310, 920, "James Valley Wireless"},
	{310, 940, "Mingo Wireless"},
	{310, 950, "XIT Wireless"},
	{310, 970, "Globalstar USA"},
	{311, 10, "Chariton Valley"},
	{311, 20, "Missouri RSA"},
	{311, 30, "Indigo Wireless"},
	{311, 40, "Commnet Wireless"},
	{311, 50, "Thumb Cellular"},
	{311, 60, "Space Data"},
	{311, 80, "Pine Telephone"},
	{311, 100, "Nex-Tech Wireless"},
	{311, 120, "Choice Phone"},
	{311, 130, "Lightyear Alliance"},
	{311, 140, "Sprocket Wireless"},
	{311, 150, "Wilkes Cellular"},
	{311, 160, "Endless Mountains Wireless"},
	{311, 170, "PetroCom"},
	{311, 210, "Farmers Cellular"},
	{311, 240, "Cordova Wireless"},
	{311, 250, "Wave Runner"},
	{311, 310, "Leaco Rural Telephone"},
	{311, 320, "Smith Bagley Cellular One"},
	{311, 330, "Bug Tussel Wireless"},
	{311, 340, "Illinois Valley Cellular"},
	{311, 350, "Sagebrush Cellular"},
	{311, 410, "Iowa RSA"},
	{311, 430, "RSA 1 Limited Partnership"},
	{311, 440, "Bluegrass Cellular"},
	{311, 530, "NewCore Wireless LLC"},
	{311, 650, "United Wireless"},
	{311, 710, "Northeast Wireless"},
	{311, 780, "ASTCA Wireless"},
	{316, 10, "Southern Communications"},
}

// LookupProvider resolves an MCC/MNC pair to a provider name, returning
// ProviderUnknown for unrecognized codes.
func LookupProvider(mcc, mnc int) string {
	for _, e := range MCCMNCTable {
		if e.MCC == mcc && e.MNC == mnc {
			return e.Provider
		}
	}
	return ProviderUnknown
}

// MajorProviders are the four national carriers of the study period, in
// the order Table 2 of the paper lists them.
var MajorProviders = []string{ProviderATT, ProviderTMobile, ProviderSprint, ProviderVerizon}

// IsMajorProvider reports whether name is one of the four national
// carriers.
func IsMajorProvider(name string) bool {
	for _, p := range MajorProviders {
		if p == name {
			return true
		}
	}
	return false
}

// RegionalProviders returns the distinct non-major, non-unknown provider
// names in the table (the paper's "46 smaller cellular service
// providers").
func RegionalProviders() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range MCCMNCTable {
		if IsMajorProvider(e.Provider) || e.Provider == ProviderUnknown {
			continue
		}
		if !seen[e.Provider] {
			seen[e.Provider] = true
			out = append(out, e.Provider)
		}
	}
	return out
}

// CodesForProvider returns every MCC/MNC pair the table assigns to the
// provider.
func CodesForProvider(name string) []MCCMNC {
	var out []MCCMNC
	for _, e := range MCCMNCTable {
		if e.Provider == name {
			out = append(out, e)
		}
	}
	return out
}

// NationalShare is the 2019-era share of transceivers operated by each
// national carrier (plus the regional remainder), used by the transceiver
// generator. Derived from the totals in Table 2 of the paper: percent
// figures there imply fleet sizes of ~1.87M (AT&T), ~1.63M (T-Mobile),
// ~0.83M (Sprint), ~0.77M (Verizon) and ~0.39M (others) out of 5.36M.
var NationalShare = map[string]float64{
	ProviderATT:      0.349,
	ProviderTMobile:  0.304,
	ProviderSprint:   0.155,
	ProviderVerizon:  0.144,
	ProviderOthersAg: 0.048,
}

// RadioShare is the transceiver-technology mix of the study snapshot,
// derived from Table 3 of the paper (LTE dominant, then UMTS, CDMA, GSM).
var RadioShare = map[string]float64{
	"LTE":  0.530,
	"UMTS": 0.305,
	"CDMA": 0.095,
	"GSM":  0.070,
}
