// Package geodata embeds the public reference data the synthetic world is
// calibrated against: the conterminous states (locations, areas,
// populations, wildfire-hazard weights), a gazetteer of major cities, the
// US MCC/MNC-to-provider table, and the statistics the paper reports
// (used both to calibrate generators and to compare against in
// EXPERIMENTS.md).
//
// All figures are approximate public values circa 2018-2019, matching the
// study period. Geometry in this package is geographic (lon/lat degrees).
package geodata

// Region is a coarse climatic region used by the hazard generator.
type Region int

// Regions of the conterminous US.
const (
	RegionWest Region = iota
	RegionSouthwest
	RegionMountain
	RegionPlains
	RegionMidwest
	RegionSoutheast
	RegionNortheast
)

// State describes one conterminous state (plus DC).
type State struct {
	Abbrev   string  // postal abbreviation
	Name     string  // full name
	Lon, Lat float64 // approximate geographic centroid
	AreaKM2  float64 // land area
	Pop      int     // 2018 population estimate
	Counties int     // approximate number of counties
	// Hazard is the calibration weight (0..1) for the synthetic WHP:
	// the fraction of the state's wildland that trends into the
	// moderate..very-high classes. High in the west and southeast, low in
	// the farm belt and urban northeast — the spatial structure Figure 6
	// of the paper shows.
	Hazard float64
	Region Region
}

// States lists the 48 conterminous states plus the District of Columbia,
// ordered by postal abbreviation.
var States = []State{
	{"AL", "Alabama", -86.8, 32.8, 131170, 4888000, 67, 0.50, RegionSoutheast},
	{"AR", "Arkansas", -92.4, 34.9, 134770, 3010000, 75, 0.45, RegionSoutheast},
	{"AZ", "Arizona", -111.7, 34.3, 294200, 7172000, 15, 0.80, RegionSouthwest},
	{"CA", "California", -119.5, 37.2, 403500, 39560000, 58, 0.95, RegionWest},
	{"CO", "Colorado", -105.5, 39.0, 268430, 5696000, 64, 0.75, RegionMountain},
	{"CT", "Connecticut", -72.7, 41.6, 12540, 3573000, 8, 0.12, RegionNortheast},
	{"DC", "District of Columbia", -77.0, 38.9, 158, 702000, 1, 0.02, RegionNortheast},
	{"DE", "Delaware", -75.5, 39.0, 5050, 967000, 3, 0.28, RegionNortheast},
	{"FL", "Florida", -81.7, 28.6, 138890, 21300000, 67, 0.80, RegionSoutheast},
	{"GA", "Georgia", -83.4, 32.6, 148960, 10520000, 159, 0.65, RegionSoutheast},
	{"IA", "Iowa", -93.5, 42.0, 144670, 3156000, 99, 0.08, RegionMidwest},
	{"ID", "Idaho", -114.6, 44.4, 214040, 1754000, 44, 0.85, RegionMountain},
	{"IL", "Illinois", -89.2, 40.0, 143790, 12740000, 102, 0.08, RegionMidwest},
	{"IN", "Indiana", -86.3, 39.9, 92790, 6692000, 92, 0.10, RegionMidwest},
	{"KS", "Kansas", -98.4, 38.5, 211750, 2912000, 105, 0.30, RegionPlains},
	{"KY", "Kentucky", -85.3, 37.5, 102270, 4468000, 120, 0.30, RegionSoutheast},
	{"LA", "Louisiana", -91.9, 31.0, 111900, 4660000, 64, 0.45, RegionSoutheast},
	{"MA", "Massachusetts", -71.8, 42.3, 20200, 6902000, 14, 0.12, RegionNortheast},
	{"MD", "Maryland", -76.8, 39.0, 25140, 6043000, 24, 0.22, RegionNortheast},
	{"ME", "Maine", -69.2, 45.4, 79880, 1338000, 16, 0.25, RegionNortheast},
	{"MI", "Michigan", -85.4, 44.3, 146440, 9996000, 83, 0.18, RegionMidwest},
	{"MN", "Minnesota", -94.3, 46.3, 206230, 5611000, 87, 0.18, RegionMidwest},
	{"MO", "Missouri", -92.5, 38.4, 178040, 6126000, 115, 0.25, RegionMidwest},
	{"MS", "Mississippi", -89.7, 32.7, 121530, 2987000, 82, 0.50, RegionSoutheast},
	{"MT", "Montana", -109.6, 47.0, 376960, 1062000, 56, 0.80, RegionMountain},
	{"NC", "North Carolina", -79.4, 35.5, 125920, 10380000, 100, 0.60, RegionSoutheast},
	{"ND", "North Dakota", -100.5, 47.4, 178710, 760000, 53, 0.20, RegionPlains},
	{"NE", "Nebraska", -99.8, 41.5, 198970, 1929000, 93, 0.25, RegionPlains},
	{"NH", "New Hampshire", -71.6, 43.7, 23190, 1356000, 10, 0.18, RegionNortheast},
	{"NJ", "New Jersey", -74.7, 40.1, 19050, 8909000, 21, 0.32, RegionNortheast},
	{"NM", "New Mexico", -106.1, 34.4, 314160, 2095000, 33, 0.85, RegionSouthwest},
	{"NV", "Nevada", -116.6, 39.3, 284330, 3034000, 17, 0.85, RegionWest},
	{"NY", "New York", -75.5, 42.9, 122060, 19540000, 62, 0.12, RegionNortheast},
	{"OH", "Ohio", -82.8, 40.3, 105830, 11690000, 88, 0.08, RegionMidwest},
	{"OK", "Oklahoma", -97.5, 35.6, 177660, 3943000, 77, 0.50, RegionPlains},
	{"OR", "Oregon", -120.6, 43.9, 248610, 4191000, 36, 0.80, RegionWest},
	{"PA", "Pennsylvania", -77.8, 40.9, 115880, 12810000, 67, 0.30, RegionNortheast},
	{"RI", "Rhode Island", -71.5, 41.7, 2680, 1057000, 5, 0.10, RegionNortheast},
	{"SC", "South Carolina", -80.9, 33.9, 77860, 5084000, 46, 0.70, RegionSoutheast},
	{"SD", "South Dakota", -100.2, 44.4, 196350, 882000, 66, 0.30, RegionPlains},
	{"TN", "Tennessee", -86.3, 35.8, 106800, 6770000, 95, 0.40, RegionSoutheast},
	{"TX", "Texas", -99.4, 31.5, 676590, 28700000, 254, 0.55, RegionPlains},
	{"UT", "Utah", -111.7, 39.3, 212820, 3161000, 29, 0.85, RegionMountain},
	{"VA", "Virginia", -78.8, 37.5, 102280, 8518000, 133, 0.35, RegionSoutheast},
	{"VT", "Vermont", -72.7, 44.0, 23870, 626000, 14, 0.15, RegionNortheast},
	{"WA", "Washington", -120.4, 47.4, 172120, 7536000, 39, 0.70, RegionWest},
	{"WI", "Wisconsin", -90.0, 44.6, 140270, 5814000, 72, 0.15, RegionMidwest},
	{"WV", "West Virginia", -80.6, 38.6, 62260, 1806000, 55, 0.30, RegionSoutheast},
	{"WY", "Wyoming", -107.6, 43.0, 251470, 578000, 23, 0.75, RegionMountain},
}

// StateByAbbrev returns the state with the given postal abbreviation and
// whether it exists.
func StateByAbbrev(ab string) (State, bool) {
	for _, s := range States {
		if s.Abbrev == ab {
			return s, true
		}
	}
	return State{}, false
}

// StateIndex returns the index into States for the given abbreviation, or
// -1 when unknown.
func StateIndex(ab string) int {
	for i, s := range States {
		if s.Abbrev == ab {
			return i
		}
	}
	return -1
}

// TotalPopulation returns the summed population of all listed states.
func TotalPopulation() int {
	t := 0
	for _, s := range States {
		t += s.Pop
	}
	return t
}

// ConusOutline is a coarse hand-digitized polygon of the conterminous US
// boundary (lon/lat degrees, counter-clockwise). It is intentionally
// low-resolution: the analyses aggregate by state and county zones, which
// are synthesized inside this outline.
var ConusOutline = []struct{ Lon, Lat float64 }{
	{-124.7, 48.4}, {-123.2, 46.2}, {-124.1, 43.0}, {-124.4, 40.3},
	{-123.8, 39.0}, {-122.5, 37.8}, {-121.9, 36.6}, {-120.6, 34.6},
	{-118.4, 33.7}, {-117.1, 32.5}, {-114.8, 32.5}, {-111.1, 31.3},
	{-108.2, 31.3}, {-106.5, 31.8}, {-104.9, 30.6}, {-104.0, 29.3},
	{-102.4, 29.8}, {-101.4, 29.8}, {-99.5, 27.5}, {-97.1, 25.9},
	{-97.4, 27.9}, {-93.8, 29.7}, {-91.3, 29.2}, {-89.6, 29.2},
	{-89.0, 30.2}, {-87.8, 30.2}, {-85.3, 29.7}, {-84.0, 30.1},
	{-82.8, 27.8}, {-81.8, 26.1}, {-80.0, 25.2}, {-80.1, 26.8},
	{-81.0, 29.2}, {-81.3, 31.4}, {-79.0, 33.2}, {-75.5, 35.2},
	{-76.0, 36.9}, {-75.1, 38.3}, {-74.0, 40.5}, {-71.9, 41.3},
	{-70.0, 41.7}, {-70.8, 42.7}, {-68.9, 44.3}, {-67.0, 44.9},
	{-67.8, 47.1}, {-69.2, 47.5}, {-71.5, 45.0}, {-75.0, 45.0},
	{-76.8, 43.6}, {-79.2, 43.5}, {-78.9, 42.9}, {-82.7, 41.7},
	{-83.5, 45.8}, {-84.8, 46.8}, {-88.4, 48.3}, {-90.8, 48.1},
	{-95.2, 49.0}, {-104.0, 49.0}, {-111.0, 49.0}, {-117.0, 49.0},
	{-122.8, 49.0},
}
