package geodata

import "testing"

func TestStatesComplete(t *testing.T) {
	if len(States) != 49 {
		t.Fatalf("expected 48 conterminous states + DC, got %d", len(States))
	}
	seen := map[string]bool{}
	for _, s := range States {
		if len(s.Abbrev) != 2 {
			t.Errorf("bad abbreviation %q", s.Abbrev)
		}
		if seen[s.Abbrev] {
			t.Errorf("duplicate state %s", s.Abbrev)
		}
		seen[s.Abbrev] = true
		if s.Pop <= 0 || s.AreaKM2 <= 0 || s.Counties <= 0 {
			t.Errorf("%s: non-positive pop/area/counties", s.Abbrev)
		}
		if s.Hazard < 0 || s.Hazard > 1 {
			t.Errorf("%s: hazard weight %v out of [0,1]", s.Abbrev, s.Hazard)
		}
		if s.Lon > -66 || s.Lon < -125 || s.Lat < 24 || s.Lat > 50 {
			t.Errorf("%s: centroid (%v,%v) outside CONUS", s.Abbrev, s.Lon, s.Lat)
		}
	}
	for _, want := range []string{"CA", "FL", "TX", "NM", "UT", "DC"} {
		if !seen[want] {
			t.Errorf("missing state %s", want)
		}
	}
}

func TestStateLookups(t *testing.T) {
	ca, ok := StateByAbbrev("CA")
	if !ok || ca.Name != "California" {
		t.Errorf("StateByAbbrev(CA) = %v, %v", ca, ok)
	}
	if _, ok := StateByAbbrev("ZZ"); ok {
		t.Error("unknown state should not resolve")
	}
	if StateIndex("CA") < 0 || StateIndex("ZZ") != -1 {
		t.Error("StateIndex")
	}
}

func TestHazardCalibrationShape(t *testing.T) {
	// The generator relies on western/southeastern states having higher
	// hazard weights than the farm belt — the structure behind the paper's
	// state ranking (CA, FL, TX top).
	get := func(ab string) float64 {
		s, _ := StateByAbbrev(ab)
		return s.Hazard
	}
	if get("CA") <= get("IL") || get("FL") <= get("OH") || get("NM") <= get("IA") {
		t.Error("hazard weights do not follow west/southeast > midwest")
	}
	if get("CA") < 0.9 {
		t.Error("California must carry the top hazard weight")
	}
}

func TestTotalPopulation(t *testing.T) {
	p := TotalPopulation()
	// Conterminous US 2018: ~325M.
	if p < 300e6 || p > 340e6 {
		t.Errorf("total population = %d, want ~325M", p)
	}
}

func TestConusOutline(t *testing.T) {
	if len(ConusOutline) < 30 {
		t.Fatalf("outline too coarse: %d vertices", len(ConusOutline))
	}
	for _, v := range ConusOutline {
		if v.Lon > -60 || v.Lon < -130 || v.Lat < 24 || v.Lat > 50 {
			t.Errorf("outline vertex (%v,%v) outside CONUS box", v.Lon, v.Lat)
		}
	}
}

func TestCitiesValid(t *testing.T) {
	if len(Cities) < 70 {
		t.Fatalf("gazetteer too small: %d", len(Cities))
	}
	for _, c := range Cities {
		if _, ok := StateByAbbrev(c.State); !ok {
			t.Errorf("city %s references unknown state %s", c.Name, c.State)
		}
		if c.MetroPop <= 0 {
			t.Errorf("city %s has no population", c.Name)
		}
	}
	if got := CitiesInState("CA"); len(got) < 5 {
		t.Errorf("California should have several gazetteer cities, got %d", len(got))
	}
	if got := CitiesInState("ZZ"); got != nil {
		t.Error("unknown state should return nil")
	}
}

func TestPaperMetrosAnchored(t *testing.T) {
	for _, m := range PaperMetros {
		if m.RadiusKM <= 0 {
			t.Errorf("metro %s: non-positive radius", m.Name)
		}
	}
	names := map[string]bool{}
	for _, m := range PaperMetros {
		names[m.Name] = true
	}
	for _, want := range []string{"Los Angeles", "Miami", "San Diego", "Phoenix", "Orlando"} {
		if !names[want] {
			t.Errorf("missing paper metro %s", want)
		}
	}
}

func TestBigCounties(t *testing.T) {
	if len(BigCounties) < 20 {
		t.Fatalf("need the 23 most populous counties, got %d", len(BigCounties))
	}
	over15 := 0
	for _, c := range BigCounties {
		if _, ok := StateByAbbrev(c.State); !ok {
			t.Errorf("county %s references unknown state %s", c.Name, c.State)
		}
		if c.Pop > 1500000 {
			over15++
		}
	}
	if over15 < 20 {
		t.Errorf("only %d counties over 1.5M; paper identifies 23", over15)
	}
}

func TestLookupProvider(t *testing.T) {
	tests := []struct {
		mcc, mnc int
		want     string
	}{
		{310, 410, ProviderATT},
		{310, 260, ProviderTMobile},
		{310, 120, ProviderSprint},
		{311, 480, ProviderVerizon},
		{311, 580, "U.S. Cellular"},
		{999, 99, ProviderUnknown},
	}
	for _, tc := range tests {
		if got := LookupProvider(tc.mcc, tc.mnc); got != tc.want {
			t.Errorf("LookupProvider(%d,%d) = %q, want %q", tc.mcc, tc.mnc, got, tc.want)
		}
	}
}

func TestRegionalProvidersCount(t *testing.T) {
	// The paper footnotes 46 smaller providers operating at-risk
	// infrastructure; the table must carry a comparable long tail.
	n := len(RegionalProviders())
	if n < 46 {
		t.Errorf("regional providers = %d, want >= 46", n)
	}
}

func TestCodesForProvider(t *testing.T) {
	att := CodesForProvider(ProviderATT)
	if len(att) < 10 {
		t.Errorf("AT&T should hold many MNCs, got %d", len(att))
	}
	if len(CodesForProvider("NoSuchCarrier")) != 0 {
		t.Error("unknown carrier should have no codes")
	}
}

func TestSharesSumToOne(t *testing.T) {
	var tot float64
	for _, v := range NationalShare {
		tot += v
	}
	if tot < 0.99 || tot > 1.01 {
		t.Errorf("NationalShare sums to %v", tot)
	}
	tot = 0
	for _, v := range RadioShare {
		tot += v
	}
	if tot < 0.99 || tot > 1.01 {
		t.Errorf("RadioShare sums to %v", tot)
	}
}

func TestPaperTable1(t *testing.T) {
	if len(PaperTable1) != 19 {
		t.Fatalf("Table 1 should have 19 years, got %d", len(PaperTable1))
	}
	years := map[int]bool{}
	for _, r := range PaperTable1 {
		if r.Year < 2000 || r.Year > 2018 {
			t.Errorf("year %d out of range", r.Year)
		}
		years[r.Year] = true
		if r.Fires < 40000 || r.AcresBurnedM < 3 {
			t.Errorf("%d: implausible row %+v", r.Year, r)
		}
	}
	if len(years) != 19 {
		t.Error("duplicate years in Table 1")
	}
	r, ok := PaperTable1ByYear(2007)
	if !ok || r.TransceiversIn != 4978 {
		t.Errorf("2007 lookup = %+v, %v", r, ok)
	}
	if _, ok := PaperTable1ByYear(1999); ok {
		t.Error("1999 should not exist")
	}
}

func TestPaperWHPTotalsConsistent(t *testing.T) {
	if PaperWHPModerate+PaperWHPHigh+PaperWHPVeryHigh != PaperWHPTotal {
		t.Error("WHP class totals do not sum to the reported total")
	}
}

func TestPaperTable2Consistent(t *testing.T) {
	var m, h, vh int
	for _, r := range PaperTable2 {
		m += r.Moderate
		h += r.High
		vh += r.VHigh
	}
	// Table 2 sums should match the Figure 7 class totals within rounding.
	if m != PaperWHPModerate || h != PaperWHPHigh || vh != PaperWHPVeryHigh {
		t.Errorf("Table 2 sums (%d,%d,%d) vs class totals (%d,%d,%d)",
			m, h, vh, PaperWHPModerate, PaperWHPHigh, PaperWHPVeryHigh)
	}
}

func TestPaperTable3RowsSum(t *testing.T) {
	for _, r := range PaperTable3 {
		if r.VHigh+r.High+r.Moderate != r.Total {
			t.Errorf("%s: row does not sum to total", r.Radio)
		}
	}
}

func TestEcoregionDeltas(t *testing.T) {
	if len(PaperEcoregions) != 13 {
		t.Fatalf("corridor has 13 ecoregions, got %d", len(PaperEcoregions))
	}
	var has240, hasNeg bool
	for _, e := range PaperEcoregions {
		if e.DeltaPct == 240 {
			has240 = true
		}
		if e.DeltaPct < 0 {
			hasNeg = true
		}
	}
	if !has240 || !hasNeg {
		t.Error("corridor must include the +240% and the negative-delta bands")
	}
}

func TestPaperFires2019(t *testing.T) {
	roadFires := 0
	for _, f := range PaperFires2019 {
		if f.Acres <= 0 {
			t.Errorf("%s: no acreage", f.Name)
		}
		if f.RoadCorridor {
			roadFires++
		}
	}
	if roadFires != 2 {
		t.Errorf("road-corridor fires = %d, want 2 (Saddle Ridge, Tick)", roadFires)
	}
}
