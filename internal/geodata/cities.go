package geodata

// City is a gazetteer entry used to anchor synthetic urban clusters of
// cellular infrastructure and to define the metro windows of the impact
// analysis (Figures 11-13).
type City struct {
	Name     string
	State    string // postal abbreviation
	Lon, Lat float64
	MetroPop int // metro-area population estimate (2018)
}

// Cities is the gazetteer of major urban anchors, roughly the top metro
// areas plus the cities the paper calls out.
var Cities = []City{
	{"New York", "NY", -74.0060, 40.7128, 19980000},
	{"Los Angeles", "CA", -118.2437, 34.0522, 13290000},
	{"Chicago", "IL", -87.6298, 41.8781, 9490000},
	{"Dallas", "TX", -96.7970, 32.7767, 7540000},
	{"Houston", "TX", -95.3698, 29.7604, 6990000},
	{"Washington", "DC", -77.0369, 38.9072, 6250000},
	{"Miami", "FL", -80.1918, 25.7617, 6170000},
	{"Philadelphia", "PA", -75.1652, 39.9526, 6100000},
	{"Atlanta", "GA", -84.3880, 33.7490, 5950000},
	{"Phoenix", "AZ", -112.0740, 33.4484, 4860000},
	{"Boston", "MA", -71.0589, 42.3601, 4880000},
	{"San Francisco", "CA", -122.4194, 37.7749, 4730000},
	{"Riverside", "CA", -117.3961, 33.9533, 4620000},
	{"Detroit", "MI", -83.0458, 42.3314, 4330000},
	{"Seattle", "WA", -122.3321, 47.6062, 3940000},
	{"Minneapolis", "MN", -93.2650, 44.9778, 3630000},
	{"San Diego", "CA", -117.1611, 32.7157, 3340000},
	{"Tampa", "FL", -82.4572, 27.9506, 3140000},
	{"Denver", "CO", -104.9903, 39.7392, 2930000},
	{"St. Louis", "MO", -90.1994, 38.6270, 2810000},
	{"Baltimore", "MD", -76.6122, 39.2904, 2800000},
	{"Charlotte", "NC", -80.8431, 35.2271, 2570000},
	{"Orlando", "FL", -81.3792, 28.5383, 2570000},
	{"San Antonio", "TX", -98.4936, 29.4241, 2520000},
	{"Portland", "OR", -122.6765, 45.5231, 2480000},
	{"Sacramento", "CA", -121.4944, 38.5816, 2340000},
	{"Pittsburgh", "PA", -79.9959, 40.4406, 2320000},
	{"Las Vegas", "NV", -115.1398, 36.1699, 2230000},
	{"Cincinnati", "OH", -84.5120, 39.1031, 2190000},
	{"Austin", "TX", -97.7431, 30.2672, 2170000},
	{"Kansas City", "MO", -94.5786, 39.0997, 2140000},
	{"Columbus", "OH", -82.9988, 39.9612, 2110000},
	{"Indianapolis", "IN", -86.1581, 39.7684, 2050000},
	{"Cleveland", "OH", -81.6944, 41.4993, 2060000},
	{"San Jose", "CA", -121.8863, 37.3382, 1990000},
	{"Nashville", "TN", -86.7816, 36.1627, 1930000},
	{"Virginia Beach", "VA", -75.9780, 36.8529, 1730000},
	{"Providence", "RI", -71.4128, 41.8240, 1620000},
	{"Milwaukee", "WI", -87.9065, 43.0389, 1580000},
	{"Jacksonville", "FL", -81.6557, 30.3322, 1530000},
	{"Oklahoma City", "OK", -97.5164, 35.4676, 1400000},
	{"Raleigh", "NC", -78.6382, 35.7796, 1360000},
	{"Memphis", "TN", -90.0490, 35.1495, 1350000},
	{"Richmond", "VA", -77.4360, 37.5407, 1290000},
	{"New Orleans", "LA", -90.0715, 29.9511, 1270000},
	{"Louisville", "KY", -85.7585, 38.2527, 1260000},
	{"Salt Lake City", "UT", -111.8910, 40.7608, 1220000},
	{"Hartford", "CT", -72.6823, 41.7658, 1210000},
	{"Buffalo", "NY", -78.8784, 42.8864, 1130000},
	{"Birmingham", "AL", -86.8025, 33.5207, 1080000},
	{"Fresno", "CA", -119.7871, 36.7378, 990000},
	{"Tucson", "AZ", -110.9747, 32.2226, 1040000},
	{"Tulsa", "OK", -95.9928, 36.1540, 990000},
	{"Omaha", "NE", -95.9345, 41.2565, 940000},
	{"El Paso", "TX", -106.4850, 31.7619, 840000},
	{"Albuquerque", "NM", -106.6504, 35.0844, 910000},
	{"Bakersfield", "CA", -119.0187, 35.3733, 890000},
	{"Columbia", "SC", -81.0348, 34.0007, 830000},
	{"Greenville", "SC", -82.3940, 34.8526, 900000},
	{"Charleston", "SC", -79.9311, 32.7765, 790000},
	{"Boise", "ID", -116.2023, 43.6150, 730000},
	{"Little Rock", "AR", -92.2896, 34.7465, 740000},
	{"Des Moines", "IA", -93.6091, 41.5868, 690000},
	{"Spokane", "WA", -117.4260, 47.6588, 570000},
	{"Wichita", "KS", -97.3375, 37.6872, 640000},
	{"Colorado Springs", "CO", -104.8214, 38.8339, 740000},
	{"Reno", "NV", -119.8138, 39.5296, 470000},
	{"Fargo", "ND", -96.7898, 46.8772, 240000},
	{"Sioux Falls", "SD", -96.7311, 43.5446, 260000},
	{"Billings", "MT", -108.5007, 45.7833, 180000},
	{"Cheyenne", "WY", -104.8202, 41.1400, 99000},
	{"Burlington", "VT", -73.2121, 44.4759, 220000},
	{"Portland ME", "ME", -70.2553, 43.6591, 530000},
	{"Manchester", "NH", -71.4548, 42.9956, 410000},
	{"Jackson", "MS", -90.1848, 32.2988, 580000},
	{"Shreveport", "LA", -93.7502, 32.5252, 440000},
	{"Knoxville", "TN", -83.9207, 35.9606, 870000},
	{"Tallahassee", "FL", -84.2807, 30.4383, 380000},
	{"Savannah", "GA", -81.0998, 32.0809, 390000},
	{"Wilmington", "NC", -77.9447, 34.2257, 290000},
	{"Grand Junction", "CO", -108.5506, 39.0639, 150000},
	{"Provo", "UT", -111.6585, 40.2338, 630000},
	{"Santa Rosa", "CA", -122.7141, 38.4404, 500000},
	{"Redding", "CA", -122.3917, 40.5865, 180000},
	{"Eugene", "OR", -123.0868, 44.0521, 380000},
	{"Missoula", "MT", -113.9940, 46.8721, 120000},
	{"Santa Fe", "NM", -105.9378, 35.6870, 150000},
	{"Flagstaff", "AZ", -111.6513, 35.1983, 140000},
	{"St. George", "UT", -113.5684, 37.0965, 170000},
	{"Green Bay", "WI", -88.0133, 44.5133, 320000},
	{"Madison", "WI", -89.4012, 43.0731, 660000},
	{"Duluth", "MN", -92.1005, 46.7867, 280000},
	{"Casper", "WY", -106.3131, 42.8666, 80000},
	{"Rapid City", "SD", -103.2310, 44.0805, 140000},
}

// MetroWindow is a named analysis window around a metro area, used for the
// metro-impact comparison (Figure 12) and the detail maps (Figure 13).
type MetroWindow struct {
	Name      string
	AnchorLon float64
	AnchorLat float64
	RadiusKM  float64
}

// PaperMetros are the metro areas §3.7 compares. Radii approximate each
// metro's commute shed.
var PaperMetros = []MetroWindow{
	{"San Francisco", -122.2711, 37.6, 90},
	{"Los Angeles", -118.0, 34.0, 110},
	{"San Diego", -117.1611, 32.9, 70},
	{"Salt Lake City", -111.8910, 40.7608, 70},
	{"Denver", -104.9903, 39.7392, 80},
	{"Phoenix", -112.0740, 33.4484, 80},
	{"Philadelphia", -75.1652, 39.9526, 70},
	{"Orlando", -81.3792, 28.5383, 70},
	{"Miami", -80.3, 26.1, 90},
	{"Sacramento", -121.4944, 38.5816, 70},
	{"Las Vegas", -115.1398, 36.1699, 60},
	{"New York", -74.0060, 40.7128, 90},
}

// BigCounty anchors the largest US counties (the population centers whose
// density classes drive the Figure 10-12 impact analysis). The county
// synthesizer pins a county seed at each anchor and assigns it the listed
// population before distributing the state remainder.
type BigCounty struct {
	Name     string
	State    string
	Lon, Lat float64
	Pop      int
}

// BigCounties lists counties with more than ~1.5M residents (the paper's
// "very dense" class) plus a few just below for the "dense" class tests.
var BigCounties = []BigCounty{
	{"Los Angeles", "CA", -118.2437, 34.0522, 10100000},
	{"Cook", "IL", -87.6298, 41.8781, 5180000},
	{"Harris", "TX", -95.3698, 29.7604, 4700000},
	{"Maricopa", "AZ", -112.0740, 33.4484, 4410000},
	{"San Diego", "CA", -117.1611, 32.7157, 3340000},
	{"Orange", "CA", -117.8311, 33.7175, 3190000},
	{"Miami-Dade", "FL", -80.1918, 25.7617, 2760000},
	{"Dallas", "TX", -96.7970, 32.7767, 2640000},
	{"Kings", "NY", -73.9442, 40.6782, 2580000},
	{"Riverside", "CA", -117.3961, 33.9533, 2450000},
	{"Queens", "NY", -73.7949, 40.7282, 2280000},
	{"Clark", "NV", -115.1398, 36.1699, 2230000},
	{"King", "WA", -122.3321, 47.6062, 2230000},
	{"San Bernardino", "CA", -117.2898, 34.1083, 2170000},
	{"Tarrant", "TX", -97.3208, 32.7555, 2080000},
	{"Bexar", "TX", -98.4936, 29.4241, 1990000},
	{"Broward", "FL", -80.1373, 26.1224, 1950000},
	{"Santa Clara", "CA", -121.8863, 37.3382, 1930000},
	{"Wayne", "MI", -83.0458, 42.3314, 1750000},
	{"Alameda", "CA", -122.2711, 37.8044, 1660000},
	{"Middlesex", "MA", -71.1097, 42.3736, 1610000},
	{"Philadelphia", "PA", -75.1652, 39.9526, 1580000},
	{"Palm Beach", "FL", -80.0534, 26.7056, 1490000},
	{"Hillsborough", "FL", -82.4572, 27.9506, 1440000},
	{"New York", "NY", -73.9712, 40.7831, 1630000},
}

// CitiesInState returns the gazetteer cities within the given state.
func CitiesInState(ab string) []City {
	var out []City
	for _, c := range Cities {
		if c.State == ab {
			out = append(out, c)
		}
	}
	return out
}
