package geodata

// This file embeds the statistics the paper reports. They serve two
// purposes: (1) the generators calibrate their marginals against them
// (e.g. annual fire counts and burned acres), and (2) the experiment
// harness prints paper-vs-measured comparisons for EXPERIMENTS.md.

// Table1Row is one year of the paper's Table 1 (historical wildfire
// statistics for the US).
type Table1Row struct {
	Year              int
	Fires             int     // number of fires
	AcresBurnedM      float64 // millions of acres
	TransceiversIn    int     // transceivers within wildfire perimeters
	TransceiversPerMA int     // transceivers per million acres burned
}

// PaperTable1 is Table 1 of the paper, 2000-2018.
var PaperTable1 = []Table1Row{
	{2018, 58083, 8.767, 3099, 353},
	{2017, 71499, 10.026, 2726, 272},
	{2016, 67743, 5.509, 987, 179},
	{2015, 68151, 10.125, 565, 56},
	{2014, 63312, 3.595, 453, 126},
	{2013, 47579, 4.319, 517, 120},
	{2012, 67774, 9.326, 553, 59},
	{2011, 74126, 8.711, 1422, 163},
	{2010, 71971, 3.422, 181, 53},
	{2009, 78792, 5.921, 664, 112},
	{2008, 78979, 5.292, 2068, 391},
	{2007, 85705, 9.328, 4978, 534},
	{2006, 96385, 9.873, 1025, 104},
	{2005, 66753, 8.689, 956, 110},
	{2004, 65461, 8.097, 528, 65},
	{2003, 63629, 3.960, 4421, 1116},
	{2002, 73457, 7.184, 894, 124},
	{2001, 84079, 3.570, 466, 130},
	{2000, 92250, 7.393, 811, 110},
}

// PaperTable1ByYear returns the Table 1 row for year and whether it exists.
func PaperTable1ByYear(year int) (Table1Row, bool) {
	for _, r := range PaperTable1 {
		if r.Year == year {
			return r, true
		}
	}
	return Table1Row{}, false
}

// WHP class transceiver totals from §3.3 / Figure 7.
const (
	PaperWHPModerate  = 261569
	PaperWHPHigh      = 142968
	PaperWHPVeryHigh  = 26307
	PaperWHPTotal     = 430844 // M+H+VH
	PaperTransceivers = 5364949
)

// ProviderRiskRow is one row of the paper's Table 2: transceivers per WHP
// class and the share of the provider's own fleet that represents.
type ProviderRiskRow struct {
	Provider              string
	Moderate, High, VHigh int
	PctM, PctH, PctVH     float64
}

// PaperTable2 is Table 2 of the paper.
var PaperTable2 = []ProviderRiskRow{
	{ProviderATT, 101930, 53805, 10991, 5.44, 2.87, 0.59},
	{ProviderTMobile, 69360, 40365, 7573, 4.26, 2.48, 0.47},
	{ProviderSprint, 32417, 16523, 2746, 3.90, 1.99, 0.33},
	{ProviderVerizon, 42493, 24228, 3757, 5.50, 3.14, 0.49},
	{ProviderOthersAg, 15369, 8047, 1240, 3.90, 2.04, 0.31},
}

// RadioRiskRow is one row of the paper's Table 3 (cell transceiver types
// at risk).
type RadioRiskRow struct {
	Radio                 string
	VHigh, High, Moderate int
	Total                 int
}

// PaperTable3 is Table 3 of the paper.
var PaperTable3 = []RadioRiskRow{
	{"CDMA", 2178, 13801, 25062, 41041},
	{"GSM", 1943, 10096, 17955, 29994},
	{"LTE", 12022, 75072, 141324, 228418},
	{"UMTS", 10164, 43999, 77228, 131391},
}

// §3.3/§3.8 state rankings.
var (
	// PaperTopStatesModerate lists the states with >5000 transceivers in
	// moderate WHP areas, most to least.
	PaperTopStatesModerate = []string{"CA", "FL", "TX", "SC", "GA", "NC", "AZ"}
	// PaperTopStatesPerCapitaVH lists the states with the most
	// very-high-WHP transceivers per thousand people, most to least.
	PaperTopStatesPerCapitaVH = []string{"UT", "FL", "CA", "NV", "NM"}
)

// 2019 validation (§3.4).
const (
	PaperValidation2019InPerimeter = 656 // transceivers inside 2019 perimeters
	PaperValidation2019Predicted   = 302 // of those, inside WHP >= moderate
	PaperValidation2019RoadFires   = 288 // misses inside Saddle Ridge/Tick fires
	PaperValidationAccuracyPct     = 46  // 302/656
	PaperValidationExclRoadPct     = 84  // excluding the two road-corridor fires
)

// §3.8 extension of very-high WHP areas by 0.5 miles.
const (
	PaperExtendedVHCount     = 176275 // very-high count after 0.5 mi buffer
	PaperExtendedTotal       = 509693 // M+H+VH(extended)
	PaperExtendedAccuracyPct = 62     // 411/656
	PaperExtendedPredicted   = 411
)

// §3.2 case-study anchors (FCC DIRS, 25 Oct - 1 Nov 2019).
const (
	PaperDIRSPeakSitesOut     = 874 // peak concurrent cell sites out of service
	PaperDIRSPeakPowerOut     = 702 // of the peak, sites out due to power loss
	PaperDIRSFinalSitesOut    = 110 // sites still out on 1 Nov
	PaperDIRSFinalDamaged     = 21  // of the final-day outages, damaged sites
	PaperDIRSReportDays       = 8   // reporting window length in days
	PaperDIRSCounties         = 37  // counties under DIRS activation
	PaperDIRSPowerShareAtPeak = 0.80
)

// Figure 10-12 impact anchors (§3.6).
const (
	PaperPopVHTransceivers = 57504  // M+H+VH transceivers in counties > 1.5M people
	PaperRiskPopTotal      = 250000 // ~transceivers in top-3 WHP in counties > 200k
)

// MetroVHVeryDense are the §3.6 counts of transceivers in very-high WHP
// areas within counties of more than 1.5M people, by metro.
var MetroVHVeryDense = map[string]int{
	"Las Vegas":     10,
	"New York":      81,
	"Phoenix":       106,
	"San Francisco": 935,
	"San Diego":     1082,
	"Miami":         1536,
	"Los Angeles":   3547,
}

// Ecoregion projections (§3.9, after Littell et al. 2018): percent change
// in annual area burned by the 2040s for the Salt Lake City - Denver
// corridor ecoregions.
type EcoregionDelta struct {
	Name     string
	DeltaPct float64 // +240 means a 240% increase
	// Corridor placement: fraction along the SLC->Denver axis [0,1] and
	// half-width in km used by the synthetic corridor builder.
	AxisFrac    float64
	HalfWidthKM float64
}

// PaperEcoregions lists the corridor ecoregions with their projected
// change in area burned. The paper highlights +240%, +132%, +43% and
// -119% bands.
var PaperEcoregions = []EcoregionDelta{
	{"Bonneville Basin", 43, -0.15, 90},
	{"Wasatch Range", 240, 0.05, 70},
	{"Uinta Mountains", 132, 0.20, 80},
	{"Green River Basin", 240, 0.35, 90},
	{"Wyoming Basin", 132, 0.48, 90},
	{"Yampa Plateau", 132, 0.60, 80},
	{"Elkhead Range", 240, 0.68, 60},
	{"North Park", -119, 0.76, 50},
	{"Medicine Bow", 132, 0.82, 60},
	{"Front Range", 240, 0.92, 70},
	{"Denver Piedmont", 43, 1.02, 60},
	{"Laramie Range", 132, 0.88, 50},
	{"Tavaputs Plateau", 43, 0.28, 60},
}

// Fires2019 describes the 2019 validation-season anchor fires. Kincade and
// Getty ground the case study; Saddle Ridge and Tick are the two
// road-corridor fires responsible for most WHP misses.
type AnchorFire struct {
	Name     string
	Lon, Lat float64
	Acres    float64
	// RoadCorridor marks fires burning through nonburnable-classified
	// road/urban-edge terrain (the §3.4 validation outliers).
	RoadCorridor bool
}

// PaperFires2019 are the named 2019 fires the paper discusses.
var PaperFires2019 = []AnchorFire{
	{"Kincade", -122.78, 38.79, 77758, false},
	{"Getty", -118.49, 34.09, 745, false},
	{"Saddle Ridge", -118.48, 34.32, 8799, true},
	{"Tick", -118.38, 34.44, 4615, true},
}
