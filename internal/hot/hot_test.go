package hot

import (
	"math"
	"testing"

	"fivealarms/internal/rng"
)

// gaussianWeights builds a smooth 2-D ignition field, the canonical HOT
// setting.
func gaussianWeights(n int) []float64 {
	// Span +-5 sigma so the ignition probabilities cover many decades —
	// the dynamic range the HOT power law lives in.
	w := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx := float64(x-n/2) / float64(n/10)
			dy := float64(y-n/2) / float64(n/10)
			w[y*n+x] = math.Exp(-(dx*dx + dy*dy) / 2)
		}
	}
	return w
}

func TestFitBasics(t *testing.T) {
	m, err := Fit(gaussianWeights(32), 100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pSum, rSum float64
	for i := range m.P {
		pSum += m.P[i]
		rSum += m.R[i]
	}
	if math.Abs(pSum-1) > 1e-9 {
		t.Errorf("P sums to %v", pSum)
	}
	if math.Abs(rSum-100) > 1e-6 {
		t.Errorf("R sums to %v, want budget 100", rSum)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{0, 0, -1}, 1, 1, 1); err != ErrNoRegions {
		t.Errorf("err = %v", err)
	}
	// Degenerate parameters coerce to sane defaults.
	m, err := Fit([]float64{1, 2}, -5, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Beta != 1 || m.C != 1 {
		t.Errorf("defaults not applied: %+v", m)
	}
}

func TestAllocationFollowsProbability(t *testing.T) {
	// More ignition probability -> more resources -> smaller fires.
	m, err := Fit([]float64{1, 100}, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.R[1] <= m.R[0] {
		t.Error("likely region should get more resources")
	}
	if m.Size(1) >= m.Size(0) {
		t.Error("likely region should have smaller fires")
	}
}

func TestAllocationIsOptimal(t *testing.T) {
	// Perturbing the optimal allocation (moving resource between two
	// regions) must not reduce expected loss.
	m, err := Fit(gaussianWeights(16), 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := m.ExpectedLoss()
	// Pick two regions with resources.
	var i, j int = -1, -1
	for k, r := range m.R {
		if r > 1e-9 {
			if i < 0 {
				i = k
			} else {
				j = k
				break
			}
		}
	}
	if j < 0 {
		t.Fatal("not enough allocated regions")
	}
	for _, eps := range []float64{0.01, -0.01} {
		d := m.R[i] * eps
		m.R[i] -= d
		m.R[j] += d
		perturbed := m.ExpectedLoss()
		m.R[i] += d
		m.R[j] -= d
		if perturbed < base-1e-12 {
			t.Errorf("perturbation eps=%v reduced loss: %v < %v", eps, perturbed, base)
		}
	}
}

func TestSizeOutOfRange(t *testing.T) {
	m, _ := Fit([]float64{1, 1}, 2, 1, 1)
	if m.Size(-1) != 0 || m.Size(99) != 0 {
		t.Error("out-of-range sizes should be 0")
	}
}

func TestSamplePowerLawTail(t *testing.T) {
	// The HOT mechanism over a smooth 2-D probability field produces a
	// heavy-tailed size distribution: a Hill tail exponent well below
	// the thin-tail regime.
	m, err := Fit(gaussianWeights(64), 1000, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	sizes := make([]float64, 20000)
	for i := range sizes {
		sizes[i] = m.SampleSize(src)
	}
	alpha := TailExponent(sizes, 500)
	if alpha <= 0 {
		t.Fatal("tail exponent not estimable")
	}
	// HOT in d=2 with beta=1 predicts alpha near d/(d*beta+1)... the
	// robust claim: a genuine power law with alpha < 3 (heavy tail),
	// far from exponential.
	if alpha >= 3 {
		t.Errorf("tail exponent = %v, want heavy (< 3)", alpha)
	}
}

func TestEscapeProbability(t *testing.T) {
	m, err := Fit(gaussianWeights(32), 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	p0 := m.EscapeProbability(0)
	if math.Abs(p0-1) > 1e-9 {
		t.Errorf("zero threshold escape = %v, want 1", p0)
	}
	// Monotone nonincreasing in threshold.
	prev := 2.0
	for _, th := range []float64{1, 10, 100, 1000, 1e6} {
		p := m.EscapeProbability(th)
		if p > prev {
			t.Errorf("escape probability not monotone at %v", th)
		}
		prev = p
	}
	if m.EscapeProbability(math.Inf(1)) != 0 {
		t.Error("infinite threshold should have zero escape")
	}
}

func TestSampleRegionDistribution(t *testing.T) {
	m, err := Fit([]float64{1, 3}, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	n1 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.SampleRegion(src) == 1 {
			n1++
		}
	}
	if f := float64(n1) / n; math.Abs(f-0.75) > 0.01 {
		t.Errorf("region 1 frequency = %v, want 0.75", f)
	}
}

func TestTailExponentKnownPareto(t *testing.T) {
	// Hill on true Pareto(1, alpha=1.5) recovers alpha.
	src := rng.New(13)
	sizes := make([]float64, 50000)
	for i := range sizes {
		sizes[i] = src.Pareto(1, 1.5)
	}
	alpha := TailExponent(sizes, 2000)
	if math.Abs(alpha-1.5) > 0.15 {
		t.Errorf("Hill estimate = %v, want ~1.5", alpha)
	}
}

func TestTailExponentDegenerate(t *testing.T) {
	if TailExponent(nil, 10) != 0 {
		t.Error("nil input")
	}
	if TailExponent([]float64{1, 2, 3}, 10) != 0 {
		t.Error("k too large")
	}
	if TailExponent(make([]float64, 100), 10) != 0 {
		t.Error("all-zero sizes")
	}
}

func BenchmarkSampleSize(b *testing.B) {
	m, _ := Fit(gaussianWeights(64), 1000, 1, 100)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleSize(src)
	}
}
