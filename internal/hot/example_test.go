package hot_test

import (
	"fmt"

	"fivealarms/internal/hot"
)

func ExampleFit() {
	// Two regions: one ignites nine times as often. Optimal suppression
	// gives the likely region more resources, so its fires stay smaller —
	// the HOT mechanism.
	m, err := hot.Fit([]float64{1, 9}, 10, 1, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rare-region fire: %.0f acres\n", m.Size(0))
	fmt.Printf("common-region fire: %.0f acres\n", m.Size(1))
	fmt.Printf("escape beyond 35 acres: %.1f\n", m.EscapeProbability(35))
	// Output:
	// rare-region fire: 40 acres
	// common-region fire: 13 acres
	// escape beyond 35 acres: 0.1
}
