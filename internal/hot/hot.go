// Package hot implements the highly-optimized-tolerance (HOT) wildfire
// model of Moritz et al. (2005), the framework the paper's §3.11 proposes
// integrating for regionalized escape probabilities.
//
// HOT derives heavy-tailed event sizes from optimal resource allocation:
// a fire manager distributes a fixed suppression budget across regions to
// minimize expected burned area. With per-region ignition probability p_i
// and burned area A_i = c * r_i^(-beta) under allocated resource r_i,
// minimizing sum(p_i A_i) subject to sum(r_i) = R yields
//
//	r_i ∝ p_i^(1/(1+beta))
//
// so rarely-igniting regions get few resources and produce the occasional
// enormous fire — a power-law size distribution without any per-fire
// tuning. The model also yields the "escape probability": the chance an
// ignition exceeds the initial-attack containment size in its region.
package hot

import (
	"errors"
	"math"
	"sort"

	"fivealarms/internal/rng"
)

// ErrNoRegions is returned when a model is fit over no usable regions.
var ErrNoRegions = errors.New("hot: no regions with positive ignition probability")

// Model is a fitted HOT allocation.
type Model struct {
	// P is the normalized ignition probability per region.
	P []float64
	// R is the optimal resource allocation per region (sums to the
	// budget).
	R []float64
	// Beta is the suppression-effectiveness exponent (A ∝ r^-beta).
	Beta float64
	// C is the burned-area scale constant.
	C float64

	cdf []float64
}

// Fit computes the optimal allocation for the given unnormalized ignition
// weights, total resource budget, effectiveness exponent beta (> 0) and
// area scale c (> 0).
func Fit(ignition []float64, budget, beta, c float64) (*Model, error) {
	if beta <= 0 {
		beta = 1
	}
	if c <= 0 {
		c = 1
	}
	if budget <= 0 {
		budget = 1
	}
	var total float64
	for _, p := range ignition {
		if p > 0 {
			total += p
		}
	}
	if total == 0 {
		return nil, ErrNoRegions
	}
	m := &Model{
		P:    make([]float64, len(ignition)),
		R:    make([]float64, len(ignition)),
		Beta: beta,
		C:    c,
	}
	exp := 1 / (1 + beta)
	var rSum float64
	for i, p := range ignition {
		if p <= 0 {
			continue
		}
		m.P[i] = p / total
		m.R[i] = math.Pow(m.P[i], exp)
		rSum += m.R[i]
	}
	for i := range m.R {
		m.R[i] *= budget / rSum
	}
	m.cdf = make([]float64, len(m.P))
	var acc float64
	for i, p := range m.P {
		acc += p
		m.cdf[i] = acc
	}
	return m, nil
}

// Size returns the burned area of an event igniting in region i.
func (m *Model) Size(i int) float64 {
	if i < 0 || i >= len(m.R) || m.R[i] == 0 {
		return 0
	}
	return m.C * math.Pow(m.R[i], -m.Beta)
}

// ExpectedLoss returns the expected burned area per ignition under the
// current allocation.
func (m *Model) ExpectedLoss() float64 {
	var e float64
	for i, p := range m.P {
		if p > 0 {
			e += p * m.Size(i)
		}
	}
	return e
}

// SampleRegion draws a region index with probability P.
func (m *Model) SampleRegion(src *rng.Source) int {
	u := src.Float64()
	lo, hi := 0, len(m.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SampleSize draws one event size (region by ignition probability, size
// by its allocation). It implements the wildfire.SizeSampler contract.
func (m *Model) SampleSize(src *rng.Source) float64 {
	return m.Size(m.SampleRegion(src))
}

// EscapeProbability returns the probability an ignition produces a fire
// larger than threshold — the §3.11 "escape probability" as a function of
// containment capability.
func (m *Model) EscapeProbability(threshold float64) float64 {
	var p float64
	for i, pi := range m.P {
		if pi > 0 && m.Size(i) > threshold {
			p += pi
		}
	}
	if p > 1 { // floating-point accumulation guard
		p = 1
	}
	return p
}

// TailExponent estimates the power-law tail exponent alpha of the size
// distribution (P(X > x) ~ x^-alpha) with the Hill estimator over the top
// k order statistics of the sampled sizes. Returns 0 for insufficient
// data.
func TailExponent(sizes []float64, k int) float64 {
	n := len(sizes)
	if k < 2 || n < k+1 {
		return 0
	}
	s := make([]float64, n)
	copy(s, sizes)
	sort.Float64s(s)
	// Top k values s[n-k:], threshold s[n-k-1].
	xk := s[n-k-1]
	if xk <= 0 {
		return 0
	}
	var sum float64
	for _, v := range s[n-k:] {
		sum += math.Log(v / xk)
	}
	if sum == 0 {
		return 0
	}
	return float64(k) / sum
}
