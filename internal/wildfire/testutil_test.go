package wildfire

import "fivealarms/internal/rng"

// newTestSource gives tests direct access to growFire with a fresh
// deterministic source.
func newTestSource(seed uint64) *rng.Source { return rng.New(seed + 1) }
