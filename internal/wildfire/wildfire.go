// Package wildfire implements the GeoMAC-style historical fire layer: a
// per-season catalog of fires with mapped perimeters, produced by a
// stochastic fire-spread simulator running over the shared fuel model.
//
// # Size model
//
// Fire sizes follow a truncated power law, the distribution the highly
// optimized tolerance (HOT) framework predicts and the paper cites
// (Moritz et al. 2005). Each season draws its mapped-fire sizes from the
// tail and rescales them so the season total matches the calibration
// target (the paper's Table 1 burned-acre marginals) — the heavy tail is
// preserved, the marginal is exact.
//
// # Spread model
//
// A fire grows over a local fine-resolution window by an exponential-race
// region growth (stochastic Dijkstra): each frontier cell ignites after an
// Exp(fuel x wind-alignment) delay, so the burn expands preferentially
// through heavy fuel and downwind, producing the irregular, elongated
// shapes of real perimeters. Nonburnable corridors have low but non-zero
// permeability, so wind-driven fires occasionally jump roads — the
// mechanism behind the paper's §3.4 validation outliers. The final burned
// mask is traced (marching contours) into a GeoMAC-style MultiPolygon.
package wildfire

import (
	"fmt"
	"math"
	"sync"

	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/rng"
	"fivealarms/internal/rtree"
	"fivealarms/internal/whp"
)

// Fire is one mapped wildfire with its perimeter.
type Fire struct {
	ID        int
	Name      string
	Year      int
	StartDay  int // day of year
	EndDay    int
	Acres     float64 // area within the final perimeter
	Ignition  geom.Point
	Perimeter geom.MultiPolygon // projected coordinates
	StateIdx  int
	// RoadCorridor marks fires whose burned area includes a significant
	// share of nonburnable corridor cells (the Saddle Ridge/Tick class of
	// validation outliers).
	RoadCorridor bool
	// WindDeg is the prevailing spread direction (degrees, math
	// convention) used during growth.
	WindDeg float64

	// prep lazily caches the prepared perimeter. It lives behind a
	// pointer so Fire values copy freely (Season.Mapped stores fires by
	// value); every copy shares the one cache.
	prep *firePrep
}

// firePrep holds the once-built prepared perimeter.
type firePrep struct {
	once sync.Once
	mp   *geom.PreparedMultiPolygon
}

// BBox returns the perimeter bounding box.
func (f *Fire) BBox() geom.BBox { return f.Perimeter.BBox() }

// PreparedPerimeter returns the containment-optimized form of the
// perimeter (see geom.PrepareMultiPolygon), built on first use and
// cached; concurrent callers share the one build. Fires assembled by
// hand (struct literals in tests or external decoders) have no cache
// slot and prepare on every call — still correct, just unmemoized.
func (f *Fire) PreparedPerimeter() *geom.PreparedMultiPolygon {
	if f.prep == nil {
		return geom.PrepareMultiPolygon(f.Perimeter)
	}
	f.prep.once.Do(func() { f.prep.mp = geom.PrepareMultiPolygon(f.Perimeter) })
	return f.prep.mp
}

// Season is one simulated fire year.
type Season struct {
	Year int
	// TotalFires and TotalAcres are season-level statistics including the
	// unmapped small fires (GeoMAC maps only sizable incidents; national
	// fire counts come from NIFC statistics).
	TotalFires int
	TotalAcres float64
	// Mapped are the fires with simulated perimeters.
	Mapped []Fire
	// Tree indexes Mapped by perimeter bounding box.
	Tree *rtree.Tree
}

// MappedAcres sums the perimeter areas of the mapped fires.
func (s *Season) MappedAcres() float64 {
	var a float64
	for i := range s.Mapped {
		a += s.Mapped[i].Acres
	}
	return a
}

// SeasonConfig parameterizes one simulated season.
type SeasonConfig struct {
	Seed uint64
	Year int
	// TotalFires is the season's fire count (statistics only).
	TotalFires int
	// TotalAcres is the season's burned area target in acres.
	TotalAcres float64
	// MappedFires is the number of large fires to simulate perimeters
	// for. Defaults to 60.
	MappedFires int
	// MappedShare is the fraction of TotalAcres attributed to the mapped
	// large-fire tail. Defaults to 0.85 (heavy-tailed size
	// distributions put most burned area in the few largest fires).
	MappedShare float64
	// Alpha is the power-law tail exponent. Defaults to 1.15.
	Alpha float64
	// ForcedIgnitions pins fires at specific geographic (lon/lat)
	// locations with fixed acre targets — used to reproduce the named
	// 2019 validation fires.
	ForcedIgnitions []ForcedIgnition
	// SizeSampler optionally replaces the built-in truncated-Pareto size
	// model (e.g. with a hot.Model). Sampled sizes are still rescaled so
	// the season total matches MappedShare x TotalAcres.
	SizeSampler SizeSampler
}

// SizeSampler draws fire sizes in acres; hot.Model satisfies it.
type SizeSampler interface {
	SampleSize(src *rng.Source) float64
}

// ForcedIgnition pins one fire of a season.
type ForcedIgnition struct {
	Name    string
	LonLat  geom.Point
	Acres   float64
	WindDeg float64
	// WindStrength overrides the default spread-anisotropy (0.9). Extreme
	// wind events (Santa Ana, Diablo) use 2.0+: the fire outruns the fuel
	// gradient and penetrates low-fuel urban fringes — how Saddle Ridge
	// and Tick burned into road corridors and suburbs.
	WindStrength float64
}

func (c SeasonConfig) withDefaults() SeasonConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MappedFires <= 0 {
		c.MappedFires = 60
	}
	if c.MappedShare <= 0 || c.MappedShare > 1 {
		c.MappedShare = 0.85
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.15
	}
	return c
}

// Simulator runs fire seasons over a world and its hazard model.
type Simulator struct {
	World  *conus.World
	Hazard *whp.Map
	// ignitionPool caches candidate ignition cells weighted by hazard.
	pool   []geom.Point
	poolWt []float64
}

// NewSimulator prepares a simulator. The hazard map supplies the fuel
// model; its raster resolution does not constrain fire resolution.
func NewSimulator(w *conus.World, hazard *whp.Map) *Simulator {
	s := &Simulator{World: w, Hazard: hazard}
	g := w.Grid
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if w.StateZone.At(cx, cy) == 0 {
				continue
			}
			p := g.Center(cx, cy)
			h := hazard.HazardAt(p)
			if h <= 0.05 {
				continue
			}
			s.pool = append(s.pool, p)
			// Ignition density rises superlinearly with hazard (dry,
			// fuel-rich regions both ignite and escape containment more
			// often) and with proximity to human activity: §2.1 of the
			// paper names power-line sparks, campfires and equipment as
			// the dominant ignition sources, which is why escaped fires
			// disproportionately start at the wildland-urban interface
			// and along transportation corridors (Saddle Ridge ignited
			// under a transmission tower beside a freeway).
			human := 0.25 + math.Min(3*w.UrbanAt(p), 1.0) + math.Exp(-w.RoadDistAt(p)/15000)
			s.poolWt = append(s.poolWt, h*h*human)
		}
	}
	return s
}

// Season simulates one fire year.
func (s *Simulator) Season(cfg SeasonConfig) *Season {
	cfg = cfg.withDefaults()
	src := rng.NewStream(cfg.Seed, uint64(cfg.Year)*0xF17E+1)

	season := &Season{Year: cfg.Year, TotalFires: cfg.TotalFires, TotalAcres: cfg.TotalAcres}

	// Draw tail sizes and rescale to the mapped-share target.
	n := cfg.MappedFires
	sizes := make([]float64, n)
	var sum float64
	for i := range sizes {
		if cfg.SizeSampler != nil {
			sizes[i] = cfg.SizeSampler.SampleSize(src)
		} else {
			sizes[i] = src.TruncatedPareto(300, 400000, cfg.Alpha)
		}
		sum += sizes[i]
	}
	target := cfg.TotalAcres * cfg.MappedShare
	if sum > 0 {
		k := target / sum
		for i := range sizes {
			sizes[i] *= k
		}
	}

	id := 0
	for _, fi := range cfg.ForcedIgnitions {
		ws := fi.WindStrength
		if ws <= 0 {
			ws = defaultWindStrength
		}
		f := s.growFireWind(src, fi.Name, cfg.Year, s.World.ToXY(fi.LonLat), fi.Acres, fi.WindDeg, ws, id)
		if f != nil {
			season.Mapped = append(season.Mapped, *f)
			id++
		}
	}
	for _, acres := range sizes {
		if len(s.pool) == 0 {
			break
		}
		ign := s.pool[src.Categorical(s.poolWt)]
		// Jitter inside the coarse cell.
		cell := s.World.Grid.CellSize
		ign = geom.Point{
			X: ign.X + src.Range(-cell/2, cell/2),
			Y: ign.Y + src.Range(-cell/2, cell/2),
		}
		wind := src.Range(0, 360)
		name := fmt.Sprintf("%s-%d", fireNames[id%len(fireNames)], cfg.Year)
		f := s.growFire(src, name, cfg.Year, ign, acres, wind, id)
		if f != nil {
			season.Mapped = append(season.Mapped, *f)
			id++
		}
	}

	items := make([]rtree.Item, len(season.Mapped))
	for i := range season.Mapped {
		items[i] = rtree.Item{Box: season.Mapped[i].BBox(), ID: i}
	}
	season.Tree = rtree.New(items)
	return season
}

// frontierItem is a cell in the ignition race.
type frontierItem struct {
	idx  int // cell index in the local window
	time float64
}

// frontierHeap is a hand-rolled min-heap on time. The sift order matches
// container/heap exactly (strict-less comparisons, left child on ties),
// but push/pop stay monomorphic: the container/heap interface boxes
// every item, which made the ignition race the single largest allocator
// in a cold study build (~1.2M boxed items).
type frontierHeap []frontierItem

func (h *frontierHeap) push(it frontierItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(s[i].time < s[parent].time) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *frontierHeap) pop() frontierItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].time < s[j].time {
			j = j2
		}
		if !(s[j].time < s[i].time) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// defaultWindStrength is the spread anisotropy of ordinary fire weather.
const defaultWindStrength = 0.9

// growFire burns a single fire to its target size under ordinary wind.
func (s *Simulator) growFire(src *rng.Source, name string, year int,
	ign geom.Point, targetAcres, windDeg float64, id int) *Fire {
	return s.growFireWind(src, name, year, ign, targetAcres, windDeg, defaultWindStrength, id)
}

// growFireWind burns a single fire to its target size and returns it, or
// nil when the ignition point carries no fuel at all.
func (s *Simulator) growFireWind(src *rng.Source, name string, year int,
	ign geom.Point, targetAcres, windDeg, windStrength float64, id int) *Fire {

	if targetAcres < 1 {
		targetAcres = 1
	}
	targetM2 := targetAcres * geom.SquareMetersPerAcre

	// Local window: generous margin around the expected final radius,
	// asymmetric growth included.
	radius := math.Sqrt(targetM2/math.Pi) * 3.5
	cellSize := clampF(math.Sqrt(targetM2)/45, 90, 2500)
	g := raster.NewGeometry(geom.BBox{
		MinX: ign.X - radius, MinY: ign.Y - radius,
		MaxX: ign.X + radius, MaxY: ign.Y + radius,
	}, cellSize)
	targetCells := int(targetM2/g.CellArea()) + 1

	// Precompute fuel over the window lazily (cache on demand).
	fuel := make([]float64, g.Cells())
	for i := range fuel {
		fuel[i] = -1
	}
	fuelAt := func(cx, cy int) float64 {
		i := cy*g.NX + cx
		if fuel[i] < 0 {
			fuel[i] = s.Hazard.FuelAt(g.Center(cx, cy))
		}
		return fuel[i]
	}

	windRad := windDeg * math.Pi / 180
	wx, wy := math.Cos(windRad), math.Sin(windRad)

	burned := raster.NewBitGrid(g)
	cx0, cy0, ok := g.CellOf(ign)
	if !ok || fuelAt(cx0, cy0) <= 0 {
		return nil
	}

	var h frontierHeap
	seen := make([]bool, g.Cells())
	push := func(cx, cy int, t float64) {
		if cx < 0 || cy < 0 || cx >= g.NX || cy >= g.NY {
			return
		}
		i := cy*g.NX + cx
		if seen[i] {
			return
		}
		seen[i] = true
		h.push(frontierItem{idx: i, time: t})
	}
	push(cx0, cy0, 0)

	nBurned := 0
	nonburnableBurned := 0
	for len(h) > 0 && nBurned < targetCells {
		it := h.pop()
		cy := it.idx / g.NX
		cx := it.idx % g.NX
		f := fuelAt(cx, cy)
		if f <= 0 {
			continue // ocean: never burns
		}
		burned.Set(cx, cy, true)
		nBurned++
		if f <= 0.04 {
			nonburnableBurned++
		}
		// Race the 8 neighbors.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				ncx, ncy := cx+dx, cy+dy
				if ncx < 0 || ncy < 0 || ncx >= g.NX || ncy >= g.NY {
					continue
				}
				nf := fuelAt(ncx, ncy)
				if nf <= 0 {
					continue
				}
				// Wind alignment: spreading downwind is faster.
				norm := math.Sqrt(float64(dx*dx + dy*dy))
				align := (float64(dx)*wx + float64(dy)*wy) / norm
				rate := nf * math.Exp(windStrength*align)
				dt := src.Exponential(1/rate) * norm
				push(ncx, ncy, it.time+dt)
			}
		}
	}
	if nBurned == 0 {
		return nil
	}

	mp := raster.TraceContours(burned)
	acres := geom.Acres(mp.Area())
	start := 120 + src.Intn(150) // fire season day-of-year
	duration := 2 + int(math.Sqrt(acres)/8)
	state := s.World.StateAt(ign)
	return &Fire{
		ID:           id,
		Name:         name,
		Year:         year,
		StartDay:     start,
		EndDay:       start + duration,
		Acres:        acres,
		Ignition:     ign,
		Perimeter:    mp,
		StateIdx:     state,
		RoadCorridor: float64(nonburnableBurned)/float64(nBurned) > 0.06,
		WindDeg:      windDeg,
		prep:         &firePrep{},
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fireNames provides deterministic synthetic incident names.
var fireNames = []string{
	"Alder", "Basin", "Cedar", "Dome", "Eagle", "Flint", "Granite", "Hawk",
	"Iron", "Juniper", "Klamath", "Lodge", "Mesa", "Needle", "Onyx", "Pine",
	"Quartz", "Ridge", "Sage", "Talon", "Umber", "Vista", "Willow", "Yucca",
	"Zephyr", "Bear", "Canyon", "Delta", "Ember", "Fox",
}
