package wildfire

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadGeoJSON feeds the perimeter reader arbitrary documents. The
// seed corpus is the writer's own round-trip output (the format the
// reader promises to accept) plus malformed variants; expand with
// `go test -fuzz=FuzzReadGeoJSON ./internal/wildfire`.
func FuzzReadGeoJSON(f *testing.F) {
	s := testSim.Season(SeasonConfig{Seed: 29, Year: 2014, TotalFires: 63312, TotalAcres: 3.6e6, MappedFires: 4})
	var buf bytes.Buffer
	if err := s.WriteGeoJSON(&buf, testWorld); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"type":"FeatureCollection","features":[]}`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{"incidentname":"x","fireyear":2005,"roadcorridor":true},"geometry":{"type":"MultiPolygon","coordinates":[[[[-100,40],[-99,40],[-99,41],[-100,40]]]]}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"MultiPolygon","coordinates":[[[[999,40]]]]}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"Point","coordinates":[]}}]}`)
	f.Add(`{"type":"Feature"}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<16 {
			return
		}
		fires, err := ReadGeoJSON(strings.NewReader(doc), testWorld)
		if err != nil {
			return
		}
		// Accepted documents must yield fully finite projected geometry —
		// the coordinate guard runs before projection, so nothing
		// non-finite may survive into a Fire.
		for i := range fires {
			fin := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
			if !fin(fires[i].Acres) {
				t.Fatalf("fire %d: non-finite acres", i)
			}
			for _, poly := range fires[i].Perimeter {
				for _, p := range poly.Exterior {
					if !fin(p.X) || !fin(p.Y) {
						t.Fatalf("fire %d: non-finite exterior vertex", i)
					}
				}
				for _, h := range poly.Holes {
					for _, p := range h {
						if !fin(p.X) || !fin(p.Y) {
							t.Fatalf("fire %d: non-finite hole vertex", i)
						}
					}
				}
			}
		}
		// And the writer must be able to serialize what the reader
		// accepted (write-read-write closure).
		out := Season{Year: 2000, Mapped: fires}
		if err := out.WriteGeoJSON(&bytes.Buffer{}, testWorld); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
	})
}
