package wildfire

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
)

// geoJSON wire types (the subset GeoMAC-style perimeter exports use).
type gjFeatureCollection struct {
	Type     string      `json:"type"`
	Features []gjFeature `json:"features"`
}

type gjFeature struct {
	Type       string                 `json:"type"`
	Properties map[string]interface{} `json:"properties"`
	Geometry   gjGeometry             `json:"geometry"`
}

type gjGeometry struct {
	Type        string           `json:"type"`
	Coordinates [][][][2]float64 `json:"coordinates"` // MultiPolygon
}

// WriteGeoJSON serializes a season's mapped fires as a GeoJSON
// FeatureCollection with geographic (lon/lat) MultiPolygon perimeters and
// GeoMAC-style properties.
func (s *Season) WriteGeoJSON(w io.Writer, world *conus.World) error {
	fc := gjFeatureCollection{Type: "FeatureCollection"}
	for i := range s.Mapped {
		f := &s.Mapped[i]
		coords := make([][][][2]float64, 0, len(f.Perimeter))
		for _, poly := range f.Perimeter {
			rings := make([][][2]float64, 0, 1+len(poly.Holes))
			rings = append(rings, ringToLonLat(poly.Exterior, world))
			for _, h := range poly.Holes {
				rings = append(rings, ringToLonLat(h, world))
			}
			coords = append(coords, rings)
		}
		fc.Features = append(fc.Features, gjFeature{
			Type: "Feature",
			Properties: map[string]interface{}{
				"incidentname":      f.Name,
				"fireyear":          f.Year,
				"gisacres":          f.Acres,
				"perimeterdatetime": fmt.Sprintf("%d-%03d", f.Year, f.EndDay),
				"roadcorridor":      f.RoadCorridor,
			},
			Geometry: gjGeometry{Type: "MultiPolygon", Coordinates: coords},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("wildfire: encoding GeoJSON: %w", err)
	}
	return nil
}

// maxGeoJSONVertices caps the total vertex count a FeatureCollection may
// carry before projection. Real GeoMAC-style exports trace perimeters at
// raster resolution — thousands of vertices per fire — so a million-plus
// total marks a corrupt or hostile file, and rejecting it up front keeps
// a small document from driving an arbitrarily large projection pass
// (the same posture as cellnet.ReadBinary's record cap and
// raster.ReadArcASCII's cell cap).
const maxGeoJSONVertices = 1 << 20

// ReadGeoJSON parses a perimeter FeatureCollection back into fires with
// projected perimeters. Properties not produced by WriteGeoJSON are
// ignored; missing names become "unknown".
//
// The reader is defensive, matching the binary and ArcASCII readers:
// non-finite or out-of-range lon/lat coordinates are rejected, the total
// vertex count is capped at maxGeoJSONVertices before any projection
// work, and every geometry error names the feature, polygon and ring it
// was found in.
func ReadGeoJSON(r io.Reader, world *conus.World) ([]Fire, error) {
	var fc gjFeatureCollection
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("wildfire: decoding GeoJSON: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("wildfire: not a FeatureCollection: %q", fc.Type)
	}
	fires := make([]Fire, 0, len(fc.Features))
	vertices := 0
	for i, ft := range fc.Features {
		if ft.Geometry.Type != "MultiPolygon" {
			return nil, fmt.Errorf("wildfire: feature %d: unsupported geometry %q", i, ft.Geometry.Type)
		}
		var mp geom.MultiPolygon
		for pi, rings := range ft.Geometry.Coordinates {
			if len(rings) == 0 {
				continue
			}
			for ri, ring := range rings {
				vertices += len(ring)
				if vertices > maxGeoJSONVertices {
					return nil, fmt.Errorf("wildfire: feature %d polygon %d ring %d: total vertex count exceeds the %d limit", i, pi, ri, maxGeoJSONVertices)
				}
				for vi, c := range ring {
					if err := checkLonLat(c[0], c[1]); err != nil {
						return nil, fmt.Errorf("wildfire: feature %d polygon %d ring %d vertex %d: %w", i, pi, ri, vi, err)
					}
				}
			}
			poly := geom.Polygon{Exterior: lonLatToRing(rings[0], world)}
			for _, h := range rings[1:] {
				poly.Holes = append(poly.Holes, lonLatToRing(h, world))
			}
			mp = append(mp, poly)
		}
		f := Fire{ID: i, Name: "unknown", Perimeter: mp, Acres: geom.Acres(mp.Area()), prep: &firePrep{}}
		if v, ok := ft.Properties["incidentname"].(string); ok {
			f.Name = v
		}
		if v, ok := ft.Properties["fireyear"].(float64); ok {
			f.Year = int(v)
		}
		if v, ok := ft.Properties["roadcorridor"].(bool); ok {
			f.RoadCorridor = v
		}
		if len(mp) > 0 {
			f.Ignition = mp.Centroid()
			f.StateIdx = world.StateAt(f.Ignition)
		}
		fires = append(fires, f)
	}
	return fires, nil
}

// checkLonLat rejects the coordinates ReadBinary's position guard
// rejects: NaN, infinities, and values outside the geographic range.
func checkLonLat(lon, lat float64) error {
	if math.IsNaN(lon) || math.IsNaN(lat) || math.IsInf(lon, 0) || math.IsInf(lat, 0) ||
		lon < -180 || lon > 180 || lat < -90 || lat > 90 {
		return fmt.Errorf("coordinate (%v, %v) outside lon/lat range", lon, lat)
	}
	return nil
}

func ringToLonLat(r geom.Ring, world *conus.World) [][2]float64 {
	out := make([][2]float64, 0, len(r)+1)
	for _, p := range r {
		ll := world.ToLonLat(p)
		out = append(out, [2]float64{ll.X, ll.Y})
	}
	if len(r) > 0 { // GeoJSON rings repeat the first vertex
		ll := world.ToLonLat(r[0])
		out = append(out, [2]float64{ll.X, ll.Y})
	}
	return out
}

func lonLatToRing(coords [][2]float64, world *conus.World) geom.Ring {
	pts := make([]geom.Point, 0, len(coords))
	for _, c := range coords {
		pts = append(pts, world.ToXY(geom.Point{X: c[0], Y: c[1]}))
	}
	return geom.NewRing(pts...)
}
