package wildfire

import (
	"math"
	"testing"
)

func TestComplexes(t *testing.T) {
	s := testSim.Season(SeasonConfig{
		Seed: 41, Year: 2017, TotalFires: 71499, TotalAcres: 1e7, MappedFires: 40,
	})
	complexes := s.Complexes()
	if len(complexes) == 0 {
		t.Fatal("no complexes")
	}
	// Every fire belongs to exactly one complex.
	seen := map[int]bool{}
	total := 0
	for _, c := range complexes {
		for _, fi := range c.Fires {
			if seen[fi] {
				t.Fatalf("fire %d in two complexes", fi)
			}
			seen[fi] = true
			total++
		}
		if c.Acres <= 0 {
			t.Error("complex without area")
		}
	}
	if total != len(s.Mapped) {
		t.Errorf("complexes cover %d of %d fires", total, len(s.Mapped))
	}
	// Sorted by acreage descending.
	for i := 1; i < len(complexes); i++ {
		if complexes[i].Acres > complexes[i-1].Acres {
			t.Fatal("complexes not sorted")
		}
	}
	// Acres sum matches the season's mapped acres.
	var sum float64
	for _, c := range complexes {
		sum += c.Acres
	}
	if math.Abs(sum-s.MappedAcres()) > 1 {
		t.Errorf("complex acres %.1f != season %.1f", sum, s.MappedAcres())
	}
}

func TestComplexesEmpty(t *testing.T) {
	if got := (&Season{}).Complexes(); got != nil {
		t.Errorf("empty season complexes = %v", got)
	}
}

func TestSeasonStats(t *testing.T) {
	s := testSim.Season(SeasonConfig{
		Seed: 43, Year: 2012, TotalFires: 67774, TotalAcres: 9.3e6, MappedFires: 50,
	})
	st := s.SeasonStats()
	if st.Mapped != len(s.Mapped) {
		t.Errorf("mapped = %d", st.Mapped)
	}
	if st.LargestAcres < st.MedianAcres {
		t.Error("largest below median")
	}
	if math.Abs(st.MappedAcres-s.MappedAcres()) > 1e-6 {
		t.Error("acres mismatch")
	}
	// Heavy tail: the top decile of fires carries a large share of the
	// burned area.
	if st.TopDecileShare < 0.3 {
		t.Errorf("top decile share = %.3f, want heavy concentration", st.TopDecileShare)
	}
	if st.TopDecileShare > 1 {
		t.Error("share above 1")
	}
}

func TestSeasonStatsEmpty(t *testing.T) {
	if st := (&Season{}).SeasonStats(); st.Mapped != 0 || st.MappedAcres != 0 {
		t.Error("empty stats")
	}
}
