package wildfire

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/whp"
)

var (
	testWorld = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testWHP   = whp.Build(testWorld, testWorld.Grid, whp.Config{})
	testSim   = NewSimulator(testWorld, testWHP)
)

func TestSeasonDeterministic(t *testing.T) {
	cfg := SeasonConfig{Seed: 5, Year: 2010, TotalFires: 50000, TotalAcres: 4e6, MappedFires: 10}
	a := testSim.Season(cfg)
	b := testSim.Season(cfg)
	if len(a.Mapped) != len(b.Mapped) {
		t.Fatalf("mapped counts differ: %d vs %d", len(a.Mapped), len(b.Mapped))
	}
	for i := range a.Mapped {
		if a.Mapped[i].Acres != b.Mapped[i].Acres || a.Mapped[i].Ignition != b.Mapped[i].Ignition {
			t.Fatalf("fire %d differs between identical runs", i)
		}
	}
}

func TestSeasonBasicShape(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 3, Year: 2012, TotalFires: 67774, TotalAcres: 9.3e6, MappedFires: 25})
	if s.TotalFires != 67774 || s.TotalAcres != 9.3e6 {
		t.Error("season statistics not carried through")
	}
	if len(s.Mapped) < 20 {
		t.Fatalf("mapped fires = %d, want ~25", len(s.Mapped))
	}
	// Mapped acres should approximate the mapped share of the total.
	ratio := s.MappedAcres() / (9.3e6 * 0.85)
	if ratio < 0.5 || ratio > 1.6 {
		t.Errorf("mapped acres ratio = %v (got %.0f acres)", ratio, s.MappedAcres())
	}
	for i := range s.Mapped {
		f := &s.Mapped[i]
		if f.Acres <= 0 {
			t.Errorf("fire %s has no area", f.Name)
		}
		if len(f.Perimeter) == 0 {
			t.Errorf("fire %s has no perimeter", f.Name)
		}
		if f.EndDay <= f.StartDay {
			t.Errorf("fire %s has non-positive duration", f.Name)
		}
		if f.Year != 2012 {
			t.Errorf("fire %s wrong year", f.Name)
		}
	}
}

func TestFireSizesHeavyTailed(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 11, Year: 2007, TotalFires: 85705, TotalAcres: 9.3e6, MappedFires: 60})
	if len(s.Mapped) < 40 {
		t.Fatalf("too few mapped fires: %d", len(s.Mapped))
	}
	var largest, sum float64
	for i := range s.Mapped {
		sum += s.Mapped[i].Acres
		if s.Mapped[i].Acres > largest {
			largest = s.Mapped[i].Acres
		}
	}
	// Heavy tail: the largest fire should carry >10% of the mapped area.
	if largest/sum < 0.08 {
		t.Errorf("largest fire carries only %.3f of mapped area; tail too light", largest/sum)
	}
}

func TestFirePerimeterContainsIgnition(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 13, Year: 2015, TotalFires: 68151, TotalAcres: 1e7, MappedFires: 15})
	for i := range s.Mapped {
		f := &s.Mapped[i]
		if !f.Perimeter.ContainsPoint(f.Ignition) {
			// The ignition cell always burns, so it must be enclosed.
			t.Errorf("fire %s: ignition outside perimeter", f.Name)
		}
	}
}

func TestFiresConcentrateInHazardousStates(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 17, Year: 2018, TotalFires: 58083, TotalAcres: 8.8e6, MappedFires: 80})
	west, midwest := 0, 0
	for i := range s.Mapped {
		si := s.Mapped[i].StateIdx
		if si < 0 {
			continue
		}
		switch geodata.States[si].Region {
		case geodata.RegionWest, geodata.RegionMountain, geodata.RegionSouthwest:
			west++
		case geodata.RegionMidwest:
			midwest++
		}
	}
	if west <= 3*midwest {
		t.Errorf("west fires %d vs midwest %d: hazard-weighted ignition too weak", west, midwest)
	}
}

func TestWindDrivesSpreadDownwind(t *testing.T) {
	// A wind-driven fire spreads preferentially downwind, so the ignition
	// point ends up displaced upwind of the burn's center. Terrain
	// heterogeneity adds noise, so require the signal over several seeds.
	ign := testWorld.ToXY(geom.Point{X: -120.8, Y: 39.3})
	var eastShift, northShift float64
	for seed := uint64(0); seed < 5; seed++ {
		fe := testSim.growFire(newTestSource(21+seed), "WindE", 2019, ign, 40000, 0, 0)
		fn := testSim.growFire(newTestSource(51+seed), "WindN", 2019, ign, 40000, 90, 0)
		if fe == nil || fn == nil {
			t.Fatal("fire did not ignite")
		}
		eastShift += fe.BBox().Center().X - ign.X
		northShift += fn.BBox().Center().Y - ign.Y
	}
	if eastShift <= 0 {
		t.Errorf("east wind: mean burn center shift = %v, want positive (downwind)", eastShift/5)
	}
	if northShift <= 0 {
		t.Errorf("north wind: mean burn center shift = %v, want positive (downwind)", northShift/5)
	}
}

func TestForcedIgnitions(t *testing.T) {
	s := Simulate2019(testSim, 7, 20)
	names := map[string]*Fire{}
	for i := range s.Mapped {
		names[s.Mapped[i].Name] = &s.Mapped[i]
	}
	for _, want := range []string{"Kincade", "Getty", "Saddle Ridge", "Tick"} {
		f, ok := names[want]
		if !ok {
			t.Errorf("anchor fire %s missing", want)
			continue
		}
		// Pinned near the real location (within ~60 km of the anchor).
		var anchor geodata.AnchorFire
		for _, a := range geodata.PaperFires2019 {
			if a.Name == want {
				anchor = a
			}
		}
		d := f.Ignition.DistanceTo(testWorld.ToXY(geom.Point{X: anchor.Lon, Y: anchor.Lat}))
		if d > 60000 {
			t.Errorf("%s ignition %v m from anchor", want, d)
		}
		// Size within a factor of ~2.5 of the target (raster effects).
		if f.Acres < anchor.Acres/2.5 || f.Acres > anchor.Acres*2.5 {
			t.Errorf("%s acres = %.0f, want ~%.0f", want, f.Acres, anchor.Acres)
		}
		if f.StateIdx < 0 || geodata.States[f.StateIdx].Abbrev != "CA" {
			t.Errorf("%s should be in California", want)
		}
	}
	if s.Year != 2019 {
		t.Error("season year")
	}
}

func TestSimulateHistoryCalibration(t *testing.T) {
	seasons := SimulateHistory(testSim, 7, 6)
	if len(seasons) != 19 {
		t.Fatalf("seasons = %d, want 19", len(seasons))
	}
	// Oldest first.
	if seasons[0].Year != 2000 || seasons[18].Year != 2018 {
		t.Errorf("year range %d..%d", seasons[0].Year, seasons[18].Year)
	}
	for _, s := range seasons {
		row, ok := geodata.PaperTable1ByYear(s.Year)
		if !ok {
			t.Fatalf("year %d missing from Table 1", s.Year)
		}
		if s.TotalFires != row.Fires {
			t.Errorf("%d: fires %d != Table 1 %d", s.Year, s.TotalFires, row.Fires)
		}
		if math.Abs(s.TotalAcres-row.AcresBurnedM*1e6) > 1 {
			t.Errorf("%d: acres %.0f != Table 1 %.1fM", s.Year, s.TotalAcres, row.AcresBurnedM)
		}
		if len(s.Mapped) == 0 {
			t.Errorf("%d: no mapped fires", s.Year)
		}
	}
}

func TestSeasonTreeQueries(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 23, Year: 2016, TotalFires: 67743, TotalAcres: 5.5e6, MappedFires: 20})
	if s.Tree.Len() != len(s.Mapped) {
		t.Fatalf("tree size %d != mapped %d", s.Tree.Len(), len(s.Mapped))
	}
	for i := range s.Mapped {
		hits := s.Tree.SearchPoint(s.Mapped[i].Ignition, nil)
		found := false
		for _, h := range hits {
			if h == i {
				found = true
			}
		}
		if !found {
			t.Errorf("fire %d not found at its own ignition", i)
		}
	}
}

func TestGeoJSONRoundTrip(t *testing.T) {
	s := testSim.Season(SeasonConfig{Seed: 29, Year: 2014, TotalFires: 63312, TotalAcres: 3.6e6, MappedFires: 8})
	var buf bytes.Buffer
	if err := s.WriteGeoJSON(&buf, testWorld); err != nil {
		t.Fatal(err)
	}
	fires, err := ReadGeoJSON(bytes.NewReader(buf.Bytes()), testWorld)
	if err != nil {
		t.Fatal(err)
	}
	if len(fires) != len(s.Mapped) {
		t.Fatalf("round trip %d fires != %d", len(fires), len(s.Mapped))
	}
	for i := range fires {
		orig := &s.Mapped[i]
		got := &fires[i]
		if got.Name != orig.Name || got.Year != orig.Year {
			t.Errorf("fire %d identity mismatch", i)
		}
		if math.Abs(got.Acres-orig.Acres)/orig.Acres > 0.02 {
			t.Errorf("fire %d acres %.1f vs %.1f", i, got.Acres, orig.Acres)
		}
		if got.RoadCorridor != orig.RoadCorridor {
			t.Errorf("fire %d roadcorridor flag lost", i)
		}
	}
}

func TestReadGeoJSONErrors(t *testing.T) {
	if _, err := ReadGeoJSON(bytes.NewReader([]byte("{")), testWorld); err == nil {
		t.Error("truncated JSON should error")
	}
	if _, err := ReadGeoJSON(bytes.NewReader([]byte(`{"type":"Feature"}`)), testWorld); err == nil {
		t.Error("non-collection should error")
	}
	bad := `{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"Point","coordinates":[]}}]}`
	if _, err := ReadGeoJSON(bytes.NewReader([]byte(bad)), testWorld); err == nil {
		t.Error("point geometry should error")
	}
}

// mpFeature builds a one-feature FeatureCollection around the given
// MultiPolygon coordinates JSON.
func mpFeature(coords string) []byte {
	return []byte(`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"MultiPolygon","coordinates":` + coords + `}}]}`)
}

func TestReadGeoJSONRejectsBadCoordinates(t *testing.T) {
	cases := map[string]string{
		"lon too big":   `[[[[200,40],[201,40],[201,41],[200,40]]]]`,
		"lon too small": `[[[[-200,40],[-199,40],[-199,41],[-200,40]]]]`,
		"lat too big":   `[[[[-100,95],[-99,95],[-99,96],[-100,95]]]]`,
		"lat too small": `[[[[-100,-95],[-99,-95],[-99,-94],[-100,-95]]]]`,
		// JSON cannot carry literal NaN/Inf, but a second ring keeps the
		// guard honest about reporting the polygon/ring coordinates.
		"bad hole": `[[[[-100,40],[-99,40],[-99,41],[-100,40]],[[-100,40],[-99,40],[-99,999],[-100,40]]]]`,
	}
	for name, coords := range cases {
		_, err := ReadGeoJSON(bytes.NewReader(mpFeature(coords)), testWorld)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "feature 0") {
			t.Errorf("%s: error lacks feature index: %v", name, err)
		}
		if !strings.Contains(err.Error(), "ring") {
			t.Errorf("%s: error lacks ring index: %v", name, err)
		}
	}
	// The hole error must name ring 1, not ring 0.
	_, err := ReadGeoJSON(bytes.NewReader(mpFeature(cases["bad hole"])), testWorld)
	if err == nil || !strings.Contains(err.Error(), "ring 1") {
		t.Errorf("hole error lacks ring 1: %v", err)
	}
}

func TestReadGeoJSONCapsVertexCount(t *testing.T) {
	// Build a single ring one vertex over the cap. The guard must fire
	// before any projection work, naming the feature and ring.
	var sb strings.Builder
	sb.WriteString(`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"MultiPolygon","coordinates":[[[`)
	for i := 0; i <= maxGeoJSONVertices; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[-100,%d]", 30+i%10)
	}
	sb.WriteString(`]]]}}]}`)
	_, err := ReadGeoJSON(strings.NewReader(sb.String()), testWorld)
	if err == nil {
		t.Fatal("over-cap ring accepted")
	}
	if !strings.Contains(err.Error(), "vertex count") || !strings.Contains(err.Error(), "feature 0") {
		t.Errorf("cap error unhelpful: %v", err)
	}
	// The cap is on the collection total: two features sharing it also
	// trip the guard.
	half := maxGeoJSONVertices/2 + 1
	var ring strings.Builder
	for i := 0; i < half; i++ {
		if i > 0 {
			ring.WriteByte(',')
		}
		fmt.Fprintf(&ring, "[-100,%d]", 30+i%10)
	}
	feat := `{"type":"Feature","properties":{},"geometry":{"type":"MultiPolygon","coordinates":[[[` + ring.String() + `]]]}}`
	doc := `{"type":"FeatureCollection","features":[` + feat + `,` + feat + `]}`
	_, err = ReadGeoJSON(strings.NewReader(doc), testWorld)
	if err == nil || !strings.Contains(err.Error(), "feature 1") {
		t.Errorf("total cap error: %v", err)
	}
}

func TestGrowFireOcean(t *testing.T) {
	// Igniting in the Pacific must fail cleanly.
	f := testSim.growFire(newTestSource(31), "Ocean", 2019,
		testWorld.ToXY(geom.Point{X: -130, Y: 40}), 1000, 0, 0)
	if f != nil {
		t.Error("ocean ignition should return nil")
	}
}

func BenchmarkGrowFire10k(b *testing.B) {
	ign := testWorld.ToXY(geom.Point{X: -120.8, Y: 39.3})
	for i := 0; i < b.N; i++ {
		_ = testSim.growFire(newTestSource(uint64(i)), "Bench", 2019, ign, 10000, 45, 0)
	}
}

func BenchmarkSeason(b *testing.B) {
	cfg := SeasonConfig{Seed: 5, Year: 2010, TotalFires: 50000, TotalAcres: 4e6, MappedFires: 20}
	for i := 0; i < b.N; i++ {
		_ = testSim.Season(cfg)
	}
}
