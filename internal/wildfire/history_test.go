package wildfire

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// The parallel history must be bit-identical to the serial one: every
// season draws from its own rng stream, so scheduling cannot leak into
// the results.
func TestSimulateHistoryParallelMatchesSerial(t *testing.T) {
	serial := SimulateHistory(testSim, 7, 4)
	parallel := SimulateHistoryParallel(testSim, 7, 4, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("season counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Year != b.Year || a.TotalFires != b.TotalFires || a.TotalAcres != b.TotalAcres {
			t.Fatalf("season %d statistics differ: %+v vs %+v", i, a, b)
		}
		if len(a.Mapped) != len(b.Mapped) {
			t.Fatalf("season %d mapped counts differ: %d vs %d", i, len(a.Mapped), len(b.Mapped))
		}
		for j := range a.Mapped {
			fa, fb := &a.Mapped[j], &b.Mapped[j]
			if fa.Acres != fb.Acres || fa.Ignition != fb.Ignition ||
				fa.Name != fb.Name || fa.StartDay != fb.StartDay {
				t.Fatalf("season %d fire %d differs: %+v vs %+v", i, j, fa, fb)
			}
		}
	}
}

// Worker counts beyond the season count and the GOMAXPROCS default both
// produce the same ordered output.
func TestSimulateHistoryParallelWorkerBounds(t *testing.T) {
	a := SimulateHistoryParallel(testSim, 3, 2, 100)
	b := SimulateHistoryParallel(testSim, 3, 2, 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Year != b[i].Year || a[i].MappedAcres() != b[i].MappedAcres() {
			t.Fatalf("season %d differs across worker counts", i)
		}
	}
}

// A pre-cancelled context simulates nothing and returns ctx.Err() with
// the progress count; no partial history escapes.
func TestSimulateHistoryContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seasons, err := SimulateHistoryContext(ctx, testSim, 7, 2, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if seasons != nil {
		t.Fatal("cancelled history returned a partial season slice")
	}
	if !strings.Contains(err.Error(), "0 of 19") {
		t.Errorf("error lacks progress info: %v", err)
	}
}

// errAfterCalls is a context whose Err flips to Canceled after a fixed
// number of polls. Workers poll once before claiming each season, so
// with one worker the budget below deterministically allows exactly one
// season before cancellation lands at the season boundary.
type errAfterCalls struct {
	context.Context
	mu        sync.Mutex
	remaining int
}

func (c *errAfterCalls) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

// Cancellation between seasons: the first season completes, the second
// is never claimed, and the partial count is reported — never a partial
// slice.
func TestSimulateHistoryContextCancelBetweenSeasons(t *testing.T) {
	ctx := &errAfterCalls{Context: context.Background(), remaining: 1}
	seasons, err := SimulateHistoryContext(ctx, testSim, 7, 2, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if seasons != nil {
		t.Fatal("cancelled history returned a partial season slice")
	}
	if !strings.Contains(err.Error(), "1 of 19") {
		t.Errorf("error lacks season-boundary progress: %v", err)
	}
}

// With an inert context the ctx-aware path is bit-identical to the
// infallible wrapper.
func TestSimulateHistoryContextMatchesParallel(t *testing.T) {
	a := SimulateHistoryParallel(testSim, 11, 2, 4)
	b, err := SimulateHistoryContext(context.Background(), testSim, 11, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Year != b[i].Year || a[i].MappedAcres() != b[i].MappedAcres() {
			t.Fatalf("season %d differs", i)
		}
	}
}
