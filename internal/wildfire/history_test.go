package wildfire

import "testing"

// The parallel history must be bit-identical to the serial one: every
// season draws from its own rng stream, so scheduling cannot leak into
// the results.
func TestSimulateHistoryParallelMatchesSerial(t *testing.T) {
	serial := SimulateHistory(testSim, 7, 4)
	parallel := SimulateHistoryParallel(testSim, 7, 4, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("season counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Year != b.Year || a.TotalFires != b.TotalFires || a.TotalAcres != b.TotalAcres {
			t.Fatalf("season %d statistics differ: %+v vs %+v", i, a, b)
		}
		if len(a.Mapped) != len(b.Mapped) {
			t.Fatalf("season %d mapped counts differ: %d vs %d", i, len(a.Mapped), len(b.Mapped))
		}
		for j := range a.Mapped {
			fa, fb := &a.Mapped[j], &b.Mapped[j]
			if fa.Acres != fb.Acres || fa.Ignition != fb.Ignition ||
				fa.Name != fb.Name || fa.StartDay != fb.StartDay {
				t.Fatalf("season %d fire %d differs: %+v vs %+v", i, j, fa, fb)
			}
		}
	}
}

// Worker counts beyond the season count and the GOMAXPROCS default both
// produce the same ordered output.
func TestSimulateHistoryParallelWorkerBounds(t *testing.T) {
	a := SimulateHistoryParallel(testSim, 3, 2, 100)
	b := SimulateHistoryParallel(testSim, 3, 2, 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Year != b[i].Year || a[i].MappedAcres() != b[i].MappedAcres() {
			t.Fatalf("season %d differs across worker counts", i)
		}
	}
}
