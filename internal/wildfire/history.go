package wildfire

import (
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

// SimulateHistory runs the 2000-2018 seasons with fire counts and burned
// acres calibrated to the paper's Table 1 marginals. mappedPerSeason
// controls simulation cost (0 selects the default).
func SimulateHistory(sim *Simulator, seed uint64, mappedPerSeason int) []*Season {
	out := make([]*Season, 0, len(geodata.PaperTable1))
	// Table 1 is listed newest-first; simulate oldest-first.
	for i := len(geodata.PaperTable1) - 1; i >= 0; i-- {
		row := geodata.PaperTable1[i]
		out = append(out, sim.Season(SeasonConfig{
			Seed:        seed,
			Year:        row.Year,
			TotalFires:  row.Fires,
			TotalAcres:  row.AcresBurnedM * 1e6,
			MappedFires: mappedPerSeason,
		}))
	}
	return out
}

// Simulate2019 runs the held-out validation season: the named anchor
// fires of §3.2/§3.4 (Kincade, Getty, and the road-corridor Saddle Ridge
// and Tick fires) pinned at their real locations, plus a background of
// additional 2019 fires. 2019 burned ~4.66M acres nationally.
func Simulate2019(sim *Simulator, seed uint64, mappedFires int) *Season {
	forced := make([]ForcedIgnition, 0, len(geodata.PaperFires2019))
	for _, f := range geodata.PaperFires2019 {
		forced = append(forced, ForcedIgnition{
			Name:   f.Name,
			LonLat: geom.Point{X: f.Lon, Y: f.Lat},
			Acres:  f.Acres,
			// Santa Ana/Diablo: offshore winds blowing to the southwest,
			// strong enough to drive the fire across low-fuel fringes
			// toward the built-up areas.
			WindDeg:      225,
			WindStrength: 2.2,
		})
	}
	return sim.Season(SeasonConfig{
		Seed:            seed,
		Year:            2019,
		TotalFires:      50477,
		TotalAcres:      4.664e6,
		MappedFires:     mappedFires,
		ForcedIgnitions: forced,
	})
}
