package wildfire

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

// historyConfigs lists the 2000-2018 season configurations oldest-first
// (Table 1 is listed newest-first).
func historyConfigs(seed uint64, mappedPerSeason int) []SeasonConfig {
	out := make([]SeasonConfig, 0, len(geodata.PaperTable1))
	for i := len(geodata.PaperTable1) - 1; i >= 0; i-- {
		row := geodata.PaperTable1[i]
		out = append(out, SeasonConfig{
			Seed:        seed,
			Year:        row.Year,
			TotalFires:  row.Fires,
			TotalAcres:  row.AcresBurnedM * 1e6,
			MappedFires: mappedPerSeason,
		})
	}
	return out
}

// SimulateHistory runs the 2000-2018 seasons with fire counts and burned
// acres calibrated to the paper's Table 1 marginals. mappedPerSeason
// controls simulation cost (0 selects the default).
func SimulateHistory(sim *Simulator, seed uint64, mappedPerSeason int) []*Season {
	cfgs := historyConfigs(seed, mappedPerSeason)
	out := make([]*Season, 0, len(cfgs))
	for _, cfg := range cfgs {
		out = append(out, sim.Season(cfg))
	}
	return out
}

// SimulateHistoryParallel simulates the same 2000-2018 seasons across
// bounded workers (0 selects GOMAXPROCS). Every season draws from its
// own rng stream keyed by year and the simulator is read-only after
// construction, so the output is bit-identical to SimulateHistory
// regardless of scheduling — only wall-clock time changes.
func SimulateHistoryParallel(sim *Simulator, seed uint64, mappedPerSeason, workers int) []*Season {
	// context.Background never cancels, so the error is unreachable.
	out, _ := SimulateHistoryContext(context.Background(), sim, seed, mappedPerSeason, workers) //fivealarms:allow(errflow) context.Background never cancels, so the error is unreachable
	return out
}

// SimulateHistoryContext is SimulateHistoryParallel under a context,
// honoring cancellation between seasons: a cancelled ctx stops workers
// from claiming further seasons, the seasons already in flight run to
// completion (a season is the cancellation granularity), and the call
// returns a nil slice with an error wrapping ctx.Err() and the progress
// made — partial histories never escape.
func SimulateHistoryContext(ctx context.Context, sim *Simulator, seed uint64, mappedPerSeason, workers int) ([]*Season, error) {
	cfgs := historyConfigs(seed, mappedPerSeason)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]*Season, len(cfgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				out[i] = sim.Season(cfgs[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		done := 0
		for _, s := range out {
			if s != nil {
				done++
			}
		}
		// A context that fired only after the last season completed did
		// not cost us anything: the full history is valid.
		if done != len(cfgs) {
			return nil, fmt.Errorf("wildfire: history simulation cancelled after %d of %d seasons: %w", done, len(cfgs), err)
		}
	}
	return out, nil
}

// Simulate2019 runs the held-out validation season: the named anchor
// fires of §3.2/§3.4 (Kincade, Getty, and the road-corridor Saddle Ridge
// and Tick fires) pinned at their real locations, plus a background of
// additional 2019 fires. 2019 burned ~4.66M acres nationally.
func Simulate2019(sim *Simulator, seed uint64, mappedFires int) *Season {
	forced := make([]ForcedIgnition, 0, len(geodata.PaperFires2019))
	for _, f := range geodata.PaperFires2019 {
		forced = append(forced, ForcedIgnition{
			Name:   f.Name,
			LonLat: geom.Point{X: f.Lon, Y: f.Lat},
			Acres:  f.Acres,
			// Santa Ana/Diablo: offshore winds blowing to the southwest,
			// strong enough to drive the fire across low-fuel fringes
			// toward the built-up areas.
			WindDeg:      225,
			WindStrength: 2.2,
		})
	}
	return sim.Season(SeasonConfig{
		Seed:            seed,
		Year:            2019,
		TotalFires:      50477,
		TotalAcres:      4.664e6,
		MappedFires:     mappedFires,
		ForcedIgnitions: forced,
	})
}
