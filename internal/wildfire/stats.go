package wildfire

import (
	"math"
	"sort"

	"fivealarms/internal/geom"
)

// Complex is a group of fires whose perimeters touch or overlap — the
// "fire complex" unit GeoMAC and incident command use when separate
// ignitions merge.
type Complex struct {
	// Fires holds indexes into Season.Mapped.
	Fires []int
	// Acres is the summed area (overlap counted twice, as incident
	// reporting does).
	Acres float64
}

// Complexes groups the season's mapped fires into complexes with a
// union-find over perimeter intersection, largest complex first.
func (s *Season) Complexes() []Complex {
	n := len(s.Mapped)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Candidate pairs via the season R-tree, confirmed by exterior-ring
	// intersection.
	var buf []int
	for i := range s.Mapped {
		buf = s.Tree.Search(s.Mapped[i].BBox(), buf[:0])
		for _, j := range buf {
			if j <= i {
				continue
			}
			if perimetersTouch(&s.Mapped[i], &s.Mapped[j]) {
				union(i, j)
			}
		}
	}

	groups := map[int]*Complex{}
	for i := range s.Mapped {
		r := find(i)
		c := groups[r]
		if c == nil {
			c = &Complex{}
			groups[r] = c
		}
		c.Fires = append(c.Fires, i)
		c.Acres += s.Mapped[i].Acres
	}
	out := make([]Complex, 0, len(groups))
	for _, c := range groups {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Acres != out[j].Acres {
			return out[i].Acres > out[j].Acres
		}
		return out[i].Fires[0] < out[j].Fires[0]
	})
	return out
}

func perimetersTouch(a, b *Fire) bool {
	for _, pa := range a.Perimeter {
		for _, pb := range b.Perimeter {
			if geom.RingsIntersect(pa.Exterior, pb.Exterior) {
				return true
			}
		}
	}
	return false
}

// Stats summarizes a season's mapped-fire size distribution.
type Stats struct {
	Mapped       int
	MappedAcres  float64
	LargestAcres float64
	MedianAcres  float64
	// GiniLike is the share of mapped area in the top decile of fires —
	// the concentration statistic behind Table 1's variability.
	TopDecileShare float64
}

// SeasonStats computes the summary.
func (s *Season) SeasonStats() Stats {
	n := len(s.Mapped)
	if n == 0 {
		return Stats{}
	}
	sizes := make([]float64, n)
	var sum float64
	for i := range s.Mapped {
		sizes[i] = s.Mapped[i].Acres
		sum += sizes[i]
	}
	sort.Float64s(sizes)
	st := Stats{
		Mapped:       n,
		MappedAcres:  sum,
		LargestAcres: sizes[n-1],
		MedianAcres:  sizes[n/2],
	}
	k := int(math.Ceil(float64(n) / 10))
	var top float64
	for _, v := range sizes[n-k:] {
		top += v
	}
	if sum > 0 {
		st.TopDecileShare = top / sum
	}
	return st
}
