package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fivealarms"
)

// cliStudy is a minimal study: the CLI tests exercise dispatch and
// rendering, not statistical shape.
var cliStudy = fivealarms.NewStudy(fivealarms.Config{
	Seed: 7, CellSizeM: 40000, Transceivers: 10000, MappedFiresPerSeason: 5,
})

func TestRunEveryExperiment(t *testing.T) {
	for _, exp := range Experiments {
		tables, err := Run(cliStudy, exp)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", exp)
		}
		for _, tb := range tables {
			if tb.Title == "" {
				t.Errorf("%s: table missing title", exp)
			}
			if len(tb.Rows) == 0 {
				t.Errorf("%s: table %q has no rows", exp, tb.Title)
			}
		}
	}
}

func TestRunAliases(t *testing.T) {
	a, err := Run(cliStudy, "casestudy")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cliStudy, "FIG5")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Error("casestudy and fig5 should be equivalent")
	}
}

func TestRunAll(t *testing.T) {
	tables, err := Run(cliStudy, "all")
	if err != nil {
		t.Fatal(err)
	}
	// "all" includes fig5 which emits two tables.
	if len(tables) < len(Experiments) {
		t.Errorf("all produced %d tables, want >= %d", len(tables), len(Experiments))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(cliStudy, "fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestEmitFormats(t *testing.T) {
	tables, err := Run(cliStudy, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]

	var buf bytes.Buffer
	if err := Emit(&buf, tb, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "moderate") {
		t.Error("text output missing data")
	}

	buf.Reset()
	if err := Emit(&buf, tb, "csv"); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 4 {
		t.Errorf("csv lines = %d", lines)
	}

	buf.Reset()
	if err := Emit(&buf, tb, "json"); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]string
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("json output invalid: %v", err)
	}

	if err := Emit(&buf, tb, "xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestUsageListsEverything(t *testing.T) {
	u := Usage()
	for _, exp := range Experiments {
		if !strings.Contains(u, exp) {
			t.Errorf("usage missing %s", exp)
		}
	}
	if !strings.Contains(u, "all") {
		t.Error("usage missing all")
	}
}

func TestDescriptionsComplete(t *testing.T) {
	for _, exp := range Experiments {
		if Descriptions[exp] == "" {
			t.Errorf("no description for %s", exp)
		}
	}
}
