// Package cli implements the experiment-runner logic behind
// cmd/fivealarms: mapping experiment names to analyses and rendering the
// results. Kept out of package main so it is testable.
package cli

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fivealarms"
	"fivealarms/internal/report"
	"fivealarms/internal/risk"
	"fivealarms/internal/serve/api"
)

// Experiments lists the runnable experiment names (excluding "all"), in
// presentation order.
var Experiments = []string{
	"table1", "table2", "table3", "fig5", "fig7", "fig8", "fig9",
	"fig10", "fig12", "fig14", "validate", "extend", "mitigation",
	"coverage", "escape", "wui", "harden", "extendfine", "emergency", "fig4daily",
}

// Descriptions maps experiment names to one-line help strings.
var Descriptions = map[string]string{
	"table1":     "annual fires, acres and transceivers in perimeters (Table 1)",
	"table2":     "provider risk breakdown (Table 2)",
	"table3":     "radio-technology risk breakdown (Table 3)",
	"fig5":       "fall-2019 PSPS case study daily outage series (Figure 5)",
	"fig7":       "transceivers per WHP class (Figure 7)",
	"fig8":       "top states by at-risk transceivers (Figure 8)",
	"fig9":       "per-capita state ranking (Figure 9)",
	"fig10":      "WHP x county-density impact matrix (Figure 10)",
	"fig12":      "metro-area comparison (Figure 12)",
	"fig14":      "SLC-Denver corridor future risk (Figure 14)",
	"validate":   "2019 hold-out WHP validation (section 3.4)",
	"extend":     "half-mile very-high extension (section 3.8)",
	"extendfine": "fine-resolution half-mile extension over the CA window (section 3.8)",
	"casestudy":  "alias for fig5",
	"mitigation": "backup-power ablation (section 3.10)",
	"coverage":   "population served by at-risk transceivers (section 3.11)",
	"escape":     "HOT escape probabilities by state (section 3.11)",
	"wui":        "at-risk concentration in the wildland-urban interface (section 3.7)",
	"harden":     "site-hardening priority plan (section 3.10)",
	"emergency":  "population without coverage per PSPS day (section 3.10)",
	"fig4daily":  "daily transceivers inside active perimeters (finer Figure 4)",
	"all":        "everything above",
}

// Run executes one experiment (or "all") over the study and returns the
// result tables.
func Run(study *fivealarms.Study, exp string) ([]*report.Table, error) {
	one := func(t *report.Table) []*report.Table { return []*report.Table{t} }
	switch strings.ToLower(exp) {
	case "table1":
		return one(report.Table1(api.Table1From(study.Table1()))), nil
	case "table2":
		return one(report.Table2(api.Table2From(study.Table2()))), nil
	case "table3":
		return one(report.Table3(api.Table3From(study.Table3()))), nil
	case "fig5", "casestudy":
		cs := study.CaseStudy()
		return []*report.Table{report.CaseStudy(cs), report.Fig5(cs.Series)}, nil
	case "fig7":
		return one(report.Fig7(api.WHPOverlayFrom(study.WHPOverlay()))), nil
	case "fig8":
		return one(report.Fig8(study.WHPOverlay(), 10)), nil
	case "fig9":
		return one(report.Fig9(study.WHPOverlay(), 10)), nil
	case "fig10":
		return one(report.Fig10(study.Impact())), nil
	case "fig12":
		return one(report.Fig12(study.Metros())), nil
	case "fig14":
		return one(report.Fig14(study.Future())), nil
	case "validate":
		return one(report.Validation(api.ValidationFrom(study.Validate()))), nil
	case "extend":
		// The coarse path of the unified entry point buffers by
		// max(0.5 mi, one cell) so coarse rasters can grow.
		return one(report.Extension(api.ExtendFrom(study.ExtendWith(fivealarms.ExtendOptions{})))), nil
	case "extendfine":
		return one(extendFineTable(study)), nil
	case "coverage":
		return one(coverageTable(study)), nil
	case "escape":
		return one(escapeTable(study)), nil
	case "wui":
		return one(wuiTable(study)), nil
	case "harden":
		return one(hardenTable(study)), nil
	case "emergency":
		return one(emergencyTable(study)), nil
	case "fig4daily":
		return one(dailyTable(study)), nil
	case "mitigation":
		return one(mitigationTable(study)), nil
	case "all":
		var out []*report.Table
		for _, e := range Experiments {
			ts, err := Run(study, e)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("cli: unknown experiment %q", exp)
}

func extendFineTable(study *fivealarms.Study) *report.Table {
	// Pick the window cell size relative to the study scale: the paper's
	// 270 m WHP supports the 804 m buffer directly; a laptop study uses
	// 800 m cells.
	res := api.ExtendFrom(study.ExtendWith(fivealarms.ExtendOptions{CellSizeM: 800}))
	t := &report.Table{
		Title:  "Fine-resolution half-mile extension over the CA window (section 3.8)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("window cell size (m)", report.F1(res.CellSizeM), "270")
	t.AddRow("buffer distance (m)", report.F1(res.DistM), "804.67")
	t.AddRow("window transceivers", report.Itoa(res.WindowTransceivers), "-")
	t.AddRow("in 2019 perimeters", report.Itoa(res.InPerimeter), "656 (national)")
	t.AddRow("very-high before -> after", report.Itoa(res.VHBefore)+" -> "+report.Itoa(res.VHAfter), "26,307 -> 176,275")
	t.AddRow("accuracy before", report.Pct(res.AccuracyBeforePct), "46%")
	t.AddRow("accuracy after", report.Pct(res.AccuracyAfterPct), "62%")
	return t
}

func coverageTable(study *fivealarms.Study) *report.Table {
	cv := study.Coverage(0)
	t := &report.Table{
		Title:  "Coverage impact: population served by at-risk transceivers (abstract / section 3.11)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("total population", report.Itoa(int(cv.TotalPopulation)), "~327M")
	t.AddRow("served by any transceiver", report.Itoa(int(cv.ServedPopulation)), "-")
	t.AddRow("served by at-risk transceivers", report.Itoa(int(cv.AtRiskServedPopulation)), ">85,000,000")
	t.AddRow("stranded if all at-risk fail", report.Itoa(int(cv.StrandedPopulation)), "-")
	t.AddRow("serving radius (m)", report.F1(cv.RadiusM), "-")
	return t
}

func escapeTable(study *fivealarms.Study) *report.Table {
	rows := study.Escape(0)
	t := &report.Table{
		Title:  "HOT escape probabilities by state (section 3.11 extension)",
		Header: []string{"State", "Escape P(>300 acres)", "Expected loss (acres)", "At-risk transceivers"},
	}
	for i, r := range rows {
		if i >= 15 {
			break
		}
		t.AddRow(r.Abbrev, report.F2(r.Escape*100)+"%",
			report.F1(r.ExpectedLossAcres), report.Itoa(r.AtRiskTransceivers))
	}
	return t
}

func wuiTable(study *fivealarms.Study) *report.Table {
	res := study.WUI()
	t := &report.Table{
		Title:  "Wildland-Urban Interface concentration (paper section 3.7)",
		Header: []string{"Metric", "Measured"},
	}
	t.AddRow("at-risk transceivers in WUI", report.Itoa(res.AtRiskInWUI))
	t.AddRow("at-risk WUI share", report.Pct(100*res.AtRiskWUIShare()))
	t.AddRow("fleet WUI share (baseline)", report.Pct(100*res.BaselineWUIShare()))
	t.AddRow("concentration (at-risk vs fleet)", report.F2(res.Concentration())+"x")
	t.AddRow("population living in WUI", report.Itoa(int(res.WUIPopulation)))
	t.AddRow("LA-window at-risk WUI transceivers", report.Itoa(res.MetroWUI["Los Angeles"]))
	return t
}

func dailyTable(study *fivealarms.Study) *report.Table {
	series := study.Analyzer.SeasonExposure(study.Season2019())
	t := &report.Table{
		Title:  "Daily exposure within the 2019 season (a finer-grained Figure 4)",
		Header: []string{"Day of year", "Active fires", "Transceivers in active perimeters"},
	}
	// Print every fifth day plus the peak to keep the table readable.
	peak := risk.PeakExposure(series)
	for i, d := range series {
		if i%5 != 0 && d.DayOfYear != peak.DayOfYear {
			continue
		}
		t.AddRow(report.Itoa(d.DayOfYear), report.Itoa(d.ActiveFires), report.Itoa(d.Transceivers))
	}
	t.AddRow("peak day "+report.Itoa(peak.DayOfYear), report.Itoa(peak.ActiveFires), report.Itoa(peak.Transceivers))
	return t
}

func emergencyTable(study *fivealarms.Study) *report.Table {
	res := study.Emergency()
	t := &report.Table{
		Title:  "Emergency-calling exposure during the PSPS event (section 3.10)",
		Header: []string{"Day", "Population without coverage"},
	}
	for d, v := range res.StrandedByDay {
		t.AddRow(res.DayLabels[d], report.Itoa(int(v)))
	}
	t.AddRow("peak", report.Itoa(int(res.PeakStranded)))
	t.AddRow("person-days", report.Itoa(int(res.PersonDays)))
	t.AddRow("wireless-911 person-days (80%)", report.Itoa(int(res.At911Risk)))
	return t
}

func hardenTable(study *fivealarms.Study) *report.Table {
	res := study.Harden(15)
	t := &report.Table{
		Title:  "Hardening priority plan: 15 sites (paper section 3.10)",
		Header: []string{"Rank", "Site", "Transceivers", "Marginal population protected"},
	}
	for i, s := range res.Sites {
		t.AddRow(report.Itoa(i+1), report.Itoa(int(s.SiteID)),
			report.Itoa(s.Transceivers), report.Itoa(int(s.Gain)))
	}
	t.AddRow("total", "-", "-", report.Itoa(int(res.ProtectedPopulation)))
	t.AddRow("ceiling (all at-risk sites)", "-", "-", report.Itoa(int(res.CandidatePopulation)))
	return t
}

func mitigationTable(study *fivealarms.Study) *report.Table {
	pts := study.Analyzer.MitigationSweep(study.Season2019(),
		[]float64{4, 8, 24, 48, 72}, study.Cfg.Seed)
	t := &report.Table{
		Title:  "Mitigation: backup-power sweep (paper section 3.10)",
		Header: []string{"Mean battery hours", "Peak sites out", "Peak power-loss outages"},
	}
	for _, p := range pts {
		t.AddRow(report.F1(p.MeanBatteryHours), report.Itoa(p.PeakOut), report.Itoa(p.PeakPowerOut))
	}
	return t
}

// Emit writes a table in the requested format ("text", "csv" or "json").
func Emit(w io.Writer, t *report.Table, format string) error {
	switch format {
	case "text":
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return fmt.Errorf("cli: writing table: %w", err)
		}
		return nil
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	}
	return fmt.Errorf("cli: unknown format %q", format)
}

// Usage renders the experiment list for help output.
func Usage() string {
	var b strings.Builder
	names := append(append([]string{}, Experiments...), "casestudy", "all")
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-10s %s\n", n, Descriptions[n])
	}
	return b.String()
}
