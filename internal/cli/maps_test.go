package cli

import (
	"bytes"
	"testing"

	"fivealarms/internal/whp"
)

func TestBuildMapLayerAll(t *testing.T) {
	for _, layer := range MapLayers {
		classes, pal, err := BuildMapLayer(cliStudy, layer, MapOptions{Lon: -118, Lat: 34, KM: 100, WindowCell: 8000})
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if classes.Cells() == 0 {
			t.Fatalf("%s: empty grid", layer)
		}
		if len(pal) == 0 {
			t.Fatalf("%s: empty palette", layer)
		}
		// Every layer renders to a valid PNG.
		var buf bytes.Buffer
		if err := classes.WritePNG(&buf, pal); err != nil {
			t.Fatalf("%s: PNG: %v", layer, err)
		}
		if buf.Len() < 8 || string(buf.Bytes()[1:4]) != "PNG" {
			t.Fatalf("%s: not a PNG", layer)
		}
	}
}

func TestBuildMapLayerUnknown(t *testing.T) {
	if _, _, err := BuildMapLayer(cliStudy, "nosuch", MapOptions{}); err == nil {
		t.Error("unknown layer should error")
	}
}

func TestMetroLayerMarksTransceivers(t *testing.T) {
	classes, _, err := BuildMapLayer(cliStudy, "metro", MapOptions{Lon: -118, Lat: 34, KM: 150, WindowCell: 8000})
	if err != nil {
		t.Fatal(err)
	}
	h := classes.Histogram()
	if h[TxMarker] == 0 {
		t.Error("no at-risk transceivers marked in the LA window")
	}
	if h[uint8(whp.NonBurnable)] == 0 {
		t.Error("LA window should contain a nonburnable core")
	}
}

func TestMarkedPalette(t *testing.T) {
	pal := MarkedPalette()
	if _, ok := pal[TxMarker]; !ok {
		t.Error("marker color missing")
	}
	if _, ok := pal[uint8(whp.VeryHigh)]; !ok {
		t.Error("WHP colors missing")
	}
}
