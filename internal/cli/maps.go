package cli

import (
	"fmt"
	"image/color"

	"fivealarms"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/whp"
	"fivealarms/internal/wui"
)

// TxMarker is the class code map layers use to draw transceiver positions
// over a WHP base layer.
const TxMarker = 9

// MapOptions parameterizes BuildMapLayer.
type MapOptions struct {
	// Lon/Lat/KM/WindowCell configure the metro window layer.
	Lon, Lat, KM, WindowCell float64
}

// MapLayers lists the renderable layer names.
var MapLayers = []string{"whp", "extended", "wui", "density", "fires2019", "history", "metro"}

// BuildMapLayer produces a class grid plus palette for the requested map
// layer (the whpmap command's engine).
func BuildMapLayer(study *fivealarms.Study, layer string, opt MapOptions) (*raster.ClassGrid, raster.Palette, error) {
	switch layer {
	case "whp":
		return study.WHP.Classes, MarkedPalette(), nil
	case "extended":
		dist := 804.67
		if c := study.World.Grid.CellSize; dist < c {
			dist = c
		}
		return study.Analyzer.ExtendedClasses(dist), MarkedPalette(), nil
	case "wui":
		m := wui.Build(study.World, study.Counties, study.WHP, wui.Config{})
		pal := raster.Palette{
			uint8(wui.NonWUI):    {R: 25, G: 25, B: 25, A: 255},
			uint8(wui.Interface): {R: 250, G: 160, B: 60, A: 255},
			uint8(wui.Intermix):  {R: 220, G: 60, B: 40, A: 255},
		}
		return m.Classes, pal, nil
	case "density":
		return densityLayer(study)
	case "fires2019", "history":
		var mask *raster.BitGrid
		if layer == "fires2019" {
			mask = study.Season2019UnionMask()
		} else {
			mask = study.HistoryUnionMask()
		}
		g := study.World.Grid
		out := raster.NewClassGrid(g)
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				if mask.Get(cx, cy) {
					out.Set(cx, cy, uint8(whp.VeryHigh)) // burned renders red
				} else if study.World.Inside.Get(cx, cy) {
					out.Set(cx, cy, uint8(whp.VeryLow))
				}
			}
		}
		return out, MarkedPalette(), nil
	case "metro":
		return metroLayer(study, opt)
	}
	return nil, nil, fmt.Errorf("cli: unknown map layer %q", layer)
}

// densityLayer bins transceivers onto the world grid (Figure 2).
func densityLayer(study *fivealarms.Study) (*raster.ClassGrid, raster.Palette, error) {
	g := study.World.Grid
	out := raster.NewClassGrid(g)
	counts := raster.NewFloatGrid(g)
	for i := range study.Data.T {
		if cx, cy, ok := g.CellOf(study.Data.T[i].XY); ok {
			counts.Set(cx, cy, counts.At(cx, cy)+1)
		}
	}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			switch n := counts.At(cx, cy); {
			case n == 0:
			case n < 3:
				out.Set(cx, cy, 1)
			case n < 20:
				out.Set(cx, cy, 2)
			default:
				out.Set(cx, cy, 3)
			}
		}
	}
	pal := raster.Palette{
		1: {R: 60, G: 60, B: 180, A: 255},
		2: {R: 80, G: 160, B: 255, A: 255},
		3: {R: 255, G: 255, B: 255, A: 255},
	}
	return out, pal, nil
}

// metroLayer renders a fine WHP window with at-risk transceivers drawn on
// top (Figure 13).
func metroLayer(study *fivealarms.Study, opt MapOptions) (*raster.ClassGrid, raster.Palette, error) {
	if opt.KM <= 0 {
		opt.KM = 150
	}
	if opt.WindowCell <= 0 {
		opt.WindowCell = 1000
	}
	anchor := geom.Point{X: opt.Lon, Y: opt.Lat}
	g := whp.WindowAround(study.World, anchor, opt.KM*1000, opt.WindowCell)
	fine := whp.Build(study.World, g, whp.Config{
		UrbanCoreThreshold: study.WHP.Cfg.UrbanCoreThreshold,
		WUIDamping:         study.WHP.Cfg.WUIDamping,
		Thresholds:         study.WHP.Cfg.Thresholds,
		NoiseScaleM:        study.WHP.Cfg.NoiseScaleM,
		RoadBufferM:        400,
	})
	out := fine.Classes.Clone()
	for _, ti := range study.Data.Index.Query(g.Bounds(), nil) {
		p := study.Data.T[ti].XY
		if fine.ClassAt(p).AtRisk() {
			if cx, cy, ok := g.CellOf(p); ok {
				out.Set(cx, cy, TxMarker)
			}
		}
	}
	return out, MarkedPalette(), nil
}

// MarkedPalette is the WHP palette plus the transceiver marker color.
func MarkedPalette() raster.Palette {
	pal := whp.Palette()
	pal[TxMarker] = color.RGBA{R: 255, G: 255, B: 255, A: 255}
	return pal
}
