package grid

import (
	"sort"
	"testing"
	"testing/quick"

	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
)

func randomPoints(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(s.Range(0, 500), s.Range(0, 300))
	}
	return pts
}

func bruteQuery(pts []geom.Point, box geom.BBox) []int {
	var out []int
	for i, p := range pts {
		if box.ContainsPoint(p) {
			out = append(out, i)
		}
	}
	return out
}

func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil, 0)
	if idx.Len() != 0 {
		t.Error("Len")
	}
	if got := idx.Query(geom.NewBBox(geom.Pt(0, 0), geom.Pt(10, 10)), nil); len(got) != 0 {
		t.Error("Query on empty index")
	}
	if got := idx.QueryRadius(geom.Pt(0, 0), 10, nil); len(got) != 0 {
		t.Error("QueryRadius on empty index")
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	pts := randomPoints(1, 5000)
	for _, cellSize := range []float64{0, 1, 10, 100, 1000} {
		idx := New(pts, cellSize)
		s := rng.New(2)
		for q := 0; q < 100; q++ {
			x, y := s.Range(-50, 500), s.Range(-50, 300)
			w, h := s.Range(0, 150), s.Range(0, 150)
			box := geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+h))
			got := idx.Query(box, nil)
			want := bruteQuery(pts, box)
			if !sortedEqual(got, want) {
				t.Fatalf("cell %v query %v: got %d, want %d", cellSize, box, len(got), len(want))
			}
		}
	}
}

func TestQueryRadiusMatchesBruteForce(t *testing.T) {
	pts := randomPoints(3, 3000)
	idx := New(pts, 0)
	s := rng.New(4)
	for q := 0; q < 100; q++ {
		c := geom.Pt(s.Range(0, 500), s.Range(0, 300))
		r := s.Range(0, 80)
		got := idx.QueryRadius(c, r, nil)
		var want []int
		for i, p := range pts {
			if p.DistanceTo(c) <= r {
				want = append(want, i)
			}
		}
		if !sortedEqual(got, want) {
			t.Fatalf("radius query c=%v r=%v: got %d, want %d", c, r, len(got), len(want))
		}
		if n := idx.CountRadius(c, r); n != len(want) {
			t.Fatalf("CountRadius = %d, want %d", n, len(want))
		}
	}
}

func TestQueryRadiusNegative(t *testing.T) {
	idx := New(randomPoints(5, 100), 0)
	if got := idx.QueryRadius(geom.Pt(250, 150), -1, nil); len(got) != 0 {
		t.Error("negative radius should return nothing")
	}
	if idx.CountRadius(geom.Pt(250, 150), -1) != 0 {
		t.Error("negative radius count should be 0")
	}
}

func TestVisitEarlyStop(t *testing.T) {
	pts := randomPoints(6, 1000)
	idx := New(pts, 0)
	count := 0
	idx.Visit(idx.Bounds(), func(int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("Visit count = %d, want 7", count)
	}
}

func TestPointAccessors(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	idx := New(pts, 0)
	if idx.Point(1) != pts[1] {
		t.Error("Point accessor")
	}
	if idx.Bounds() != geom.PointsBBox(pts) {
		t.Error("Bounds")
	}
	if idx.CellSize() <= 0 {
		t.Error("CellSize must be positive")
	}
}

func TestIdenticalPoints(t *testing.T) {
	// Degenerate extent: all points identical must not blow up.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(7, 7)
	}
	idx := New(pts, 0)
	got := idx.Query(geom.NewBBox(geom.Pt(6, 6), geom.Pt(8, 8)), nil)
	if len(got) != 100 {
		t.Errorf("got %d points, want 100", len(got))
	}
}

func TestQueryProperty(t *testing.T) {
	pts := randomPoints(7, 800)
	idx := New(pts, 25)
	f := func(x, y, w, h uint16) bool {
		box := geom.NewBBox(
			geom.Pt(float64(x%600)-50, float64(y%400)-50),
			geom.Pt(float64(x%600)-50+float64(w%200), float64(y%400)-50+float64(h%200)),
		)
		return sortedEqual(idx.Query(box, nil), bruteQuery(pts, box))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuery100k(b *testing.B) {
	pts := randomPoints(8, 100000)
	idx := New(pts, 0)
	box := geom.NewBBox(geom.Pt(200, 100), geom.Pt(260, 160))
	buf := make([]int, 0, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = idx.Query(box, buf[:0])
	}
}

func BenchmarkQueryRadius100k(b *testing.B) {
	pts := randomPoints(9, 100000)
	idx := New(pts, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.CountRadius(geom.Pt(250, 150), 40)
	}
}
