package grid_test

// External test package: the differential driver imports grid, so the
// conformance tests run from outside to avoid the cycle.

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
	"fivealarms/internal/grid"
	"fivealarms/internal/refimpl"
	"fivealarms/internal/refimpl/diffcheck"
)

// TestPointIndexConformance sweeps window, radius and count queries
// against exhaustive scans over seeded point batteries: duplicates,
// collinear sets, clusters a million units apart, boundary-exact
// windows and rim-exact radii.
func TestPointIndexConformance(t *testing.T) {
	if err := diffcheck.Sweep(200, diffcheck.CheckPointIndex); err != nil {
		t.Fatal(err)
	}
}

// TestPointIndexGoldens queries the vertex sets of the hand-authored
// fixtures through the index and the brute-force twin.
func TestPointIndexGoldens(t *testing.T) {
	for _, name := range diffcheck.FixtureNames() {
		if err := diffcheck.CheckGoldenPoints(name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSparseClustersBoundedCells is the regression test for the
// allocation pathology the differential suite flagged: two small
// clusters a million units apart with a 0.5-unit requested cell used to
// make New allocate extent²/cell² buckets (tens of millions of cells
// for sixty points). The bucket count must now be bounded by the point
// count, not the coordinate span, while every query stays exact.
func TestSparseClustersBoundedCells(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 30; i++ {
		f := float64(i)
		pts = append(pts, geom.Pt(f*0.25, f*0.125))
		pts = append(pts, geom.Pt(1e6+f*0.25, 1e6+f*0.125))
	}
	idx := grid.New(pts, 0.5)
	b := idx.Bounds()
	nx := int(math.Floor(b.Width()/idx.CellSize())) + 1
	ny := int(math.Floor(b.Height()/idx.CellSize())) + 1
	if maxCells := 64 * len(pts); nx*ny > maxCells {
		t.Fatalf("index grew %d cells for %d points (cell %v), want <= %d",
			nx*ny, len(pts), idx.CellSize(), maxCells)
	}
	// The coarser effective cell must not change any answer.
	windows := []geom.BBox{
		{MinX: -1, MinY: -1, MaxX: 8, MaxY: 4},
		{MinX: 1e6, MinY: 1e6, MaxX: 1e6 + 4, MaxY: 1e6 + 2},
		{MinX: 0, MinY: 0, MaxX: 2e6, MaxY: 2e6},
	}
	for _, w := range windows {
		got := idx.Query(w, nil)
		want := refimpl.RangeQuery(pts, w)
		if len(got) != len(want) {
			t.Fatalf("window %v: index %d hits, brute force %d", w, len(got), len(want))
		}
	}
	for _, r := range []float64{0, 1, 1e6} {
		if got, want := idx.CountRadius(geom.Pt(0, 0), r), len(refimpl.RadiusQuery(pts, geom.Pt(0, 0), r)); got != want {
			t.Fatalf("radius %v: index %d, brute force %d", r, got, want)
		}
	}
}

// TestTinyPointSetFloorCells pins the other side of the clamp: small
// point sets keep the 1024-cell floor so a requested fine cell is
// honored when it is harmless.
func TestTinyPointSetFloorCells(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	idx := grid.New(pts, 0.5)
	if idx.CellSize() != 0.5 {
		t.Fatalf("cell grew to %v for a 2-point set; 21x21 cells fit the floor", idx.CellSize())
	}
	if got := idx.Query(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, nil); len(got) != 2 {
		t.Fatalf("query lost points: %v", got)
	}
}

// FuzzGridIndexDiff drives the point-index twins from fuzz-chosen seeds.
func FuzzGridIndexDiff(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffcheck.CheckPointIndex(seed); err != nil {
			t.Fatal(err)
		}
	})
}
