// Package grid provides a uniform-grid spatial index for large point sets.
// The transceiver database (hundreds of thousands to millions of points) is
// queried with rectangular windows (perimeter bounding boxes, metro
// windows) and radius queries (metro clustering); bucketing points into
// fixed-size cells makes those queries proportional to the result size.
package grid

import (
	"math"

	"fivealarms/internal/geom"
)

// Index is a uniform-grid point index built once over a fixed point set.
// Safe for concurrent readers.
type Index struct {
	cell     float64
	minX     float64
	minY     float64
	nx, ny   int
	cellPts  [][]int32 // point indices per cell, row-major
	pts      []geom.Point
	boundBox geom.BBox
}

// New builds an index over pts with the given cell size (in the same units
// as the coordinates). A non-positive cellSize picks a size that yields
// roughly one point per cell on average.
func New(pts []geom.Point, cellSize float64) *Index {
	idx := &Index{pts: pts, boundBox: geom.PointsBBox(pts)}
	if len(pts) == 0 {
		idx.cell = 1
		idx.nx, idx.ny = 1, 1
		idx.cellPts = make([][]int32, 1)
		return idx
	}
	b := idx.boundBox
	if cellSize <= 0 {
		area := math.Max(b.Area(), 1e-12)
		cellSize = math.Sqrt(area / float64(len(pts)))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	idx.cell = cellSize
	idx.minX = b.MinX
	idx.minY = b.MinY
	idx.nx = int(math.Floor(b.Width()/cellSize)) + 1
	idx.ny = int(math.Floor(b.Height()/cellSize)) + 1
	// Clamp pathological grids: degenerate extents, or sparse point sets
	// spread over a huge domain with a small requested cell, must not
	// allocate extent²/cell² buckets. Bounding the cell count by the
	// point count (~64 buckets per point, floor 1024) keeps the memory
	// footprint proportional to the data while leaving dense realistic
	// layouts untouched; the requested cellSize is a hint, not a contract
	// (see CellSize for the effective value).
	maxCells := 64 * len(pts)
	if maxCells < 1024 {
		maxCells = 1024
	}
	if maxCells > 1<<26 {
		maxCells = 1 << 26
	}
	for idx.nx*idx.ny > maxCells {
		idx.cell *= 2
		idx.nx = int(math.Floor(b.Width()/idx.cell)) + 1
		idx.ny = int(math.Floor(b.Height()/idx.cell)) + 1
	}

	counts := make([]int32, idx.nx*idx.ny)
	cellOf := make([]int32, len(pts))
	for i, p := range pts {
		c := idx.cellIndex(p)
		cellOf[i] = int32(c)
		counts[c]++
	}
	idx.cellPts = make([][]int32, idx.nx*idx.ny)
	// Single backing array sliced per cell.
	backing := make([]int32, len(pts))
	offsets := make([]int32, len(counts))
	var off int32
	for c, n := range counts {
		offsets[c] = off
		idx.cellPts[c] = backing[off : off : off+n]
		off += n
	}
	for i := range pts {
		c := cellOf[i]
		idx.cellPts[c] = append(idx.cellPts[c], int32(i))
	}
	return idx
}

func (idx *Index) cellIndex(p geom.Point) int {
	cx := int((p.X - idx.minX) / idx.cell)
	cy := int((p.Y - idx.minY) / idx.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= idx.nx {
		cx = idx.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= idx.ny {
		cy = idx.ny - 1
	}
	return cy*idx.nx + cx
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.pts) }

// Bounds returns the bounding box of the indexed points.
func (idx *Index) Bounds() geom.BBox { return idx.boundBox }

// Point returns the i'th indexed point.
func (idx *Index) Point(i int) geom.Point { return idx.pts[i] }

// Query appends to dst the indices of all points inside box (inclusive
// boundaries) and returns the extended slice.
func (idx *Index) Query(box geom.BBox, dst []int) []int {
	if len(idx.pts) == 0 || box.IsEmpty() || !box.Intersects(idx.boundBox) {
		return dst
	}
	cx0, cy0 := idx.clampCell(box.MinX, box.MinY)
	cx1, cy1 := idx.clampCell(box.MaxX, box.MaxY)
	for cy := cy0; cy <= cy1; cy++ {
		base := cy * idx.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, pi := range idx.cellPts[base+cx] {
				if box.ContainsPoint(idx.pts[pi]) {
					dst = append(dst, int(pi))
				}
			}
		}
	}
	return dst
}

// Visit calls fn with the index of every point inside box; returning false
// stops iteration.
func (idx *Index) Visit(box geom.BBox, fn func(i int) bool) {
	if len(idx.pts) == 0 || box.IsEmpty() || !box.Intersects(idx.boundBox) {
		return
	}
	cx0, cy0 := idx.clampCell(box.MinX, box.MinY)
	cx1, cy1 := idx.clampCell(box.MaxX, box.MaxY)
	for cy := cy0; cy <= cy1; cy++ {
		base := cy * idx.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, pi := range idx.cellPts[base+cx] {
				if box.ContainsPoint(idx.pts[pi]) && !fn(int(pi)) {
					return
				}
			}
		}
	}
}

// QueryRadius appends the indices of all points within planar distance r of
// center and returns the extended slice.
func (idx *Index) QueryRadius(center geom.Point, r float64, dst []int) []int {
	if r < 0 {
		return dst
	}
	box := geom.BBox{MinX: center.X - r, MinY: center.Y - r, MaxX: center.X + r, MaxY: center.Y + r}
	r2 := r * r
	idx.Visit(box, func(i int) bool {
		d := idx.pts[i].Sub(center)
		if d.Dot(d) <= r2 {
			dst = append(dst, i)
		}
		return true
	})
	return dst
}

// CountRadius returns the number of points within planar distance r of
// center without materializing the index list.
func (idx *Index) CountRadius(center geom.Point, r float64) int {
	if r < 0 {
		return 0
	}
	box := geom.BBox{MinX: center.X - r, MinY: center.Y - r, MaxX: center.X + r, MaxY: center.Y + r}
	r2 := r * r
	n := 0
	idx.Visit(box, func(i int) bool {
		d := idx.pts[i].Sub(center)
		if d.Dot(d) <= r2 {
			n++
		}
		return true
	})
	return n
}

// CellSize returns the edge length of the index's cells.
func (idx *Index) CellSize() float64 { return idx.cell }

func (idx *Index) clampCell(x, y float64) (int, int) {
	cx := int((x - idx.minX) / idx.cell)
	cy := int((y - idx.minY) / idx.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= idx.nx {
		cx = idx.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= idx.ny {
		cy = idx.ny - 1
	}
	return cx, cy
}
