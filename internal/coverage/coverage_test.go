package coverage

import (
	"math"
	"testing"

	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testCounties = census.Synthesize(testWorld, 7)
	testModel    = Build(testWorld, testCounties, 0)
)

func TestBuildDefaults(t *testing.T) {
	if testModel.RadiusM != DefaultRadiusM {
		t.Errorf("radius = %v", testModel.RadiusM)
	}
}

func TestPopulationSurfaceConserved(t *testing.T) {
	got := testModel.TotalPopulation()
	want := float64(testCounties.TotalPopulation())
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("surface population %.0f vs counties %.0f", got, want)
	}
}

func TestPopulationConcentratesInCities(t *testing.T) {
	g := testWorld.Grid
	la := testWorld.ToXY(geom.Point{X: -118.2437, Y: 34.0522})
	ruralNV := testWorld.ToXY(geom.Point{X: -117.0, Y: 41.2})
	cxa, cya, _ := g.CellOf(la)
	cxb, cyb, _ := g.CellOf(ruralNV)
	if testModel.Pop.At(cxa, cya) <= 50*testModel.Pop.At(cxb, cyb) {
		t.Errorf("LA cell pop %.0f should dwarf rural NV %.0f",
			testModel.Pop.At(cxa, cya), testModel.Pop.At(cxb, cyb))
	}
}

func TestServedMask(t *testing.T) {
	site := testWorld.ToXY(geom.Point{X: -100, Y: 40})
	mask := testModel.ServedMask([]geom.Point{site})
	if mask.Count() == 0 {
		t.Fatal("no served cells")
	}
	cx, cy, _ := testWorld.Grid.CellOf(site)
	if !mask.Get(cx, cy) {
		t.Error("site cell must be served")
	}
	// Radius 10km at 20km cells: only the site cell.
	if mask.Count() > 9 {
		t.Errorf("served cells = %d, want small neighborhood", mask.Count())
	}
	if got := testModel.ServedMask(nil).Count(); got != 0 {
		t.Errorf("no sites should serve nothing, got %d", got)
	}
}

func TestEvaluateBasics(t *testing.T) {
	// One failing site in Kansas, one surviving site co-located with it
	// (same tower compound): nobody is stranded. Move the survivor away:
	// the Kansas cell strands.
	fail := testWorld.ToXY(geom.Point{X: -98, Y: 38.5})
	near := fail
	far := testWorld.ToXY(geom.Point{X: -80, Y: 35})

	imp := testModel.Evaluate([]geom.Point{near}, []geom.Point{fail})
	if imp.StrandedPopulation != 0 {
		t.Errorf("with overlapping survivor, stranded = %.0f", imp.StrandedPopulation)
	}
	if imp.ExposedPopulation <= 0 {
		t.Error("exposed population must be positive")
	}

	imp = testModel.Evaluate([]geom.Point{far}, []geom.Point{fail})
	if imp.StrandedPopulation <= 0 {
		t.Error("without nearby survivor, population must strand")
	}
	if imp.StrandedPopulation > imp.ExposedPopulation {
		t.Error("stranded cannot exceed exposed")
	}
	if imp.ServedPopulation < imp.ExposedPopulation {
		t.Error("served must include exposed")
	}
}

func TestStateZonePopulationsSane(t *testing.T) {
	// Sum the surface within California's zone: should approximate CA's
	// population.
	g := testWorld.Grid
	caIdx := geodata.StateIndex("CA")
	var sum float64
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if int(testWorld.StateZone.At(cx, cy))-1 == caIdx {
				sum += testModel.Pop.At(cx, cy)
			}
		}
	}
	want := float64(geodata.States[caIdx].Pop)
	// County Voronoi zones cross the state raster boundary a little, so
	// allow a wider band.
	if sum < want*0.7 || sum > want*1.3 {
		t.Errorf("CA surface population %.0f, want ~%.0f", sum, want)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	var fail, ok []geom.Point
	for i := 0; i < 200; i++ {
		fail = append(fail, testWorld.ToXY(geom.Point{X: -120 + float64(i)*0.01, Y: 38}))
		ok = append(ok, testWorld.ToXY(geom.Point{X: -100 + float64(i)*0.01, Y: 40}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = testModel.Evaluate(ok, fail)
	}
}
