// Package coverage models cellular service coverage — the paper's §3.11
// "alternate approach": instead of counting at-risk transceivers, measure
// the population whose service depends on them. The abstract quantifies
// this as "aggregate populations of the areas served by these
// transceivers is over 85 million".
//
// The model is deliberately simple and auditable: a population surface is
// synthesized by distributing each county's population over its cells in
// proportion to urban intensity; a cell is "served" by a site when it
// lies within the serving radius; coverage loss is the population of
// cells all of whose serving sites are lost.
package coverage

import (
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
)

// Model holds the population surface and serving-radius configuration.
type Model struct {
	World *conus.World
	// Pop is the population per world-grid cell.
	Pop *raster.FloatGrid
	// RadiusM is the serving radius of a cell site. The default 10 km is
	// a generous macro-cell reach; dense urban cells serve far less, but
	// the coverage question is "is anyone left serving this area".
	RadiusM float64
}

// DefaultRadiusM is the default serving radius.
const DefaultRadiusM = 10000

// Build synthesizes the population surface and returns a model.
func Build(w *conus.World, counties *census.Counties, radiusM float64) *Model {
	if radiusM <= 0 {
		radiusM = DefaultRadiusM
	}
	return &Model{World: w, Pop: BuildPopulation(w, counties), RadiusM: radiusM}
}

// BuildPopulation distributes county populations over the world grid:
// within each county, cells receive population proportional to their
// urban intensity, with the county-seat cell boosted so rural counties
// concentrate their people in a town rather than spreading them uniformly
// over wildland — the same gradient the census tracts the paper used
// encode.
func BuildPopulation(w *conus.World, counties *census.Counties) *raster.FloatGrid {
	g := w.Grid
	pop := raster.NewFloatGrid(g)

	// County-seat cells get a town-sized weight boost.
	seatCell := make(map[int]int, len(counties.All))
	for ci := range counties.All {
		if cx, cy, ok := g.CellOf(counties.All[ci].Seed); ok {
			seatCell[ci] = cy*g.NX + cx
		} else {
			seatCell[ci] = -1
		}
	}

	// First pass: per-cell county assignment and weight.
	countyOf := make([]int32, g.Cells())
	weights := make([]float64, g.Cells())
	countyWeightSum := make([]float64, len(counties.All))
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			i := cy*g.NX + cx
			countyOf[i] = -1
			if w.StateZone.At(cx, cy) == 0 {
				continue
			}
			p := g.Center(cx, cy)
			ci := counties.CountyAt(p)
			if ci < 0 {
				continue
			}
			wgt := w.Urban.At(cx, cy) + 0.002
			if seatCell[ci] == i {
				wgt += 0.35 // the county town
			}
			countyOf[i] = int32(ci)
			weights[i] = wgt
			countyWeightSum[ci] += wgt
		}
	}
	// Second pass: distribute.
	for i, ci := range countyOf {
		if ci < 0 {
			continue
		}
		if s := countyWeightSum[ci]; s > 0 {
			pop.Data[i] = float64(counties.All[ci].Pop) * weights[i] / s
		}
	}
	// Counties that won no cells (tiny zones shadowed by weighted
	// neighbors at coarse resolutions) deposit their population at the
	// cell containing their seed, conserving the national total.
	for ci := range counties.All {
		if countyWeightSum[ci] > 0 {
			continue
		}
		if cx, cy, ok := g.CellOf(counties.All[ci].Seed); ok {
			pop.Set(cx, cy, pop.At(cx, cy)+float64(counties.All[ci].Pop))
		}
	}
	return pop
}

// TotalPopulation sums the surface.
func (m *Model) TotalPopulation() float64 {
	var t float64
	for _, v := range m.Pop.Data {
		t += v
	}
	return t
}

// ServedMask returns the cells within the serving radius of at least one
// of the given site positions, computed with an exact distance transform.
func (m *Model) ServedMask(sites []geom.Point) *raster.BitGrid {
	g := m.World.Grid
	seed := raster.NewBitGrid(g)
	for _, p := range sites {
		if cx, cy, ok := g.CellOf(p); ok {
			seed.Set(cx, cy, true)
		}
	}
	return raster.DilateByDistance(seed, m.RadiusM)
}

// Population sums the population of the set cells. Set runs iterate in
// row-major order — the same order the per-cell scan visited them — so
// the float sum is bit-identical to the naive loop.
func (m *Model) Population(mask *raster.BitGrid) float64 {
	var t float64
	mask.ForEachSetRun(func(cy, cx0, cx1 int) {
		for cx := cx0; cx <= cx1; cx++ {
			t += m.Pop.At(cx, cy)
		}
	})
	return t
}

// Impact quantifies a failure set: all -> population served by any site,
// exposed -> population within reach of at least one failing site,
// stranded -> population whose every serving site fails.
type Impact struct {
	ServedPopulation   float64 // pop within radius of any site
	ExposedPopulation  float64 // pop within radius of a failing site
	StrandedPopulation float64 // pop losing all service
}

// Evaluate computes the impact of losing the failing sites while the
// surviving sites stay up.
func (m *Model) Evaluate(surviving, failing []geom.Point) Impact {
	failMask := m.ServedMask(failing)
	surviveMask := m.ServedMask(surviving)

	allMask := failMask.Clone()
	// Same geometry by construction.
	_ = allMask.Or(surviveMask) //fivealarms:allow(errflow) Clone guarantees identical geometry, the only error Or can report
	stranded := failMask.Clone()
	_ = stranded.AndNot(surviveMask) //fivealarms:allow(errflow) Clone guarantees identical geometry, the only error AndNot can report

	return Impact{
		ServedPopulation:   m.Population(allMask),
		ExposedPopulation:  m.Population(failMask),
		StrandedPopulation: m.Population(stranded),
	}
}
