package serve

import (
	"sync"
	"time"

	"fivealarms/internal/rng"
)

// breakerStatus is one circuit's position in the closed → open →
// half-open state machine.
type breakerStatus int

const (
	breakerClosed breakerStatus = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerStatus) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breakerState is the per-(seed, config) circuit around study builds.
// The zero value (absent from the map) is a closed circuit with no
// recorded failures.
type breakerState struct {
	status   breakerStatus
	failures int       // consecutive build failures
	opens    int       // consecutive opens; scales the backoff
	until    time.Time // while open: when the next probe is admitted
}

// buildBreaker is a keyed circuit breaker around study builds: after
// threshold consecutive failures for one (seed, config) key the circuit
// opens and build attempts for that key are rejected outright until an
// exponential backoff (with deterministic jitter from internal/rng)
// elapses. The first attempt after the backoff is a half-open probe —
// its success closes the circuit, its failure re-opens it with a doubled
// backoff. A poisoned config therefore costs one build per backoff
// window instead of consuming the whole build budget, while every other
// key keeps building normally.
type buildBreaker struct {
	threshold int
	base, max time.Duration
	onOpen    func()
	onProbe   func()
	onClose   func()

	mu     sync.Mutex
	src    *rng.Source // jitter; guarded by mu
	now    func() time.Time
	states map[studyKey]*breakerState
}

// newBuildBreaker returns a breaker opening after threshold consecutive
// failures with backoffs in [base, max]. Jitter is seeded so a given
// server replays the same backoff sequence.
func newBuildBreaker(threshold int, base, max time.Duration, seed uint64) *buildBreaker {
	if threshold < 1 {
		threshold = 1
	}
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = base
	}
	return &buildBreaker{
		threshold: threshold,
		base:      base,
		max:       max,
		src:       rng.NewStream(seed, 0xb7eace7), // breaker jitter stream
		now:       now,
		states:    make(map[studyKey]*breakerState),
	}
}

// Allow reports whether a build attempt for key may start. While the
// circuit is open it returns false plus the remaining backoff (the
// Retry-After hint); when the backoff has elapsed the caller becomes
// the half-open probe and is admitted.
func (b *buildBreaker) Allow(key studyKey) (retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		return 0, true
	}
	switch st.status {
	case breakerOpen:
		if wait := st.until.Sub(b.now()); wait > 0 {
			return wait, false
		}
		st.status = breakerHalfOpen
		if b.onProbe != nil {
			b.onProbe()
		}
		return 0, true
	case breakerHalfOpen:
		// A probe is already in flight; admitting more attempts would
		// defeat the point of probing. (In practice the study cache's
		// singleflight means nobody else reaches here.)
		return b.base, false
	}
	return 0, true
}

// OnSuccess records a successful build: the circuit closes and the
// failure history for key is forgotten.
func (b *buildBreaker) OnSuccess(key studyKey) {
	b.mu.Lock()
	st := b.states[key]
	closedCircuit := st != nil && st.status != breakerClosed
	delete(b.states, key)
	b.mu.Unlock()
	if closedCircuit && b.onClose != nil {
		b.onClose()
	}
}

// OnFailure records a failed build. Reaching the consecutive-failure
// threshold — or failing the half-open probe — opens the circuit with
// an exponentially growing, jittered backoff.
func (b *buildBreaker) OnFailure(key studyKey) {
	b.mu.Lock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.failures++
	opened := false
	if st.status == breakerHalfOpen || st.failures >= b.threshold {
		st.status = breakerOpen
		st.until = b.now().Add(b.backoffLocked(st.opens))
		st.opens++
		opened = true
	}
	b.mu.Unlock()
	if opened && b.onOpen != nil {
		b.onOpen()
	}
}

// Status reports key's current circuit status (for tests and health
// introspection).
func (b *buildBreaker) Status(key studyKey) breakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.states[key]; st != nil {
		return st.status
	}
	return breakerClosed
}

// backoffLocked computes the nth open's backoff: base·2ⁿ capped at max,
// then jittered into [d/2, d) so synchronized clients do not retry in
// lockstep. Deterministic given the breaker's seed and call sequence.
func (b *buildBreaker) backoffLocked(opens int) time.Duration {
	d := b.base
	for i := 0; i < opens && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	half := d / 2
	return half + time.Duration(float64(half)*b.src.Float64())
}
