package api

import (
	"sort"

	"fivealarms"
	"fivealarms/internal/geodata"
	"fivealarms/internal/risk"
	"fivealarms/internal/whp"
)

// Table1From builds the Table 1 DTO from the historical overlay rows.
func Table1From(rows []risk.YearOverlay) Table1 {
	t := Table1{Meta: NewMeta(), Rows: make([]Table1Row, 0, len(rows))}
	for _, r := range rows {
		t.Rows = append(t.Rows, Table1Row{
			Year:            r.Year,
			Fires:           r.Fires,
			AcresBurned:     r.AcresBurned,
			TransceiversIn:  r.TransceiversIn,
			PerMillionAcres: r.PerMillionAcres,
		})
	}
	t.TotalInPerimeters = risk.TotalInPerimeters(rows)
	return t
}

// Table2From builds the Table 2 DTO from the provider breakdown rows.
func Table2From(rows []risk.ProviderRow) Table2 {
	t := Table2{Meta: NewMeta(), Rows: make([]Table2Row, 0, len(rows))}
	for _, r := range rows {
		t.Rows = append(t.Rows, Table2Row{
			Provider:    r.Provider,
			Fleet:       r.Fleet,
			Moderate:    r.Moderate,
			High:        r.High,
			VeryHigh:    r.VHigh,
			PctModerate: r.PctM,
			PctHigh:     r.PctH,
			PctVeryHigh: r.PctVH,
		})
	}
	return t
}

// Table3From builds the Table 3 DTO from the radio-technology rows.
func Table3From(rows []risk.RadioRow) Table3 {
	t := Table3{Meta: NewMeta(), Rows: make([]Table3Row, 0, len(rows))}
	for _, r := range rows {
		t.Rows = append(t.Rows, Table3Row{
			Radio:    r.Radio.String(),
			VeryHigh: r.VHigh,
			High:     r.High,
			Moderate: r.Moderate,
			Total:    r.Total,
		})
	}
	return t
}

// WHPOverlayFrom builds the overlay DTO from the §3.3 class overlay.
func WHPOverlayFrom(res *risk.WHPResult) WHPOverlay {
	o := WHPOverlay{
		Meta:    NewMeta(),
		Total:   res.Total,
		AtRisk:  res.AtRisk(),
		ByClass: map[string]int{},
	}
	for c, n := range res.ByClass {
		if n > 0 {
			o.ByClass[c.String()] = n
		}
	}
	for si, row := range res.ByState {
		if row[0]+row[1]+row[2] == 0 {
			continue
		}
		abbrev := "??"
		if si >= 0 && si < len(geodata.States) {
			abbrev = geodata.States[si].Abbrev
		}
		o.States = append(o.States, StateClassCounts{
			State:    abbrev,
			Moderate: row[0],
			High:     row[1],
			VeryHigh: row[2],
		})
	}
	sort.Slice(o.States, func(i, j int) bool { return o.States[i].State < o.States[j].State })
	return o
}

// ClassNames returns the WHP class names in hazard order, the key
// space of the by_class maps.
func ClassNames() []string {
	classes := []whp.Class{whp.Water, whp.NonBurnable, whp.VeryLow, whp.Low, whp.Moderate, whp.High, whp.VeryHigh}
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.String()
	}
	return out
}

// ValidationFrom builds the validation DTO from the §3.4 result.
func ValidationFrom(v *risk.ValidationResult) Validation {
	return Validation{
		Meta:                NewMeta(),
		InPerimeter:         v.InPerimeter,
		Predicted:           v.Predicted,
		MissesInRoadFires:   v.MissesInRoadFires,
		RoadFireTotal:       v.RoadFireTotal,
		AccuracyPct:         v.AccuracyPct(),
		AccuracyExclRoadPct: v.AccuracyExclRoadPct(),
	}
}

// ExtendFrom builds the extension DTO from the unified ExtendWith
// report. Coarse-path reports carry the national at-risk totals;
// fine-path reports carry the California-window counts.
func ExtendFrom(r *fivealarms.ExtendReport) Extend {
	e := Extend{
		Meta:              NewMeta(),
		Fine:              r.Fine,
		CellSizeM:         r.CellSizeM,
		DistM:             r.DistM,
		VHBefore:          r.VHBefore,
		VHAfter:           r.VHAfter,
		AccuracyBeforePct: r.AccuracyBeforePct,
		AccuracyAfterPct:  r.AccuracyAfterPct,
	}
	if r.Coarse != nil {
		e.TotalAtRiskBefore = r.Coarse.TotalBefore
		e.TotalAtRiskAfter = r.Coarse.TotalAfter
	}
	if r.Window != nil {
		e.WindowTransceivers = r.Window.WindowTransceivers
		e.InPerimeter = r.Window.InPerimeter
	}
	return e
}
