package api_test

// Golden-fixture tests for the v1 wire contract: every response DTO is
// rendered from a seed-42 study and compared byte for byte against
// testdata/*.golden.json. The fixtures ARE the contract — a diff here
// means the wire format changed, which under the v1 compatibility
// policy is only allowed for additive fields (regenerate deliberately
// with `go test ./internal/serve/api -run Golden -update`).
//
// The same DTOs are rendered from a parallel-pipeline study and a
// serial-pipeline study and must be bit-identical, extending the
// repo's schedule-independence contract across the wire format.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fivealarms"
	"fivealarms/internal/serve/api"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// goldenCfg is the fixture scale: fast enough for CI (<100 ms build),
// rich enough that every DTO has non-trivial content — at this scale
// the 2019 validation season actually catches transceivers, so the
// validate fixture pins non-zero accuracy math.
var goldenCfg = fivealarms.Config{
	Seed: 42, CellSizeM: 30000, Transceivers: 20000, MappedFiresPerSeason: 12,
}

var (
	studyOnce            sync.Once
	studyParallel        *fivealarms.Study
	studySerial          *fivealarms.Study
	studyErrP, studyErrS error
)

func goldenStudies(t *testing.T) (*fivealarms.Study, *fivealarms.Study) {
	t.Helper()
	studyOnce.Do(func() {
		studyParallel, studyErrP = fivealarms.NewStudyWithOptions(fivealarms.WithConfig(goldenCfg))
		serialCfg := goldenCfg
		serialCfg.PipelineSerial = true
		studySerial, studyErrS = fivealarms.NewStudyWithOptions(fivealarms.WithConfig(serialCfg))
	})
	if studyErrP != nil || studyErrS != nil {
		t.Fatalf("building golden studies: parallel=%v serial=%v", studyErrP, studyErrS)
	}
	return studyParallel, studySerial
}

// encode renders a DTO exactly as the server does: two-space indent,
// trailing newline.
func encode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("encoding %T: %v", v, err)
	}
	return append(b, '\n')
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden fixture.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// dtos builds every study-derived v1 response body from one study.
func dtos(s *fivealarms.Study) map[string][]byte {
	out := map[string]any{
		"table1":      api.Table1From(s.Table1()),
		"table2":      api.Table2From(s.Table2()),
		"table3":      api.Table3From(s.Table3()),
		"overlay_whp": api.WHPOverlayFrom(s.WHPOverlay()),
		"validate":    api.ValidationFrom(s.Validate()),
		"extend":      api.ExtendFrom(s.ExtendWith(fivealarms.ExtendOptions{})),
		"extend_fine": api.ExtendFrom(s.ExtendWith(fivealarms.ExtendOptions{CellSizeM: 800})),
	}
	enc := make(map[string][]byte, len(out))
	for name, v := range out {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			panic(err)
		}
		enc[name] = append(b, '\n')
	}
	return enc
}

func TestGoldenResponses(t *testing.T) {
	parallel, serial := goldenStudies(t)
	p, s := dtos(parallel), dtos(serial)
	for name, body := range p {
		checkGolden(t, name, body)
		if !bytes.Equal(body, s[name]) {
			t.Errorf("%s differs between parallel and serial schedules:\nparallel:\n%s\nserial:\n%s",
				name, body, s[name])
		}
	}
}

// TestGoldenStatic pins the study-independent bodies: health, error
// and the empty-metrics shape.
func TestGoldenStatic(t *testing.T) {
	checkGolden(t, "health", encode(t, api.Health{
		Meta: api.NewMeta(), Status: "ok", StudiesCached: 1, DefaultSeed: 42,
	}))
	checkGolden(t, "error", encode(t, api.Error{
		Meta: api.NewMeta(), Status: 400, Message: "lon: want a finite number, got \"x\"",
	}))
	checkGolden(t, "metrics", encode(t, api.Metrics{
		Meta: api.NewMeta(),
		Endpoints: []api.EndpointMetrics{
			{Endpoint: "healthz", Requests: 2, Errors: 0, P50Ms: 0.05, P99Ms: 0.1},
			{Endpoint: "risk_point", Requests: 0, Errors: 0, P50Ms: -1, P99Ms: -1},
		},
	}))
}

func TestVersionStamp(t *testing.T) {
	if api.Version != "v1" {
		t.Fatalf("Version = %q; bumping it is a breaking change — add a new version alongside instead", api.Version)
	}
	body := encode(t, api.Table1From(nil))
	var m struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &m); err != nil || m.Version != "v1" {
		t.Errorf("every DTO must carry the version stamp, got %s (err %v)", body, err)
	}
}

func TestClassNames(t *testing.T) {
	names := api.ClassNames()
	want := []string{"water", "non-burnable", "very-low", "low", "moderate", "high", "very-high"}
	if len(names) != len(want) {
		t.Fatalf("ClassNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ClassNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}
