// Package api defines the v1 JSON wire contract of the fivealarms
// risk-query service: versioned response DTO types with explicit,
// stable field names, plus the converters that build them from the
// risk-engine result structs.
//
// Every byte the server emits — and every table the CLI renders for
// the corresponding experiments — passes through these types, so the
// HTTP layer, the rendered reports and the library results can never
// drift apart. The contract and its compatibility policy are
// documented in DESIGN.md §7; the golden fixtures under testdata/
// pin the exact encoding.
//
// Compatibility policy (v1): field names and JSON types are frozen.
// New fields may be added; existing fields are never renamed, removed
// or retyped within a version. Breaking changes get a new Version and
// a new /v<N>/ URL prefix, served alongside the old one.
package api

// Version is the wire-contract version every response carries. Bump
// only for breaking changes (see the package comment).
const Version = "v1"

// Meta is the envelope every top-level response embeds.
type Meta struct {
	Version string `json:"version"`
	// Degraded marks a response served from the last-known-good study
	// instead of the requested one — the build circuit is open or the
	// request's deadline would have been blown waiting for a rebuild.
	// Additive v1 field: absent (false) on every non-degraded response.
	Degraded bool `json:"degraded,omitempty"`
	// Warning explains why the response is degraded; empty otherwise.
	Warning string `json:"warning,omitempty"`
}

// NewMeta returns the envelope for the current contract version.
func NewMeta() Meta { return Meta{Version: Version} }

// Error is the uniform error body: every non-2xx response carries one.
type Error struct {
	Meta
	// Status echoes the HTTP status code.
	Status int `json:"status"`
	// Message is a human-readable description of the failure.
	Message string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429/503 shed
	// responses: the suggested wait, in whole seconds, before retrying.
	// Additive v1 field: absent on errors that are not load sheds.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// Health is the GET /v1/healthz body.
type Health struct {
	Meta
	// Status is "ok" while the server accepts queries.
	Status string `json:"status"`
	// StudiesCached is the number of studies resident in the cache.
	StudiesCached int `json:"studies_cached"`
	// DefaultSeed is the seed used when a request does not override it.
	DefaultSeed uint64 `json:"default_seed"`
}

// EndpointMetrics is one endpoint's row in the GET /v1/metrics body.
// P50Ms and P99Ms are upper bounds of the fixed histogram bucket
// containing the quantile (see DESIGN.md §7); -1 when no requests have
// been observed.
type EndpointMetrics struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Resilience is the overload-protection section of the GET /v1/metrics
// body: shed/timeout/panic/degraded counters since server start, the
// build circuit breaker's transition counts, and the admission
// controller's instantaneous gauges.
type Resilience struct {
	// Shed429 counts requests rejected because the admission queue was
	// full (HTTP 429).
	Shed429 uint64 `json:"shed_429"`
	// Shed503 counts requests rejected because the build circuit
	// breaker was open (HTTP 503).
	Shed503 uint64 `json:"shed_503"`
	// Timeouts counts requests that blew their server-side deadline
	// (HTTP 503 with Retry-After).
	Timeouts uint64 `json:"timeouts"`
	// Panics counts handler panics converted to typed 500s.
	Panics uint64 `json:"panics"`
	// Degraded counts responses served from a last-known-good study.
	Degraded uint64 `json:"degraded"`
	// BreakerOpens/Probes/Closes count circuit state transitions:
	// closed→open, open→half-open (probe admitted), half-open→closed.
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerProbes uint64 `json:"breaker_probes"`
	BreakerCloses uint64 `json:"breaker_closes"`
	// InFlight and QueueDepth are instantaneous admission-controller
	// gauges: weight units currently executing and requests waiting.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
}

// Metrics is the GET /v1/metrics body.
type Metrics struct {
	Meta
	Endpoints []EndpointMetrics `json:"endpoints"`
	// Resilience reports the overload-protection counters. Additive v1
	// field: omitted when the serving layer has no admission controller
	// (it is always present in fivealarmsd responses).
	Resilience *Resilience `json:"resilience,omitempty"`
}

// PointRisk is the GET /v1/risk/point body: the hazard situation at
// one geographic coordinate.
type PointRisk struct {
	Meta
	// Lon and Lat echo the queried coordinate (degrees).
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
	// XM and YM are the projected (CONUS Albers) coordinates in meters.
	XM float64 `json:"x_m"`
	YM float64 `json:"y_m"`
	// OnConus reports whether the point falls inside the CONUS outline.
	OnConus bool `json:"on_conus"`
	// State is the two-letter state abbreviation, empty off-CONUS.
	State string `json:"state,omitempty"`
	// HazardClass is the WHP class name at the point ("water",
	// "non-burnable", "very-low", "low", "moderate", "high", "very-high").
	HazardClass string `json:"hazard_class"`
	// HazardValue is the continuous WHP hazard at the point (0..1).
	HazardValue float64 `json:"hazard_value"`
	// AtRisk reports whether the class is moderate or higher — the
	// paper's at-risk criterion.
	AtRisk bool `json:"at_risk"`
	// InHistoricalPerimeter reports whether the point's raster cell
	// falls inside the union of the 2000-2018 fire perimeters.
	InHistoricalPerimeter bool `json:"in_historical_perimeter"`
	// NearestFireDistM is the distance in meters from the point's cell
	// to the nearest 2000-2018 perimeter cell (0 inside one); -1 when
	// the point is off the raster or no fires were mapped.
	NearestFireDistM float64 `json:"nearest_fire_dist_m"`
}

// BBoxRisk is the GET /v1/risk/bbox body: the exposure summary of the
// transceivers inside a geographic bounding box.
type BBoxRisk struct {
	Meta
	// The queried box (degrees). The box is evaluated in projected
	// space as the bounding box of its four projected corners.
	MinLon float64 `json:"min_lon"`
	MinLat float64 `json:"min_lat"`
	MaxLon float64 `json:"max_lon"`
	MaxLat float64 `json:"max_lat"`
	// Transceivers counts the transceivers inside the box.
	Transceivers int `json:"transceivers"`
	// AtRisk counts those in moderate or higher WHP classes.
	AtRisk int `json:"at_risk"`
	// ByClass counts transceivers per WHP class name; classes with no
	// transceivers in the box are omitted.
	ByClass map[string]int `json:"by_class"`
	// InHistoricalPerimeter counts transceivers whose cells fall inside
	// the 2000-2018 perimeter union.
	InHistoricalPerimeter int `json:"in_historical_perimeter"`
}

// Table1Row is one year of the historical overlay (paper Table 1).
type Table1Row struct {
	Year            int     `json:"year"`
	Fires           int     `json:"fires"`
	AcresBurned     float64 `json:"acres_burned"`
	TransceiversIn  int     `json:"transceivers_in_perimeters"`
	PerMillionAcres float64 `json:"transceivers_per_million_acres"`
}

// Table1 is the GET /v1/tables/1 body. Rows are ordered oldest year
// first, as the risk engine produces them.
type Table1 struct {
	Meta
	Rows []Table1Row `json:"rows"`
	// TotalInPerimeters sums the per-year counts (the paper's ">27,000").
	TotalInPerimeters int `json:"total_in_perimeters"`
}

// Table2Row is one provider group's row (paper Table 2).
type Table2Row struct {
	Provider    string  `json:"provider"`
	Fleet       int     `json:"fleet"`
	Moderate    int     `json:"moderate"`
	High        int     `json:"high"`
	VeryHigh    int     `json:"very_high"`
	PctModerate float64 `json:"pct_moderate"`
	PctHigh     float64 `json:"pct_high"`
	PctVeryHigh float64 `json:"pct_very_high"`
}

// Table2 is the GET /v1/tables/2 body. Rows are in the paper's order:
// the four national carriers, then the Others aggregate.
type Table2 struct {
	Meta
	Rows []Table2Row `json:"rows"`
}

// Table3Row is one radio technology's row (paper Table 3).
type Table3Row struct {
	Radio    string `json:"radio"`
	VeryHigh int    `json:"very_high"`
	High     int    `json:"high"`
	Moderate int    `json:"moderate"`
	Total    int    `json:"total"`
}

// Table3 is the GET /v1/tables/3 body, ordered CDMA, GSM, LTE, UMTS
// as the paper prints it.
type Table3 struct {
	Meta
	Rows []Table3Row `json:"rows"`
}

// StateClassCounts is one state's at-risk breakdown in WHPOverlay.
type StateClassCounts struct {
	State    string `json:"state"`
	Moderate int    `json:"moderate"`
	High     int    `json:"high"`
	VeryHigh int    `json:"very_high"`
}

// WHPOverlay is the GET /v1/overlay/whp body: the §3.3 class overlay
// behind Figures 7-9.
type WHPOverlay struct {
	Meta
	// Total is the fleet size.
	Total int `json:"total"`
	// AtRisk is the moderate+high+very-high total (the paper's 430,844
	// analog).
	AtRisk int `json:"at_risk"`
	// ByClass counts transceivers per WHP class name; empty classes are
	// omitted.
	ByClass map[string]int `json:"by_class"`
	// States lists the per-state at-risk breakdown, ordered by state
	// abbreviation; states with no at-risk transceivers are omitted.
	States []StateClassCounts `json:"states"`
}

// Validation is the GET /v1/validate body: the §3.4 hold-out season
// validation.
type Validation struct {
	Meta
	InPerimeter         int     `json:"in_perimeter"`
	Predicted           int     `json:"predicted"`
	MissesInRoadFires   int     `json:"misses_in_road_fires"`
	RoadFireTotal       int     `json:"road_fire_total"`
	AccuracyPct         float64 `json:"accuracy_pct"`
	AccuracyExclRoadPct float64 `json:"accuracy_excl_road_pct"`
}

// Extend is the POST /v1/extend body: the §3.8 very-high extension
// experiment through the unified ExtendWith entry point.
type Extend struct {
	Meta
	// Fine reports which path ran: the fine California window (true) or
	// the coarse national raster (false).
	Fine bool `json:"fine"`
	// CellSizeM and DistM echo the resolved analysis parameters.
	CellSizeM float64 `json:"cell_size_m"`
	DistM     float64 `json:"dist_m"`
	// VHBefore and VHAfter count very-high transceivers before and
	// after the dilation (window-scoped on the fine path).
	VHBefore int `json:"vh_before"`
	VHAfter  int `json:"vh_after"`
	// TotalAtRiskBefore/After are the moderate+ totals (coarse path
	// only; omitted on the fine path).
	TotalAtRiskBefore int `json:"total_at_risk_before,omitempty"`
	TotalAtRiskAfter  int `json:"total_at_risk_after,omitempty"`
	// WindowTransceivers and InPerimeter describe the California window
	// (fine path only; omitted on the coarse path).
	WindowTransceivers int `json:"window_transceivers,omitempty"`
	InPerimeter        int `json:"in_perimeter,omitempty"`
	// AccuracyBeforePct and AccuracyAfterPct are the validation hit
	// rates against the 2019 hold-out season.
	AccuracyBeforePct float64 `json:"accuracy_before_pct"`
	AccuracyAfterPct  float64 `json:"accuracy_after_pct"`
}
