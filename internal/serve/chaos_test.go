package serve

// Chaos suite for the overload-resilience layer, driven by
// internal/faults through Server.SetInjectionHook: overload sheds
// instead of crashing or hanging, handler panics become typed 500s,
// build failures open the circuit breaker deterministically, degraded
// mode serves the last-known-good study with the v1 marker, and the
// storm leaves no goroutines behind. Run under -race by `make chaos-serve`.

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fivealarms/internal/faults"
	"fivealarms/internal/serve/api"
)

// chaosServer builds a private warm server (never the shared suite
// server: chaos mutates injection hooks and breaker clocks).
func chaosServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Config.Seed == 0 {
		opts.Config = testCfg
	}
	s, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

// waitGoroutinesBelow polls until the goroutine count settles at or
// below limit (background builds and canceled waiters need a moment to
// unwind), failing the test if it never does.
func waitGoroutinesBelow(t *testing.T, limit int) {
	t.Helper()
	for i := 0; i < 300; i++ {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutines = %d, want <= %d; stacks:\n%s",
		runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
}

// metricsSnapshot reads /v1/metrics through the full middleware stack.
func metricsSnapshot(t *testing.T, s *Server) api.Metrics {
	t.Helper()
	w := do(t, s, "GET", "/v1/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	return decode[api.Metrics](t, w)
}

// TestChaosOverloadShedsNotCrashes drives the server at 4× its
// admission capacity with injected handler latency: every request must
// resolve promptly to 200, 429 or 503 — never hang, never 5xx-crash —
// at least some must be shed, and the storm must leave no goroutines
// or capacity behind.
func TestChaosOverloadShedsNotCrashes(t *testing.T) {
	s := chaosServer(t, Options{
		Config:       testCfg,
		MaxInFlight:  4,
		MaxQueue:     4,
		ReadDeadline: 250 * time.Millisecond,
	})
	inj := faults.New(1)
	inj.DelayOn("serve/handler/risk_point", 50*time.Millisecond)
	s.SetInjectionHook(inj.Hook())

	baseline := runtime.NumGoroutine()

	const workers = 32 // 4× the weight capacity, 4× the queue
	const perWorker = 4
	var mu sync.Mutex
	statuses := map[int]int{}
	var worst time.Duration
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				start := now()
				w := do(t, s, "GET", "/v1/risk/point?lon=-120&lat=38", "")
				d := time.Since(start)
				mu.Lock()
				statuses[w.Code]++
				if d > worst {
					worst = d
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for code := range statuses {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d under overload (distribution %v)", code, statuses)
		}
	}
	if statuses[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under overload: %v", statuses)
	}
	shed := statuses[http.StatusTooManyRequests] + statuses[http.StatusServiceUnavailable]
	if shed == 0 {
		t.Errorf("nothing shed at 4x oversubscription: %v", statuses)
	}
	// Bounded worst-case latency: deadline plus generous slack, far
	// below what an unbounded queue would produce (128 requests × 50ms
	// serialized through 4 slots ≈ 1.6s+ tail).
	if worst > 2*time.Second {
		t.Errorf("worst latency = %v, want bounded by deadline+slack", worst)
	}

	m := metricsSnapshot(t, s)
	if m.Resilience == nil {
		t.Fatal("metrics missing resilience block")
	}
	if m.Resilience.Shed429+m.Resilience.Shed503+m.Resilience.Timeouts == 0 {
		t.Errorf("resilience counters recorded nothing: %+v", m.Resilience)
	}
	if m.Resilience.InFlight != 0 || m.Resilience.QueueDepth != 0 {
		t.Errorf("capacity leaked: in_flight=%d queue_depth=%d",
			m.Resilience.InFlight, m.Resilience.QueueDepth)
	}
	waitGoroutinesBelow(t, baseline)
}

// TestChaosHandlerPanicIsTyped500: an injected handler panic is
// recovered into a JSON 500 carrying the request ID, counted, and the
// server keeps serving.
func TestChaosHandlerPanicIsTyped500(t *testing.T) {
	s := chaosServer(t, Options{Config: testCfg})
	inj := faults.New(1)
	inj.PanicOn("serve/handler/tables", nil)
	s.SetInjectionHook(inj.Hook())

	w := do(t, s, "GET", "/v1/tables/1", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body)
	}
	e := decode[api.Error](t, w)
	if e.Version != "v1" || e.Status != http.StatusInternalServerError || e.Message == "" {
		t.Errorf("error body = %+v", e)
	}
	if id := w.Header().Get("X-Request-Id"); id == "" || !strings.Contains(e.Message, id) {
		t.Errorf("panic 500 should carry the request id %q in %q", id, e.Message)
	}
	if m := metricsSnapshot(t, s); m.Resilience.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", m.Resilience.Panics)
	}

	// Healed: the same route serves again.
	inj.Reset()
	if w := do(t, s, "GET", "/v1/tables/1", ""); w.Code != http.StatusOK {
		t.Errorf("post-panic status = %d, want 200", w.Code)
	}
}

// TestChaosBreakerOpensAndRecovers walks the circuit deterministically
// on a fake clock: threshold build failures open it (503 + Retry-After
// without attempting a build), the backoff admits a half-open probe,
// and a healed build closes it again — all visible in the metrics.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	s := chaosServer(t, Options{
		Config:           testCfg,
		BreakerThreshold: 2,
		BreakerBackoff:   time.Second,
	})
	clock := newFakeClock()
	s.cache.breaker.now = clock.now
	inj := faults.New(1)
	inj.ErrorOn("serve/build", nil)
	s.SetInjectionHook(inj.Hook())

	// Two failed builds for a fresh seed reach the threshold. No
	// last-known-good exists for it, so the requests surface the build
	// error itself.
	for i := 0; i < 2; i++ {
		if w := do(t, s, "GET", "/v1/tables/1?seed=55", ""); w.Code != http.StatusInternalServerError {
			t.Fatalf("failed-build request %d: status = %d, want 500 (body %s)", i, w.Code, w.Body)
		}
	}

	// Circuit open: shed with 503 + Retry-After, build never attempted.
	builds := len(inj.Events())
	w := do(t, s, "GET", "/v1/tables/1?seed=55", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit status = %d, want 503 (body %s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("open-circuit 503 missing Retry-After header")
	}
	if e := decode[api.Error](t, w); e.RetryAfterS < 1 {
		t.Errorf("retry_after_s = %d, want >= 1", e.RetryAfterS)
	}
	if len(inj.Events()) != builds {
		t.Error("open circuit still attempted a build")
	}

	m := metricsSnapshot(t, s)
	if m.Resilience.BreakerOpens != 1 || m.Resilience.Shed503 == 0 {
		t.Errorf("resilience after open = %+v, want breaker_opens=1 and shed_503>0", m.Resilience)
	}

	// Backoff elapsed + builds healed: the probe closes the circuit.
	clock.advance(time.Second)
	inj.Reset()
	if w := do(t, s, "GET", "/v1/tables/1?seed=55", ""); w.Code != http.StatusOK {
		t.Fatalf("post-heal status = %d, want 200 (body %s)", w.Code, w.Body)
	}
	m = metricsSnapshot(t, s)
	if m.Resilience.BreakerProbes != 1 || m.Resilience.BreakerCloses != 1 {
		t.Errorf("resilience after heal = %+v, want breaker_probes=1, breaker_closes=1", m.Resilience)
	}
}

// TestChaosDegradedServesLastGood: with the current study evicted and
// rebuilds failing, reads and extends fall back to the last-known-good
// study, marked by the additive v1 Meta fields.
func TestChaosDegradedServesLastGood(t *testing.T) {
	s := chaosServer(t, Options{Config: testCfg, MaxStudies: 1})
	inj := faults.New(1)
	inj.ErrorOn("serve/build", nil)
	s.SetInjectionHook(inj.Hook())

	// A request for another seed evicts the warm default-seed entry
	// (capacity 1) and then fails to build; no last-known-good exists
	// for it, so it errors outright — and is NOT marked degraded.
	w := do(t, s, "GET", "/v1/tables/1?seed=77", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("poisoned new seed: status = %d, want 500 (body %s)", w.Code, w.Body)
	}
	if e := decode[api.Error](t, w); e.Degraded {
		t.Error("hard failure marked degraded")
	}

	// The default seed's entry is gone and its rebuild is poisoned, but
	// its last-known-good study survives eviction: reads degrade to it.
	w = do(t, s, "GET", "/v1/tables/1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded read: status = %d, want 200 (body %s)", w.Code, w.Body)
	}
	tb := decode[api.Table1](t, w)
	if !tb.Degraded || tb.Warning == "" {
		t.Errorf("degraded read meta = degraded=%t warning=%q, want marked", tb.Degraded, tb.Warning)
	}
	if len(tb.Rows) == 0 {
		t.Error("degraded read returned no data")
	}

	// The expensive route degrades through the Get-failure path too.
	w = do(t, s, "POST", "/v1/extend", `{"cell_size_m": 0, "dist_m": 0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded extend: status = %d (body %s)", w.Code, w.Body)
	}
	if ext := decode[api.Extend](t, w); !ext.Degraded || ext.Warning == "" {
		t.Errorf("degraded extend meta = degraded=%t warning=%q", ext.Degraded, ext.Warning)
	}

	if m := metricsSnapshot(t, s); m.Resilience.Degraded == 0 {
		t.Errorf("degraded counter = 0, want > 0")
	}

	// Healed: the rebuild succeeds and responses stop carrying the marker.
	inj.Reset()
	deadline := 0
	for {
		w = do(t, s, "GET", "/v1/tables/1", "")
		if w.Code == http.StatusOK && !decode[api.Table1](t, w).Degraded {
			break
		}
		if deadline++; deadline > 200 {
			t.Fatal("server never recovered from degraded mode")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSlowBuildDeadlineSheds: a cold build slower than the read
// deadline sheds the waiting request with 503 + Retry-After (there is
// no last-known-good for its seed) instead of hanging, and counts a
// timeout.
func TestChaosSlowBuildDeadlineSheds(t *testing.T) {
	s := chaosServer(t, Options{Config: testCfg, ReadDeadline: 50 * time.Millisecond})
	inj := faults.New(1)
	inj.DelayOn("serve/build", 300*time.Millisecond)
	s.SetInjectionHook(inj.Hook())

	start := now()
	w := do(t, s, "GET", "/v1/overlay/whp?seed=88", "")
	if d := time.Since(start); d > time.Second {
		t.Errorf("deadline-bound request took %v", d)
	}
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("deadline 503 missing Retry-After")
	}
	if m := metricsSnapshot(t, s); m.Resilience.Timeouts == 0 {
		t.Error("timeouts counter = 0, want > 0")
	}

	// The detached build finishes in the background; once it lands the
	// same query is a warm 200.
	for i := 0; ; i++ {
		if w := do(t, s, "GET", "/v1/overlay/whp?seed=88", ""); w.Code == http.StatusOK {
			break
		}
		if i > 200 {
			t.Fatal("background build never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSlowlorisConnectionReaped: the hardened http.Server closes a
// client that dribbles (or never sends) its request header instead of
// letting it pin a connection indefinitely.
func TestSlowlorisConnectionReaped(t *testing.T) {
	s := testServer(t)
	hs := NewHTTPServer(s.Handler())
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 ||
		hs.IdleTimeout <= 0 || hs.MaxHeaderBytes <= 0 {
		t.Fatalf("NewHTTPServer left hardening unset: %+v", hs)
	}
	hs.ReadHeaderTimeout = 100 * time.Millisecond // fast test, same mechanism

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Open a request and stall mid-header, slowloris-style.
	if _, err := io.WriteString(conn, "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nX-Slow:"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, conn) // returns when the server closes us
		close(done)
	}()
	select {
	case <-done:
		// Reaped: the server gave up on the stalled header.
	case <-time.After(3 * time.Second):
		t.Fatal("stalled client still pinned its connection after 3s")
	}

	// The server itself is unharmed.
	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after slowloris = %d", resp.StatusCode)
	}
}

// TestHTTPServerIntegration drives the full middleware stack over a
// real listener: request IDs are echoed, client-supplied IDs win, and
// bodies remain byte-deterministic with IDs confined to headers.
func TestHTTPServerIntegration(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(id string) (*http.Response, string) {
		req, err := http.NewRequest("GET", ts.URL+"/v1/risk/point?lon=-121.5&lat=38.6", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	r1, b1 := get("")
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Request-Id") == "" {
		t.Fatalf("status %d, request id %q", r1.StatusCode, r1.Header.Get("X-Request-Id"))
	}
	r2, b2 := get("client-supplied-7")
	if got := r2.Header.Get("X-Request-Id"); got != "client-supplied-7" {
		t.Errorf("client request id not honored: %q", got)
	}
	if b1 != b2 {
		t.Error("request IDs leaked into response bodies (bytes differ)")
	}
	if strings.Contains(b1, r1.Header.Get("X-Request-Id")) {
		t.Error("response body contains the request id")
	}
}
