package serve

import (
	"sort"
	"sync/atomic"
	"time"

	"fivealarms/internal/serve/api"
)

// bucketBoundsMs are the upper bounds (milliseconds, inclusive) of the
// fixed latency histogram every endpoint maintains. One extra overflow
// bucket catches observations above the last bound. The geometry is
// fixed so the histogram is always-on and allocation-free on the
// request path (modeled on rdk's compact ftdc telemetry): recording is
// one atomic increment, and quantile queries answer with the upper
// bound of the containing bucket.
var bucketBoundsMs = [...]float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
}

const numBuckets = len(bucketBoundsMs) + 1 // + overflow

// endpointStats is one endpoint's always-on counters. All fields are
// atomics: the request path never takes a lock.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	buckets  [numBuckets]atomic.Uint64
}

// observe records one request with the given latency and error flag.
func (e *endpointStats) observe(ms float64, isError bool) {
	e.requests.Add(1)
	if isError {
		e.errors.Add(1)
	}
	i := sort.SearchFloat64s(bucketBoundsMs[:], ms)
	e.buckets[i].Add(1)
}

// quantile returns the upper bound of the bucket containing the q'th
// latency quantile, -1 when nothing has been observed. The overflow
// bucket reports the largest finite bound: the histogram cannot
// distinguish latencies beyond it.
func (e *endpointStats) quantile(q float64) float64 {
	var counts [numBuckets]uint64
	total := uint64(0)
	for i := range e.buckets {
		counts[i] = e.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return -1
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bucketBoundsMs) {
				return bucketBoundsMs[i]
			}
			break
		}
	}
	return bucketBoundsMs[len(bucketBoundsMs)-1]
}

// resilienceStats counts the overload-resilience machinery's decisions:
// sheds by kind, server-deadline expiries, recovered panics, degraded
// responses, and circuit-breaker state transitions. All atomics — the
// shed path is as lock-free as the success path.
type resilienceStats struct {
	shed429       atomic.Uint64
	shed503       atomic.Uint64
	timeouts      atomic.Uint64
	panics        atomic.Uint64
	degraded      atomic.Uint64
	breakerOpens  atomic.Uint64
	breakerProbes atomic.Uint64
	breakerCloses atomic.Uint64
}

// Metrics holds the per-endpoint request statistics behind GET
// /v1/metrics. Endpoints register once at server construction; after
// that the map is read-only and the request path is lock-free.
type Metrics struct {
	endpoints  map[string]*endpointStats
	names      []string // sorted, for deterministic snapshots
	resilience resilienceStats
}

// NewMetrics returns a Metrics tracking exactly the named endpoints.
func NewMetrics(names ...string) *Metrics {
	m := &Metrics{endpoints: make(map[string]*endpointStats, len(names))}
	for _, n := range names {
		if _, ok := m.endpoints[n]; !ok {
			m.endpoints[n] = &endpointStats{}
			m.names = append(m.names, n)
		}
	}
	sort.Strings(m.names)
	return m
}

// Observe records one request against the named endpoint. Unknown
// names are dropped (the router only passes registered names).
func (m *Metrics) Observe(name string, d time.Duration, isError bool) {
	if e := m.endpoints[name]; e != nil {
		e.observe(float64(d.Nanoseconds())/1e6, isError)
	}
}

// CountShed records one load-shedding rejection of the given kind
// (queue full → 429, breaker open → 503).
func (m *Metrics) CountShed(kind shedKind) {
	if kind == shedQueue {
		m.resilience.shed429.Add(1)
	} else {
		m.resilience.shed503.Add(1)
	}
}

// CountTimeout records one request shed because its server-side
// deadline expired before it could be served.
func (m *Metrics) CountTimeout() { m.resilience.timeouts.Add(1) }

// CountPanic records one handler panic recovered into a typed 500.
func (m *Metrics) CountPanic() { m.resilience.panics.Add(1) }

// CountDegraded records one response served from the last-known-good
// study instead of the requested one.
func (m *Metrics) CountDegraded() { m.resilience.degraded.Add(1) }

// CountBreakerOpen, CountBreakerProbe and CountBreakerClose record the
// build circuit breaker's state transitions.
func (m *Metrics) CountBreakerOpen() { m.resilience.breakerOpens.Add(1) }

// CountBreakerProbe records one open → half-open probe admission.
func (m *Metrics) CountBreakerProbe() { m.resilience.breakerProbes.Add(1) }

// CountBreakerClose records one circuit closing after a successful
// probe.
func (m *Metrics) CountBreakerClose() { m.resilience.breakerCloses.Add(1) }

// Snapshot renders the current counters as the v1 metrics DTO, one row
// per endpoint in name order. Resilience is always present in the
// snapshot (the caller fills in the limiter gauges).
func (m *Metrics) Snapshot() api.Metrics {
	out := api.Metrics{Meta: api.NewMeta()}
	for _, n := range m.names {
		e := m.endpoints[n]
		out.Endpoints = append(out.Endpoints, api.EndpointMetrics{
			Endpoint: n,
			Requests: e.requests.Load(),
			Errors:   e.errors.Load(),
			P50Ms:    e.quantile(0.50),
			P99Ms:    e.quantile(0.99),
		})
	}
	r := &m.resilience
	out.Resilience = &api.Resilience{
		Shed429:       r.shed429.Load(),
		Shed503:       r.shed503.Load(),
		Timeouts:      r.timeouts.Load(),
		Panics:        r.panics.Load(),
		Degraded:      r.degraded.Load(),
		BreakerOpens:  r.breakerOpens.Load(),
		BreakerProbes: r.breakerProbes.Load(),
		BreakerCloses: r.breakerCloses.Load(),
	}
	return out
}
