package serve

import (
	"context"
	"sync"
)

// limiter is the admission controller: a weighted concurrency limit
// with a bounded FIFO wait queue. Cheap cached reads acquire one weight
// unit; expensive requests (extend analyses, anything that can
// commission a cold study build) acquire several, so one class cannot
// starve the other of the shared capacity. When the queue is full the
// limiter sheds instead of queueing — the caller maps that to a 429
// with Retry-After — and a waiter whose context expires leaves the
// queue without consuming capacity.
type limiter struct {
	mu       sync.Mutex
	capacity int // total weight units
	inUse    int
	maxQueue int
	queue    []*waiter // FIFO; head is granted first
}

// waiter is one queued acquisition. ready is closed exactly once, when
// the limiter grants the waiter's weight.
type waiter struct {
	weight  int
	ready   chan struct{}
	granted bool
}

// newLimiter returns a limiter with the given weight capacity and wait
// queue bound (both forced to at least 1).
func newLimiter(capacity, maxQueue int) *limiter {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &limiter{capacity: capacity, maxQueue: maxQueue}
}

// Acquire obtains weight units of capacity, waiting in FIFO order
// behind earlier arrivals. It returns a release closure on success; an
// *overloadError (queue full → shed) or ctx.Err() (deadline blown or
// client gone while queued) otherwise. Weights above the capacity are
// clamped so a single heavy request stays admissible — it simply needs
// the limiter to itself.
func (l *limiter) Acquire(ctx context.Context, weight int) (release func(), err error) {
	if weight <= 0 {
		return func() {}, nil
	}
	if weight > l.capacity {
		weight = l.capacity
	}

	l.mu.Lock()
	// Fast path: capacity free and nobody queued ahead.
	if l.inUse+weight <= l.capacity && len(l.queue) == 0 {
		l.inUse += weight
		l.mu.Unlock()
		return func() { l.release(weight) }, nil
	}
	if len(l.queue) >= l.maxQueue {
		l.mu.Unlock()
		return nil, errQueueFull(l.maxQueue)
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		return func() { l.release(weight) }, nil
	case <-ctx.Done():
		l.mu.Lock()
		granted := w.granted
		if !granted {
			for i, q := range l.queue {
				if q == w {
					l.queue = append(l.queue[:i], l.queue[i+1:]...)
					break
				}
			}
		}
		l.mu.Unlock()
		if granted {
			// The grant raced the cancellation: hand the weight back.
			l.release(weight)
		}
		return nil, ctx.Err()
	}
}

// release returns weight units and grants queued waiters, in FIFO
// order, for as long as they fit.
func (l *limiter) release(weight int) {
	l.mu.Lock()
	l.inUse -= weight
	if l.inUse < 0 {
		l.inUse = 0 // release without acquire is a caller bug; stay sane
	}
	for len(l.queue) > 0 {
		head := l.queue[0]
		if l.inUse+head.weight > l.capacity {
			break
		}
		l.queue = l.queue[1:]
		l.inUse += head.weight
		head.granted = true
		close(head.ready)
	}
	l.mu.Unlock()
}

// InFlight reports the weight units currently executing.
func (l *limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// QueueDepth reports the number of requests waiting for admission.
func (l *limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}
