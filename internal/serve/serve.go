// Package serve implements the fivealarms risk-query server: a
// long-running stdlib net/http service exposing an immutable Study as
// a JSON API (the v1 wire contract in internal/serve/api).
//
// Studies are seed-keyed snapshots held in a singleflight LRU —
// concurrent first requests for a (seed, config-hash) share one build,
// later requests are warm cache hits — and every handler honors its
// request context: a canceled request detaches immediately (a
// 499-style abort) while shared builds keep running for the remaining
// waiters. Per-endpoint request/error counts and latency quantiles are
// always on (see Metrics) and served at /v1/metrics.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fivealarms"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/serve/api"
)

// StatusClientClosedRequest is the nonstandard (nginx-convention)
// status reported when the client's request context is canceled before
// a response is written.
const StatusClientClosedRequest = 499

// Options configures a Server.
type Options struct {
	// Config is the base study configuration. Requests may override the
	// seed (?seed=N); every other field is fixed at server start.
	Config fivealarms.Config
	// MaxStudies bounds the study LRU (default 4). Each resident study
	// holds its full layer set in memory.
	MaxStudies int
}

// endpoint names, as reported by /v1/metrics.
const (
	epHealthz   = "healthz"
	epMetrics   = "metrics"
	epRiskPoint = "risk_point"
	epRiskBBox  = "risk_bbox"
	epTables    = "tables"
	epOverlay   = "overlay_whp"
	epValidate  = "validate"
	epExtend    = "extend"
)

// Server answers risk queries over a cache of immutable studies. Safe
// for concurrent use; construct with New.
type Server struct {
	opts    Options
	cache   *studyCache
	metrics *Metrics
	mux     *http.ServeMux
}

// New builds a Server. baseCtx bounds the lifetime of every study
// build the server starts (cancel it on shutdown to abort in-flight
// builds); opts.Config is validated here so malformed scales fail at
// startup, not on first request.
func New(baseCtx context.Context, opts Options) (*Server, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxStudies <= 0 {
		opts.MaxStudies = 4
	}
	s := &Server{
		opts: opts,
		cache: newStudyCache(baseCtx, opts.MaxStudies,
			func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
				return fivealarms.NewStudyWithOptions(
					fivealarms.WithConfig(cfg), fivealarms.WithContext(ctx))
			}),
		metrics: NewMetrics(epHealthz, epMetrics, epRiskPoint, epRiskBBox,
			epTables, epOverlay, epValidate, epExtend),
		mux: http.NewServeMux(),
	}
	s.route("GET /v1/healthz", epHealthz, s.handleHealthz)
	s.route("GET /v1/metrics", epMetrics, s.handleMetrics)
	s.route("GET /v1/risk/point", epRiskPoint, s.handleRiskPoint)
	s.route("GET /v1/risk/bbox", epRiskBBox, s.handleRiskBBox)
	s.route("GET /v1/tables/{n}", epTables, s.handleTables)
	s.route("GET /v1/overlay/whp", epOverlay, s.handleOverlayWHP)
	s.route("GET /v1/validate", epValidate, s.handleValidate)
	s.route("POST /v1/extend", epExtend, s.handleExtend)
	return s, nil
}

// Handler returns the server's root handler (the /v1 route set).
func (s *Server) Handler() http.Handler { return s.mux }

// Warm builds the default-config study ahead of traffic so the first
// request is a cache hit. Honors ctx like any other waiter.
func (s *Server) Warm(ctx context.Context) error {
	_, err := s.cache.Get(ctx, s.opts.Config)
	return err
}

// Metrics exposes the per-endpoint counters (for load generators and
// tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// handlerFunc is the internal handler shape: success writes its own
// response, failure returns an error the instrumentation wrapper maps
// to a JSON error body and metrics.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// httpError carries an explicit response status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 error.
func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errStatus maps a handler error to its HTTP status: explicit
// httpError statuses pass through, request-context cancellation
// becomes the 499-style abort, anything else is a 500.
func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return StatusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// now returns the wall clock for latency measurement. Serving metrics
// are observational and deliberately outside the seed-determinism
// contract; nothing a study computes ever reads this clock.
func now() time.Time {
	return time.Now() //fivealarms:allow(seededrand) request-latency metrics are observational wall-clock, never study inputs
}

// route registers fn under pattern with latency/error instrumentation.
func (s *Server) route(pattern, name string, fn handlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := now()
		err := fn(w, r)
		status := http.StatusOK
		if err != nil {
			status = errStatus(err)
			writeError(w, status, err)
		}
		s.metrics.Observe(name, time.Since(start), status >= http.StatusBadRequest)
	})
}

// writeJSON encodes v (indented, trailing newline) and writes it with
// the given status. Encoding happens before headers so a marshal
// failure can still become a 500.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("serve: encoding response: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err := w.Write(buf.Bytes())
	return err
}

// writeError emits the uniform api.Error body. Best-effort: the client
// may already be gone.
func writeError(w http.ResponseWriter, status int, err error) {
	body, mErr := json.MarshalIndent(api.Error{
		Meta:    api.NewMeta(),
		Status:  status,
		Message: err.Error(),
	}, "", "  ")
	if mErr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// study resolves the request's study entry: the server's base config
// with an optional ?seed=N override, through the singleflight LRU.
func (s *Server) study(r *http.Request) (*studyEntry, error) {
	cfg := s.opts.Config
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return nil, badRequest("seed: want an unsigned integer, got %q", q)
		}
		cfg.Seed = v
	}
	return s.cache.Get(r.Context(), cfg)
}

// queryFloat parses a required finite float query parameter within
// [lo, hi].
func queryFloat(r *http.Request, name string, lo, hi float64) (float64, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, badRequest("missing required parameter %q", name)
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badRequest("%s: want a finite number, got %q", name, q)
	}
	if v < lo || v > hi {
		return 0, badRequest("%s: %v outside [%v, %v]", name, v, lo, hi)
	}
	return v, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, api.Health{
		Meta:          api.NewMeta(),
		Status:        "ok",
		StudiesCached: s.cache.Len(),
		DefaultSeed:   s.opts.Config.Seed,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Server) handleRiskPoint(w http.ResponseWriter, r *http.Request) error {
	lon, err := queryFloat(r, "lon", -180, 180)
	if err != nil {
		return err
	}
	lat, err := queryFloat(r, "lat", -90, 90)
	if err != nil {
		return err
	}
	e, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	xy := st.World.ToXY(geom.Point{X: lon, Y: lat})
	cls := st.WHP.ClassAt(xy)
	res := api.PointRisk{
		Meta:             api.NewMeta(),
		Lon:              lon,
		Lat:              lat,
		XM:               xy.X,
		YM:               xy.Y,
		OnConus:          st.World.Contains(xy),
		HazardClass:      cls.String(),
		HazardValue:      st.WHP.HazardAt(xy),
		AtRisk:           cls.AtRisk(),
		NearestFireDistM: -1,
	}
	if si := st.World.StateAt(xy); si >= 0 && si < len(geodata.States) {
		res.State = geodata.States[si].Abbrev
	}
	mask := st.HistoryUnionMask()
	if cx, cy, ok := mask.CellOf(xy); ok {
		res.InHistoricalPerimeter = mask.Get(cx, cy)
	}
	if v, ok := e.FireDist().Sample(xy); ok && !math.IsInf(v, 1) {
		res.NearestFireDistM = v
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRiskBBox(w http.ResponseWriter, r *http.Request) error {
	minLon, err := queryFloat(r, "min_lon", -180, 180)
	if err != nil {
		return err
	}
	minLat, err := queryFloat(r, "min_lat", -90, 90)
	if err != nil {
		return err
	}
	maxLon, err := queryFloat(r, "max_lon", -180, 180)
	if err != nil {
		return err
	}
	maxLat, err := queryFloat(r, "max_lat", -90, 90)
	if err != nil {
		return err
	}
	if minLon > maxLon || minLat > maxLat {
		return badRequest("empty box: want min_lon <= max_lon and min_lat <= max_lat")
	}
	e, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	// The lon/lat box maps to a non-rectangular region under Albers;
	// evaluate the bounding box of the four projected corners (the
	// documented v1 semantics).
	box := geom.EmptyBBox()
	for _, ll := range []geom.Point{
		{X: minLon, Y: minLat}, {X: minLon, Y: maxLat},
		{X: maxLon, Y: minLat}, {X: maxLon, Y: maxLat},
	} {
		xy := st.World.ToXY(ll)
		box = box.ExtendPoint(xy)
	}
	res := api.BBoxRisk{
		Meta:    api.NewMeta(),
		MinLon:  minLon,
		MinLat:  minLat,
		MaxLon:  maxLon,
		MaxLat:  maxLat,
		ByClass: map[string]int{},
	}
	mask := st.HistoryUnionMask()
	for _, ti := range st.Data.Index.Query(box, nil) {
		t := &st.Data.T[ti]
		cls := st.Analyzer.Class(ti)
		res.Transceivers++
		res.ByClass[cls.String()]++
		if cls.AtRisk() {
			res.AtRisk++
		}
		if cx, cy, ok := mask.CellOf(t.XY); ok && mask.Get(cx, cy) {
			res.InHistoricalPerimeter++
		}
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) error {
	e, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	switch r.PathValue("n") {
	case "1":
		return writeJSON(w, http.StatusOK, api.Table1From(st.Table1()))
	case "2":
		return writeJSON(w, http.StatusOK, api.Table2From(st.Table2()))
	case "3":
		return writeJSON(w, http.StatusOK, api.Table3From(st.Table3()))
	}
	return &httpError{status: http.StatusNotFound,
		msg: fmt.Sprintf("unknown table %q: want 1, 2 or 3", r.PathValue("n"))}
}

func (s *Server) handleOverlayWHP(w http.ResponseWriter, r *http.Request) error {
	e, err := s.study(r)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, api.WHPOverlayFrom(e.study.WHPOverlay()))
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) error {
	e, err := s.study(r)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, api.ValidationFrom(e.study.Validate()))
}

// extendRequest is the POST /v1/extend body: fivealarms.ExtendOptions
// with explicit v1 field names.
type extendRequest struct {
	CellSizeM float64 `json:"cell_size_m"`
	DistM     float64 `json:"dist_m"`
}

// Request bounds for /v1/extend: cells finer than 100 m or buffers
// beyond 100 km would let one request exhaust the server's memory or
// CPU (the library's own national-raster floor is 100 m).
const (
	minExtendCellM = 100
	maxExtendDistM = 100_000
)

func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req extendRequest
	if err := dec.Decode(&req); err != nil {
		return badRequest("body: %v", err)
	}
	if math.IsNaN(req.CellSizeM) || math.IsInf(req.CellSizeM, 0) ||
		math.IsNaN(req.DistM) || math.IsInf(req.DistM, 0) {
		return badRequest("cell_size_m and dist_m must be finite")
	}
	if req.CellSizeM < 0 || (req.CellSizeM > 0 && req.CellSizeM < minExtendCellM) {
		return badRequest("cell_size_m: want 0 (coarse path) or >= %d, got %v", minExtendCellM, req.CellSizeM)
	}
	if req.DistM < 0 || req.DistM > maxExtendDistM {
		return badRequest("dist_m: want 0 (paper default) .. %d, got %v", maxExtendDistM, req.DistM)
	}
	e, err := s.study(r)
	if err != nil {
		return err
	}
	rep := e.study.ExtendWith(fivealarms.ExtendOptions{CellSizeM: req.CellSizeM, DistM: req.DistM})
	return writeJSON(w, http.StatusOK, api.ExtendFrom(rep))
}
