// Package serve implements the fivealarms risk-query server: a
// long-running stdlib net/http service exposing an immutable Study as
// a JSON API (the v1 wire contract in internal/serve/api).
//
// Studies are seed-keyed snapshots held in a singleflight LRU —
// concurrent first requests for a (seed, config-hash) share one build,
// later requests are warm cache hits — and every handler honors its
// request context: a canceled request detaches immediately (a
// 499-style abort) while shared builds keep running for the remaining
// waiters. Per-endpoint request/error counts and latency quantiles are
// always on (see Metrics) and served at /v1/metrics.
//
// The serving layer is overload-resilient by construction (DESIGN.md
// "Overload & degradation policy"): every route runs under a panic
// recovery + deadline + admission middleware stack, excess load is shed
// with 429/503 + Retry-After instead of queueing forever, study builds
// sit behind a per-key circuit breaker so a poisoned config cannot
// consume the build budget, and when the current study is unavailable
// the server degrades to the last-known-good one (marked in Meta)
// rather than failing closed.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fivealarms"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/serve/api"
)

// StatusClientClosedRequest is the nonstandard (nginx-convention)
// status reported when the client's request context is canceled before
// a response is written.
const StatusClientClosedRequest = 499

// Default resilience parameters (all overridable via Options).
const (
	defaultReadDeadline   = 2 * time.Second
	defaultBuildDeadline  = 30 * time.Second
	defaultMaxInFlight    = 64
	defaultBuildWeight    = 8
	defaultBreakerTrips   = 3
	defaultBreakerBackoff = time.Second
	defaultBreakerMax     = time.Minute
)

// Options configures a Server.
type Options struct {
	// Config is the base study configuration. Requests may override the
	// seed (?seed=N); every other field is fixed at server start.
	Config fivealarms.Config
	// MaxStudies bounds the study LRU (default 4). Each resident study
	// holds its full layer set in memory; degraded mode may retain up
	// to the same number of last-known-good studies alongside.
	MaxStudies int

	// ReadDeadline bounds cheap read handlers — point/bbox lookups,
	// tables, overlay, validate (default 2s). A read that cannot be
	// answered in time is shed (503 + Retry-After) or served degraded,
	// never left hanging.
	ReadDeadline time.Duration
	// BuildDeadline bounds expensive requests: /v1/extend analyses
	// (default 30s).
	BuildDeadline time.Duration

	// MaxInFlight is the admission controller's weight capacity
	// (default 64): cheap reads cost 1, expensive requests cost
	// BuildWeight (default 8), so cold builds cannot monopolize the
	// server and a burst of reads cannot starve builds.
	MaxInFlight int
	// MaxQueue bounds the admission FIFO wait queue (default
	// 2×MaxInFlight). Arrivals beyond it are shed with 429.
	MaxQueue int
	// BuildWeight is the admission weight of expensive requests.
	BuildWeight int

	// BreakerThreshold is the consecutive build failures per (seed,
	// config) key that open the build circuit (default 3).
	BreakerThreshold int
	// BreakerBackoff is the base open-circuit backoff; successive opens
	// double it up to BreakerMaxBackoff (defaults 1s and 1m), jittered
	// deterministically from the config seed.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MaxStudies <= 0 {
		o.MaxStudies = 4
	}
	if o.ReadDeadline <= 0 {
		o.ReadDeadline = defaultReadDeadline
	}
	if o.BuildDeadline <= 0 {
		o.BuildDeadline = defaultBuildDeadline
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = defaultMaxInFlight
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxInFlight
	}
	if o.BuildWeight <= 0 {
		o.BuildWeight = defaultBuildWeight
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = defaultBreakerTrips
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = defaultBreakerBackoff
	}
	if o.BreakerMaxBackoff <= 0 {
		o.BreakerMaxBackoff = defaultBreakerMax
	}
	return o
}

// endpoint names, as reported by /v1/metrics.
const (
	epHealthz   = "healthz"
	epMetrics   = "metrics"
	epRiskPoint = "risk_point"
	epRiskBBox  = "risk_bbox"
	epTables    = "tables"
	epOverlay   = "overlay_whp"
	epValidate  = "validate"
	epExtend    = "extend"
)

// Server answers risk queries over a cache of immutable studies. Safe
// for concurrent use; construct with New.
type Server struct {
	opts    Options
	cache   *studyCache
	metrics *Metrics
	limiter *limiter
	mux     *http.ServeMux

	// inject is the test-only chaos hook; see SetInjectionHook.
	inject func(task string) error
}

// New builds a Server. baseCtx bounds the lifetime of every study
// build the server starts (cancel it on shutdown to abort in-flight
// builds); opts.Config is validated here so malformed scales fail at
// startup, not on first request.
func New(baseCtx context.Context, opts Options) (*Server, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	metrics := NewMetrics(epHealthz, epMetrics, epRiskPoint, epRiskBBox,
		epTables, epOverlay, epValidate, epExtend)
	bk := newBuildBreaker(opts.BreakerThreshold, opts.BreakerBackoff,
		opts.BreakerMaxBackoff, opts.Config.Seed)
	bk.onOpen = metrics.CountBreakerOpen
	bk.onProbe = metrics.CountBreakerProbe
	bk.onClose = metrics.CountBreakerClose
	s := &Server{
		opts: opts,
		cache: newStudyCache(baseCtx, opts.MaxStudies, bk,
			func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
				return fivealarms.NewStudyWithOptions(
					fivealarms.WithConfig(cfg), fivealarms.WithContext(ctx))
			}),
		metrics: metrics,
		limiter: newLimiter(opts.MaxInFlight, opts.MaxQueue),
		mux:     http.NewServeMux(),
	}
	exempt := routeClass{name: "exempt", deadline: 5 * time.Second}
	read := routeClass{name: "read", deadline: opts.ReadDeadline, weight: 1, fastDegrade: true}
	build := routeClass{name: "build", deadline: opts.BuildDeadline, weight: opts.BuildWeight}
	s.route("GET /v1/healthz", epHealthz, exempt, s.handleHealthz)
	s.route("GET /v1/metrics", epMetrics, exempt, s.handleMetrics)
	s.route("GET /v1/risk/point", epRiskPoint, read, s.handleRiskPoint)
	s.route("GET /v1/risk/bbox", epRiskBBox, read, s.handleRiskBBox)
	s.route("GET /v1/tables/{n}", epTables, read, s.handleTables)
	s.route("GET /v1/overlay/whp", epOverlay, read, s.handleOverlayWHP)
	s.route("GET /v1/validate", epValidate, read, s.handleValidate)
	s.route("POST /v1/extend", epExtend, build, s.handleExtend)
	return s, nil
}

// Handler returns the server's root handler (the /v1 route set).
func (s *Server) Handler() http.Handler { return s.mux }

// Warm builds the default-config study ahead of traffic so the first
// request is a cache hit. Honors ctx like any other waiter.
func (s *Server) Warm(ctx context.Context) error {
	_, err := s.cache.Get(ctx, s.opts.Config)
	return err
}

// Metrics exposes the per-endpoint counters (for load generators and
// tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetInjectionHook installs a chaos hook that runs immediately before
// each handler body (task "serve/handler/<endpoint>") and each study
// build (task "serve/build"). The hook may return an error, panic, or
// sleep — mirroring pipeline.Graph.SetInjectionHook. Test-only by
// convention: install before serving traffic and never in production.
func (s *Server) SetInjectionHook(hook func(task string) error) {
	s.inject = hook
	s.cache.inject = hook
}

// handlerFunc is the internal handler shape: success writes its own
// response, failure returns an error the middleware maps to a JSON
// error body and metrics.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// httpError carries an explicit response status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 error.
func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// now returns the wall clock for latency measurement and breaker
// backoff. Serving behavior is observational and deliberately outside
// the seed-determinism contract; nothing a study computes ever reads
// this clock.
func now() time.Time {
	return time.Now() //fivealarms:allow(seededrand) serving-layer wall-clock (latency metrics, breaker backoff), never a study input
}

// writeJSON encodes v (indented, trailing newline) and writes it with
// the given status. Encoding happens before headers so a marshal
// failure can still become a 500.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("serve: encoding response: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err := w.Write(buf.Bytes())
	return err
}

// degradeInfo travels from study resolution to the response Meta.
type degradeInfo struct {
	degraded bool
	warning  string
}

// apply marks m when the backing study is the last-known-good fallback.
func (d degradeInfo) apply(m *api.Meta) {
	if d.degraded {
		m.Degraded = true
		m.Warning = d.warning
	}
}

// study resolves the request's study entry: the server's base config
// with an optional ?seed=N override, through the singleflight LRU.
//
// Degraded mode (fail-open): when the requested study cannot be served
// in time — its build circuit is open, its build failed, or a cheap
// read would blow its deadline waiting on a cold (re)build — and a
// last-known-good study exists for the same key, that study is served
// instead, marked in the response Meta. Requests whose client has
// already gone away never degrade; they fail with the context error.
func (s *Server) study(r *http.Request) (*studyEntry, degradeInfo, error) {
	cfg := s.opts.Config
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return nil, degradeInfo{}, badRequest("seed: want an unsigned integer, got %q", q)
		}
		cfg.Seed = v
	}
	rs := stateFrom(r.Context())

	// Predictive degrade for cheap reads: if the study is mid-(re)build
	// the deadline would likely be blown waiting, so serve stale-but-
	// good immediately and let the build proceed in the background.
	if rs != nil && rs.class.fastDegrade && !s.cache.ReadyHealthy(cfg) {
		if lg := s.cache.LastGood(cfg); lg != nil {
			// Keep the rebuild moving (breaker permitting) without
			// waiting on it; a breaker rejection here is fine — the
			// stale study still answers this read.
			s.cache.entryFor(cfg) //fivealarms:allow(errflow) poke only: a breaker rejection is fine, the stale study still answers this read
			return lg, s.degrade("current study is rebuilding; serving last-known-good"), nil
		}
	}

	e, err := s.cache.Get(r.Context(), cfg)
	if err == nil {
		return e, degradeInfo{}, nil
	}
	// Fail open when possible: breaker-open rejections, failed builds,
	// and server-side deadline expiry all fall back to the last-known-
	// good study — but not for clients that already hung up.
	clientGone := rs == nil || rs.clientCtx.Err() != nil
	if !clientGone {
		if lg := s.cache.LastGood(cfg); lg != nil {
			return lg, s.degrade(degradeReason(err)), nil
		}
	}
	return nil, degradeInfo{}, err
}

// degrade counts and describes one degraded response.
func (s *Server) degrade(reason string) degradeInfo {
	s.metrics.CountDegraded()
	return degradeInfo{degraded: true, warning: reason}
}

// degradeReason renders the warning string for a fail-open fallback.
func degradeReason(err error) string {
	var oe *overloadError
	switch {
	case errors.As(err, &oe):
		return "study build circuit open; serving last-known-good"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline waiting for study build; serving last-known-good"
	default:
		return "study build failed; serving last-known-good"
	}
}

// queryFloat parses a required finite float query parameter within
// [lo, hi].
func queryFloat(r *http.Request, name string, lo, hi float64) (float64, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, badRequest("missing required parameter %q", name)
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badRequest("%s: want a finite number, got %q", name, q)
	}
	if v < lo || v > hi {
		return 0, badRequest("%s: %v outside [%v, %v]", name, v, lo, hi)
	}
	return v, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, api.Health{
		Meta:          api.NewMeta(),
		Status:        "ok",
		StudiesCached: s.cache.Len(),
		DefaultSeed:   s.opts.Config.Seed,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	snap := s.metrics.Snapshot()
	snap.Resilience.InFlight = s.limiter.InFlight()
	snap.Resilience.QueueDepth = s.limiter.QueueDepth()
	return writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleRiskPoint(w http.ResponseWriter, r *http.Request) error {
	lon, err := queryFloat(r, "lon", -180, 180)
	if err != nil {
		return err
	}
	lat, err := queryFloat(r, "lat", -90, 90)
	if err != nil {
		return err
	}
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	xy := st.World.ToXY(geom.Point{X: lon, Y: lat})
	cls := st.WHP.ClassAt(xy)
	res := api.PointRisk{
		Meta:             api.NewMeta(),
		Lon:              lon,
		Lat:              lat,
		XM:               xy.X,
		YM:               xy.Y,
		OnConus:          st.World.Contains(xy),
		HazardClass:      cls.String(),
		HazardValue:      st.WHP.HazardAt(xy),
		AtRisk:           cls.AtRisk(),
		NearestFireDistM: -1,
	}
	if si := st.World.StateAt(xy); si >= 0 && si < len(geodata.States) {
		res.State = geodata.States[si].Abbrev
	}
	mask := st.HistoryUnionMask()
	if cx, cy, ok := mask.CellOf(xy); ok {
		res.InHistoricalPerimeter = mask.Get(cx, cy)
	}
	if v, ok := e.FireDist().Sample(xy); ok && !math.IsInf(v, 1) {
		res.NearestFireDistM = v
	}
	deg.apply(&res.Meta)
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRiskBBox(w http.ResponseWriter, r *http.Request) error {
	minLon, err := queryFloat(r, "min_lon", -180, 180)
	if err != nil {
		return err
	}
	minLat, err := queryFloat(r, "min_lat", -90, 90)
	if err != nil {
		return err
	}
	maxLon, err := queryFloat(r, "max_lon", -180, 180)
	if err != nil {
		return err
	}
	maxLat, err := queryFloat(r, "max_lat", -90, 90)
	if err != nil {
		return err
	}
	if minLon > maxLon || minLat > maxLat {
		return badRequest("empty box: want min_lon <= max_lon and min_lat <= max_lat")
	}
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	// The lon/lat box maps to a non-rectangular region under Albers;
	// evaluate the bounding box of the four projected corners (the
	// documented v1 semantics).
	box := geom.EmptyBBox()
	for _, ll := range []geom.Point{
		{X: minLon, Y: minLat}, {X: minLon, Y: maxLat},
		{X: maxLon, Y: minLat}, {X: maxLon, Y: maxLat},
	} {
		xy := st.World.ToXY(ll)
		box = box.ExtendPoint(xy)
	}
	res := api.BBoxRisk{
		Meta:    api.NewMeta(),
		MinLon:  minLon,
		MinLat:  minLat,
		MaxLon:  maxLon,
		MaxLat:  maxLat,
		ByClass: map[string]int{},
	}
	mask := st.HistoryUnionMask()
	for _, ti := range st.Data.Index.Query(box, nil) {
		t := &st.Data.T[ti]
		cls := st.Analyzer.Class(ti)
		res.Transceivers++
		res.ByClass[cls.String()]++
		if cls.AtRisk() {
			res.AtRisk++
		}
		if cx, cy, ok := mask.CellOf(t.XY); ok && mask.Get(cx, cy) {
			res.InHistoricalPerimeter++
		}
	}
	deg.apply(&res.Meta)
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) error {
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	st := e.study
	switch r.PathValue("n") {
	case "1":
		res := api.Table1From(st.Table1())
		deg.apply(&res.Meta)
		return writeJSON(w, http.StatusOK, res)
	case "2":
		res := api.Table2From(st.Table2())
		deg.apply(&res.Meta)
		return writeJSON(w, http.StatusOK, res)
	case "3":
		res := api.Table3From(st.Table3())
		deg.apply(&res.Meta)
		return writeJSON(w, http.StatusOK, res)
	}
	return &httpError{status: http.StatusNotFound,
		msg: fmt.Sprintf("unknown table %q: want 1, 2 or 3", r.PathValue("n"))}
}

func (s *Server) handleOverlayWHP(w http.ResponseWriter, r *http.Request) error {
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	res := api.WHPOverlayFrom(e.study.WHPOverlay())
	deg.apply(&res.Meta)
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) error {
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	res := api.ValidationFrom(e.study.Validate())
	deg.apply(&res.Meta)
	return writeJSON(w, http.StatusOK, res)
}

// extendRequest is the POST /v1/extend body: fivealarms.ExtendOptions
// with explicit v1 field names.
type extendRequest struct {
	CellSizeM float64 `json:"cell_size_m"`
	DistM     float64 `json:"dist_m"`
}

// Request bounds for /v1/extend: cells finer than 100 m or buffers
// beyond 100 km would let one request exhaust the server's memory or
// CPU (the library's own national-raster floor is 100 m).
const (
	minExtendCellM = 100
	maxExtendDistM = 100_000
)

func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req extendRequest
	if err := dec.Decode(&req); err != nil {
		return badRequest("body: %v", err)
	}
	if math.IsNaN(req.CellSizeM) || math.IsInf(req.CellSizeM, 0) ||
		math.IsNaN(req.DistM) || math.IsInf(req.DistM, 0) {
		return badRequest("cell_size_m and dist_m must be finite")
	}
	if req.CellSizeM < 0 || (req.CellSizeM > 0 && req.CellSizeM < minExtendCellM) {
		return badRequest("cell_size_m: want 0 (coarse path) or >= %d, got %v", minExtendCellM, req.CellSizeM)
	}
	if req.DistM < 0 || req.DistM > maxExtendDistM {
		return badRequest("dist_m: want 0 (paper default) .. %d, got %v", maxExtendDistM, req.DistM)
	}
	e, deg, err := s.study(r)
	if err != nil {
		return err
	}
	rep := e.study.ExtendWith(fivealarms.ExtendOptions{CellSizeM: req.CellSizeM, DistM: req.DistM})
	res := api.ExtendFrom(rep)
	deg.apply(&res.Meta)
	return writeJSON(w, http.StatusOK, res)
}
