package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"fivealarms"
	"fivealarms/internal/pipeline"
	"fivealarms/internal/raster"
)

// studyKey identifies one immutable study snapshot: the seed plus a
// hash of every other Config field. Two requests with the same key see
// the same Study pointer.
type studyKey struct {
	seed uint64
	hash uint64
}

// keyOf derives the cache key from a configuration. The hash covers
// every exported Config field except Seed (which keys separately, so
// operators can read it in logs); the unexported build context never
// participates.
func keyOf(cfg fivealarms.Config) studyKey {
	h := fnv.New64a()
	fmt.Fprintf(h, "%g|%d|%d|%t|%d|%d|%q",
		cfg.CellSizeM, cfg.Transceivers, cfg.MappedFiresPerSeason, cfg.PipelineSerial, cfg.RasterWorkers,
		cfg.Shards, cfg.SnapshotPath)
	return studyKey{seed: cfg.Seed, hash: h.Sum64()}
}

// studyEntry is one cached study plus its server-side derived layers.
// ready closes exactly once, after which study/err are immutable.
type studyEntry struct {
	ready chan struct{}
	study *fivealarms.Study
	err   error

	// fireDist memoizes the distance transform of the 2000-2018
	// perimeter union (the nearest-fire-distance layer of /v1/risk/point).
	fireDist pipeline.Cell[*raster.FloatGrid]
}

// FireDist returns the memoized nearest-fire distance grid, computed as
// one fused union-fill + distance sweep over the 2000-2018 seasons.
func (e *studyEntry) FireDist() *raster.FloatGrid {
	return e.fireDist.Get(func() *raster.FloatGrid {
		return e.study.Analyzer.FireDistance(e.study.History(), e.study.Cfg.RasterWorkers)
	})
}

// readyNow reports whether the entry's build has completed successfully
// (non-blocking).
func (e *studyEntry) readyNow() bool {
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// studyCache is a singleflight LRU of built studies keyed by
// (seed, config-hash). Concurrent first requests for a key share one
// build; later requests are cache hits. Builds run on the cache's base
// context (the server's lifetime), not the triggering request's, so a
// canceled request never aborts a build other requests are waiting on
// — the waiter detaches with the request context's error instead.
// Failed builds are evicted so the next request retries, metered by the
// per-key circuit breaker; the last successfully built study per key is
// retained separately (bounded like the LRU) so degraded mode can serve
// stale-but-good data while the current build is broken or in flight.
type studyCache struct {
	baseCtx context.Context
	build   func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error)
	breaker *buildBreaker

	// inject is the test-only chaos hook (see Server.SetInjectionHook):
	// it runs as pseudo-task "serve/build" before each study build.
	// Written only before traffic; snapshotted under mu at spawn time.
	inject func(task string) error

	mu        sync.Mutex
	max       int
	entries   map[studyKey]*studyEntry
	order     []studyKey // MRU first
	lastGood  map[studyKey]*studyEntry
	goodOrder []studyKey // most recently recorded first
}

// newStudyCache returns a cache holding at most max studies (min 1).
// baseCtx bounds every build's lifetime; bk meters build attempts per
// key; build constructs a study for a validated configuration.
func newStudyCache(baseCtx context.Context, max int, bk *buildBreaker,
	build func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error)) *studyCache {
	if max < 1 {
		max = 1
	}
	return &studyCache{
		baseCtx:  baseCtx,
		build:    build,
		breaker:  bk,
		max:      max,
		entries:  make(map[studyKey]*studyEntry),
		lastGood: make(map[studyKey]*studyEntry),
	}
}

// Len reports the number of resident entries (including in-flight
// builds).
func (c *studyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the entry for cfg, building the study on first use.
// Waiting respects ctx: a canceled request returns ctx.Err() while the
// shared build keeps running for the other waiters. When the key's
// circuit breaker is open the build is not even attempted — the caller
// gets a 503-shaped *overloadError with the remaining backoff.
func (c *studyCache) Get(ctx context.Context, cfg fivealarms.Config) (*studyEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := c.entryFor(cfg)
	if err != nil {
		return nil, err
	}
	select {
	case <-e.ready:
		return e, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// entryFor resolves (or inserts and starts building) the entry for cfg
// without waiting on it. The breaker gate runs only on insertion: an
// already-in-flight build is the breaker's admitted probe.
func (c *studyCache) entryFor(cfg fivealarms.Config) (*studyEntry, error) {
	key := keyOf(cfg)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if retry, allowed := c.breaker.Allow(key); !allowed {
			c.mu.Unlock()
			return nil, &overloadError{
				status:     http.StatusServiceUnavailable,
				kind:       shedBreaker,
				retryAfter: retry,
				msg: fmt.Sprintf("study build circuit open for seed %d after repeated failures; retry in %v",
					cfg.Seed, retry.Truncate(time.Millisecond)),
			}
		}
		e = &studyEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.touchLocked(key)
		c.evictLocked(key)
		go c.run(key, e, cfg, c.inject) //fivealarms:allow(goroleak) builds deliberately outlive the requesting waiter; run closes e.ready on every path and is bounded by the build itself
	} else {
		c.touchLocked(key)
	}
	c.mu.Unlock()
	return e, nil
}

// LastGood returns the most recent successfully built entry for cfg's
// key, or nil. Degraded mode serves from here when the current build is
// broken, gated, or not finished.
func (c *studyCache) LastGood(cfg fivealarms.Config) *studyEntry {
	key := keyOf(cfg)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGood[key]
}

// ReadyHealthy reports whether cfg's entry exists and holds a completed,
// successful build (non-blocking).
func (c *studyCache) ReadyHealthy(cfg fivealarms.Config) bool {
	key := keyOf(cfg)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	return e != nil && e.readyNow()
}

// run executes one build and publishes its outcome. A failed build is
// removed from the cache so the key re-arms (mirroring pipeline.Cell's
// failure semantics) and reported to the breaker; a successful build is
// recorded as the key's last-known-good study.
func (c *studyCache) run(key studyKey, e *studyEntry, cfg fivealarms.Config, hook func(string) error) {
	e.study, e.err = c.buildGuarded(cfg, hook)
	c.mu.Lock()
	if e.err != nil {
		if c.entries[key] == e {
			delete(c.entries, key)
			c.dropOrderLocked(key)
		}
	} else {
		c.recordGoodLocked(key, e)
	}
	c.mu.Unlock()
	if e.err != nil {
		c.breaker.OnFailure(key)
	} else {
		c.breaker.OnSuccess(key)
	}
	close(e.ready)
}

// buildGuarded runs the chaos hook (if any) and the build with panic
// containment: a panicking build — injected or real — becomes an error
// outcome instead of crashing the server.
func (c *studyCache) buildGuarded(cfg fivealarms.Config, hook func(string) error) (st *fivealarms.Study, err error) {
	defer func() {
		if v := recover(); v != nil {
			st, err = nil, fmt.Errorf("serve: study build panicked: %v", v)
		}
	}()
	if hook != nil {
		if herr := hook("serve/build"); herr != nil {
			return nil, fmt.Errorf("serve: study build failed: %w", herr)
		}
	}
	return c.build(c.baseCtx, cfg)
}

// recordGoodLocked stores e as key's last-known-good entry, bounding
// the retained set at the cache capacity (oldest recording evicted, so
// degraded mode holds at most max extra studies).
func (c *studyCache) recordGoodLocked(key studyKey, e *studyEntry) {
	if _, ok := c.lastGood[key]; !ok {
		c.goodOrder = append([]studyKey{key}, c.goodOrder...)
	} else {
		for i, k := range c.goodOrder {
			if k == key {
				c.goodOrder = append(c.goodOrder[:i], c.goodOrder[i+1:]...)
				break
			}
		}
		c.goodOrder = append([]studyKey{key}, c.goodOrder...)
	}
	c.lastGood[key] = e
	for len(c.goodOrder) > c.max {
		victim := c.goodOrder[len(c.goodOrder)-1]
		c.goodOrder = c.goodOrder[:len(c.goodOrder)-1]
		delete(c.lastGood, victim)
	}
}

// touchLocked moves key to the MRU position.
func (c *studyCache) touchLocked(key studyKey) {
	c.dropOrderLocked(key)
	c.order = append([]studyKey{key}, c.order...)
}

// dropOrderLocked removes key from the recency list if present.
func (c *studyCache) dropOrderLocked(key studyKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used entries beyond the capacity,
// never evicting keep (the entry just inserted). An evicted in-flight
// build still completes and releases its waiters; only the cache slot
// is reclaimed.
func (c *studyCache) evictLocked(keep studyKey) {
	for len(c.order) > c.max {
		victim := c.order[len(c.order)-1]
		if victim == keep {
			return // capacity 1 and the newest entry is the only one
		}
		c.order = c.order[:len(c.order)-1]
		delete(c.entries, victim)
	}
}
