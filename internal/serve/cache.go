package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"fivealarms"
	"fivealarms/internal/pipeline"
	"fivealarms/internal/raster"
)

// studyKey identifies one immutable study snapshot: the seed plus a
// hash of every other Config field. Two requests with the same key see
// the same Study pointer.
type studyKey struct {
	seed uint64
	hash uint64
}

// keyOf derives the cache key from a configuration. The hash covers
// every exported Config field except Seed (which keys separately, so
// operators can read it in logs); the unexported build context never
// participates.
func keyOf(cfg fivealarms.Config) studyKey {
	h := fnv.New64a()
	fmt.Fprintf(h, "%g|%d|%d|%t|%d",
		cfg.CellSizeM, cfg.Transceivers, cfg.MappedFiresPerSeason, cfg.PipelineSerial, cfg.RasterWorkers)
	return studyKey{seed: cfg.Seed, hash: h.Sum64()}
}

// studyEntry is one cached study plus its server-side derived layers.
// ready closes exactly once, after which study/err are immutable.
type studyEntry struct {
	ready chan struct{}
	study *fivealarms.Study
	err   error

	// fireDist memoizes the distance transform of the 2000-2018
	// perimeter union (the nearest-fire-distance layer of /v1/risk/point).
	fireDist pipeline.Cell[*raster.FloatGrid]
}

// FireDist returns the memoized nearest-fire distance grid, computed as
// one fused union-fill + distance sweep over the 2000-2018 seasons.
func (e *studyEntry) FireDist() *raster.FloatGrid {
	return e.fireDist.Get(func() *raster.FloatGrid {
		return e.study.Analyzer.FireDistance(e.study.History(), e.study.Cfg.RasterWorkers)
	})
}

// studyCache is a singleflight LRU of built studies keyed by
// (seed, config-hash). Concurrent first requests for a key share one
// build; later requests are cache hits. Builds run on the cache's base
// context (the server's lifetime), not the triggering request's, so a
// canceled request never aborts a build other requests are waiting on
// — the waiter detaches with the request context's error instead.
// Failed builds are evicted so the next request retries.
type studyCache struct {
	baseCtx context.Context
	build   func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error)

	mu      sync.Mutex
	max     int
	entries map[studyKey]*studyEntry
	order   []studyKey // MRU first
}

// newStudyCache returns a cache holding at most max studies (min 1).
// baseCtx bounds every build's lifetime; build constructs a study for
// a validated configuration.
func newStudyCache(baseCtx context.Context, max int,
	build func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error)) *studyCache {
	if max < 1 {
		max = 1
	}
	return &studyCache{
		baseCtx: baseCtx,
		build:   build,
		max:     max,
		entries: make(map[studyKey]*studyEntry),
	}
}

// Len reports the number of resident entries (including in-flight
// builds).
func (c *studyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the entry for cfg, building the study on first use.
// Waiting respects ctx: a canceled request returns ctx.Err() while the
// shared build keeps running for the other waiters.
func (c *studyCache) Get(ctx context.Context, cfg fivealarms.Config) (*studyEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := keyOf(cfg)

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &studyEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.touchLocked(key)
		c.evictLocked(key)
		go c.run(key, e, cfg)
	} else {
		c.touchLocked(key)
	}
	c.mu.Unlock()

	select {
	case <-e.ready:
		return e, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run executes one build and publishes its outcome. A failed build is
// removed from the cache so the key re-arms (mirroring pipeline.Cell's
// failure semantics).
func (c *studyCache) run(key studyKey, e *studyEntry, cfg fivealarms.Config) {
	e.study, e.err = c.build(c.baseCtx, cfg)
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			c.dropOrderLocked(key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
}

// touchLocked moves key to the MRU position.
func (c *studyCache) touchLocked(key studyKey) {
	c.dropOrderLocked(key)
	c.order = append([]studyKey{key}, c.order...)
}

// dropOrderLocked removes key from the recency list if present.
func (c *studyCache) dropOrderLocked(key studyKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used entries beyond the capacity,
// never evicting keep (the entry just inserted). An evicted in-flight
// build still completes and releases its waiters; only the cache slot
// is reclaimed.
func (c *studyCache) evictLocked(keep studyKey) {
	for len(c.order) > c.max {
		victim := c.order[len(c.order)-1]
		if victim == keep {
			return // capacity 1 and the newest entry is the only one
		}
		c.order = c.order[:len(c.order)-1]
		delete(c.entries, victim)
	}
}
