package serve

// Unit tests for the weighted admission limiter: fast path, FIFO
// ordering, queue-full shedding, canceled waiters, and the
// grant-races-cancel edge.

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, l *limiter, weight int) func() {
	t.Helper()
	release, err := l.Acquire(context.Background(), weight)
	if err != nil {
		t.Fatalf("Acquire(%d): %v", weight, err)
	}
	return release
}

func TestLimiterFastPathAndGauges(t *testing.T) {
	l := newLimiter(4, 2)
	r1 := mustAcquire(t, l, 1)
	r3 := mustAcquire(t, l, 3)
	if got := l.InFlight(); got != 4 {
		t.Errorf("InFlight = %d, want 4", got)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth = %d, want 0", got)
	}
	r1()
	r3()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
}

func TestLimiterZeroWeightBypasses(t *testing.T) {
	l := newLimiter(1, 1)
	stop := mustAcquire(t, l, 1)
	defer stop()
	// Weight 0 never touches capacity or the queue.
	release, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatalf("zero-weight Acquire: %v", err)
	}
	release()
	if l.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", l.InFlight())
	}
}

func TestLimiterClampsOversizedWeight(t *testing.T) {
	l := newLimiter(2, 1)
	// A weight above the capacity is clamped, not rejected forever.
	release, err := l.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("oversized Acquire: %v", err)
	}
	if l.InFlight() != 2 {
		t.Errorf("InFlight = %d, want clamped 2", l.InFlight())
	}
	release()
	if l.InFlight() != 0 {
		t.Errorf("InFlight after release = %d, want 0", l.InFlight())
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := newLimiter(1, 2)
	stop := mustAcquire(t, l, 1)
	defer stop()

	// Fill the wait queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if release, err := l.Acquire(ctx, 1); err == nil {
				release()
			}
		}()
	}
	for l.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}

	// The next arrival is shed with a 429-shaped overload error.
	_, err := l.Acquire(context.Background(), 1)
	var oe *overloadError
	if !errors.As(err, &oe) {
		t.Fatalf("queue-full Acquire: %v, want *overloadError", err)
	}
	if oe.status != http.StatusTooManyRequests || oe.kind != shedQueue || oe.retryAfter <= 0 {
		t.Errorf("overload error = %+v", oe)
	}
	cancel()
	wg.Wait()
	if l.QueueDepth() != 0 {
		t.Errorf("QueueDepth after drain = %d, want 0", l.QueueDepth())
	}
}

func TestLimiterFIFOOrder(t *testing.T) {
	l := newLimiter(1, 8)
	stop := mustAcquire(t, l, 1)

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		// Enqueue strictly one at a time so arrival order is known.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			release()
		}(i)
		for l.QueueDepth() < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	stop() // grants cascade FIFO as each waiter releases
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO 0..3", order)
		}
	}
}

func TestLimiterCanceledWaiterLeavesQueue(t *testing.T) {
	l := newLimiter(1, 4)
	stop := mustAcquire(t, l, 1)
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, 1)
		errc <- err
	}()
	for l.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	if l.QueueDepth() != 0 {
		t.Errorf("QueueDepth = %d, want 0 after canceled waiter left", l.QueueDepth())
	}
}

// TestLimiterGrantCancelRace drives many acquire/release/cancel cycles
// so the grant-vs-cancel race executes both ways; capacity must be
// fully restored at the end (meaningful under -race).
func TestLimiterGrantCancelRace(t *testing.T) {
	l := newLimiter(2, 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
			defer cancel()
			release, err := l.Acquire(ctx, 1+i%2)
			if err == nil {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				release()
			}
		}(i)
	}
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after all cycles, want 0 (leaked capacity)", got)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth = %d, want 0", got)
	}
	// Full capacity must still be acquirable.
	mustAcquire(t, l, 2)()
}
